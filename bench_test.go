// Package repro's benchmarks regenerate every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index):
//
//	BenchmarkFig6_LengthDistributions   — Fig. 6
//	BenchmarkFig7_RulesVsPatterns       — Fig. 7
//	BenchmarkFig8_TestInputSweep        — Fig. 8
//	BenchmarkTableII_SynthesisBreakdown — Table II
//	BenchmarkTableIII_Fallbacks         — Table III
//	BenchmarkCoverage_PatternTestCases  — §VIII-B
//	BenchmarkFig9_AArch64Runtime        — Fig. 9 (+ §VIII-C sizes)
//	BenchmarkFig11_RISCVRuntime         — Fig. 11 (+ §VIII-C sizes)
//	BenchmarkFig10_GreedyArtifact       — Fig. 10
//	BenchmarkDiscussion_X86             — §IX
//
// Absolute numbers come from the simulator's latency model, not the
// paper's hardware; the shapes (who wins, by what factor) are the
// reproduction targets. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"iselgen/internal/bv"
	"iselgen/internal/core"
	"iselgen/internal/gmir"
	"iselgen/internal/harness"
	"iselgen/internal/isa/x86"
	"iselgen/internal/isel"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/term"
)

var (
	a64Once  sync.Once
	a64Setup *harness.Setup
	rvOnce   sync.Once
	rvSetup  *harness.Setup
)

func a64(b *testing.B) *harness.Setup {
	a64Once.Do(func() {
		s, err := harness.NewAArch64()
		if err != nil {
			panic(err)
		}
		s.Synthesize(core.DefaultConfig(), 0)
		a64Setup = s
	})
	if a64Setup == nil {
		b.Fatal("aarch64 setup failed")
	}
	return a64Setup
}

func rv(b *testing.B) *harness.Setup {
	rvOnce.Do(func() {
		s, err := harness.NewRISCV()
		if err != nil {
			panic(err)
		}
		s.Synthesize(core.DefaultConfig(), 0)
		rvSetup = s
	})
	if rvSetup == nil {
		b.Fatal("riscv setup failed")
	}
	return rvSetup
}

// runOnce structures the report-generating benchmarks: the experiment
// runs once and its report prints to stdout (the testing package
// truncates long benchmark logs).
func runOnce(b *testing.B, f func() string) {
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = f()
		// Reports are one-shot experiments.
		break
	}
	b.StopTimer()
	if out != "" {
		fmt.Printf("\n===== %s =====\n%s\n", b.Name(), out)
	}
}

func BenchmarkFig6_LengthDistributions(b *testing.B) {
	s := a64(b)
	runOnce(b, func() string { return harness.Fig6(s, s.SynthLib) })
}

func BenchmarkFig7_RulesVsPatterns(b *testing.B) {
	s := a64(b)
	out := "Fig. 7 analog — synthesized rules vs considered patterns (aarch64)\n\n"
	out += fmt.Sprintf("%10s %8s %8s %8s\n", "patterns", "rules", "index", "smt")
	prevIdx, prevSMT := s.Synther.Stats.IndexRules, s.Synther.Stats.SMTRules
	for _, budget := range []int{25, 50, 100, 200, 400, 0} {
		lib := rules.NewLibrary("aarch64")
		pats := harness.CorpusPatterns("aarch64", budget)
		s.Synther.Synthesize(pats, lib)
		idx := s.Synther.Stats.IndexRules - prevIdx
		smt := s.Synther.Stats.SMTRules - prevSMT
		prevIdx, prevSMT = s.Synther.Stats.IndexRules, s.Synther.Stats.SMTRules
		out += fmt.Sprintf("%10d %8d %8d %8d\n", len(pats), lib.Len(), idx, smt)
	}
	runOnce(b, func() string { return out })
}

func BenchmarkFig8_TestInputSweep(b *testing.B) {
	out := "Fig. 8 analog — synthesis time vs number of test inputs (aarch64)\n\n"
	out += fmt.Sprintf("%8s %14s %14s %14s\n", "inputs", "pool-build", "matching", "total")
	for _, n := range []int{8, 32, 128, 512} {
		s, err := harness.NewAArch64()
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.TestInputs = n
		t0 := time.Now()
		s.Synther = core.New(s.B, s.ISA, cfg)
		s.Synther.BuildPool()
		build := time.Since(t0)
		t1 := time.Now()
		lib := rules.NewLibrary("aarch64")
		s.Synther.Synthesize(harness.CorpusPatterns("aarch64", 0), lib)
		match := time.Since(t1)
		out += fmt.Sprintf("%8d %14v %14v %14v\n", n,
			build.Round(time.Millisecond), match.Round(time.Millisecond),
			(build + match).Round(time.Millisecond))
	}
	runOnce(b, func() string { return out })
}

func BenchmarkTableII_SynthesisBreakdown(b *testing.B) {
	// Fresh synthesis so the stage timers are clean.
	s, err := harness.NewAArch64()
	if err != nil {
		b.Fatal(err)
	}
	lib := s.Synthesize(core.DefaultConfig(), 0)
	runOnce(b, func() string { return s.TableII(lib) })
}

func BenchmarkTableIII_Fallbacks(b *testing.B) {
	out := ""
	for _, s := range []*harness.Setup{a64(b), rv(b)} {
		rows, err := s.RunSuite(1)
		if err != nil {
			b.Fatal(err)
		}
		out += fmt.Sprintf("[%s]\n%s\n", s.Name, harness.TableIII(rows))
	}
	runOnce(b, func() string { return out })
}

func BenchmarkFig9_AArch64Runtime(b *testing.B) {
	s := a64(b)
	rows, err := s.RunSuite(2)
	if err != nil {
		b.Fatal(err)
	}
	out := figReport("Fig. 9", rows)
	runOnce(b, func() string { return out })
}

func BenchmarkFig11_RISCVRuntime(b *testing.B) {
	s := rv(b)
	rows, err := s.RunSuite(2)
	if err != nil {
		b.Fatal(err)
	}
	out := figReport("Fig. 11", rows)
	runOnce(b, func() string { return out })
}

func figReport(name string, rows []harness.Row) string {
	norm := harness.Normalized(rows, "selectiondag")
	out := fmt.Sprintf("%s analog — runtime normalized to the SelectionDAG analog\n\n", name)
	out += harness.FormatRows(rows)
	out += "\ngeomeans: "
	for _, bk := range []string{"selectiondag", "globalisel", "fastisel", "synth"} {
		if g := harness.GeoMean(norm, bk); g > 0 {
			out += fmt.Sprintf("%s=%.4f ", bk, g)
		}
	}
	out += "\n\n" + harness.SizeTable(rows)
	return out
}

// BenchmarkCoverage_PatternTestCases reproduces §VIII-B: every
// synthesized rule is turned into a test function; the synthesized
// backend must select each declaratively (no hooks), while the
// handwritten baseline's hook usage shows how much imperative selection
// the declarative rules replace.
func BenchmarkCoverage_PatternTestCases(b *testing.B) {
	out := ""
	for _, s := range []*harness.Setup{a64(b), rv(b)} {
		total, synthHooks, synthFall, handHooks, handFall, skipped := 0, 0, 0, 0, 0, 0
		for _, r := range s.SynthLib.Rules {
			f, ok := functionForRule(r)
			if !ok {
				skipped++
				continue
			}
			total++
			_, rep := s.Synth.Select(f)
			if rep.Fallback {
				synthFall++
			} else if rep.HookInsts > 0 {
				synthHooks++
			}
			f2, _ := functionForRule(r)
			_, rep2 := s.Handwritten.Select(f2)
			if rep2.Fallback {
				handFall++
			} else if rep2.HookInsts > 0 {
				handHooks++
			}
		}
		out += fmt.Sprintf("[%s] %d rule test cases (%d skipped: unrepresentable operands)\n", s.Name, total, skipped)
		out += fmt.Sprintf("  synthesized backend: %d hook-assisted, %d fallbacks\n", synthHooks, synthFall)
		out += fmt.Sprintf("  handwritten backend: %d hook-assisted, %d fallbacks\n", handHooks, handFall)
	}
	runOnce(b, func() string { return out })
}

// functionForRule builds a one-function test case realizing a rule's
// pattern: register leaves become parameters, immediate leaves become
// representable constants.
func functionForRule(r *rules.Rule) (*gmir.Function, bool) {
	fb := gmir.NewFunc("case_" + r.Seq.Insts[0].Name)
	leaves := r.Pattern.Leaves()
	vals := make([]gmir.Value, len(leaves))
	// Pick immediate values satisfying the rule's embeds.
	immVal := make([]bv.BV, len(leaves))
	for i, l := range leaves {
		if l.LeafReg {
			continue
		}
		v := bv.New(l.Ty.Bits, 1)
		for _, src := range r.Operands {
			if src.Kind == rules.SrcLeaf && src.Leaf == i && src.Embed != nil {
				v = bv.New(l.Ty.Bits, 1).ShlN(uint(src.Embed.Shift))
			}
		}
		if want, ok := r.LeafConsts[i]; ok {
			v = want
		}
		immVal[i] = v
	}
	for i, l := range leaves {
		if l.LeafReg {
			vals[i] = fb.Param(l.Ty)
		} else {
			vals[i] = fb.ConstBV(immVal[i])
		}
	}
	idx := 0
	var build func(n *pattern.Node) (gmir.Value, bool)
	build = func(n *pattern.Node) (gmir.Value, bool) {
		if n.IsLeaf() {
			v := vals[idx]
			idx++
			return v, true
		}
		var args []gmir.Value
		for _, a := range n.Args {
			v, ok := build(a)
			if !ok {
				return -1, false
			}
			args = append(args, v)
		}
		in := &gmir.Inst{Op: n.Op, Ty: n.Ty, Pred: n.Pred, MemBits: n.MemBits, Args: args}
		if n.Op == gmir.GStore {
			in.Dst = -1
		} else {
			in.Dst = gmir.Value(-1)
		}
		return emitInst(fb, in)
	}
	root, ok := build(r.Pattern.Root)
	if !ok {
		return nil, false
	}
	if r.Pattern.Root.Op == gmir.GStore {
		fb.Ret(-1)
	} else {
		fb.Ret(root)
	}
	f, err := fb.Finish()
	if err != nil {
		return nil, false
	}
	return f, true
}

// emitInst replays a pattern node through the builder API.
func emitInst(fb *gmir.FuncBuilder, in *gmir.Inst) (gmir.Value, bool) {
	defer func() { recover() }()
	switch in.Op {
	case gmir.GICmp:
		return fb.ICmp(in.Pred, in.Args[0], in.Args[1]), true
	case gmir.GSelect:
		return fb.Select(in.Args[0], in.Args[1], in.Args[2]), true
	case gmir.GZExt:
		return fb.ZExt(in.Ty, in.Args[0]), true
	case gmir.GSExt:
		return fb.SExt(in.Ty, in.Args[0]), true
	case gmir.GTrunc:
		return fb.Trunc(in.Ty, in.Args[0]), true
	case gmir.GLoad:
		return fb.Load(in.Ty, in.Args[0], in.MemBits), true
	case gmir.GSLoad:
		return fb.SLoad(in.Ty, in.Args[0], in.MemBits), true
	case gmir.GStore:
		fb.Store(in.Args[0], in.Args[1], in.MemBits)
		return -1, true
	case gmir.GConstant:
		return -1, false
	default:
		return emitBinaryOrUnary(fb, in)
	}
}

func emitBinaryOrUnary(fb *gmir.FuncBuilder, in *gmir.Inst) (gmir.Value, bool) {
	two := map[gmir.Opcode]func(x, y gmir.Value) gmir.Value{
		gmir.GAdd: fb.Add, gmir.GSub: fb.Sub, gmir.GMul: fb.Mul,
		gmir.GUDiv: fb.UDiv, gmir.GSDiv: fb.SDiv, gmir.GURem: fb.URem,
		gmir.GSRem: fb.SRem, gmir.GAnd: fb.And, gmir.GOr: fb.Or,
		gmir.GXor: fb.Xor, gmir.GShl: fb.Shl, gmir.GLShr: fb.LShr,
		gmir.GAShr: fb.AShr, gmir.GSMin: fb.SMin, gmir.GSMax: fb.SMax,
		gmir.GUMin: fb.UMin, gmir.GUMax: fb.UMax, gmir.GPtrAdd: fb.PtrAdd,
	}
	if f, ok := two[in.Op]; ok && len(in.Args) == 2 {
		return f(in.Args[0], in.Args[1]), true
	}
	one := map[gmir.Opcode]func(x gmir.Value) gmir.Value{
		gmir.GCtpop: fb.Ctpop, gmir.GCtlz: fb.Ctlz, gmir.GCttz: fb.Cttz,
		gmir.GBSwap: fb.BSwap, gmir.GAbs: fb.Abs,
	}
	if f, ok := one[in.Op]; ok && len(in.Args) == 1 {
		return f(in.Args[0]), true
	}
	return -1, false
}

// BenchmarkFig10_GreedyArtifact demonstrates the paper's Fig. 10: greedy
// largest-first matching can emit a redundant comparison when a
// comparison result feeds both a select and a zero-extension.
func BenchmarkFig10_GreedyArtifact(b *testing.B) {
	s := a64(b)
	fb := gmir.NewFunc("fig10")
	x10 := fb.Param(gmir.S64)
	x11 := fb.Param(gmir.S64)
	w1 := fb.Param(gmir.S64)
	w2 := fb.Param(gmir.S64)
	cmp := fb.ICmp(gmir.PredEQ, x10, x11)
	sel := fb.Select(cmp, w1, w2)
	z := fb.ZExt(gmir.S64, cmp) // second use of the comparison
	fb.Ret(fb.Add(sel, z))
	f := fb.MustFinish()
	isel.Prepare(f, "aarch64")
	mf, rep := s.Synth.Select(f)
	out := "Fig. 10 analog — greedy matching with a shared comparison\n\n"
	if rep.Fallback {
		out += "fallback: " + rep.FallbackReason + "\n"
	} else {
		out += mf.String()
		out += fmt.Sprintf("\n(%d instructions; an optimal covering shares one cmp)\n", mf.NumInsts())
	}
	runOnce(b, func() string { return out })
}

// BenchmarkDiscussion_X86 reproduces §IX: synthesizing from the
// simplified x86-32 comparator spec takes the index pipeline well under
// the comparator's 100 hours.
func BenchmarkDiscussion_X86(b *testing.B) {
	tb := term.NewBuilder()
	tgt, err := x86.Load(tb)
	if err != nil {
		b.Fatal(err)
	}
	t0 := time.Now()
	synth := core.New(tb, tgt, core.DefaultConfig())
	synth.BuildPool()
	lib := rules.NewLibrary("x86")
	var pats []*pattern.Pattern
	for _, p := range harness.SeedPatterns() {
		if p.Root.Ty.Bits == 32 {
			pats = append(pats, p)
		}
	}
	synth.Synthesize(pats, lib)
	out := fmt.Sprintf("§IX analog — x86-32 synthesis from the simplified spec:\n"+
		"  %d sequences, %d patterns, %d rules (index %d, smt %d) in %v\n"+
		"  (the CGO'18 comparator needed >100 hours for ~20 instructions)\n",
		synth.Stats.Sequences, len(pats), lib.Len(),
		synth.Stats.IndexRules, synth.Stats.SMTRules, time.Since(t0).Round(time.Millisecond))
	runOnce(b, func() string { return out })
}

// BenchmarkAblation_IndexAndProbe quantifies the paper's two ablation
// claims (§VII-D): disabling the term index forces everything through
// the SMT fallback ("synthesis time would double"), and disabling the
// sample-evaluation filter on top of that sends every
// signature-compatible candidate to the solver ("did not terminate
// within 5 days" at the paper's scale — bounded here by a pattern
// budget).
func BenchmarkAblation_IndexAndProbe(b *testing.B) {
	// Both ablations blow up combinatorially (the paper's no-sample-
	// evaluation run did not terminate in five days), so the comparison
	// uses a small pattern budget and a reduced pair pool; the *ratios*
	// are the result.
	const budget = 12
	run := func(name string, mod func(*core.Config)) string {
		s, err := harness.NewRISCV()
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.MaxPairBases = 12
		cfg.SMTMaxConflicts = 2000
		cfg.TestInputs = 48
		mod(&cfg)
		cfg.ExtraSequences = harness.ExtraSequences(s.Name)
		t0 := time.Now()
		s.Synther = core.New(s.B, s.ISA, cfg)
		s.Synther.BuildPool()
		lib := rules.NewLibrary(s.Name)
		s.Synther.Synthesize(harness.CorpusPatterns(s.Name, budget), lib)
		return fmt.Sprintf("  %-22s %8v  %4d rules (index %d, smt %d; %d SMT queries)\n",
			name, time.Since(t0).Round(time.Millisecond), lib.Len(),
			s.Synther.Stats.IndexRules, s.Synther.Stats.SMTRules, s.Synther.Stats.SMTQueries)
	}
	out := "Ablations (riscv, " + fmt.Sprint(budget) + "-pattern budget):\n"
	out += run("full pipeline", func(c *core.Config) {})
	out += run("no index", func(c *core.Config) { c.DisableIndex = true })
	out += run("no index, no probe", func(c *core.Config) {
		c.DisableIndex = true
		c.DisableProbe = true
	})
	runOnce(b, func() string { return out })
}
