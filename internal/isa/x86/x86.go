// Package x86 defines the ~20-instruction x86-32 subset matching the
// simplified handwritten specification of Buchwald et al. (the paper's
// §IX discussion experiment: their four-day synthesis covers basic
// arithmetic, mov, and control flow only — notably no multiplication and
// no 64-bit arithmetic).
package x86

import (
	"iselgen/internal/isa"
	"iselgen/internal/term"
)

// Spec returns the x86-32 subset specification.
func Spec() string {
	return `
inst ADDrr(a: reg32, b: reg32) { rd = a + b; }
inst ADDri(a: reg32, imm: imm32) { rd = a + imm; }
inst SUBrr(a: reg32, b: reg32) { rd = a - b; }
inst SUBri(a: reg32, imm: imm32) { rd = a - imm; }
inst ANDrr(a: reg32, b: reg32) { rd = a & b; }
inst ANDri(a: reg32, imm: imm32) { rd = a & imm; }
inst ORrr(a: reg32, b: reg32) { rd = a | b; }
inst ORri(a: reg32, imm: imm32) { rd = a | imm; }
inst XORrr(a: reg32, b: reg32) { rd = a ^ b; }
inst XORri(a: reg32, imm: imm32) { rd = a ^ imm; }
inst NOTr(a: reg32) { rd = ~a; }
inst NEGr(a: reg32) { rd = -a; }
inst INCr(a: reg32) { rd = a + 1; }
inst DECr(a: reg32) { rd = a - 1; }
inst MOVri(imm: imm32) { rd = imm; }
inst MOVrr(a: reg32) { rd = a; }
inst SHLri(a: reg32, sh: imm5) { rd = a << zext(sh, 32); }
inst SHRri(a: reg32, sh: imm5) { rd = a >> zext(sh, 32); }
inst SARri(a: reg32, sh: imm5) { rd = ashr(a, zext(sh, 32)); }
inst LEA_bi(base: reg32, idx: reg32) { rd = base + idx; }
inst LEA_bis4(base: reg32, idx: reg32) { rd = base + (idx << 2:32); }
inst LEA_bd(base: reg32, disp: imm32) { rd = base + disp; }
inst CMPrr(a: reg32, b: reg32) {
  let res = a - b;
  flags.Z = res == 0;
  flags.N = extract(res, 31, 31);
  flags.C = uge(a, b);
  flags.V = extract((a ^ b) & (a ^ res), 31, 31);
}
inst SETEr() { rd = zext(flags.Z, 32); }
inst SETNEr() { rd = zext(!flags.Z, 32); }
inst JMP(imm: imm32) { pc = pc + sext(imm, 64); }
inst JE(imm: imm32) { if (flags.Z) { pc = pc + sext(imm, 64); } }
inst JNE(imm: imm32) { if (!flags.Z) { pc = pc + sext(imm, 64); } }
`
}

// Load builds the x86-32 target in the given term builder.
func Load(b *term.Builder) (*isa.Target, error) {
	return isa.LoadTarget(b, "x86", Spec(), nil, 3)
}
