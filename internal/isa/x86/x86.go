// Package x86 defines the ~20-instruction x86-32 subset matching the
// simplified handwritten specification of Buchwald et al. (the paper's
// §IX discussion experiment: their four-day synthesis covers basic
// arithmetic, mov, and control flow only — notably no multiplication and
// no 64-bit arithmetic).
//
// Encodings are synthetic but x86-flavored: byte-oriented variable
// length words (2..7 bytes), a one-byte opcode, one byte per register
// number, and little-endian byte-aligned immediates. The old uniform
// "size 3" metadata was a fiction the derived sizes replace.
package x86

import (
	"iselgen/internal/isa"
	"iselgen/internal/term"
)

// Spec returns the x86-32 subset specification.
func Spec() string {
	return `
inst ADDrr(a: reg32, b: reg32) { rd = a + b; } enc(32) { [7:0]=0x01; [15:8]=rd; [23:16]=a; [31:24]=b; }
inst ADDri(a: reg32, imm: imm32) { rd = a + imm; } enc(56) { [7:0]=0x02; [15:8]=rd; [23:16]=a; [55:24]=imm; }
inst SUBrr(a: reg32, b: reg32) { rd = a - b; } enc(32) { [7:0]=0x03; [15:8]=rd; [23:16]=a; [31:24]=b; }
inst SUBri(a: reg32, imm: imm32) { rd = a - imm; } enc(56) { [7:0]=0x04; [15:8]=rd; [23:16]=a; [55:24]=imm; }
inst ANDrr(a: reg32, b: reg32) { rd = a & b; } enc(32) { [7:0]=0x05; [15:8]=rd; [23:16]=a; [31:24]=b; }
inst ANDri(a: reg32, imm: imm32) { rd = a & imm; } enc(56) { [7:0]=0x06; [15:8]=rd; [23:16]=a; [55:24]=imm; }
inst ORrr(a: reg32, b: reg32) { rd = a | b; } enc(32) { [7:0]=0x07; [15:8]=rd; [23:16]=a; [31:24]=b; }
inst ORri(a: reg32, imm: imm32) { rd = a | imm; } enc(56) { [7:0]=0x08; [15:8]=rd; [23:16]=a; [55:24]=imm; }
inst XORrr(a: reg32, b: reg32) { rd = a ^ b; } enc(32) { [7:0]=0x09; [15:8]=rd; [23:16]=a; [31:24]=b; }
inst XORri(a: reg32, imm: imm32) { rd = a ^ imm; } enc(56) { [7:0]=0x0a; [15:8]=rd; [23:16]=a; [55:24]=imm; }
inst NOTr(a: reg32) { rd = ~a; } enc(24) { [7:0]=0x0b; [15:8]=rd; [23:16]=a; }
inst NEGr(a: reg32) { rd = -a; } enc(24) { [7:0]=0x0c; [15:8]=rd; [23:16]=a; }
inst INCr(a: reg32) { rd = a + 1; } enc(24) { [7:0]=0x0d; [15:8]=rd; [23:16]=a; }
inst DECr(a: reg32) { rd = a - 1; } enc(24) { [7:0]=0x0e; [15:8]=rd; [23:16]=a; }
inst MOVri(imm: imm32) { rd = imm; } enc(48) { [7:0]=0x0f; [15:8]=rd; [47:16]=imm; }
inst MOVrr(a: reg32) { rd = a; } enc(24) { [7:0]=0x10; [15:8]=rd; [23:16]=a; }
inst SHLri(a: reg32, sh: imm5) { rd = a << zext(sh, 32); } enc(32) { [7:0]=0x11; [15:8]=rd; [23:16]=a; [28:24]=sh; [31:29]=0; }
inst SHRri(a: reg32, sh: imm5) { rd = a >> zext(sh, 32); } enc(32) { [7:0]=0x12; [15:8]=rd; [23:16]=a; [28:24]=sh; [31:29]=0; }
inst SARri(a: reg32, sh: imm5) { rd = ashr(a, zext(sh, 32)); } enc(32) { [7:0]=0x13; [15:8]=rd; [23:16]=a; [28:24]=sh; [31:29]=0; }
inst LEA_bi(base: reg32, idx: reg32) { rd = base + idx; } enc(32) { [7:0]=0x14; [15:8]=rd; [23:16]=base; [31:24]=idx; }
inst LEA_bis4(base: reg32, idx: reg32) { rd = base + (idx << 2:32); } enc(32) { [7:0]=0x15; [15:8]=rd; [23:16]=base; [31:24]=idx; }
inst LEA_bd(base: reg32, disp: imm32) { rd = base + disp; } enc(56) { [7:0]=0x16; [15:8]=rd; [23:16]=base; [55:24]=disp; }
inst CMPrr(a: reg32, b: reg32) {
  let res = a - b;
  flags.Z = res == 0;
  flags.N = extract(res, 31, 31);
  flags.C = uge(a, b);
  flags.V = extract((a ^ b) & (a ^ res), 31, 31);
} enc(24) { [7:0]=0x17; [15:8]=a; [23:16]=b; }
inst SETEr() { rd = zext(flags.Z, 32); } enc(16) { [7:0]=0x18; [15:8]=rd; }
inst SETNEr() { rd = zext(!flags.Z, 32); } enc(16) { [7:0]=0x19; [15:8]=rd; }
inst JMP(imm: imm32) { pc = pc + sext(imm, 64); } enc(40) { [7:0]=0x1a; [39:8]=imm; }
inst JE(imm: imm32) { if (flags.Z) { pc = pc + sext(imm, 64); } } enc(40) { [7:0]=0x1b; [39:8]=imm; }
inst JNE(imm: imm32) { if (!flags.Z) { pc = pc + sext(imm, 64); } } enc(40) { [7:0]=0x1c; [39:8]=imm; }
reserved(8) { [7:0]=0x00; }
`
}

// Load builds the x86-32 target in the given term builder; instruction
// sizes are derived from the per-instruction encodings.
func Load(b *term.Builder) (*isa.Target, error) {
	return isa.LoadTarget(b, "x86", Spec(), nil, 0)
}
