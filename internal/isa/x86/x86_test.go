package x86

import (
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

func TestLoadAndSemantics(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := Load(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(tgt.Insts) < 25 {
		t.Errorf("only %d instructions", len(tgt.Insts))
	}
	lea := tgt.ByName("LEA_bis4")
	env := term.NewEnv()
	env.Bind("LEA_bis4.base", bv.New(32, 0x100))
	env.Bind("LEA_bis4.idx", bv.New(32, 3))
	if got := lea.Effects[0].T.Eval(env); got.Lo != 0x10c {
		t.Errorf("LEA base+idx*4 = %#x", got.Lo)
	}
	cmp := tgt.ByName("CMPrr")
	flagCount := 0
	for _, e := range cmp.Effects {
		if e.Kind == spec.EffFlag {
			flagCount++
		}
	}
	if flagCount != 4 {
		t.Errorf("CMPrr flags = %d", flagCount)
	}
	// Sizes derive from the encodings: CMPrr is opcode + two register
	// bytes, ADDri adds a 4-byte immediate after opcode/rd/a.
	if tgt.ByName("CMPrr").Size != 3 {
		t.Errorf("x86 CMPrr size = %d", tgt.ByName("CMPrr").Size)
	}
	if tgt.ByName("ADDri").Size != 7 {
		t.Errorf("x86 ADDri size = %d", tgt.ByName("ADDri").Size)
	}
}
