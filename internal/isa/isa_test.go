package isa

import (
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

const miniSpec = `
inst ADD(rn: reg64, rm: reg64) { rd = rn + rm; }
inst ADDI(rn: reg64, imm: imm12) { rd = rn + zext(imm, 64); }
inst LSLI(rn: reg64, sh: imm6) { rd = rn << zext(sh, 64); }
inst LDR(rn: reg64) { rd = load(rn, 64); }
inst STR(rt: reg64, rn: reg64) { mem[rn, 64] = rt; }
inst SUBS(rn: reg64, rm: reg64) {
  let res = rn - rm;
  rd = res;
  flags.N = extract(res, 63, 63);
  flags.Z = res == 0;
  flags.C = uge(rn, rm);
  flags.V = extract((rn ^ rm) & (rn ^ res), 63, 63);
}
inst CSETeq() { rd = zext(flags.Z, 64); }
inst B(imm: imm26) { pc = pc + sext(concat(imm, 0:2), 64); }
inst LDRpost(rn: reg64, simm: imm9) {
  rd = load(rn, 64);
  rn = rn + sext(simm, 64);
}
`

func loadMini(t *testing.T) (*term.Builder, *Target) {
	t.Helper()
	b := term.NewBuilder()
	tgt, err := LoadTarget(b, "mini", miniSpec, map[string]int{"LDR": 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return b, tgt
}

func TestLoadTarget(t *testing.T) {
	_, tgt := loadMini(t)
	if len(tgt.Insts) != 9 {
		t.Fatalf("insts = %d", len(tgt.Insts))
	}
	ldr := tgt.ByName("LDR")
	if ldr == nil || ldr.Latency != 3 || ldr.Size != 4 {
		t.Errorf("LDR metadata = %+v", ldr)
	}
	if add := tgt.ByName("ADD"); add.Latency != 1 {
		t.Errorf("default latency = %d", add.Latency)
	}
	if tgt.ByName("NOPE") != nil {
		t.Error("ByName invented an instruction")
	}
}

func TestSingleSequence(t *testing.T) {
	b, tgt := loadMini(t)
	s := Single(b, tgt.ByName("ADDI"))
	if s.Len() != 1 || s.Cost() != 2 {
		t.Errorf("len=%d cost=%d", s.Len(), s.Cost())
	}
	if len(s.Inputs) != 2 {
		t.Fatalf("inputs = %+v", s.Inputs)
	}
	if s.Inputs[0].Var.Name != "s0.rn.r64" || s.Inputs[1].Var.Name != "s0.imm.i12" {
		t.Errorf("input names = %s, %s", s.Inputs[0].Var.Name, s.Inputs[1].Var.Name)
	}
	// Effect evaluates correctly under renamed vars.
	env := term.NewEnv()
	env.Bind("s0.rn.r64", bv.New(64, 100))
	env.Bind("s0.imm.i12", bv.New(12, 23))
	if got := s.Effects[0].T.Eval(env); got.Lo != 123 {
		t.Errorf("effect = %d", got.Lo)
	}
}

func TestAppendWiring(t *testing.T) {
	b, tgt := loadMini(t)
	// LSLI ; ADD with ADD.rm wired: computes rn2 + (rn1 << sh).
	s := Single(b, tgt.ByName("LSLI"))
	s2, err := Append(b, s, tgt.ByName("ADD"), []string{"rm"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 || s2.String() != "LSLI ; ADD" {
		t.Errorf("seq = %s", s2)
	}
	if s2.Cost() != 4 {
		t.Errorf("cost = %d, want 4", s2.Cost())
	}
	if len(s2.Effects) != 1 {
		t.Fatalf("effects = %d", len(s2.Effects))
	}
	env := term.NewEnv()
	env.Bind("s0.rn.r64", bv.New(64, 3))
	env.Bind("s0.sh.i6", bv.New(6, 4))
	env.Bind("s1.rn.r64", bv.New(64, 10))
	if got := s2.Effects[0].T.Eval(env); got.Lo != 10+3<<4 {
		t.Errorf("shift-add = %d", got.Lo)
	}
	if len(s2.Inputs) != 3 {
		t.Errorf("inputs = %+v", s2.Inputs)
	}
}

func TestAppendFlagConsumption(t *testing.T) {
	b, tgt := loadMini(t)
	// SUBS ; CSETeq — the cmp+cset chain (§VI-A "instruction chains").
	s := Single(b, tgt.ByName("SUBS"))
	s2, err := Append(b, s, tgt.ByName("CSETeq"), nil, true)
	if err != nil {
		t.Fatal(err)
	}
	// Final effects: only CSET's rd (flags of SUBS were consumed).
	if len(s2.Effects) != 1 || s2.Effects[0].Kind != spec.EffReg {
		t.Fatalf("effects = %+v", s2.Effects)
	}
	env := term.NewEnv()
	env.Bind("s0.rn.r64", bv.New(64, 7))
	env.Bind("s0.rm.r64", bv.New(64, 7))
	if got := s2.Effects[0].T.Eval(env); got.Lo != 1 {
		t.Errorf("x==y cset = %d, want 1", got.Lo)
	}
	env.Bind("s0.rm.r64", bv.New(64, 8))
	if got := s2.Effects[0].T.Eval(env); got.Lo != 0 {
		t.Errorf("x!=y cset = %d, want 0", got.Lo)
	}
	// No flag inputs should remain.
	for _, in := range s2.Inputs {
		if in.Flags {
			t.Errorf("unconsumed flag input %s", in.Var.Name)
		}
	}
}

func TestAppendRule1(t *testing.T) {
	b, tgt := loadMini(t)
	s := Single(b, tgt.ByName("ADD"))
	if _, err := Append(b, s, tgt.ByName("ADDI"), nil, false); err == nil {
		t.Error("append without wiring or flags accepted (rule 1)")
	}
}

func TestAppendRule2PC(t *testing.T) {
	b, tgt := loadMini(t)
	s := Single(b, tgt.ByName("B"))
	if s.CanAppend(tgt.ByName("ADD")) {
		t.Error("append after PC effect accepted (rule 2)")
	}
}

func TestAppendRule3Memory(t *testing.T) {
	b, tgt := loadMini(t)
	// LDR ; LDR would need two memory operations.
	s := Single(b, tgt.ByName("LDR"))
	if s.CanAppend(tgt.ByName("LDR")) {
		t.Error("two loads accepted (rule 3)")
	}
	// LDR ; ADD is fine (one load).
	if !s.CanAppend(tgt.ByName("ADD")) {
		t.Error("load-feeding-add rejected")
	}
	// LSLI ; STR is fine: shift feeding a store's value.
	s2 := Single(b, tgt.ByName("LSLI"))
	if !s2.CanAppend(tgt.ByName("STR")) {
		t.Error("compute-then-store rejected")
	}
	seq, err := Append(b, s2, tgt.ByName("STR"), []string{"rt"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Effects[0].Kind != spec.EffMem {
		t.Errorf("final effect = %v", seq.Effects[0].Kind)
	}
}

func TestAppendAfterMultiEffect(t *testing.T) {
	b, tgt := loadMini(t)
	// Post-index load has a write-back; appending would lose it.
	s := Single(b, tgt.ByName("LDRpost"))
	if s.CanAppend(tgt.ByName("ADD")) {
		t.Error("append after write-back accepted")
	}
}

func TestAppendWireWidthMismatch(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := LoadTarget(b, "m", `
inst W32(rn: reg32) { rd = rn + 1; }
inst X64(rn: reg64) { rd = rn + 1; }
`, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := Single(b, tgt.ByName("W32"))
	if _, err := Append(b, s, tgt.ByName("X64"), []string{"rn"}, false); err == nil {
		t.Error("32->64 wire accepted")
	}
}

func TestPruneInputs(t *testing.T) {
	b, tgt := loadMini(t)
	// SUBS ; CSETeq: SUBS's operands survive (they feed the flags), and
	// nothing is wired, so inputs are exactly SUBS's two registers.
	s := Single(b, tgt.ByName("SUBS"))
	s2, err := Append(b, s, tgt.ByName("CSETeq"), nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Inputs) != 2 {
		t.Errorf("inputs = %+v", s2.Inputs)
	}
}
