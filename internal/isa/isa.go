// Package isa defines the target-independent instruction representation
// used by the synthesis pipeline: instructions with per-effect bitvector
// terms (obtained from the spec DSL by symbolic execution) and the
// composition of instructions into sequences following the paper's rules
// (§IV-A):
//
//  1. every instruction must have a (transitive) impact on the effect of
//     the last instruction of the sequence;
//  2. no instruction is appended after an instruction with a PC effect;
//  3. at most one memory operation per sequence.
package isa

import (
	"fmt"
	"strconv"

	"iselgen/internal/bv"
	"iselgen/internal/obs"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

// Instruction is one machine instruction variant (attribute assignments
// like condition codes are expanded into separate Instructions, as in the
// paper).
type Instruction struct {
	Name     string
	Operands []spec.Operand
	Effects  []spec.Effect // over unprefixed operand variables
	// Latency is the simulator cost in cycles; Size the encoding bytes
	// (derived from Enc when the spec declares an encoding clause).
	Latency int
	Size    int
	// Enc is the machine encoding from the spec's enc clause, nil when
	// the spec declares none (such targets cannot be assembled).
	Enc *spec.Encoding
	// SignedImms marks immediate operands consumed under sext in the
	// semantics; disassembly renders them as signed. Nil when Enc is nil.
	SignedImms map[string]bool
}

// NumInputs returns the operand count — the unit of the paper's cost
// metric (§V-A3).
func (i *Instruction) NumInputs() int { return len(i.Operands) }

// HasPCEffect reports whether any effect writes the PC.
func (i *Instruction) HasPCEffect() bool {
	for _, e := range i.Effects {
		if e.Kind == spec.EffPC {
			return true
		}
	}
	return false
}

// memOps counts loads inside effect terms plus store effects.
func memOps(effects []spec.Effect) int {
	n := 0
	counted := map[*term.Term]bool{}
	for _, e := range effects {
		if e.Kind == spec.EffMem {
			n++
		}
		for _, l := range e.T.Loads() {
			if !counted[l] {
				counted[l] = true
				n++
			}
		}
	}
	return n
}

// regEffect returns the instruction's primary register effect, if any.
func regEffect(effects []spec.Effect) (spec.Effect, bool) {
	for _, e := range effects {
		if e.Kind == spec.EffReg && e.Dest == "rd" {
			return e, true
		}
	}
	return spec.Effect{}, false
}

// flagEffect returns the effect writing the given flag, if any.
func flagEffect(effects []spec.Effect, flag string) (spec.Effect, bool) {
	for _, e := range effects {
		if e.Kind == spec.EffFlag && e.Dest == flag {
			return e, true
		}
	}
	return spec.Effect{}, false
}

// Sequence is a chain of instructions whose intermediate results are
// wired into later instructions. Effects are the *final* instruction's
// effects expressed over the sequence's renamed input variables
// ("s0.rn", "s1.imm", ...).
type Sequence struct {
	Insts   []*Instruction
	Wirings [][]string // per instruction: operand names fed by the previous result
	Effects []spec.Effect
	// Inputs lists the sequence's free operand variables in deterministic
	// order: per instruction, declaration order, skipping wired operands.
	Inputs []SeqOperand
	// FixedImms records immediate operands bound to constants when the
	// sequence was specialized (BindImm) — e.g. the shift-by-32 of the
	// RISC-V zero-extension chains (§VII-A).
	FixedImms []FixedImm
}

// FixedImm is an immediate operand bound to a constant value.
type FixedImm struct {
	Inst int
	Op   string
	Val  bv.BV
}

// SeqOperand is one free input of a sequence.
type SeqOperand struct {
	Var   *term.Term // the renamed variable in Effects
	Inst  int        // instruction index
	Op    spec.Operand
	Flags bool // a consumed flag input (cross-instruction flag read)
}

// Cost implements the paper's cost metric: the total number of input
// operands across all instructions of the sequence.
func (s *Sequence) Cost() int {
	c := 0
	for _, in := range s.Insts {
		c += in.NumInputs()
	}
	return c
}

// Len returns the number of instructions.
func (s *Sequence) Len() int { return len(s.Insts) }

// String renders the sequence as "INST1 ; INST2".
func (s *Sequence) String() string {
	out := ""
	for i, in := range s.Insts {
		if i > 0 {
			out += " ; "
		}
		out += in.Name
	}
	return out
}

// Single wraps one instruction into a sequence, renaming its variables
// with the "s0." prefix.
func Single(b *term.Builder, inst *Instruction) *Sequence {
	seq := &Sequence{Insts: []*Instruction{inst}, Wirings: [][]string{nil}}
	subst := renameMap(b, inst, 0, nil, nil)
	for _, e := range inst.Effects {
		seq.Effects = append(seq.Effects, spec.Effect{
			Kind: e.Kind, Dest: e.Dest, T: b.Rebuild(e.T, subst),
		})
	}
	for _, op := range inst.Operands {
		seq.Inputs = append(seq.Inputs, SeqOperand{
			Var: seqVar(b, 0, op), Inst: 0, Op: op,
		})
	}
	// Unwired flag reads remain sequence inputs.
	seq.addFlagInputs(b)
	return seq
}

// seqVar returns the renamed variable for instruction position idx.
func seqVar(b *term.Builder, idx int, op spec.Operand) *term.Term {
	var kind term.VarKind
	switch op.Kind {
	case spec.OpReg:
		kind = term.KindReg
	case spec.OpVec:
		kind = term.KindVecReg
	default:
		kind = term.KindImm
	}
	tag := "r"
	switch kind {
	case term.KindVecReg:
		tag = "v"
	case term.KindImm:
		tag = "i"
	}
	// Concatenation instead of fmt.Sprintf: this runs for every operand
	// of every candidate composition during enumeration.
	name := "s" + strconv.Itoa(idx) + "." + op.Name + "." + tag + strconv.Itoa(op.Width)
	return b.VarT(name, kind, op.Width)
}

// renameMap builds the substitution from an instruction's unprefixed
// variables to sequence-scoped ones. wired maps operand names to the
// terms they receive; flagIn maps flag names to terms (previous
// instruction's flag effects) when consumed.
func renameMap(b *term.Builder, inst *Instruction, idx int,
	wired map[string]*term.Term, flagIn map[string]*term.Term) map[*term.Term]*term.Term {
	subst := map[*term.Term]*term.Term{}
	for _, op := range inst.Operands {
		src := b.VarT(inst.Name+"."+op.Name, varKind(op), op.Width)
		if w, ok := wired[op.Name]; ok {
			subst[src] = w
		} else {
			subst[src] = seqVar(b, idx, op)
		}
	}
	// Flags: wire from the previous instruction when available, else
	// rename to sequence-scoped flag inputs.
	for _, f := range spec.FlagNames {
		src := b.VarT(inst.Name+"."+f, term.KindFlag, 1)
		if t, ok := flagIn[f]; ok {
			subst[src] = t
		} else {
			subst[src] = b.VarT("s"+strconv.Itoa(idx)+"."+f, term.KindFlag, 1)
		}
	}
	// PC reads share one sequence-level variable (intra-sequence PC
	// deltas of a few bytes are folded into the immediate at encoding).
	subst[b.VarT(inst.Name+".pc", term.KindPC, 64)] = b.VarT("pc", term.KindPC, 64)
	return subst
}

func varKind(op spec.Operand) term.VarKind {
	switch op.Kind {
	case spec.OpReg:
		return term.KindReg
	case spec.OpVec:
		return term.KindVecReg
	default:
		return term.KindImm
	}
}

// addFlagInputs records remaining flag variables appearing in the effects
// as explicit sequence inputs.
func (s *Sequence) addFlagInputs(b *term.Builder) {
	seen := map[string]bool{}
	for _, in := range s.Inputs {
		seen[in.Var.Name] = true
	}
	for _, e := range s.Effects {
		for _, v := range e.T.Vars() {
			if v.Kind == term.KindFlag && !seen[v.Name] {
				seen[v.Name] = true
				s.Inputs = append(s.Inputs, SeqOperand{Var: v, Flags: true})
			}
		}
	}
}

// CanAppend reports whether inst may be appended to s under the paper's
// composition rules, without constructing the result.
func (s *Sequence) CanAppend(inst *Instruction) bool {
	// Rule 2: nothing follows a PC effect.
	for _, e := range s.Effects {
		if e.Kind == spec.EffPC {
			return false
		}
	}
	// Something must be consumable: a primary register result or flag
	// outputs (a flag-only producer like x86 CMP can only be consumed by
	// a flag reader).
	_, hasReg := regEffect(s.Effects)
	hasFlags := false
	for _, e := range s.Effects {
		if e.Kind == spec.EffFlag {
			hasFlags = true
		}
	}
	if !hasReg && !hasFlags {
		return false
	}
	// Intermediate write-backs / secondary outputs would be lost.
	for _, e := range s.Effects {
		if e.Kind == spec.EffWB || (e.Kind == spec.EffReg && e.Dest == "rd2") {
			return false
		}
	}
	// Rule 3: at most one memory operation in the whole sequence.
	if memOps(s.Effects)+memOps(inst.Effects) > 1 {
		return false
	}
	return true
}

// Append composes inst onto s, wiring the named register operands of inst
// to s's primary result (rule 1 requires at least one wire or a consumed
// flag). consumeFlags wires inst's flag reads to s's flag effects when s
// produces them.
func Append(b *term.Builder, s *Sequence, inst *Instruction, wireOps []string, consumeFlags bool) (*Sequence, error) {
	if !s.CanAppend(inst) {
		return nil, fmt.Errorf("isa: cannot append %s to %s", inst.Name, s)
	}
	prev, hasPrev := regEffect(s.Effects)
	idx := len(s.Insts)

	wired := map[string]*term.Term{}
	if len(wireOps) > 0 && !hasPrev {
		return nil, fmt.Errorf("isa: %s has no register result to wire", s)
	}
	for _, name := range wireOps {
		op, ok := findOperand(inst, name)
		if !ok {
			return nil, fmt.Errorf("isa: %s has no operand %q", inst.Name, name)
		}
		if op.Kind == spec.OpImm {
			return nil, fmt.Errorf("isa: cannot wire immediate operand %q", name)
		}
		if op.Width != prev.T.W() {
			return nil, fmt.Errorf("isa: wire width mismatch: %s.%s is %d bits, result is %d",
				inst.Name, name, op.Width, prev.T.W())
		}
		wired[name] = prev.T
	}

	flagIn := map[string]*term.Term{}
	flagsConsumed := false
	if consumeFlags {
		for _, f := range spec.FlagNames {
			if fe, ok := flagEffect(s.Effects, f); ok {
				flagIn[f] = fe.T
				flagsConsumed = true
			}
		}
	}
	if len(wireOps) == 0 && !flagsConsumed {
		return nil, fmt.Errorf("isa: rule 1 violated: %s would not depend on %s", inst.Name, s)
	}

	subst := renameMap(b, inst, idx, wired, flagIn)
	ns := &Sequence{
		Insts:     append(append([]*Instruction(nil), s.Insts...), inst),
		Wirings:   append(append([][]string(nil), s.Wirings...), wireOps),
		FixedImms: append([]FixedImm(nil), s.FixedImms...),
	}
	for _, e := range inst.Effects {
		ns.Effects = append(ns.Effects, spec.Effect{
			Kind: e.Kind, Dest: e.Dest, T: b.Rebuild(e.T, subst),
		})
	}
	// Inputs: all previous inputs (still referenced through the wire),
	// then inst's unwired operands.
	ns.Inputs = append(ns.Inputs, s.Inputs...)
	for _, op := range inst.Operands {
		if _, ok := wired[op.Name]; ok {
			continue
		}
		ns.Inputs = append(ns.Inputs, SeqOperand{Var: seqVar(b, idx, op), Inst: idx, Op: op})
	}
	ns.pruneInputs()
	ns.addFlagInputs(b)
	return ns, nil
}

// AppendCache memoizes the base-independent work of Append for the
// enumerator's hot loop. For a fixed (instruction, wired operand,
// consumed-flag set, position) the rename substitution and the rebuilds
// of every effect subterm that does not contain a wired source variable
// are the same for every base sequence; only the "spine" — the nodes
// whose subtree reaches a wired variable — depends on the base. The
// template stores the generic substitution plus the off-spine rebuild
// memo, and each Append clones it and overwrites the wired entries, so
// Rebuild re-walks only the spine. Results are pointer-identical to the
// uncached Append because the hash-consing constructors see the same
// final arguments either way. Not safe for concurrent use.
type AppendCache struct {
	m map[appendKey]*appendTemplate
}

type appendKey struct {
	inst  *Instruction
	idx   int
	wired string // wired operand name, "" when wiring flags only
	flags uint8  // bitmask over spec.FlagNames of consumed flags
}

type appendTemplate struct {
	subst    map[*term.Term]*term.Term // generic entries + off-spine memo
	wiredSrc *term.Term                // source var of the wired operand, nil when flags-only
	wiredW   int                       // its width
	flagSrc  []*term.Term              // source vars of consumed flags, in FlagNames order
	inputs   []SeqOperand              // inst's unwired operands, pre-renamed
}

// NewAppendCache returns an empty cache.
func NewAppendCache() *AppendCache {
	return &AppendCache{m: map[appendKey]*appendTemplate{}}
}

// Append behaves exactly like the package-level Append — same results
// (pointer-identical terms), same rejections — restricted to at most one
// wired operand, which is all the enumerator uses.
func (c *AppendCache) Append(b *term.Builder, s *Sequence, inst *Instruction, wireOps []string, consumeFlags bool) (*Sequence, error) {
	if len(wireOps) > 1 {
		return Append(b, s, inst, wireOps, consumeFlags)
	}
	if !s.CanAppend(inst) {
		return nil, fmt.Errorf("isa: cannot append %s to %s", inst.Name, s)
	}
	prev, hasPrev := regEffect(s.Effects)
	idx := len(s.Insts)

	if len(wireOps) > 0 && !hasPrev {
		return nil, fmt.Errorf("isa: %s has no register result to wire", s)
	}
	var flagTerms []*term.Term
	var fmask uint8
	if consumeFlags {
		for i, f := range spec.FlagNames {
			if fe, ok := flagEffect(s.Effects, f); ok {
				fmask |= 1 << i
				flagTerms = append(flagTerms, fe.T)
			}
		}
	}
	if len(wireOps) == 0 && fmask == 0 {
		return nil, fmt.Errorf("isa: rule 1 violated: %s would not depend on %s", inst.Name, s)
	}

	key := appendKey{inst: inst, idx: idx, flags: fmask}
	if len(wireOps) == 1 {
		key.wired = wireOps[0]
	}
	tpl, ok := c.m[key]
	if !ok {
		var err error
		tpl, err = buildAppendTemplate(b, inst, idx, key.wired, fmask)
		if err != nil {
			return nil, err
		}
		c.m[key] = tpl
	}
	if tpl.wiredSrc != nil && tpl.wiredW != prev.T.W() {
		return nil, fmt.Errorf("isa: wire width mismatch: %s.%s is %d bits, result is %d",
			inst.Name, key.wired, tpl.wiredW, prev.T.W())
	}

	// The wired/flag bindings go into a small per-call overlay instead of
	// a clone of the template substitution: Rebuild reads through to the
	// pristine template memo for off-spine subterms and records spine
	// rewrites (which depend on this base's terms) only in the overlay.
	// Same results, and the allocation is a handful of entries instead
	// of a copy of the whole memo.
	ov := make(map[*term.Term]*term.Term, 8)
	if tpl.wiredSrc != nil {
		ov[tpl.wiredSrc] = prev.T
	}
	for i, src := range tpl.flagSrc {
		ov[src] = flagTerms[i]
	}

	ns := &Sequence{
		Insts:     make([]*Instruction, len(s.Insts)+1),
		Wirings:   make([][]string, len(s.Wirings)+1),
		FixedImms: append([]FixedImm(nil), s.FixedImms...),
		Effects:   make([]spec.Effect, 0, len(inst.Effects)),
	}
	copy(ns.Insts, s.Insts)
	ns.Insts[len(s.Insts)] = inst
	copy(ns.Wirings, s.Wirings)
	ns.Wirings[len(s.Wirings)] = wireOps
	for _, e := range inst.Effects {
		ns.Effects = append(ns.Effects, spec.Effect{
			Kind: e.Kind, Dest: e.Dest, T: b.RebuildOverlay(e.T, tpl.subst, ov),
		})
	}
	// Inline pruneInputs/addFlagInputs: the input and variable counts are
	// small enough that nested scans over the cached Vars() slices beat
	// building the per-call name maps the Sequence methods use. Results
	// are identical: keep inputs some effect still references, then
	// surface flag variables the effects read that are not inputs yet.
	ns.Inputs = make([]SeqOperand, 0, len(s.Inputs)+len(tpl.inputs)+2)
	keepLive := func(in SeqOperand) {
		for _, e := range ns.Effects {
			for _, v := range e.T.Vars() {
				if v.Name == in.Var.Name {
					ns.Inputs = append(ns.Inputs, in)
					return
				}
			}
		}
	}
	for _, in := range s.Inputs {
		keepLive(in)
	}
	for _, in := range tpl.inputs {
		keepLive(in)
	}
	for _, e := range ns.Effects {
		for _, v := range e.T.Vars() {
			if v.Kind != term.KindFlag {
				continue
			}
			dup := false
			for _, in := range ns.Inputs {
				if in.Var.Name == v.Name {
					dup = true
					break
				}
			}
			if !dup {
				ns.Inputs = append(ns.Inputs, SeqOperand{Var: v, Flags: true})
			}
		}
	}
	return ns, nil
}

// buildAppendTemplate constructs the reusable part of an Append: the
// generic substitution with every effect subterm that does not reach a
// wired source variable already rebuilt and memoized.
func buildAppendTemplate(b *term.Builder, inst *Instruction, idx int, wired string, fmask uint8) (*appendTemplate, error) {
	tpl := &appendTemplate{}
	wiredSet := map[*term.Term]bool{}
	if wired != "" {
		op, ok := findOperand(inst, wired)
		if !ok {
			return nil, fmt.Errorf("isa: %s has no operand %q", inst.Name, wired)
		}
		if op.Kind == spec.OpImm {
			return nil, fmt.Errorf("isa: cannot wire immediate operand %q", wired)
		}
		tpl.wiredSrc = b.VarT(inst.Name+"."+op.Name, varKind(op), op.Width)
		tpl.wiredW = op.Width
		wiredSet[tpl.wiredSrc] = true
	}
	for i, f := range spec.FlagNames {
		if fmask&(1<<i) != 0 {
			src := b.VarT(inst.Name+"."+f, term.KindFlag, 1)
			tpl.flagSrc = append(tpl.flagSrc, src)
			wiredSet[src] = true
		}
	}

	// Generic substitution, then rebuild every effect once so subst
	// doubles as a full memo over the effect DAGs.
	subst := renameMap(b, inst, idx, nil, nil)
	for _, e := range inst.Effects {
		b.Rebuild(e.T, subst)
	}
	// Drop the spine: entries whose subtree reaches a wired source var
	// must be recomputed per call (including the wired vars themselves).
	reaches := map[*term.Term]bool{}
	var mark func(u *term.Term) bool
	mark = func(u *term.Term) bool {
		if r, ok := reaches[u]; ok {
			return r
		}
		reaches[u] = false // guard (terms are acyclic; this is just a memo seed)
		r := wiredSet[u]
		for _, a := range u.Args {
			if mark(a) {
				r = true
			}
		}
		reaches[u] = r
		return r
	}
	for _, e := range inst.Effects {
		mark(e.T)
	}
	for u, r := range reaches {
		if r {
			delete(subst, u)
		}
	}
	tpl.subst = subst

	for _, op := range inst.Operands {
		if op.Name == wired {
			continue
		}
		tpl.inputs = append(tpl.inputs, SeqOperand{Var: seqVar(b, idx, op), Inst: idx, Op: op})
	}
	return tpl, nil
}

// pruneInputs drops inputs no longer referenced by any effect (operands
// of earlier instructions that fed only dropped effects).
func (s *Sequence) pruneInputs() {
	live := map[string]bool{}
	for _, e := range s.Effects {
		for _, v := range e.T.Vars() {
			live[v.Name] = true
		}
	}
	kept := s.Inputs[:0]
	for _, in := range s.Inputs {
		if live[in.Var.Name] {
			kept = append(kept, in)
		}
	}
	s.Inputs = kept
}

func findOperand(inst *Instruction, name string) (spec.Operand, bool) {
	for _, op := range inst.Operands {
		if op.Name == name {
			return op, true
		}
	}
	return spec.Operand{}, false
}

// Target bundles a named architecture: its instruction list plus
// encoding metadata.
type Target struct {
	Name  string
	Insts []*Instruction
	// Reserved holds the spec's reserved opcode-space patterns and
	// RegNumBits the register-number field width shared by all
	// encodings (0 when the spec declares no encodings).
	Reserved   []*spec.Encoding
	RegNumBits int
}

// HasEncodings reports whether every instruction carries an encoding
// clause, i.e. the target can be assembled and disassembled.
func (t *Target) HasEncodings() bool {
	for _, i := range t.Insts {
		if i.Enc == nil {
			return false
		}
	}
	return len(t.Insts) > 0
}

// ByName returns the instruction with the given name.
func (t *Target) ByName(name string) *Instruction {
	for _, i := range t.Insts {
		if i.Name == name {
			return i
		}
	}
	return nil
}

// LoadTarget parses and symbolizes a spec source into a Target. latency
// maps instruction names to cycle costs (default 1). size is the
// declared uniform size in bytes for instructions without an encoding
// clause (0 defaults to 4); when an instruction declares an encoding,
// its size is *derived* from the encoding width, and a non-zero
// declared size that contradicts any derived size is rejected — the
// spec, not the metadata, is the source of truth.
func LoadTarget(b *term.Builder, name, src string, latency map[string]int, size int) (*Target, error) {
	f, err := spec.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("isa %s: %w", name, err)
	}
	sp := obs.DefaultTracer().Start("spec/symexec").
		SetStr("target", name).SetInt("instructions", int64(len(f.Insts)))
	defer sp.End()
	t := &Target{Name: name, Reserved: f.Reserved}
	var sems []*spec.Sem
	for _, def := range f.Insts {
		sem, err := spec.Symbolize(def, b, def.Name+".")
		if err != nil {
			return nil, fmt.Errorf("isa %s: %w", name, err)
		}
		sems = append(sems, sem)
		lat := latency[def.Name]
		if lat == 0 {
			lat = 1
		}
		in := &Instruction{
			Name:     def.Name,
			Operands: sem.Operands,
			Effects:  sem.Effects,
			Latency:  lat,
			Size:     size,
			Enc:      def.Enc,
		}
		if def.Enc != nil {
			derived := def.Enc.SizeBytes()
			if size != 0 && size != derived {
				return nil, fmt.Errorf("isa %s: %s: declared size %d contradicts %d-byte encoding",
					name, def.Name, size, derived)
			}
			in.Size = derived
			in.SignedImms = spec.SignedImms(sem)
		} else if size == 0 {
			in.Size = 4
		}
		t.Insts = append(t.Insts, in)
	}
	if err := spec.CheckEncodings(f, sems); err != nil {
		return nil, fmt.Errorf("isa %s: %w", name, err)
	}
	t.RegNumBits = spec.RegNumBits(f)
	return t, nil
}

// BindImm specializes a sequence by fixing the immediate operand of
// instruction instIdx to a constant: the variable is substituted in the
// effects and removed from the inputs, and the binding is recorded for
// emission.
func BindImm(b *term.Builder, s *Sequence, instIdx int, opName string, val bv.BV) (*Sequence, error) {
	inst := s.Insts[instIdx]
	op, ok := findOperand(inst, opName)
	if !ok || op.Kind != spec.OpImm {
		return nil, fmt.Errorf("isa: %s has no immediate operand %q", inst.Name, opName)
	}
	if val.W() != op.Width {
		return nil, fmt.Errorf("isa: BindImm width %d for %d-bit operand", val.W(), op.Width)
	}
	v := seqVar(b, instIdx, op)
	subst := map[*term.Term]*term.Term{v: b.ConstBV(val)}
	ns := &Sequence{
		Insts:     s.Insts,
		Wirings:   s.Wirings,
		FixedImms: append(append([]FixedImm(nil), s.FixedImms...), FixedImm{Inst: instIdx, Op: opName, Val: val}),
	}
	for _, e := range s.Effects {
		ns.Effects = append(ns.Effects, spec.Effect{Kind: e.Kind, Dest: e.Dest, T: b.Rebuild(e.T, subst)})
	}
	for _, in := range s.Inputs {
		if in.Inst == instIdx && in.Op.Name == opName {
			continue
		}
		ns.Inputs = append(ns.Inputs, in)
	}
	return ns, nil
}
