// Package riscv defines the RV64IM instruction set (the integer portion
// of the paper's rv64imafd profile — floating point is out of scope for
// the synthesis, as in the paper) in the spec DSL.
//
// The W-form instructions operate on the low 32 bits and sign-extend the
// result, exactly as the SAIL model specifies. Branch variants expand per
// comparison, mirroring the paper's attribute expansion.
//
// Every instruction carries its real RV64IM machine encoding (R/I/S/B/
// U/J formats, including the scrambled branch and jump immediate bit
// placement), so the same spec drives the assembler, disassembler, and
// machine-code emulator in internal/enc. The x0-based idioms (MV, NEG,
// SEQZ, ...) are distinct instructions here rather than operand special
// cases, so they live in the custom-0 opcode space (0x0b) to keep the
// opcode space unambiguous — the architectural encodings of those
// idioms (e.g. ADDI rd, rs, 0 for MV) would collide with their parent
// instructions.
package riscv

import (
	"fmt"
	"strings"

	"iselgen/internal/isa"
	"iselgen/internal/term"
)

// Base opcodes (bits [6:0]).
const (
	opLoad   = 0x03
	opOpImm  = 0x13
	opAuipc  = 0x17
	opOpImmW = 0x1b
	opStore  = 0x23
	opOp     = 0x33
	opLui    = 0x37
	opOpW    = 0x3b
	opBranch = 0x63
	opJalr   = 0x67
	opJal    = 0x6f
	opCustom = 0x0b // custom-0: this model's register idioms
)

// encR renders an R-type encoding: funct7 | rs2 | rs1 | funct3 | rd | op.
func encR(op, f3, f7 int) string {
	return fmt.Sprintf("enc(32) { [6:0]=0x%02x; [11:7]=rd; [14:12]=%d; [19:15]=rs1; [24:20]=rs2; [31:25]=0x%02x; }",
		op, f3, f7)
}

// encI renders an I-type encoding: imm[11:0] | rs1 | funct3 | rd | op.
func encI(op, f3 int) string {
	return fmt.Sprintf("enc(32) { [6:0]=0x%02x; [11:7]=rd; [14:12]=%d; [19:15]=rs1; [31:20]=imm; }", op, f3)
}

// encShift renders the shift-immediate form: funct | shamt | rs1 |
// funct3 | rd | op, with a 6-bit shamt for the 64-bit shifts (fhi at
// [31:26]) or a 5-bit shamt for the W forms (fhi at [31:25]).
func encShift(op, f3, shBits, fhi int) string {
	return fmt.Sprintf("enc(32) { [6:0]=0x%02x; [11:7]=rd; [14:12]=%d; [19:15]=rs1; [%d:20]=sh; [31:%d]=0x%02x; }",
		op, f3, 19+shBits, 20+shBits, fhi)
}

// encU renders a U-type encoding: imm[31:12] | rd | op.
func encU(op int) string {
	return fmt.Sprintf("enc(32) { [6:0]=0x%02x; [11:7]=rd; [31:12]=imm; }", op)
}

// encS renders an S-type encoding: imm[11:5] | rs2 | rs1 | funct3 |
// imm[4:0] | op.
func encS(f3 int) string {
	return fmt.Sprintf("enc(32) { [6:0]=0x%02x; [11:7]=imm[4:0]; [14:12]=%d; [19:15]=rs1; [24:20]=rs2; [31:25]=imm[11:5]; }",
		opStore, f3)
}

// encB renders a B-type encoding. The spec operand imm is the 12-bit
// halfword offset (offset>>1), so architectural offset bit k is operand
// bit k-1: imm[12|10:5] lands in [31|30:25] and imm[4:1|11] in [11:8|7].
func encB(f3 int) string {
	return fmt.Sprintf("enc(32) { [6:0]=0x%02x; [7]=imm[10]; [11:8]=imm[3:0]; [14:12]=%d; [19:15]=rs1; [24:20]=rs2; [30:25]=imm[9:4]; [31]=imm[11]; }",
		opBranch, f3)
}

// encJ renders the J-type JAL encoding: the 20-bit halfword offset
// scatters as imm[20|10:1|11|19:12] into [31|30:21|20|19:12].
func encJ(op int) string {
	return fmt.Sprintf("enc(32) { [6:0]=0x%02x; [11:7]=rd; [19:12]=imm[18:11]; [20]=imm[10]; [30:21]=imm[9:0]; [31]=imm[19]; }", op)
}

// Spec returns the RV64IM specification source.
func Spec() string {
	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format+"\n", args...) }

	// Register-register ALU ops.
	w("inst ADD(rs1: reg64, rs2: reg64) { rd = rs1 + rs2; } %s", encR(opOp, 0, 0x00))
	w("inst SUB(rs1: reg64, rs2: reg64) { rd = rs1 - rs2; } %s", encR(opOp, 0, 0x20))
	w("inst AND(rs1: reg64, rs2: reg64) { rd = rs1 & rs2; } %s", encR(opOp, 7, 0x00))
	w("inst OR(rs1: reg64, rs2: reg64) { rd = rs1 | rs2; } %s", encR(opOp, 6, 0x00))
	w("inst XOR(rs1: reg64, rs2: reg64) { rd = rs1 ^ rs2; } %s", encR(opOp, 4, 0x00))
	w("inst SLL(rs1: reg64, rs2: reg64) { rd = rs1 << (rs2 %% 64:64); } %s", encR(opOp, 1, 0x00))
	w("inst SRL(rs1: reg64, rs2: reg64) { rd = rs1 >> (rs2 %% 64:64); } %s", encR(opOp, 5, 0x00))
	w("inst SRA(rs1: reg64, rs2: reg64) { rd = ashr(rs1, rs2 %% 64:64); } %s", encR(opOp, 5, 0x20))
	w("inst SLT(rs1: reg64, rs2: reg64) { rd = zext(slt(rs1, rs2), 64); } %s", encR(opOp, 2, 0x00))
	w("inst SLTU(rs1: reg64, rs2: reg64) { rd = zext(ult(rs1, rs2), 64); } %s", encR(opOp, 3, 0x00))

	// Immediate ALU ops (12-bit sign-extended immediates).
	w("inst ADDI(rs1: reg64, imm: imm12) { rd = rs1 + sext(imm, 64); } %s", encI(opOpImm, 0))
	w("inst ANDI(rs1: reg64, imm: imm12) { rd = rs1 & sext(imm, 64); } %s", encI(opOpImm, 7))
	w("inst ORI(rs1: reg64, imm: imm12) { rd = rs1 | sext(imm, 64); } %s", encI(opOpImm, 6))
	w("inst XORI(rs1: reg64, imm: imm12) { rd = rs1 ^ sext(imm, 64); } %s", encI(opOpImm, 4))
	w("inst SLTI(rs1: reg64, imm: imm12) { rd = zext(slt(rs1, sext(imm, 64)), 64); } %s", encI(opOpImm, 2))
	w("inst SLTIU(rs1: reg64, imm: imm12) { rd = zext(ult(rs1, sext(imm, 64)), 64); } %s", encI(opOpImm, 3))
	w("inst SLLI(rs1: reg64, sh: imm6) { rd = rs1 << zext(sh, 64); } %s", encShift(opOpImm, 1, 6, 0x00))
	w("inst SRLI(rs1: reg64, sh: imm6) { rd = rs1 >> zext(sh, 64); } %s", encShift(opOpImm, 5, 6, 0x00))
	w("inst SRAI(rs1: reg64, sh: imm6) { rd = ashr(rs1, zext(sh, 64)); } %s", encShift(opOpImm, 5, 6, 0x10))

	// Upper-immediate materialization.
	w("inst LUI(imm: imm20) { rd = sext(concat(imm, 0:12), 64); } %s", encU(opLui))
	w("inst AUIPC(imm: imm20) { rd = pc + sext(concat(imm, 0:12), 64); } %s", encU(opAuipc))
	// Constant zero and register move (x0-based idioms), custom-0 space.
	w("inst MVZERO() { rd = 0:64; } enc(32) { [6:0]=0x0b; [11:7]=rd; [14:12]=0; [31:15]=0; }")
	w("inst MV(rs1: reg64) { rd = rs1; } enc(32) { [6:0]=0x0b; [11:7]=rd; [14:12]=1; [19:15]=rs1; [31:20]=0; }")
	w("inst NEG(rs2: reg64) { rd = -rs2; } enc(32) { [6:0]=0x0b; [11:7]=rd; [14:12]=2; [19:15]=0; [24:20]=rs2; [31:25]=0; }")
	w("inst NOT(rs1: reg64) { rd = ~rs1; } enc(32) { [6:0]=0x0b; [11:7]=rd; [14:12]=3; [19:15]=rs1; [31:20]=0; }")
	w("inst SEQZ(rs1: reg64) { rd = zext(rs1 == 0, 64); } enc(32) { [6:0]=0x0b; [11:7]=rd; [14:12]=4; [19:15]=rs1; [31:20]=0; }")
	w("inst SNEZ(rs2: reg64) { rd = zext(ult(0:64, rs2), 64); } enc(32) { [6:0]=0x0b; [11:7]=rd; [14:12]=5; [19:15]=0; [24:20]=rs2; [31:25]=0; }")

	// W forms: operate on low 32 bits, sign-extend the 32-bit result.
	w("inst ADDW(rs1: reg64, rs2: reg64) { rd = sext(trunc(rs1, 32) + trunc(rs2, 32), 64); } %s", encR(opOpW, 0, 0x00))
	w("inst SUBW(rs1: reg64, rs2: reg64) { rd = sext(trunc(rs1, 32) - trunc(rs2, 32), 64); } %s", encR(opOpW, 0, 0x20))
	w("inst ADDIW(rs1: reg64, imm: imm12) { rd = sext(trunc(rs1, 32) + sext(imm, 32), 64); } %s", encI(opOpImmW, 0))
	w("inst SLLIW(rs1: reg64, sh: imm5) { rd = sext(trunc(rs1, 32) << zext(sh, 32), 64); } %s", encShift(opOpImmW, 1, 5, 0x00))
	w("inst SRLIW(rs1: reg64, sh: imm5) { rd = sext(trunc(rs1, 32) >> zext(sh, 32), 64); } %s", encShift(opOpImmW, 5, 5, 0x00))
	w("inst SRAIW(rs1: reg64, sh: imm5) { rd = sext(ashr(trunc(rs1, 32), zext(sh, 32)), 64); } %s", encShift(opOpImmW, 5, 5, 0x20))
	w("inst SLLW(rs1: reg64, rs2: reg64) { rd = sext(trunc(rs1, 32) << (trunc(rs2, 32) %% 32:32), 64); } %s", encR(opOpW, 1, 0x00))
	w("inst SRLW(rs1: reg64, rs2: reg64) { rd = sext(trunc(rs1, 32) >> (trunc(rs2, 32) %% 32:32), 64); } %s", encR(opOpW, 5, 0x00))
	w("inst SRAW(rs1: reg64, rs2: reg64) { rd = sext(ashr(trunc(rs1, 32), trunc(rs2, 32) %% 32:32), 64); } %s", encR(opOpW, 5, 0x20))

	// M extension.
	w("inst MUL(rs1: reg64, rs2: reg64) { rd = rs1 * rs2; } %s", encR(opOp, 0, 0x01))
	w("inst MULW(rs1: reg64, rs2: reg64) { rd = sext(trunc(rs1, 32) * trunc(rs2, 32), 64); } %s", encR(opOpW, 0, 0x01))
	w("inst MULH(rs1: reg64, rs2: reg64) { rd = trunc(ashr(sext(rs1, 128) * sext(rs2, 128), 64:128), 64); } %s", encR(opOp, 1, 0x01))
	w("inst MULHU(rs1: reg64, rs2: reg64) { rd = trunc((zext(rs1, 128) * zext(rs2, 128)) >> 64:128, 64); } %s", encR(opOp, 3, 0x01))
	w("inst MULHSU(rs1: reg64, rs2: reg64) { rd = trunc(ashr(sext(rs1, 128) * zext(rs2, 128), 64:128), 64); } %s", encR(opOp, 2, 0x01))
	w("inst DIV(rs1: reg64, rs2: reg64) { rd = sdiv(rs1, rs2); } %s", encR(opOp, 4, 0x01))
	w("inst DIVU(rs1: reg64, rs2: reg64) { rd = udiv(rs1, rs2); } %s", encR(opOp, 5, 0x01))
	w("inst REM(rs1: reg64, rs2: reg64) { rd = srem(rs1, rs2); } %s", encR(opOp, 6, 0x01))
	w("inst REMU(rs1: reg64, rs2: reg64) { rd = urem(rs1, rs2); } %s", encR(opOp, 7, 0x01))
	w("inst DIVW(rs1: reg64, rs2: reg64) { rd = sext(sdiv(trunc(rs1, 32), trunc(rs2, 32)), 64); } %s", encR(opOpW, 4, 0x01))
	w("inst DIVUW(rs1: reg64, rs2: reg64) { rd = sext(udiv(trunc(rs1, 32), trunc(rs2, 32)), 64); } %s", encR(opOpW, 5, 0x01))
	w("inst REMW(rs1: reg64, rs2: reg64) { rd = sext(srem(trunc(rs1, 32), trunc(rs2, 32)), 64); } %s", encR(opOpW, 6, 0x01))
	w("inst REMUW(rs1: reg64, rs2: reg64) { rd = sext(urem(trunc(rs1, 32), trunc(rs2, 32)), 64); } %s", encR(opOpW, 7, 0x01))

	// Loads (base + sign-extended 12-bit offset).
	for _, l := range []struct {
		name string
		bits int
		ext  string
		f3   int
	}{
		{"LB", 8, "sext", 0}, {"LH", 16, "sext", 1}, {"LW", 32, "sext", 2},
		{"LD", 64, "", 3}, {"LBU", 8, "zext", 4}, {"LHU", 16, "zext", 5}, {"LWU", 32, "zext", 6},
	} {
		val := fmt.Sprintf("load(rs1 + sext(imm, 64), %d)", l.bits)
		if l.ext != "" {
			val = fmt.Sprintf("%s(%s, 64)", l.ext, val)
		}
		w("inst %s(rs1: reg64, imm: imm12) { rd = %s; } %s", l.name, val, encI(opLoad, l.f3))
	}
	// Stores.
	for _, s := range []struct {
		name string
		bits int
		f3   int
	}{{"SB", 8, 0}, {"SH", 16, 1}, {"SW", 32, 2}, {"SD", 64, 3}} {
		val := "rs2"
		if s.bits < 64 {
			val = fmt.Sprintf("trunc(rs2, %d)", s.bits)
		}
		w("inst %s(rs2: reg64, rs1: reg64, imm: imm12) { mem[rs1 + sext(imm, 64), %d] = %s; } %s",
			s.name, s.bits, val, encS(s.f3))
	}

	// Branches (13-bit offsets, low bit implicit zero).
	for _, br := range []struct {
		name, cond string
		f3         int
	}{
		{"BEQ", "rs1 == rs2", 0}, {"BNE", "rs1 != rs2", 1},
		{"BLT", "slt(rs1, rs2)", 4}, {"BGE", "sge(rs1, rs2)", 5},
		{"BLTU", "ult(rs1, rs2)", 6}, {"BGEU", "uge(rs1, rs2)", 7},
	} {
		w("inst %s(rs1: reg64, rs2: reg64, imm: imm12) { if (%s) { pc = pc + sext(concat(imm, 0:1), 64); } } %s",
			br.name, br.cond, encB(br.f3))
	}
	w("inst JAL(imm: imm20) { rd = pc + 4; pc = pc + sext(concat(imm, 0:1), 64); } %s", encJ(opJal))
	// J is the jal-x0 alias; its architectural encoding would collide
	// with JAL in a pure pattern decoder, so it lives in custom-0.
	w("inst J(imm: imm20) { pc = pc + sext(concat(imm, 0:1), 64); } enc(32) { [6:0]=0x0b; [11:7]=imm[4:0]; [14:12]=6; [29:15]=imm[19:5]; [31:30]=0; }")
	w("inst JALR(rs1: reg64, imm: imm12) { rd = pc + 4; pc = (rs1 + sext(imm, 64)) & ~1:64; } %s", encI(opJalr, 0))

	// Opcode space this model never emits but real RV64 occupies: FENCE
	// and SYSTEM stay reserved so the decoder reports them explicitly.
	w("reserved(32) { [6:0]=0x0f; }")
	w("reserved(32) { [6:0]=0x73; }")

	return sb.String()
}

func latencies() map[string]int {
	lat := map[string]int{
		"MUL": 3, "MULW": 3, "MULH": 6, "MULHU": 6, "MULHSU": 6,
		"DIV": 20, "DIVU": 20, "REM": 20, "REMU": 20,
		"DIVW": 20, "DIVUW": 20, "REMW": 20, "REMUW": 20,
	}
	for _, n := range []string{"LB", "LH", "LW", "LD", "LBU", "LHU", "LWU"} {
		lat[n] = 3
	}
	return lat
}

// Load builds the RISC-V target in the given term builder. The declared
// size 4 is cross-checked against every derived encoding width.
func Load(b *term.Builder) (*isa.Target, error) {
	return isa.LoadTarget(b, "riscv", Spec(), latencies(), 4)
}
