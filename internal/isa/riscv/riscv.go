// Package riscv defines the RV64IM instruction set (the integer portion
// of the paper's rv64imafd profile — floating point is out of scope for
// the synthesis, as in the paper) in the spec DSL.
//
// The W-form instructions operate on the low 32 bits and sign-extend the
// result, exactly as the SAIL model specifies. Branch variants expand per
// comparison, mirroring the paper's attribute expansion.
package riscv

import (
	"fmt"
	"strings"

	"iselgen/internal/isa"
	"iselgen/internal/term"
)

// Spec returns the RV64IM specification source.
func Spec() string {
	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format+"\n", args...) }

	// Register-register ALU ops.
	w("inst ADD(rs1: reg64, rs2: reg64) { rd = rs1 + rs2; }")
	w("inst SUB(rs1: reg64, rs2: reg64) { rd = rs1 - rs2; }")
	w("inst AND(rs1: reg64, rs2: reg64) { rd = rs1 & rs2; }")
	w("inst OR(rs1: reg64, rs2: reg64) { rd = rs1 | rs2; }")
	w("inst XOR(rs1: reg64, rs2: reg64) { rd = rs1 ^ rs2; }")
	w("inst SLL(rs1: reg64, rs2: reg64) { rd = rs1 << (rs2 %% 64:64); }")
	w("inst SRL(rs1: reg64, rs2: reg64) { rd = rs1 >> (rs2 %% 64:64); }")
	w("inst SRA(rs1: reg64, rs2: reg64) { rd = ashr(rs1, rs2 %% 64:64); }")
	w("inst SLT(rs1: reg64, rs2: reg64) { rd = zext(slt(rs1, rs2), 64); }")
	w("inst SLTU(rs1: reg64, rs2: reg64) { rd = zext(ult(rs1, rs2), 64); }")

	// Immediate ALU ops (12-bit sign-extended immediates).
	w("inst ADDI(rs1: reg64, imm: imm12) { rd = rs1 + sext(imm, 64); }")
	w("inst ANDI(rs1: reg64, imm: imm12) { rd = rs1 & sext(imm, 64); }")
	w("inst ORI(rs1: reg64, imm: imm12) { rd = rs1 | sext(imm, 64); }")
	w("inst XORI(rs1: reg64, imm: imm12) { rd = rs1 ^ sext(imm, 64); }")
	w("inst SLTI(rs1: reg64, imm: imm12) { rd = zext(slt(rs1, sext(imm, 64)), 64); }")
	w("inst SLTIU(rs1: reg64, imm: imm12) { rd = zext(ult(rs1, sext(imm, 64)), 64); }")
	w("inst SLLI(rs1: reg64, sh: imm6) { rd = rs1 << zext(sh, 64); }")
	w("inst SRLI(rs1: reg64, sh: imm6) { rd = rs1 >> zext(sh, 64); }")
	w("inst SRAI(rs1: reg64, sh: imm6) { rd = ashr(rs1, zext(sh, 64)); }")

	// Upper-immediate materialization.
	w("inst LUI(imm: imm20) { rd = sext(concat(imm, 0:12), 64); }")
	w("inst AUIPC(imm: imm20) { rd = pc + sext(concat(imm, 0:12), 64); }")
	// Constant zero and register move (x0-based idioms).
	w("inst MVZERO() { rd = 0:64; }")
	w("inst MV(rs1: reg64) { rd = rs1; }")
	w("inst NEG(rs2: reg64) { rd = -rs2; }")
	w("inst NOT(rs1: reg64) { rd = ~rs1; }")
	w("inst SEQZ(rs1: reg64) { rd = zext(rs1 == 0, 64); }")
	w("inst SNEZ(rs2: reg64) { rd = zext(ult(0:64, rs2), 64); }")

	// W forms: operate on low 32 bits, sign-extend the 32-bit result.
	w("inst ADDW(rs1: reg64, rs2: reg64) { rd = sext(trunc(rs1, 32) + trunc(rs2, 32), 64); }")
	w("inst SUBW(rs1: reg64, rs2: reg64) { rd = sext(trunc(rs1, 32) - trunc(rs2, 32), 64); }")
	w("inst ADDIW(rs1: reg64, imm: imm12) { rd = sext(trunc(rs1, 32) + sext(imm, 32), 64); }")
	w("inst SLLIW(rs1: reg64, sh: imm5) { rd = sext(trunc(rs1, 32) << zext(sh, 32), 64); }")
	w("inst SRLIW(rs1: reg64, sh: imm5) { rd = sext(trunc(rs1, 32) >> zext(sh, 32), 64); }")
	w("inst SRAIW(rs1: reg64, sh: imm5) { rd = sext(ashr(trunc(rs1, 32), zext(sh, 32)), 64); }")
	w("inst SLLW(rs1: reg64, rs2: reg64) { rd = sext(trunc(rs1, 32) << (trunc(rs2, 32) %% 32:32), 64); }")
	w("inst SRLW(rs1: reg64, rs2: reg64) { rd = sext(trunc(rs1, 32) >> (trunc(rs2, 32) %% 32:32), 64); }")
	w("inst SRAW(rs1: reg64, rs2: reg64) { rd = sext(ashr(trunc(rs1, 32), trunc(rs2, 32) %% 32:32), 64); }")

	// M extension.
	w("inst MUL(rs1: reg64, rs2: reg64) { rd = rs1 * rs2; }")
	w("inst MULW(rs1: reg64, rs2: reg64) { rd = sext(trunc(rs1, 32) * trunc(rs2, 32), 64); }")
	w("inst MULH(rs1: reg64, rs2: reg64) { rd = trunc(ashr(sext(rs1, 128) * sext(rs2, 128), 64:128), 64); }")
	w("inst MULHU(rs1: reg64, rs2: reg64) { rd = trunc((zext(rs1, 128) * zext(rs2, 128)) >> 64:128, 64); }")
	w("inst MULHSU(rs1: reg64, rs2: reg64) { rd = trunc(ashr(sext(rs1, 128) * zext(rs2, 128), 64:128), 64); }")
	w("inst DIV(rs1: reg64, rs2: reg64) { rd = sdiv(rs1, rs2); }")
	w("inst DIVU(rs1: reg64, rs2: reg64) { rd = udiv(rs1, rs2); }")
	w("inst REM(rs1: reg64, rs2: reg64) { rd = srem(rs1, rs2); }")
	w("inst REMU(rs1: reg64, rs2: reg64) { rd = urem(rs1, rs2); }")
	w("inst DIVW(rs1: reg64, rs2: reg64) { rd = sext(sdiv(trunc(rs1, 32), trunc(rs2, 32)), 64); }")
	w("inst DIVUW(rs1: reg64, rs2: reg64) { rd = sext(udiv(trunc(rs1, 32), trunc(rs2, 32)), 64); }")
	w("inst REMW(rs1: reg64, rs2: reg64) { rd = sext(srem(trunc(rs1, 32), trunc(rs2, 32)), 64); }")
	w("inst REMUW(rs1: reg64, rs2: reg64) { rd = sext(urem(trunc(rs1, 32), trunc(rs2, 32)), 64); }")

	// Loads (base + sign-extended 12-bit offset).
	for _, l := range []struct {
		name string
		bits int
		ext  string
	}{
		{"LB", 8, "sext"}, {"LH", 16, "sext"}, {"LW", 32, "sext"},
		{"LD", 64, ""}, {"LBU", 8, "zext"}, {"LHU", 16, "zext"}, {"LWU", 32, "zext"},
	} {
		val := fmt.Sprintf("load(rs1 + sext(imm, 64), %d)", l.bits)
		if l.ext != "" {
			val = fmt.Sprintf("%s(%s, 64)", l.ext, val)
		}
		w("inst %s(rs1: reg64, imm: imm12) { rd = %s; }", l.name, val)
	}
	// Stores.
	for _, s := range []struct {
		name string
		bits int
	}{{"SB", 8}, {"SH", 16}, {"SW", 32}, {"SD", 64}} {
		val := "rs2"
		if s.bits < 64 {
			val = fmt.Sprintf("trunc(rs2, %d)", s.bits)
		}
		w("inst %s(rs2: reg64, rs1: reg64, imm: imm12) { mem[rs1 + sext(imm, 64), %d] = %s; }",
			s.name, s.bits, val)
	}

	// Branches (13-bit offsets, low bit implicit zero).
	for _, br := range []struct{ name, cond string }{
		{"BEQ", "rs1 == rs2"}, {"BNE", "rs1 != rs2"},
		{"BLT", "slt(rs1, rs2)"}, {"BGE", "sge(rs1, rs2)"},
		{"BLTU", "ult(rs1, rs2)"}, {"BGEU", "uge(rs1, rs2)"},
	} {
		w("inst %s(rs1: reg64, rs2: reg64, imm: imm12) { if (%s) { pc = pc + sext(concat(imm, 0:1), 64); } }",
			br.name, br.cond)
	}
	w("inst JAL(imm: imm20) { rd = pc + 4; pc = pc + sext(concat(imm, 0:1), 64); }")
	w("inst J(imm: imm20) { pc = pc + sext(concat(imm, 0:1), 64); }")
	w("inst JALR(rs1: reg64, imm: imm12) { rd = pc + 4; pc = (rs1 + sext(imm, 64)) & ~1:64; }")

	return sb.String()
}

func latencies() map[string]int {
	lat := map[string]int{
		"MUL": 3, "MULW": 3, "MULH": 6, "MULHU": 6, "MULHSU": 6,
		"DIV": 20, "DIVU": 20, "REM": 20, "REMU": 20,
		"DIVW": 20, "DIVUW": 20, "REMW": 20, "REMUW": 20,
	}
	for _, n := range []string{"LB", "LH", "LW", "LD", "LBU", "LHU", "LWU"} {
		lat[n] = 3
	}
	return lat
}

// Load builds the RISC-V target in the given term builder.
func Load(b *term.Builder) (*isa.Target, error) {
	return isa.LoadTarget(b, "riscv", Spec(), latencies(), 4)
}
