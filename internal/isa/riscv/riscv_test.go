package riscv

import (
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/isa"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

func load(t *testing.T) (*term.Builder, *isa.Target) {
	t.Helper()
	b := term.NewBuilder()
	tgt, err := Load(b)
	if err != nil {
		t.Fatal(err)
	}
	return b, tgt
}

func evalRd(t *testing.T, tgt *isa.Target, name string, binds map[string]bv.BV) bv.BV {
	t.Helper()
	inst := tgt.ByName(name)
	if inst == nil {
		t.Fatalf("no instruction %s", name)
	}
	env := term.NewEnv()
	for k, v := range binds {
		env.Bind(name+"."+k, v)
	}
	for _, e := range inst.Effects {
		if e.Kind == spec.EffReg && e.Dest == "rd" {
			return e.T.Eval(env)
		}
	}
	t.Fatalf("%s has no rd effect", name)
	return bv.BV{}
}

func TestCount(t *testing.T) {
	_, tgt := load(t)
	if len(tgt.Insts) < 60 {
		t.Errorf("only %d instructions", len(tgt.Insts))
	}
}

func TestWFormsSignExtend(t *testing.T) {
	_, tgt := load(t)
	// ADDW of values whose 32-bit sum has the sign bit set must
	// sign-extend: 0x7fffffff + 1 = 0x80000000 -> 0xffffffff80000000.
	got := evalRd(t, tgt, "ADDW", map[string]bv.BV{
		"rs1": bv.New(64, 0x7fffffff), "rs2": bv.New(64, 1)})
	if got.Lo != 0xffffffff80000000 {
		t.Errorf("ADDW = %#x", got.Lo)
	}
	// High input bits are ignored.
	got = evalRd(t, tgt, "ADDW", map[string]bv.BV{
		"rs1": bv.New(64, 0xdeadbeef_00000002), "rs2": bv.New(64, 3)})
	if got.Lo != 5 {
		t.Errorf("ADDW high-bits = %#x", got.Lo)
	}
	// SRAIW shifts the low word arithmetically.
	got = evalRd(t, tgt, "SRAIW", map[string]bv.BV{
		"rs1": bv.New(64, 0x80000000), "sh": bv.New(5, 4)})
	if got.Lo != 0xfffffffff8000000 {
		t.Errorf("SRAIW = %#x", got.Lo)
	}
}

func TestImmediatesSignExtend(t *testing.T) {
	_, tgt := load(t)
	got := evalRd(t, tgt, "ADDI", map[string]bv.BV{
		"rs1": bv.New(64, 10), "imm": bv.NewInt(12, -3)})
	if got.Lo != 7 {
		t.Errorf("ADDI -3 = %d", got.Lo)
	}
	got = evalRd(t, tgt, "LUI", map[string]bv.BV{"imm": bv.New(20, 0x80000)})
	if got.Lo != 0xffffffff80000000 {
		t.Errorf("LUI = %#x", got.Lo)
	}
}

func TestComparisons(t *testing.T) {
	_, tgt := load(t)
	got := evalRd(t, tgt, "SLT", map[string]bv.BV{
		"rs1": bv.NewInt(64, -1), "rs2": bv.New(64, 0)})
	if got.Lo != 1 {
		t.Errorf("SLT(-1,0) = %d", got.Lo)
	}
	got = evalRd(t, tgt, "SLTU", map[string]bv.BV{
		"rs1": bv.NewInt(64, -1), "rs2": bv.New(64, 0)})
	if got.Lo != 0 {
		t.Errorf("SLTU(max,0) = %d", got.Lo)
	}
}

func TestMulDivSemantics(t *testing.T) {
	_, tgt := load(t)
	got := evalRd(t, tgt, "MULHU", map[string]bv.BV{
		"rs1": bv.New(64, 1<<32), "rs2": bv.New(64, 1<<33)})
	if got.Lo != 2 {
		t.Errorf("MULHU = %d, want 2", got.Lo)
	}
	got = evalRd(t, tgt, "MULH", map[string]bv.BV{
		"rs1": bv.NewInt(64, -1), "rs2": bv.New(64, 5)})
	if got.Int64() != -1 {
		t.Errorf("MULH(-1,5) = %d, want -1", got.Int64())
	}
	// RISC-V division by zero: quotient all ones, remainder = dividend.
	got = evalRd(t, tgt, "DIVU", map[string]bv.BV{
		"rs1": bv.New(64, 42), "rs2": bv.Zero(64)})
	if !got.IsOnes() {
		t.Errorf("DIVU/0 = %v", got)
	}
	got = evalRd(t, tgt, "REMU", map[string]bv.BV{
		"rs1": bv.New(64, 42), "rs2": bv.Zero(64)})
	if got.Lo != 42 {
		t.Errorf("REMU/0 = %v", got)
	}
}

func TestLoadsExtend(t *testing.T) {
	_, tgt := load(t)
	lb := tgt.ByName("LB")
	if lb.Effects[0].T.Op != term.SExt {
		t.Errorf("LB is not sign-extending: %s", lb.Effects[0].T)
	}
	lbu := tgt.ByName("LBU")
	if lbu.Effects[0].T.Op != term.ZExt {
		t.Errorf("LBU is not zero-extending: %s", lbu.Effects[0].T)
	}
	if tgt.ByName("LD").Latency != 3 {
		t.Error("LD latency")
	}
}

func TestBranchAndJAL(t *testing.T) {
	_, tgt := load(t)
	beq := tgt.ByName("BEQ")
	env := term.NewEnv()
	env.Bind("BEQ.rs1", bv.New(64, 4))
	env.Bind("BEQ.rs2", bv.New(64, 4))
	env.Bind("BEQ.imm", bv.New(12, 8))
	env.Bind("BEQ.pc", bv.New(64, 0x100))
	if got := beq.Effects[0].T.Eval(env); got.Lo != 0x110 {
		t.Errorf("BEQ taken = %#x", got.Lo)
	}
	jal := tgt.ByName("JAL")
	if len(jal.Effects) != 2 {
		t.Fatalf("JAL effects = %d", len(jal.Effects))
	}
	if !jal.HasPCEffect() {
		t.Error("JAL has no PC effect")
	}
}
