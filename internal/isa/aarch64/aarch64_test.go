package aarch64

import (
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/isa"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

func load(t *testing.T) (*term.Builder, *isa.Target) {
	t.Helper()
	b := term.NewBuilder()
	tgt, err := Load(b)
	if err != nil {
		t.Fatal(err)
	}
	return b, tgt
}

// evalRd evaluates the primary register effect of the named instruction.
func evalRd(t *testing.T, tgt *isa.Target, name string, binds map[string]bv.BV) bv.BV {
	t.Helper()
	inst := tgt.ByName(name)
	if inst == nil {
		t.Fatalf("no instruction %s", name)
	}
	env := term.NewEnv()
	for k, v := range binds {
		env.Bind(name+"."+k, v)
	}
	for _, e := range inst.Effects {
		if e.Kind == spec.EffReg && e.Dest == "rd" {
			return e.T.Eval(env)
		}
	}
	t.Fatalf("%s has no rd effect", name)
	return bv.BV{}
}

func TestInstructionCount(t *testing.T) {
	_, tgt := load(t)
	if len(tgt.Insts) < 250 {
		t.Errorf("only %d instructions; expected a rich AArch64 subset", len(tgt.Insts))
	}
	// No duplicate names.
	seen := map[string]bool{}
	for _, in := range tgt.Insts {
		if seen[in.Name] {
			t.Errorf("duplicate instruction %s", in.Name)
		}
		seen[in.Name] = true
	}
}

func TestArithmeticSemantics(t *testing.T) {
	_, tgt := load(t)
	if got := evalRd(t, tgt, "ADDXrr", map[string]bv.BV{
		"rn": bv.New(64, 7), "rm": bv.New(64, 5)}); got.Lo != 12 {
		t.Errorf("ADDXrr = %d", got.Lo)
	}
	// The paper's ADDWrs (Fig. 3a): 32-bit add with LSL-shifted operand.
	if got := evalRd(t, tgt, "ADDWrs_lsl", map[string]bv.BV{
		"rn": bv.New(32, 1), "rm": bv.New(32, 3), "sh": bv.New(5, 4)}); got.Lo != 1+3<<4 {
		t.Errorf("ADDWrs_lsl = %d", got.Lo)
	}
	if got := evalRd(t, tgt, "SUBXri", map[string]bv.BV{
		"rn": bv.New(64, 100), "imm": bv.New(12, 1)}); got.Lo != 99 {
		t.Errorf("SUBXri = %d", got.Lo)
	}
	if got := evalRd(t, tgt, "MADDX", map[string]bv.BV{
		"rn": bv.New(64, 3), "rm": bv.New(64, 4), "ra": bv.New(64, 5)}); got.Lo != 17 {
		t.Errorf("MADDX = %d", got.Lo)
	}
	if got := evalRd(t, tgt, "EXTRX", map[string]bv.BV{
		"rn": bv.New(64, 1), "rm": bv.Zero(64), "lsb": bv.New(6, 60)}); got.Lo != 16 {
		t.Errorf("EXTRX = %d, want 16", got.Lo)
	}
}

func TestMOVKInsertsHalfword(t *testing.T) {
	_, tgt := load(t)
	got := evalRd(t, tgt, "MOVKX_16", map[string]bv.BV{
		"rn": bv.New(64, 0xffffffffffffffff), "imm": bv.New(16, 0x1234)})
	if got.Lo != 0xffffffff1234ffff {
		t.Errorf("MOVKX_16 = %#x", got.Lo)
	}
	got = evalRd(t, tgt, "MOVZX_48", map[string]bv.BV{"imm": bv.New(16, 0xbeef)})
	if got.Lo != 0xbeef000000000000 {
		t.Errorf("MOVZX_48 = %#x", got.Lo)
	}
	got = evalRd(t, tgt, "MOVNW_0", map[string]bv.BV{"imm": bv.New(16, 0)})
	if got.Lo != 0xffffffff {
		t.Errorf("MOVNW_0 = %#x", got.Lo)
	}
}

func TestConditionCodes(t *testing.T) {
	_, tgt := load(t)
	flags := func(n, z, c, v uint64) map[string]bv.BV {
		return map[string]bv.BV{
			"N": bv.New(1, n), "Z": bv.New(1, z), "C": bv.New(1, c), "V": bv.New(1, v),
			"rn": bv.New(64, 1), "rm": bv.New(64, 2),
		}
	}
	// lt: N != V.
	if got := evalRd(t, tgt, "CSELXlt", flags(1, 0, 0, 0)); got.Lo != 1 {
		t.Errorf("CSELXlt with N=1,V=0 chose %d, want rn", got.Lo)
	}
	if got := evalRd(t, tgt, "CSELXlt", flags(0, 0, 0, 0)); got.Lo != 2 {
		t.Errorf("CSELXlt with N=V chose %d, want rm", got.Lo)
	}
	// hi: C & !Z.
	if got := evalRd(t, tgt, "CSETXhi", flags(0, 0, 1, 0)); got.Lo != 1 {
		t.Errorf("CSETXhi = %d", got.Lo)
	}
	if got := evalRd(t, tgt, "CSETXhi", flags(0, 1, 1, 0)); got.Lo != 0 {
		t.Errorf("CSETXhi with Z = %d", got.Lo)
	}
	// CSINC else-arm increments.
	if got := evalRd(t, tgt, "CSINCXeq", flags(0, 0, 0, 0)); got.Lo != 3 {
		t.Errorf("CSINCXeq not-taken = %d, want rm+1", got.Lo)
	}
	// CSETM produces a mask.
	if got := evalRd(t, tgt, "CSETMXeq", flags(0, 1, 0, 0)); !got.IsOnes() {
		t.Errorf("CSETMXeq = %v", got)
	}
}

func TestSUBSFlagSemantics(t *testing.T) {
	_, tgt := load(t)
	inst := tgt.ByName("SUBSXrr")
	env := term.NewEnv()
	env.Bind("SUBSXrr.rn", bv.New(64, 5))
	env.Bind("SUBSXrr.rm", bv.New(64, 5))
	effs := map[string]bv.BV{}
	for _, e := range inst.Effects {
		if e.Kind == spec.EffFlag {
			effs[e.Dest] = e.T.Eval(env)
		}
	}
	if !effs["Z"].Bool() || effs["N"].Bool() || !effs["C"].Bool() || effs["V"].Bool() {
		t.Errorf("5-5 flags = %v", effs)
	}
	// 0 - 1: N=1, Z=0, C=0 (borrow), V=0.
	env.Bind("SUBSXrr.rn", bv.Zero(64))
	env.Bind("SUBSXrr.rm", bv.New(64, 1))
	for _, e := range inst.Effects {
		if e.Kind == spec.EffFlag {
			effs[e.Dest] = e.T.Eval(env)
		}
	}
	if !effs["N"].Bool() || effs["Z"].Bool() || effs["C"].Bool() || effs["V"].Bool() {
		t.Errorf("0-1 flags = %v", effs)
	}
	// Signed overflow: INT64_MIN - 1.
	env.Bind("SUBSXrr.rn", bv.New128(64, 0, 1<<63))
	env.Bind("SUBSXrr.rm", bv.New(64, 1))
	for _, e := range inst.Effects {
		if e.Kind == spec.EffFlag {
			effs[e.Dest] = e.T.Eval(env)
		}
	}
	if !effs["V"].Bool() {
		t.Errorf("INT64_MIN-1 flags = %v, want V", effs)
	}
}

func TestLoadStoreAddressing(t *testing.T) {
	_, tgt := load(t)
	// LDRXui scales the immediate by 8.
	inst := tgt.ByName("LDRXui")
	env := term.NewEnv()
	env.Bind("LDRXui.rn", bv.New(64, 0x1000))
	env.Bind("LDRXui.imm", bv.New(12, 2))
	addr := inst.Effects[0].T.Args[0].Eval(env)
	if addr.Lo != 0x1010 {
		t.Errorf("LDRXui address = %#x, want 0x1010", addr.Lo)
	}
	// LDURXi uses a signed unscaled offset.
	inst = tgt.ByName("LDURXi")
	env = term.NewEnv()
	env.Bind("LDURXi.rn", bv.New(64, 0x1000))
	env.Bind("LDURXi.simm", bv.NewInt(9, -8))
	addr = inst.Effects[0].T.Args[0].Eval(env)
	if addr.Lo != 0xff8 {
		t.Errorf("LDURXi address = %#x, want 0xff8", addr.Lo)
	}
	// Post-index load: two effects.
	inst = tgt.ByName("LDRXpost")
	if len(inst.Effects) != 2 {
		t.Errorf("LDRXpost effects = %d", len(inst.Effects))
	}
	// Sign-extending byte load.
	inst = tgt.ByName("LDRSBXui")
	if inst.Effects[0].T.Op != term.SExt {
		t.Errorf("LDRSBXui effect = %s", inst.Effects[0].T)
	}
}

func TestVectorLaneSemantics(t *testing.T) {
	_, tgt := load(t)
	// VADD_2s adds two 32-bit lanes independently: wraparound must not
	// carry across lanes.
	got := evalRd(t, tgt, "VADD_2s", map[string]bv.BV{
		"rn": bv.New(64, 0x00000001_ffffffff), "rm": bv.New(64, 0x00000002_00000001)})
	if got.Lo != 0x00000003_00000000 {
		t.Errorf("VADD_2s = %#x", got.Lo)
	}
	// VCNT_8b counts per byte.
	got = evalRd(t, tgt, "VCNT_8b", map[string]bv.BV{"rn": bv.New(64, 0xff03010000000007)})
	if got.Lo != 0x0802010000000003 {
		t.Errorf("VCNT_8b = %#x", got.Lo)
	}
	// VCMEQ produces lane masks.
	got = evalRd(t, tgt, "VCMEQ_4h", map[string]bv.BV{
		"rn": bv.New(64, 0x1111_2222_3333_4444), "rm": bv.New(64, 0x1111_0000_3333_0000)})
	if got.Lo != 0xffff_0000_ffff_0000 {
		t.Errorf("VCMEQ_4h = %#x", got.Lo)
	}
}

func TestBranchSemantics(t *testing.T) {
	_, tgt := load(t)
	inst := tgt.ByName("CBZX")
	env := term.NewEnv()
	env.Bind("CBZX.rt", bv.Zero(64))
	env.Bind("CBZX.imm", bv.NewInt(19, -1))
	env.Bind("CBZX.pc", bv.New(64, 0x1000))
	// Displacements are byte-granular: the mechanical variable-length
	// encodings cannot keep targets 4-byte aligned, so there is no x4
	// scale.
	if got := inst.Effects[0].T.Eval(env); got.Lo != 0x1000-1 {
		t.Errorf("CBZX taken pc = %#x", got.Lo)
	}
	env.Bind("CBZX.rt", bv.New(64, 1))
	// Fall-through advances by the encoded size (CBZX's mechanical
	// encoding is wider than 4 bytes).
	if got := inst.Effects[0].T.Eval(env); got.Lo != 0x1000+uint64(inst.Size) {
		t.Errorf("CBZX fall-through pc = %#x, size %d", got.Lo, inst.Size)
	}
	if !inst.HasPCEffect() {
		t.Error("CBZX has no PC effect")
	}
	// Bcond_le taken when Z set.
	inst = tgt.ByName("Bcond_le")
	env = term.NewEnv()
	env.Bind("Bcond_le.imm", bv.New(19, 1))
	env.Bind("Bcond_le.pc", bv.New(64, 0))
	env.Bind("Bcond_le.Z", bv.New(1, 1))
	env.Bind("Bcond_le.N", bv.Zero(1))
	env.Bind("Bcond_le.V", bv.Zero(1))
	if got := inst.Effects[0].T.Eval(env); got.Lo != 1 {
		t.Errorf("Bcond_le taken = %#x", got.Lo)
	}
}

func TestLatencies(t *testing.T) {
	_, tgt := load(t)
	if tgt.ByName("LDRXui").Latency != 3 {
		t.Error("load latency not applied")
	}
	if tgt.ByName("SDIVX").Latency != 12 {
		t.Error("division latency not applied")
	}
	if tgt.ByName("ADDXrr").Latency != 1 {
		t.Error("default latency wrong")
	}
}

func TestAuxImmediates(t *testing.T) {
	aux := AuxImmediates()
	if !aux["ANDXri"] || !aux["ORRWri"] {
		t.Error("bitmask-immediate instructions not marked auxiliary")
	}
	if aux["ADDXri"] {
		t.Error("ADDXri wrongly marked auxiliary")
	}
}
