// Package aarch64 defines the AArch64 integer (plus 64-bit Neon vector)
// instruction subset used by the reproduction, written in the spec DSL.
//
// Following the paper (§IV-A), instruction attributes are expanded into
// separate instruction variants: every condition code of CSEL/CSINC/
// CSINV/CSNEG/B.cond/CSET becomes its own instruction, and W (32-bit)
// and X (64-bit) register forms are distinct instructions. Logical
// immediates and MOVN use the paper's §V-D1 workaround: the complex
// bitmask encoding is replaced by an explicit auxiliary immediate whose
// encodability the emitter checks.
package aarch64

import (
	"fmt"
	"strings"

	"iselgen/internal/isa"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

// conds maps AArch64 condition names to flag expressions in the DSL.
var conds = []struct{ name, expr string }{
	{"eq", "flags.Z"},
	{"ne", "!flags.Z"},
	{"hs", "flags.C"},
	{"lo", "!flags.C"},
	{"hi", "flags.C & !flags.Z"},
	{"ls", "!flags.C | flags.Z"},
	{"ge", "flags.N == flags.V"},
	{"lt", "flags.N != flags.V"},
	{"gt", "!flags.Z & (flags.N == flags.V)"},
	{"le", "flags.Z | (flags.N != flags.V)"},
}

// widths expands W/X forms.
var widths = []struct {
	suffix string
	bits   int
}{
	{"W", 32},
	{"X", 64},
}

// bodyWrites reports whether a statement list (transitively) assigns
// rd / rd2.
func bodyWrites(stmts []spec.Stmt) (rd, rd2 bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *spec.AssignStmt:
			if st.Target == "rd" {
				rd = true
			}
			if st.Target == "rd2" {
				rd2 = true
			}
		case *spec.IfStmt:
			for _, blk := range [][]spec.Stmt{st.Then, st.Else} {
				r, r2 := bodyWrites(blk)
				rd = rd || r
				rd2 = rd2 || r2
			}
		}
	}
	return rd, rd2
}

// autoEnc computes a mechanical encoding clause for one instruction
// definition: a 9-bit opcode in bits [8:0] (the decoder's common
// discriminator across all word sizes), then the destination register
// number, then each operand packed in declaration order (5-bit register
// numbers, full-width immediates), zero-filled up to the next byte
// boundary. The result is not the architectural AArch64 encoding — the
// paper's pipeline only needs encodings that are *derived from the
// spec* and unambiguous, and a mechanical allocation keeps the several
// hundred expanded variants manageable. Word sizes consequently vary
// (2..11 bytes) with the operand payload, which also exercises the
// variable-length paths of the assembler and decoder.
func autoEnc(instSrc string, opcode int) string {
	f, err := spec.Parse(instSrc)
	if err != nil || len(f.Insts) != 1 {
		panic(fmt.Sprintf("aarch64 generator produced unparsable instruction: %v\n%s", err, instSrc))
	}
	def := f.Insts[0]
	var fields []string
	p := 9
	field := func(bits int, name string) {
		fields = append(fields, fmt.Sprintf("[%d:%d]=%s", p+bits-1, p, name))
		p += bits
	}
	writesRd, writesRd2 := bodyWrites(def.Body)
	if writesRd {
		field(5, "rd")
	}
	if writesRd2 {
		field(5, "rd2")
	}
	for _, op := range def.Operands {
		if op.Kind == spec.OpImm {
			field(op.Width, op.Name)
		} else {
			field(5, op.Name)
		}
	}
	width := (p + 7) / 8 * 8
	if p < width {
		fields = append(fields, fmt.Sprintf("[%d:%d]=0", width-1, p))
	}
	return fmt.Sprintf("enc(%d) { [8:0]=0x%03x; %s; }", width, opcode, strings.Join(fields, "; "))
}

// Spec returns the full specification source.
func Spec() string {
	var sb strings.Builder
	opcode := 0
	w := func(format string, args ...any) {
		inst := fmt.Sprintf(format, args...)
		fmt.Fprintf(&sb, "%s %s\n", inst, autoEnc(inst, opcode))
		opcode++
	}

	for _, v := range widths {
		s, n := v.suffix, v.bits
		// Plain and shifted-register arithmetic. The shift distance is a
		// 5/6-bit immediate per the encoding.
		shBits := 5
		if n == 64 {
			shBits = 6
		}
		w("inst ADD%srr(rn: reg%d, rm: reg%d) { rd = rn + rm; }", s, n, n)
		w("inst SUB%srr(rn: reg%d, rm: reg%d) { rd = rn - rm; }", s, n, n)
		w("inst NEG%sr(rm: reg%d) { rd = -rm; }", s, n)
		for _, sh := range []struct{ name, fn string }{{"lsl", "%s << zext(sh, %d)"}, {"lsr", "%s >> zext(sh, %d)"}, {"asr", "ashr(%s, zext(sh, %d))"}} {
			op2 := fmt.Sprintf(sh.fn, "rm", n)
			w("inst ADD%srs_%s(rn: reg%d, rm: reg%d, sh: imm%d) { rd = rn + (%s); }", s, sh.name, n, n, shBits, op2)
			w("inst SUB%srs_%s(rn: reg%d, rm: reg%d, sh: imm%d) { rd = rn - (%s); }", s, sh.name, n, n, shBits, op2)
		}
		// Immediate forms (imm12, optionally shifted by 12).
		w("inst ADD%sri(rn: reg%d, imm: imm12) { rd = rn + zext(imm, %d); }", s, n, n)
		w("inst SUB%sri(rn: reg%d, imm: imm12) { rd = rn - zext(imm, %d); }", s, n, n)
		w("inst ADD%sri_s12(rn: reg%d, imm: imm12) { rd = rn + (zext(imm, %d) << 12:%d); }", s, n, n, n)
		w("inst SUB%sri_s12(rn: reg%d, imm: imm12) { rd = rn - (zext(imm, %d) << 12:%d); }", s, n, n, n)

		// Flag-setting arithmetic (the NZCV definitions follow the ARM
		// pseudocode AddWithCarry).
		flagsFor := func(res, carry, ovf string) string {
			return fmt.Sprintf(`
  rd = %[1]s;
  flags.N = extract(%[1]s, %[2]d, %[2]d);
  flags.Z = %[1]s == 0;
  flags.C = %[3]s;
  flags.V = %[4]s;`, res, n-1, carry, ovf)
		}
		w(`inst ADDS%srr(rn: reg%d, rm: reg%d) {
  let res = rn + rm;%s
}`, s, n, n, flagsFor("res", "ult(res, rn)", fmt.Sprintf("extract((res ^ rn) & (res ^ rm), %d, %d)", n-1, n-1)))
		w(`inst SUBS%srr(rn: reg%d, rm: reg%d) {
  let res = rn - rm;%s
}`, s, n, n, flagsFor("res", "uge(rn, rm)", fmt.Sprintf("extract((rn ^ rm) & (rn ^ res), %d, %d)", n-1, n-1)))
		w(`inst SUBS%sri(rn: reg%d, imm: imm12) {
  let rm = zext(imm, %d);
  let res = rn - rm;%s
}`, s, n, n, flagsFor("res", "uge(rn, rm)", fmt.Sprintf("extract((rn ^ rm) & (rn ^ res), %d, %d)", n-1, n-1)))
		w(`inst ANDS%srr(rn: reg%d, rm: reg%d) {
  let res = rn & rm;
  rd = res;
  flags.N = extract(res, %d, %d);
  flags.Z = res == 0;
  flags.C = 0:1;
  flags.V = 0:1;
}`, s, n, n, n-1, n-1)

		// Logical operations: register, shifted register, and the
		// auxiliary-immediate forms (§V-D1 workaround for bitmask
		// immediates).
		for _, lop := range []struct{ name, expr string }{
			{"AND", "rn & rm"}, {"ORR", "rn | rm"}, {"EOR", "rn ^ rm"},
			{"BIC", "rn & ~rm"}, {"ORN", "rn | ~rm"}, {"EON", "rn ^ ~rm"},
		} {
			w("inst %s%srr(rn: reg%d, rm: reg%d) { rd = %s; }", lop.name, s, n, n, lop.expr)
			shifted := strings.Replace(lop.expr, "rm", fmt.Sprintf("(rm << zext(sh, %d))", n), 1)
			w("inst %s%srs_lsl(rn: reg%d, rm: reg%d, sh: imm%d) { rd = %s; }", lop.name, s, n, n, shBits, shifted)
		}
		for _, lop := range []struct{ name, expr string }{
			{"AND", "rn & imm"}, {"ORR", "rn | imm"}, {"EOR", "rn ^ imm"},
		} {
			w("inst %s%sri(rn: reg%d, imm: imm%d) { rd = %s; }", lop.name, s, n, n, lop.expr)
		}
		w("inst MVN%sr(rm: reg%d) { rd = ~rm; }", s, n)
		w("inst MOV%sr(rm: reg%d) { rd = rm; }", s, n)

		// Multiplication family.
		w("inst MUL%s(rn: reg%d, rm: reg%d) { rd = rn * rm; }", s, n, n)
		w("inst MADD%s(rn: reg%d, rm: reg%d, ra: reg%d) { rd = ra + rn * rm; }", s, n, n, n)
		w("inst MSUB%s(rn: reg%d, rm: reg%d, ra: reg%d) { rd = ra - rn * rm; }", s, n, n, n)
		// Division.
		w("inst UDIV%s(rn: reg%d, rm: reg%d) { rd = udiv(rn, rm); }", s, n, n)
		w("inst SDIV%s(rn: reg%d, rm: reg%d) { rd = sdiv(rn, rm); }", s, n, n)

		// Variable shifts (distance taken modulo the register width, per
		// the ARM pseudocode).
		w("inst LSLV%s(rn: reg%d, rm: reg%d) { rd = rn << (rm %% %d:%d); }", s, n, n, n, n)
		w("inst LSRV%s(rn: reg%d, rm: reg%d) { rd = rn >> (rm %% %d:%d); }", s, n, n, n, n)
		w("inst ASRV%s(rn: reg%d, rm: reg%d) { rd = ashr(rn, rm %% %d:%d); }", s, n, n, n, n)
		w("inst RORV%s(rn: reg%d, rm: reg%d) { rd = rotr(rn, rm %% %d:%d); }", s, n, n, n, n)
		// Immediate shifts (UBFM/SBFM aliases).
		w("inst LSL%sri(rn: reg%d, sh: imm%d) { rd = rn << zext(sh, %d); }", s, n, shBits, n)
		w("inst LSR%sri(rn: reg%d, sh: imm%d) { rd = rn >> zext(sh, %d); }", s, n, shBits, n)
		w("inst ASR%sri(rn: reg%d, sh: imm%d) { rd = ashr(rn, zext(sh, %d)); }", s, n, shBits, n)
		w("inst ROR%sri(rn: reg%d, sh: imm%d) { rd = rotr(rn, zext(sh, %d)); }", s, n, shBits, n)
		w("inst EXTR%s(rn: reg%d, rm: reg%d, lsb: imm%d) { rd = trunc(concat(rn, rm) >> zext(lsb, %d), %d); }", s, n, n, shBits, 2*n, n)

		// Bit counting / byte reversal.
		w("inst CLZ%s(rn: reg%d) { rd = clz(rn); }", s, n)
		w("inst REV%s(rn: reg%d) { rd = rev(rn); }", s, n)

		// Conditional operations, one variant per condition code.
		for _, c := range conds {
			w("inst CSEL%s%s(rn: reg%d, rm: reg%d) { rd = select(%s, rn, rm); }", s, c.name, n, n, c.expr)
			w("inst CSINC%s%s(rn: reg%d, rm: reg%d) { rd = select(%s, rn, rm + 1); }", s, c.name, n, n, c.expr)
			w("inst CSINV%s%s(rn: reg%d, rm: reg%d) { rd = select(%s, rn, ~rm); }", s, c.name, n, n, c.expr)
			w("inst CSNEG%s%s(rn: reg%d, rm: reg%d) { rd = select(%s, rn, -rm); }", s, c.name, n, n, c.expr)
			w("inst CSET%s%s() { rd = zext(bool(%s), %d); }", s, c.name, c.expr, n)
			w("inst CSETM%s%s() { rd = sext(bool(%s), %d); }", s, c.name, c.expr, n)
		}

		// MOVZ/MOVN/MOVK at each halfword position.
		for hw := 0; hw < n/16; hw++ {
			w("inst MOVZ%s_%d(imm: imm16) { rd = zext(imm, %d) << %d:%d; }", s, hw*16, n, hw*16, n)
			w("inst MOVN%s_%d(imm: imm16) { rd = ~(zext(imm, %d) << %d:%d); }", s, hw*16, n, hw*16, n)
			mask := fmt.Sprintf("0x%x:%d", uint64(0xffff)<<(hw*16), n)
			w("inst MOVK%s_%d(rn: reg%d, imm: imm16) { rd = (rn & ~%s) | (zext(imm, %d) << %d:%d); }",
				s, hw*16, n, mask, n, hw*16, n)
		}
	}

	// Sign/zero extensions between register widths, extended-register
	// additions, widening multiplies, and the PC-relative address.
	for _, def := range []string{
		"inst UXTBW(rn: reg32) { rd = zext(trunc(rn, 8), 32); }",
		"inst UXTHW(rn: reg32) { rd = zext(trunc(rn, 16), 32); }",
		"inst SXTBW(rn: reg32) { rd = sext(trunc(rn, 8), 32); }",
		"inst SXTHW(rn: reg32) { rd = sext(trunc(rn, 16), 32); }",
		"inst SXTBX(rn: reg64) { rd = sext(trunc(rn, 8), 64); }",
		"inst SXTHX(rn: reg64) { rd = sext(trunc(rn, 16), 64); }",
		"inst SXTWX(rn: reg32) { rd = sext(rn, 64); }",
		"inst UXTWX(rn: reg32) { rd = zext(rn, 64); }",
		"inst TRUNCWX(rn: reg64) { rd = trunc(rn, 32); }",
		"inst ADDXrx_sxtw(rn: reg64, rm: reg32) { rd = rn + sext(rm, 64); }",
		"inst ADDXrx_uxtw(rn: reg64, rm: reg32) { rd = rn + zext(rm, 64); }",
		"inst SUBXrx_sxtw(rn: reg64, rm: reg32) { rd = rn - sext(rm, 64); }",
		"inst SUBXrx_uxtw(rn: reg64, rm: reg32) { rd = rn - zext(rm, 64); }",
		"inst SMULL(rn: reg32, rm: reg32) { rd = sext(rn, 64) * sext(rm, 64); }",
		"inst UMULL(rn: reg32, rm: reg32) { rd = zext(rn, 64) * zext(rm, 64); }",
		"inst SMULH(rn: reg64, rm: reg64) { rd = trunc(ashr(sext(rn, 128) * sext(rm, 128), 64:128), 64); }",
		"inst UMULH(rn: reg64, rm: reg64) { rd = trunc((zext(rn, 128) * zext(rm, 128)) >> 64:128, 64); }",
		"inst ADR(imm: imm21) { rd = pc + sext(imm, 64); }",
	} {
		w("%s", def)
	}

	// Loads: unsigned-scaled (LDR*ui), unscaled signed offset (LDUR*),
	// register offset, shifted register offset, post-index.
	type ld struct {
		name  string
		bits  int // memory access size
		reg   int // destination register width
		ext   string
		scale int
	}
	loads := []ld{
		{"LDRBBui", 8, 32, "zext", 1},
		{"LDRHHui", 16, 32, "zext", 2},
		{"LDRWui", 32, 32, "", 4},
		{"LDRXui", 64, 64, "", 8},
		// X-destination zero-extending aliases: the same encodings write
		// a W register, which architecturally zeroes the upper 64 bits.
		{"LDRBBXui", 8, 64, "zext", 1},
		{"LDRHHXui", 16, 64, "zext", 2},
		{"LDRWXui", 32, 64, "zext", 4},
		{"LDRSBWui", 8, 32, "sext", 1},
		{"LDRSHWui", 16, 32, "sext", 2},
		{"LDRSBXui", 8, 64, "sext", 1},
		{"LDRSHXui", 16, 64, "sext", 2},
		{"LDRSWui", 32, 64, "sext", 4},
	}
	for _, l := range loads {
		val := fmt.Sprintf("load(rn + zext(imm, 64) * %d:64, %d)", l.scale, l.bits)
		if l.ext != "" {
			val = fmt.Sprintf("%s(%s, %d)", l.ext, val, l.reg)
		}
		w("inst %s(rn: reg64, imm: imm12) { rd = %s; }", l.name, val)
		// Unscaled signed-offset form (LDUR).
		uname := "LDUR" + strings.TrimSuffix(strings.TrimPrefix(l.name, "LDR"), "ui") + "i"
		uval := fmt.Sprintf("load(rn + sext(simm, 64), %d)", l.bits)
		if l.ext != "" {
			uval = fmt.Sprintf("%s(%s, %d)", l.ext, uval, l.reg)
		}
		w("inst %s(rn: reg64, simm: imm9) { rd = %s; }", uname, uval)
	}
	for _, def := range []string{
		"inst LDRXroX(rn: reg64, rm: reg64) { rd = load(rn + rm, 64); }",
		"inst LDRXroX_s3(rn: reg64, rm: reg64) { rd = load(rn + (rm << 3:64), 64); }",
		"inst LDRWroX(rn: reg64, rm: reg64) { rd = load(rn + rm, 32); }",
		"inst LDRWroX_s2(rn: reg64, rm: reg64) { rd = load(rn + (rm << 2:64), 32); }",
		"inst LDRBBroX(rn: reg64, rm: reg64) { rd = zext(load(rn + rm, 8), 32); }",
		"inst LDRXpost(rn: reg64, simm: imm9) { rd = load(rn, 64); rn = rn + sext(simm, 64); }",
		"inst LDRXpre(rn: reg64, simm: imm9) { let addr = rn + sext(simm, 64); rd = load(addr, 64); rn = addr; }",
	} {
		w("%s", def)
	}

	// Stores.
	type st struct {
		name  string
		bits  int
		reg   int
		scale int
	}
	stores := []st{
		{"STRBBui", 8, 32, 1},
		{"STRHHui", 16, 32, 2},
		{"STRWui", 32, 32, 4},
		{"STRXui", 64, 64, 8},
		// X-source truncating aliases (stores read the low bits).
		{"STRBBXui", 8, 64, 1},
		{"STRHHXui", 16, 64, 2},
		{"STRWXui", 32, 64, 4},
	}
	for _, s := range stores {
		val := "rt"
		if s.bits < s.reg {
			val = fmt.Sprintf("trunc(rt, %d)", s.bits)
		}
		w("inst %s(rt: reg%d, rn: reg64, imm: imm12) { mem[rn + zext(imm, 64) * %d:64, %d] = %s; }",
			s.name, s.reg, s.scale, s.bits, val)
		uname := "STUR" + strings.TrimSuffix(strings.TrimPrefix(s.name, "STR"), "ui") + "i"
		w("inst %s(rt: reg%d, rn: reg64, simm: imm9) { mem[rn + sext(simm, 64), %d] = %s; }",
			uname, s.reg, s.bits, val)
	}
	for _, def := range []string{
		"inst STRXroX(rt: reg64, rn: reg64, rm: reg64) { mem[rn + rm, 64] = rt; }",
		"inst STRXroX_s3(rt: reg64, rn: reg64, rm: reg64) { mem[rn + (rm << 3:64), 64] = rt; }",
		"inst STRXpost(rt: reg64, rn: reg64, simm: imm9) { mem[rn, 64] = rt; rn = rn + sext(simm, 64); }",
	} {
		w("%s", def)
	}

	// Branches: unconditional, conditional (per condition code), and
	// compare-and-branch. Displacements are byte-granular (architectural
	// AArch64 scales by 4), because the mechanical encodings above are
	// variable-length and cannot keep targets 4-byte aligned.
	w("inst B(imm: imm26) { pc = pc + sext(imm, 64); }")
	for _, c := range conds {
		w("inst Bcond_%s(imm: imm19) { if (%s) { pc = pc + sext(imm, 64); } }", c.name, c.expr)
	}
	for _, v := range widths {
		w("inst CBZ%s(rt: reg%d, imm: imm19) { if (rt == 0) { pc = pc + sext(imm, 64); } }", v.suffix, v.bits)
		w("inst CBNZ%s(rt: reg%d, imm: imm19) { if (rt != 0) { pc = pc + sext(imm, 64); } }", v.suffix, v.bits)
	}

	// A 64-bit Neon subset: lane-wise integer arithmetic on vec64
	// (8x8, 4x16, 2x32) plus popcount on bytes.
	vectorSpec(w)
	return sb.String()
}

// vectorSpec emits lane-wise 64-bit vector instructions, expanding each
// lane into extract/concat arithmetic.
func vectorSpec(w func(format string, args ...any)) {
	type shape struct {
		name  string
		lanes int
		bits  int
	}
	shapes := []shape{{"8b", 8, 8}, {"4h", 4, 16}, {"2s", 2, 32}}
	lane := func(reg string, i, bits int) string {
		return fmt.Sprintf("extract(%s, %d, %d)", reg, (i+1)*bits-1, i*bits)
	}
	emit := func(name string, sh shape, f func(a, b string) string, unary bool) {
		ops := "rn: vec64, rm: vec64"
		if unary {
			ops = "rn: vec64"
		}
		// Build concat from the highest lane down.
		expr := ""
		for i := sh.lanes - 1; i >= 0; i-- {
			laneExpr := f(lane("rn", i, sh.bits), lane("rm", i, sh.bits))
			if expr == "" {
				expr = laneExpr
			} else {
				expr = fmt.Sprintf("concat(%s, %s)", expr, laneExpr)
			}
		}
		w("inst %s_%s(%s) { rd = %s; }", name, sh.name, ops, expr)
	}
	for _, sh := range shapes {
		emit("VADD", sh, func(a, b string) string { return fmt.Sprintf("(%s) + (%s)", a, b) }, false)
		emit("VSUB", sh, func(a, b string) string { return fmt.Sprintf("(%s) - (%s)", a, b) }, false)
		emit("VMUL", sh, func(a, b string) string { return fmt.Sprintf("(%s) * (%s)", a, b) }, false)
		emit("VNEG", sh, func(a, b string) string { return fmt.Sprintf("-(%s)", a) }, true)
		emit("VCMEQ", sh, func(a, b string) string {
			return fmt.Sprintf("sext((%s) == (%s), %d)", a, b, sh.bits)
		}, false)
	}
	// Bitwise ops act on the whole 64 bits.
	w("inst VAND_8b(rn: vec64, rm: vec64) { rd = rn & rm; }")
	w("inst VORR_8b(rn: vec64, rm: vec64) { rd = rn | rm; }")
	w("inst VEOR_8b(rn: vec64, rm: vec64) { rd = rn ^ rm; }")
	// CNT: per-byte popcount.
	emit2 := func() {
		expr := ""
		for i := 7; i >= 0; i-- {
			laneExpr := fmt.Sprintf("popcount(%s)", lane("rn", i, 8))
			if expr == "" {
				expr = laneExpr
			} else {
				expr = fmt.Sprintf("concat(%s, %s)", expr, laneExpr)
			}
		}
		w("inst VCNT_8b(rn: vec64) { rd = %s; }", expr)
	}
	emit2()
}

// Latencies for the simulator cost model (cycles); unlisted = 1.
func latencies() map[string]int {
	lat := map[string]int{}
	for _, v := range widths {
		s := v.suffix
		lat["MUL"+s] = 3
		lat["MADD"+s] = 3
		lat["MSUB"+s] = 3
		lat["UDIV"+s] = 12
		lat["SDIV"+s] = 12
	}
	lat["SMULL"], lat["UMULL"], lat["SMULH"], lat["UMULH"] = 3, 3, 6, 6
	// Loads.
	for name := range map[string]bool{} {
		_ = name
	}
	for _, n := range []string{
		"LDRBBui", "LDRHHui", "LDRWui", "LDRXui", "LDRSBWui", "LDRSHWui",
		"LDRSBXui", "LDRSHXui", "LDRSWui", "LDRXroX", "LDRXroX_s3",
		"LDRWroX", "LDRWroX_s2", "LDRBBroX", "LDRXpost", "LDRXpre",
		"LDURBBi", "LDURHHi", "LDURWi", "LDURXi", "LDURSBWi", "LDURSHWi",
		"LDURSBXi", "LDURSHXi", "LDURSWi",
		"LDRBBXui", "LDRHHXui", "LDRWXui", "LDURBBXi", "LDURHHXi", "LDURWXi",
	} {
		lat[n] = 3
	}
	return lat
}

// Load builds the AArch64 target in the given term builder. Sizes are
// derived per instruction from the mechanical encodings (the old
// uniform declared size of 4 contradicts the variable-width words and
// is now rejected by LoadTarget).
func Load(b *term.Builder) (*isa.Target, error) {
	return isa.LoadTarget(b, "aarch64", Spec(), latencies(), 0)
}

// AuxImmediates lists instructions whose immediate uses the §V-D1
// auxiliary encoding (bitmask immediates, inverted MOVN payloads): the
// assembler re-encodes the value, and the rule emitter marks the
// constraint.
func AuxImmediates() map[string]bool {
	aux := map[string]bool{}
	for _, v := range widths {
		for _, op := range []string{"AND", "ORR", "EOR"} {
			aux[op+v.suffix+"ri"] = true
		}
	}
	return aux
}
