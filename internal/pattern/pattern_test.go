package pattern

import (
	"strings"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
	"iselgen/internal/term"
)

func TestCompileShiftAdd(t *testing.T) {
	// (s64 G_ADD r:$p0, (s64 G_SHL r:$p1, i:$p2)) — the paper's example.
	p := New(Op(gmir.GAdd, gmir.S64,
		Leaf(gmir.S64),
		Op(gmir.GShl, gmir.S64, Leaf(gmir.S64), ImmLeaf(gmir.S64))))
	if p.Size() != 2 {
		t.Errorf("size = %d", p.Size())
	}
	if got := len(p.Leaves()); got != 3 {
		t.Errorf("leaves = %d", got)
	}
	b := term.NewBuilder()
	tt, err := p.Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	env := term.NewEnv()
	env.Bind("p0.r64", bv.New(64, 5))
	env.Bind("p1.r64", bv.New(64, 3))
	env.Bind("p2.i64", bv.New(64, 2))
	if got := tt.Eval(env); got.Lo != 5+3<<2 {
		t.Errorf("eval = %d", got.Lo)
	}
	// Leaf kinds flow into variable kinds.
	vars := tt.Vars()
	kinds := map[string]term.VarKind{}
	for _, v := range vars {
		kinds[v.Name] = v.Kind
	}
	if kinds["p0.r64"] != term.KindReg || kinds["p2.i64"] != term.KindImm {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestKeyAndString(t *testing.T) {
	p1 := New(Op(gmir.GAdd, gmir.S32, Leaf(gmir.S32), Leaf(gmir.S32)))
	p2 := New(Op(gmir.GAdd, gmir.S32, Leaf(gmir.S32), Leaf(gmir.S32)))
	p3 := New(Op(gmir.GAdd, gmir.S64, Leaf(gmir.S64), Leaf(gmir.S64)))
	if p1.Key() != p2.Key() {
		t.Error("identical patterns have different keys")
	}
	if p1.Key() == p3.Key() {
		t.Error("different-type patterns share a key")
	}
	s := New(Op(gmir.GAdd, gmir.S64, Leaf(gmir.S64),
		Op(gmir.GShl, gmir.S64, Leaf(gmir.S64), ImmLeaf(gmir.S64)))).String()
	for _, want := range []string{"G_ADD", "G_SHL", "r64:$p0", "i64:$p2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// Predicates distinguish comparisons.
	c1 := New(Cmp(gmir.PredULT, Leaf(gmir.S64), Leaf(gmir.S64)))
	c2 := New(Cmp(gmir.PredSLT, Leaf(gmir.S64), Leaf(gmir.S64)))
	if c1.Key() == c2.Key() {
		t.Error("predicates not in key")
	}
}

func TestCompileStore(t *testing.T) {
	p := New(StoreOp(32, Op(gmir.GAdd, gmir.S32, Leaf(gmir.S32), Leaf(gmir.S32)),
		Leaf(gmir.P0)))
	if !p.IsStore() {
		t.Error("store pattern not recognized")
	}
	b := term.NewBuilder()
	tt, err := p.Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Op != term.Store {
		t.Errorf("compiled root = %v", tt.Op)
	}
}

// corpus builds a function with a hot shift-add and a cold xor.
func corpus(t *testing.T) *gmir.Function {
	t.Helper()
	fb := gmir.NewFunc("corpus")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	x := a
	for i := 0; i < 5; i++ {
		c := fb.Const(gmir.S64, uint64(i+1))
		sh := fb.Shl(b, c)
		x = fb.Add(x, sh)
	}
	y := fb.Xor(x, a)
	fb.Ret(y)
	return fb.MustFinish()
}

func TestExtractorCountsAndRanks(t *testing.T) {
	e := NewExtractor()
	e.AddFunction(corpus(t))
	ranked := e.Ranked()
	if len(ranked) == 0 {
		t.Fatal("no patterns extracted")
	}
	// The shift-with-imm subtree occurs 5 times; it must outrank the xor.
	shiftImm := New(Op(gmir.GShl, gmir.S64, Leaf(gmir.S64), ImmLeaf(gmir.S64)))
	if got := e.Count(shiftImm); got != 5 {
		t.Errorf("shift-imm count = %d, want 5", got)
	}
	xor := New(Op(gmir.GXor, gmir.S64, Leaf(gmir.S64), Leaf(gmir.S64)))
	if got := e.Count(xor); got != 1 {
		t.Errorf("xor count = %d, want 1", got)
	}
	// The add-of-shift fused tree must also be present.
	fused := New(Op(gmir.GAdd, gmir.S64, Leaf(gmir.S64),
		Op(gmir.GShl, gmir.S64, Leaf(gmir.S64), ImmLeaf(gmir.S64))))
	if got := e.Count(fused); got != 5 {
		t.Errorf("fused count = %d, want 5", got)
	}
	// Ranking is by frequency.
	if e.Count(ranked[0]) < e.Count(ranked[len(ranked)-1]) {
		t.Error("ranking not descending")
	}
}

func TestExtractorRespectsMultiUse(t *testing.T) {
	fb := gmir.NewFunc("multiuse")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	s := fb.Add(a, b) // used twice: must not be folded into consumers
	m := fb.Mul(s, s)
	fb.Ret(m)
	f := fb.MustFinish()
	e := NewExtractor()
	e.AddFunction(f)
	fused := New(Op(gmir.GMul, gmir.S64,
		Op(gmir.GAdd, gmir.S64, Leaf(gmir.S64), Leaf(gmir.S64)),
		Op(gmir.GAdd, gmir.S64, Leaf(gmir.S64), Leaf(gmir.S64))))
	if e.Count(fused) != 0 {
		t.Error("multi-use value was folded into a pattern")
	}
	plain := New(Op(gmir.GMul, gmir.S64, Leaf(gmir.S64), Leaf(gmir.S64)))
	if e.Count(plain) != 1 {
		t.Error("mul with leaf operands missing")
	}
}

func TestExtractorSizeLimit(t *testing.T) {
	// A deep chain: no extracted pattern may exceed MaxSize ops.
	fb := gmir.NewFunc("deep")
	x := fb.Param(gmir.S64)
	for i := 0; i < 12; i++ {
		x = fb.Add(x, x) // multi-use... make single-use chain instead
	}
	fb.Ret(x)
	f := fb.MustFinish()
	e := NewExtractor()
	e.MaxSize = 3
	e.AddFunction(f)
	for _, p := range e.Ranked() {
		if p.Size() > 3 {
			t.Errorf("pattern of size %d exceeds limit: %s", p.Size(), p)
		}
	}
}
