package pattern

import (
	"fmt"
	"strconv"
	"strings"

	"iselgen/internal/gmir"
)

// ParseKey reconstructs a pattern from its Key() serialization, enabling
// rule-library persistence (§VI-A: the synthesis stages are independent
// and their outputs can be persisted and reloaded).
//
// Key grammar:
//
//	node  := leaf | "(" op ":" bits [":" pred] ["m" mem] {" " node} ")"
//	leaf  := ("r"|"i") bits
func ParseKey(key string) (*Pattern, error) {
	p := &keyParser{s: key}
	n, err := p.node()
	if err != nil {
		return nil, fmt.Errorf("pattern: bad key %q: %w", key, err)
	}
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("pattern: trailing junk in key %q", key)
	}
	return New(n), nil
}

type keyParser struct {
	s   string
	pos int
}

func (p *keyParser) node() (*Node, error) {
	if p.pos >= len(p.s) {
		return nil, fmt.Errorf("unexpected end")
	}
	switch c := p.s[p.pos]; c {
	case 'r', 'i':
		p.pos++
		bits, err := p.int()
		if err != nil {
			return nil, err
		}
		return &Node{Ty: gmir.Type{Bits: bits}, LeafReg: c == 'r'}, nil
	case '(':
		p.pos++
		opNum, err := p.int()
		if err != nil {
			return nil, err
		}
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		bits, err := p.int()
		if err != nil {
			return nil, err
		}
		n := &Node{Op: gmir.Opcode(opNum), Ty: gmir.Type{Bits: bits}}
		if p.peek() == ':' {
			p.pos++
			pred, err := p.int()
			if err != nil {
				return nil, err
			}
			n.Pred = gmir.Pred(pred)
		}
		if p.peek() == 'm' {
			p.pos++
			mem, err := p.int()
			if err != nil {
				return nil, err
			}
			n.MemBits = mem
		}
		for p.peek() == ' ' {
			p.pos++
			arg, err := p.node()
			if err != nil {
				return nil, err
			}
			n.Args = append(n.Args, arg)
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return n, nil
	default:
		return nil, fmt.Errorf("unexpected %q at %d", c, p.pos)
	}
}

func (p *keyParser) peek() byte {
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

func (p *keyParser) expect(c byte) error {
	if p.peek() != c {
		return fmt.Errorf("expected %q at %d", c, p.pos)
	}
	p.pos++
	return nil
}

func (p *keyParser) int() (int, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, fmt.Errorf("expected number at %d", start)
	}
	return strconv.Atoi(p.s[start:p.pos])
}

var _ = strings.TrimSpace
