// Package pattern represents IR patterns — trees of gMIR operations with
// free operand leaves — and implements the paper's corpus-driven pattern
// pool (§VII-B): instruction trees are extracted from compiled real-world
// functions, deduplicated, ranked by occurrence frequency, and fed to the
// synthesizer most-frequent-first.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
	"iselgen/internal/term"
)

// Node is one node of a pattern tree: either an operation or a leaf.
type Node struct {
	// Leaf: Op == gmir.OpInvalid. LeafReg distinguishes register leaves
	// from immediate leaves (a G_CONSTANT operand becomes an immediate
	// leaf whose value is bound at selection time).
	Op      gmir.Opcode
	Ty      gmir.Type
	Pred    gmir.Pred
	MemBits int
	Args    []*Node
	LeafReg bool
}

// Pattern is a tree of gMIR operations rooted at a selectable
// instruction. Leaves are numbered left-to-right in depth-first order.
type Pattern struct {
	Root *Node
	key  string
}

// IsLeaf reports whether the node is a free operand.
func (n *Node) IsLeaf() bool { return n.Op == gmir.OpInvalid }

// Size returns the number of operation nodes (the paper's pattern-size
// metric: number of gMIR instructions).
func (p *Pattern) Size() int { return opCount(p.Root) }

func opCount(n *Node) int {
	if n.IsLeaf() {
		return 0
	}
	c := 1
	for _, a := range n.Args {
		c += opCount(a)
	}
	return c
}

// Leaves returns the leaf nodes in depth-first order.
func (p *Pattern) Leaves() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		for _, a := range n.Args {
			walk(a)
		}
	}
	walk(p.Root)
	return out
}

// Key returns a canonical string identity for deduplication and counting.
func (p *Pattern) Key() string {
	if p.key == "" {
		var sb strings.Builder
		writeKey(&sb, p.Root)
		p.key = sb.String()
	}
	return p.key
}

func writeKey(sb *strings.Builder, n *Node) {
	if n.IsLeaf() {
		kind := "r"
		if !n.LeafReg {
			kind = "i"
		}
		fmt.Fprintf(sb, "%s%d", kind, n.Ty.Bits)
		return
	}
	fmt.Fprintf(sb, "(%d:%d", int(n.Op), n.Ty.Bits)
	if n.Op == gmir.GICmp {
		fmt.Fprintf(sb, ":%d", int(n.Pred))
	}
	if n.MemBits != 0 {
		fmt.Fprintf(sb, "m%d", n.MemBits)
	}
	for _, a := range n.Args {
		sb.WriteByte(' ')
		writeKey(sb, a)
	}
	sb.WriteByte(')')
}

// String renders the pattern in a TableGen-flavoured form, e.g.
// "(s64 G_ADD r64:$p0, (s64 G_SHL r64:$p1, i64:$p2))".
func (p *Pattern) String() string {
	var sb strings.Builder
	idx := 0
	var walk func(*Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			kind := "r"
			if !n.LeafReg {
				kind = "i"
			}
			fmt.Fprintf(&sb, "%s%d:$p%d", kind, n.Ty.Bits, idx)
			idx++
			return
		}
		fmt.Fprintf(&sb, "(%s %s", n.Ty, n.Op)
		if n.Op == gmir.GICmp {
			fmt.Fprintf(&sb, " intpred(%s)", n.Pred)
		}
		if n.MemBits != 0 {
			fmt.Fprintf(&sb, " [mem %d]", n.MemBits)
		}
		for i, a := range n.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteByte(' ')
			walk(a)
		}
		sb.WriteByte(')')
	}
	walk(p.Root)
	return sb.String()
}

// LeafName returns the canonical variable name for pattern leaf i. The
// kind and width are part of the name so that leaves of different
// patterns sharing one term builder never collide.
func LeafName(i int, leaf *Node) string {
	kind := "r"
	if !leaf.LeafReg {
		kind = "i"
	}
	return fmt.Sprintf("p%d.%s%d", i, kind, leaf.Ty.Bits)
}

// LeafVar returns the term variable used for pattern leaf i.
func LeafVar(b *term.Builder, i int, leaf *Node) *term.Term {
	if leaf.LeafReg {
		return b.VarT(LeafName(i, leaf), term.KindReg, leaf.Ty.Bits)
	}
	return b.VarT(LeafName(i, leaf), term.KindImm, leaf.Ty.Bits)
}

// Compile builds the pattern's semantics as a bitvector term over leaf
// variables p0, p1, ... (the IR side of a synthesis query).
func (p *Pattern) Compile(b *term.Builder) (*term.Term, error) {
	idx := 0
	var walk func(n *Node) (*term.Term, error)
	walk = func(n *Node) (*term.Term, error) {
		if n.IsLeaf() {
			v := LeafVar(b, idx, n)
			idx++
			return v, nil
		}
		args := make([]*term.Term, len(n.Args))
		for i, a := range n.Args {
			t, err := walk(a)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		in := &gmir.Inst{Op: n.Op, Ty: n.Ty, Pred: n.Pred, MemBits: n.MemBits}
		return gmir.InstTerm(b, in, args)
	}
	return walk(p.Root)
}

// IsStore reports whether the pattern's root is a store (its compiled
// term is a memory effect rather than a value).
func (p *Pattern) IsStore() bool { return p.Root.Op == gmir.GStore }

// --- corpus extraction (§VII-B) ---

// Extractor counts pattern-tree occurrences across a corpus of gMIR
// functions, the reproduction's analog of running LLVM on CTMark and
// tracking all instruction trees up to depth 6.
type Extractor struct {
	MaxSize int // maximum operation nodes per pattern (paper: 6)
	counts  map[string]*entry
}

type entry struct {
	pat   *Pattern
	count int
}

// NewExtractor returns an extractor with the paper's size limit.
func NewExtractor() *Extractor {
	return &Extractor{MaxSize: 6, counts: map[string]*entry{}}
}

// AddFunction extracts and counts all trees of every function instruction.
func (e *Extractor) AddFunction(f *gmir.Function) {
	uses := map[gmir.Value]int{}
	def := map[gmir.Value]*gmir.Inst{}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			for _, a := range in.Args {
				uses[a]++
			}
			if in.Dst >= 0 {
				def[in.Dst] = in
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if !in.Op.IsSelectable() || in.Op == gmir.GConstant {
				continue
			}
			for _, tree := range e.trees(f, in, def, uses, e.MaxSize) {
				p := &Pattern{Root: tree}
				k := p.Key()
				if ent, ok := e.counts[k]; ok {
					ent.count++
				} else {
					e.counts[k] = &entry{pat: p, count: 1}
				}
			}
		}
	}
}

// trees enumerates all pattern trees rooted at in with at most budget
// operation nodes: each operand either becomes a leaf or (when it is a
// single-use selectable def in the same function) is expanded further.
func (e *Extractor) trees(f *gmir.Function, in *gmir.Inst, def map[gmir.Value]*gmir.Inst, uses map[gmir.Value]int, budget int) []*Node {
	if budget <= 0 {
		return nil
	}
	// Enumerate choices per operand.
	perArg := make([][]*Node, len(in.Args))
	for i, a := range in.Args {
		ty := f.TypeOf(a)
		leaf := &Node{Ty: ty, LeafReg: true}
		d := def[a]
		if d != nil && d.Op == gmir.GConstant {
			leaf = &Node{Ty: ty, LeafReg: false}
		}
		perArg[i] = []*Node{leaf}
		if d != nil && d.Op.IsSelectable() && d.Op != gmir.GConstant &&
			d.Op != gmir.GStore && uses[a] == 1 {
			for _, sub := range e.trees(f, d, def, uses, budget-1) {
				perArg[i] = append(perArg[i], sub)
			}
		}
	}
	// Cartesian product, pruned by total size.
	var out []*Node
	var build func(i int, args []*Node, used int)
	build = func(i int, args []*Node, used int) {
		if used > budget-1 {
			return
		}
		if i == len(in.Args) {
			n := &Node{Op: in.Op, Ty: in.Ty, Pred: in.Pred, MemBits: in.MemBits,
				Args: append([]*Node(nil), args...)}
			out = append(out, n)
			return
		}
		for _, choice := range perArg[i] {
			build(i+1, append(args, choice), used+opCount(choice))
		}
	}
	build(0, nil, 0)
	return out
}

// Ranked returns the distinct patterns ordered by descending frequency
// (ties broken by smaller size, then key, for determinism).
func (e *Extractor) Ranked() []*Pattern {
	ents := make([]*entry, 0, len(e.counts))
	for _, ent := range e.counts {
		ents = append(ents, ent)
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].count != ents[j].count {
			return ents[i].count > ents[j].count
		}
		si, sj := ents[i].pat.Size(), ents[j].pat.Size()
		if si != sj {
			return si < sj
		}
		return ents[i].pat.Key() < ents[j].pat.Key()
	})
	out := make([]*Pattern, len(ents))
	for i, ent := range ents {
		out[i] = ent.pat
	}
	return out
}

// Count returns the occurrence count of a pattern.
func (e *Extractor) Count(p *Pattern) int {
	if ent, ok := e.counts[p.Key()]; ok {
		return ent.count
	}
	return 0
}

// NumPatterns returns the number of distinct patterns seen.
func (e *Extractor) NumPatterns() int { return len(e.counts) }

// --- convenience constructors for tests and manual rules ---

// Leaf builds a register leaf.
func Leaf(ty gmir.Type) *Node { return &Node{Ty: ty, LeafReg: true} }

// ImmLeaf builds an immediate (constant-operand) leaf.
func ImmLeaf(ty gmir.Type) *Node { return &Node{Ty: ty, LeafReg: false} }

// Op builds an operation node.
func Op(op gmir.Opcode, ty gmir.Type, args ...*Node) *Node {
	return &Node{Op: op, Ty: ty, Args: args}
}

// Cmp builds a comparison node.
func Cmp(pred gmir.Pred, args ...*Node) *Node {
	return &Node{Op: gmir.GICmp, Ty: gmir.S1, Pred: pred, Args: args}
}

// LoadOp builds a load node.
func LoadOp(op gmir.Opcode, ty gmir.Type, memBits int, addr *Node) *Node {
	return &Node{Op: op, Ty: ty, MemBits: memBits, Args: []*Node{addr}}
}

// StoreOp builds a store node.
func StoreOp(memBits int, val, addr *Node) *Node {
	return &Node{Op: gmir.GStore, MemBits: memBits, Args: []*Node{val, addr}}
}

// New wraps a root node into a Pattern.
func New(root *Node) *Pattern { return &Pattern{Root: root} }

// EvalLeafInputs produces deterministic test-input values for leaf i of
// vector j, shared with the sequence side of probing (§V-C).
func EvalLeafInputs(rng *bv.RNG, width int) bv.BV { return rng.BV(width) }
