// Package sim executes machine IR by evaluating each instruction's
// formal effect terms — the same terms the synthesis consumed — against
// a concrete register file, flag state, and memory. It is the
// reproduction's stand-in for the paper's hardware evaluation platforms
// (Apple M2, Milk-V SG2042): simulated cycle counts (per-instruction
// latencies from the ISA metadata) play the role of measured runtime,
// and static code bytes the role of binary size (§VIII-C).
package sim

import (
	"fmt"

	"iselgen/internal/bv"
	"iselgen/internal/cost"
	"iselgen/internal/gmir"
	"iselgen/internal/mir"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

// Result reports one execution.
type Result struct {
	Ret    bv.BV
	HasRet bool
	Cycles int64
	Insts  int64
	// Flags is the final condition-flag state (N/Z/C/V), exposed so
	// differential harnesses can assert run-to-run determinism of the
	// effect evaluation, not just the returned value.
	Flags map[string]bv.BV
}

// Machine executes machine functions.
type Machine struct {
	Mem *gmir.Memory
	// MaxSteps bounds execution (default 200M instructions).
	MaxSteps int64
	// Model overrides per-instruction cycle charging. Nil keeps the ISA
	// metadata latencies; the target-derived table (cost.FromTarget)
	// reproduces them exactly, so dynamic cost under a custom table stays
	// comparable with the static model the selectors optimize.
	Model *cost.Table
}

type memAdapter struct{ m *gmir.Memory }

func (a memAdapter) Load(addr uint64, bits int) bv.BV { return a.m.Load(addr, bits) }

// Adjust converts a register-file value to an operand width: the file
// behaves like physical 64-bit registers, so narrower reads truncate and
// wider reads zero-extend.
func Adjust(v bv.BV, w int) bv.BV {
	switch {
	case v.Width == 0:
		return bv.Zero(w) // never-written register
	case v.W() == w:
		return v
	case v.W() < w:
		return v.ZExt(w)
	default:
		return v.Trunc(w)
	}
}

// Run executes f with the given arguments.
func (m *Machine) Run(f *mir.Func, args []bv.BV) (Result, error) {
	if m.Mem == nil {
		m.Mem = gmir.NewMemory()
	}
	maxSteps := m.MaxSteps
	if maxSteps == 0 {
		maxSteps = 200_000_000
	}
	if len(args) != len(f.Params) {
		return Result{}, fmt.Errorf("sim: %s takes %d args, got %d", f.Name, len(f.Params), len(args))
	}
	regs := make([]bv.BV, f.NumRegs)
	for i, p := range f.Params {
		regs[p] = args[i]
	}
	flags := map[string]bv.BV{"N": bv.Zero(1), "Z": bv.Zero(1), "C": bv.Zero(1), "V": bv.Zero(1)}

	layout := map[int]int{} // block ID -> layout index
	for i, b := range f.Blocks {
		layout[b.ID] = i
	}

	res := Result{}
	bi := 0
	for bi < len(f.Blocks) {
		blk := f.Blocks[bi]
		taken := -1
		for _, in := range blk.Insts {
			if res.Insts++; res.Insts > maxSteps {
				return res, fmt.Errorf("sim: %s: step limit exceeded", f.Name)
			}
			if m.Model != nil {
				res.Cycles += m.Model.InstVector(in).Latency
			} else {
				res.Cycles += int64(in.Latency())
			}
			switch {
			case in.Pseudo == mir.PCopy:
				regs[in.Dsts[0]] = regs[in.Args[0].Reg]
				continue
			case in.Pseudo == mir.PRet:
				if len(in.Args) == 1 {
					res.Ret = regs[in.Args[0].Reg]
					res.HasRet = true
				}
				res.Flags = map[string]bv.BV{}
				for k, v := range flags {
					res.Flags[k] = v
				}
				return res, nil
			}
			t, err := m.step(in, regs, flags)
			if err != nil {
				return res, fmt.Errorf("sim: %s: %s: %w", f.Name, in, err)
			}
			if t {
				taken = in.Succs[0]
				break
			}
		}
		if taken >= 0 {
			ni, ok := layout[taken]
			if !ok {
				return res, fmt.Errorf("sim: %s: branch to unknown bb%d", f.Name, taken)
			}
			bi = ni
		} else {
			bi++
		}
	}
	return res, fmt.Errorf("sim: %s: fell off the end", f.Name)
}

// step executes one ISA instruction; reports whether a branch was taken.
func (m *Machine) step(in *mir.Inst, regs []bv.BV, flags map[string]bv.BV) (bool, error) {
	meta := in.Meta
	if meta == nil {
		return false, fmt.Errorf("unexpected pseudo")
	}
	if len(in.Args) != len(meta.Operands) {
		return false, fmt.Errorf("operand count %d, want %d", len(in.Args), len(meta.Operands))
	}
	env := term.NewEnv()
	env.Mem = memAdapter{m.Mem}
	labelImm := -1
	for i, op := range meta.Operands {
		name := meta.Name + "." + op.Name
		a := in.Args[i]
		if a.IsImm {
			env.Bind(name, Adjust(a.Imm, op.Width))
			if len(in.Succs) > 0 && op.Kind == spec.OpImm && labelImm < 0 {
				labelImm = i
			}
		} else {
			env.Bind(name, Adjust(regs[a.Reg], op.Width))
		}
	}
	for _, fn := range spec.FlagNames {
		env.Bind(meta.Name+"."+fn, flags[fn])
	}
	const pcBase = 0x100000
	env.Bind(meta.Name+".pc", bv.New(64, pcBase))

	branchTaken := false
	dstIdx := 0
	for _, e := range meta.Effects {
		switch e.Kind {
		case spec.EffReg, spec.EffWB:
			if dstIdx >= len(in.Dsts) {
				return false, fmt.Errorf("missing destination register for %s effect", e.Kind)
			}
			regs[in.Dsts[dstIdx]] = e.T.Eval(env)
			dstIdx++
		case spec.EffFlag:
			flags[e.Dest] = e.T.Eval(env)
		case spec.EffMem:
			addr := e.T.Args[0].Eval(env)
			val := e.T.Args[1].Eval(env)
			m.Mem.Store(addr.Uint64(), val, int(e.T.Aux0))
		case spec.EffPC:
			// Decide taken-ness by displacement sensitivity: evaluate the
			// PC effect under two label values; if the results differ the
			// target depends on the displacement (branch taken); if both
			// equal fall-through (pc+4), the branch is not taken.
			if len(in.Succs) == 0 {
				return false, fmt.Errorf("PC effect without successor")
			}
			if labelImm < 0 {
				return false, fmt.Errorf("branch without label immediate")
			}
			labelName := meta.Name + "." + meta.Operands[labelImm].Name
			labelW := meta.Operands[labelImm].Width
			env.Bind(labelName, bv.New(labelW, 2))
			r1 := e.T.Eval(env)
			env.Bind(labelName, bv.New(labelW, 3))
			r2 := e.T.Eval(env)
			if r1 != r2 {
				branchTaken = true
			} else if r1.Lo != pcBase+uint64(in.Size()) {
				branchTaken = true // displacement-independent jump (e.g. JALR)
			}
		}
	}
	return branchTaken, nil
}
