package sim

import (
	"strings"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/cost"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/mir"
	"iselgen/internal/term"
)

const simSpec = `
inst ADD(rn: reg64, rm: reg64) { rd = rn + rm; }
inst ADDI(rn: reg64, imm: imm12) { rd = rn + zext(imm, 64); }
inst SUBS(rn: reg64, rm: reg64) {
  let res = rn - rm;
  rd = res;
  flags.N = extract(res, 63, 63);
  flags.Z = res == 0;
  flags.C = uge(rn, rm);
  flags.V = extract((rn ^ rm) & (rn ^ res), 63, 63);
}
inst Beq(imm: imm19) { if (flags.Z) { pc = pc + sext(concat(imm, 0:2), 64); } }
inst B(imm: imm26) { pc = pc + sext(concat(imm, 0:2), 64); }
inst LDR(rn: reg64, imm: imm12) { rd = load(rn + zext(imm, 64), 64); }
inst STR(rt: reg64, rn: reg64, imm: imm12) { mem[rn + zext(imm, 64), 64] = rt; }
inst LDP(rn: reg64, simm: imm9) {
  rd = load(rn, 64);
  rn = rn + sext(simm, 64);
}
`

func target(t *testing.T) (*term.Builder, *isa.Target) {
	t.Helper()
	b := term.NewBuilder()
	tgt, err := isa.LoadTarget(b, "simtest", simSpec, map[string]int{"LDR": 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return b, tgt
}

func TestStraightLine(t *testing.T) {
	_, tgt := target(t)
	f := &mir.Func{Name: "f", NumRegs: 4, Params: []mir.Reg{0, 1}}
	f.Blocks = []*mir.Block{{ID: 0, Insts: []*mir.Inst{
		{Meta: tgt.ByName("ADD"), Dsts: []mir.Reg{2}, Args: []mir.Operand{mir.R(0), mir.R(1)}},
		{Meta: tgt.ByName("ADDI"), Dsts: []mir.Reg{3}, Args: []mir.Operand{mir.R(2), mir.I(bv.New(12, 5))}},
		{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(3)}},
	}}}
	m := &Machine{}
	res, err := m.Run(f, []bv.BV{bv.New(64, 10), bv.New(64, 20)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Lo != 35 {
		t.Errorf("result = %d", res.Ret.Lo)
	}
	if res.Insts != 3 {
		t.Errorf("insts = %d", res.Insts)
	}
	// Latency model: 1 + 1 + 1 = 3 cycles (ret counts 1).
	if res.Cycles != 3 {
		t.Errorf("cycles = %d", res.Cycles)
	}
}

func TestConditionalBranchAndFlags(t *testing.T) {
	_, tgt := target(t)
	// if (a == b) return 1 else return 2, via SUBS + Beq.
	f := &mir.Func{Name: "f", NumRegs: 5, Params: []mir.Reg{0, 1}}
	dummy := mir.I(bv.Zero(19))
	f.Blocks = []*mir.Block{
		{ID: 0, Insts: []*mir.Inst{
			{Meta: tgt.ByName("SUBS"), Dsts: []mir.Reg{2}, Args: []mir.Operand{mir.R(0), mir.R(1)}},
			{Meta: tgt.ByName("Beq"), Args: []mir.Operand{dummy}, Succs: []int{2}},
		}},
		{ID: 1, Insts: []*mir.Inst{
			{Meta: tgt.ByName("ADDI"), Dsts: []mir.Reg{3}, Args: []mir.Operand{mir.R(4), mir.I(bv.New(12, 2))}},
			{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(3)}},
		}},
		{ID: 2, Insts: []*mir.Inst{
			{Meta: tgt.ByName("ADDI"), Dsts: []mir.Reg{3}, Args: []mir.Operand{mir.R(4), mir.I(bv.New(12, 1))}},
			{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(3)}},
		}},
	}
	m := &Machine{}
	res, err := m.Run(f, []bv.BV{bv.New(64, 7), bv.New(64, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Lo != 1 {
		t.Errorf("equal args: result = %d, want 1 (taken)", res.Ret.Lo)
	}
	res, err = m.Run(f, []bv.BV{bv.New(64, 7), bv.New(64, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Lo != 2 {
		t.Errorf("unequal args: result = %d, want 2 (fallthrough)", res.Ret.Lo)
	}
}

func TestUnconditionalBranch(t *testing.T) {
	_, tgt := target(t)
	f := &mir.Func{Name: "f", NumRegs: 3, Params: []mir.Reg{0}}
	f.Blocks = []*mir.Block{
		{ID: 0, Insts: []*mir.Inst{
			{Meta: tgt.ByName("B"), Args: []mir.Operand{mir.I(bv.Zero(26))}, Succs: []int{2}},
		}},
		{ID: 1, Insts: []*mir.Inst{ // skipped
			{Meta: tgt.ByName("ADDI"), Dsts: []mir.Reg{0}, Args: []mir.Operand{mir.R(0), mir.I(bv.New(12, 99))}},
			{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(0)}},
		}},
		{ID: 2, Insts: []*mir.Inst{
			{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(0)}},
		}},
	}
	m := &Machine{}
	res, err := m.Run(f, []bv.BV{bv.New(64, 42)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Lo != 42 {
		t.Errorf("result = %d (block 1 executed?)", res.Ret.Lo)
	}
}

func TestMemoryAndLatency(t *testing.T) {
	_, tgt := target(t)
	f := &mir.Func{Name: "f", NumRegs: 3, Params: []mir.Reg{0, 1}}
	f.Blocks = []*mir.Block{{ID: 0, Insts: []*mir.Inst{
		{Meta: tgt.ByName("STR"), Args: []mir.Operand{mir.R(1), mir.R(0), mir.I(bv.New(12, 8))}},
		{Meta: tgt.ByName("LDR"), Dsts: []mir.Reg{2}, Args: []mir.Operand{mir.R(0), mir.I(bv.New(12, 8))}},
		{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(2)}},
	}}}
	m := &Machine{Mem: gmir.NewMemory()}
	res, err := m.Run(f, []bv.BV{bv.New(64, 0x100), bv.New(64, 0xabcd)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Lo != 0xabcd {
		t.Errorf("load-after-store = %#x", res.Ret.Lo)
	}
	// STR 1 + LDR 3 + RET 1.
	if res.Cycles != 5 {
		t.Errorf("cycles = %d, want 5", res.Cycles)
	}
}

func TestWritebackDualDest(t *testing.T) {
	_, tgt := target(t)
	// Post-index load: rd and write-back both land in Dsts.
	f := &mir.Func{Name: "f", NumRegs: 4, Params: []mir.Reg{0}}
	f.Blocks = []*mir.Block{{ID: 0, Insts: []*mir.Inst{
		{Meta: tgt.ByName("LDP"), Dsts: []mir.Reg{1, 2},
			Args: []mir.Operand{mir.R(0), mir.I(bv.NewInt(9, 16))}},
		{Meta: tgt.ByName("ADD"), Dsts: []mir.Reg{3}, Args: []mir.Operand{mir.R(1), mir.R(2)}},
		{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(3)}},
	}}}
	m := &Machine{Mem: gmir.NewMemory()}
	m.Mem.Store(0x200, bv.New(64, 5), 64)
	res, err := m.Run(f, []bv.BV{bv.New(64, 0x200)})
	if err != nil {
		t.Fatal(err)
	}
	// loaded 5, rn' = 0x210: 5 + 0x210 = 0x215.
	if res.Ret.Lo != 0x215 {
		t.Errorf("result = %#x, want 0x215", res.Ret.Lo)
	}
}

func TestStepLimit(t *testing.T) {
	_, tgt := target(t)
	f := &mir.Func{Name: "spin", NumRegs: 1, Params: []mir.Reg{0}}
	f.Blocks = []*mir.Block{{ID: 0, Insts: []*mir.Inst{
		{Meta: tgt.ByName("B"), Args: []mir.Operand{mir.I(bv.Zero(26))}, Succs: []int{0}},
	}}}
	m := &Machine{MaxSteps: 100}
	_, err := m.Run(f, []bv.BV{bv.Zero(64)})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v, want step limit", err)
	}
}

func TestAdjust(t *testing.T) {
	if got := Adjust(bv.New(64, 0x1ff), 8); got.Lo != 0xff {
		t.Errorf("truncating read = %v", got)
	}
	if got := Adjust(bv.New(8, 0xff), 64); got.Lo != 0xff || got.W() != 64 {
		t.Errorf("widening read = %v", got)
	}
	if got := Adjust(bv.BV{}, 32); !got.IsZero() || got.W() != 32 {
		t.Errorf("unwritten register = %v", got)
	}
}

// A cost table overrides cycle charging; the target-derived default
// table reproduces the metadata latencies exactly, so switching the
// accounting on changes nothing until the table is edited.
func TestModelCycleAccounting(t *testing.T) {
	_, tgt := target(t)
	f := &mir.Func{Name: "f", NumRegs: 3, Params: []mir.Reg{0}}
	f.Blocks = []*mir.Block{{ID: 0, Insts: []*mir.Inst{
		{Meta: tgt.ByName("LDR"), Dsts: []mir.Reg{1}, Args: []mir.Operand{mir.R(0), mir.I(bv.New(12, 0))}},
		{Meta: tgt.ByName("ADD"), Dsts: []mir.Reg{2}, Args: []mir.Operand{mir.R(1), mir.R(1)}},
		{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(2)}},
	}}}
	mem := gmir.NewMemory()
	mem.Store(0x100, bv.New(64, 21), 64)
	args := []bv.BV{bv.New(64, 0x100)}

	plain := &Machine{Mem: mem}
	base, err := plain.Run(f, args)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != 3+1+1 {
		t.Fatalf("metadata cycles = %d", base.Cycles)
	}

	derived := &Machine{Mem: mem, Model: cost.FromTarget(tgt)}
	same, err := derived.Run(f, args)
	if err != nil {
		t.Fatal(err)
	}
	if same.Cycles != base.Cycles {
		t.Errorf("derived table diverges: %d vs %d", same.Cycles, base.Cycles)
	}

	tab := cost.FromTarget(tgt)
	tab.Latency["ADD"] = 10
	bumped := &Machine{Mem: mem, Model: tab}
	res, err := bumped.Run(f, args)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 3+10+1 {
		t.Errorf("bumped cycles = %d, want 14", res.Cycles)
	}
	if res.Ret.Lo != 42 {
		t.Errorf("result = %d", res.Ret.Lo)
	}
}
