// Package bench defines the reproduction's stand-in for the SPEC CPU
// 2017 Integer suite (paper §VIII): nine integer kernels, one per SPEC
// benchmark, each mirroring the computational character of its
// namesake. They are written directly in gMIR (the form LLVM's middle
// end would hand to the instruction selector), executed for correctness
// against the gMIR interpreter, and for "runtime" on the machine
// simulator.
//
// All kernels compute over s64 values with sized loads/stores, the shape
// RV64 and AArch64 code actually has after legalization. Every kernel
// returns a checksum so that all backends can be validated to produce
// identical results (DESIGN.md invariant #7).
package bench

import (
	"iselgen/internal/bv"
	"iselgen/internal/gmir"
)

// Workload is one benchmark.
type Workload struct {
	Name string
	// Build constructs a fresh gMIR function (selection mutates blocks,
	// so each backend gets its own copy).
	Build func() *gmir.Function
	// Args are the run arguments.
	Args []bv.BV
	// InitMem seeds memory before a run.
	InitMem func(m *gmir.Memory)
}

// Suite returns the nine SPEC-analog workloads. scale stretches the
// iteration counts (1 = quick test, 10+ = benchmark runs).
func Suite(scale int) []Workload {
	if scale < 1 {
		scale = 1
	}
	n := uint64(scale)
	return []Workload{
		{
			// 600.perlbench: interpreter whose hottest loops hash strings.
			Name:    "perlbench_hash",
			Build:   buildPerlHash,
			Args:    []bv.BV{bv.New(64, 0x1000), bv.New(64, 512), bv.New(64, 40*n)},
			InitMem: seedBytes(0x1000, 512, 7),
		},
		{
			// 602.gcc: bytecode/expression evaluation with heavy branching
			// and bit manipulation.
			Name:    "gcc_eval",
			Build:   buildGccEval,
			Args:    []bv.BV{bv.New(64, 0x1000), bv.New(64, 256), bv.New(64, 60*n)},
			InitMem: seedBytes(0x1000, 256, 13),
		},
		{
			// 605.mcf: network simplex — pointer-light array graph
			// relaxation with compares and selects.
			Name:    "mcf_relax",
			Build:   buildMcfRelax,
			Args:    []bv.BV{bv.New(64, 0x4000), bv.New(64, 0x8000), bv.New(64, 128), bv.New(64, 25*n)},
			InitMem: seedGraph,
		},
		{
			// 620.omnetpp: discrete-event simulation on a binary heap.
			Name:    "omnetpp_heap",
			Build:   buildHeapSim,
			Args:    []bv.BV{bv.New(64, 0x4000), bv.New(64, 200*n)},
			InitMem: nil,
		},
		{
			// 623.xalancbmk: tree traversal and dispatch.
			Name:    "xalancbmk_tree",
			Build:   buildTreeWalk,
			Args:    []bv.BV{bv.New(64, 0x4000), bv.New(64, 127), bv.New(64, 60*n)},
			InitMem: seedTree,
		},
		{
			// 625.x264: sum of absolute differences over pixel rows.
			Name:    "x264_sad",
			Build:   buildSAD,
			Args:    []bv.BV{bv.New(64, 0x1000), bv.New(64, 0x2000), bv.New(64, 256), bv.New(64, 30*n)},
			InitMem: seedPixels,
		},
		{
			// 631.deepsjeng: bitboard move generation — shifts, masks,
			// bit counting via twiddling.
			Name:    "deepsjeng_bits",
			Build:   buildBitboard,
			Args:    []bv.BV{bv.New(64, 0x9e3779b97f4a7c15), bv.New(64, 120*n)},
			InitMem: nil,
		},
		{
			// 641.leela: MCTS scoring — the select/compare-heavy shape of
			// the paper's Fig. 10 discussion.
			Name:    "leela_score",
			Build:   buildLeelaScore,
			Args:    []bv.BV{bv.New(64, 0x4000), bv.New(64, 64), bv.New(64, 50*n)},
			InitMem: seedScores,
		},
		{
			// 657.xz: LZ match finding and accumulation.
			Name:    "xz_match",
			Build:   buildXzMatch,
			Args:    []bv.BV{bv.New(64, 0x1000), bv.New(64, 768), bv.New(64, 25*n)},
			InitMem: seedBytes(0x1000, 768, 31),
		},
	}
}

func seedBytes(base uint64, n int, mul uint64) func(*gmir.Memory) {
	return func(m *gmir.Memory) {
		x := uint64(0x243f6a8885a308d3)
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + mul
			m.Store(base+uint64(i), bv.New(8, x>>56), 8)
		}
	}
}

func seedGraph(m *gmir.Memory) {
	// dist[i] at 0x4000 (8 bytes each); edges (src,dst,w) triples of
	// 8 bytes at 0x8000.
	x := uint64(12345)
	for i := 0; i < 128; i++ {
		m.Store(0x4000+uint64(i*8), bv.New(64, 1<<30), 64)
	}
	m.Store(0x4000, bv.Zero(64), 64)
	for e := 0; e < 256; e++ {
		x = x*6364136223846793005 + 1442695040888963407
		src := (x >> 33) % 128
		x = x*6364136223846793005 + 1442695040888963407
		dst := (x >> 33) % 128
		x = x*6364136223846793005 + 1442695040888963407
		wgt := (x >> 50) + 1
		m.Store(0x8000+uint64(e*24), bv.New(64, src), 64)
		m.Store(0x8000+uint64(e*24+8), bv.New(64, dst), 64)
		m.Store(0x8000+uint64(e*24+16), bv.New(64, wgt), 64)
	}
}

func seedTree(m *gmir.Memory) {
	// Implicit binary tree: node i holds a key at 0x4000+16i and a tag
	// at +8.
	x := uint64(777)
	for i := 0; i < 127; i++ {
		x = x*2862933555777941757 + 3037000493
		m.Store(0x4000+uint64(i*16), bv.New(64, x>>16), 64)
		m.Store(0x4000+uint64(i*16+8), bv.New(64, x%5), 64)
	}
}

func seedPixels(m *gmir.Memory) {
	x := uint64(99)
	for i := 0; i < 256; i++ {
		x = x*6364136223846793005 + 7
		m.Store(0x1000+uint64(i), bv.New(8, x>>40), 8)
		x = x*6364136223846793005 + 11
		m.Store(0x2000+uint64(i), bv.New(8, x>>40), 8)
	}
}

func seedScores(m *gmir.Memory) {
	// visits and wins arrays of 64 entries.
	x := uint64(31337)
	for i := 0; i < 64; i++ {
		x = x*6364136223846793005 + 5
		m.Store(0x4000+uint64(i*8), bv.New(64, x>>48|1), 64)
		x = x*6364136223846793005 + 9
		m.Store(0x4200+uint64(i*8), bv.New(64, (x>>50)%((x>>48|1)+1)), 64)
	}
}

// --- kernels ---

// buildPerlHash: FNV-style rolling hash over a byte buffer, re-hashed
// `iters` times with the previous hash as seed, plus a table probe.
func buildPerlHash() *gmir.Function {
	fb := gmir.NewFunc("perlbench_hash")
	buf := fb.Param(gmir.P0)
	length := fb.Param(gmir.S64)
	iters := fb.Param(gmir.S64)

	entry := fb.Block()
	outer := fb.NewBlock()
	inner := fb.NewBlock()
	innerEnd := fb.NewBlock()
	outerEnd := fb.NewBlock()
	exit := fb.NewBlock()

	zero := fb.Const(gmir.S64, 0)
	seed := fb.Const(gmir.S64, 0xcbf29ce484222325)
	fb.Br(outer)

	fb.SetBlock(outer)
	it := fb.Phi(gmir.S64, zero, entry)
	hash := fb.Phi(gmir.S64, seed, entry)
	fb.Br(inner)

	fb.SetBlock(inner)
	i := fb.Phi(gmir.S64, zero, outer)
	h := fb.Phi(gmir.S64, hash, outer)
	p := fb.PtrAdd(buf, i)
	c := fb.Load(gmir.S64, p, 8)
	hx := fb.Xor(h, c)
	prime := fb.Const(gmir.S64, 0x100000001b3)
	h2 := fb.Mul(hx, prime)
	// Mix: h2 ^= h2 >> 29.
	sh := fb.LShr(h2, fb.Const(gmir.S64, 29))
	h3 := fb.Xor(h2, sh)
	i2 := fb.Add(i, fb.Const(gmir.S64, 1))
	fb.AddPhiIncoming(i, i2, inner)
	fb.AddPhiIncoming(h, h3, inner)
	done := fb.ICmp(gmir.PredUGE, i2, length)
	fb.BrCond(done, innerEnd, inner)

	fb.SetBlock(innerEnd)
	// Probe: fold the hash into a bucket and mix with its index.
	bucket := fb.And(h3, fb.Const(gmir.S64, 63))
	mixed := fb.Add(h3, fb.Shl(bucket, fb.Const(gmir.S64, 4)))
	it2 := fb.Add(it, fb.Const(gmir.S64, 1))
	fb.AddPhiIncoming(it, it2, innerEnd)
	fb.AddPhiIncoming(hash, mixed, innerEnd)
	odone := fb.ICmp(gmir.PredUGE, it2, iters)
	fb.BrCond(odone, outerEnd, outer)

	fb.SetBlock(outerEnd)
	fb.Br(exit)
	fb.SetBlock(exit)
	res := fb.Phi(gmir.S64, mixed, outerEnd)
	fb.Ret(res)
	return fb.MustFinish()
}

// buildGccEval: interpret a buffer of opcode bytes over an accumulator —
// branchy dispatch like a compiler's folding loops.
func buildGccEval() *gmir.Function {
	fb := gmir.NewFunc("gcc_eval")
	code := fb.Param(gmir.P0)
	length := fb.Param(gmir.S64)
	rounds := fb.Param(gmir.S64)

	entry := fb.Block()
	outer := fb.NewBlock()
	loop := fb.NewBlock()
	caseAdd := fb.NewBlock()
	caseXor := fb.NewBlock()
	caseShift := fb.NewBlock()
	join := fb.NewBlock()
	loopEnd := fb.NewBlock()
	exit := fb.NewBlock()

	zero := fb.Const(gmir.S64, 0)
	one := fb.Const(gmir.S64, 1)
	accInit := fb.Const(gmir.S64, 0x1234)
	fb.Br(outer)

	fb.SetBlock(outer)
	r := fb.Phi(gmir.S64, zero, entry)
	acc0 := fb.Phi(gmir.S64, accInit, entry)
	fb.Br(loop)

	fb.SetBlock(loop)
	i := fb.Phi(gmir.S64, zero, outer)
	acc := fb.Phi(gmir.S64, acc0, outer)
	opb := fb.Load(gmir.S64, fb.PtrAdd(code, i), 8)
	kind := fb.And(opb, fb.Const(gmir.S64, 3))
	isAdd := fb.ICmp(gmir.PredEQ, kind, zero)
	fb.BrCond(isAdd, caseAdd, caseXor)

	fb.SetBlock(caseAdd)
	aAdd := fb.Add(acc, opb)
	fb.Br(join)

	fb.SetBlock(caseXor)
	isXor := fb.ICmp(gmir.PredEQ, kind, one)
	fb.BrCond(isXor, caseShift, join) // fallthrough join uses acc below

	fb.SetBlock(caseShift)
	amt := fb.And(opb, fb.Const(gmir.S64, 31))
	aShift := fb.Xor(acc, fb.Shl(acc, amt))
	fb.Br(join)

	fb.SetBlock(join)
	av := fb.Phi(gmir.S64, aAdd, caseAdd, acc, caseXor, aShift, caseShift)
	mixed := fb.Add(fb.Mul(av, fb.Const(gmir.S64, 0x9e37)), fb.LShr(av, fb.Const(gmir.S64, 17)))
	i2 := fb.Add(i, one)
	fb.AddPhiIncoming(i, i2, join)
	fb.AddPhiIncoming(acc, mixed, join)
	done := fb.ICmp(gmir.PredUGE, i2, length)
	fb.BrCond(done, loopEnd, loop)

	fb.SetBlock(loopEnd)
	r2 := fb.Add(r, one)
	fb.AddPhiIncoming(r, r2, loopEnd)
	fb.AddPhiIncoming(acc0, mixed, loopEnd)
	rdone := fb.ICmp(gmir.PredUGE, r2, rounds)
	fb.BrCond(rdone, exit, outer)

	fb.SetBlock(exit)
	fb.Ret(mixed)
	return fb.MustFinish()
}

// buildMcfRelax: Bellman-Ford-style edge relaxation over (src, dst, w)
// triples, with a select for the min.
func buildMcfRelax() *gmir.Function {
	fb := gmir.NewFunc("mcf_relax")
	dist := fb.Param(gmir.P0)
	edges := fb.Param(gmir.P0)
	nEdges := fb.Param(gmir.S64)
	rounds := fb.Param(gmir.S64)

	entry := fb.Block()
	outer := fb.NewBlock()
	loop := fb.NewBlock()
	loopEnd := fb.NewBlock()
	exit := fb.NewBlock()

	zero := fb.Const(gmir.S64, 0)
	one := fb.Const(gmir.S64, 1)
	fb.Br(outer)

	fb.SetBlock(outer)
	r := fb.Phi(gmir.S64, zero, entry)
	fb.Br(loop)

	fb.SetBlock(loop)
	e := fb.Phi(gmir.S64, zero, outer)
	base := fb.PtrAdd(edges, fb.Mul(e, fb.Const(gmir.S64, 24)))
	src := fb.Load(gmir.S64, base, 64)
	dst := fb.Load(gmir.S64, fb.PtrAdd(base, fb.Const(gmir.S64, 8)), 64)
	wgt := fb.Load(gmir.S64, fb.PtrAdd(base, fb.Const(gmir.S64, 16)), 64)
	sp := fb.PtrAdd(dist, fb.Shl(src, fb.Const(gmir.S64, 3)))
	dp := fb.PtrAdd(dist, fb.Shl(dst, fb.Const(gmir.S64, 3)))
	ds := fb.Load(gmir.S64, sp, 64)
	dd := fb.Load(gmir.S64, dp, 64)
	cand := fb.Add(ds, wgt)
	better := fb.ICmp(gmir.PredULT, cand, dd)
	newd := fb.Select(better, cand, dd)
	fb.Store(newd, dp, 64)
	e2 := fb.Add(e, one)
	fb.AddPhiIncoming(e, e2, loop)
	done := fb.ICmp(gmir.PredUGE, e2, nEdges)
	fb.BrCond(done, loopEnd, loop)

	fb.SetBlock(loopEnd)
	r2 := fb.Add(r, one)
	fb.AddPhiIncoming(r, r2, loopEnd)
	rdone := fb.ICmp(gmir.PredUGE, r2, rounds)
	fb.BrCond(rdone, exit, outer)

	fb.SetBlock(exit)
	// Checksum: xor of a few distances.
	d0 := fb.Load(gmir.S64, fb.PtrAdd(dist, fb.Const(gmir.S64, 8*17)), 64)
	d1 := fb.Load(gmir.S64, fb.PtrAdd(dist, fb.Const(gmir.S64, 8*63)), 64)
	d2 := fb.Load(gmir.S64, fb.PtrAdd(dist, fb.Const(gmir.S64, 8*101)), 64)
	fb.Ret(fb.Xor(fb.Xor(d0, d1), d2))
	return fb.MustFinish()
}

// buildHeapSim: push pseudo-random events into an array binary heap and
// pop the minimum, repeatedly (sift-down dominated).
func buildHeapSim() *gmir.Function {
	fb := gmir.NewFunc("omnetpp_heap")
	heap := fb.Param(gmir.P0)
	events := fb.Param(gmir.S64)

	entry := fb.Block()
	push := fb.NewBlock()
	sift := fb.NewBlock()
	siftBody := fb.NewBlock()
	siftSwap := fb.NewBlock()
	next := fb.NewBlock()
	exit := fb.NewBlock()

	zero := fb.Const(gmir.S64, 0)
	one := fb.Const(gmir.S64, 1)
	rngInit := fb.Const(gmir.S64, 0x2545f4914f6cdd1d)
	fb.Br(push)

	// push: heap[n] = rng; sift up.
	fb.SetBlock(push)
	n := fb.Phi(gmir.S64, zero, entry)
	rng := fb.Phi(gmir.S64, rngInit, entry)
	chk := fb.Phi(gmir.S64, zero, entry)
	// xorshift.
	x1 := fb.Xor(rng, fb.Shl(rng, fb.Const(gmir.S64, 13)))
	x2 := fb.Xor(x1, fb.LShr(x1, fb.Const(gmir.S64, 7)))
	x3 := fb.Xor(x2, fb.Shl(x2, fb.Const(gmir.S64, 17)))
	slot := fb.PtrAdd(heap, fb.Shl(n, fb.Const(gmir.S64, 3)))
	key := fb.And(x3, fb.Const(gmir.S64, 0xffff))
	fb.Store(key, slot, 64)
	fb.Br(sift)

	// sift up from position n.
	fb.SetBlock(sift)
	pos := fb.Phi(gmir.S64, n, push)
	atTop := fb.ICmp(gmir.PredEQ, pos, zero)
	fb.BrCond(atTop, next, siftBody)

	fb.SetBlock(siftBody)
	parent := fb.LShr(fb.Sub(pos, one), one)
	pp := fb.PtrAdd(heap, fb.Shl(parent, fb.Const(gmir.S64, 3)))
	cp := fb.PtrAdd(heap, fb.Shl(pos, fb.Const(gmir.S64, 3)))
	pv := fb.Load(gmir.S64, pp, 64)
	cv := fb.Load(gmir.S64, cp, 64)
	smaller := fb.ICmp(gmir.PredULT, cv, pv)
	fb.BrCond(smaller, siftSwap, next)

	fb.SetBlock(siftSwap)
	fb.Store(cv, pp, 64)
	fb.Store(pv, cp, 64)
	fb.AddPhiIncoming(pos, parent, siftSwap)
	fb.Br(sift)

	fb.SetBlock(next)
	top := fb.Load(gmir.S64, heap, 64)
	chk2 := fb.Add(fb.Mul(chk, fb.Const(gmir.S64, 31)), top)
	n2 := fb.Add(n, one)
	fb.AddPhiIncoming(n, n2, next)
	fb.AddPhiIncoming(rng, x3, next)
	fb.AddPhiIncoming(chk, chk2, next)
	done := fb.ICmp(gmir.PredUGE, n2, events)
	fb.BrCond(done, exit, push)

	fb.SetBlock(exit)
	fb.Ret(chk2)
	return fb.MustFinish()
}

// buildTreeWalk: walk an implicit binary tree by key comparisons,
// accumulating tag dispatch counts.
func buildTreeWalk() *gmir.Function {
	fb := gmir.NewFunc("xalancbmk_tree")
	nodes := fb.Param(gmir.P0)
	count := fb.Param(gmir.S64)
	probes := fb.Param(gmir.S64)

	entry := fb.Block()
	outer := fb.NewBlock()
	walk := fb.NewBlock()
	step := fb.NewBlock()
	walkEnd := fb.NewBlock()
	exit := fb.NewBlock()

	zero := fb.Const(gmir.S64, 0)
	one := fb.Const(gmir.S64, 1)
	fb.Br(outer)

	fb.SetBlock(outer)
	q := fb.Phi(gmir.S64, zero, entry)
	acc := fb.Phi(gmir.S64, zero, entry)
	// Probe key derived from q.
	pk := fb.Mul(q, fb.Const(gmir.S64, 0x9e3779b97f4a7c15))
	fb.Br(walk)

	fb.SetBlock(walk)
	idx := fb.Phi(gmir.S64, zero, outer)
	a := fb.Phi(gmir.S64, acc, outer)
	inTree := fb.ICmp(gmir.PredULT, idx, count)
	fb.BrCond(inTree, step, walkEnd)

	fb.SetBlock(step)
	np := fb.PtrAdd(nodes, fb.Shl(idx, fb.Const(gmir.S64, 4)))
	key := fb.Load(gmir.S64, np, 64)
	tag := fb.Load(gmir.S64, fb.PtrAdd(np, fb.Const(gmir.S64, 8)), 64)
	a2 := fb.Add(a, fb.Shl(tag, fb.And(idx, fb.Const(gmir.S64, 7))))
	goLeft := fb.ICmp(gmir.PredULT, pk, key)
	l := fb.Add(fb.Shl(idx, one), one)
	rr := fb.Add(fb.Shl(idx, one), fb.Const(gmir.S64, 2))
	nxt := fb.Select(goLeft, l, rr)
	fb.AddPhiIncoming(idx, nxt, step)
	fb.AddPhiIncoming(a, a2, step)
	fb.Br(walk)

	fb.SetBlock(walkEnd)
	q2 := fb.Add(q, one)
	fb.AddPhiIncoming(q, q2, walkEnd)
	fb.AddPhiIncoming(acc, a, walkEnd)
	done := fb.ICmp(gmir.PredUGE, q2, probes)
	fb.BrCond(done, exit, outer)

	fb.SetBlock(exit)
	fb.Ret(a)
	return fb.MustFinish()
}

// buildSAD: sum of absolute differences over byte rows with clipping —
// x264's hottest kernel shape.
func buildSAD() *gmir.Function {
	fb := gmir.NewFunc("x264_sad")
	pa := fb.Param(gmir.P0)
	pb := fb.Param(gmir.P0)
	length := fb.Param(gmir.S64)
	rounds := fb.Param(gmir.S64)

	entry := fb.Block()
	outer := fb.NewBlock()
	loop := fb.NewBlock()
	loopEnd := fb.NewBlock()
	exit := fb.NewBlock()

	zero := fb.Const(gmir.S64, 0)
	one := fb.Const(gmir.S64, 1)
	fb.Br(outer)

	fb.SetBlock(outer)
	r := fb.Phi(gmir.S64, zero, entry)
	total := fb.Phi(gmir.S64, zero, entry)
	fb.Br(loop)

	fb.SetBlock(loop)
	i := fb.Phi(gmir.S64, zero, outer)
	sad := fb.Phi(gmir.S64, zero, outer)
	va := fb.Load(gmir.S64, fb.PtrAdd(pa, i), 8)
	vb := fb.Load(gmir.S64, fb.PtrAdd(pb, i), 8)
	diff := fb.Sub(va, vb)
	ad := fb.Abs(diff)
	sad2 := fb.Add(sad, ad)
	i2 := fb.Add(i, one)
	fb.AddPhiIncoming(i, i2, loop)
	fb.AddPhiIncoming(sad, sad2, loop)
	done := fb.ICmp(gmir.PredUGE, i2, length)
	fb.BrCond(done, loopEnd, loop)

	fb.SetBlock(loopEnd)
	// Clip the row SAD to 16 bits and accumulate.
	clipped := fb.UMin(sad2, fb.Const(gmir.S64, 0xffff))
	t2 := fb.Add(fb.Mul(total, fb.Const(gmir.S64, 33)), clipped)
	r2 := fb.Add(r, one)
	fb.AddPhiIncoming(r, r2, loopEnd)
	fb.AddPhiIncoming(total, t2, loopEnd)
	rdone := fb.ICmp(gmir.PredUGE, r2, rounds)
	fb.BrCond(rdone, exit, outer)

	fb.SetBlock(exit)
	fb.Ret(t2)
	return fb.MustFinish()
}

// buildBitboard: bitboard sweeps — shifted masks, bit extraction, and a
// twiddling popcount (compilers expand CTPOP on targets without it).
func buildBitboard() *gmir.Function {
	fb := gmir.NewFunc("deepsjeng_bits")
	seed := fb.Param(gmir.S64)
	iters := fb.Param(gmir.S64)

	entry := fb.Block()
	loop := fb.NewBlock()
	exit := fb.NewBlock()

	zero := fb.Const(gmir.S64, 0)
	one := fb.Const(gmir.S64, 1)
	fb.Br(loop)

	fb.SetBlock(loop)
	i := fb.Phi(gmir.S64, zero, entry)
	bbd := fb.Phi(gmir.S64, seed, entry)
	acc := fb.Phi(gmir.S64, zero, entry)
	// Knight-attack-like spread: shifted copies with file masks.
	notA := fb.Const(gmir.S64, 0xfefefefefefefefe)
	notH := fb.Const(gmir.S64, 0x7f7f7f7f7f7f7f7f)
	e1 := fb.And(fb.Shl(bbd, one), notA)
	w1 := fb.And(fb.LShr(bbd, one), notH)
	n8 := fb.Shl(bbd, fb.Const(gmir.S64, 8))
	s8 := fb.LShr(bbd, fb.Const(gmir.S64, 8))
	spread := fb.Or(fb.Or(e1, w1), fb.Or(n8, s8))
	// Twiddling popcount of the spread.
	m1 := fb.Const(gmir.S64, 0x5555555555555555)
	m2 := fb.Const(gmir.S64, 0x3333333333333333)
	m4 := fb.Const(gmir.S64, 0x0f0f0f0f0f0f0f0f)
	h01 := fb.Const(gmir.S64, 0x0101010101010101)
	v1 := fb.Sub(spread, fb.And(fb.LShr(spread, one), m1))
	v2 := fb.Add(fb.And(v1, m2), fb.And(fb.LShr(v1, fb.Const(gmir.S64, 2)), m2))
	v3 := fb.And(fb.Add(v2, fb.LShr(v2, fb.Const(gmir.S64, 4))), m4)
	pc := fb.LShr(fb.Mul(v3, h01), fb.Const(gmir.S64, 56))
	// LSB extraction: bbd & -bbd, then clear.
	lsb := fb.And(bbd, fb.Sub(zero, bbd))
	cleared := fb.Xor(bbd, lsb)
	next := fb.Add(fb.Mul(cleared, fb.Const(gmir.S64, 6364136223846793005)), fb.Const(gmir.S64, 0xb))
	acc2 := fb.Add(fb.Xor(acc, spread), pc)
	i2 := fb.Add(i, one)
	fb.AddPhiIncoming(i, i2, loop)
	fb.AddPhiIncoming(bbd, next, loop)
	fb.AddPhiIncoming(acc, acc2, loop)
	done := fb.ICmp(gmir.PredUGE, i2, iters)
	fb.BrCond(done, exit, loop)

	fb.SetBlock(exit)
	fb.Ret(acc2)
	return fb.MustFinish()
}

// buildLeelaScore: UCT-style child scoring with the zext(select(icmp))
// pattern of the paper's Fig. 10, plus integer division.
func buildLeelaScore() *gmir.Function {
	fb := gmir.NewFunc("leela_score")
	tbl := fb.Param(gmir.P0)
	nodes := fb.Param(gmir.S64)
	rounds := fb.Param(gmir.S64)

	entry := fb.Block()
	outer := fb.NewBlock()
	loop := fb.NewBlock()
	loopEnd := fb.NewBlock()
	exit := fb.NewBlock()

	zero := fb.Const(gmir.S64, 0)
	one := fb.Const(gmir.S64, 1)
	fb.Br(outer)

	fb.SetBlock(outer)
	r := fb.Phi(gmir.S64, zero, entry)
	bestAcc := fb.Phi(gmir.S64, zero, entry)
	fb.Br(loop)

	fb.SetBlock(loop)
	i := fb.Phi(gmir.S64, zero, outer)
	best := fb.Phi(gmir.S64, zero, outer)
	besti := fb.Phi(gmir.S64, zero, outer)
	vp := fb.PtrAdd(tbl, fb.Shl(i, fb.Const(gmir.S64, 3)))
	visits := fb.Load(gmir.S64, vp, 64)
	wp := fb.PtrAdd(vp, fb.Const(gmir.S64, 0x200))
	wins := fb.Load(gmir.S64, wp, 64)
	// score = (wins<<16)/(visits+1) + explore bonus
	num := fb.Shl(wins, fb.Const(gmir.S64, 16))
	den := fb.Add(visits, one)
	q := fb.UDiv(num, den)
	bonus := fb.LShr(fb.Const(gmir.S64, 1<<20), fb.UMin(visits, fb.Const(gmir.S64, 18)))
	score := fb.Add(q, bonus)
	// Fig. 10 shape: cmp + select + zext of the comparison.
	isB := fb.ICmp(gmir.PredUGT, score, best)
	nb := fb.Select(isB, score, best)
	flag := fb.ZExt(gmir.S64, isB)
	ni := fb.Select(fb.ICmp(gmir.PredNE, flag, zero), i, besti)
	i2 := fb.Add(i, one)
	fb.AddPhiIncoming(i, i2, loop)
	fb.AddPhiIncoming(best, nb, loop)
	fb.AddPhiIncoming(besti, ni, loop)
	done := fb.ICmp(gmir.PredUGE, i2, nodes)
	fb.BrCond(done, loopEnd, loop)

	fb.SetBlock(loopEnd)
	// Record a visit for the winner (read-modify-write).
	bp := fb.PtrAdd(tbl, fb.Shl(ni, fb.Const(gmir.S64, 3)))
	bvv := fb.Load(gmir.S64, bp, 64)
	fb.Store(fb.Add(bvv, one), bp, 64)
	acc2 := fb.Add(fb.Mul(bestAcc, fb.Const(gmir.S64, 1000003)), fb.Xor(nb, ni))
	r2 := fb.Add(r, one)
	fb.AddPhiIncoming(r, r2, loopEnd)
	fb.AddPhiIncoming(bestAcc, acc2, loopEnd)
	rdone := fb.ICmp(gmir.PredUGE, r2, rounds)
	fb.BrCond(rdone, exit, outer)

	fb.SetBlock(exit)
	fb.Ret(acc2)
	return fb.MustFinish()
}

// buildXzMatch: LZ77 match-length scanning between two windows of a
// buffer plus a carry-select accumulation, like xz's match finder.
func buildXzMatch() *gmir.Function {
	fb := gmir.NewFunc("xz_match")
	buf := fb.Param(gmir.P0)
	length := fb.Param(gmir.S64)
	rounds := fb.Param(gmir.S64)

	entry := fb.Block()
	outer := fb.NewBlock()
	scan := fb.NewBlock()
	scanBody := fb.NewBlock()
	scanEnd := fb.NewBlock()
	exit := fb.NewBlock()

	zero := fb.Const(gmir.S64, 0)
	one := fb.Const(gmir.S64, 1)
	fb.Br(outer)

	fb.SetBlock(outer)
	r := fb.Phi(gmir.S64, zero, entry)
	acc := fb.Phi(gmir.S64, zero, entry)
	// Candidate distance cycles with the round.
	distRaw := fb.And(fb.Mul(r, fb.Const(gmir.S64, 37)), fb.Const(gmir.S64, 255))
	dist := fb.Add(distRaw, one)
	fb.Br(scan)

	fb.SetBlock(scan)
	i := fb.Phi(gmir.S64, dist, outer)
	mlen := fb.Phi(gmir.S64, zero, outer)
	inRange := fb.ICmp(gmir.PredULT, i, length)
	fb.BrCond(inRange, scanBody, scanEnd)

	fb.SetBlock(scanBody)
	cur := fb.Load(gmir.S64, fb.PtrAdd(buf, i), 8)
	prev := fb.Load(gmir.S64, fb.PtrAdd(buf, fb.Sub(i, dist)), 8)
	same := fb.ICmp(gmir.PredEQ, cur, prev)
	ml2 := fb.Add(mlen, fb.ZExt(gmir.S64, same))
	i2 := fb.Add(i, one)
	fb.AddPhiIncoming(i, i2, scanBody)
	fb.AddPhiIncoming(mlen, ml2, scanBody)
	fb.Br(scan)

	fb.SetBlock(scanEnd)
	acc2 := fb.Add(fb.Mul(acc, fb.Const(gmir.S64, 131)), mlen)
	r2 := fb.Add(r, one)
	fb.AddPhiIncoming(r, r2, scanEnd)
	fb.AddPhiIncoming(acc, acc2, scanEnd)
	done := fb.ICmp(gmir.PredUGE, r2, rounds)
	fb.BrCond(done, exit, outer)

	fb.SetBlock(exit)
	fb.Ret(acc2)
	return fb.MustFinish()
}
