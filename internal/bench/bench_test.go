package bench

import (
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/isa/aarch64"
	"iselgen/internal/isa/riscv"
	"iselgen/internal/isel"
	"iselgen/internal/sim"
	"iselgen/internal/term"
)

// interpret runs a workload on the reference interpreter.
func interpret(t *testing.T, w Workload) bv.BV {
	t.Helper()
	mem := gmir.NewMemory()
	if w.InitMem != nil {
		w.InitMem(mem)
	}
	ip := &gmir.Interp{Mem: mem}
	res, err := ip.Run(w.Build(), w.Args...)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return res
}

func TestWorkloadsRunAndAreDeterministic(t *testing.T) {
	for _, w := range Suite(1) {
		r1 := interpret(t, w)
		r2 := interpret(t, w)
		if r1 != r2 {
			t.Errorf("%s: nondeterministic: %v vs %v", w.Name, r1, r2)
		}
		if r1.IsZero() {
			t.Errorf("%s: zero checksum (degenerate kernel?)", w.Name)
		}
		t.Logf("%s checksum %v", w.Name, r1)
	}
}

func TestWorkloadsScaleChangesWork(t *testing.T) {
	// Higher scale must execute more instructions.
	w1 := Suite(1)[0]
	w3 := Suite(3)[0]
	mem := gmir.NewMemory()
	w1.InitMem(mem)
	ip1 := &gmir.Interp{Mem: mem}
	if _, err := ip1.Run(w1.Build(), w1.Args...); err != nil {
		t.Fatal(err)
	}
	mem3 := gmir.NewMemory()
	w3.InitMem(mem3)
	ip3 := &gmir.Interp{Mem: mem3}
	if _, err := ip3.Run(w3.Build(), w3.Args...); err != nil {
		t.Fatal(err)
	}
	if ip3.Steps <= ip1.Steps {
		t.Errorf("scaling did not increase work: %d vs %d", ip1.Steps, ip3.Steps)
	}
}

// TestAllBackendsMatchInterpreter is DESIGN.md invariant #7: every
// backend's generated code computes exactly the interpreter's checksum
// on every workload.
func TestAllBackendsMatchInterpreter(t *testing.T) {
	ab := term.NewBuilder()
	a64, err := aarch64.Load(ab)
	if err != nil {
		t.Fatal(err)
	}
	a64Set := isel.NewA64Backends(ab, a64)
	rb := term.NewBuilder()
	rv, err := riscv.Load(rb)
	if err != nil {
		t.Fatal(err)
	}
	rvSet := isel.NewRVBackends(rb, rv)

	backends := []struct {
		bk  *isel.Backend
		tgt *isa.Target
	}{
		{a64Set.Handwritten, a64}, {a64Set.DAG, a64}, {a64Set.Naive, a64},
		{rvSet.Handwritten, rv}, {rvSet.DAG, rv},
	}

	for _, w := range Suite(1) {
		want := interpret(t, w)
		for _, be := range backends {
			f := w.Build()
			isel.Prepare(f, be.tgt.Name)
			mf, rep := be.bk.Select(f)
			if rep.Fallback {
				t.Errorf("%s/%s: fallback: %s", w.Name, be.bk.Name, rep.FallbackReason)
				continue
			}
			mem := gmir.NewMemory()
			if w.InitMem != nil {
				w.InitMem(mem)
			}
			m := &sim.Machine{Mem: mem}
			got, err := m.Run(mf, w.Args)
			if err != nil {
				t.Errorf("%s/%s/%s: %v", w.Name, be.tgt.Name, be.bk.Name, err)
				continue
			}
			if sim.Adjust(got.Ret, 64) != want {
				t.Errorf("%s/%s/%s: checksum %v, want %v",
					w.Name, be.tgt.Name, be.bk.Name, got.Ret, want)
			}
		}
	}
}

func TestBackendQualityOrdering(t *testing.T) {
	// On AArch64 the naive backend must be slower overall than the
	// handwritten one, and the DAG analog at least as fast as
	// handwritten (paper Fig. 9 ordering).
	ab := term.NewBuilder()
	a64, err := aarch64.Load(ab)
	if err != nil {
		t.Fatal(err)
	}
	set := isel.NewA64Backends(ab, a64)
	var handCycles, dagCycles, naiveCycles int64
	for _, w := range Suite(1) {
		for _, bk := range []*isel.Backend{set.Handwritten, set.DAG, set.Naive} {
			f := w.Build()
			isel.Prepare(f, "aarch64")
			mf, rep := bk.Select(f)
			if rep.Fallback {
				t.Fatalf("%s/%s fallback: %s", w.Name, bk.Name, rep.FallbackReason)
			}
			mem := gmir.NewMemory()
			if w.InitMem != nil {
				w.InitMem(mem)
			}
			m := &sim.Machine{Mem: mem}
			res, err := m.Run(mf, w.Args)
			if err != nil {
				t.Fatal(err)
			}
			switch bk {
			case set.Handwritten:
				handCycles += res.Cycles
			case set.DAG:
				dagCycles += res.Cycles
			case set.Naive:
				naiveCycles += res.Cycles
			}
		}
	}
	t.Logf("cycles: dag=%d handwritten=%d naive=%d", dagCycles, handCycles, naiveCycles)
	if naiveCycles <= handCycles {
		t.Errorf("naive (%d) not slower than handwritten (%d)", naiveCycles, handCycles)
	}
	if dagCycles > handCycles {
		t.Errorf("DAG analog (%d) slower than handwritten (%d)", dagCycles, handCycles)
	}
}
