package gmir

import (
	"fmt"

	"iselgen/internal/bv"
)

// FuncBuilder constructs Functions with SSA bookkeeping.
type FuncBuilder struct {
	f   *Function
	cur *Block
}

// NewFunc starts building a function.
func NewFunc(name string) *FuncBuilder {
	f := &Function{Name: name, types: map[Value]Type{}}
	fb := &FuncBuilder{f: f}
	fb.cur = fb.NewBlock()
	return fb
}

// Param adds a function parameter.
func (fb *FuncBuilder) Param(ty Type) Value {
	v := fb.newValue(ty)
	fb.f.Params = append(fb.f.Params, Param{Val: v, Ty: ty})
	return v
}

// NewBlock appends a new basic block (does not switch to it).
func (fb *FuncBuilder) NewBlock() *Block {
	b := &Block{ID: len(fb.f.Blocks)}
	fb.f.Blocks = append(fb.f.Blocks, b)
	return b
}

// SetBlock switches the insertion point.
func (fb *FuncBuilder) SetBlock(b *Block) { fb.cur = b }

// Block returns the current insertion block.
func (fb *FuncBuilder) Block() *Block { return fb.cur }

// Finish verifies and returns the function.
func (fb *FuncBuilder) Finish() (*Function, error) {
	if err := Verify(fb.f); err != nil {
		return nil, err
	}
	return fb.f, nil
}

// MustFinish is Finish that panics on a verifier error (for tests and
// statically-known-correct builders).
func (fb *FuncBuilder) MustFinish() *Function {
	f, err := fb.Finish()
	if err != nil {
		panic(err)
	}
	return f
}

func (fb *FuncBuilder) newValue(ty Type) Value {
	v := Value(fb.f.NumValues)
	fb.f.NumValues++
	fb.f.types[v] = ty
	return v
}

func (fb *FuncBuilder) emit(in *Inst) Value {
	fb.cur.Insts = append(fb.cur.Insts, in)
	return in.Dst
}

func (fb *FuncBuilder) tyOf(v Value) Type {
	ty, ok := fb.f.types[v]
	if !ok {
		panic(fmt.Sprintf("gmir: unknown value %%%d", v))
	}
	return ty
}

func (fb *FuncBuilder) binary(op Opcode, x, y Value) Value {
	tx, ty := fb.tyOf(x), fb.tyOf(y)
	if tx != ty {
		panic(fmt.Sprintf("gmir: %v operand types %v vs %v", op, tx, ty))
	}
	dst := fb.newValue(tx)
	fb.emit(&Inst{Op: op, Ty: tx, Dst: dst, Args: []Value{x, y}})
	return dst
}

// Const materializes a constant.
func (fb *FuncBuilder) Const(ty Type, v uint64) Value {
	return fb.ConstBV(bv.New(ty.Bits, v))
}

// ConstInt materializes a signed constant.
func (fb *FuncBuilder) ConstInt(ty Type, v int64) Value {
	return fb.ConstBV(bv.NewInt(ty.Bits, v))
}

// ConstBV materializes a constant from a bitvector value.
func (fb *FuncBuilder) ConstBV(v bv.BV) Value {
	dst := fb.newValue(Type{v.W()})
	fb.emit(&Inst{Op: GConstant, Ty: Type{v.W()}, Dst: dst, Imm: v})
	return dst
}

// Binary operations.
func (fb *FuncBuilder) Add(x, y Value) Value  { return fb.binary(GAdd, x, y) }
func (fb *FuncBuilder) Sub(x, y Value) Value  { return fb.binary(GSub, x, y) }
func (fb *FuncBuilder) Mul(x, y Value) Value  { return fb.binary(GMul, x, y) }
func (fb *FuncBuilder) UDiv(x, y Value) Value { return fb.binary(GUDiv, x, y) }
func (fb *FuncBuilder) SDiv(x, y Value) Value { return fb.binary(GSDiv, x, y) }
func (fb *FuncBuilder) URem(x, y Value) Value { return fb.binary(GURem, x, y) }
func (fb *FuncBuilder) SRem(x, y Value) Value { return fb.binary(GSRem, x, y) }
func (fb *FuncBuilder) And(x, y Value) Value  { return fb.binary(GAnd, x, y) }
func (fb *FuncBuilder) Or(x, y Value) Value   { return fb.binary(GOr, x, y) }
func (fb *FuncBuilder) Xor(x, y Value) Value  { return fb.binary(GXor, x, y) }
func (fb *FuncBuilder) Shl(x, y Value) Value  { return fb.binary(GShl, x, y) }
func (fb *FuncBuilder) LShr(x, y Value) Value { return fb.binary(GLShr, x, y) }
func (fb *FuncBuilder) AShr(x, y Value) Value { return fb.binary(GAShr, x, y) }
func (fb *FuncBuilder) SMin(x, y Value) Value { return fb.binary(GSMin, x, y) }
func (fb *FuncBuilder) SMax(x, y Value) Value { return fb.binary(GSMax, x, y) }
func (fb *FuncBuilder) UMin(x, y Value) Value { return fb.binary(GUMin, x, y) }
func (fb *FuncBuilder) UMax(x, y Value) Value { return fb.binary(GUMax, x, y) }

// PtrAdd offsets a pointer by an s64 index.
func (fb *FuncBuilder) PtrAdd(p, off Value) Value { return fb.binary(GPtrAdd, p, off) }

// ICmp compares two values, yielding s1.
func (fb *FuncBuilder) ICmp(pred Pred, x, y Value) Value {
	if fb.tyOf(x) != fb.tyOf(y) {
		panic("gmir: icmp operand types differ")
	}
	dst := fb.newValue(S1)
	fb.emit(&Inst{Op: GICmp, Ty: S1, Dst: dst, Pred: pred, Args: []Value{x, y}})
	return dst
}

// Select chooses between two values by an s1 condition.
func (fb *FuncBuilder) Select(c, x, y Value) Value {
	if fb.tyOf(c) != S1 {
		panic("gmir: select condition must be s1")
	}
	if fb.tyOf(x) != fb.tyOf(y) {
		panic("gmir: select arm types differ")
	}
	dst := fb.newValue(fb.tyOf(x))
	fb.emit(&Inst{Op: GSelect, Ty: fb.tyOf(x), Dst: dst, Args: []Value{c, x, y}})
	return dst
}

func (fb *FuncBuilder) ext(op Opcode, ty Type, x Value) Value {
	from := fb.tyOf(x)
	if (op == GTrunc && ty.Bits >= from.Bits) || (op != GTrunc && ty.Bits <= from.Bits) {
		panic(fmt.Sprintf("gmir: invalid %v %v -> %v", op, from, ty))
	}
	dst := fb.newValue(ty)
	fb.emit(&Inst{Op: op, Ty: ty, Dst: dst, Args: []Value{x}})
	return dst
}

// ZExt zero-extends.
func (fb *FuncBuilder) ZExt(ty Type, x Value) Value { return fb.ext(GZExt, ty, x) }

// SExt sign-extends.
func (fb *FuncBuilder) SExt(ty Type, x Value) Value { return fb.ext(GSExt, ty, x) }

// Trunc truncates.
func (fb *FuncBuilder) Trunc(ty Type, x Value) Value { return fb.ext(GTrunc, ty, x) }

func (fb *FuncBuilder) unary(op Opcode, x Value) Value {
	dst := fb.newValue(fb.tyOf(x))
	fb.emit(&Inst{Op: op, Ty: fb.tyOf(x), Dst: dst, Args: []Value{x}})
	return dst
}

// Bit-manipulation unaries.
func (fb *FuncBuilder) Ctpop(x Value) Value { return fb.unary(GCtpop, x) }
func (fb *FuncBuilder) Ctlz(x Value) Value  { return fb.unary(GCtlz, x) }
func (fb *FuncBuilder) Cttz(x Value) Value  { return fb.unary(GCttz, x) }
func (fb *FuncBuilder) BSwap(x Value) Value { return fb.unary(GBSwap, x) }
func (fb *FuncBuilder) Abs(x Value) Value   { return fb.unary(GAbs, x) }

// Load loads memBits from p, zero-extending into ty.
func (fb *FuncBuilder) Load(ty Type, p Value, memBits int) Value {
	return fb.load(GLoad, ty, p, memBits)
}

// SLoad loads memBits from p, sign-extending into ty.
func (fb *FuncBuilder) SLoad(ty Type, p Value, memBits int) Value {
	return fb.load(GSLoad, ty, p, memBits)
}

func (fb *FuncBuilder) load(op Opcode, ty Type, p Value, memBits int) Value {
	if fb.tyOf(p) != P0 {
		panic("gmir: load address must be a pointer")
	}
	if memBits > ty.Bits {
		panic("gmir: load size exceeds result type")
	}
	dst := fb.newValue(ty)
	fb.emit(&Inst{Op: op, Ty: ty, Dst: dst, Args: []Value{p}, MemBits: memBits})
	return dst
}

// Store stores the low memBits of v to p.
func (fb *FuncBuilder) Store(v, p Value, memBits int) {
	if fb.tyOf(p) != P0 {
		panic("gmir: store address must be a pointer")
	}
	if memBits > fb.tyOf(v).Bits {
		panic("gmir: store size exceeds value type")
	}
	fb.emit(&Inst{Op: GStore, Dst: -1, Args: []Value{v, p}, MemBits: memBits})
}

// Br branches unconditionally.
func (fb *FuncBuilder) Br(target *Block) {
	fb.emit(&Inst{Op: GBr, Dst: -1, Succs: []int{target.ID}})
}

// BrCond branches to taken when c is nonzero, else to fallthrough.
func (fb *FuncBuilder) BrCond(c Value, taken, fallthrough_ *Block) {
	if fb.tyOf(c) != S1 {
		panic("gmir: brcond condition must be s1")
	}
	fb.emit(&Inst{Op: GBrCond, Dst: -1, Args: []Value{c}, Succs: []int{taken.ID, fallthrough_.ID}})
}

// Phi creates a phi node; incoming pairs are (value, predecessor block).
func (fb *FuncBuilder) Phi(ty Type, incoming ...any) Value {
	if len(incoming)%2 != 0 {
		panic("gmir: phi needs (value, block) pairs")
	}
	in := &Inst{Op: GPhi, Ty: ty, Dst: fb.newValue(ty)}
	for i := 0; i < len(incoming); i += 2 {
		in.Args = append(in.Args, incoming[i].(Value))
		in.PhiBlocks = append(in.PhiBlocks, incoming[i+1].(*Block).ID)
	}
	fb.emit(in)
	return in.Dst
}

// AddPhiIncoming appends an incoming edge to an existing phi.
func (fb *FuncBuilder) AddPhiIncoming(phi Value, v Value, from *Block) {
	for _, b := range fb.f.Blocks {
		for _, in := range b.Insts {
			if in.Op == GPhi && in.Dst == phi {
				in.Args = append(in.Args, v)
				in.PhiBlocks = append(in.PhiBlocks, from.ID)
				return
			}
		}
	}
	panic("gmir: phi not found")
}

// Ret returns a value (or nothing with v < 0).
func (fb *FuncBuilder) Ret(v Value) {
	in := &Inst{Op: GRet, Dst: -1}
	if v >= 0 {
		in.Args = []Value{v}
		fb.f.RetTy = fb.tyOf(v)
	}
	fb.emit(in)
}
