package gmir

import (
	"fmt"

	"iselgen/internal/term"
)

// InstTerm builds the bitvector-term semantics of one selectable gMIR
// instruction from already-built argument terms — the manually defined
// symbolic specification of the IR (paper §IV-B). Loads produce term.Load
// wrapped in the appropriate extension; stores produce a term.Store root.
func InstTerm(b *term.Builder, in *Inst, args []*term.Term) (*term.Term, error) {
	w := in.Ty.Bits
	switch in.Op {
	case GConstant:
		return b.ConstBV(in.Imm), nil
	case GAdd:
		return b.Add(args[0], args[1]), nil
	case GSub:
		return b.Sub(args[0], args[1]), nil
	case GMul:
		return b.Mul(args[0], args[1]), nil
	case GUDiv:
		return b.UDiv(args[0], args[1]), nil
	case GSDiv:
		return b.SDiv(args[0], args[1]), nil
	case GURem:
		return b.URem(args[0], args[1]), nil
	case GSRem:
		return b.SRem(args[0], args[1]), nil
	case GAnd:
		return b.And(args[0], args[1]), nil
	case GOr:
		return b.Or(args[0], args[1]), nil
	case GXor:
		return b.Xor(args[0], args[1]), nil
	case GShl:
		return b.Shl(args[0], modAmt(b, args[1], w)), nil
	case GLShr:
		return b.LShr(args[0], modAmt(b, args[1], w)), nil
	case GAShr:
		return b.AShr(args[0], modAmt(b, args[1], w)), nil
	case GICmp:
		return predTerm(b, in.Pred, args[0], args[1]), nil
	case GSelect:
		return b.Ite(b.Bool(args[0]), args[1], args[2]), nil
	case GZExt:
		return b.ZExt(w, args[0]), nil
	case GSExt:
		return b.SExt(w, args[0]), nil
	case GTrunc:
		return b.Trunc(w, args[0]), nil
	case GCtpop:
		return b.Popcount(args[0]), nil
	case GCtlz:
		return b.Clz(args[0]), nil
	case GCttz:
		return b.Ctz(args[0]), nil
	case GBSwap:
		return b.Rev(args[0]), nil
	case GAbs:
		neg := b.Slt(args[0], b.Const(args[0].W(), 0))
		return b.Ite(neg, b.Neg(args[0]), args[0]), nil
	case GSMin:
		return b.Ite(b.Slt(args[0], args[1]), args[0], args[1]), nil
	case GSMax:
		return b.Ite(b.Slt(args[1], args[0]), args[0], args[1]), nil
	case GUMin:
		return b.Ite(b.Ult(args[0], args[1]), args[0], args[1]), nil
	case GUMax:
		return b.Ite(b.Ult(args[1], args[0]), args[0], args[1]), nil
	case GPtrAdd:
		return b.Add(args[0], args[1]), nil
	case GLoad:
		return b.ZExt(w, b.Load(in.MemBits, args[0])), nil
	case GSLoad:
		return b.SExt(w, b.Load(in.MemBits, args[0])), nil
	case GStore:
		return b.Store(args[1], b.Trunc(in.MemBits, args[0])), nil
	case GCopy:
		return args[0], nil
	}
	return nil, fmt.Errorf("gmir: no term semantics for %v", in.Op)
}

// modAmt reduces a shift distance modulo the width (see interp.go's
// shiftAmt for the rationale).
func modAmt(b *term.Builder, d *term.Term, width int) *term.Term {
	return b.URem(d, b.Const(d.W(), uint64(width)))
}

// predTerm builds the 1-bit comparison term for a predicate.
func predTerm(b *term.Builder, p Pred, x, y *term.Term) *term.Term {
	switch p {
	case PredEQ:
		return b.Eq(x, y)
	case PredNE:
		return b.Ne(x, y)
	case PredULT:
		return b.Ult(x, y)
	case PredULE:
		return b.Ule(x, y)
	case PredUGT:
		return b.Ugt(x, y)
	case PredUGE:
		return b.Ule(y, x)
	case PredSLT:
		return b.Slt(x, y)
	case PredSLE:
		return b.Sle(x, y)
	case PredSGT:
		return b.Sgt(x, y)
	default:
		return b.Sle(y, x)
	}
}
