package gmir

import (
	"fmt"

	"iselgen/internal/bv"
)

// Memory is a sparse little-endian byte-addressed memory.
type Memory struct {
	bytes map[uint64]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{bytes: map[uint64]byte{}} }

// Load reads `bits` (a multiple of 8) from addr.
func (m *Memory) Load(addr uint64, bits int) bv.BV {
	var lo, hi uint64
	for i := 0; i < bits/8; i++ {
		b := uint64(m.bytes[addr+uint64(i)])
		if i < 8 {
			lo |= b << (8 * i)
		} else {
			hi |= b << (8 * (i - 8))
		}
	}
	return bv.New128(bits, hi, lo)
}

// Snapshot returns a copy of the current memory contents, omitting
// zero-valued bytes so that "never written" and "written zero" compare
// equal — the observational equivalence the differential oracles need.
func (m *Memory) Snapshot() map[uint64]byte {
	out := make(map[uint64]byte, len(m.bytes))
	for a, b := range m.bytes {
		if b != 0 {
			out[a] = b
		}
	}
	return out
}

// Store writes the low `bits` of v to addr.
func (m *Memory) Store(addr uint64, v bv.BV, bits int) {
	for i := 0; i < bits/8; i++ {
		var b byte
		if i < 8 {
			b = byte(v.Lo >> (8 * i))
		} else {
			b = byte(v.Hi >> (8 * (i - 8)))
		}
		m.bytes[addr+uint64(i)] = b
	}
}

// Interp executes gMIR functions directly — the reference semantics used
// to validate every backend's generated code end-to-end.
type Interp struct {
	Mem *Memory
	// MaxSteps bounds execution (0 = default 100M instructions).
	MaxSteps int64
	Steps    int64
}

// Run executes f with the given arguments and returns its result value.
func (ip *Interp) Run(f *Function, args ...bv.BV) (bv.BV, error) {
	if ip.Mem == nil {
		ip.Mem = NewMemory()
	}
	maxSteps := ip.MaxSteps
	if maxSteps == 0 {
		maxSteps = 100_000_000
	}
	if len(args) != len(f.Params) {
		return bv.BV{}, fmt.Errorf("gmir: %s takes %d args, got %d", f.Name, len(f.Params), len(args))
	}
	vals := make([]bv.BV, f.NumValues)
	for i, p := range f.Params {
		if args[i].W() != p.Ty.Bits {
			return bv.BV{}, fmt.Errorf("gmir: arg %d width %d, want %d", i, args[i].W(), p.Ty.Bits)
		}
		vals[p.Val] = args[i]
	}
	cur := f.Blocks[0]
	prevID := -1
	for {
		// Phis evaluate in parallel from the edge's values.
		var phiVals []bv.BV
		var phiDsts []Value
		for _, in := range cur.Insts {
			if in.Op != GPhi {
				break
			}
			found := false
			for i, from := range in.PhiBlocks {
				if from == prevID {
					phiVals = append(phiVals, vals[in.Args[i]])
					phiDsts = append(phiDsts, in.Dst)
					found = true
					break
				}
			}
			if !found {
				return bv.BV{}, fmt.Errorf("gmir: %s: phi in bb%d has no edge from bb%d",
					f.Name, cur.ID, prevID)
			}
		}
		for i, d := range phiDsts {
			vals[d] = phiVals[i]
		}

		for _, in := range cur.Insts {
			if in.Op == GPhi {
				continue
			}
			if ip.Steps++; ip.Steps > maxSteps {
				return bv.BV{}, fmt.Errorf("gmir: %s: step limit exceeded", f.Name)
			}
			switch in.Op {
			case GBr:
				prevID = cur.ID
				cur = f.BlockByID(in.Succs[0])
				goto nextBlock
			case GBrCond:
				prevID = cur.ID
				if vals[in.Args[0]].Bool() {
					cur = f.BlockByID(in.Succs[0])
				} else {
					cur = f.BlockByID(in.Succs[1])
				}
				goto nextBlock
			case GRet:
				if len(in.Args) == 1 {
					return vals[in.Args[0]], nil
				}
				return bv.BV{}, nil
			default:
				v, err := evalInst(in, vals, ip.Mem)
				if err != nil {
					return bv.BV{}, fmt.Errorf("gmir: %s: %s: %w", f.Name, in, err)
				}
				if in.Dst >= 0 {
					vals[in.Dst] = v
				}
			}
		}
		return bv.BV{}, fmt.Errorf("gmir: %s: bb%d fell through", f.Name, cur.ID)
	nextBlock:
	}
}

// evalInst evaluates one non-control instruction.
func evalInst(in *Inst, vals []bv.BV, mem *Memory) (bv.BV, error) {
	a := func(i int) bv.BV { return vals[in.Args[i]] }
	switch in.Op {
	case GConstant:
		return in.Imm, nil
	case GAdd:
		return a(0).Add(a(1)), nil
	case GSub:
		return a(0).Sub(a(1)), nil
	case GMul:
		return a(0).Mul(a(1)), nil
	case GUDiv:
		return a(0).UDiv(a(1)), nil
	case GSDiv:
		return a(0).SDiv(a(1)), nil
	case GURem:
		return a(0).URem(a(1)), nil
	case GSRem:
		return a(0).SRem(a(1)), nil
	case GAnd:
		return a(0).And(a(1)), nil
	case GOr:
		return a(0).Or(a(1)), nil
	case GXor:
		return a(0).Xor(a(1)), nil
	case GShl:
		return a(0).Shl(shiftAmt(a(1), in.Ty.Bits)), nil
	case GLShr:
		return a(0).LShr(shiftAmt(a(1), in.Ty.Bits)), nil
	case GAShr:
		return a(0).AShr(shiftAmt(a(1), in.Ty.Bits)), nil
	case GICmp:
		return bv.NewBool(evalPred(in.Pred, a(0), a(1))), nil
	case GSelect:
		if a(0).Bool() {
			return a(1), nil
		}
		return a(2), nil
	case GZExt:
		return a(0).ZExt(in.Ty.Bits), nil
	case GSExt:
		return a(0).SExt(in.Ty.Bits), nil
	case GTrunc:
		return a(0).Trunc(in.Ty.Bits), nil
	case GCtpop:
		return a(0).Popcount(), nil
	case GCtlz:
		return a(0).Clz(), nil
	case GCttz:
		return a(0).Ctz(), nil
	case GBSwap:
		return a(0).Rev(), nil
	case GAbs:
		if a(0).SignBit() == 1 {
			return a(0).Neg(), nil
		}
		return a(0), nil
	case GSMin:
		if a(0).Slt(a(1)) {
			return a(0), nil
		}
		return a(1), nil
	case GSMax:
		if a(1).Slt(a(0)) {
			return a(0), nil
		}
		return a(1), nil
	case GUMin:
		if a(0).Ult(a(1)) {
			return a(0), nil
		}
		return a(1), nil
	case GUMax:
		if a(1).Ult(a(0)) {
			return a(0), nil
		}
		return a(1), nil
	case GPtrAdd:
		return a(0).Add(a(1)), nil
	case GLoad:
		return mem.Load(a(0).Uint64(), in.MemBits).ZExt(in.Ty.Bits), nil
	case GSLoad:
		return mem.Load(a(0).Uint64(), in.MemBits).SExt(in.Ty.Bits), nil
	case GStore:
		mem.Store(a(1).Uint64(), a(0).Trunc(in.MemBits), in.MemBits)
		return bv.BV{}, nil
	case GCopy:
		return a(0), nil
	}
	return bv.BV{}, fmt.Errorf("unimplemented opcode %v", in.Op)
}

// shiftAmt reduces a shift distance modulo the value width: gMIR shifts
// have the hardware's modulo semantics (out-of-range shifts are undefined
// in LLVM IR, and the paper's strict-equivalence matching requires the IR
// specification to pick the semantics the ISA implements — §V-D2).
func shiftAmt(d bv.BV, width int) bv.BV {
	return d.URem(bv.New(d.W(), uint64(width)))
}

// evalPred evaluates a comparison predicate.
func evalPred(p Pred, x, y bv.BV) bool {
	switch p {
	case PredEQ:
		return x.Eq(y)
	case PredNE:
		return !x.Eq(y)
	case PredULT:
		return x.Ult(y)
	case PredULE:
		return x.Ule(y)
	case PredUGT:
		return y.Ult(x)
	case PredUGE:
		return y.Ule(x)
	case PredSLT:
		return x.Slt(y)
	case PredSLE:
		return x.Sle(y)
	case PredSGT:
		return y.Slt(x)
	default:
		return y.Sle(x)
	}
}
