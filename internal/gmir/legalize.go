package gmir

import (
	"fmt"

	"iselgen/internal/bv"
)

// bvNewMask returns width-1 as a wide constant (shift-amount mask).
func bvNewMask(wide, width int) bv.BV { return bv.New(wide, uint64(width-1)) }

// Legalize widens narrow scalar arithmetic (1 < width < minWidth) to
// minWidth, the way a GlobalISel legalizer rewrites illegal types into
// target-legal equivalents (paper §II-B: "8-bit arithmetic on AArch64 is
// rewritten by inserting extension and truncation instructions").
//
// The rewrite is instruction-local: operands are extended (signedness
// chosen per opcode), the operation runs at minWidth, and the result is
// truncated back, so surrounding types are unchanged. s1 (comparison
// results, select conditions) is always legal.
func Legalize(f *Function, minWidth int) error {
	alloc := func(ty Type) Value {
		v := Value(f.NumValues)
		f.NumValues++
		f.types[v] = ty
		return v
	}
	wide := Type{minWidth}
	for _, b := range f.Blocks {
		var out []*Inst
		for _, in := range b.Insts {
			narrow := in.Ty.Bits > 1 && in.Ty.Bits < minWidth
			if !narrow || !needsLegalization(in.Op) {
				// Comparisons over narrow operands also need widening even
				// though their result (s1) is legal.
				if in.Op == GICmp && f.types[in.Args[0]].Bits > 1 && f.types[in.Args[0]].Bits < minWidth {
					ext := extKindCmp(in.Pred)
					a0 := alloc(wide)
					a1 := alloc(wide)
					out = append(out,
						&Inst{Op: ext, Ty: wide, Dst: a0, Args: []Value{in.Args[0]}},
						&Inst{Op: ext, Ty: wide, Dst: a1, Args: []Value{in.Args[1]}},
						&Inst{Op: GICmp, Ty: S1, Dst: in.Dst, Pred: in.Pred, Args: []Value{a0, a1}})
					continue
				}
				out = append(out, in)
				continue
			}
			switch in.Op {
			case GConstant:
				// Narrow constants widen and truncate back.
				wideDst := alloc(wide)
				out = append(out,
					&Inst{Op: GConstant, Ty: wide, Dst: wideDst, Imm: in.Imm.ZExt(minWidth)},
					&Inst{Op: GTrunc, Ty: in.Ty, Dst: in.Dst, Args: []Value{wideDst}})
			case GLoad, GSLoad:
				wideDst := alloc(wide)
				out = append(out,
					&Inst{Op: in.Op, Ty: wide, Dst: wideDst, Args: in.Args, MemBits: in.MemBits},
					&Inst{Op: GTrunc, Ty: in.Ty, Dst: in.Dst, Args: []Value{wideDst}})
			case GSelect:
				a1 := alloc(wide)
				a2 := alloc(wide)
				wideDst := alloc(wide)
				out = append(out,
					&Inst{Op: GZExt, Ty: wide, Dst: a1, Args: []Value{in.Args[1]}},
					&Inst{Op: GZExt, Ty: wide, Dst: a2, Args: []Value{in.Args[2]}},
					&Inst{Op: GSelect, Ty: wide, Dst: wideDst, Args: []Value{in.Args[0], a1, a2}},
					&Inst{Op: GTrunc, Ty: in.Ty, Dst: in.Dst, Args: []Value{wideDst}})
			default:
				ext := extKind(in.Op)
				isShift := in.Op == GShl || in.Op == GLShr || in.Op == GAShr
				var wargs []Value
				for ai, a := range in.Args {
					wa := alloc(wide)
					out = append(out, &Inst{Op: ext, Ty: wide, Dst: wa, Args: []Value{a}})
					if isShift && ai == 1 {
						// Shift amounts are modulo the ORIGINAL width;
						// re-impose it with a mask (narrow widths are
						// powers of two).
						mask := alloc(wide)
						masked := alloc(wide)
						out = append(out,
							&Inst{Op: GConstant, Ty: wide, Dst: mask, Imm: bvNewMask(minWidth, in.Ty.Bits)},
							&Inst{Op: GAnd, Ty: wide, Dst: masked, Args: []Value{wa, mask}})
						wa = masked
					}
					wargs = append(wargs, wa)
				}
				wideDst := alloc(wide)
				out = append(out,
					&Inst{Op: in.Op, Ty: wide, Dst: wideDst, Pred: in.Pred, Args: wargs},
					&Inst{Op: GTrunc, Ty: in.Ty, Dst: in.Dst, Args: []Value{wideDst}})
			}
		}
		b.Insts = out
	}
	if err := Verify(f); err != nil {
		return fmt.Errorf("gmir: legalization broke %s: %w", f.Name, err)
	}
	return nil
}

func needsLegalization(op Opcode) bool {
	switch op {
	case GAdd, GSub, GMul, GUDiv, GSDiv, GURem, GSRem, GAnd, GOr, GXor,
		GShl, GLShr, GAShr, GSelect, GConstant, GCtpop, GAbs,
		GSMin, GSMax, GUMin, GUMax, GLoad, GSLoad:
		// GBSwap/GCtlz/GCttz are deliberately absent: widening with a
		// plain extension changes their semantics.
		return true
	}
	return false
}

// extKind picks the operand extension preserving the op's semantics.
func extKind(op Opcode) Opcode {
	switch op {
	case GSDiv, GSRem, GAShr, GAbs, GSMin, GSMax:
		return GSExt
	}
	return GZExt
}

func extKindCmp(p Pred) Opcode {
	switch p {
	case PredSLT, PredSLE, PredSGT, PredSGE:
		return GSExt
	}
	return GZExt
}

// SplitCriticalEdges breaks edges from multi-successor blocks into
// multi-predecessor blocks by inserting empty forwarding blocks, so that
// phi copies can always be placed at the end of the predecessor during
// instruction selection.
func SplitCriticalEdges(f *Function) {
	preds := map[int]int{}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			for _, s := range in.Succs {
				preds[s]++
			}
		}
	}
	var added []*Block
	nextID := 0
	for _, b := range f.Blocks {
		if b.ID >= nextID {
			nextID = b.ID + 1
		}
	}
	for _, b := range f.Blocks {
		term := b.Insts[len(b.Insts)-1]
		if len(term.Succs) < 2 {
			continue
		}
		for i, s := range term.Succs {
			if preds[s] < 2 {
				continue
			}
			// Insert a forwarding block on this edge.
			nb := &Block{ID: nextID}
			nextID++
			nb.Insts = append(nb.Insts, &Inst{Op: GBr, Dst: -1, Succs: []int{s}})
			term.Succs[i] = nb.ID
			// Retarget phi incoming edges in s.
			target := f.BlockByID(s)
			for _, in := range target.Insts {
				if in.Op != GPhi {
					break
				}
				for k, from := range in.PhiBlocks {
					if from == b.ID {
						in.PhiBlocks[k] = nb.ID
					}
				}
			}
			added = append(added, nb)
		}
	}
	f.Blocks = append(f.Blocks, added...)
}

// LowerRem rewrites G_UREM/G_SREM into div-mul-sub for targets without a
// remainder instruction (AArch64). The expansion matches the SMT-LIB
// division-by-zero semantics exactly: for b = 0 the quotient's q·b term
// vanishes and the remainder is the dividend.
func LowerRem(f *Function) {
	alloc := func(ty Type) Value {
		v := Value(f.NumValues)
		f.NumValues++
		f.types[v] = ty
		return v
	}
	for _, b := range f.Blocks {
		var out []*Inst
		for _, in := range b.Insts {
			if in.Op != GURem && in.Op != GSRem {
				out = append(out, in)
				continue
			}
			divOp := GUDiv
			if in.Op == GSRem {
				divOp = GSDiv
			}
			q := alloc(in.Ty)
			m := alloc(in.Ty)
			out = append(out,
				&Inst{Op: divOp, Ty: in.Ty, Dst: q, Args: []Value{in.Args[0], in.Args[1]}},
				&Inst{Op: GMul, Ty: in.Ty, Dst: m, Args: []Value{q, in.Args[1]}},
				&Inst{Op: GSub, Ty: in.Ty, Dst: in.Dst, Args: []Value{in.Args[0], m}})
		}
		b.Insts = out
	}
}

// CSEConstants deduplicates G_CONSTANT instructions function-wide,
// hoisting one instance per distinct value into the entry block (after
// any leading phis — the entry has none in practice). This mirrors the
// constant CSE the LLVM middle end performs before selection.
func CSEConstants(f *Function) {
	type key struct {
		lo, hi uint64
		w      uint8
	}
	canon := map[key]Value{}
	remap := map[Value]Value{}
	var hoisted []*Inst
	for _, b := range f.Blocks {
		kept := b.Insts[:0]
		for _, in := range b.Insts {
			if in.Op == GConstant {
				k := key{in.Imm.Lo, in.Imm.Hi, in.Imm.Width}
				if first, ok := canon[k]; ok {
					remap[in.Dst] = first
					continue
				}
				canon[k] = in.Dst
				hoisted = append(hoisted, in)
				continue
			}
			kept = append(kept, in)
		}
		b.Insts = kept
	}
	entry := f.Blocks[0]
	entry.Insts = append(append([]*Inst(nil), hoisted...), entry.Insts...)
	if len(remap) == 0 {
		return
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			for i, a := range in.Args {
				if r, ok := remap[a]; ok {
					in.Args[i] = r
				}
			}
		}
	}
}

// LowerAbs expands G_ABS into the shift-xor-subtract idiom for targets
// without an ABS-capable instruction (RISC-V base):
// abs(x) = (x ^ (x >>s w-1)) - (x >>s w-1).
func LowerAbs(f *Function) {
	alloc := func(ty Type) Value {
		v := Value(f.NumValues)
		f.NumValues++
		f.types[v] = ty
		return v
	}
	for _, b := range f.Blocks {
		var out []*Inst
		for _, in := range b.Insts {
			if in.Op != GAbs {
				out = append(out, in)
				continue
			}
			w := in.Ty.Bits
			sh := alloc(in.Ty)
			sign := alloc(in.Ty)
			x := alloc(in.Ty)
			out = append(out,
				&Inst{Op: GConstant, Ty: in.Ty, Dst: sh, Imm: bv.New(w, uint64(w-1))},
				&Inst{Op: GAShr, Ty: in.Ty, Dst: sign, Args: []Value{in.Args[0], sh}},
				&Inst{Op: GXor, Ty: in.Ty, Dst: x, Args: []Value{in.Args[0], sign}},
				&Inst{Op: GSub, Ty: in.Ty, Dst: in.Dst, Args: []Value{x, sign}})
		}
		b.Insts = out
	}
}

// InvertPred returns the logical negation of a predicate.
func InvertPred(p Pred) Pred {
	switch p {
	case PredEQ:
		return PredNE
	case PredNE:
		return PredEQ
	case PredULT:
		return PredUGE
	case PredULE:
		return PredUGT
	case PredUGT:
		return PredULE
	case PredUGE:
		return PredULT
	case PredSLT:
		return PredSGE
	case PredSLE:
		return PredSGT
	case PredSGT:
		return PredSLE
	default:
		return PredSLT
	}
}
