package gmir

import (
	"strings"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/term"
)

// buildShiftAdd builds the paper's Fig. 2 example: f(a, b) = a + (b << 4).
func buildShiftAdd(t *testing.T) *Function {
	t.Helper()
	fb := NewFunc("shift_add")
	a := fb.Param(S64)
	b := fb.Param(S64)
	c := fb.Const(S64, 4)
	sh := fb.Shl(b, c)
	sum := fb.Add(a, sh)
	fb.Ret(sum)
	return fb.MustFinish()
}

func TestBuildAndPrint(t *testing.T) {
	f := buildShiftAdd(t)
	s := f.String()
	for _, want := range []string{"G_CONSTANT", "G_SHL", "G_ADD", "G_RET"} {
		if !strings.Contains(s, want) {
			t.Errorf("printout missing %s:\n%s", want, s)
		}
	}
	if f.NumInsts() != 4 {
		t.Errorf("insts = %d", f.NumInsts())
	}
}

func TestInterpStraightLine(t *testing.T) {
	f := buildShiftAdd(t)
	ip := &Interp{}
	got, err := ip.Run(f, bv.New(64, 100), bv.New(64, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Lo != 100+3<<4 {
		t.Errorf("result = %d", got.Lo)
	}
}

// buildSumLoop: sum of i for i in [0, n) — loop with phi.
func buildSumLoop(t *testing.T) *Function {
	t.Helper()
	fb := NewFunc("sum_loop")
	n := fb.Param(S64)
	entry := fb.Block()
	loop := fb.NewBlock()
	exit := fb.NewBlock()

	zero := fb.Const(S64, 0)
	fb.Br(loop)

	fb.SetBlock(loop)
	i := fb.Phi(S64, zero, entry)
	acc := fb.Phi(S64, zero, entry)
	acc2 := fb.Add(acc, i)
	one := fb.Const(S64, 1)
	i2 := fb.Add(i, one)
	fb.AddPhiIncoming(i, i2, loop)
	fb.AddPhiIncoming(acc, acc2, loop)
	done := fb.ICmp(PredUGE, i2, n)
	fb.BrCond(done, exit, loop)

	fb.SetBlock(exit)
	fb.Ret(acc2)
	return fb.MustFinish()
}

func TestInterpLoopWithPhi(t *testing.T) {
	f := buildSumLoop(t)
	ip := &Interp{}
	got, err := ip.Run(f, bv.New(64, 10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Lo != 45 {
		t.Errorf("sum 0..9 = %d, want 45", got.Lo)
	}
}

func TestInterpMemory(t *testing.T) {
	fb := NewFunc("memtest")
	p := fb.Param(P0)
	v := fb.Load(S64, p, 64)
	two := fb.Const(S64, 2)
	dbl := fb.Mul(v, two)
	off := fb.Const(S64, 8)
	q := fb.PtrAdd(p, off)
	fb.Store(dbl, q, 64)
	r := fb.Load(S32, q, 16)
	fb.Ret(r)
	f := fb.MustFinish()

	ip := &Interp{Mem: NewMemory()}
	ip.Mem.Store(0x100, bv.New(64, 21), 64)
	got, err := ip.Run(f, bv.New(64, 0x100))
	if err != nil {
		t.Fatal(err)
	}
	if got.Lo != 42 {
		t.Errorf("result = %d", got.Lo)
	}
	if w := ip.Mem.Load(0x108, 64); w.Lo != 42 {
		t.Errorf("stored = %d", w.Lo)
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory()
	m.Store(0, bv.New(32, 0x12345678), 32)
	if got := m.Load(0, 8); got.Lo != 0x78 {
		t.Errorf("byte 0 = %#x", got.Lo)
	}
	if got := m.Load(3, 8); got.Lo != 0x12 {
		t.Errorf("byte 3 = %#x", got.Lo)
	}
	if got := m.Load(1, 16); got.Lo != 0x3456 {
		t.Errorf("mid halfword = %#x", got.Lo)
	}
	// 128-bit store/load roundtrip.
	w := bv.New128(128, 0xcafebabe, 0xdeadbeef)
	m.Store(0x40, w, 128)
	if got := m.Load(0x40, 128); got != w {
		t.Errorf("128-bit roundtrip = %v", got)
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	// Use of undefined value.
	f := &Function{Name: "bad", types: map[Value]Type{0: S64}, NumValues: 1}
	blk := &Block{ID: 0}
	blk.Insts = append(blk.Insts,
		&Inst{Op: GAdd, Ty: S64, Dst: 0, Args: []Value{5, 6}},
		&Inst{Op: GRet, Dst: -1})
	f.Blocks = []*Block{blk}
	if err := Verify(f); err == nil {
		t.Error("undefined use not caught")
	}
	// Terminator in the middle.
	f2 := &Function{Name: "bad2", types: map[Value]Type{}, NumValues: 0}
	b2 := &Block{ID: 0}
	b2.Insts = append(b2.Insts, &Inst{Op: GRet, Dst: -1}, &Inst{Op: GRet, Dst: -1})
	f2.Blocks = []*Block{b2}
	if err := Verify(f2); err == nil {
		t.Error("double terminator not caught")
	}
}

func TestInstTermSemanticsMatchInterp(t *testing.T) {
	// For each selectable opcode: term semantics and interpreter must
	// agree on random inputs.
	rng := bv.NewRNG(123)
	ops := []Opcode{GAdd, GSub, GMul, GUDiv, GSDiv, GURem, GSRem, GAnd,
		GOr, GXor, GShl, GLShr, GAShr, GCtpop, GCtlz, GCttz, GBSwap, GAbs,
		GSMin, GSMax, GUMin, GUMax}
	for _, op := range ops {
		in := &Inst{Op: op, Ty: S32, Dst: 2, Args: []Value{0, 1}}
		if op == GCtpop || op == GCtlz || op == GCttz || op == GBSwap || op == GAbs {
			in.Args = in.Args[:1]
		}
		tb := term.NewBuilder()
		var targs []*term.Term
		for i := range in.Args {
			targs = append(targs, tb.Reg([]string{"x", "y"}[i], 32))
		}
		tt, err := InstTerm(tb, in, targs)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		for trial := 0; trial < 30; trial++ {
			vals := make([]bv.BV, 3)
			vals[0], vals[1] = rng.BV(32), rng.BV(32)
			env := term.NewEnv()
			env.Bind("x", vals[0])
			env.Bind("y", vals[1])
			want, err := evalInst(in, vals, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := tt.Eval(env); got != want {
				t.Errorf("%v: term %v, interp %v (x=%v y=%v)", op, got, want, vals[0], vals[1])
				break
			}
		}
	}
	// All predicates.
	for p := PredEQ; p <= PredSGE; p++ {
		in := &Inst{Op: GICmp, Ty: S1, Dst: 2, Pred: p, Args: []Value{0, 1}}
		tb := term.NewBuilder()
		tt, err := InstTerm(tb, in, []*term.Term{tb.Reg("x", 32), tb.Reg("y", 32)})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			vals := make([]bv.BV, 3)
			vals[0], vals[1] = rng.BV(32), rng.BV(32)
			env := term.NewEnv()
			env.Bind("x", vals[0])
			env.Bind("y", vals[1])
			want, _ := evalInst(in, vals, nil)
			if got := tt.Eval(env); got != want {
				t.Errorf("icmp %v: term %v, interp %v", p, got, want)
				break
			}
		}
	}
}

func TestLegalizeWidensNarrowArithmetic(t *testing.T) {
	fb := NewFunc("narrow")
	x := fb.Param(S8)
	y := fb.Param(S8)
	sum := fb.Add(x, y)
	cmp := fb.ICmp(PredSLT, sum, x)
	sel := fb.Select(cmp, sum, y)
	fb.Ret(sel)
	f := fb.MustFinish()

	// Reference behaviour before legalization.
	ref := func(xv, yv bv.BV) bv.BV {
		ip := &Interp{}
		r, err := ip.Run(f, xv, yv)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	rng := bv.NewRNG(9)
	type io struct{ x, y, r bv.BV }
	var cases []io
	for i := 0; i < 50; i++ {
		xv, yv := rng.BV(8), rng.BV(8)
		cases = append(cases, io{xv, yv, ref(xv, yv)})
	}

	if err := Legalize(f, 32); err != nil {
		t.Fatal(err)
	}
	// No narrow arithmetic remains.
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if needsLegalization(in.Op) && in.Ty.Bits > 1 && in.Ty.Bits < 32 {
				t.Errorf("narrow %v survived legalization", in.Op)
			}
		}
	}
	// Semantics preserved.
	for _, c := range cases {
		ip := &Interp{}
		got, err := ip.Run(f, c.x, c.y)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.r {
			t.Errorf("legalized(%v,%v) = %v, want %v", c.x, c.y, got, c.r)
		}
	}
}

func TestLegalizeNarrowLoadsAndConstants(t *testing.T) {
	fb := NewFunc("narrowmem")
	p := fb.Param(P0)
	v := fb.Load(S16, p, 16)
	c := fb.Const(S16, 999)
	s := fb.Mul(v, c)
	fb.Store(s, p, 16)
	z := fb.ZExt(S64, s)
	fb.Ret(z)
	f := fb.MustFinish()

	run := func() bv.BV {
		ip := &Interp{Mem: NewMemory()}
		ip.Mem.Store(0x10, bv.New(16, 1234), 16)
		r, err := ip.Run(f, bv.New(64, 0x10))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	want := run()
	if err := Legalize(f, 32); err != nil {
		t.Fatal(err)
	}
	if got := run(); got != want {
		t.Errorf("legalized = %v, want %v", got, want)
	}
}
