// Package gmir implements the reproduction's analog of LLVM's Generic
// Machine IR (gMIR) — the typed, register-based representation that
// GlobalISel's instruction selector consumes (paper §II-B). It provides
// the instruction set, SSA functions over basic blocks, a builder, a
// verifier, a reference interpreter (the semantics oracle for end-to-end
// checks), and per-opcode bitvector term semantics (the manually defined
// symbolic specifications of §IV-B).
package gmir

import (
	"fmt"
	"strings"

	"iselgen/internal/bv"
)

// Type is a value type: sN for N-bit scalars. Pointers are s64.
type Type struct{ Bits int }

// Common types.
var (
	S1  = Type{1}
	S8  = Type{8}
	S16 = Type{16}
	S32 = Type{32}
	S64 = Type{64}
	P0  = Type{64} // pointer
)

func (t Type) String() string { return fmt.Sprintf("s%d", t.Bits) }

// Opcode is a gMIR operation.
type Opcode int

// gMIR opcodes (the integer subset the paper synthesizes for, plus the
// control-flow and pseudo ops every function needs).
const (
	OpInvalid Opcode = iota
	// Pure value operations (selectable).
	GConstant
	GAdd
	GSub
	GMul
	GUDiv
	GSDiv
	GURem
	GSRem
	GAnd
	GOr
	GXor
	GShl
	GLShr
	GAShr
	GICmp
	GSelect
	GZExt
	GSExt
	GTrunc
	GCtpop
	GCtlz
	GCttz
	GBSwap
	GAbs
	GSMin
	GSMax
	GUMin
	GUMax
	GPtrAdd
	GLoad  // MemBits-sized load, zero-extended to the result type
	GSLoad // sign-extending load
	GStore // MemBits-sized truncating store
	// Control flow and pseudo operations (not pattern roots).
	GBr
	GBrCond
	GPhi
	GCopy
	GRet
	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	GConstant: "G_CONSTANT", GAdd: "G_ADD", GSub: "G_SUB", GMul: "G_MUL",
	GUDiv: "G_UDIV", GSDiv: "G_SDIV", GURem: "G_UREM", GSRem: "G_SREM",
	GAnd: "G_AND", GOr: "G_OR", GXor: "G_XOR", GShl: "G_SHL",
	GLShr: "G_LSHR", GAShr: "G_ASHR", GICmp: "G_ICMP", GSelect: "G_SELECT",
	GZExt: "G_ZEXT", GSExt: "G_SEXT", GTrunc: "G_TRUNC",
	GCtpop: "G_CTPOP", GCtlz: "G_CTLZ", GCttz: "G_CTTZ", GBSwap: "G_BSWAP",
	GAbs: "G_ABS", GSMin: "G_SMIN", GSMax: "G_SMAX", GUMin: "G_UMIN",
	GUMax: "G_UMAX", GPtrAdd: "G_PTR_ADD", GLoad: "G_LOAD", GSLoad: "G_SEXTLOAD",
	GStore: "G_STORE", GBr: "G_BR", GBrCond: "G_BRCOND", GPhi: "G_PHI",
	GCopy: "COPY", GRet: "G_RET",
}

func (o Opcode) String() string {
	if o > 0 && int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsSelectable reports whether the opcode is a pure value operation that
// instruction selection rules can match.
func (o Opcode) IsSelectable() bool { return o >= GConstant && o <= GStore }

// Pred is an integer comparison predicate.
type Pred int

// Comparison predicates.
const (
	PredEQ Pred = iota
	PredNE
	PredULT
	PredULE
	PredUGT
	PredUGE
	PredSLT
	PredSLE
	PredSGT
	PredSGE
	numPreds
)

var predNames = [numPreds]string{"eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge"}

func (p Pred) String() string {
	if p >= 0 && int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("pred(%d)", int(p))
}

// Value is a virtual register number.
type Value int

// Inst is one gMIR instruction.
type Inst struct {
	Op      Opcode
	Ty      Type  // result type (meaningful when Dst is used)
	Dst     Value // -1 when no result
	Args    []Value
	Pred    Pred  // GICmp
	Imm     bv.BV // GConstant
	MemBits int   // GLoad/GSLoad/GStore access size
	// Succs are successor block IDs (GBr: 1 entry; GBrCond: taken,
	// fallthrough).
	Succs []int
	// PhiBlocks parallels Args for GPhi: the predecessor block each
	// incoming value arrives from.
	PhiBlocks []int
}

// Block is a basic block.
type Block struct {
	ID    int
	Insts []*Inst
}

// Param declares a function parameter.
type Param struct {
	Val Value
	Ty  Type
}

// Function is a gMIR function in SSA form.
type Function struct {
	Name      string
	Params    []Param
	Blocks    []*Block
	NumValues int
	// RetTy is the return type (zero Type when the function returns
	// nothing).
	RetTy Type
	// types records the result type of each value.
	types map[Value]Type
}

// TypeOf returns the type of a value.
func (f *Function) TypeOf(v Value) Type { return f.types[v] }

// Entry returns the entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// BlockByID returns the block with the given ID.
func (f *Function) BlockByID(id int) *Block {
	for _, b := range f.Blocks {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// NumInsts counts all instructions.
func (f *Function) NumInsts() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

// String renders the function in a gMIR-like textual form.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "function %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%%%d:%s", p.Val, p.Ty)
	}
	sb.WriteString(")\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "bb%d:\n", b.ID)
		for _, in := range b.Insts {
			sb.WriteString("  ")
			sb.WriteString(in.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func (in *Inst) String() string {
	var sb strings.Builder
	if in.Dst >= 0 {
		fmt.Fprintf(&sb, "%%%d:%s = ", in.Dst, in.Ty)
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case GConstant:
		fmt.Fprintf(&sb, " %s", in.Imm)
	case GICmp:
		fmt.Fprintf(&sb, " intpred(%s)", in.Pred)
	case GLoad, GSLoad, GStore:
		fmt.Fprintf(&sb, " (%d bits)", in.MemBits)
	}
	for _, a := range in.Args {
		fmt.Fprintf(&sb, " %%%d", a)
	}
	for _, s := range in.Succs {
		fmt.Fprintf(&sb, " bb%d", s)
	}
	return sb.String()
}
