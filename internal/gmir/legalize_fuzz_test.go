package gmir_test

import (
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/fuzz"
	"iselgen/internal/gmir"
)

// TestLegalizePreservesSemantics runs randomized programs through the
// interpreter before and after legalization at every minimum width the
// backends use: widening narrow arithmetic must be observationally
// invisible (return value, memory effects, and error behaviour).
func TestLegalizePreservesSemantics(t *testing.T) {
	cfg := fuzz.DefaultGenConfig()
	for _, minW := range []int{8, 16, 32, 64} {
		for iter := uint64(0); iter < 150; iter++ {
			seed := fuzz.SubSeed(uint64(100+minW), iter)
			p := fuzz.Gen(bv.NewRNG(seed), cfg)
			f1, err := p.Build()
			if err != nil {
				t.Fatalf("minW %d iter %d: build: %v", minW, iter, err)
			}
			f2, err := p.Build()
			if err != nil {
				t.Fatal(err)
			}
			if err := gmir.Legalize(f2, minW); err != nil {
				t.Fatalf("minW %d iter %d: legalize: %v\n%s", minW, iter, err, p.Format())
			}
			for vi, args := range fuzz.VectorsFor(seed, p, 4) {
				m1, m2 := gmir.NewMemory(), gmir.NewMemory()
				r1, e1 := (&gmir.Interp{Mem: m1}).Run(f1, args...)
				r2, e2 := (&gmir.Interp{Mem: m2}).Run(f2, args...)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("minW %d iter %d vec %d: error mismatch: %v vs %v\n%s",
						minW, iter, vi, e1, e2, p.Format())
				}
				if e1 != nil {
					continue
				}
				if r1 != r2 {
					t.Fatalf("minW %d iter %d vec %d: ret %v != %v\n%s",
						minW, iter, vi, r1, r2, p.Format())
				}
				s1, s2 := m1.Snapshot(), m2.Snapshot()
				if len(s1) != len(s2) {
					t.Fatalf("minW %d iter %d vec %d: memory footprint differs\n%s",
						minW, iter, vi, p.Format())
				}
				for a, b1 := range s1 {
					if s2[a] != b1 {
						t.Fatalf("minW %d iter %d vec %d: mem[%#x] %#x != %#x\n%s",
							minW, iter, vi, a, b1, s2[a], p.Format())
					}
				}
			}
		}
	}
}
