package gmir

import "fmt"

// Verify checks SSA and structural invariants: every value defined once,
// every use dominated-ish (defined before use within the linear block
// order, or a parameter, or via phi), blocks terminated exactly once,
// and branch targets valid.
func Verify(f *Function) error {
	defined := map[Value]bool{}
	for _, p := range f.Params {
		defined[p.Val] = true
	}
	// First pass: definitions unique; record them all (phis may use
	// values defined later in a loop).
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Dst >= 0 {
				if defined[in.Dst] {
					return fmt.Errorf("gmir: %s: %%%d defined twice", f.Name, in.Dst)
				}
				defined[in.Dst] = true
			}
		}
	}
	blockIDs := map[int]bool{}
	for _, b := range f.Blocks {
		blockIDs[b.ID] = true
	}
	for _, b := range f.Blocks {
		if len(b.Insts) == 0 {
			return fmt.Errorf("gmir: %s: bb%d empty", f.Name, b.ID)
		}
		for i, in := range b.Insts {
			isTerm := in.Op == GBr || in.Op == GBrCond || in.Op == GRet
			if isTerm != (i == len(b.Insts)-1) {
				return fmt.Errorf("gmir: %s: bb%d: terminator placement at %d (%s)",
					f.Name, b.ID, i, in)
			}
			if in.Op == GPhi && i != 0 && b.Insts[i-1].Op != GPhi {
				return fmt.Errorf("gmir: %s: bb%d: phi not at block head", f.Name, b.ID)
			}
			for _, a := range in.Args {
				if !defined[a] {
					return fmt.Errorf("gmir: %s: bb%d: use of undefined %%%d in %s",
						f.Name, b.ID, a, in)
				}
			}
			for _, s := range in.Succs {
				if !blockIDs[s] {
					return fmt.Errorf("gmir: %s: branch to missing bb%d", f.Name, s)
				}
			}
			if in.Op == GPhi && len(in.Args) != len(in.PhiBlocks) {
				return fmt.Errorf("gmir: %s: malformed phi", f.Name)
			}
		}
	}
	return nil
}
