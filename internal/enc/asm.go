package enc

import (
	"fmt"

	"iselgen/internal/bv"
	"iselgen/internal/isa"
	"iselgen/internal/mir"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

// Base is the default load address for assembled images (the same
// address the MIR simulator binds as the nominal PC).
const Base = 0x100000

// Unit is one encoded instruction of an image.
type Unit struct {
	Addr  uint64
	IC    *InstCodec
	Ops   Operands
	Bytes []byte
}

// Image is an assembled machine-code function.
type Image struct {
	Code []byte
	Base uint64
	// RetReg is the machine register holding the return value when
	// execution reaches the end of the code (-1 when the function
	// returns nothing); ParamRegs receive the arguments.
	RetReg     int
	ParamRegs  []int
	BlockAddrs map[int]uint64
	Units      []Unit
}

// End returns the halt address: one past the last instruction.
func (img *Image) End() uint64 { return img.Base + uint64(len(img.Code)) }

// Assembler encodes selected machine IR into an Image. MIR pseudos are
// expanded with instructions discovered from the spec itself: PCopy
// becomes the ISA's register move (the unique instruction whose sole
// effect is rd = operand), and PRet becomes a move into a dedicated
// return register followed by a PC-relative jump to the end of the
// image (the unique instruction whose sole effect sets the PC from an
// immediate), omitted when the return already falls off the end.
type Assembler struct {
	Codec *Codec
	Base  uint64

	copyIC *InstCodec // nil when the ISA has no plain register move
	copyOp string
	brIC   *InstCodec // nil when the ISA has no plain immediate jump
	brOp   string
	pcRef  map[*isa.Instruction]bool
}

// NewAssembler builds an assembler over a codec, discovering the copy
// and jump expansions from the instruction semantics.
func NewAssembler(c *Codec) *Assembler {
	a := &Assembler{Codec: c, Base: Base, pcRef: map[*isa.Instruction]bool{}}
	for _, ic := range c.Insts {
		in := ic.Inst
		if len(in.Effects) != 1 || len(in.Operands) != 1 {
			continue
		}
		e, op := in.Effects[0], in.Operands[0]
		switch {
		case e.Kind == spec.EffReg && e.Dest == "rd" && op.Kind == spec.OpReg &&
			e.T.Op == term.Var && e.T.Name == in.Name+"."+op.Name:
			// Prefer the widest move: the register file keeps full-width
			// values, and a full-width copy preserves them all.
			if a.copyIC == nil || op.Width > a.copyIC.Inst.Operands[0].Width {
				a.copyIC, a.copyOp = ic, op.Name
			}
		case e.Kind == spec.EffPC && op.Kind == spec.OpImm:
			if a.brIC == nil || op.Width > a.brIC.Inst.Operands[0].Width {
				a.brIC, a.brOp = ic, op.Name
			}
		}
	}
	return a
}

// refsPC reports whether any non-PC effect of the instruction reads the
// program counter (e.g. AUIPC, ADR, and linking jumps). Such semantics
// cannot be reproduced by the MIR simulator, which pins a nominal PC,
// so the assembler rejects them and the oracle skips.
func (a *Assembler) refsPC(in *isa.Instruction) bool {
	if v, ok := a.pcRef[in]; ok {
		return v
	}
	ref := false
	for _, e := range in.Effects {
		if e.Kind == spec.EffPC {
			continue
		}
		for _, v := range e.T.Vars() {
			if v.Kind == term.KindPC {
				ref = true
			}
		}
	}
	a.pcRef[in] = ref
	return ref
}

// adjust converts a value to an operand width the way the register file
// does: truncate down, zero-extend up.
func adjust(v bv.BV, w int) bv.BV {
	switch {
	case v.Width == 0:
		return bv.Zero(w)
	case v.W() == w:
		return v
	case v.W() < w:
		return v.ZExt(w)
	default:
		return v.Trunc(w)
	}
}

// refsVar reports whether the term references the named variable.
func refsVar(t *term.Term, name string) bool {
	for _, v := range t.Vars() {
		if v.Name == name {
			return true
		}
	}
	return false
}

// SolveDisp computes the immediate that makes the instruction's PC
// effect, evaluated at address addr, land on target. The taken-branch
// subterm is isolated by walking Ite nodes toward the arm referencing
// the label operand; it must then be a function of the PC and the label
// alone. The function is affine over the in-range window (scale from
// two probe evaluations), and the solution is verified by a final
// evaluation — which also rejects out-of-range displacements that the
// modular arithmetic would otherwise wrap.
func SolveDisp(ic *InstCodec, labelOp *spec.Operand, addr, target uint64) (bv.BV, error) {
	in := ic.Inst
	var pcT *term.Term
	for _, e := range in.Effects {
		if e.Kind == spec.EffPC {
			pcT = e.T
		}
	}
	if pcT == nil {
		return bv.BV{}, fmt.Errorf("enc: %s has no PC effect", in.Name)
	}
	labelVar := in.Name + "." + labelOp.Name
	pcVar := in.Name + ".pc"
	t := pcT
	for t.Op == term.Ite {
		inThen, inElse := refsVar(t.Args[1], labelVar), refsVar(t.Args[2], labelVar)
		switch {
		case inThen && !inElse:
			t = t.Args[1]
		case inElse && !inThen:
			t = t.Args[2]
		default:
			return bv.BV{}, fmt.Errorf("enc: %s: cannot isolate the taken-branch target", in.Name)
		}
	}
	for _, v := range t.Vars() {
		if v.Name != labelVar && v.Name != pcVar {
			return bv.BV{}, fmt.Errorf("enc: %s: branch target depends on %s, not just pc and %s",
				in.Name, v.Name, labelOp.Name)
		}
	}
	w := labelOp.Width
	env := term.NewEnv()
	env.Bind(pcVar, bv.New(64, addr))
	env.Bind(labelVar, bv.Zero(w))
	f0 := t.Eval(env)
	env.Bind(labelVar, bv.New(w, 1))
	f1 := t.Eval(env)
	scale := int64(f1.Lo - f0.Lo)
	if scale == 0 {
		return bv.BV{}, fmt.Errorf("enc: %s: branch target ignores %s", in.Name, labelOp.Name)
	}
	delta := int64(target - f0.Lo)
	if delta%scale != 0 {
		return bv.BV{}, fmt.Errorf("enc: %s: target %#x is not %d-byte aligned from %#x", in.Name, target, scale, addr)
	}
	imm := bv.NewInt(w, delta/scale)
	env.Bind(labelVar, imm)
	if got := t.Eval(env); got.Lo != target {
		return bv.BV{}, fmt.Errorf("enc: %s: branch to %#x out of range from %#x", in.Name, target, addr)
	}
	return imm, nil
}

// planned is one pre-layout unit.
type planned struct {
	kind     int // 0 normal, 1 copy, 2 jump-to-end
	in       *mir.Inst
	ic       *InstCodec
	dst, src int // copy
	addr     uint64
}

// Assemble encodes a selected function. Virtual registers map to
// machine register numbers identically while they fit; functions
// naming more registers than the encoding's register-number width
// admits are first compacted by the renaming allocator (AllocateRegs),
// and rejected only when their live pressure genuinely exceeds the
// machine's file.
func (a *Assembler) Assemble(f *mir.Func) (*Image, error) {
	c := a.Codec
	regLimit := 1 << uint(c.Target.RegNumBits)
	if c.Target.RegNumBits == 0 {
		return nil, fmt.Errorf("enc: target %s encodes no register numbers", c.Target.Name)
	}

	hasRetVal := false
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Pseudo == mir.PRet && len(in.Args) == 1 {
				hasRetVal = true
			}
		}
	}
	need := f.NumRegs
	if hasRetVal {
		need++
	}
	if need > regLimit {
		// Reserve the top register number for the return value so the
		// allocator never hands it out.
		budget := regLimit
		if hasRetVal {
			budget--
		}
		nf, err := AllocateRegs(f, budget)
		if err != nil {
			return nil, err
		}
		f = nf
	}
	retReg := -1
	if hasRetVal {
		retReg = f.NumRegs
	}

	// Plan units and lay out addresses (sizes are known up front).
	var plan []planned
	blockAddrs := map[int]uint64{}
	addr := a.Base
	put := func(p planned) {
		p.addr = addr
		addr += uint64(p.ic.Size)
		plan = append(plan, p)
	}
	for bi, b := range f.Blocks {
		blockAddrs[b.ID] = addr
		for ii, in := range b.Insts {
			last := bi == len(f.Blocks)-1 && ii == len(b.Insts)-1
			switch {
			case in.Pseudo == mir.PCopy:
				if a.copyIC == nil {
					return nil, fmt.Errorf("enc: %s has no register-move instruction to expand COPY", c.Target.Name)
				}
				put(planned{kind: 1, ic: a.copyIC, dst: int(in.Dsts[0]), src: int(in.Args[0].Reg)})
			case in.Pseudo == mir.PRet:
				if len(in.Args) == 1 {
					if a.copyIC == nil {
						return nil, fmt.Errorf("enc: %s has no register-move instruction to expand RET", c.Target.Name)
					}
					put(planned{kind: 1, ic: a.copyIC, dst: retReg, src: int(in.Args[0].Reg)})
				}
				if !last {
					if a.brIC == nil {
						return nil, fmt.Errorf("enc: %s has no immediate jump to expand mid-function RET", c.Target.Name)
					}
					put(planned{kind: 2, ic: a.brIC})
				}
			default:
				ic := c.ByName[in.Meta.Name]
				if ic == nil {
					return nil, fmt.Errorf("enc: no encoding for %s", in.Meta.Name)
				}
				if a.refsPC(in.Meta) {
					return nil, fmt.Errorf("enc: %s reads the PC outside its PC effect; the simulator's nominal PC cannot be reproduced", in.Meta.Name)
				}
				if len(in.Succs) > 0 && ii != len(b.Insts)-1 {
					return nil, fmt.Errorf("enc: %s: branch %s is not the block terminator", f.Name, in.Meta.Name)
				}
				put(planned{kind: 0, ic: ic, in: in})
			}
		}
	}
	end := addr

	img := &Image{Base: a.Base, RetReg: retReg, BlockAddrs: blockAddrs}
	for _, p := range f.Params {
		img.ParamRegs = append(img.ParamRegs, int(p))
	}
	for _, p := range plan {
		var ops Operands
		var err error
		switch p.kind {
		case 1:
			ops = Operands{Rd: p.dst, Rd2: -1, Regs: map[string]int{a.copyOp: p.src}}
		case 2:
			imm, derr := SolveDisp(p.ic, &p.ic.Inst.Operands[0], p.addr, end)
			if derr != nil {
				return nil, derr
			}
			ops = Operands{Rd: -1, Rd2: -1, Imms: map[string]bv.BV{a.brOp: imm}}
		default:
			ops, err = a.instOperands(p.in, p.ic, p.addr, blockAddrs)
			if err != nil {
				return nil, err
			}
		}
		bytes, err := p.ic.Encode(ops)
		if err != nil {
			return nil, err
		}
		img.Units = append(img.Units, Unit{Addr: p.addr, IC: p.ic, Ops: ops, Bytes: bytes})
		img.Code = append(img.Code, bytes...)
	}
	return img, nil
}

// instOperands maps one MIR instruction's registers and immediates to
// encoding operands, solving the branch displacement when the
// instruction carries a successor.
func (a *Assembler) instOperands(in *mir.Inst, ic *InstCodec, addr uint64, blockAddrs map[int]uint64) (Operands, error) {
	meta := in.Meta
	if len(in.Args) != len(meta.Operands) {
		return Operands{}, fmt.Errorf("enc: %s: %d args for %d operands", meta.Name, len(in.Args), len(meta.Operands))
	}
	ops := Operands{Rd: -1, Rd2: -1, Regs: map[string]int{}, Imms: map[string]bv.BV{}}
	// Destination registers follow the simulator's convention: Dsts in
	// effect order, primary results first. A machine write-back always
	// targets the operand's own register, so MIR that renames the
	// write-back destination cannot be encoded faithfully.
	dstIdx := 0
	for _, e := range meta.Effects {
		switch e.Kind {
		case spec.EffReg:
			if dstIdx >= len(in.Dsts) {
				return Operands{}, fmt.Errorf("enc: %s: missing destination register", meta.Name)
			}
			if e.Dest == "rd2" {
				ops.Rd2 = int(in.Dsts[dstIdx])
			} else {
				ops.Rd = int(in.Dsts[dstIdx])
			}
			dstIdx++
		case spec.EffWB:
			if dstIdx >= len(in.Dsts) {
				return Operands{}, fmt.Errorf("enc: %s: missing write-back register", meta.Name)
			}
			wb := int(in.Dsts[dstIdx])
			dstIdx++
			found := false
			for i, op := range meta.Operands {
				if op.Name == e.Dest {
					found = true
					if in.Args[i].IsImm || int(in.Args[i].Reg) != wb {
						return Operands{}, fmt.Errorf("enc: %s: write-back result %%%d is not the %s operand register",
							meta.Name, wb, e.Dest)
					}
				}
			}
			if !found {
				return Operands{}, fmt.Errorf("enc: %s: write-back to unknown operand %s", meta.Name, e.Dest)
			}
		}
	}
	labelIdx := -1
	if len(in.Succs) > 0 {
		for i, op := range meta.Operands {
			if op.Kind == spec.OpImm && in.Args[i].IsImm {
				labelIdx = i
				break
			}
		}
		if labelIdx < 0 {
			return Operands{}, fmt.Errorf("enc: %s: branch without label immediate", meta.Name)
		}
	}
	for i := range meta.Operands {
		op := &meta.Operands[i]
		arg := in.Args[i]
		switch {
		case i == labelIdx:
			target, ok := blockAddrs[in.Succs[0]]
			if !ok {
				return Operands{}, fmt.Errorf("enc: %s: branch to unknown bb%d", meta.Name, in.Succs[0])
			}
			imm, err := SolveDisp(ic, op, addr, target)
			if err != nil {
				return Operands{}, err
			}
			ops.Imms[op.Name] = imm
		case arg.IsImm:
			ops.Imms[op.Name] = adjust(arg.Imm, op.Width)
		default:
			ops.Regs[op.Name] = int(arg.Reg)
		}
	}
	return ops, nil
}
