package enc

import (
	"fmt"
	"strings"

	"iselgen/internal/spec"
)

// Line is one disassembled unit: an instruction, a reserved pattern, or
// an undecodable byte.
type Line struct {
	Addr  uint64
	Bytes []byte
	// Name is the instruction mnemonic, ".reserved" or ".byte".
	Name string
	Text string
	Inst *InstCodec // nil for non-instruction lines
	Ops  Operands
}

// Format renders one decoded instruction in canonical assembly form:
// mnemonic, destination register(s) first, then the declared operands
// in order — registers as rN, immediates as signed decimal when the
// semantics consume them sign-extended and hex otherwise. The same form
// is what the textual assembler parses back.
func (c *Codec) Format(ic *InstCodec, ops Operands) string {
	var parts []string
	if ic.hasRd {
		parts = append(parts, fmt.Sprintf("r%d", ops.Rd))
	}
	if ic.hasRd2 {
		parts = append(parts, fmt.Sprintf("r%d", ops.Rd2))
	}
	for _, op := range ic.Inst.Operands {
		switch {
		case op.Kind != spec.OpImm:
			parts = append(parts, fmt.Sprintf("r%d", ops.Regs[op.Name]))
		case ic.Inst.SignedImms[op.Name]:
			parts = append(parts, fmt.Sprintf("%d", ops.Imms[op.Name].Int64()))
		default:
			parts = append(parts, fmt.Sprintf("%#x", ops.Imms[op.Name].Uint64()))
		}
	}
	if len(parts) == 0 {
		return ic.Inst.Name
	}
	return ic.Inst.Name + " " + strings.Join(parts, ", ")
}

// Disassemble decodes a byte stream into lines. Undecodable bytes are
// consumed one at a time as ".byte" (or ".reserved" when a reserved
// pattern matches) so that disassembly always makes progress.
func (c *Codec) Disassemble(code []byte, base uint64) []Line {
	var out []Line
	for off := 0; off < len(code); {
		ic, ops, size, err := c.DecodeAt(code, off)
		if err != nil {
			name := ".byte"
			if strings.Contains(err.Error(), ErrReserved.Error()) {
				name = ".reserved"
			}
			out = append(out, Line{
				Addr:  base + uint64(off),
				Bytes: code[off : off+1],
				Name:  name,
				Text:  fmt.Sprintf("%s %#02x", name, code[off]),
			})
			off++
			continue
		}
		out = append(out, Line{
			Addr:  base + uint64(off),
			Bytes: code[off : off+size],
			Name:  ic.Inst.Name,
			Text:  c.Format(ic, ops),
			Inst:  ic,
			Ops:   ops,
		})
		off += size
	}
	return out
}

// HexBytes renders bytes as space-separated hex pairs.
func HexBytes(b []byte) string {
	var sb strings.Builder
	for i, by := range b {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%02x", by)
	}
	return sb.String()
}
