package enc

import (
	"fmt"

	"iselgen/internal/mir"
)

// A renaming-only register allocator: the selection pipeline works on
// unbounded virtual registers (its simulator has an unbounded file),
// but machine encodings admit only 2^RegNumBits register numbers. Most
// selected functions use far fewer registers *simultaneously* than they
// name, so compacting names by liveness — classic graph coloring, no
// spilling — lets the assembler encode them faithfully. Functions whose
// true register pressure exceeds the file are rejected (the encode
// oracle skips them); inventing spill slots would change the memory
// trace the differential oracle compares.

// AllocateRegs returns a copy of f with virtual registers renamed to at
// most max distinct numbers, or an error when the function's live
// pressure genuinely exceeds max.
func AllocateRegs(f *mir.Func, max int) (*mir.Func, error) {
	n := f.NumRegs
	nb := len(f.Blocks)

	uses := func(in *mir.Inst) []mir.Reg {
		var out []mir.Reg
		for _, a := range in.Args {
			if !a.IsImm {
				out = append(out, a.Reg)
			}
		}
		return out
	}

	// Backward liveness to a fixpoint. Control flow is overapproximated:
	// every block may fall through to the next in layout in addition to
	// its branch targets — extra liveness only adds interference, never
	// unsoundness.
	layout := map[int]int{}
	for i, b := range f.Blocks {
		layout[b.ID] = i
	}
	succs := make([][]int, nb)
	for i, b := range f.Blocks {
		set := map[int]bool{}
		ret := false
		for _, in := range b.Insts {
			if in.Pseudo == mir.PRet {
				ret = true
			}
			for _, s := range in.Succs {
				if si, ok := layout[s]; ok {
					set[si] = true
				}
			}
		}
		if i+1 < nb && !ret {
			set[i+1] = true
		}
		for si := range set {
			succs[i] = append(succs[i], si)
		}
	}
	liveIn := make([][]bool, nb)
	liveOut := make([][]bool, nb)
	for i := range liveIn {
		liveIn[i] = make([]bool, n)
		liveOut[i] = make([]bool, n)
	}
	changed := true
	for changed {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			out := make([]bool, n)
			for _, si := range succs[i] {
				for r, v := range liveIn[si] {
					if v {
						out[r] = true
					}
				}
			}
			in := make([]bool, n)
			copy(in, out)
			for k := len(f.Blocks[i].Insts) - 1; k >= 0; k-- {
				inst := f.Blocks[i].Insts[k]
				for _, d := range inst.Dsts {
					in[d] = false
				}
				for _, u := range uses(inst) {
					in[u] = true
				}
			}
			for r := 0; r < n; r++ {
				if out[r] != liveOut[i][r] || in[r] != liveIn[i][r] {
					changed = true
				}
			}
			liveOut[i], liveIn[i] = out, in
		}
	}

	// Interference: at each definition, the defined registers conflict
	// with everything live after the instruction (and with each other);
	// parameters conflict pairwise (they arrive simultaneously).
	adj := make([]map[mir.Reg]bool, n)
	interfere := func(a, b mir.Reg) {
		if a == b {
			return
		}
		if adj[a] == nil {
			adj[a] = map[mir.Reg]bool{}
		}
		if adj[b] == nil {
			adj[b] = map[mir.Reg]bool{}
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	for i, p := range f.Params {
		for _, q := range f.Params[i+1:] {
			interfere(p, q)
		}
	}
	for i, b := range f.Blocks {
		live := make([]bool, n)
		copy(live, liveOut[i])
		for k := len(b.Insts) - 1; k >= 0; k-- {
			inst := b.Insts[k]
			for _, d := range inst.Dsts {
				for r := 0; r < n; r++ {
					if live[r] {
						interfere(d, mir.Reg(r))
					}
				}
			}
			for di, d := range inst.Dsts {
				for _, d2 := range inst.Dsts[di+1:] {
					interfere(d, d2)
				}
				live[d] = false
			}
			for _, u := range uses(inst) {
				live[u] = true
			}
		}
	}

	// Greedy coloring in register order (deterministic). Parameters are
	// colored first so entry state stays compact.
	color := make([]int, n)
	for r := range color {
		color[r] = -1
	}
	pick := func(r mir.Reg) error {
		taken := make([]bool, max)
		for nb := range adj[r] {
			if c := color[nb]; c >= 0 && c < max {
				taken[c] = true
			}
		}
		for c := 0; c < max; c++ {
			if !taken[c] {
				color[r] = c
				return nil
			}
		}
		return fmt.Errorf("enc: %s: register pressure exceeds %d encodable registers", f.Name, max)
	}
	for _, p := range f.Params {
		if color[p] < 0 {
			if err := pick(p); err != nil {
				return nil, err
			}
		}
	}
	for r := 0; r < n; r++ {
		if color[r] < 0 {
			if err := pick(mir.Reg(r)); err != nil {
				return nil, err
			}
		}
	}
	maxColor := 0
	for _, c := range color {
		if c > maxColor {
			maxColor = c
		}
	}

	// Rewrite a copy of the function.
	nf := &mir.Func{Name: f.Name, NumRegs: maxColor + 1}
	for _, p := range f.Params {
		nf.Params = append(nf.Params, mir.Reg(color[p]))
	}
	for _, b := range f.Blocks {
		nb := &mir.Block{ID: b.ID}
		for _, in := range b.Insts {
			ni := &mir.Inst{Meta: in.Meta, Pseudo: in.Pseudo}
			for _, d := range in.Dsts {
				ni.Dsts = append(ni.Dsts, mir.Reg(color[d]))
			}
			for _, a := range in.Args {
				if a.IsImm {
					ni.Args = append(ni.Args, a)
				} else {
					ni.Args = append(ni.Args, mir.R(mir.Reg(color[a.Reg])))
				}
			}
			ni.Succs = append(ni.Succs, in.Succs...)
			nb.Insts = append(nb.Insts, ni)
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf, nil
}
