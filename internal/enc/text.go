package enc

import (
	"fmt"
	"strconv"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/spec"
)

// The textual assembler: parses the same canonical form the
// disassembler prints (mnemonic, rd/rd2 first, then declared operands;
// registers as rN, immediates as decimal or hex), plus labels. An
// immediate operand written as an identifier is a label reference and
// is solved into a PC-relative displacement through the instruction's
// own PC effect — the assembler never hard-codes a branch format.
//
//	loop:
//	  ADDI r1, r1, -1
//	  BNE r1, r0, loop
//	  MV r2, r1

type asmLine struct {
	num    int
	ic     *InstCodec
	fields []string
	addr   uint64
}

// ParseAsm assembles a textual program at the given base address.
func ParseAsm(c *Codec, src string, base uint64) (*Image, error) {
	labels := map[string]uint64{}
	var lines []asmLine
	addr := base
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if j := strings.IndexAny(line, ";#"); j >= 0 {
			line = line[:j]
		}
		if j := strings.Index(line, "//"); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for strings.Contains(line, ":") {
			j := strings.Index(line, ":")
			label := strings.TrimSpace(line[:j])
			if label == "" || strings.ContainsAny(label, " \t,") {
				return nil, fmt.Errorf("asm:%d: malformed label %q", i+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("asm:%d: duplicate label %q", i+1, label)
			}
			labels[label] = addr
			line = strings.TrimSpace(line[j+1:])
		}
		if line == "" {
			continue
		}
		name, rest, _ := strings.Cut(line, " ")
		ic := c.ByName[name]
		if ic == nil {
			return nil, fmt.Errorf("asm:%d: unknown instruction %q", i+1, name)
		}
		var fields []string
		if rest = strings.TrimSpace(rest); rest != "" {
			for _, f := range strings.Split(rest, ",") {
				fields = append(fields, strings.TrimSpace(f))
			}
		}
		lines = append(lines, asmLine{num: i + 1, ic: ic, fields: fields, addr: addr})
		addr += uint64(ic.Size)
	}

	img := &Image{Base: base, RetReg: -1, BlockAddrs: map[int]uint64{}}
	for _, ln := range lines {
		ops, err := parseOperands(ln, labels)
		if err != nil {
			return nil, err
		}
		bytes, err := ln.ic.Encode(ops)
		if err != nil {
			return nil, fmt.Errorf("asm:%d: %w", ln.num, err)
		}
		img.Units = append(img.Units, Unit{Addr: ln.addr, IC: ln.ic, Ops: ops, Bytes: bytes})
		img.Code = append(img.Code, bytes...)
	}
	return img, nil
}

func parseOperands(ln asmLine, labels map[string]uint64) (Operands, error) {
	ic := ln.ic
	ops := Operands{Rd: -1, Rd2: -1, Regs: map[string]int{}, Imms: map[string]bv.BV{}}
	want := 0
	if ic.hasRd {
		want++
	}
	if ic.hasRd2 {
		want++
	}
	want += len(ic.Inst.Operands)
	if len(ln.fields) != want {
		return ops, fmt.Errorf("asm:%d: %s takes %d operands, got %d", ln.num, ic.Inst.Name, want, len(ln.fields))
	}
	fi := 0
	next := func() string { f := ln.fields[fi]; fi++; return f }
	parseReg := func(f string) (int, error) {
		if !strings.HasPrefix(f, "r") {
			return 0, fmt.Errorf("asm:%d: expected register, got %q", ln.num, f)
		}
		n, err := strconv.Atoi(f[1:])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("asm:%d: bad register %q", ln.num, f)
		}
		return n, nil
	}
	var err error
	if ic.hasRd {
		if ops.Rd, err = parseReg(next()); err != nil {
			return ops, err
		}
	}
	if ic.hasRd2 {
		if ops.Rd2, err = parseReg(next()); err != nil {
			return ops, err
		}
	}
	for i := range ic.Inst.Operands {
		op := &ic.Inst.Operands[i]
		f := next()
		if op.Kind != spec.OpImm {
			n, rerr := parseReg(f)
			if rerr != nil {
				return ops, rerr
			}
			ops.Regs[op.Name] = n
			continue
		}
		if target, ok := labels[f]; ok {
			imm, derr := SolveDisp(ic, op, ln.addr, target)
			if derr != nil {
				return ops, fmt.Errorf("asm:%d: %w", ln.num, derr)
			}
			ops.Imms[op.Name] = imm
			continue
		}
		v, perr := strconv.ParseInt(f, 0, 64)
		if perr != nil {
			if u, uerr := strconv.ParseUint(f, 0, 64); uerr == nil {
				ops.Imms[op.Name] = bv.New(op.Width, u)
				continue
			}
			return ops, fmt.Errorf("asm:%d: bad immediate or unknown label %q", ln.num, f)
		}
		ops.Imms[op.Name] = bv.NewInt(op.Width, v)
	}
	return ops, nil
}
