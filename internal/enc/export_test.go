package enc

// Test-only windows into unexported machinery: the trie-free reference
// decoder and the full match set (for uniqueness sweeps).

// DecodeLinear exposes the linear reference decoder.
func (c *Codec) DecodeLinear(code []byte, off int) (*InstCodec, int) {
	return c.decodeLinear(code, off)
}

// AllMatches returns every instruction whose fixed bits match a prefix
// of code — more than one element means an ambiguous opcode space.
func (c *Codec) AllMatches(code []byte) []*InstCodec {
	var out []*InstCodec
	for _, ic := range c.Insts {
		if ic.Size <= len(code) && matches(wordPair(code[:ic.Size]), ic.Mask, ic.Val) {
			out = append(out, ic)
		}
	}
	return out
}

// MatchesReserved reports whether a reserved pattern matches a prefix.
func (c *Codec) MatchesReserved(code []byte) bool {
	for _, r := range c.resPats {
		if r.size <= len(code) && matches(wordPair(code[:r.size]), r.mask, r.val) {
			return true
		}
	}
	return false
}
