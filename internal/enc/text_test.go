package enc_test

import (
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/enc"
	"iselgen/internal/gmir"
)

// TestParseAsmLabels assembles a hand-written loop with labels and runs
// it on the emulator: sum of 1..n via countdown.
func TestParseAsmLabels(t *testing.T) {
	_, c, _ := riscvAsm(t)
	src := `
; r0 = n on entry; returns n*(n+1)/2 in r1
  MVZERO r1
loop:
  ADD r1, r1, r0        // acc += n
  ADDI r0, r0, -1       # n--
  BNE r0, r2, loop      ; r2 is never written: zero
`
	img, err := enc.ParseAsm(c, src, enc.Base)
	if err != nil {
		t.Fatal(err)
	}
	img.ParamRegs = []int{0}
	img.RetReg = 1
	e := &enc.Emulator{Codec: c, Mem: gmir.NewMemory()}
	res, err := e.Run(img, []bv.BV{bv.New(64, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Uint64() != 55 {
		t.Fatalf("sum(1..10) = %s", res.Ret)
	}
	// The backward branch solved to a negative displacement.
	last := img.Units[len(img.Units)-1]
	if last.IC.Inst.Name != "BNE" || last.Ops.Imms["imm"].Int64() >= 0 {
		t.Fatalf("BNE unit: %+v", last)
	}
}

func TestParseAsmErrors(t *testing.T) {
	_, c, _ := riscvAsm(t)
	cases := []struct{ name, src string }{
		{"unknown inst", "FROB r1, r2"},
		{"operand count", "ADD r1, r2"},
		{"bad register", "ADD r1, r2, x3"},
		{"unknown label", "J nowhere"},
		{"duplicate label", "a:\na:\nMVZERO r1"},
		{"register out of range", "ADD r1, r2, r40"},
	}
	for _, tc := range cases {
		if _, err := enc.ParseAsm(c, tc.src, enc.Base); err == nil {
			t.Errorf("%s: assembled %q", tc.name, tc.src)
		}
	}
}
