package enc

import (
	"fmt"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

// Emulator executes machine code at the byte level: fetch, decode
// through the trie, bind the decoded fields to the instruction's
// symbolic operand variables, and evaluate the very effect terms the
// synthesis consumed. Where the MIR simulator trusts the instruction
// stream, the emulator trusts only the bytes — which is what makes it
// the far side of the round-trip oracle.
type Emulator struct {
	Codec *Codec
	Mem   *gmir.Memory
	// MaxSteps bounds execution (default 200M instructions).
	MaxSteps int64
}

// EmuResult reports one machine-code execution.
type EmuResult struct {
	Ret    bv.BV
	HasRet bool
	Insts  int64
	Flags  map[string]bv.BV
}

type emuMem struct{ m *gmir.Memory }

func (a emuMem) Load(addr uint64, bits int) bv.BV { return a.m.Load(addr, bits) }

// Run executes an image with the given arguments until the PC reaches
// the end of the code.
func (e *Emulator) Run(img *Image, args []bv.BV) (EmuResult, error) {
	if e.Mem == nil {
		e.Mem = gmir.NewMemory()
	}
	maxSteps := e.MaxSteps
	if maxSteps == 0 {
		maxSteps = 200_000_000
	}
	if len(args) != len(img.ParamRegs) {
		return EmuResult{}, fmt.Errorf("enc: image takes %d args, got %d", len(img.ParamRegs), len(args))
	}
	regs := make([]bv.BV, 1<<uint(e.Codec.Target.RegNumBits))
	for i, p := range img.ParamRegs {
		regs[p] = args[i]
	}
	flags := map[string]bv.BV{"N": bv.Zero(1), "Z": bv.Zero(1), "C": bv.Zero(1), "V": bv.Zero(1)}

	res := EmuResult{}
	pc := img.Base
	end := img.End()
	for pc != end {
		if pc < img.Base || pc > end {
			return res, fmt.Errorf("enc: pc %#x outside image [%#x,%#x)", pc, img.Base, end)
		}
		if res.Insts++; res.Insts > maxSteps {
			return res, fmt.Errorf("enc: step limit exceeded at pc %#x", pc)
		}
		ic, ops, size, err := e.Codec.DecodeAt(img.Code, int(pc-img.Base))
		if err != nil {
			return res, fmt.Errorf("enc: fetch at pc %#x: %w", pc, err)
		}
		nextPC, err := e.step(ic, ops, regs, flags, pc, uint64(size))
		if err != nil {
			return res, fmt.Errorf("enc: pc %#x (%s): %w", pc, ic.Inst.Name, err)
		}
		pc = nextPC
	}
	res.Flags = flags
	if img.RetReg >= 0 {
		res.Ret = regs[img.RetReg]
		res.HasRet = true
	}
	return res, nil
}

// step executes one decoded instruction and returns the next PC.
func (e *Emulator) step(ic *InstCodec, ops Operands, regs []bv.BV, flags map[string]bv.BV, pc, size uint64) (uint64, error) {
	in := ic.Inst
	env := term.NewEnv()
	env.Mem = emuMem{e.Mem}
	for _, op := range in.Operands {
		name := in.Name + "." + op.Name
		if op.Kind == spec.OpImm {
			env.Bind(name, ops.Imms[op.Name])
		} else {
			env.Bind(name, adjust(regs[ops.Regs[op.Name]], op.Width))
		}
	}
	for _, fn := range spec.FlagNames {
		env.Bind(in.Name+"."+fn, flags[fn])
	}
	env.Bind(in.Name+".pc", bv.New(64, pc))

	next := pc + size
	for _, eff := range in.Effects {
		switch eff.Kind {
		case spec.EffReg:
			dst := ops.Rd
			if eff.Dest == "rd2" {
				dst = ops.Rd2
			}
			if dst < 0 {
				return 0, fmt.Errorf("no %s field", eff.Dest)
			}
			regs[dst] = eff.T.Eval(env)
		case spec.EffWB:
			dst, ok := ops.Regs[eff.Dest]
			if !ok {
				return 0, fmt.Errorf("write-back to unknown operand %s", eff.Dest)
			}
			regs[dst] = eff.T.Eval(env)
		case spec.EffFlag:
			flags[eff.Dest] = eff.T.Eval(env)
		case spec.EffMem:
			addr := eff.T.Args[0].Eval(env)
			val := eff.T.Args[1].Eval(env)
			e.Mem.Store(addr.Uint64(), val, int(eff.T.Aux0))
		case spec.EffPC:
			// The effect term already folds the not-taken arm (pc plus
			// the encoding-derived size), so evaluating it concretely
			// decides taken-ness with no displacement probing.
			next = eff.T.Eval(env).Uint64()
		}
	}
	return next, nil
}
