package enc_test

import (
	"bytes"
	"strings"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/enc"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/isa/riscv"
	"iselgen/internal/mir"
	"iselgen/internal/sim"
	"iselgen/internal/term"
)

func riscvAsm(t *testing.T) (*isa.Target, *enc.Codec, *enc.Assembler) {
	t.Helper()
	tgt, err := riscv.Load(term.NewBuilder())
	if err != nil {
		t.Fatal(err)
	}
	c, err := enc.NewCodec(tgt)
	if err != nil {
		t.Fatal(err)
	}
	return tgt, c, enc.NewAssembler(c)
}

// runBoth executes a MIR function on the MIR simulator and, assembled,
// on the machine-code emulator, and requires identical results.
func runBoth(t *testing.T, tgt *isa.Target, c *enc.Codec, a *enc.Assembler, f *mir.Func, args []bv.BV) bv.BV {
	t.Helper()
	img, err := a.Assemble(f)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := &sim.Machine{Mem: gmir.NewMemory()}
	sres, err := m.Run(f, args)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	e := &enc.Emulator{Codec: c, Mem: gmir.NewMemory()}
	eres, err := e.Run(img, args)
	if err != nil {
		t.Fatalf("emu: %v", err)
	}
	if sres.HasRet != eres.HasRet {
		t.Fatalf("HasRet: sim %v, emu %v", sres.HasRet, eres.HasRet)
	}
	if sim.Adjust(sres.Ret, 64) != sim.Adjust(eres.Ret, 64) {
		t.Fatalf("ret: sim %s, emu %s", sres.Ret, eres.Ret)
	}
	return eres.Ret
}

func TestAssembleStraightLine(t *testing.T) {
	tgt, c, a := riscvAsm(t)
	add := tgt.ByName("ADD")
	f := &mir.Func{
		Name: "sum", Params: []mir.Reg{0, 1}, NumRegs: 3,
		Blocks: []*mir.Block{{ID: 0, Insts: []*mir.Inst{
			{Meta: add, Dsts: []mir.Reg{2}, Args: []mir.Operand{mir.R(0), mir.R(1)}},
			{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(2)}},
		}}},
	}
	got := runBoth(t, tgt, c, a, f, []bv.BV{bv.New(64, 40), bv.New(64, 2)})
	if got.Uint64() != 42 {
		t.Fatalf("ret = %s", got)
	}
	// The image ends in a move to the return register and no jump (the
	// return already falls off the end).
	img, _ := a.Assemble(f)
	if n := len(img.Units); n != 2 {
		t.Fatalf("unit count = %d", n)
	}
	listing := c.Disassemble(img.Code, img.Base)
	if len(listing) != 2 || listing[0].Name != "ADD" || listing[1].Name != "MV" {
		t.Fatalf("listing: %+v", listing)
	}
}

func TestAssembleLoop(t *testing.T) {
	tgt, c, a := riscvAsm(t)
	mvzero, add, addi, bne := tgt.ByName("MVZERO"), tgt.ByName("ADD"), tgt.ByName("ADDI"), tgt.ByName("BNE")
	// r0 = n, r1 = step; r2 accumulates step n times.
	f := &mir.Func{
		Name: "mulloop", Params: []mir.Reg{0, 1}, NumRegs: 4,
		Blocks: []*mir.Block{
			{ID: 0, Insts: []*mir.Inst{
				{Meta: mvzero, Dsts: []mir.Reg{2}},
				{Meta: mvzero, Dsts: []mir.Reg{3}},
			}},
			{ID: 1, Insts: []*mir.Inst{
				{Meta: add, Dsts: []mir.Reg{2}, Args: []mir.Operand{mir.R(2), mir.R(1)}},
				{Meta: addi, Dsts: []mir.Reg{0}, Args: []mir.Operand{mir.R(0), mir.I(bv.NewInt(12, -1))}},
				{Meta: bne, Args: []mir.Operand{mir.R(0), mir.R(3), mir.I(bv.Zero(12))}, Succs: []int{1}},
			}},
			{ID: 2, Insts: []*mir.Inst{
				{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(2)}},
			}},
		},
	}
	got := runBoth(t, tgt, c, a, f, []bv.BV{bv.New(64, 5), bv.New(64, 7)})
	if got.Uint64() != 35 {
		t.Fatalf("5*7 = %s", got)
	}
	// The backward branch must have solved to a negative displacement.
	img, _ := a.Assemble(f)
	var bneOps enc.Operands
	found := false
	for _, u := range img.Units {
		if u.IC.Inst.Name == "BNE" {
			bneOps, found = u.Ops, true
		}
	}
	if !found || bneOps.Imms["imm"].Int64() >= 0 {
		t.Fatalf("BNE displacement: %+v (found=%v)", bneOps.Imms, found)
	}
}

func TestAssembleMidFunctionRet(t *testing.T) {
	tgt, c, a := riscvAsm(t)
	beq := tgt.ByName("BEQ")
	f := &mir.Func{
		Name: "pick", Params: []mir.Reg{0, 1}, NumRegs: 2,
		Blocks: []*mir.Block{
			{ID: 0, Insts: []*mir.Inst{
				{Meta: beq, Args: []mir.Operand{mir.R(0), mir.R(1), mir.I(bv.Zero(12))}, Succs: []int{2}},
			}},
			{ID: 1, Insts: []*mir.Inst{
				{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(0)}},
			}},
			{ID: 2, Insts: []*mir.Inst{
				{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(1)}},
			}},
		},
	}
	if got := runBoth(t, tgt, c, a, f, []bv.BV{bv.New(64, 9), bv.New(64, 4)}); got.Uint64() != 9 {
		t.Fatalf("unequal args: ret %s", got)
	}
	if got := runBoth(t, tgt, c, a, f, []bv.BV{bv.New(64, 4), bv.New(64, 4)}); got.Uint64() != 4 {
		t.Fatalf("equal args: ret %s", got)
	}
	// The mid-function return must expand to MV + J; the final one to MV.
	img, _ := a.Assemble(f)
	names := []string{}
	for _, u := range img.Units {
		names = append(names, u.IC.Inst.Name)
	}
	if strings.Join(names, " ") != "BEQ MV J MV" {
		t.Fatalf("units: %v", names)
	}
}

func TestAssembleCopyAndMemory(t *testing.T) {
	tgt, c, a := riscvAsm(t)
	sd, ld, addi := tgt.ByName("SD"), tgt.ByName("LD"), tgt.ByName("ADDI")
	// Store r1 at [r0+8], reload it, add 1, return.
	f := &mir.Func{
		Name: "spill", Params: []mir.Reg{0, 1}, NumRegs: 3,
		Blocks: []*mir.Block{{ID: 0, Insts: []*mir.Inst{
			{Pseudo: mir.PCopy, Dsts: []mir.Reg{2}, Args: []mir.Operand{mir.R(1)}},
			{Meta: sd, Args: []mir.Operand{mir.R(2), mir.R(0), mir.I(bv.New(12, 8))}},
			{Meta: ld, Dsts: []mir.Reg{2}, Args: []mir.Operand{mir.R(0), mir.I(bv.New(12, 8))}},
			{Meta: addi, Dsts: []mir.Reg{2}, Args: []mir.Operand{mir.R(2), mir.I(bv.New(12, 1))}},
			{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(2)}},
		}}},
	}
	args := []bv.BV{bv.New(64, 0x1000), bv.New(64, 77)}
	if got := runBoth(t, tgt, c, a, f, args); got.Uint64() != 78 {
		t.Fatalf("ret = %s", got)
	}
	// Final memory must match between simulator and emulator too.
	img, _ := a.Assemble(f)
	simMem, emuMem := gmir.NewMemory(), gmir.NewMemory()
	if _, err := (&sim.Machine{Mem: simMem}).Run(f, args); err != nil {
		t.Fatal(err)
	}
	if _, err := (&enc.Emulator{Codec: c, Mem: emuMem}).Run(img, args); err != nil {
		t.Fatal(err)
	}
	sSnap, eSnap := simMem.Snapshot(), emuMem.Snapshot()
	if len(sSnap) == 0 || len(sSnap) != len(eSnap) {
		t.Fatalf("memory snapshots differ: %d vs %d bytes", len(sSnap), len(eSnap))
	}
	for k, v := range sSnap {
		if eSnap[k] != v {
			t.Fatalf("memory[%#x]: sim %#x, emu %#x", k, v, eSnap[k])
		}
	}
}

func TestAssembleRejects(t *testing.T) {
	tgt, _, a := riscvAsm(t)
	// Many dead virtual registers compact through the renaming allocator
	// rather than being rejected: only r39 is live, so 40 names fit 32
	// registers easily.
	f := &mir.Func{Name: "big", NumRegs: 40, Blocks: []*mir.Block{{ID: 0, Insts: []*mir.Inst{
		{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(39)}},
	}}}}
	if _, err := a.Assemble(f); err != nil {
		t.Fatalf("40 sparse registers should compact: %v", err)
	}
	// Genuine pressure — 40 simultaneously-live values — cannot fit a
	// 5-bit register field and must be rejected (no spilling).
	mvzero, add := tgt.ByName("MVZERO"), tgt.ByName("ADD")
	var insts []*mir.Inst
	for r := 0; r < 40; r++ {
		insts = append(insts, &mir.Inst{Meta: mvzero, Dsts: []mir.Reg{mir.Reg(r)}})
	}
	acc := mir.Reg(40)
	insts = append(insts, &mir.Inst{Meta: mvzero, Dsts: []mir.Reg{acc}})
	for r := 0; r < 40; r++ {
		insts = append(insts, &mir.Inst{Meta: add, Dsts: []mir.Reg{acc}, Args: []mir.Operand{mir.R(acc), mir.R(mir.Reg(r))}})
	}
	insts = append(insts, &mir.Inst{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(acc)}})
	f3 := &mir.Func{Name: "pressure", NumRegs: 41, Blocks: []*mir.Block{{ID: 0, Insts: insts}}}
	if _, err := a.Assemble(f3); err == nil {
		t.Fatal("41 simultaneously-live registers assembled for a 5-bit register field")
	}
	// PC-reading semantics outside the PC effect (AUIPC) are rejected.
	auipc := tgt.ByName("AUIPC")
	f2 := &mir.Func{Name: "pcread", NumRegs: 1, Blocks: []*mir.Block{{ID: 0, Insts: []*mir.Inst{
		{Meta: auipc, Dsts: []mir.Reg{0}, Args: []mir.Operand{mir.I(bv.New(20, 1))}},
		{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(0)}},
	}}}}
	if _, err := a.Assemble(f2); err == nil {
		t.Fatal("AUIPC assembled despite reading the nominal PC")
	}
}

// TestAllocateRegsChain: a function naming 65 virtual registers in a
// dependency chain compacts through the renaming allocator into the
// 32-register file and still matches the MIR simulator, which runs the
// original (unrenamed) function.
func TestAllocateRegsChain(t *testing.T) {
	tgt, c, a := riscvAsm(t)
	addi := tgt.ByName("ADDI")
	insts := []*mir.Inst{}
	for r := 1; r <= 64; r++ {
		insts = append(insts, &mir.Inst{
			Meta: addi, Dsts: []mir.Reg{mir.Reg(r)},
			Args: []mir.Operand{mir.R(mir.Reg(r - 1)), mir.I(bv.New(12, 1))},
		})
	}
	insts = append(insts, &mir.Inst{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(64)}})
	f := &mir.Func{Name: "chain", Params: []mir.Reg{0}, NumRegs: 65,
		Blocks: []*mir.Block{{ID: 0, Insts: insts}}}
	if got := runBoth(t, tgt, c, a, f, []bv.BV{bv.New(64, 100)}); got.Uint64() != 164 {
		t.Fatalf("chain(100) = %s", got)
	}
	img, err := a.Assemble(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range img.Units {
		if u.Ops.Rd >= 32 {
			t.Fatalf("allocated register %d escapes the 5-bit field", u.Ops.Rd)
		}
	}
}

// TestImageRoundTrip: the full select-side invariant, inst by inst —
// disassembling an assembled image reproduces every unit byte for byte
// and re-assembles identically through the textual assembler.
func TestImageRoundTrip(t *testing.T) {
	tgt, c, a := riscvAsm(t)
	mvzero, add, addi, bne := tgt.ByName("MVZERO"), tgt.ByName("ADD"), tgt.ByName("ADDI"), tgt.ByName("BNE")
	f := &mir.Func{
		Name: "mulloop", Params: []mir.Reg{0, 1}, NumRegs: 4,
		Blocks: []*mir.Block{
			{ID: 0, Insts: []*mir.Inst{
				{Meta: mvzero, Dsts: []mir.Reg{2}},
				{Meta: mvzero, Dsts: []mir.Reg{3}},
			}},
			{ID: 1, Insts: []*mir.Inst{
				{Meta: add, Dsts: []mir.Reg{2}, Args: []mir.Operand{mir.R(2), mir.R(1)}},
				{Meta: addi, Dsts: []mir.Reg{0}, Args: []mir.Operand{mir.R(0), mir.I(bv.NewInt(12, -1))}},
				{Meta: bne, Args: []mir.Operand{mir.R(0), mir.R(3), mir.I(bv.Zero(12))}, Succs: []int{1}},
			}},
			{ID: 2, Insts: []*mir.Inst{{Pseudo: mir.PRet, Args: []mir.Operand{mir.R(2)}}}},
		},
	}
	img, err := a.Assemble(f)
	if err != nil {
		t.Fatal(err)
	}
	listing := c.Disassemble(img.Code, img.Base)
	if len(listing) != len(img.Units) {
		t.Fatalf("listing has %d lines for %d units", len(listing), len(img.Units))
	}
	var asmSrc strings.Builder
	for i, ln := range listing {
		u := img.Units[i]
		if ln.Inst != u.IC || !bytes.Equal(ln.Bytes, u.Bytes) {
			t.Fatalf("unit %d: disassembled %s % x, assembled %s % x", i, ln.Name, ln.Bytes, u.IC.Inst.Name, u.Bytes)
		}
		asmSrc.WriteString(ln.Text + "\n")
	}
	// Textual round trip: the printed listing assembles to the same bytes.
	img2, err := enc.ParseAsm(c, asmSrc.String(), img.Base)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, asmSrc.String())
	}
	if !bytes.Equal(img2.Code, img.Code) {
		t.Fatalf("textual round trip changed bytes:\n%s\n%s", enc.HexBytes(img.Code), enc.HexBytes(img2.Code))
	}
}
