package enc

// The disassembler's dispatch structure: a binary trie over the fixed
// bits of one size class. Each interior node tests a single bit of the
// instruction word; candidates for which that bit is not fixed descend
// into both subtrees (they can match either value). Leaves hold the
// survivors and verify their full fixed-bit mask linearly — the spec
// checker's pairwise-conflict guarantee makes at most one survivor
// match, so lookup needs no priorities and no backtracking.

type trieNode struct {
	// Interior node: test bit, branch on its value.
	bit       int
	zero, one *trieNode
	// Leaf: verify candidates against their full mask/val.
	leaves []*InstCodec
}

// maxLeafLinear is the candidate count below which a linear scan beats
// further bit tests.
const maxLeafLinear = 2

// buildTrie constructs the dispatch trie for one size class. depth
// bounds recursion against pathological field layouts (the fallback is
// a correct linear leaf).
func buildTrie(cands []*InstCodec, depth int) *trieNode {
	if len(cands) <= maxLeafLinear || depth > 64 {
		return &trieNode{bit: -1, leaves: cands}
	}
	width := cands[0].Size * 8
	for _, ic := range cands {
		if w := ic.Size * 8; w < width {
			width = w
		}
	}
	// Pick the bit minimizing the larger subtree. A candidate without
	// that bit fixed lands in both subtrees, so splitting on bits fixed
	// in many candidates wins.
	bestBit, bestCost := -1, len(cands)+1
	for b := 0; b < width; b++ {
		nz, no := 0, 0
		for _, ic := range cands {
			w, s := b/64, uint(b%64)
			switch {
			case ic.Mask[w]>>s&1 == 0:
				nz++
				no++
			case ic.Val[w]>>s&1 == 0:
				nz++
			default:
				no++
			}
		}
		cost := nz
		if no > cost {
			cost = no
		}
		if cost < bestCost {
			bestCost, bestBit = cost, b
		}
	}
	if bestBit < 0 || bestCost >= len(cands) {
		// No bit separates anything: fall back to a linear leaf.
		return &trieNode{bit: -1, leaves: cands}
	}
	var zs, os []*InstCodec
	w, s := bestBit/64, uint(bestBit%64)
	for _, ic := range cands {
		switch {
		case ic.Mask[w]>>s&1 == 0:
			zs = append(zs, ic)
			os = append(os, ic)
		case ic.Val[w]>>s&1 == 0:
			zs = append(zs, ic)
		default:
			os = append(os, ic)
		}
	}
	return &trieNode{
		bit:  bestBit,
		zero: buildTrie(zs, depth+1),
		one:  buildTrie(os, depth+1),
	}
}

// lookup walks the trie with the word's bits and returns the unique
// matching instruction, or nil.
func (n *trieNode) lookup(p [2]uint64) *InstCodec {
	for n.bit >= 0 {
		if p[n.bit/64]>>(uint(n.bit)%64)&1 == 0 {
			n = n.zero
		} else {
			n = n.one
		}
	}
	for _, ic := range n.leaves {
		if matches(p, ic.Mask, ic.Val) {
			return ic
		}
	}
	return nil
}

// stats accumulates trie shape numbers for observability and tests.
type trieStats struct {
	Interior, Leaves, MaxDepth, MaxLeafWidth int
}

func (n *trieNode) stats(depth int, st *trieStats) {
	if depth > st.MaxDepth {
		st.MaxDepth = depth
	}
	if n.bit < 0 {
		st.Leaves++
		if len(n.leaves) > st.MaxLeafWidth {
			st.MaxLeafWidth = len(n.leaves)
		}
		return
	}
	st.Interior++
	n.zero.stats(depth+1, st)
	n.one.stats(depth+1, st)
}

// TrieStats describes the decode tries' shape, keyed by size in bytes.
type TrieStats struct {
	Size                                    int
	Insts, Interior, Leaves, Depth, MaxLeaf int
}

// Stats reports per-size decode-trie shape (for iseldump and tests).
func (c *Codec) Stats() []TrieStats {
	var out []TrieStats
	for _, s := range c.Sizes {
		st := trieStats{}
		c.tries[s].stats(0, &st)
		n := 0
		for _, ic := range c.Insts {
			if ic.Size == s {
				n++
			}
		}
		out = append(out, TrieStats{Size: s, Insts: n, Interior: st.Interior,
			Leaves: st.Leaves, Depth: st.MaxDepth, MaxLeaf: st.MaxLeafWidth})
	}
	return out
}
