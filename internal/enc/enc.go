// Package enc turns the spec DSL's encoding clauses into working
// machine-code tooling: an assembler from selected machine IR to bytes,
// a table-driven disassembler built as a decode trie over the fixed
// bits, and a decoding emulator that executes the bytes by evaluating
// the same formal effect terms the synthesis consumed. One spec file
// therefore yields the compiler back-end *and* the binary tools — the
// "single source of truth" flow — and the round-trip between them is a
// fourth differential oracle for the fuzzer: select → encode → decode
// must reproduce the instruction stream byte-identically, and machine
// code execution must agree with the MIR simulator.
package enc

import (
	"errors"
	"fmt"
	"sort"

	"iselgen/internal/bv"
	"iselgen/internal/isa"
	"iselgen/internal/spec"
)

// Decode failure sentinels. ErrReserved means the word matched a
// declared reserved pattern (architecturally undefined, permanently);
// ErrUnknown means no instruction and no reserved pattern matched.
var (
	ErrReserved = errors.New("enc: reserved encoding")
	ErrUnknown  = errors.New("enc: undecodable bytes")
)

// Operands carries one decoded (or to-be-encoded) instruction's field
// values: destination register number(s), source register numbers by
// operand name, and immediate values by operand name at declared width.
type Operands struct {
	Rd, Rd2 int
	Regs    map[string]int
	Imms    map[string]bv.BV
}

// InstCodec encodes and decodes one instruction.
type InstCodec struct {
	Inst *isa.Instruction
	// Size is the encoded size in bytes; Mask/Val the fixed-bit match
	// pattern (bit i of the word is bit i%64 of word i/64).
	Size      int
	Mask, Val [2]uint64
	hasRd     bool
	hasRd2    bool
	fields    []spec.EncField // the non-fixed fields
}

// Codec holds the encode/decode tables derived from one target's spec.
type Codec struct {
	Target  *isa.Target
	Insts   []*InstCodec
	ByName  map[string]*InstCodec
	Sizes   []int // distinct instruction sizes, ascending
	MaxSize int
	tries   map[int]*trieNode // per-size decode tries
	resPats []resPat
}

type resPat struct {
	size      int
	mask, val [2]uint64
}

// NewCodec builds the codec for a target. Every instruction must carry
// an encoding clause (Target.HasEncodings).
func NewCodec(t *isa.Target) (*Codec, error) {
	if !t.HasEncodings() {
		return nil, fmt.Errorf("enc: target %s has no machine encodings", t.Name)
	}
	c := &Codec{Target: t, ByName: make(map[string]*InstCodec, len(t.Insts)), tries: map[int]*trieNode{}}
	sizes := map[int]bool{}
	for _, in := range t.Insts {
		ic := &InstCodec{Inst: in, Size: in.Enc.SizeBytes()}
		ic.Mask, ic.Val = in.Enc.FixedMaskVal()
		for _, f := range in.Enc.Fields {
			if f.Fixed {
				continue
			}
			switch f.Name {
			case "rd":
				ic.hasRd = true
			case "rd2":
				ic.hasRd2 = true
			}
			ic.fields = append(ic.fields, f)
		}
		for _, op := range in.Operands {
			if op.Kind == spec.OpImm && op.Width > 64 {
				return nil, fmt.Errorf("enc: %s: immediate %s wider than 64 bits", in.Name, op.Name)
			}
		}
		c.Insts = append(c.Insts, ic)
		c.ByName[in.Name] = ic
		sizes[ic.Size] = true
		if ic.Size > c.MaxSize {
			c.MaxSize = ic.Size
		}
	}
	for s := range sizes {
		c.Sizes = append(c.Sizes, s)
	}
	sort.Ints(c.Sizes)
	for _, s := range c.Sizes {
		var group []*InstCodec
		for _, ic := range c.Insts {
			if ic.Size == s {
				group = append(group, ic)
			}
		}
		c.tries[s] = buildTrie(group, 0)
	}
	for _, r := range t.Reserved {
		m, v := r.FixedMaskVal()
		c.resPats = append(c.resPats, resPat{size: r.SizeBytes(), mask: m, val: v})
	}
	return c, nil
}

// --- bit-level word helpers (bit i lives in byte i/8, position i%8) ---

func getBits(word []byte, hi, lo int) uint64 {
	var v uint64
	for b := hi; b >= lo; b-- {
		v = v<<1 | uint64(word[b/8]>>(uint(b)%8)&1)
	}
	return v
}

func setBits(word []byte, hi, lo int, v uint64) {
	for b := lo; b <= hi; b++ {
		if v>>(uint(b-lo))&1 == 1 {
			word[b/8] |= 1 << (uint(b) % 8)
		} else {
			word[b/8] &^= 1 << (uint(b) % 8)
		}
	}
}

// wordPair packs up to 16 bytes as two little-endian uint64 words.
func wordPair(word []byte) (p [2]uint64) {
	for i, by := range word {
		p[i/8] |= uint64(by) << (uint(i%8) * 8)
	}
	return p
}

func matches(p [2]uint64, mask, val [2]uint64) bool {
	return p[0]&mask[0] == val[0] && p[1]&mask[1] == val[1]
}

// Encode renders one instruction to its machine bytes.
func (ic *InstCodec) Encode(ops Operands) ([]byte, error) {
	word := make([]byte, ic.Size)
	for b := 0; b < ic.Inst.Enc.Width; b++ {
		w, s := b/64, uint(b%64)
		if ic.Mask[w]>>s&1 == 1 && ic.Val[w]>>s&1 == 1 {
			word[b/8] |= 1 << (uint(b) % 8)
		}
	}
	for _, f := range ic.fields {
		var v uint64
		switch {
		case f.Name == "rd" || f.Name == "rd2":
			n := ops.Rd
			if f.Name == "rd2" {
				n = ops.Rd2
			}
			if n < 0 || n >= 1<<uint(f.SrcWidth()) {
				return nil, fmt.Errorf("enc: %s: register number %d does not fit the %d-bit %s field",
					ic.Inst.Name, n, f.SrcWidth(), f.Name)
			}
			v = uint64(n)
		case ic.operand(f.Name).Kind != spec.OpImm:
			n, ok := ops.Regs[f.Name]
			if !ok {
				return nil, fmt.Errorf("enc: %s: missing register operand %s", ic.Inst.Name, f.Name)
			}
			if n < 0 || n >= 1<<uint(f.SrcWidth()) {
				return nil, fmt.Errorf("enc: %s: register number %d does not fit the %d-bit %s field",
					ic.Inst.Name, n, f.SrcWidth(), f.Name)
			}
			v = uint64(n)
		default:
			op := ic.operand(f.Name)
			iv, ok := ops.Imms[f.Name]
			if !ok {
				return nil, fmt.Errorf("enc: %s: missing immediate operand %s", ic.Inst.Name, f.Name)
			}
			if iv.W() != op.Width {
				return nil, fmt.Errorf("enc: %s: immediate %s is %d bits, operand is %d",
					ic.Inst.Name, f.Name, iv.W(), op.Width)
			}
			hi, lo := f.SrcHi, f.SrcLo
			if hi < 0 {
				hi, lo = op.Width-1, 0
			}
			v = iv.Extract(hi, lo).Uint64()
		}
		setBits(word, f.Hi, f.Lo, v)
	}
	return word, nil
}

// Decode extracts the operand fields from a word already known to match
// this instruction's fixed bits (the caller checks Mask/Val).
func (ic *InstCodec) Decode(word []byte) Operands {
	ops := Operands{Rd: -1, Rd2: -1, Regs: map[string]int{}, Imms: map[string]bv.BV{}}
	immBits := map[string]uint64{}
	for _, f := range ic.fields {
		v := getBits(word, f.Hi, f.Lo)
		switch {
		case f.Name == "rd":
			ops.Rd = int(v)
		case f.Name == "rd2":
			ops.Rd2 = int(v)
		case ic.operand(f.Name).Kind != spec.OpImm:
			ops.Regs[f.Name] = int(v)
		default:
			op := ic.operand(f.Name)
			lo := f.SrcLo
			if f.SrcHi < 0 {
				lo = 0
			}
			immBits[f.Name] |= v << uint(lo)
			if _, ok := ops.Imms[f.Name]; !ok {
				ops.Imms[f.Name] = bv.Zero(op.Width)
			}
		}
	}
	for name, bits := range immBits {
		ops.Imms[name] = bv.New(ic.operand(name).Width, bits)
	}
	return ops
}

func (ic *InstCodec) operand(name string) *spec.Operand {
	for i := range ic.Inst.Operands {
		if ic.Inst.Operands[i].Name == name {
			return &ic.Inst.Operands[i]
		}
	}
	return &spec.Operand{}
}

// HasRd reports whether the encoding carries a destination-register field.
func (ic *InstCodec) HasRd() bool { return ic.hasRd }

// HasRd2 reports whether the encoding carries a second destination field.
func (ic *InstCodec) HasRd2() bool { return ic.hasRd2 }

// DecodeAt decodes the instruction starting at code[off:]. Sizes are
// tried ascending; the pairwise fixed-bit conflict guarantee from spec
// checking makes the first match the only match. Returns the matched
// instruction codec, its operands, and the encoded size.
func (c *Codec) DecodeAt(code []byte, off int) (*InstCodec, Operands, int, error) {
	avail := len(code) - off
	for _, s := range c.Sizes {
		if s > avail {
			break
		}
		word := code[off : off+s]
		p := wordPair(word)
		if ic := c.tries[s].lookup(p); ic != nil {
			return ic, ic.Decode(word), s, nil
		}
	}
	for _, r := range c.resPats {
		if r.size <= avail && matches(wordPair(code[off:off+r.size]), r.mask, r.val) {
			return nil, Operands{}, 0, fmt.Errorf("%w (%d-byte pattern at offset %d)", ErrReserved, r.size, off)
		}
	}
	return nil, Operands{}, 0, fmt.Errorf("%w at offset %d", ErrUnknown, off)
}

// decodeLinear is the trie-free reference decoder used to cross-check
// the trie (exported to tests via export_test.go).
func (c *Codec) decodeLinear(code []byte, off int) (*InstCodec, int) {
	avail := len(code) - off
	for _, s := range c.Sizes {
		if s > avail {
			break
		}
		p := wordPair(code[off : off+s])
		for _, ic := range c.Insts {
			if ic.Size == s && matches(p, ic.Mask, ic.Val) {
				return ic, s
			}
		}
	}
	return nil, 0
}
