package enc_test

import (
	"bytes"
	"errors"
	"math/bits"
	"os"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/enc"
	"iselgen/internal/isa"
	"iselgen/internal/isa/aarch64"
	"iselgen/internal/isa/riscv"
	"iselgen/internal/isa/x86"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

// mini16 is a complete 16-bit ISA small enough to sweep its entire
// 65536-word opcode space exhaustively.
const mini16 = `
inst MADD(a: reg64, b: reg64) { rd = a + b; } enc(16) { [3:0]=0x1; [7:4]=rd; [11:8]=a; [15:12]=b; }
inst MSUB(a: reg64, b: reg64) { rd = a - b; } enc(16) { [3:0]=0x2; [7:4]=rd; [11:8]=a; [15:12]=b; }
inst MLI(k: imm8)             { rd = zext(k, 64); } enc(16) { [3:0]=0x3; [7:4]=rd; [15:8]=k; }
inst MNOT(a: reg64)           { rd = ~a; } enc(16) { [3:0]=0x4; [7:4]=rd; [11:8]=a; [15:12]=0; }
inst MMV(a: reg64)            { rd = a; } enc(16) { [3:0]=0x5; [7:4]=rd; [11:8]=a; [15:12]=0; }
inst MJ(off: imm8)            { pc = pc + sext(concat(off, 0:1), 64); } enc(16) { [3:0]=0x6; [7:4]=0; [15:8]=off; }
inst MBNZ(c: reg64, off: imm8) { if (c != 0) { pc = pc + sext(concat(off, 0:1), 64); } } enc(16) { [3:0]=0x7; [7:4]=c; [15:8]=off; }
reserved(16) { [3:0]=0x0; }
`

func loadMini(t *testing.T) *enc.Codec {
	t.Helper()
	tgt, err := isa.LoadTarget(term.NewBuilder(), "mini16", mini16, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := enc.NewCodec(tgt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMini16ExhaustiveSweep decodes every possible 16-bit word and
// checks the global decode invariants: at most one instruction matches
// any word (uniqueness), the trie agrees with the linear reference
// decoder everywhere, every decoded word re-encodes byte-identically,
// and undecodable words split into reserved vs unknown exactly as the
// spec declares.
func TestMini16ExhaustiveSweep(t *testing.T) {
	c := loadMini(t)
	decoded := map[string]int{}
	reserved, unknown := 0, 0
	for w := 0; w < 1<<16; w++ {
		word := []byte{byte(w), byte(w >> 8)}
		all := c.AllMatches(word)
		if len(all) > 1 {
			t.Fatalf("word %04x decodes ambiguously: %s and %s", w, all[0].Inst.Name, all[1].Inst.Name)
		}
		ic, ops, size, err := c.DecodeAt(word, 0)
		lic, lsize := c.DecodeLinear(word, 0)
		if ic != lic || (ic != nil && size != lsize) {
			t.Fatalf("word %04x: trie and linear decoders disagree", w)
		}
		if err != nil {
			if len(all) != 0 {
				t.Fatalf("word %04x: decode error %v but %s matches", w, err, all[0].Inst.Name)
			}
			if errors.Is(errUnwrap(err), enc.ErrReserved) != c.MatchesReserved(word) {
				t.Fatalf("word %04x: reserved classification wrong: %v", w, err)
			}
			if c.MatchesReserved(word) {
				reserved++
			} else {
				unknown++
			}
			continue
		}
		decoded[ic.Inst.Name]++
		re, rerr := ic.Encode(ops)
		if rerr != nil {
			t.Fatalf("word %04x: re-encode %s: %v", w, ic.Inst.Name, rerr)
		}
		if !bytes.Equal(re, word) {
			t.Fatalf("word %04x: %s re-encodes to %x", w, ic.Inst.Name, re)
		}
	}
	// Each instruction must claim exactly 2^(free bits) words.
	for _, ic := range c.Insts {
		free := ic.Size*8 - bits.OnesCount64(ic.Mask[0]) - bits.OnesCount64(ic.Mask[1])
		if want := 1 << uint(free); decoded[ic.Inst.Name] != want {
			t.Errorf("%s: decoded %d words, want %d", ic.Inst.Name, decoded[ic.Inst.Name], want)
		}
	}
	if reserved != 1<<12 {
		t.Errorf("reserved words = %d, want %d", reserved, 1<<12)
	}
	if unknown == 0 {
		t.Error("no unknown words in a sparse opcode space")
	}
}

func errUnwrap(err error) error { return err }

func loadTargets(t *testing.T) map[string]*isa.Target {
	t.Helper()
	out := map[string]*isa.Target{}
	if tgt, err := riscv.Load(term.NewBuilder()); err != nil {
		t.Fatal(err)
	} else {
		out["riscv"] = tgt
	}
	if tgt, err := aarch64.Load(term.NewBuilder()); err != nil {
		t.Fatal(err)
	} else {
		out["aarch64"] = tgt
	}
	if tgt, err := x86.Load(term.NewBuilder()); err != nil {
		t.Fatal(err)
	} else {
		out["x86"] = tgt
	}
	src, err := os.ReadFile("../../examples/newisa/zetacore.spec")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := isa.LoadTarget(term.NewBuilder(), "zetacore", string(src), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out["zetacore"] = tgt
	return out
}

func randomOps(rng *bv.RNG, ic *enc.InstCodec, regBits int) enc.Operands {
	ops := enc.Operands{Rd: -1, Rd2: -1, Regs: map[string]int{}, Imms: map[string]bv.BV{}}
	if ic.HasRd() {
		ops.Rd = rng.Intn(1 << uint(regBits))
	}
	if ic.HasRd2() {
		ops.Rd2 = rng.Intn(1 << uint(regBits))
	}
	for _, op := range ic.Inst.Operands {
		if op.Kind == spec.OpImm {
			ops.Imms[op.Name] = rng.BV(op.Width)
		} else {
			ops.Regs[op.Name] = rng.Intn(1 << uint(regBits))
		}
	}
	return ops
}

func opsEqual(a, b enc.Operands) bool {
	if a.Rd != b.Rd || a.Rd2 != b.Rd2 || len(a.Regs) != len(b.Regs) || len(a.Imms) != len(b.Imms) {
		return false
	}
	for k, v := range a.Regs {
		if b.Regs[k] != v {
			return false
		}
	}
	for k, v := range a.Imms {
		if b.Imms[k] != v {
			return false
		}
	}
	return true
}

// TestTargetsRoundTrip checks, for every instruction of every encoded
// target, that encode → decode → re-encode is the identity on random
// operand assignments, and that the decode is unique across the whole
// instruction set (no other instruction matches the same bytes).
func TestTargetsRoundTrip(t *testing.T) {
	for name, tgt := range loadTargets(t) {
		t.Run(name, func(t *testing.T) {
			c, err := enc.NewCodec(tgt)
			if err != nil {
				t.Fatal(err)
			}
			rng := bv.NewRNG(0xD15A53)
			for _, ic := range c.Insts {
				for trial := 0; trial < 16; trial++ {
					ops := randomOps(rng, ic, tgt.RegNumBits)
					word, err := ic.Encode(ops)
					if err != nil {
						t.Fatalf("%s: encode: %v", ic.Inst.Name, err)
					}
					if all := c.AllMatches(word); len(all) != 1 || all[0] != ic {
						t.Fatalf("%s: bytes %s match %d instructions", ic.Inst.Name, enc.HexBytes(word), len(all))
					}
					dic, dops, size, err := c.DecodeAt(word, 0)
					if err != nil {
						t.Fatalf("%s: decode %s: %v", ic.Inst.Name, enc.HexBytes(word), err)
					}
					if dic != ic || size != ic.Size {
						t.Fatalf("%s: decoded as %s", ic.Inst.Name, dic.Inst.Name)
					}
					if !opsEqual(normalize(ops), normalize(dops)) {
						t.Fatalf("%s: operand mismatch: %+v vs %+v", ic.Inst.Name, ops, dops)
					}
					re, err := dic.Encode(dops)
					if err != nil || !bytes.Equal(re, word) {
						t.Fatalf("%s: re-encode %s -> %s (%v)", ic.Inst.Name, enc.HexBytes(word), enc.HexBytes(re), err)
					}
				}
			}
		})
	}
}

// normalize drops empty maps so decoded and source operands compare.
func normalize(o enc.Operands) enc.Operands {
	if o.Regs == nil {
		o.Regs = map[string]int{}
	}
	if o.Imms == nil {
		o.Imms = map[string]bv.BV{}
	}
	return o
}

// TestTrieMatchesLinear fuzzes random byte windows (including mutated
// valid encodings) and checks the trie decoder against the linear
// reference on every offset.
func TestTrieMatchesLinear(t *testing.T) {
	for name, tgt := range loadTargets(t) {
		t.Run(name, func(t *testing.T) {
			c, err := enc.NewCodec(tgt)
			if err != nil {
				t.Fatal(err)
			}
			rng := bv.NewRNG(0xBEEF)
			buf := make([]byte, 64)
			for trial := 0; trial < 2000; trial++ {
				if trial%2 == 0 {
					for i := range buf {
						buf[i] = byte(rng.Uint64())
					}
				} else {
					// Seed with a valid encoding, then flip a few bits.
					ic := c.Insts[rng.Intn(len(c.Insts))]
					w, err := ic.Encode(randomOps(rng, ic, tgt.RegNumBits))
					if err != nil {
						t.Fatal(err)
					}
					copy(buf, w)
					for k := 0; k < 3; k++ {
						b := rng.Intn(len(buf) * 8)
						buf[b/8] ^= 1 << uint(b%8)
					}
				}
				for off := 0; off < len(buf); off++ {
					ic, _, size, err := c.DecodeAt(buf, off)
					lic, lsize := c.DecodeLinear(buf, off)
					if ic != lic {
						t.Fatalf("offset %d: trie=%v linear=%v", off, ic, lic)
					}
					if err == nil && size != lsize {
						t.Fatalf("offset %d: trie size %d, linear %d", off, size, lsize)
					}
				}
			}
		})
	}
}

// TestRiscvGoldenBytes pins known RV64 words: the bundled spec uses the
// real RISC-V formats, so the assembler must reproduce binutils-
// compatible bytes for the base ISA (the custom-0 idioms excepted).
func TestRiscvGoldenBytes(t *testing.T) {
	tgt, err := riscv.Load(term.NewBuilder())
	if err != nil {
		t.Fatal(err)
	}
	c, err := enc.NewCodec(tgt)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ops  enc.Operands
		want []byte // little-endian, as in memory
	}{
		// addi x1, x2, 3 = 0x00310093
		{"ADDI", enc.Operands{Rd: 1, Regs: map[string]int{"rs1": 2},
			Imms: map[string]bv.BV{"imm": bv.New(12, 3)}}, []byte{0x93, 0x00, 0x31, 0x00}},
		// add x3, x1, x2 = 0x002081b3
		{"ADD", enc.Operands{Rd: 3, Regs: map[string]int{"rs1": 1, "rs2": 2}},
			[]byte{0xb3, 0x81, 0x20, 0x00}},
		// lui x5, 0x12345 = 0x123452b7
		{"LUI", enc.Operands{Rd: 5,
			Imms: map[string]bv.BV{"imm": bv.New(20, 0x12345)}}, []byte{0xb7, 0x52, 0x34, 0x12}},
		// sw x3, 8(x2) = 0x00312423
		{"SW", enc.Operands{Regs: map[string]int{"rs1": 2, "rs2": 3},
			Imms: map[string]bv.BV{"imm": bv.New(12, 8)}}, []byte{0x23, 0x24, 0x31, 0x00}},
		// beq x1, x2, -8 = 0xfe208ce3 (operand imm is the halfword offset -4)
		{"BEQ", enc.Operands{Regs: map[string]int{"rs1": 1, "rs2": 2},
			Imms: map[string]bv.BV{"imm": bv.NewInt(12, -4)}}, []byte{0xe3, 0x8c, 0x20, 0xfe}},
		// ld x7, 16(x6) = 0x01033383
		{"LD", enc.Operands{Rd: 7, Regs: map[string]int{"rs1": 6},
			Imms: map[string]bv.BV{"imm": bv.New(12, 16)}}, []byte{0x83, 0x33, 0x03, 0x01}},
	}
	for _, tc := range cases {
		ic := c.ByName[tc.name]
		if ic == nil {
			t.Fatalf("no codec for %s", tc.name)
		}
		got, err := ic.Encode(normalize(tc.ops))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(got, tc.want) {
			t.Errorf("%s: got %s, want %s", tc.name, enc.HexBytes(got), enc.HexBytes(tc.want))
		}
	}
}

// TestTrieStats sanity-checks the dispatch structure: tries exist for
// every size class and leaves stay narrow (decode is near-constant).
func TestTrieStats(t *testing.T) {
	for name, tgt := range loadTargets(t) {
		c, err := enc.NewCodec(tgt)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, st := range c.Stats() {
			total += st.Insts
			if st.MaxLeaf > 4 {
				t.Errorf("%s: %d-byte trie has a %d-wide leaf", name, st.Size, st.MaxLeaf)
			}
		}
		if total != len(tgt.Insts) {
			t.Errorf("%s: tries cover %d of %d instructions", name, total, len(tgt.Insts))
		}
	}
}
