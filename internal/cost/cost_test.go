package cost

import (
	"strings"
	"testing"

	"iselgen/internal/isa"
	"iselgen/internal/isa/aarch64"
	"iselgen/internal/mir"
	"iselgen/internal/term"
)

func TestVectorOrdering(t *testing.T) {
	a := Vector{Latency: 2, Size: 16}
	b := Vector{Latency: 3, Size: 4}
	if !a.Less(b) {
		t.Errorf("latency must dominate: %v < %v", a, b)
	}
	c := Vector{Latency: 2, Size: 8}
	if !c.Less(a) || a.Less(c) {
		t.Errorf("size must break latency ties: %v < %v", c, a)
	}
	if (Vector{}).IsZero() != true || a.IsZero() {
		t.Error("IsZero misclassifies")
	}
	if got := a.Add(b); got != (Vector{Latency: 5, Size: 20}) {
		t.Errorf("Add = %v", got)
	}
}

func TestVectorStringRoundTrip(t *testing.T) {
	v := Vector{Latency: 12, Size: 8}
	got, err := ParseVector(v.String())
	if err != nil || got != v {
		t.Fatalf("ParseVector(%q) = %v, %v", v.String(), got, err)
	}
	for _, bad := range []string{"", "3", "a,b", "-1,4"} {
		if _, err := ParseVector(bad); err == nil {
			t.Errorf("ParseVector(%q) accepted", bad)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	tb := NewTable("demo")
	tb.Latency["MUL"] = 3
	tb.Latency["DIV"] = 20
	tb.Size["BIGOP"] = 8

	text := tb.Format()
	back, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Target != "demo" {
		t.Errorf("target %q", back.Target)
	}
	if back.Format() != text {
		t.Errorf("Format not a fixpoint:\n%s\nvs\n%s", text, back.Format())
	}
	if back.Version() != tb.Version() {
		t.Errorf("version changed across round-trip")
	}
	if back.LatencyOf("MUL") != 3 || back.LatencyOf("ADD") != 1 || back.SizeOf("BIGOP") != 8 {
		t.Errorf("lookups wrong after round-trip")
	}
}

func TestVersionDistinguishesTables(t *testing.T) {
	a := NewTable("demo")
	b := NewTable("demo")
	if a.Version() != b.Version() {
		t.Fatal("equal tables must share a version")
	}
	b.Latency["MUL"] = 3
	if a.Version() == b.Version() {
		t.Fatal("distinct tables must have distinct versions")
	}
	var nilT *Table
	if nilT.Version() != "-" {
		t.Fatal("nil table version sentinel")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"MUL latency=3 size=4\n",                         // no header
		"# cost table x\nMUL latency=3\n",                // missing size
		"# cost table x\nMUL cycles=3 size=4\n",          // wrong key
		"# cost table x\nMUL latency=0 size=4\n",         // non-positive
		"# cost table x\ndefault latency=a size=4\n",     // non-numeric
		"# cost table x\nMUL latency=3 size=4 extra=1\n", // extra field
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse accepted %q", bad)
		}
	}
}

func TestFromTargetMatchesSim(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := aarch64.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	tb := FromTarget(tgt)
	for _, in := range tgt.Insts {
		if got := tb.LatencyOf(in.Name); got != in.Latency {
			t.Errorf("%s latency %d, want %d", in.Name, got, in.Latency)
		}
		if got := tb.SizeOf(in.Name); got != in.Size {
			t.Errorf("%s size %d, want %d", in.Name, got, in.Size)
		}
	}
	if tb.LatencyOf("MULX") <= 1 {
		t.Error("expected a multi-cycle multiply in the aarch64 table")
	}
}

func TestSeqVector(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := aarch64.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	tb := FromTarget(tgt)
	add := tgt.ByName("ADDXrr")
	mul := tgt.ByName("MULX")
	if add == nil || mul == nil {
		t.Skip("expected instructions missing")
	}
	seq := isa.Single(b, mul)
	s2, err := isa.Append(b, seq, add, []string{"rn"}, false)
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{
		Latency: int64(tb.LatencyOf("MULX") + tb.LatencyOf("ADDXrr")),
		Size:    int64(tb.SizeOf("MULX") + tb.SizeOf("ADDXrr")),
	}
	if got := tb.SeqVector(s2); got != want {
		t.Errorf("SeqVector = %v, want %v", got, want)
	}
}

func TestStaticOfAndPseudo(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := aarch64.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	tb := FromTarget(tgt)
	mul := tgt.ByName("MULX")
	f := &mir.Func{Name: "t", Blocks: []*mir.Block{{Insts: []*mir.Inst{
		{Meta: mul},
		{Pseudo: mir.PCopy},
	}}}}
	want := Vector{
		Latency: int64(tb.LatencyOf("MULX")) + Pseudo.Latency,
		Size:    int64(tb.SizeOf("MULX")) + Pseudo.Size,
	}
	if got := StaticOf(f, tb); got != want {
		t.Errorf("StaticOf = %v, want %v", got, want)
	}
	// Legacy accounting (nil table) agrees with FromTarget on this
	// function, since the table was derived from the same metadata.
	if got := StaticOf(f, nil); got != want {
		t.Errorf("StaticOf(nil) = %v, want %v", got, want)
	}
	if strings.Contains(tb.Format(), "default latency=1 size=4") == false {
		t.Error("defaults missing from Format")
	}
}
