// Package cost defines per-target instruction cost models: a latency
// and size vector per ISA opcode, assembled into a versioned, hashable
// table. The paper ranks synthesized rules by operand count (§V-A3);
// a cost table refines that with the per-opcode cycle latencies and
// encoding sizes the simulator already carries, so rule ranking at
// synthesis time and tiling at selection time optimize what the
// evaluation actually measures (cycles first, bytes as tie-break —
// the metric of Daly et al.'s lowest-cost rewrite rules).
//
// The table format is line-based and deterministic, so its content hash
// (Version) can participate in cache keys: two services with the same
// spec but different cost tables must never share rule-library
// artifacts.
package cost

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"iselgen/internal/isa"
	"iselgen/internal/mir"
)

// Vector is a two-component cost: cycles and encoding bytes. Vectors
// compare lexicographically — latency dominates, size breaks ties —
// matching how the evaluation reports results (runtime as the headline,
// binary size as §VIII-C's secondary figure).
type Vector struct {
	Latency int64 `json:"latency"`
	Size    int64 `json:"size"`
}

// Add returns the component-wise sum.
func (v Vector) Add(o Vector) Vector {
	return Vector{Latency: v.Latency + o.Latency, Size: v.Size + o.Size}
}

// Less orders vectors lexicographically: latency first, size second.
func (v Vector) Less(o Vector) bool {
	if v.Latency != o.Latency {
		return v.Latency < o.Latency
	}
	return v.Size < o.Size
}

// IsZero reports whether both components are zero (the "no cost
// recorded" sentinel: no real instruction sequence is free).
func (v Vector) IsZero() bool { return v.Latency == 0 && v.Size == 0 }

func (v Vector) String() string {
	return fmt.Sprintf("%d,%d", v.Latency, v.Size)
}

// ParseVector parses the String form ("latency,size").
func ParseVector(s string) (Vector, error) {
	lat, sz, ok := strings.Cut(s, ",")
	if !ok {
		return Vector{}, fmt.Errorf("cost: vector %q: want latency,size", s)
	}
	l, err1 := strconv.ParseInt(lat, 10, 64)
	z, err2 := strconv.ParseInt(sz, 10, 64)
	if err1 != nil || err2 != nil || l < 0 || z < 0 {
		return Vector{}, fmt.Errorf("cost: vector %q: bad component", s)
	}
	return Vector{Latency: l, Size: z}, nil
}

// Pseudo is the cost charged for pseudo-instructions (copies, returns):
// they stand in for a register move, one cycle and one word, matching
// the simulator's accounting for Meta-less instructions.
var Pseudo = Vector{Latency: 1, Size: 4}

// Table is a per-target cost model: latency and size per opcode name,
// with defaults for opcodes the table does not list. The zero defaults
// are normalized to 1 cycle / 4 bytes, the simulator's own fallback.
type Table struct {
	Target         string
	Latency        map[string]int
	Size           map[string]int
	DefaultLatency int
	DefaultSize    int
}

// NewTable returns an empty table with the standard defaults.
func NewTable(target string) *Table {
	return &Table{
		Target:         target,
		Latency:        map[string]int{},
		Size:           map[string]int{},
		DefaultLatency: 1,
		DefaultSize:    4,
	}
}

// FromTarget derives the table from a loaded target's instruction
// metadata — the same per-opcode latencies and encoding sizes the
// simulator charges, so the model's static cost predicts the measured
// dynamic cost exactly on straight-line code.
func FromTarget(tgt *isa.Target) *Table {
	t := NewTable(tgt.Name)
	for _, in := range tgt.Insts {
		if in.Latency != t.DefaultLatency {
			t.Latency[in.Name] = in.Latency
		}
		if in.Size != t.DefaultSize {
			t.Size[in.Name] = in.Size
		}
	}
	return t
}

// LatencyOf returns the cycle cost of an opcode.
func (t *Table) LatencyOf(name string) int {
	if l, ok := t.Latency[name]; ok {
		return l
	}
	if t.DefaultLatency > 0 {
		return t.DefaultLatency
	}
	return 1
}

// SizeOf returns the encoding size of an opcode in bytes.
func (t *Table) SizeOf(name string) int {
	if s, ok := t.Size[name]; ok {
		return s
	}
	if t.DefaultSize > 0 {
		return t.DefaultSize
	}
	return 4
}

// SeqVector is the model cost of an instruction sequence: the sum of
// its opcodes' vectors. This is the per-rule cost the synthesis stamps
// into libraries (rules.Rule.CostV).
func (t *Table) SeqVector(s *isa.Sequence) Vector {
	var v Vector
	for _, in := range s.Insts {
		v.Latency += int64(t.LatencyOf(in.Name))
		v.Size += int64(t.SizeOf(in.Name))
	}
	return v
}

// InstVector is the model cost of one machine instruction; pseudos
// (copies, returns) are charged the Pseudo vector.
func (t *Table) InstVector(in *mir.Inst) Vector {
	if in.Meta == nil {
		return Pseudo
	}
	return Vector{
		Latency: int64(t.LatencyOf(in.Meta.Name)),
		Size:    int64(t.SizeOf(in.Meta.Name)),
	}
}

// StaticOf sums the model cost over every instruction of a selected
// function — the static cost the optimal selector minimizes and
// iselbench reports next to the simulator's dynamic cycles. A nil table
// falls back to the instruction metadata (the legacy accounting).
func StaticOf(f *mir.Func, t *Table) Vector {
	var v Vector
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if t != nil {
				v = v.Add(t.InstVector(in))
			} else {
				v.Latency += int64(in.Latency())
				v.Size += int64(in.Size())
			}
		}
	}
	return v
}

// Format renders the table in its canonical line-based text form:
//
//	# cost table <target>
//	default latency=<n> size=<n>
//	<opcode> latency=<n> size=<n>
//
// with opcode lines name-sorted and only non-default entries emitted,
// so two semantically equal tables render byte-identically — the
// property Version's content hash relies on.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# cost table %s\n", t.Target)
	fmt.Fprintf(&sb, "default latency=%d size=%d\n", t.LatencyOf(""), t.SizeOf(""))
	names := map[string]bool{}
	for n := range t.Latency {
		names[n] = true
	}
	for n := range t.Size {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		if n != "" {
			sorted = append(sorted, n)
		}
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		lat, sz := t.LatencyOf(n), t.SizeOf(n)
		if lat == t.LatencyOf("") && sz == t.SizeOf("") {
			continue // redundant entry; omitting it keeps Format canonical
		}
		fmt.Fprintf(&sb, "%s latency=%d size=%d\n", n, lat, sz)
	}
	return sb.String()
}

// Version is the content hash of the canonical Format — the string
// cache keys fold in so artifacts synthesized under different cost
// models never alias.
func (t *Table) Version() string {
	if t == nil {
		return "-"
	}
	sum := sha256.Sum256([]byte(t.Format()))
	return hex.EncodeToString(sum[:8])
}

// Parse reads a table back from its Format text. Unknown directives are
// an error: a cost table is an input to cache-key derivation, so silent
// tolerance of typos would silently alias distinct configurations.
func Parse(text string) (*Table, error) {
	var t *Table
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# cost table "):
			t = NewTable(strings.TrimPrefix(line, "# cost table "))
			continue
		case strings.HasPrefix(line, "#"):
			continue
		}
		if t == nil {
			return nil, fmt.Errorf("cost: line %d: missing \"# cost table <target>\" header", lineNo)
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("cost: line %d: want \"<name> latency=N size=N\"", lineNo)
		}
		lat, err1 := parseKV(fields[1], "latency")
		sz, err2 := parseKV(fields[2], "size")
		if err1 != nil {
			return nil, fmt.Errorf("cost: line %d: %w", lineNo, err1)
		}
		if err2 != nil {
			return nil, fmt.Errorf("cost: line %d: %w", lineNo, err2)
		}
		if fields[0] == "default" {
			t.DefaultLatency, t.DefaultSize = lat, sz
		} else {
			if lat != t.DefaultLatency {
				t.Latency[fields[0]] = lat
			}
			if sz != t.DefaultSize {
				t.Size[fields[0]] = sz
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("cost: empty table")
	}
	return t, nil
}

func parseKV(tok, key string) (int, error) {
	k, v, ok := strings.Cut(tok, "=")
	if !ok || k != key {
		return 0, fmt.Errorf("want %s=N, got %q", key, tok)
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad %s value %q", key, v)
	}
	return n, nil
}
