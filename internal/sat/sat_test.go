package sat

import (
	"testing"

	"iselgen/internal/bv"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(LitOf(a, false)) {
		t.Fatal("unit clause made formula unsat")
	}
	st, model := s.SolveModel()
	if st != Sat {
		t.Fatalf("status = %v", st)
	}
	if !model[a] {
		t.Error("unit not propagated into model")
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(LitOf(a, false))
	if s.AddClause(LitOf(a, true)) {
		t.Error("contradictory units not detected")
	}
	if st := s.Solve(); st != Unsat {
		t.Errorf("status = %v", st)
	}
}

func TestImplicationChain(t *testing.T) {
	// x1 ∧ (¬x1∨x2) ∧ (¬x2∨x3) ∧ ... forces all true.
	s := New()
	const n = 50
	vs := make([]int, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	s.AddClause(LitOf(vs[0], false))
	for i := 1; i < n; i++ {
		s.AddClause(LitOf(vs[i-1], true), LitOf(vs[i], false))
	}
	st, model := s.SolveModel()
	if st != Sat {
		t.Fatalf("status = %v", st)
	}
	for i, v := range vs {
		if !model[v] {
			t.Fatalf("x%d false in model", i)
		}
	}
	// Now force the last one false: unsat.
	s.AddClause(LitOf(vs[n-1], true))
	if st := s.Solve(); st != Unsat {
		t.Errorf("status after contradiction = %v", st)
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes. Unsat, and
// requires genuine conflict-driven search.
func pigeonhole(s *Solver, pigeons, holes int) {
	p := make([][]int, pigeons)
	for i := range p {
		p[i] = make([]int, holes)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < pigeons; i++ {
		lits := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			lits[j] = LitOf(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(LitOf(p[i][j], true), LitOf(p[k][j], true))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if st := s.Solve(); st != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want unsat", n+1, n, st)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	st, model := s.SolveModel()
	if st != Sat {
		t.Fatalf("PHP(5,5) = %v, want sat", st)
	}
	if model == nil {
		t.Fatal("no model")
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// (a -> b), (b -> c)
	s.AddClause(LitOf(a, true), LitOf(b, false))
	s.AddClause(LitOf(b, true), LitOf(c, false))
	// Assuming a and ¬c is unsat.
	if st := s.Solve(LitOf(a, false), LitOf(c, true)); st != Unsat {
		t.Errorf("assume a, ¬c = %v, want unsat", st)
	}
	// Solver must remain usable: without assumptions it is sat.
	if st := s.Solve(); st != Sat {
		t.Errorf("no assumptions = %v, want sat", st)
	}
	// Assuming just a is sat, and the model must satisfy b and c.
	st, model := s.SolveModel(LitOf(a, false))
	if st != Sat {
		t.Fatalf("assume a = %v", st)
	}
	if !model[a] || !model[b] || !model[c] {
		t.Errorf("model %v does not propagate implications", model[1:])
	}
}

func TestBudgetUnknown(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8) // hard enough to exceed a tiny budget
	s.MaxConflicts = 10
	if st := s.Solve(); st != Unknown {
		t.Errorf("status = %v, want unknown under budget", st)
	}
}

// checkModel verifies a model against a clause list.
func checkModel(t *testing.T, clauses [][]Lit, model []bool) {
	t.Helper()
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if model[l.Var()] != l.Neg() {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("clause %v violated by model", c)
		}
	}
}

// bruteForce decides satisfiability of a small formula by enumeration.
func bruteForce(nVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, c := range clauses {
			cok := false
			for _, l := range c {
				val := m>>(l.Var()-1)&1 == 1
				if val != l.Neg() {
					cok = true
					break
				}
			}
			if !cok {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandom3SATAgainstBruteForce fuzzes the solver on random small
// formulas and cross-checks both the verdict and the model.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := bv.NewRNG(2024)
	for trial := 0; trial < 300; trial++ {
		nVars := 3 + rng.Intn(10)
		nClauses := 2 + rng.Intn(5*nVars)
		var clauses [][]Lit
		for i := 0; i < nClauses; i++ {
			width := 1 + rng.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				c[j] = LitOf(1+rng.Intn(nVars), rng.Intn(2) == 1)
			}
			clauses = append(clauses, c)
		}
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		want := bruteForce(nVars, clauses)
		if !ok {
			if want {
				t.Fatalf("trial %d: AddClause said unsat, brute force says sat", trial)
			}
			continue
		}
		st, model := s.SolveModel()
		if (st == Sat) != want {
			t.Fatalf("trial %d: solver %v, brute force sat=%v (%d vars, %d clauses)",
				trial, st, want, nVars, nClauses)
		}
		if st == Sat {
			checkModel(t, clauses, model)
		}
	}
}

// TestIncrementalReuse exercises solving repeatedly with growing clauses.
func TestIncrementalReuse(t *testing.T) {
	s := New()
	vs := make([]int, 10)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	for i := 0; i < len(vs)-1; i++ {
		s.AddClause(LitOf(vs[i], true), LitOf(vs[i+1], false))
		if st := s.Solve(); st != Sat {
			t.Fatalf("iteration %d unsat", i)
		}
	}
	s.AddClause(LitOf(vs[0], false))
	s.AddClause(LitOf(vs[len(vs)-1], true))
	if st := s.Solve(); st != Unsat {
		t.Errorf("final = %v, want unsat", st)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestLitEncoding(t *testing.T) {
	l := LitOf(7, true)
	if l.Var() != 7 || !l.Neg() {
		t.Errorf("LitOf(7,true) = var %d neg %v", l.Var(), l.Neg())
	}
	if f := l.Flip(); f.Var() != 7 || f.Neg() {
		t.Errorf("flip = %v", f)
	}
	if l.String() != "-7" || l.Flip().String() != "7" {
		t.Errorf("strings: %q %q", l.String(), l.Flip().String())
	}
}

func TestClauseDBReduction(t *testing.T) {
	// Solve something with enough conflicts to trigger reduceDB; verify
	// the result is still correct afterwards.
	s := New()
	pigeonhole(s, 8, 7)
	if st := s.Solve(); st != Unsat {
		t.Errorf("PHP(8,7) = %v, want unsat", st)
	}
	if s.Conflicts == 0 {
		t.Error("expected conflicts")
	}
}
