// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver: two-watched-literal propagation, first-UIP conflict analysis
// with recursive clause minimization, exponential VSIDS branching with
// phase saving, Luby-sequence restarts, and activity-based learned-clause
// database reduction.
//
// Together with package bitblast it forms the reproduction's stand-in for
// Z3 (the paper's SMT backend): the paper only needs a decision procedure
// for quantifier-free fixed-width bitvector equivalence with a per-query
// timeout, which bit-blasting plus CDCL provides. The timeout is expressed
// as a deterministic conflict/propagation budget rather than wall-clock
// time so that experiments are reproducible.
package sat

import "fmt"

// Lit is a literal: variable index (1-based) shifted left once, low bit
// set for negation. LitOf(3, false) is "x3", LitOf(3, true) is "¬x3".
type Lit uint32

// LitOf returns the literal for variable v (1-based), negated if neg.
func LitOf(v int, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable (1-based).
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Flip returns the complementary literal.
func (l Lit) Flip() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

// Status is a solver verdict.
type Status int

// Solver verdicts. Unknown means the budget was exhausted.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clauseRef int32

const refNone clauseRef = -1

type clause struct {
	lits     []Lit
	activity float64
	learned  bool
}

type watcher struct {
	ref     clauseRef
	blocker Lit // cached literal; if true, no need to inspect the clause
}

type varData struct {
	reason   clauseRef
	level    int32
	phase    bool // saved phase: last assigned polarity
	activity float64
	seen     bool
	heapIdx  int32
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses  []clause
	watches  [][]watcher // indexed by Lit
	assign   []lbool     // indexed by Lit; assign[l] is the value of literal l
	vars     []varData   // 1-based; vars[0] unused
	trail    []Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	heap []int32 // max-heap of variable indices by activity

	varInc    float64
	clauseInc float64

	// Budget: a query stops with Unknown once Conflicts exceeds
	// MaxConflicts or Propagations exceeds MaxPropagations (if nonzero).
	MaxConflicts    int64
	MaxPropagations int64

	// Statistics.
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learned      int64
	Restarts     int64

	unsat bool // established at level 0
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, clauseInc: 1}
	s.vars = make([]varData, 1)
	s.watches = make([][]watcher, 2)
	s.assign = make([]lbool, 2)
	return s
}

// NumVars returns the number of variables allocated.
func (s *Solver) NumVars() int { return len(s.vars) - 1 }

// Unsatisfiable reports whether the clause database has been proven
// unsatisfiable at level 0 — a sticky state: every later Solve returns
// Unsat regardless of assumptions, so incremental users must discard
// the solver once this reports true.
func (s *Solver) Unsatisfiable() bool { return s.unsat }

// NewVar allocates a fresh variable and returns its 1-based index.
func (s *Solver) NewVar() int {
	s.vars = append(s.vars, varData{reason: refNone, level: -1, heapIdx: -1})
	s.watches = append(s.watches, nil, nil)
	s.assign = append(s.assign, lUndef, lUndef)
	v := len(s.vars) - 1
	s.heapInsert(int32(v))
	return v
}

func (s *Solver) value(l Lit) lbool { return s.assign[l] }

func (s *Solver) level() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. Returns false if the
// formula is already unsatisfiable at level 0.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	if s.level() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Normalize: drop duplicate and false literals, detect tautologies.
	norm := lits[:0:0]
	for _, l := range lits {
		if l.Var() <= 0 || l.Var() >= len(s.vars) {
			panic(fmt.Sprintf("sat: literal %v references unallocated variable", l))
		}
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue
		}
		dup := false
		for _, m := range norm {
			if m == l {
				dup = true
				break
			}
			if m == l.Flip() {
				return true // tautology
			}
		}
		if !dup {
			norm = append(norm, l)
		}
	}
	switch len(norm) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.uncheckedEnqueue(norm[0], refNone)
		if s.propagate() != refNone {
			s.unsat = true
			return false
		}
		return true
	}
	s.attachClause(norm, false)
	return true
}

func (s *Solver) attachClause(lits []Lit, learned bool) clauseRef {
	ref := clauseRef(len(s.clauses))
	s.clauses = append(s.clauses, clause{lits: lits, learned: learned})
	s.watches[lits[0].Flip()] = append(s.watches[lits[0].Flip()], watcher{ref, lits[1]})
	s.watches[lits[1].Flip()] = append(s.watches[lits[1].Flip()], watcher{ref, lits[0]})
	return ref
}

func (s *Solver) uncheckedEnqueue(l Lit, from clauseRef) {
	vd := &s.vars[l.Var()]
	s.assign[l] = lTrue
	s.assign[l.Flip()] = lFalse
	vd.phase = !l.Neg()
	vd.reason = from
	vd.level = int32(s.level())
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; returns the conflicting clause or
// refNone.
func (s *Solver) propagate() clauseRef {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		conflict := refNone
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := &s.clauses[w.ref]
			lits := c.lits
			// Ensure the false literal (p.Flip()) is at position 1.
			if lits[0] == p.Flip() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{w.ref, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].Flip()] = append(s.watches[lits[1].Flip()], watcher{w.ref, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{w.ref, first})
			if s.value(first) == lFalse {
				conflict = w.ref
				// Copy remaining watchers and bail out.
				kept = append(kept, ws[i+1:]...)
				s.qhead = len(s.trail)
				break
			}
			s.uncheckedEnqueue(first, w.ref)
		}
		s.watches[p] = kept
		if conflict != refNone {
			return conflict
		}
	}
	return refNone
}

// analyze computes the first-UIP learned clause from a conflict; returns
// the clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(conflict clauseRef) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p Lit
	var cleanup []int

	ref := conflict
	for {
		c := &s.clauses[ref]
		if c.learned {
			s.bumpClause(ref)
		}
		start := 0
		if p != 0 {
			start = 1 // skip the asserting literal slot of a reason clause
		}
		for _, q := range c.lits[start:] {
			if p != 0 && q == p {
				continue
			}
			vd := &s.vars[q.Var()]
			if vd.seen || vd.level == 0 {
				continue
			}
			vd.seen = true
			cleanup = append(cleanup, q.Var())
			s.bumpVar(q.Var())
			if int(vd.level) >= s.level() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal from the trail.
		for !s.vars[s.trail[idx].Var()].seen {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.vars[p.Var()].seen = false
		counter--
		if counter <= 0 {
			break
		}
		ref = s.vars[p.Var()].reason
	}
	learnt[0] = p.Flip()

	// Recursive minimization: drop literals implied by the rest.
	j := 1
	for i := 1; i < len(learnt); i++ {
		if !s.redundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	for _, v := range cleanup {
		s.vars[v].seen = false
	}

	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.vars[learnt[i].Var()].level > s.vars[learnt[maxI].Var()].level {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.vars[learnt[1].Var()].level)
	}
	return learnt, btLevel
}

// redundant reports whether literal l of a learned clause is implied by
// the remaining seen literals (one-step self-subsumption).
func (s *Solver) redundant(l Lit) bool {
	ref := s.vars[l.Var()].reason
	if ref == refNone {
		return false
	}
	for _, q := range s.clauses[ref].lits[1:] {
		vd := &s.vars[q.Var()]
		if q != l.Flip() && !vd.seen && vd.level > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) backtrack(level int) {
	if s.level() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		l := s.trail[i]
		v := l.Var()
		s.assign[l] = lUndef
		s.assign[l.Flip()] = lUndef
		s.vars[v].reason = refNone
		if s.vars[v].heapIdx < 0 {
			s.heapInsert(int32(v))
		}
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = limit
}

// --- VSIDS activity ---

const rescaleLimit = 1e100

func (s *Solver) bumpVar(v int) {
	s.vars[v].activity += s.varInc
	if s.vars[v].activity > rescaleLimit {
		for i := 1; i < len(s.vars); i++ {
			s.vars[i].activity *= 1 / rescaleLimit
		}
		s.varInc *= 1 / rescaleLimit
	}
	if s.vars[v].heapIdx >= 0 {
		s.heapUp(s.vars[v].heapIdx)
	}
}

func (s *Solver) bumpClause(ref clauseRef) {
	c := &s.clauses[ref]
	c.activity += s.clauseInc
	if c.activity > rescaleLimit {
		for i := range s.clauses {
			s.clauses[i].activity *= 1 / rescaleLimit
		}
		s.clauseInc *= 1 / rescaleLimit
	}
}

func (s *Solver) decayActivities() {
	s.varInc *= 1 / 0.95
	s.clauseInc *= 1 / 0.999
}

// --- binary max-heap over variable activity ---

func (s *Solver) heapLess(a, b int32) bool {
	return s.vars[a].activity > s.vars[b].activity
}

func (s *Solver) heapInsert(v int32) {
	s.vars[v].heapIdx = int32(len(s.heap))
	s.heap = append(s.heap, v)
	s.heapUp(s.vars[v].heapIdx)
}

func (s *Solver) heapUp(i int32) {
	v := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(v, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.vars[s.heap[i]].heapIdx = i
		i = parent
	}
	s.heap[i] = v
	s.vars[v].heapIdx = i
}

func (s *Solver) heapDown(i int32) {
	v := s.heap[i]
	n := int32(len(s.heap))
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if child+1 < n && s.heapLess(s.heap[child+1], s.heap[child]) {
			child++
		}
		if !s.heapLess(s.heap[child], v) {
			break
		}
		s.heap[i] = s.heap[child]
		s.vars[s.heap[i]].heapIdx = i
		i = child
	}
	s.heap[i] = v
	s.vars[v].heapIdx = i
}

func (s *Solver) heapPop() int32 {
	top := s.heap[0]
	s.vars[top].heapIdx = -1
	last := s.heap[len(s.heap)-1]
	s.heap = s.heap[:len(s.heap)-1]
	if len(s.heap) > 0 {
		s.heap[0] = last
		s.vars[last].heapIdx = 0
		s.heapDown(0)
	}
	return top
}

func (s *Solver) pickBranchVar() int {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[Lit(v)<<1] == lUndef {
			return int(v)
		}
	}
	return 0
}

// --- learned clause DB reduction ---

func (s *Solver) reduceDB() {
	// Partition learned clauses by activity; remove the lazier half.
	var acts []float64
	for _, c := range s.clauses {
		if c.learned && len(c.lits) > 2 {
			acts = append(acts, c.activity)
		}
	}
	if len(acts) < 100 {
		return
	}
	// Median via nth-element (simple quickselect).
	median := quickselect(acts, len(acts)/2)

	locked := func(ref clauseRef) bool {
		c := &s.clauses[ref]
		l := c.lits[0]
		return s.value(l) == lTrue && s.vars[l.Var()].reason == ref
	}

	remap := make([]clauseRef, len(s.clauses))
	var newClauses []clause
	for i, c := range s.clauses {
		ref := clauseRef(i)
		if c.learned && len(c.lits) > 2 && c.activity < median && !locked(ref) {
			remap[i] = refNone
			continue
		}
		remap[i] = clauseRef(len(newClauses))
		newClauses = append(newClauses, c)
	}
	s.clauses = newClauses
	// Rebuild watches and fix reasons.
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for i, c := range s.clauses {
		ref := clauseRef(i)
		s.watches[c.lits[0].Flip()] = append(s.watches[c.lits[0].Flip()], watcher{ref, c.lits[1]})
		s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], watcher{ref, c.lits[0]})
	}
	for i := 1; i < len(s.vars); i++ {
		if r := s.vars[i].reason; r != refNone {
			s.vars[i].reason = remap[r]
		}
	}
}

func quickselect(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		pivot := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return a[k]
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i >= 1<<(k-1) && i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve runs the CDCL loop under the given assumptions and returns the
// verdict. Assumptions are enqueued as pseudo-decisions; if the formula
// is Unsat under assumptions (but perhaps Sat without), Unsat is returned.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if s.unsat {
		return Unsat
	}
	defer s.backtrack(0)
	return s.run(assumptions)
}

// valueOf reads the model value of variable v before backtracking.
func (s *Solver) valueOf(v int) bool { return s.assign[Lit(v)<<1] == lTrue }

// SolveModel runs Solve and, on Sat, returns the satisfying assignment
// (index 0 unused).
func (s *Solver) SolveModel(assumptions ...Lit) (Status, []bool) {
	if s.unsat {
		return Unsat, nil
	}
	st := s.run(assumptions)
	if st != Sat {
		s.backtrack(0)
		return st, nil
	}
	model := make([]bool, len(s.vars))
	for v := 1; v < len(s.vars); v++ {
		model[v] = s.valueOf(v)
	}
	s.backtrack(0)
	return Sat, model
}

// run is the CDCL main loop. It does not backtrack on return so that
// SolveModel can read the model first.
func (s *Solver) run(assumptions []Lit) Status {
	restartNum := int64(1)
	conflictsUntilRestart := luby(restartNum) * 100
	conflictsUntilReduce := int64(2000)
	conflictsAtStart := s.Conflicts
	propsAtStart := s.Propagations

	for {
		conflict := s.propagate()
		if conflict != refNone {
			s.Conflicts++
			if s.level() == 0 {
				s.unsat = true
				return Unsat
			}
			learnt, btLevel := s.analyze(conflict)
			if btLevel < len(assumptions) {
				btLevel = min(btLevel, s.level()-1)
				if btLevel < 0 {
					return Unsat
				}
			}
			s.backtrack(btLevel)
			if len(learnt) == 1 {
				if s.level() != 0 {
					s.backtrack(0)
				}
				if s.value(learnt[0]) == lFalse {
					s.unsat = true
					return Unsat
				}
				if s.value(learnt[0]) == lUndef {
					s.uncheckedEnqueue(learnt[0], refNone)
				}
			} else {
				ref := s.attachClause(learnt, true)
				s.Learned++
				s.bumpClause(ref)
				if s.value(learnt[0]) == lUndef {
					s.uncheckedEnqueue(learnt[0], ref)
				}
			}
			s.decayActivities()
			if s.MaxConflicts > 0 && s.Conflicts-conflictsAtStart >= s.MaxConflicts {
				return Unknown
			}
			conflictsUntilRestart--
			conflictsUntilReduce--
			continue
		}
		if s.MaxPropagations > 0 && s.Propagations-propsAtStart >= s.MaxPropagations {
			return Unknown
		}
		if conflictsUntilRestart <= 0 {
			restartNum++
			s.Restarts++
			conflictsUntilRestart = luby(restartNum) * 100
			s.backtrack(len(assumptions))
			continue
		}
		if conflictsUntilReduce <= 0 {
			conflictsUntilReduce = 2000
			if s.level() == len(assumptions) {
				s.reduceDB()
			}
		}
		if s.level() < len(assumptions) {
			a := assumptions[s.level()]
			switch s.value(a) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(a, refNone)
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(LitOf(v, !s.vars[v].phase), refNone)
	}
}
