package incr

import (
	"bufio"
	"fmt"
	"strings"
)

// Artifact is a parsed persisted rule library (the isel.SaveLibrary
// format) viewed through its provenance: the instruction fingerprints
// recorded at synthesis time plus, per rule, the supporting instruction
// names the planner needs for reuse classification. Rules are kept as raw
// lines — they are only materialized (and re-verified) once classified
// reusable, against the *new* target.
type Artifact struct {
	// InstFPs maps instruction names to the content fingerprint they had
	// when the artifact was synthesized ("#%inst" header lines). Empty for
	// pre-provenance artifacts, which makes every rule stale.
	InstFPs map[string]string
	Rules   []ArtifactRule
}

// ArtifactRule is one rule line plus the fields the planner reads without
// loading the rule.
type ArtifactRule struct {
	Line       string   // the raw persisted line, replayable via isel.LoadRule
	PatternKey string   // the IR pattern the rule covers
	Insts      []string // supporting instruction names, in sequence order
	Source     string   // proof origin: "index", "smt", "manual", "loaded"
}

// ParseArtifact reads a persisted library into its provenance view. It
// accepts both the provenance-extended format and pre-provenance
// artifacts (no "#%inst" lines, no source field).
func ParseArtifact(text string) (*Artifact, error) {
	art := &Artifact{InstFPs: map[string]string{}}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#%inst"):
			f := strings.Fields(line)
			if len(f) != 3 {
				return nil, fmt.Errorf("incr: line %d: malformed provenance header %q", lineNo, line)
			}
			art.InstFPs[f[1]] = f[2]
		case strings.HasPrefix(line, "#"):
			continue
		default:
			ar, err := parseRuleLine(line)
			if err != nil {
				return nil, fmt.Errorf("incr: line %d: %w", lineNo, err)
			}
			art.Rules = append(art.Rules, ar)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return art, nil
}

// parseRuleLine extracts the planner-relevant fields from one persisted
// rule line without loading the rule: the pattern key, the supporting
// instruction names (from the sequence spec), and the proof origin.
func parseRuleLine(line string) (ArtifactRule, error) {
	fields := strings.Split(line, "\t")
	if len(fields) < 3 {
		return ArtifactRule{}, fmt.Errorf("need at least 3 fields")
	}
	ar := ArtifactRule{Line: line, PatternKey: fields[0], Source: "loaded"}
	for _, part := range strings.Split(fields[1], ";") {
		name := strings.TrimSpace(part)
		if k := strings.IndexByte(name, '['); k >= 0 {
			name = name[:k]
		}
		if name == "" {
			return ArtifactRule{}, fmt.Errorf("empty instruction in sequence spec %q", fields[1])
		}
		ar.Insts = append(ar.Insts, name)
	}
	// Trailing fields mirror isel.LoadRule: leaf-consts contain '=', the
	// source field does not.
	for _, f := range fields[3:] {
		if !strings.Contains(f, "=") && f != "" {
			ar.Source = f
		}
	}
	return ar, nil
}
