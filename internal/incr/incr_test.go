package incr

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"iselgen/internal/core"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/isel"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/term"
)

// bigSpec generates a 300+-variant spec: 10 selectable ALU instructions
// (5 ops × 2 widths) plus 300 semantically distinct filler variants, the
// shape of a condition-code-expanded production ISA. edit mutates the
// semantics of exactly one instruction (XOR64rr); addMul appends the two
// MULX variants as brand new instructions.
func bigSpec(edit, addMul bool) string {
	var sb strings.Builder
	ops := []struct{ name, expr string }{
		{"ADD", "rn + rm"}, {"SUB", "rn - rm"}, {"AND", "rn & rm"},
		{"OR", "rn | rm"}, {"XOR", "rn ^ rm"}, {"MULX", "rn * rm"},
	}
	for _, w := range []int{32, 64} {
		for _, op := range ops {
			if op.name == "MULX" && !addMul {
				continue
			}
			expr := op.expr
			if edit && op.name == "XOR" && w == 64 {
				expr = "(rn ^ rm) + 1"
			}
			fmt.Fprintf(&sb, "inst %s%drr(rn: reg%d, rm: reg%d) { rd = %s; }\n",
				op.name, w, w, w, expr)
		}
	}
	for _, w := range []int{32, 64} {
		for i := 0; i < 150; i++ {
			fmt.Fprintf(&sb, "inst F%d_%d(rn: reg%d, rm: reg%d) { rd = (rn + %d) ^ rm; }\n",
				w, i, w, w, i+1)
		}
	}
	return sb.String()
}

// bigPatterns is the corpus: the 10 patterns the base spec covers, the 2
// mul patterns it does not (exercising the previously-uncovered path),
// plus the xor patterns.
func bigPatterns() []*pattern.Pattern {
	var out []*pattern.Pattern
	for _, ty := range []gmir.Type{gmir.S32, gmir.S64} {
		for _, op := range []gmir.Opcode{gmir.GAdd, gmir.GSub, gmir.GAnd, gmir.GOr, gmir.GXor, gmir.GMul} {
			t := ty
			out = append(out, pattern.New(pattern.Op(op, t, pattern.Leaf(t), pattern.Leaf(t))))
		}
	}
	return out
}

var bigCfg = core.Config{TestInputs: 16, MaxSeqLen: 1, Workers: 4}

func synthBig(t *testing.T, spec string) (*term.Builder, *isa.Target, *rules.Library, *core.Synthesizer) {
	t.Helper()
	b := term.NewBuilder()
	tgt, err := isa.LoadTarget(b, "big", spec, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	syn := core.New(b, tgt, bigCfg)
	syn.BuildPool()
	lib := rules.NewLibrary("big")
	syn.Synthesize(bigPatterns(), lib)
	return b, tgt, lib, syn
}

// ruleSet computes the builder-independent rule-fingerprint set of a
// library (the persisted line of each rule).
func ruleSet(lib *rules.Library) []string {
	var out []string
	for _, r := range lib.Rules {
		out = append(out, isel.RuleLine(r))
	}
	sort.Strings(out)
	return out
}

// TestIncrementalOneInstructionEdit is the acceptance scenario: edit one
// instruction in a 310-variant spec, resynthesize incrementally, and
// check (a) ≥90% of rules are reused, (b) zero SMT queries were issued,
// (c) the incremental library's rule-fingerprint set is identical to a
// from-scratch resynthesis of the edited spec.
func TestIncrementalOneInstructionEdit(t *testing.T) {
	if n := strings.Count(bigSpec(false, false), "inst "); n < 300 {
		t.Fatalf("spec has %d variants, want 300+", n)
	}
	_, tgt1, lib1, _ := synthBig(t, bigSpec(false, false))
	if lib1.Len() < 10 {
		t.Fatalf("base synthesis produced only %d rules", lib1.Len())
	}
	artifact := isel.SaveLibraryFor(lib1, tgt1)

	// From-scratch reference for the edited spec.
	_, _, lib2, _ := synthBig(t, bigSpec(true, false))

	// Incremental resynthesis in a fresh builder.
	art, err := ParseArtifact(artifact)
	if err != nil {
		t.Fatal(err)
	}
	b3 := term.NewBuilder()
	tgt3, err := isa.LoadTarget(b3, "big", bigSpec(true, false), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	lib3, rep, err := Resynthesize(b3, tgt3, art, Options{Config: bigCfg, Patterns: bigPatterns()})
	if err != nil {
		t.Fatal(err)
	}

	if got := rep.Delta.Changed; len(got) != 1 || got[0] != "XOR64rr" {
		t.Errorf("delta changed = %v, want [XOR64rr]", got)
	}
	if rep.Delta.Unchanged != 309 {
		t.Errorf("delta unchanged = %d, want 309", rep.Delta.Unchanged)
	}
	if frac := rep.ReusedFraction(); frac < 0.9 {
		t.Errorf("reused %d/%d rules (%.0f%%), want >= 90%%",
			rep.Reused, rep.ArtifactRules, frac*100)
	}
	if rep.SMTQueries != 0 {
		t.Errorf("incremental resynthesis issued %d SMT queries, want 0", rep.SMTQueries)
	}
	if rep.FullPool {
		// The stale pattern does force a full pool here (XOR64rr's rule
		// went stale) — that is expected; assert the counter is honest.
		if rep.Stale == 0 {
			t.Error("full pool built with no stale rules")
		}
	}
	got, want := ruleSet(lib3), ruleSet(lib2)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("incremental library differs from from-scratch:\n-- incremental --\n%s\n-- from scratch --\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestIncrementalAddInstruction: adding instructions covers previously
// uncovered patterns from the reduced pool alone — 100% reuse, no full
// pool, no SMT.
func TestIncrementalAddInstruction(t *testing.T) {
	_, tgt1, lib1, _ := synthBig(t, bigSpec(false, false))
	artifact := isel.SaveLibraryFor(lib1, tgt1)

	_, _, lib2, _ := synthBig(t, bigSpec(false, true))
	if lib2.Len() != lib1.Len()+2 {
		t.Fatalf("adding MULX should add 2 rules: %d -> %d", lib1.Len(), lib2.Len())
	}

	art, err := ParseArtifact(artifact)
	if err != nil {
		t.Fatal(err)
	}
	b3 := term.NewBuilder()
	tgt3, err := isa.LoadTarget(b3, "big", bigSpec(false, true), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	lib3, rep, err := Resynthesize(b3, tgt3, art, Options{Config: bigCfg, Patterns: bigPatterns()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reused != lib1.Len() || rep.Stale != 0 {
		t.Errorf("reused %d stale %d, want %d/0", rep.Reused, rep.Stale, lib1.Len())
	}
	if len(rep.Delta.Added) != 2 {
		t.Errorf("delta added = %v, want 2 instructions", rep.Delta.Added)
	}
	if rep.FullPool {
		t.Error("full pool built although no rule went stale")
	}
	if rep.SMTQueries != 0 {
		t.Errorf("SMT queries = %d, want 0", rep.SMTQueries)
	}
	if rep.Resynthesized != 2 {
		t.Errorf("resynthesized = %d, want 2", rep.Resynthesized)
	}
	got, want := ruleSet(lib3), ruleSet(lib2)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("incremental library differs from from-scratch:\n-- incremental --\n%s\n-- from scratch --\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestIncrementalNoOp: an edit that does not change semantics (formatting,
// comments, reordering) reuses everything and synthesizes nothing.
func TestIncrementalNoOp(t *testing.T) {
	base := bigSpec(false, false)
	_, tgt1, lib1, _ := synthBig(t, base)
	artifact := isel.SaveLibraryFor(lib1, tgt1)

	// Reorder instructions and perturb whitespace: content fingerprints
	// hash effect terms, not spec text, so none of this changes identity.
	lines := strings.Split(strings.TrimSpace(base), "\n")
	reordered := append([]string{}, lines[len(lines)/2:]...)
	reordered = append(reordered, lines[:len(lines)/2]...)
	noop := strings.Join(reordered, "\n\n") + "\n"

	art, err := ParseArtifact(artifact)
	if err != nil {
		t.Fatal(err)
	}
	b := term.NewBuilder()
	tgt, err := isa.LoadTarget(b, "big", noop, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	lib, rep, err := Resynthesize(b, tgt, art, Options{Config: bigCfg, Patterns: bigPatterns()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Delta.Changed)+len(rep.Delta.Added)+len(rep.Delta.Removed) != 0 {
		t.Errorf("no-op edit produced a delta: %+v", rep.Delta)
	}
	if rep.Reused != lib1.Len() || rep.Resynthesized != 0 || rep.SMTQueries != 0 || rep.FullPool {
		t.Errorf("no-op edit did work: %+v", rep)
	}
	if got, want := ruleSet(lib), ruleSet(lib1); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("no-op library differs from the original")
	}
}

func TestDiff(t *testing.T) {
	old := map[string]string{"A": "1", "B": "2", "C": "3"}
	new := map[string]string{"A": "1", "B": "9", "D": "4"}
	d := Diff(old, new)
	if len(d.Added) != 1 || d.Added[0] != "D" ||
		len(d.Removed) != 1 || d.Removed[0] != "C" ||
		len(d.Changed) != 1 || d.Changed[0] != "B" ||
		d.Unchanged != 1 {
		t.Errorf("Diff = %+v", d)
	}
}

func TestParseArtifactProvenance(t *testing.T) {
	_, tgtP, lib, _ := synthBig(t, bigSpec(false, false))
	art, err := ParseArtifact(isel.SaveLibraryFor(lib, tgtP))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Rules) != lib.Len() {
		t.Fatalf("parsed %d rules, library has %d", len(art.Rules), lib.Len())
	}
	for i, ar := range art.Rules {
		r := lib.Rules[i]
		if ar.PatternKey != r.Pattern.Key() {
			t.Errorf("rule %d: key %q vs %q", i, ar.PatternKey, r.Pattern.Key())
		}
		if ar.Source != r.Source {
			t.Errorf("rule %d: source %q vs %q", i, ar.Source, r.Source)
		}
		if len(ar.Insts) != len(r.Seq.Insts) {
			t.Errorf("rule %d: %d insts vs %d", i, len(ar.Insts), len(r.Seq.Insts))
			continue
		}
		for j, name := range ar.Insts {
			if name != r.Seq.Insts[j].Name {
				t.Errorf("rule %d inst %d: %q vs %q", i, j, name, r.Seq.Insts[j].Name)
			}
		}
		// Every supporting instruction must appear in the header with the
		// fingerprint the rule was stamped with.
		for _, p := range r.Prov {
			if art.InstFPs[p.Name] != p.FP {
				t.Errorf("rule %d: header fp for %s = %q, stamped %q",
					i, p.Name, art.InstFPs[p.Name], p.FP)
			}
		}
	}
}

// TestPreProvenanceArtifact: an artifact with no "#%inst" header (the old
// format) degrades to a full resynthesis — everything stale, nothing
// wrong.
func TestPreProvenanceArtifact(t *testing.T) {
	_, tgt1, lib1, _ := synthBig(t, bigSpec(false, false))
	var stripped []string
	for _, line := range strings.Split(isel.SaveLibraryFor(lib1, tgt1), "\n") {
		if !strings.HasPrefix(line, "#%inst") {
			stripped = append(stripped, line)
		}
	}
	art, err := ParseArtifact(strings.Join(stripped, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	b := term.NewBuilder()
	tgt, err := isa.LoadTarget(b, "big", bigSpec(false, false), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	lib, rep, err := Resynthesize(b, tgt, art, Options{Config: bigCfg, Patterns: bigPatterns()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reused != 0 || rep.Stale != lib1.Len() || !rep.FullPool {
		t.Errorf("pre-provenance artifact: %+v, want all stale + full pool", rep)
	}
	if got, want := ruleSet(lib), ruleSet(lib1); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("full fallback differs from original library")
	}
}

// TestReverifyFailedRule: a corrupted-but-provenance-intact rule is never
// served; it is dropped and its pattern resynthesized.
func TestReverifyFailedRule(t *testing.T) {
	_, tgt1, lib1, _ := synthBig(t, bigSpec(false, false))
	// Swap the operand tokens of the first SUB rule: provenance still
	// matches, verification must not.
	text := isel.SaveLibraryFor(lib1, tgt1)
	corrupted := strings.Replace(text, "SUB64rr\tp0 p1", "SUB64rr\tp1 p0", 1)
	if corrupted == text {
		t.Fatal("corruption did not apply; rule line layout changed?")
	}
	art, err := ParseArtifact(corrupted)
	if err != nil {
		t.Fatal(err)
	}
	b := term.NewBuilder()
	tgt, err := isa.LoadTarget(b, "big", bigSpec(false, false), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	lib, rep, err := Resynthesize(b, tgt, art, Options{Config: bigCfg, Patterns: bigPatterns()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReverifyFailed != 1 {
		t.Errorf("reverify failed = %d, want 1", rep.ReverifyFailed)
	}
	if got, want := ruleSet(lib), ruleSet(lib1); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("corrupted rule not healed by resynthesis")
	}
}
