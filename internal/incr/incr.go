// Package incr implements incremental, provenance-tracked synthesis for
// spec deltas. The full pipeline (internal/core) prices a spec edit at a
// complete re-run — every canonicalization, index probe, and SMT query —
// even when one instruction out of hundreds changed. This package makes
// the service pay only for what changed:
//
//   - every instruction gets a content fingerprint: a SHA-256 over its
//     symbolically executed effect terms (rules.InstFingerprint), so
//     whitespace, comments, and reordering edits are free;
//   - every rule carries provenance — the fingerprints of its supporting
//     instructions plus its proof origin (index vs smt) — persisted in
//     the library artifact (isel.SaveLibrary);
//   - given an old artifact and a new spec, the delta planner classifies
//     each rule as reusable (all supporting instructions unchanged —
//     re-verified by randomized evaluation, zero solver queries), stale
//     (dropped), or leaves a pattern missing (fed back into core against
//     a reduced pool of sequences that touch changed instructions).
//
// The soundness argument for the reduced pool: sequences built only from
// unchanged instructions are term-identical to the previous run's, so a
// pattern the previous run left uncovered cannot gain a rule from them,
// and a pattern covered by a reusable rule can only be *improved* by a
// sequence involving a changed instruction. Only patterns whose rule went
// stale need the full pool (their replacement may well come from
// unchanged instructions).
package incr

import (
	"sort"

	"iselgen/internal/isa"
	"iselgen/internal/rules"
)

// InstFingerprints computes the per-instruction content fingerprints of a
// loaded target — the "new spec" side of a delta.
func InstFingerprints(tgt *isa.Target) map[string]string {
	out := make(map[string]string, len(tgt.Insts))
	for _, inst := range tgt.Insts {
		out[inst.Name] = rules.InstFingerprint(inst)
	}
	return out
}

// Delta is the instruction-level difference between two specs, computed
// over content fingerprints.
type Delta struct {
	Added     []string `json:"added,omitempty"`   // in new, not in old
	Removed   []string `json:"removed,omitempty"` // in old, not in new
	Changed   []string `json:"changed,omitempty"` // present in both, different semantics
	Unchanged int      `json:"unchanged"`
}

// Diff compares two fingerprint maps. The name slices are sorted for
// deterministic reporting.
func Diff(old, new map[string]string) Delta {
	var d Delta
	for name, fp := range new {
		ofp, ok := old[name]
		switch {
		case !ok:
			d.Added = append(d.Added, name)
		case ofp != fp:
			d.Changed = append(d.Changed, name)
		default:
			d.Unchanged++
		}
	}
	for name := range old {
		if _, ok := new[name]; !ok {
			d.Removed = append(d.Removed, name)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Changed)
	return d
}

// changedSet returns the names of target instructions that are new or
// semantically changed relative to the artifact's recorded fingerprints.
// Instructions absent from the artifact header (e.g. an old-format
// artifact with no provenance) conservatively count as changed — a pure
// performance cost, never a correctness one.
func changedSet(artFPs, newFPs map[string]string) map[string]bool {
	changed := map[string]bool{}
	for name, fp := range newFPs {
		if old, ok := artFPs[name]; !ok || old != fp {
			changed[name] = true
		}
	}
	return changed
}
