package incr

import (
	"context"
	"time"

	"iselgen/internal/core"
	"iselgen/internal/isa"
	"iselgen/internal/isel"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/term"
)

// Options configures an incremental resynthesis.
type Options struct {
	// Config must match the configuration of the run that produced the
	// artifact (same CacheKey modulo Workers): the reuse argument assumes
	// the old library is what this configuration produces from the old
	// spec. The service enforces this by keying artifact lineages on the
	// config; CLI users are on their honor.
	Config core.Config
	// Patterns must be the same corpus the artifact was synthesized from.
	// A pattern the old run never attempted would only be searched against
	// the reduced pool, missing rules from unchanged instructions.
	Patterns []*pattern.Pattern
	// Context, when non-nil, curtails SMT fallbacks past its deadline
	// (core.SynthesizeCtx semantics); the result is then partial.
	Context context.Context
}

// Report accounts for one incremental resynthesis — the reuse counters
// the service surfaces in /v1/metrics and iselgen prints.
type Report struct {
	Delta Delta `json:"delta"`
	// Rule classification.
	ArtifactRules  int `json:"artifact_rules"`
	Reused         int `json:"reused"`          // provenance intact, re-verified, carried over
	Stale          int `json:"stale"`           // a supporting instruction changed or vanished
	ReverifyFailed int `json:"reverify_failed"` // provenance intact but failed re-verification (counted in Stale too)
	Resynthesized  int `json:"resynthesized"`   // rules produced by synthesis this run
	Improved       int `json:"improved"`        // reused rules displaced by a strictly cheaper new rule
	// Work done. SMTQueries is the headline: reused rules are re-verified
	// by randomized evaluation only, so a delta touching few instructions
	// keeps this near zero.
	SMTQueries int64           `json:"smt_queries"`
	FullPool   bool            `json:"full_pool"` // stale rules forced a full-pool stage 1
	Curtailed  bool            `json:"curtailed"`
	Stats      core.StageStats `json:"stages"`
	ElapsedMS  float64         `json:"elapsed_ms"`
}

// ReusedFraction returns reused / artifact rules (0 when the artifact was
// empty).
func (r *Report) ReusedFraction() float64 {
	if r.ArtifactRules == 0 {
		return 0
	}
	return float64(r.Reused) / float64(r.ArtifactRules)
}

// Resynthesize produces the rule library for tgt by reusing as much of
// the old artifact as its provenance allows and synthesizing only the
// remainder:
//
//  1. classify every artifact rule by diffing its supporting instruction
//     fingerprints against the new spec; reusable rules are re-verified
//     (isel.LoadRule — randomized evaluation, zero solver queries) and
//     seeded into the library;
//  2. patterns whose rules went stale are re-run against the full pool
//     (their replacement may come from unchanged instructions);
//  3. all other patterns are run against a reduced pool containing only
//     sequences that touch changed instructions — for covered patterns a
//     new rule displaces the reused one only when strictly cheaper (ties
//     keep the reused rule, and its proof origin).
//
// The target must have been loaded into b.
func Resynthesize(b *term.Builder, tgt *isa.Target, art *Artifact, opt Options) (*rules.Library, *Report, error) {
	t0 := time.Now()
	rep := &Report{ArtifactRules: len(art.Rules)}
	newFPs := InstFingerprints(tgt)
	rep.Delta = Diff(art.InstFPs, newFPs)
	changed := changedSet(art.InstFPs, newFPs)

	// 1. Classify artifact rules; re-verify and materialize the reusable
	// ones against the new target.
	reused := map[string][]*rules.Rule{}
	stalePat := map[string]bool{}
	for _, ar := range art.Rules {
		ok := true
		for _, name := range ar.Insts {
			if changed[name] || tgt.ByName(name) == nil {
				ok = false
				break
			}
		}
		if !ok {
			rep.Stale++
			stalePat[ar.PatternKey] = true
			continue
		}
		r, err := isel.LoadRule(b, tgt, ar.Line)
		if err != nil {
			// Provenance said reusable but verification disagreed (e.g. a
			// corrupted artifact). Treat as stale: the pattern re-enters
			// full synthesis. Never serve an unverified rule.
			rep.Stale++
			rep.ReverifyFailed++
			stalePat[ar.PatternKey] = true
			continue
		}
		reused[ar.PatternKey] = append(reused[ar.PatternKey], r)
		rep.Reused++
	}

	// 2. Partition the corpus: stale-rule patterns need the full pool;
	// everything else only the reduced pool.
	var fullPats, reducedPats []*pattern.Pattern
	seen := map[string]bool{}
	for _, p := range opt.Patterns {
		k := p.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if stalePat[k] {
			fullPats = append(fullPats, p)
		} else {
			reducedPats = append(reducedPats, p)
		}
	}

	// 3. Reduced-pool synthesis for the non-stale patterns: only sequences
	// touching a changed instruction can add coverage or beat a reused
	// rule. The run works on a scratch library seeded with the reused
	// rules, so its beneficial-rule filter sees them and exact
	// rediscoveries dedup away.
	fresh := map[string]*rules.Rule{}
	if len(reducedPats) > 0 && len(changed) > 0 {
		rcfg := opt.Config
		rcfg.PoolFilter = func(seq *isa.Sequence) bool {
			for _, inst := range seq.Insts {
				if changed[inst.Name] {
					return true
				}
			}
			return false
		}
		syn := core.New(b, tgt, rcfg)
		syn.BuildPool()
		rlib := rules.NewLibrary(tgt.Name)
		rlib.Model = opt.Config.CostModel
		seeded := map[*rules.Rule]bool{}
		for _, rs := range reused {
			for _, r := range rs {
				rlib.Add(r)
				seeded[r] = true
			}
		}
		rep.Curtailed = runSynth(syn, opt.Context, reducedPats, rlib) || rep.Curtailed
		accumulate(rep, syn)
		for _, p := range reducedPats {
			k := p.Key()
			for _, r := range rlib.LookupAll(k) {
				if !seeded[r] && (fresh[k] == nil || r.EffCost().Less(fresh[k].EffCost())) {
					fresh[k] = r
				}
			}
		}
	}

	// 4. Merge: per pattern, a fresh rule wins only when the pattern was
	// uncovered or the fresh rule is strictly cheaper — a tie keeps the
	// reused rule (and its proof origin), matching what a from-scratch run
	// over the same deterministic pool would keep.
	lib := rules.NewLibrary(tgt.Name)
	lib.Model = opt.Config.CostModel
	merged := map[string]bool{}
	mergeKey := func(k string) {
		if merged[k] {
			return
		}
		merged[k] = true
		old := reused[k]
		f := fresh[k]
		switch {
		case f == nil:
			for _, r := range old {
				lib.Add(r)
			}
		case len(old) == 0:
			lib.Add(f) // previously uncovered pattern gained a rule
			rep.Resynthesized++
		case f.EffCost().Less(old[0].EffCost()):
			lib.Add(f) // a changed instruction yields a strictly cheaper cover
			rep.Resynthesized++
			rep.Improved++
		default:
			for _, r := range old {
				lib.Add(r)
			}
		}
	}
	for _, p := range opt.Patterns {
		mergeKey(p.Key())
	}
	for _, ar := range art.Rules {
		mergeKey(ar.PatternKey) // reused rules for patterns outside the corpus
	}

	// 5. Full-pool synthesis for stale-rule patterns, last, so its
	// beneficial-rule filter consults the merged smaller rules.
	if len(fullPats) > 0 {
		syn := core.New(b, tgt, opt.Config)
		syn.BuildPool()
		before := lib.Len()
		rep.Curtailed = runSynth(syn, opt.Context, fullPats, lib) || rep.Curtailed
		rep.Resynthesized += lib.Len() - before
		rep.FullPool = true
		accumulate(rep, syn)
	}

	rep.SMTQueries = rep.Stats.SMTQueries
	rep.ElapsedMS = float64(time.Since(t0).Nanoseconds()) / 1e6
	return lib, rep, nil
}

func runSynth(syn *core.Synthesizer, ctx context.Context, pats []*pattern.Pattern, lib *rules.Library) bool {
	if ctx != nil {
		return syn.SynthesizeCtx(ctx, pats, lib)
	}
	syn.Synthesize(pats, lib)
	return false
}

func accumulate(rep *Report, syn *core.Synthesizer) {
	snap := syn.Stats.Snapshot()
	rep.Stats.Accumulate(snap)
}
