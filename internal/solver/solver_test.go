package solver

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iselgen/internal/smt"
)

func entry(verdict smt.Result, fp string, budget int64) smt.MemoEntry {
	return smt.MemoEntry{Verdict: verdict, SpecFP: fp, Budget: budget}
}

func TestStoreLookupAndCounters(t *testing.T) {
	s := New(0)
	if _, ok := s.Lookup("a"); ok {
		t.Fatal("lookup on empty store hit")
	}
	s.Store("a", entry(smt.Equal, "fp", 10))
	e, ok := s.Lookup("a")
	if !ok || e.Verdict != smt.Equal || e.SpecFP != "fp" {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	hits, misses, stores := s.Counters()
	if hits != 1 || misses != 1 || stores != 1 {
		t.Fatalf("counters = %d/%d/%d, want 1/1/1", hits, misses, stores)
	}
}

func TestStoreGenerationalPromotion(t *testing.T) {
	s := New(2)
	s.Store("a", entry(smt.Equal, "fp", 1))
	s.Store("b", entry(smt.Equal, "fp", 1))
	// Hot tier is full: the next distinct store rotates hot -> cold.
	s.Store("c", entry(smt.Equal, "fp", 1))
	if _, ok := s.Lookup("a"); !ok {
		t.Fatal("entry a lost after rotation (should be in cold tier)")
	}
	// The promoted entry must survive another rotation; the cold-only one
	// is dropped when its tier is discarded.
	s.Store("d", entry(smt.Equal, "fp", 1))
	s.Store("e", entry(smt.Equal, "fp", 1))
	if _, ok := s.Lookup("a"); !ok {
		t.Fatal("promoted entry a did not survive the next rotation")
	}
	if _, ok := s.Lookup("b"); ok {
		t.Fatal("unpromoted entry b survived two rotations")
	}
}

func TestStoreDedupe(t *testing.T) {
	s := New(0)
	s.Store("k", entry(smt.NotEqual, "fp", 100))
	s.Store("k", entry(smt.NotEqual, "fp", 100)) // identical: dropped
	s.Store("k", entry(smt.NotEqual, "fp", 50))  // smaller budget: dropped
	if _, _, stores := s.Counters(); stores != 1 {
		t.Fatalf("stores = %d, want 1 (duplicates must not re-store)", stores)
	}
	s.Store("k", entry(smt.NotEqual, "fp", 200))  // larger budget: improves
	s.Store("k", entry(smt.NotEqual, "fp2", 200)) // new fingerprint: improves
	if _, _, stores := s.Counters(); stores != 3 {
		t.Fatalf("stores = %d, want 3", stores)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "solver.journal")

	s := New(0)
	if err := s.AttachJournal(jp); err != nil {
		t.Fatal(err)
	}
	s.Store("a", entry(smt.Equal, "fp", 1))
	s.Store("b", entry(smt.NotEqual, "fp", 2))
	js := s.Journal()
	if js.Appended != 2 || js.Entries != 2 || js.Loaded != 0 {
		t.Fatalf("journal stats = %+v", js)
	}
	s.DetachJournal()

	// A fresh store (fresh process) replays the journal.
	s2 := New(0)
	if err := s2.AttachJournal(jp); err != nil {
		t.Fatal(err)
	}
	js = s2.Journal()
	if js.Loaded != 2 || js.Quarantined != 0 {
		t.Fatalf("replay stats = %+v", js)
	}
	if e, ok := s2.Lookup("b"); !ok || e.Verdict != smt.NotEqual || e.Budget != 2 {
		t.Fatalf("replayed entry = %+v, %v", e, ok)
	}
}

func TestJournalCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "solver.journal")

	good1 := `{"k":"a","e":{"verdict":1,"spec_fp":"fp","budget":1}}`
	good2 := `{"k":"b","e":{"verdict":2,"spec_fp":"fp","budget":2}}`
	corrupt := `{"k":"c","e":{"verdict":` // flipped bits mid-record
	tail := `{"k":"d","e":{"verdict":1`   // crash mid-append: no newline
	if err := os.WriteFile(jp,
		[]byte(good1+"\n"+corrupt+"\n"+good2+"\n"+tail), 0o644); err != nil {
		t.Fatal(err)
	}

	var warnings []string
	s := New(0)
	s.SetLogger(func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	})
	if err := s.AttachJournal(jp); err != nil {
		t.Fatalf("corrupt journal failed the load: %v", err)
	}
	js := s.Journal()
	if js.Loaded != 2 || js.Quarantined != 2 {
		t.Fatalf("stats = %+v, want 2 loaded / 2 quarantined", js)
	}
	if _, ok := s.Lookup("a"); !ok {
		t.Fatal("entry before the corruption lost")
	}
	if _, ok := s.Lookup("b"); !ok {
		t.Fatal("entry after the corruption lost")
	}
	if len(warnings) == 0 || !strings.Contains(warnings[0], "quarantined") {
		t.Fatalf("no quarantine warning logged: %v", warnings)
	}
	q, err := os.ReadFile(jp + ".quarantine")
	if err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if !strings.Contains(string(q), corrupt) || !strings.Contains(string(q), tail) {
		t.Fatalf("quarantine file missing the bad records:\n%s", q)
	}

	// The truncated tail must have been cut so the next append starts on
	// a clean line boundary, and a re-attach then loads everything.
	s.Store("e", entry(smt.Equal, "fp", 1))
	s.DetachJournal()
	s2 := New(0)
	if err := s2.AttachJournal(jp); err != nil {
		t.Fatal(err)
	}
	js = s2.Journal()
	if js.Loaded != 3 || js.Quarantined != 0 {
		t.Fatalf("re-attach stats = %+v, want 3 loaded / 0 quarantined", js)
	}
}

func TestResetKeepsJournalAttached(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "solver.journal")
	s := New(0)
	if err := s.AttachJournal(jp); err != nil {
		t.Fatal(err)
	}
	s.Store("a", entry(smt.Equal, "fp", 1))
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("reset left entries in memory")
	}
	s.Store("b", entry(smt.Equal, "fp", 1))
	s.DetachJournal()
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	// Reset forgets verdicts but does not unwrite the journal.
	if !strings.Contains(string(data), `"k":"a"`) || !strings.Contains(string(data), `"k":"b"`) {
		t.Fatalf("journal after reset:\n%s", data)
	}
}

func TestByContext(t *testing.T) {
	s := New(0)
	e1 := smt.MemoEntry{Verdict: smt.Equal, Context: "synthesis:p1"}
	e2 := smt.MemoEntry{Verdict: smt.NotEqual, Context: "synthesis:p1"}
	e3 := smt.MemoEntry{Verdict: smt.Equal, Context: "synthesis:p2"}
	s.Store("a", e1)
	s.Store("b", e2)
	s.Store("c", e3)
	qs := s.ByContext("synthesis:p1")
	if len(qs) != 2 {
		t.Fatalf("ByContext returned %d entries, want 2", len(qs))
	}
	for _, q := range qs {
		if q.Entry.Context != "synthesis:p1" {
			t.Fatalf("wrong context: %+v", q)
		}
	}
	if got := s.ByContext("synthesis:nope"); len(got) != 0 {
		t.Fatalf("unknown context returned %d entries", len(got))
	}
}
