// Package solver is the session-persistent SMT verdict service: a
// process-wide, content-addressed store of settled equivalence verdicts
// that survives across synthesis runs (in memory) and across processes
// (an append-only disk journal under the service cache directory).
//
// The checker (internal/smt) owns key derivation and the trust policy —
// this package is deliberately a dumb store: it never solves, never
// judges staleness, and a lookup can never trigger work. Entries are
// kept in two generational tiers (an approximate LRU with O(1)
// eviction: when the hot tier fills, it becomes the cold tier and the
// old cold tier is dropped; a cold hit promotes back to hot), plus the
// optional journal, which is load-once — attached at startup, replayed
// into the hot tier, then appended to on every store.
//
// The journal is JSON Lines, one {"k": key, "e": entry} record per
// line, written under the store mutex so records are never interleaved.
// Loading is crash-tolerant by construction: a truncated or corrupt
// line (a crash mid-append, a flipped bit) is quarantined to a side
// file with a logged warning and skipped — it can never fail the load
// or poison the entries around it.
package solver

import (
	"encoding/json"
	"log"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"iselgen/internal/smt"
)

// DefaultCap bounds each in-memory tier. Two tiers of 64k entries hold
// far more verdicts than a full synthesis of both bundled targets
// produces (a few hundred), while capping worst-case memory for
// long-lived daemons fed by many spec variants.
const DefaultCap = 1 << 16

// Shared is the process-wide store every checker consults by default —
// the memo analog of smt.Cex. It starts journal-less (pure in-memory);
// daemons and benchmarks attach a journal explicitly.
var Shared = New(DefaultCap)

// record is one journal line.
type record struct {
	K string        `json:"k"`
	E smt.MemoEntry `json:"e"`
}

// Store implements smt.Memo with generational in-memory tiers and an
// optional append-only journal. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	hot     map[string]smt.MemoEntry
	cold    map[string]smt.MemoEntry
	capEach int

	journal     *os.File
	journalPath string
	logf        func(format string, args ...any)

	hits   atomic.Int64
	misses atomic.Int64
	stores atomic.Int64

	// Journal accounting (guarded by mu): lines replayed at attach,
	// lines appended since, corrupt lines quarantined at attach.
	loaded      int64
	appended    int64
	quarantined int64
}

// New returns an empty store whose tiers hold capEach entries each
// (values < 1 use DefaultCap).
func New(capEach int) *Store {
	if capEach < 1 {
		capEach = DefaultCap
	}
	return &Store{
		hot:     make(map[string]smt.MemoEntry),
		cold:    make(map[string]smt.MemoEntry),
		capEach: capEach,
		logf:    log.Printf,
	}
}

// SetLogger redirects quarantine warnings (nil silences them).
func (s *Store) SetLogger(logf func(format string, args ...any)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// Lookup returns the stored entry for key, if any. Never triggers work
// beyond two map probes; disk is not consulted (the journal was
// replayed into memory at attach time).
func (s *Store) Lookup(key string) (smt.MemoEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.hot[key]; ok {
		s.hits.Add(1)
		return e, true
	}
	if e, ok := s.cold[key]; ok {
		// Promote: a reused verdict should survive the next rotation.
		s.storeLocked(key, e)
		s.hits.Add(1)
		return e, true
	}
	s.misses.Add(1)
	return smt.MemoEntry{}, false
}

// Store records a verdict under key, journaling it when a journal is
// attached. A store that cannot improve on the existing entry (same
// verdict and spec fingerprint, no larger budget) is dropped so
// repeated runs do not grow the journal unboundedly.
func (s *Store) Store(key string, e smt.MemoEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.lookupLocked(key); ok &&
		prev.Verdict == e.Verdict && prev.SpecFP == e.SpecFP && prev.Budget >= e.Budget {
		return
	}
	s.storeLocked(key, e)
	s.stores.Add(1)
	if s.journal != nil {
		line, err := json.Marshal(record{K: key, E: e})
		if err != nil {
			return
		}
		line = append(line, '\n')
		if _, err := s.journal.Write(line); err != nil {
			s.logf("solver: journal append failed, detaching: %v", err)
			s.journal.Close()
			s.journal = nil
			return
		}
		s.appended++
	}
}

func (s *Store) lookupLocked(key string) (smt.MemoEntry, bool) {
	if e, ok := s.hot[key]; ok {
		return e, true
	}
	e, ok := s.cold[key]
	return e, ok
}

func (s *Store) storeLocked(key string, e smt.MemoEntry) {
	if len(s.hot) >= s.capEach {
		if _, ok := s.hot[key]; !ok {
			s.cold = s.hot
			s.hot = make(map[string]smt.MemoEntry, s.capEach)
		}
	}
	s.hot[key] = e
}

// AttachJournal opens (creating if needed) the journal at path, replays
// its readable records into the hot tier, and keeps the file open for
// appends. Corrupt lines — and the unterminated tail a crash mid-append
// leaves — are quarantined to path plus ".quarantine" with a logged
// warning and never fail the load. A truncated tail is additionally cut
// from the journal itself so future appends start on a clean line
// boundary. Any previously attached journal is closed first.
func (s *Store) AttachJournal(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	var quarantine *os.File
	quarantineLine := func(line []byte) {
		if quarantine == nil {
			quarantine, _ = os.OpenFile(path+".quarantine",
				os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		}
		if quarantine != nil {
			quarantine.Write(append(append([]byte(nil), line...), '\n'))
		}
	}
	var loaded, bad int64
	var good []string // surviving lines, for compaction when any were bad
	if len(data) > 0 && data[len(data)-1] != '\n' {
		// Crash mid-append: the tail has no terminator. Quarantine it
		// and drop it, so the next append cannot concatenate onto it.
		nl := strings.LastIndexByte(string(data), '\n')
		quarantineLine(data[nl+1:])
		bad++
		data = data[:nl+1]
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec record
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.K == "" {
			bad++
			quarantineLine([]byte(line))
			continue
		}
		good = append(good, line)
		s.storeLocked(rec.K, rec.E)
		loaded++
	}
	if quarantine != nil {
		quarantine.Close()
	}
	if bad > 0 {
		// Compact: rewrite the journal with only the readable lines, so
		// quarantine is one-shot — the bad records live in .quarantine,
		// not in every future load. Write-then-rename keeps the journal
		// intact if we crash mid-compaction.
		s.logf("solver: journal %s: quarantined %d unreadable entries to %s.quarantine (loaded %d)",
			path, bad, path, loaded)
		compact := ""
		if len(good) > 0 {
			compact = strings.Join(good, "\n") + "\n"
		}
		if err := os.WriteFile(path+".tmp", []byte(compact), 0o644); err != nil {
			return err
		}
		if err := os.Rename(path+".tmp", path); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.journal = f
	s.journalPath = path
	s.loaded = loaded
	s.appended = 0
	s.quarantined = bad
	return nil
}

// DetachJournal closes the journal (if any); the in-memory tiers keep
// serving.
func (s *Store) DetachJournal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
		s.journalPath = ""
	}
}

// Reset empties the in-memory tiers and zeroes the hit/miss/store
// counters, used by benchmarks that need a provably cold run. An
// attached journal stays attached (and keeps its line accounting):
// resetting forgets verdicts, it does not unwrite them.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hot = make(map[string]smt.MemoEntry)
	s.cold = make(map[string]smt.MemoEntry)
	s.hits.Store(0)
	s.misses.Store(0)
	s.stores.Store(0)
}

// Len reports how many distinct entries the tiers currently hold.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.hot)
	for k := range s.cold {
		if _, ok := s.hot[k]; !ok {
			n++
		}
	}
	return n
}

// Counters reports lifetime lookups that hit, lookups that missed, and
// stores accepted (since the last Reset).
func (s *Store) Counters() (hits, misses, stores int64) {
	return s.hits.Load(), s.misses.Load(), s.stores.Load()
}

// JournalStats describes the attached journal (zero value when none).
type JournalStats struct {
	Path        string `json:"path,omitempty"`
	Loaded      int64  `json:"loaded"`
	Appended    int64  `json:"appended"`
	Quarantined int64  `json:"quarantined"`
	// Entries is the total readable records now on disk: replayed plus
	// appended since attach.
	Entries int64 `json:"entries"`
}

// Journal reports the journal accounting.
func (s *Store) Journal() JournalStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return JournalStats{
		Path:        s.journalPath,
		Loaded:      s.loaded,
		Appended:    s.appended,
		Quarantined: s.quarantined,
		Entries:     s.loaded + s.appended,
	}
}

// Query is one stored verdict with its key, as returned by provenance
// queries.
type Query struct {
	Key   string        `json:"key"`
	Entry smt.MemoEntry `json:"entry"`
}

// ByContext returns every stored entry whose Context matches ctx
// exactly — the join key between memoized queries and rule provenance
// (workers label queries "synthesis:<pattern key>"). Order is
// unspecified; callers sort.
func (s *Store) ByContext(ctx string) []Query {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Query
	seen := map[string]bool{}
	for _, tier := range []map[string]smt.MemoEntry{s.hot, s.cold} {
		for k, e := range tier {
			if seen[k] || e.Context != ctx {
				continue
			}
			seen[k] = true
			out = append(out, Query{Key: k, Entry: e})
		}
	}
	return out
}
