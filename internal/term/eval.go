package term

import (
	"fmt"

	"iselgen/internal/bv"
)

// Env supplies concrete values for the free variables of a term during
// test-input evaluation (paper §V-C).
//
// Loads are evaluated against a fixed pseudo-random memory: the value
// loaded from address a is a deterministic hash of (a, width). This makes
// two terms that load from provably-equal addresses evaluate equal, while
// terms that load from different addresses almost surely differ — exactly
// the discrimination needed to probe candidate matches. A Store effect
// evaluates to a hash of (address, value, width) so that store effects
// can be compared by their sample evaluations too.
type Env struct {
	Vals map[string]bv.BV
	// Mem, when non-nil, replaces the hash-based memory model for Load
	// terms — the machine simulator supplies its real memory here. Store
	// terms still evaluate to a digest; executors handle store effects by
	// evaluating the address and value subterms explicitly.
	Mem MemModel
}

// MemModel supplies load values during evaluation.
type MemModel interface {
	Load(addr uint64, bits int) bv.BV
}

// NewEnv returns an empty environment.
func NewEnv() *Env { return &Env{Vals: make(map[string]bv.BV)} }

// Bind assigns a value to a variable name.
func (e *Env) Bind(name string, v bv.BV) { e.Vals[name] = v }

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// MemValue is the deterministic pseudo-random memory model: the `width`
// bits stored at address addr.
func MemValue(addr uint64, width int) bv.BV {
	lo := mix64(addr ^ 0x9e3779b97f4a7c15 ^ uint64(width))
	hi := mix64(lo + 0x632be59bd9b4e019)
	return bv.New128(width, hi, lo)
}

// StoreDigest summarizes a store effect for evaluation-based comparison.
func StoreDigest(addr uint64, val bv.BV, width int) bv.BV {
	h := mix64(addr) ^ mix64(val.Lo+0x100) ^ mix64(val.Hi+uint64(width)<<32)
	return bv.New128(width, mix64(h+1), h)
}

// Eval evaluates t under env. It panics if a variable is unbound; callers
// enumerate Vars() first and bind every one.
func (t *Term) Eval(env *Env) bv.BV {
	memo := make(map[*Term]bv.BV, 16)
	return t.eval(env, memo)
}

func (t *Term) eval(env *Env, memo map[*Term]bv.BV) bv.BV {
	if v, ok := memo[t]; ok {
		return v
	}
	var r bv.BV
	arg := func(i int) bv.BV { return t.Args[i].eval(env, memo) }
	switch t.Op {
	case Const:
		r = t.CVal
	case Var:
		v, ok := env.Vals[t.Name]
		if !ok {
			panic(fmt.Sprintf("term: unbound variable %q", t.Name))
		}
		if v.W() != t.W() {
			panic(fmt.Sprintf("term: variable %q bound at width %d, term width %d",
				t.Name, v.W(), t.W()))
		}
		r = v
	case Add:
		r = arg(0).Add(arg(1))
	case Sub:
		r = arg(0).Sub(arg(1))
	case Mul:
		r = arg(0).Mul(arg(1))
	case UDiv:
		r = arg(0).UDiv(arg(1))
	case SDiv:
		r = arg(0).SDiv(arg(1))
	case URem:
		r = arg(0).URem(arg(1))
	case SRem:
		r = arg(0).SRem(arg(1))
	case Neg:
		r = arg(0).Neg()
	case Not:
		r = arg(0).Not()
	case And:
		r = arg(0).And(arg(1))
	case Or:
		r = arg(0).Or(arg(1))
	case Xor:
		r = arg(0).Xor(arg(1))
	case Shl:
		r = arg(0).Shl(arg(1))
	case LShr:
		r = arg(0).LShr(arg(1))
	case AShr:
		r = arg(0).AShr(arg(1))
	case RotL:
		r = arg(0).RotL(arg(1))
	case RotR:
		r = arg(0).RotR(arg(1))
	case Eq:
		r = bv.NewBool(arg(0).Eq(arg(1)))
	case Ult:
		r = bv.NewBool(arg(0).Ult(arg(1)))
	case Slt:
		r = bv.NewBool(arg(0).Slt(arg(1)))
	case Concat:
		r = arg(0).Concat(arg(1))
	case Extract:
		r = arg(0).Extract(int(t.Aux0), int(t.Aux1))
	case ZExt:
		r = arg(0).ZExt(t.W())
	case SExt:
		r = arg(0).SExt(t.W())
	case Ite:
		if arg(0).Bool() {
			r = arg(1)
		} else {
			r = arg(2)
		}
	case Load:
		if env.Mem != nil {
			r = env.Mem.Load(arg(0).Uint64(), t.W())
		} else {
			r = MemValue(arg(0).Uint64(), t.W())
		}
	case Store:
		r = StoreDigest(arg(0).Uint64(), arg(1), t.W())
	case Popcount:
		r = arg(0).Popcount()
	case Clz:
		r = arg(0).Clz()
	case Ctz:
		r = arg(0).Ctz()
	case Rev:
		r = arg(0).Rev()
	default:
		panic(fmt.Sprintf("term: eval of %v", t.Op))
	}
	memo[t] = r
	return r
}
