package term

import (
	"fmt"

	"iselgen/internal/bv"
)

// Builder interns terms. All terms that may be compared for pointer
// equality, stored in the same trie, or checked by the same SMT context
// must come from the same Builder.
//
// Builders perform light constant folding and a handful of local
// simplifications at construction time (x+0, x*1, x^x, double negation,
// ...). Deeper normalization — linear combinations, coefficient
// extraction, operand ordering — is the job of package canon.
type Builder struct {
	terms map[key]*Term
	vars  map[string]*Term
	next  uint32
}

type key struct {
	op         Op
	width      uint8
	aux0, aux1 int32
	a0, a1, a2 uint32 // arg IDs + 1; 0 means absent
	cHi, cLo   uint64
	cW         uint8
	kind       VarKind
	name       string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{terms: make(map[key]*Term), vars: make(map[string]*Term)}
}

// NumTerms returns the number of distinct interned terms.
func (b *Builder) NumTerms() int { return len(b.terms) }

func (b *Builder) intern(t *Term) *Term {
	k := key{op: t.Op, width: t.Width, aux0: t.Aux0, aux1: t.Aux1,
		kind: t.Kind, name: t.Name}
	if t.Op == Const {
		k.cHi, k.cLo, k.cW = t.CVal.Hi, t.CVal.Lo, t.CVal.Width
	}
	switch len(t.Args) {
	case 3:
		k.a2 = t.Args[2].ID + 1
		fallthrough
	case 2:
		k.a1 = t.Args[1].ID + 1
		fallthrough
	case 1:
		k.a0 = t.Args[0].ID + 1
	case 0:
	default:
		panic("term: arity > 3")
	}
	if old, ok := b.terms[k]; ok {
		return old
	}
	t.ID = b.next
	b.next++
	b.terms[k] = t
	return t
}

// ConstBV returns the constant term for v.
func (b *Builder) ConstBV(v bv.BV) *Term {
	return b.intern(&Term{Op: Const, Width: v.Width, CVal: v})
}

// Const returns the constant term of the given width and value.
func (b *Builder) Const(width int, v uint64) *Term {
	return b.ConstBV(bv.New(width, v))
}

// ConstInt returns a constant from a signed value.
func (b *Builder) ConstInt(width int, v int64) *Term {
	return b.ConstBV(bv.NewInt(width, v))
}

// VarT returns the variable term with the given name, kind, and width.
// The same (name) must always be used with the same kind and width.
func (b *Builder) VarT(name string, kind VarKind, width int) *Term {
	if old, ok := b.vars[name]; ok {
		if old.Kind != kind || old.W() != width {
			panic(fmt.Sprintf("term: variable %q redeclared as %v/%d (was %v/%d)",
				name, kind, width, old.Kind, old.W()))
		}
		return old
	}
	t := b.intern(&Term{Op: Var, Width: uint8(width), Name: name, Kind: kind})
	b.vars[name] = t
	return t
}

// Reg returns a register variable.
func (b *Builder) Reg(name string, width int) *Term { return b.VarT(name, KindReg, width) }

// Imm returns an immediate variable.
func (b *Builder) Imm(name string, width int) *Term { return b.VarT(name, KindImm, width) }

func checkSameWidth(op Op, x, y *Term) {
	if x.Width != y.Width {
		panic(fmt.Sprintf("term: %v width mismatch %d vs %d (%s vs %s)",
			op, x.Width, y.Width, x, y))
	}
}

func (b *Builder) binary(op Op, x, y *Term) *Term {
	checkSameWidth(op, x, y)
	w := x.Width
	if op == Eq || op == Ult || op == Slt {
		w = 1
	}
	// Order commutative operands by ID for a normal form at build time.
	if op.IsCommutative() && y.ID < x.ID {
		x, y = y, x
	}
	return b.intern(&Term{Op: op, Width: w, Args: []*Term{x, y}})
}

// Add returns x + y, folding constants and dropping zero addends.
func (b *Builder) Add(x, y *Term) *Term {
	checkSameWidth(Add, x, y)
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.Add(y.CVal))
	}
	if x.IsConst() && x.CVal.IsZero() {
		return y
	}
	if y.IsConst() && y.CVal.IsZero() {
		return x
	}
	return b.binary(Add, x, y)
}

// Sub returns x - y.
func (b *Builder) Sub(x, y *Term) *Term {
	checkSameWidth(Sub, x, y)
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.Sub(y.CVal))
	}
	if y.IsConst() && y.CVal.IsZero() {
		return x
	}
	if x == y {
		return b.Const(x.W(), 0)
	}
	return b.binary(Sub, x, y)
}

// Mul returns x * y.
func (b *Builder) Mul(x, y *Term) *Term {
	checkSameWidth(Mul, x, y)
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.Mul(y.CVal))
	}
	for _, p := range [2][2]*Term{{x, y}, {y, x}} {
		c, o := p[0], p[1]
		if c.IsConst() {
			if c.CVal.IsZero() {
				return c
			}
			if c.CVal.Lo == 1 && c.CVal.Hi == 0 {
				return o
			}
			if c.CVal.IsOnes() {
				return b.Neg(o)
			}
			if n, ok := c.CVal.IsPow2(); ok {
				return b.Shl(o, b.Const(o.W(), uint64(n)))
			}
		}
	}
	return b.binary(Mul, x, y)
}

// UDiv returns x / y (unsigned, SMT-LIB semantics).
func (b *Builder) UDiv(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.UDiv(y.CVal))
	}
	return b.binary(UDiv, x, y)
}

// SDiv returns x / y (signed).
func (b *Builder) SDiv(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.SDiv(y.CVal))
	}
	return b.binary(SDiv, x, y)
}

// URem returns x mod y (unsigned).
func (b *Builder) URem(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.URem(y.CVal))
	}
	return b.binary(URem, x, y)
}

// SRem returns the signed remainder.
func (b *Builder) SRem(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.SRem(y.CVal))
	}
	return b.binary(SRem, x, y)
}

// Neg returns -x.
func (b *Builder) Neg(x *Term) *Term {
	if x.IsConst() {
		return b.ConstBV(x.CVal.Neg())
	}
	if x.Op == Neg {
		return x.Args[0]
	}
	return b.intern(&Term{Op: Neg, Width: x.Width, Args: []*Term{x}})
}

// Not returns the bitwise complement of x.
func (b *Builder) Not(x *Term) *Term {
	if x.IsConst() {
		return b.ConstBV(x.CVal.Not())
	}
	if x.Op == Not {
		return x.Args[0]
	}
	return b.intern(&Term{Op: Not, Width: x.Width, Args: []*Term{x}})
}

// And returns x & y.
func (b *Builder) And(x, y *Term) *Term {
	checkSameWidth(And, x, y)
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.And(y.CVal))
	}
	if x == y {
		return x
	}
	for _, p := range [2][2]*Term{{x, y}, {y, x}} {
		c, o := p[0], p[1]
		if c.IsConst() {
			if c.CVal.IsZero() {
				return c
			}
			if c.CVal.IsOnes() {
				return o
			}
		}
	}
	return b.binary(And, x, y)
}

// Or returns x | y.
func (b *Builder) Or(x, y *Term) *Term {
	checkSameWidth(Or, x, y)
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.Or(y.CVal))
	}
	if x == y {
		return x
	}
	for _, p := range [2][2]*Term{{x, y}, {y, x}} {
		c, o := p[0], p[1]
		if c.IsConst() {
			if c.CVal.IsZero() {
				return o
			}
			if c.CVal.IsOnes() {
				return c
			}
		}
	}
	return b.binary(Or, x, y)
}

// Xor returns x ^ y.
func (b *Builder) Xor(x, y *Term) *Term {
	checkSameWidth(Xor, x, y)
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.Xor(y.CVal))
	}
	if x == y {
		return b.Const(x.W(), 0)
	}
	for _, p := range [2][2]*Term{{x, y}, {y, x}} {
		c, o := p[0], p[1]
		if c.IsConst() {
			if c.CVal.IsZero() {
				return o
			}
			if c.CVal.IsOnes() {
				return b.Not(o)
			}
		}
	}
	return b.binary(Xor, x, y)
}

// Shl returns x << y.
func (b *Builder) Shl(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.Shl(y.CVal))
	}
	if y.IsConst() && y.CVal.IsZero() {
		return x
	}
	return b.binary(Shl, x, y)
}

// LShr returns x >> y (logical).
func (b *Builder) LShr(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.LShr(y.CVal))
	}
	if y.IsConst() && y.CVal.IsZero() {
		return x
	}
	return b.binary(LShr, x, y)
}

// AShr returns x >> y (arithmetic).
func (b *Builder) AShr(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.AShr(y.CVal))
	}
	if y.IsConst() && y.CVal.IsZero() {
		return x
	}
	return b.binary(AShr, x, y)
}

// RotL returns x rotated left by y.
func (b *Builder) RotL(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.RotL(y.CVal))
	}
	return b.binary(RotL, x, y)
}

// RotR returns x rotated right by y.
func (b *Builder) RotR(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.RotR(y.CVal))
	}
	return b.binary(RotR, x, y)
}

// Eq returns the 1-bit comparison x == y.
func (b *Builder) Eq(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(bv.NewBool(x.CVal.Eq(y.CVal)))
	}
	if x == y {
		return b.Const(1, 1)
	}
	return b.binary(Eq, x, y)
}

// Ne returns the 1-bit comparison x != y (encoded as bvnot (= x y)).
func (b *Builder) Ne(x, y *Term) *Term { return b.Not(b.Eq(x, y)) }

// Ult returns the 1-bit comparison x < y (unsigned).
func (b *Builder) Ult(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(bv.NewBool(x.CVal.Ult(y.CVal)))
	}
	if x == y {
		return b.Const(1, 0)
	}
	return b.binary(Ult, x, y)
}

// Slt returns the 1-bit comparison x < y (signed).
func (b *Builder) Slt(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(bv.NewBool(x.CVal.Slt(y.CVal)))
	}
	if x == y {
		return b.Const(1, 0)
	}
	return b.binary(Slt, x, y)
}

// Ule returns x <= y unsigned, encoded as not(y < x).
func (b *Builder) Ule(x, y *Term) *Term { return b.Not(b.Ult(y, x)) }

// Sle returns x <= y signed, encoded as not(y < x).
func (b *Builder) Sle(x, y *Term) *Term { return b.Not(b.Slt(y, x)) }

// Ugt returns x > y unsigned.
func (b *Builder) Ugt(x, y *Term) *Term { return b.Ult(y, x) }

// Sgt returns x > y signed.
func (b *Builder) Sgt(x, y *Term) *Term { return b.Slt(y, x) }

// Concat returns x ++ y with x as the high part.
func (b *Builder) Concat(x, y *Term) *Term {
	if x.IsConst() && y.IsConst() {
		return b.ConstBV(x.CVal.Concat(y.CVal))
	}
	w := x.W() + y.W()
	if w > bv.MaxWidth {
		panic("term: concat exceeds max width")
	}
	return b.intern(&Term{Op: Concat, Width: uint8(w), Args: []*Term{x, y}})
}

// Extract returns bits hi..lo of x.
func (b *Builder) Extract(hi, lo int, x *Term) *Term {
	if hi < lo || lo < 0 || hi >= x.W() {
		panic(fmt.Sprintf("term: bad extract [%d:%d] of width %d", hi, lo, x.W()))
	}
	if lo == 0 && hi == x.W()-1 {
		return x
	}
	if x.IsConst() {
		return b.ConstBV(x.CVal.Extract(hi, lo))
	}
	if x.Op == Extract {
		return b.Extract(int(x.Aux1)+hi, int(x.Aux1)+lo, x.Args[0])
	}
	if x.Op == ZExt && hi < x.Args[0].W() {
		return b.Extract(hi, lo, x.Args[0])
	}
	if x.Op == ZExt && lo >= x.Args[0].W() {
		return b.Const(hi-lo+1, 0)
	}
	if x.Op == Concat {
		loW := x.Args[1].W()
		if lo >= loW {
			return b.Extract(hi-loW, lo-loW, x.Args[0])
		}
		if hi < loW {
			return b.Extract(hi, lo, x.Args[1])
		}
	}
	return b.intern(&Term{Op: Extract, Width: uint8(hi - lo + 1),
		Aux0: int32(hi), Aux1: int32(lo), Args: []*Term{x}})
}

// ZExt zero-extends x to the given width.
func (b *Builder) ZExt(width int, x *Term) *Term {
	if width == x.W() {
		return x
	}
	if width < x.W() {
		panic(fmt.Sprintf("term: zext %d -> %d shrinks", x.W(), width))
	}
	if x.IsConst() {
		return b.ConstBV(x.CVal.ZExt(width))
	}
	if x.Op == ZExt {
		return b.ZExt(width, x.Args[0])
	}
	return b.intern(&Term{Op: ZExt, Width: uint8(width), Args: []*Term{x}})
}

// SExt sign-extends x to the given width.
func (b *Builder) SExt(width int, x *Term) *Term {
	if width == x.W() {
		return x
	}
	if width < x.W() {
		panic(fmt.Sprintf("term: sext %d -> %d shrinks", x.W(), width))
	}
	if x.IsConst() {
		return b.ConstBV(x.CVal.SExt(width))
	}
	if x.Op == SExt {
		return b.SExt(width, x.Args[0])
	}
	return b.intern(&Term{Op: SExt, Width: uint8(width), Args: []*Term{x}})
}

// Trunc truncates x to the given width (an extract of the low bits).
func (b *Builder) Trunc(width int, x *Term) *Term {
	if width == x.W() {
		return x
	}
	return b.Extract(width-1, 0, x)
}

// Ite returns if cond != 0 then x else y. cond must be 1 bit wide.
func (b *Builder) Ite(cond, x, y *Term) *Term {
	if cond.W() != 1 {
		panic("term: ite condition must be 1 bit")
	}
	checkSameWidth(Ite, x, y)
	if cond.IsConst() {
		if cond.CVal.Bool() {
			return x
		}
		return y
	}
	if x == y {
		return x
	}
	return b.intern(&Term{Op: Ite, Width: x.Width, Args: []*Term{cond, x, y}})
}

// Bool converts a term to a 1-bit condition: x != 0.
func (b *Builder) Bool(x *Term) *Term {
	if x.W() == 1 {
		return x
	}
	return b.Ne(x, b.Const(x.W(), 0))
}

// Load returns the symbolic load of `width` bits from the 64-bit address
// term addr.
func (b *Builder) Load(width int, addr *Term) *Term {
	if addr.W() != 64 {
		panic("term: load address must be 64 bits")
	}
	return b.intern(&Term{Op: Load, Width: uint8(width), Aux0: int32(width),
		Args: []*Term{addr}})
}

// Store returns the symbolic store effect of val to the 64-bit address
// term addr. Store terms may only appear as the root of a memory effect.
func (b *Builder) Store(addr, val *Term) *Term {
	if addr.W() != 64 {
		panic("term: store address must be 64 bits")
	}
	return b.intern(&Term{Op: Store, Width: val.Width, Aux0: int32(val.W()),
		Args: []*Term{addr, val}})
}

// Popcount returns the population count of x.
func (b *Builder) Popcount(x *Term) *Term {
	if x.IsConst() {
		return b.ConstBV(x.CVal.Popcount())
	}
	return b.intern(&Term{Op: Popcount, Width: x.Width, Args: []*Term{x}})
}

// Clz returns the count of leading zeros of x.
func (b *Builder) Clz(x *Term) *Term {
	if x.IsConst() {
		return b.ConstBV(x.CVal.Clz())
	}
	return b.intern(&Term{Op: Clz, Width: x.Width, Args: []*Term{x}})
}

// Ctz returns the count of trailing zeros of x.
func (b *Builder) Ctz(x *Term) *Term {
	if x.IsConst() {
		return b.ConstBV(x.CVal.Ctz())
	}
	return b.intern(&Term{Op: Ctz, Width: x.Width, Args: []*Term{x}})
}

// Rev returns the byte-reverse of x.
func (b *Builder) Rev(x *Term) *Term {
	if x.IsConst() {
		return b.ConstBV(x.CVal.Rev())
	}
	if x.Op == Rev {
		return x.Args[0]
	}
	return b.intern(&Term{Op: Rev, Width: x.Width, Args: []*Term{x}})
}

// Rebuild re-creates t inside this builder, applying subst to variables.
// Variables not present in subst are re-interned unchanged. The result
// of substitution must be width-compatible with the variable it replaces.
func (b *Builder) Rebuild(t *Term, subst map[*Term]*Term) *Term {
	// subst doubles as the memo table: every visited node's rewrite is
	// recorded in it (u -> rebuilt-u is itself a valid, idempotent
	// substitution entry). Callers that rebuild several effect terms of
	// one instruction with the same map therefore share the walk over
	// common subterms instead of re-deriving them per effect.
	var walk func(*Term) *Term
	walk = func(u *Term) *Term {
		if s, ok := subst[u]; ok {
			if s.W() != u.W() {
				panic(fmt.Sprintf("term: substitution width mismatch for %s: %d vs %d", u, u.W(), s.W()))
			}
			return s
		}
		var r *Term
		switch u.Op {
		case Const:
			r = b.ConstBV(u.CVal)
		case Var:
			r = b.VarT(u.Name, u.Kind, u.W())
		default:
			args := make([]*Term, len(u.Args))
			for i, a := range u.Args {
				args[i] = walk(a)
			}
			r = b.Apply(u.Op, u.W(), int(u.Aux0), int(u.Aux1), args)
		}
		subst[u] = r
		return r
	}
	return walk(t)
}

// RebuildOverlay is Rebuild with the substitution split into a read-only
// base and a mutable overlay: lookups consult the overlay first, then
// the base; every rewrite is recorded in the overlay only. Calling
// Rebuild on a clone of base pre-seeded with the overlay's entries gives
// identical results — this variant just spares the clone when the base
// is a large shared memo and only a few entries differ per call.
func (b *Builder) RebuildOverlay(t *Term, base, overlay map[*Term]*Term) *Term {
	var walk func(*Term) *Term
	walk = func(u *Term) *Term {
		s, ok := overlay[u]
		if !ok {
			s, ok = base[u]
		}
		if ok {
			if s.W() != u.W() {
				panic(fmt.Sprintf("term: substitution width mismatch for %s: %d vs %d", u, u.W(), s.W()))
			}
			return s
		}
		var r *Term
		switch u.Op {
		case Const:
			r = b.ConstBV(u.CVal)
		case Var:
			r = b.VarT(u.Name, u.Kind, u.W())
		default:
			args := make([]*Term, len(u.Args))
			for i, a := range u.Args {
				args[i] = walk(a)
			}
			r = b.Apply(u.Op, u.W(), int(u.Aux0), int(u.Aux1), args)
		}
		overlay[u] = r
		return r
	}
	return walk(t)
}

// Apply constructs a term of the given op from already-built arguments,
// dispatching to the simplifying constructors.
func (b *Builder) Apply(op Op, width, aux0, aux1 int, args []*Term) *Term {
	switch op {
	case Add:
		return b.Add(args[0], args[1])
	case Sub:
		return b.Sub(args[0], args[1])
	case Mul:
		return b.Mul(args[0], args[1])
	case UDiv:
		return b.UDiv(args[0], args[1])
	case SDiv:
		return b.SDiv(args[0], args[1])
	case URem:
		return b.URem(args[0], args[1])
	case SRem:
		return b.SRem(args[0], args[1])
	case Neg:
		return b.Neg(args[0])
	case Not:
		return b.Not(args[0])
	case And:
		return b.And(args[0], args[1])
	case Or:
		return b.Or(args[0], args[1])
	case Xor:
		return b.Xor(args[0], args[1])
	case Shl:
		return b.Shl(args[0], args[1])
	case LShr:
		return b.LShr(args[0], args[1])
	case AShr:
		return b.AShr(args[0], args[1])
	case RotL:
		return b.RotL(args[0], args[1])
	case RotR:
		return b.RotR(args[0], args[1])
	case Eq:
		return b.Eq(args[0], args[1])
	case Ult:
		return b.Ult(args[0], args[1])
	case Slt:
		return b.Slt(args[0], args[1])
	case Concat:
		return b.Concat(args[0], args[1])
	case Extract:
		return b.Extract(aux0, aux1, args[0])
	case ZExt:
		return b.ZExt(width, args[0])
	case SExt:
		return b.SExt(width, args[0])
	case Ite:
		return b.Ite(args[0], args[1], args[2])
	case Load:
		return b.Load(aux0, args[0])
	case Store:
		return b.Store(args[0], args[1])
	case Popcount:
		return b.Popcount(args[0])
	case Clz:
		return b.Clz(args[0])
	case Ctz:
		return b.Ctz(args[0])
	case Rev:
		return b.Rev(args[0])
	default:
		panic(fmt.Sprintf("term: Apply of %v", op))
	}
}
