package term

import (
	"strings"
	"testing"

	"iselgen/internal/bv"
)

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	s1 := b.Add(x, y)
	s2 := b.Add(x, y)
	if s1 != s2 {
		t.Error("identical adds not pointer-equal")
	}
	if s3 := b.Add(y, x); s3 != s1 {
		t.Error("commutative operands not normalized")
	}
	if b.Sub(x, y) == b.Sub(y, x) {
		t.Error("non-commutative op wrongly normalized")
	}
	c1 := b.Const(32, 5)
	c2 := b.ConstBV(bv.New(32, 5))
	if c1 != c2 {
		t.Error("constants not interned")
	}
	if b.Const(32, 5) == b.Const(16, 5) {
		t.Error("constants of different widths interned together")
	}
}

func TestVarRedeclarePanics(t *testing.T) {
	b := NewBuilder()
	b.Reg("x", 32)
	defer func() {
		if recover() == nil {
			t.Error("no panic on redeclare with different width")
		}
	}()
	b.Reg("x", 64)
}

func TestConstFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Reg("x", 16)
	if got := b.Add(b.Const(16, 3), b.Const(16, 4)); !got.IsConst() || got.CVal.Lo != 7 {
		t.Errorf("3+4 = %v", got)
	}
	if got := b.Add(x, b.Const(16, 0)); got != x {
		t.Errorf("x+0 = %v", got)
	}
	if got := b.Mul(x, b.Const(16, 1)); got != x {
		t.Errorf("x*1 = %v", got)
	}
	if got := b.Mul(x, b.Const(16, 0)); !got.IsConst() || !got.CVal.IsZero() {
		t.Errorf("x*0 = %v", got)
	}
	if got := b.And(x, b.ConstInt(16, -1)); got != x {
		t.Errorf("x&-1 = %v", got)
	}
	if got := b.Or(x, b.Const(16, 0)); got != x {
		t.Errorf("x|0 = %v", got)
	}
	if got := b.Xor(x, x); !got.IsConst() || !got.CVal.IsZero() {
		t.Errorf("x^x = %v", got)
	}
	if got := b.Not(b.Not(x)); got != x {
		t.Errorf("~~x = %v", got)
	}
	if got := b.Neg(b.Neg(x)); got != x {
		t.Errorf("--x = %v", got)
	}
	if got := b.Sub(x, x); !got.IsConst() || !got.CVal.IsZero() {
		t.Errorf("x-x = %v", got)
	}
	if got := b.Eq(x, x); !got.IsConst() || !got.CVal.Bool() {
		t.Errorf("x==x = %v", got)
	}
}

func TestExtractSimplifications(t *testing.T) {
	b := NewBuilder()
	x := b.Reg("x", 32)
	if got := b.Extract(31, 0, x); got != x {
		t.Error("full extract not identity")
	}
	// Extract of extract composes.
	e1 := b.Extract(23, 8, x)
	e2 := b.Extract(7, 4, e1)
	want := b.Extract(15, 12, x)
	if e2 != want {
		t.Errorf("nested extract = %v, want %v", e2, want)
	}
	// Extract of zext below the original width passes through.
	z := b.ZExt(64, x)
	if got := b.Extract(15, 0, z); got != b.Extract(15, 0, x) {
		t.Errorf("extract of zext = %v", got)
	}
	if got := b.Extract(63, 32, z); !got.IsConst() || !got.CVal.IsZero() {
		t.Errorf("high extract of zext = %v", got)
	}
	// Extract of concat selects one side.
	y := b.Reg("y", 32)
	c := b.Concat(x, y)
	if got := b.Extract(31, 0, c); got != y {
		t.Errorf("low extract of concat = %v", got)
	}
	if got := b.Extract(63, 32, c); got != x {
		t.Errorf("high extract of concat = %v", got)
	}
}

func TestIte(t *testing.T) {
	b := NewBuilder()
	x, y := b.Reg("x", 8), b.Reg("y", 8)
	cond := b.Eq(x, y)
	if got := b.Ite(b.Const(1, 1), x, y); got != x {
		t.Error("ite true")
	}
	if got := b.Ite(b.Const(1, 0), x, y); got != y {
		t.Error("ite false")
	}
	if got := b.Ite(cond, x, x); got != x {
		t.Error("ite same arms")
	}
}

func TestEvalBasic(t *testing.T) {
	b := NewBuilder()
	x, y := b.Reg("x", 32), b.Reg("y", 32)
	e := NewEnv()
	e.Bind("x", bv.New(32, 10))
	e.Bind("y", bv.New(32, 3))
	tt := b.Add(x, b.Shl(y, b.Const(32, 2)))
	if got := tt.Eval(e); got.Lo != 22 {
		t.Errorf("10 + (3<<2) = %d", got.Lo)
	}
	cmp := b.Ite(b.Slt(x, y), x, y)
	if got := cmp.Eval(e); got.Lo != 3 {
		t.Errorf("min = %d", got.Lo)
	}
}

func TestEvalUnboundPanics(t *testing.T) {
	b := NewBuilder()
	x := b.Reg("x", 8)
	defer func() {
		if recover() == nil {
			t.Error("no panic for unbound var")
		}
	}()
	x.Eval(NewEnv())
}

func TestEvalLoadDeterministic(t *testing.T) {
	b := NewBuilder()
	a1 := b.Reg("a", 64)
	l1 := b.Load(32, a1)
	l2 := b.Load(32, b.Add(a1, b.Const(64, 0))) // same address term after folding
	e := NewEnv()
	e.Bind("a", bv.New(64, 0x1000))
	if l1.Eval(e) != l2.Eval(e) {
		t.Error("same-address loads evaluate differently")
	}
	e2 := NewEnv()
	e2.Bind("a", bv.New(64, 0x2000))
	if l1.Eval(e) == l1.Eval(e2) {
		t.Error("different addresses loaded identical values (hash collision?)")
	}
	// Different width loads from the same address differ.
	l8 := b.Load(8, a1)
	if l8.Eval(e).ZExt(32) == l1.Eval(e) {
		t.Error("load widths not separated")
	}
}

func TestEvalStoreDigest(t *testing.T) {
	b := NewBuilder()
	a := b.Reg("a", 64)
	v := b.Reg("v", 32)
	s1 := b.Store(a, v)
	s2 := b.Store(a, b.Or(v, b.Const(32, 0)))
	e := NewEnv()
	e.Bind("a", bv.New(64, 64))
	e.Bind("v", bv.New(32, 9))
	if s1.Eval(e) != s2.Eval(e) {
		t.Error("equal stores evaluate differently")
	}
	s3 := b.Store(a, b.Add(v, b.Const(32, 1)))
	if s1.Eval(e) == s3.Eval(e) {
		t.Error("different stores evaluate equal")
	}
}

func TestVarsAndSize(t *testing.T) {
	b := NewBuilder()
	x, y := b.Reg("x", 32), b.Imm("i", 32)
	tt := b.Add(b.Mul(x, y), b.Mul(x, y))
	vars := tt.Vars()
	if len(vars) != 2 {
		t.Errorf("vars = %d, want 2", len(vars))
	}
	// DAG sharing: add + mul + x + y = 4 nodes.
	if got := tt.Size(); got != 4 {
		t.Errorf("size = %d, want 4", got)
	}
	if got := tt.CountOp(Mul); got != 1 {
		t.Errorf("mul count = %d, want 1 (shared node)", got)
	}
}

func TestLoadsEnumeration(t *testing.T) {
	b := NewBuilder()
	a := b.Reg("a", 64)
	l := b.Load(64, a)
	tt := b.Add(l, b.Load(64, b.Add(a, b.Const(64, 8))))
	if got := len(tt.Loads()); got != 2 {
		t.Errorf("loads = %d, want 2", got)
	}
}

func TestString(t *testing.T) {
	b := NewBuilder()
	x, y := b.Reg("x", 32), b.Reg("y", 32)
	s := b.Add(x, b.Shl(y, b.Const(32, 4))).String()
	for _, want := range []string{"bvadd", "bvshl", "x", "y", "#x00000004"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	ex := b.Extract(15, 8, x).String()
	if !strings.Contains(ex, "extract 15 8") {
		t.Errorf("extract string = %q", ex)
	}
}

func TestRebuildSubst(t *testing.T) {
	b := NewBuilder()
	x, y := b.Reg("x", 32), b.Reg("y", 32)
	tt := b.Add(x, b.Mul(y, b.Const(32, 3)))
	b2 := NewBuilder()
	p := b2.Reg("p", 32)
	q := b2.Reg("q", 32)
	got := b2.Rebuild(tt, map[*Term]*Term{x: p, y: q})
	want := b2.Add(p, b2.Mul(q, b2.Const(32, 3)))
	if got != want {
		t.Errorf("rebuild = %v, want %v", got, want)
	}
	// Substituting a constant triggers folding.
	got2 := b2.Rebuild(tt, map[*Term]*Term{x: b2.Const(32, 1), y: b2.Const(32, 2)})
	if !got2.IsConst() || got2.CVal.Lo != 7 {
		t.Errorf("folded rebuild = %v", got2)
	}
}

func TestApplyRoundTrip(t *testing.T) {
	b := NewBuilder()
	x, y := b.Reg("x", 16), b.Reg("y", 16)
	cases := []*Term{
		b.Add(x, y), b.Sub(x, y), b.Mul(x, y), b.UDiv(x, y), b.SDiv(x, y),
		b.URem(x, y), b.SRem(x, y), b.Neg(x), b.Not(x), b.And(x, y),
		b.Or(x, y), b.Xor(x, y), b.Shl(x, y), b.LShr(x, y), b.AShr(x, y),
		b.RotL(x, y), b.RotR(x, y), b.Eq(x, y), b.Ult(x, y), b.Slt(x, y),
		b.Concat(x, y), b.Extract(12, 3, x), b.ZExt(32, x), b.SExt(32, x),
		b.Ite(b.Eq(x, y), x, y), b.Popcount(x), b.Clz(x), b.Ctz(x), b.Rev(x),
		b.Load(16, b.ZExt(64, x)), b.Store(b.ZExt(64, x), y),
	}
	for _, c := range cases {
		got := b.Apply(c.Op, c.W(), int(c.Aux0), int(c.Aux1), c.Args)
		if got != c {
			t.Errorf("Apply(%v) = %v, want identical", c.Op, got)
		}
	}
}

func TestEvalMatchesBVOps(t *testing.T) {
	b := NewBuilder()
	rng := bv.NewRNG(99)
	x, y := b.Reg("x", 24), b.Reg("y", 24)
	terms := []*Term{
		b.Add(x, y), b.Sub(x, y), b.Mul(x, y), b.And(x, y), b.Or(x, y),
		b.Xor(x, y), b.Shl(x, b.URem(y, b.Const(24, 24))), b.AShr(x, b.URem(y, b.Const(24, 24))),
		b.Popcount(x), b.Clz(x), b.Ctz(x),
		b.SExt(48, x), b.Concat(x, y), b.Ite(b.Ult(x, y), x, y),
	}
	for trial := 0; trial < 100; trial++ {
		xv, yv := rng.BV(24), rng.BV(24)
		e := NewEnv()
		e.Bind("x", xv)
		e.Bind("y", yv)
		for _, tt := range terms {
			got := tt.Eval(e)
			if got.W() != tt.W() {
				t.Fatalf("%s: result width %d, term width %d", tt, got.W(), tt.W())
			}
		}
		if got := terms[0].Eval(e); got != xv.Add(yv) {
			t.Fatalf("add eval mismatch: %v vs %v", got, xv.Add(yv))
		}
		if got := terms[12].Eval(e); got != xv.Concat(yv) {
			t.Fatalf("concat eval mismatch")
		}
	}
}
