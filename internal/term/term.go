// Package term implements hash-consed bitvector terms — the common
// semantic representation shared by ISA instruction effects and IR
// operation patterns (paper §IV).
//
// The operation set is the QF_BV fragment of SMT-LIB extended with the
// symbolic functions the paper introduces on top of it: load and store
// for memory effects (§IV-A) and popcount / count-leading-zeros /
// count-trailing-zeros as opaque complex operations (§V-B1).
//
// Terms are immutable and interned per Builder: two structurally equal
// terms built by the same Builder are pointer-equal, which makes
// structural comparison, memoized traversal, and map keys cheap.
package term

import (
	"fmt"
	"strings"
	"sync/atomic"

	"iselgen/internal/bv"
)

// Op identifies a term operation.
type Op uint8

// Term operations. Comparison ops yield 1-bit results; Load yields a
// value of its Aux0 width; Store is only legal as the root of a memory
// effect.
const (
	Const Op = iota
	Var
	Add
	Sub
	Mul
	UDiv
	SDiv
	URem
	SRem
	Neg
	Not
	And
	Or
	Xor
	Shl
	LShr
	AShr
	RotL
	RotR
	Eq
	Ult
	Slt
	Concat  // Args[0] is the high part
	Extract // bits Aux0..Aux1 (hi..lo)
	ZExt
	SExt
	Ite // Args: cond (1 bit), then, else
	Load
	Store // Args: addr, value
	Popcount
	Clz
	Ctz
	Rev // byte reverse
	numOps
)

var opNames = [numOps]string{
	Const: "const", Var: "var", Add: "bvadd", Sub: "bvsub", Mul: "bvmul",
	UDiv: "bvudiv", SDiv: "bvsdiv", URem: "bvurem", SRem: "bvsrem",
	Neg: "bvneg", Not: "bvnot", And: "bvand", Or: "bvor", Xor: "bvxor",
	Shl: "bvshl", LShr: "bvlshr", AShr: "bvashr", RotL: "rotl", RotR: "rotr",
	Eq: "=", Ult: "bvult", Slt: "bvslt", Concat: "concat",
	Extract: "extract", ZExt: "zext", SExt: "sext", Ite: "ite",
	Load: "load", Store: "store", Popcount: "popcount", Clz: "clz",
	Ctz: "ctz", Rev: "rev",
}

// String returns the SMT-LIB-style operation name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsCommutative reports whether the operation's first two operands commute.
func (o Op) IsCommutative() bool {
	switch o {
	case Add, Mul, And, Or, Xor, Eq:
		return true
	}
	return false
}

// VarKind carries the domain information an atom needs during
// canonicalization and unification (paper §V-B1): whether a symbolic
// variable denotes a general-purpose register, a vector register, an
// immediate operand, the program counter, or a condition flag.
type VarKind uint8

// Variable kinds.
const (
	KindReg VarKind = iota
	KindVecReg
	KindImm
	KindPC
	KindFlag
)

var kindNames = [...]string{KindReg: "reg", KindVecReg: "vec", KindImm: "imm", KindPC: "pc", KindFlag: "flag"}

func (k VarKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Term is one node of a hash-consed term DAG. Do not construct Terms
// directly; use a Builder so interning invariants hold.
type Term struct {
	ID    uint32 // unique, dense, per Builder
	Op    Op
	Width uint8 // result width in bits
	// Aux0/Aux1 carry per-op attributes: Extract hi/lo, Load value width,
	// Store value width.
	Aux0, Aux1 int32
	Args       []*Term
	CVal       bv.BV   // valid when Op == Const
	Name       string  // valid when Op == Var
	Kind       VarKind // valid when Op == Var

	// varsCache and loadsCache memoize Vars() and Loads(). Terms are
	// immutable once interned, so neither set ever changes; sequence
	// composition and the SMT fallback re-walk the same embedded effect
	// DAGs thousands of times. Concurrent first calls may each compute
	// and store — the results are identical, so whichever pointer wins
	// is correct.
	varsCache  atomic.Pointer[[]*Term]
	loadsCache atomic.Pointer[[]*Term]
}

// W returns the result width in bits.
func (t *Term) W() int { return int(t.Width) }

// IsConst reports whether the term is a constant.
func (t *Term) IsConst() bool { return t.Op == Const }

// IsVar reports whether the term is a symbolic variable.
func (t *Term) IsVar() bool { return t.Op == Var }

// Size returns the number of distinct DAG nodes reachable from t.
func (t *Term) Size() int {
	seen := map[*Term]bool{}
	var walk func(*Term)
	walk = func(u *Term) {
		if seen[u] {
			return
		}
		seen[u] = true
		for _, a := range u.Args {
			walk(a)
		}
	}
	walk(t)
	return len(seen)
}

// Vars returns the distinct variables of t in first-occurrence order
// (deterministic because Args order is deterministic).
func (t *Term) Vars() []*Term {
	if p := t.varsCache.Load(); p != nil {
		return *p
	}
	var out []*Term
	seen := map[*Term]bool{}
	var walk func(*Term)
	walk = func(u *Term) {
		if seen[u] {
			return
		}
		seen[u] = true
		if u.Op == Var {
			out = append(out, u)
			return
		}
		// A cached subterm contributes its variables without re-walking.
		if p := u.varsCache.Load(); p != nil {
			for _, v := range *p {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
			return
		}
		for _, a := range u.Args {
			walk(a)
		}
	}
	walk(t)
	t.varsCache.Store(&out)
	return out
}

// CountOp returns the number of distinct nodes with the given op.
func (t *Term) CountOp(op Op) int {
	n := 0
	seen := map[*Term]bool{}
	var walk func(*Term)
	walk = func(u *Term) {
		if seen[u] {
			return
		}
		seen[u] = true
		if u.Op == op {
			n++
		}
		for _, a := range u.Args {
			walk(a)
		}
	}
	walk(t)
	return n
}

// Loads returns all distinct Load nodes in t.
func (t *Term) Loads() []*Term {
	if p := t.loadsCache.Load(); p != nil {
		return *p
	}
	var out []*Term
	seen := map[*Term]bool{}
	var walk func(*Term)
	walk = func(u *Term) {
		if seen[u] {
			return
		}
		seen[u] = true
		if u.Op == Load {
			out = append(out, u)
		}
		// Note: unlike Vars, a Load may contain further Loads in its
		// address, so cached subterm results are still merged via the
		// seen map rather than cutting the walk short.
		if p := u.loadsCache.Load(); p != nil {
			for _, l := range *p {
				if !seen[l] {
					seen[l] = true
					out = append(out, l)
				}
			}
			return
		}
		for _, a := range u.Args {
			walk(a)
		}
	}
	walk(t)
	t.loadsCache.Store(&out)
	return out
}

// String renders the term as an SMT-LIB-flavoured s-expression.
func (t *Term) String() string {
	var sb strings.Builder
	t.write(&sb)
	return sb.String()
}

func (t *Term) write(sb *strings.Builder) {
	switch t.Op {
	case Const:
		sb.WriteString(t.CVal.String())
	case Var:
		sb.WriteString(t.Name)
	case Extract:
		fmt.Fprintf(sb, "((_ extract %d %d) ", t.Aux0, t.Aux1)
		t.Args[0].write(sb)
		sb.WriteByte(')')
	case ZExt, SExt:
		fmt.Fprintf(sb, "((_ %s %d) ", t.Op, t.W()-t.Args[0].W())
		t.Args[0].write(sb)
		sb.WriteByte(')')
	case Load:
		fmt.Fprintf(sb, "(load%d ", t.Aux0)
		t.Args[0].write(sb)
		sb.WriteByte(')')
	case Store:
		fmt.Fprintf(sb, "(store%d ", t.Aux0)
		t.Args[0].write(sb)
		sb.WriteByte(' ')
		t.Args[1].write(sb)
		sb.WriteByte(')')
	default:
		sb.WriteByte('(')
		sb.WriteString(t.Op.String())
		for _, a := range t.Args {
			sb.WriteByte(' ')
			a.write(sb)
		}
		sb.WriteByte(')')
	}
}
