package term

import (
	"testing"

	"iselgen/internal/bv"
)

// genTerm builds a pseudo-random term over nv variables of width w,
// deterministically from the RNG, covering every op Program implements.
func genTerm(b *Builder, rng *bv.RNG, w, depth, nv int) *Term {
	if depth <= 0 || rng.Uint64()%4 == 0 {
		if rng.Uint64()%3 == 0 {
			return b.ConstBV(rng.BV(w))
		}
		return b.VarT("v"+string(rune('a'+int(rng.Uint64()%uint64(nv)))), KindReg, w)
	}
	sub := func() *Term { return genTerm(b, rng, w, depth-1, nv) }
	switch rng.Uint64() % 16 {
	case 0:
		return b.Add(sub(), sub())
	case 1:
		return b.Sub(sub(), sub())
	case 2:
		return b.Mul(sub(), sub())
	case 3:
		return b.And(sub(), sub())
	case 4:
		return b.Or(sub(), sub())
	case 5:
		return b.Xor(sub(), sub())
	case 6:
		return b.Not(sub())
	case 7:
		return b.Neg(sub())
	case 8:
		return b.Shl(sub(), sub())
	case 9:
		return b.LShr(sub(), sub())
	case 10:
		return b.AShr(sub(), sub())
	case 11:
		if w > 1 {
			return b.ZExt(w, b.Extract(w/2-1, 0, sub()))
		}
		return sub()
	case 12:
		if w > 1 {
			return b.SExt(w, b.Extract(w/2-1, 0, sub()))
		}
		return sub()
	case 13:
		return b.Ite(b.Eq(sub(), sub()), sub(), sub())
	case 14:
		return b.Popcount(sub())
	default:
		return b.Ite(b.Ult(sub(), sub()), sub(), b.Ctz(sub()))
	}
}

// TestProgramMatchesEval cross-checks the compiled evaluator against the
// reference recursive evaluator on random terms and random inputs: the
// two must agree bit for bit, or every Program user (sample digests, the
// SMT-fallback probe, the counterexample screen) silently diverges.
func TestProgramMatchesEval(t *testing.T) {
	rng := bv.NewRNG(42)
	for iter := 0; iter < 500; iter++ {
		b := NewBuilder()
		w := []int{8, 16, 32, 64}[rng.Uint64()%4]
		tm := genTerm(b, rng, w, 4, 3)
		p := Compile(tm)

		pv := p.Vars()
		want := tm.Vars()
		if len(pv) != len(want) {
			t.Fatalf("iter %d: program has %d vars, term has %d", iter, len(pv), len(want))
		}
		for i, v := range want {
			if pv[i].Name != v.Name || pv[i].Width != v.W() {
				t.Fatalf("iter %d: var slot %d is %s/%d, want %s/%d",
					iter, i, pv[i].Name, pv[i].Width, v.Name, v.W())
			}
		}

		vals := make([]bv.BV, len(pv))
		for trial := 0; trial < 16; trial++ {
			env := NewEnv()
			for i, v := range pv {
				vals[i] = rng.BV(v.Width)
				env.Bind(v.Name, vals[i])
			}
			got := p.Run(vals)
			ref := tm.Eval(env)
			if got != ref {
				t.Fatalf("iter %d trial %d: program=%v eval=%v for %s", iter, trial, got, ref, tm)
			}
		}
	}
}

// TestProgramLoadStore pins the memory-model behavior: Run must read the
// same deterministic hash memory Term.Eval uses when no Mem is attached.
func TestProgramLoadStore(t *testing.T) {
	b := NewBuilder()
	addr := b.VarT("a", KindReg, 64)
	ld := b.Load(32, addr)
	tm := b.Add(ld, b.ZExt(32, b.VarT("x", KindReg, 8)))
	p := Compile(tm)
	env := NewEnv()
	env.Bind("a", bv.New(64, 0x1000))
	env.Bind("x", bv.New(8, 7))
	vals := []bv.BV{bv.New(64, 0x1000), bv.New(8, 7)}
	if got, ref := p.Run(vals), tm.Eval(env); got != ref {
		t.Fatalf("load: program=%v eval=%v", got, ref)
	}

	st := b.Store(b.VarT("a", KindReg, 64), b.VarT("v", KindReg, 32))
	ps := Compile(st)
	env2 := NewEnv()
	env2.Bind("a", bv.New(64, 0x2000))
	env2.Bind("v", bv.New(32, 99))
	if got, ref := ps.Run([]bv.BV{bv.New(64, 0x2000), bv.New(32, 99)}), st.Eval(env2); got != ref {
		t.Fatalf("store: program=%v eval=%v", got, ref)
	}
}
