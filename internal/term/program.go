package term

import (
	"fmt"

	"iselgen/internal/bv"
)

// Program is a term compiled into a flat postorder register machine for
// repeated evaluation. Term.Eval allocates a memoization map per call,
// which is fine for one-shot evaluation but dominates the profile when
// the same term is evaluated on hundreds of test vectors (§V-C sample
// evaluation, the SMT-fallback probe, and the counterexample screen all
// do exactly that). Compile walks the DAG once; Run then evaluates with
// no allocation at all beyond the Program's own scratch buffer.
//
// A Program is immutable after Compile except for its scratch registers,
// so a single Program must not be Run from two goroutines at once; each
// worker compiles its own (compilation is two orders of magnitude
// cheaper than the evaluations it amortizes).
type Program struct {
	code []pinst
	vars []PVar
	regs []bv.BV // scratch, reused across Run calls
}

// PVar describes one variable slot of a compiled term, in the same
// first-occurrence order Term.Vars returns.
type PVar struct {
	Name  string
	Kind  VarKind
	Width int
}

type pinst struct {
	op         Op
	a0, a1, a2 int32 // argument registers (result register is the index)
	aux0, aux1 int32
	width      int32
	slot       int32 // Var: index into the vals argument of Run
	cval       bv.BV // Const: the value
}

// Compile flattens t into a Program. Shared DAG nodes are evaluated
// once, like Term.Eval's memoization.
func Compile(t *Term) *Program {
	p := &Program{}
	slots := map[string]int32{}
	regOf := map[*Term]int32{}
	var walk func(u *Term) int32
	walk = func(u *Term) int32 {
		if r, ok := regOf[u]; ok {
			return r
		}
		in := pinst{op: u.Op, a0: -1, a1: -1, a2: -1,
			aux0: u.Aux0, aux1: u.Aux1, width: int32(u.W())}
		switch u.Op {
		case Const:
			in.cval = u.CVal
		case Var:
			s, ok := slots[u.Name]
			if !ok {
				s = int32(len(p.vars))
				slots[u.Name] = s
				p.vars = append(p.vars, PVar{Name: u.Name, Kind: u.Kind, Width: u.W()})
			}
			in.slot = s
		default:
			for i, a := range u.Args {
				r := walk(a)
				switch i {
				case 0:
					in.a0 = r
				case 1:
					in.a1 = r
				case 2:
					in.a2 = r
				default:
					panic("term: compile: >3 args")
				}
			}
		}
		r := int32(len(p.code))
		p.code = append(p.code, in)
		regOf[u] = r
		return r
	}
	walk(t)
	p.regs = make([]bv.BV, len(p.code))
	return p
}

// Vars returns the variable slots, in first-occurrence order. The slice
// is shared; callers must not modify it.
func (p *Program) Vars() []PVar { return p.vars }

// Run evaluates the program with vals[i] bound to Vars()[i]. Loads read
// the deterministic hash memory model (MemValue), exactly like
// Term.Eval under an Env with no Mem. Widths of vals must match the
// slots'; Run does not re-check them.
func (p *Program) Run(vals []bv.BV) bv.BV {
	regs := p.regs
	for i := range p.code {
		in := &p.code[i]
		var r bv.BV
		switch in.op {
		case Const:
			r = in.cval
		case Var:
			r = vals[in.slot]
		case Add:
			r = regs[in.a0].Add(regs[in.a1])
		case Sub:
			r = regs[in.a0].Sub(regs[in.a1])
		case Mul:
			r = regs[in.a0].Mul(regs[in.a1])
		case UDiv:
			r = regs[in.a0].UDiv(regs[in.a1])
		case SDiv:
			r = regs[in.a0].SDiv(regs[in.a1])
		case URem:
			r = regs[in.a0].URem(regs[in.a1])
		case SRem:
			r = regs[in.a0].SRem(regs[in.a1])
		case Neg:
			r = regs[in.a0].Neg()
		case Not:
			r = regs[in.a0].Not()
		case And:
			r = regs[in.a0].And(regs[in.a1])
		case Or:
			r = regs[in.a0].Or(regs[in.a1])
		case Xor:
			r = regs[in.a0].Xor(regs[in.a1])
		case Shl:
			r = regs[in.a0].Shl(regs[in.a1])
		case LShr:
			r = regs[in.a0].LShr(regs[in.a1])
		case AShr:
			r = regs[in.a0].AShr(regs[in.a1])
		case RotL:
			r = regs[in.a0].RotL(regs[in.a1])
		case RotR:
			r = regs[in.a0].RotR(regs[in.a1])
		case Eq:
			r = bv.NewBool(regs[in.a0].Eq(regs[in.a1]))
		case Ult:
			r = bv.NewBool(regs[in.a0].Ult(regs[in.a1]))
		case Slt:
			r = bv.NewBool(regs[in.a0].Slt(regs[in.a1]))
		case Concat:
			r = regs[in.a0].Concat(regs[in.a1])
		case Extract:
			r = regs[in.a0].Extract(int(in.aux0), int(in.aux1))
		case ZExt:
			r = regs[in.a0].ZExt(int(in.width))
		case SExt:
			r = regs[in.a0].SExt(int(in.width))
		case Ite:
			if regs[in.a0].Bool() {
				r = regs[in.a1]
			} else {
				r = regs[in.a2]
			}
		case Load:
			r = MemValue(regs[in.a0].Uint64(), int(in.width))
		case Store:
			r = StoreDigest(regs[in.a0].Uint64(), regs[in.a1], int(in.width))
		case Popcount:
			r = regs[in.a0].Popcount()
		case Clz:
			r = regs[in.a0].Clz()
		case Ctz:
			r = regs[in.a0].Ctz()
		case Rev:
			r = regs[in.a0].Rev()
		default:
			panic(fmt.Sprintf("term: program: eval of %v", in.op))
		}
		regs[i] = r
	}
	return regs[len(regs)-1]
}
