// Package bv implements fixed-width bitvector values of 1 to 128 bits
// with the full complement of arithmetic, logic, shift, comparison, and
// bit-counting operations used by the QF_BV fragment of SMT-LIB.
//
// Values are immutable; every operation returns a fresh value. All
// operations are total: out-of-range shifts and division by zero follow
// the SMT-LIB fixed-width bitvector semantics (shifts saturate to
// zero/sign-fill, division by zero yields all-ones for unsigned division
// as mandated by SMT-LIB).
package bv

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxWidth is the largest supported bitvector width.
const MaxWidth = 128

// BV is a bitvector of Width bits. The value is stored in Lo (bits 0..63)
// and Hi (bits 64..127); bits at and above Width are always zero.
type BV struct {
	Lo, Hi uint64
	Width  uint8
}

// New returns a bitvector of the given width holding v truncated to width.
func New(width int, v uint64) BV {
	checkWidth(width)
	b := BV{Lo: v, Width: uint8(width)}
	return b.mask()
}

// New128 returns a bitvector of the given width from a 128-bit value pair.
func New128(width int, hi, lo uint64) BV {
	checkWidth(width)
	b := BV{Lo: lo, Hi: hi, Width: uint8(width)}
	return b.mask()
}

// NewBool returns a 1-bit bitvector: 1 if v, else 0.
func NewBool(v bool) BV {
	if v {
		return BV{Lo: 1, Width: 1}
	}
	return BV{Width: 1}
}

// NewInt returns a bitvector of the given width holding the two's-complement
// encoding of v.
func NewInt(width int, v int64) BV {
	checkWidth(width)
	b := BV{Lo: uint64(v), Width: uint8(width)}
	if v < 0 {
		b.Hi = ^uint64(0)
	}
	return b.mask()
}

// Ones returns the all-ones bitvector of the given width.
func Ones(width int) BV { return NewInt(width, -1) }

// Zero returns the all-zero bitvector of the given width.
func Zero(width int) BV {
	checkWidth(width)
	return BV{Width: uint8(width)}
}

func checkWidth(width int) {
	if width < 1 || width > MaxWidth {
		panic(fmt.Sprintf("bv: invalid width %d", width))
	}
}

// mask clears all bits at positions >= Width.
func (a BV) mask() BV {
	w := int(a.Width)
	switch {
	case w >= 128:
	case w > 64:
		a.Hi &= ^uint64(0) >> (128 - w)
	case w == 64:
		a.Hi = 0
	default:
		a.Hi = 0
		a.Lo &= ^uint64(0) >> (64 - w)
	}
	return a
}

// W returns the width in bits.
func (a BV) W() int { return int(a.Width) }

// Uint64 returns the low 64 bits of the value.
func (a BV) Uint64() uint64 { return a.Lo }

// Int64 returns the value sign-extended to 64 bits (meaningful for widths
// up to 64).
func (a BV) Int64() int64 {
	w := int(a.Width)
	if w >= 64 {
		return int64(a.Lo)
	}
	shift := 64 - w
	return int64(a.Lo<<shift) >> shift
}

// IsZero reports whether all bits are zero.
func (a BV) IsZero() bool { return a.Lo == 0 && a.Hi == 0 }

// IsOnes reports whether all Width bits are one.
func (a BV) IsOnes() bool { return a == Ones(a.W()) }

// Bool reports whether the value is nonzero.
func (a BV) Bool() bool { return !a.IsZero() }

// Bit returns bit i (0 = least significant).
func (a BV) Bit(i int) uint {
	if i < 0 || i >= a.W() {
		return 0
	}
	if i < 64 {
		return uint(a.Lo>>i) & 1
	}
	return uint(a.Hi>>(i-64)) & 1
}

// SignBit returns the most significant bit.
func (a BV) SignBit() uint { return a.Bit(a.W() - 1) }

// IsPow2 reports whether the value is a power of two, and returns its
// exponent when it is.
func (a BV) IsPow2() (int, bool) {
	if a.IsZero() {
		return 0, false
	}
	if a.Hi == 0 {
		if a.Lo&(a.Lo-1) != 0 {
			return 0, false
		}
		return bits.TrailingZeros64(a.Lo), true
	}
	if a.Lo != 0 || a.Hi&(a.Hi-1) != 0 {
		return 0, false
	}
	return 64 + bits.TrailingZeros64(a.Hi), true
}

func sameWidth(a, b BV) {
	if a.Width != b.Width {
		panic(fmt.Sprintf("bv: width mismatch %d vs %d", a.Width, b.Width))
	}
}

// Add returns a + b mod 2^Width.
func (a BV) Add(b BV) BV {
	sameWidth(a, b)
	lo, carry := bits.Add64(a.Lo, b.Lo, 0)
	hi, _ := bits.Add64(a.Hi, b.Hi, carry)
	return BV{Lo: lo, Hi: hi, Width: a.Width}.mask()
}

// Sub returns a - b mod 2^Width.
func (a BV) Sub(b BV) BV {
	sameWidth(a, b)
	lo, borrow := bits.Sub64(a.Lo, b.Lo, 0)
	hi, _ := bits.Sub64(a.Hi, b.Hi, borrow)
	return BV{Lo: lo, Hi: hi, Width: a.Width}.mask()
}

// Neg returns -a mod 2^Width.
func (a BV) Neg() BV { return Zero(a.W()).Sub(a) }

// Mul returns a * b mod 2^Width.
func (a BV) Mul(b BV) BV {
	sameWidth(a, b)
	hi, lo := bits.Mul64(a.Lo, b.Lo)
	hi += a.Lo*b.Hi + a.Hi*b.Lo
	return BV{Lo: lo, Hi: hi, Width: a.Width}.mask()
}

// UDiv returns a / b (unsigned); all-ones if b is zero (SMT-LIB bvudiv).
func (a BV) UDiv(b BV) BV {
	sameWidth(a, b)
	if b.IsZero() {
		return Ones(a.W())
	}
	q, _ := udivmod128(a.Hi, a.Lo, b.Hi, b.Lo)
	return BV{Lo: q.Lo, Hi: q.Hi, Width: a.Width}.mask()
}

// URem returns a mod b (unsigned); a if b is zero (SMT-LIB bvurem).
func (a BV) URem(b BV) BV {
	sameWidth(a, b)
	if b.IsZero() {
		return a
	}
	_, r := udivmod128(a.Hi, a.Lo, b.Hi, b.Lo)
	return BV{Lo: r.Lo, Hi: r.Hi, Width: a.Width}.mask()
}

// SDiv returns a / b (signed, truncated); follows SMT-LIB bvsdiv for b = 0.
func (a BV) SDiv(b BV) BV {
	sameWidth(a, b)
	if b.IsZero() {
		if a.SignBit() == 1 {
			return New(a.W(), 1)
		}
		return Ones(a.W())
	}
	an, bn := a, b
	neg := false
	if a.SignBit() == 1 {
		an, neg = a.Neg(), !neg
	}
	if b.SignBit() == 1 {
		bn, neg = b.Neg(), !neg
	}
	q := an.UDiv(bn)
	if neg {
		q = q.Neg()
	}
	return q
}

// SRem returns the signed remainder (sign follows dividend); a if b is zero.
func (a BV) SRem(b BV) BV {
	sameWidth(a, b)
	if b.IsZero() {
		return a
	}
	an, bn := a, b
	if a.SignBit() == 1 {
		an = a.Neg()
	}
	if b.SignBit() == 1 {
		bn = b.Neg()
	}
	r := an.URem(bn)
	if a.SignBit() == 1 {
		r = r.Neg()
	}
	return r
}

// udivmod128 computes 128-bit unsigned division via shift-subtract.
func udivmod128(nHi, nLo, dHi, dLo uint64) (q, r BV) {
	if dHi == 0 && nHi == 0 {
		return BV{Lo: nLo / dLo, Width: 128}, BV{Lo: nLo % dLo, Width: 128}
	}
	var qHi, qLo, rHi, rLo uint64
	for i := 127; i >= 0; i-- {
		// r <<= 1; r |= bit i of n
		rHi = rHi<<1 | rLo>>63
		rLo <<= 1
		if i >= 64 {
			rLo |= (nHi >> (i - 64)) & 1
		} else {
			rLo |= (nLo >> i) & 1
		}
		// if r >= d { r -= d; q |= 1 << i }
		if rHi > dHi || (rHi == dHi && rLo >= dLo) {
			lo, borrow := bits.Sub64(rLo, dLo, 0)
			hi, _ := bits.Sub64(rHi, dHi, borrow)
			rHi, rLo = hi, lo
			if i >= 64 {
				qHi |= 1 << (i - 64)
			} else {
				qLo |= 1 << i
			}
		}
	}
	return BV{Lo: qLo, Hi: qHi, Width: 128}, BV{Lo: rLo, Hi: rHi, Width: 128}
}

// And returns the bitwise AND.
func (a BV) And(b BV) BV {
	sameWidth(a, b)
	return BV{Lo: a.Lo & b.Lo, Hi: a.Hi & b.Hi, Width: a.Width}
}

// Or returns the bitwise OR.
func (a BV) Or(b BV) BV {
	sameWidth(a, b)
	return BV{Lo: a.Lo | b.Lo, Hi: a.Hi | b.Hi, Width: a.Width}
}

// Xor returns the bitwise XOR.
func (a BV) Xor(b BV) BV {
	sameWidth(a, b)
	return BV{Lo: a.Lo ^ b.Lo, Hi: a.Hi ^ b.Hi, Width: a.Width}
}

// Not returns the bitwise complement.
func (a BV) Not() BV {
	return BV{Lo: ^a.Lo, Hi: ^a.Hi, Width: a.Width}.mask()
}

// shiftAmount clamps the shift distance to [0, 255] for saturation checks.
func shiftAmount(b BV) uint {
	if b.Hi != 0 || b.Lo > 255 {
		return 255
	}
	return uint(b.Lo)
}

// Shl returns a << b; zero when b >= Width.
func (a BV) Shl(b BV) BV {
	sameWidth(a, b)
	return a.ShlN(shiftAmount(b))
}

// ShlN returns a << n for a plain integer distance.
func (a BV) ShlN(n uint) BV {
	if n >= uint(a.W()) {
		return Zero(a.W())
	}
	if n == 0 {
		return a
	}
	var hi, lo uint64
	if n >= 64 {
		hi, lo = a.Lo<<(n-64), 0
	} else {
		hi = a.Hi<<n | a.Lo>>(64-n)
		lo = a.Lo << n
	}
	return BV{Lo: lo, Hi: hi, Width: a.Width}.mask()
}

// LShr returns a >> b (logical); zero when b >= Width.
func (a BV) LShr(b BV) BV {
	sameWidth(a, b)
	return a.LShrN(shiftAmount(b))
}

// LShrN returns a >> n (logical) for a plain integer distance.
func (a BV) LShrN(n uint) BV {
	if n >= uint(a.W()) {
		return Zero(a.W())
	}
	if n == 0 {
		return a
	}
	var hi, lo uint64
	if n >= 64 {
		hi, lo = 0, a.Hi>>(n-64)
	} else {
		lo = a.Lo>>n | a.Hi<<(64-n)
		hi = a.Hi >> n
	}
	return BV{Lo: lo, Hi: hi, Width: a.Width}
}

// AShr returns a >> b (arithmetic); sign-fill when b >= Width.
func (a BV) AShr(b BV) BV {
	sameWidth(a, b)
	n := shiftAmount(b)
	if n >= uint(a.W()) {
		if a.SignBit() == 1 {
			return Ones(a.W())
		}
		return Zero(a.W())
	}
	if n == 0 {
		return a
	}
	r := a.LShrN(n)
	if a.SignBit() == 1 {
		// Fill the vacated top n bits with ones.
		fill := Ones(a.W()).ShlN(uint(a.W()) - n)
		r = r.Or(fill)
	}
	return r
}

// RotL rotates left by b mod Width.
func (a BV) RotL(b BV) BV {
	sameWidth(a, b)
	n := uint(b.URem(New(a.W(), uint64(a.W()))).Lo)
	if n == 0 {
		return a
	}
	return a.ShlN(n).Or(a.LShrN(uint(a.W()) - n))
}

// RotR rotates right by b mod Width.
func (a BV) RotR(b BV) BV {
	sameWidth(a, b)
	n := uint(b.URem(New(a.W(), uint64(a.W()))).Lo)
	if n == 0 {
		return a
	}
	return a.LShrN(n).Or(a.ShlN(uint(a.W()) - n))
}

// Eq reports a == b.
func (a BV) Eq(b BV) bool {
	sameWidth(a, b)
	return a == b
}

// Ult reports a < b (unsigned).
func (a BV) Ult(b BV) bool {
	sameWidth(a, b)
	return a.Hi < b.Hi || (a.Hi == b.Hi && a.Lo < b.Lo)
}

// Ule reports a <= b (unsigned).
func (a BV) Ule(b BV) bool { return !b.Ult(a) }

// Slt reports a < b (signed).
func (a BV) Slt(b BV) bool {
	sameWidth(a, b)
	sa, sb := a.SignBit(), b.SignBit()
	if sa != sb {
		return sa == 1
	}
	return a.Ult(b)
}

// Sle reports a <= b (signed).
func (a BV) Sle(b BV) bool { return !b.Slt(a) }

// ZExt zero-extends to the given width (which must be >= Width).
func (a BV) ZExt(width int) BV {
	checkWidth(width)
	if width < a.W() {
		panic(fmt.Sprintf("bv: zext %d -> %d shrinks", a.W(), width))
	}
	a.Width = uint8(width)
	return a
}

// SExt sign-extends to the given width (which must be >= Width).
func (a BV) SExt(width int) BV {
	checkWidth(width)
	w := a.W()
	if width < w {
		panic(fmt.Sprintf("bv: sext %d -> %d shrinks", w, width))
	}
	if a.SignBit() == 0 || width == w {
		a.Width = uint8(width)
		return a.mask()
	}
	fill := Ones(width).ShlN(uint(w))
	a.Width = uint8(width)
	return a.mask().Or(fill)
}

// Trunc truncates to the given width (which must be <= Width).
func (a BV) Trunc(width int) BV {
	checkWidth(width)
	if width > a.W() {
		panic(fmt.Sprintf("bv: trunc %d -> %d grows", a.W(), width))
	}
	a.Width = uint8(width)
	return a.mask()
}

// Extract returns bits hi..lo inclusive as a bitvector of width hi-lo+1.
func (a BV) Extract(hi, lo int) BV {
	if hi < lo || lo < 0 || hi >= a.W() {
		panic(fmt.Sprintf("bv: bad extract [%d:%d] of width %d", hi, lo, a.W()))
	}
	return a.LShrN(uint(lo)).Trunc(hi - lo + 1)
}

// Concat returns a ++ b (a becomes the high bits).
func (a BV) Concat(b BV) BV {
	w := a.W() + b.W()
	checkWidth(w)
	return a.ZExt(w).ShlN(uint(b.W())).Or(b.ZExt(w))
}

// Popcount returns the number of set bits, as a value of the same width.
func (a BV) Popcount() BV {
	return New(a.W(), uint64(bits.OnesCount64(a.Lo)+bits.OnesCount64(a.Hi)))
}

// Clz returns the count of leading zero bits, as a value of the same width.
func (a BV) Clz() BV {
	w := a.W()
	n := 0
	for i := w - 1; i >= 0 && a.Bit(i) == 0; i-- {
		n++
	}
	return New(w, uint64(n))
}

// Ctz returns the count of trailing zero bits, as a value of the same width.
func (a BV) Ctz() BV {
	w := a.W()
	n := 0
	for i := 0; i < w && a.Bit(i) == 0; i++ {
		n++
	}
	return New(w, uint64(n))
}

// Rev returns the value with byte order reversed (width must be a multiple
// of 8).
func (a BV) Rev() BV {
	w := a.W()
	if w%8 != 0 {
		panic("bv: byte reverse of non-byte width")
	}
	r := Zero(w)
	for i := 0; i < w/8; i++ {
		b := a.Extract(i*8+7, i*8).ZExt(w)
		r = r.Or(b.ShlN(uint(w - 8 - i*8)))
	}
	return r
}

// String renders the value as SMT-LIB-style hex (#x...) for byte-multiple
// widths and binary (#b...) otherwise.
func (a BV) String() string {
	w := a.W()
	if w%4 == 0 {
		digits := w / 4
		var sb strings.Builder
		sb.WriteString("#x")
		for i := digits - 1; i >= 0; i-- {
			nib := a.LShrN(uint(i*4)).Lo & 0xf
			fmt.Fprintf(&sb, "%x", nib)
		}
		return sb.String()
	}
	var sb strings.Builder
	sb.WriteString("#b")
	for i := w - 1; i >= 0; i-- {
		if a.Bit(i) == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
