package bv

// RNG is a small deterministic pseudo-random generator (xoshiro256**)
// used for synthesizing test inputs. It is deliberately not seeded from
// the clock so that pools, caches, and experiments are reproducible.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given value via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	for i := range r.s {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Intn returns a pseudo-random value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("bv: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// BV returns a pseudo-random bitvector of the given width. Interesting
// boundary values (0, 1, -1, sign bit, small constants) are produced with
// elevated probability because they are the values most likely to separate
// near-miss candidate instruction sequences.
func (r *RNG) BV(width int) BV {
	switch r.Uint64() % 8 {
	case 0:
		return Zero(width)
	case 1:
		return New(width, 1)
	case 2:
		return Ones(width)
	case 3:
		return Ones(width).LShrN(1).Not() // sign bit only
	case 4:
		return New(width, r.Uint64()%64) // small value (shift distances)
	default:
		return New128(width, r.Uint64(), r.Uint64())
	}
}
