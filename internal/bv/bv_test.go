package bv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMasks(t *testing.T) {
	if got := New(8, 0x1ff); got.Lo != 0xff {
		t.Errorf("New(8, 0x1ff) = %v, want #xff", got)
	}
	if got := New(64, math.MaxUint64); got.Lo != math.MaxUint64 || got.Hi != 0 {
		t.Errorf("New(64, max) = %v", got)
	}
	if got := New128(72, ^uint64(0), 0); got.Hi != 0xff {
		t.Errorf("New128(72) hi = %#x, want 0xff", got.Hi)
	}
}

func TestNewIntSignExtends(t *testing.T) {
	v := NewInt(16, -1)
	if !v.IsOnes() {
		t.Errorf("NewInt(16,-1) = %v, want all ones", v)
	}
	if got := NewInt(16, -2).Int64(); got != -2 {
		t.Errorf("Int64 roundtrip = %d, want -2", got)
	}
	if got := NewInt(100, -5).Int64(); got != -5 {
		t.Errorf("wide Int64 = %d, want -5", got)
	}
}

func TestAddSubWrap(t *testing.T) {
	a := New(8, 200)
	b := New(8, 100)
	if got := a.Add(b); got.Lo != 44 {
		t.Errorf("200+100 mod 256 = %d, want 44", got.Lo)
	}
	if got := b.Sub(a); got.Lo != 156 {
		t.Errorf("100-200 mod 256 = %d, want 156", got.Lo)
	}
	if got := Zero(8).Sub(New(8, 1)); !got.IsOnes() {
		t.Errorf("0-1 = %v, want all ones", got)
	}
}

func TestAdd128Carry(t *testing.T) {
	a := New128(128, 0, ^uint64(0))
	b := New(128, 1)
	got := a.Add(b)
	if got.Lo != 0 || got.Hi != 1 {
		t.Errorf("carry add = %v", got)
	}
}

func TestMul(t *testing.T) {
	if got := New(16, 300).Mul(New(16, 300)); got.Lo != (300*300)%65536 {
		t.Errorf("300*300 mod 2^16 = %d", got.Lo)
	}
	a := New128(128, 1, 0) // 2^64
	b := New(128, 3)
	if got := a.Mul(b); got.Hi != 3 || got.Lo != 0 {
		t.Errorf("2^64*3 = %v", got)
	}
}

func TestDivRemSMTLIB(t *testing.T) {
	// Division by zero semantics.
	if got := New(8, 7).UDiv(Zero(8)); !got.IsOnes() {
		t.Errorf("bvudiv by zero = %v, want ones", got)
	}
	if got := New(8, 7).URem(Zero(8)); got.Lo != 7 {
		t.Errorf("bvurem by zero = %v, want 7", got)
	}
	if got := NewInt(8, -7).SDiv(Zero(8)); got.Lo != 1 {
		t.Errorf("bvsdiv neg by zero = %v, want 1", got)
	}
	if got := New(8, 7).SDiv(Zero(8)); !got.IsOnes() {
		t.Errorf("bvsdiv pos by zero = %v, want -1", got)
	}
	// Signed division truncates toward zero.
	if got := NewInt(8, -7).SDiv(New(8, 2)).Int64(); got != -3 {
		t.Errorf("-7 sdiv 2 = %d, want -3", got)
	}
	if got := NewInt(8, -7).SRem(New(8, 2)).Int64(); got != -1 {
		t.Errorf("-7 srem 2 = %d, want -1", got)
	}
	if got := New(8, 7).SRem(NewInt(8, -2)).Int64(); got != 1 {
		t.Errorf("7 srem -2 = %d, want 1", got)
	}
}

func TestDiv128(t *testing.T) {
	n := New128(128, 5, 12345)
	d := New(128, 7)
	q := n.UDiv(d)
	r := n.URem(d)
	if got := q.Mul(d).Add(r); got != n {
		t.Errorf("q*d+r = %v, want %v", got, n)
	}
	if !r.Ult(d) {
		t.Errorf("r = %v not < d", r)
	}
}

func TestShifts(t *testing.T) {
	a := New(8, 0b10010110)
	if got := a.Shl(New(8, 2)); got.Lo != 0b01011000 {
		t.Errorf("shl = %08b", got.Lo)
	}
	if got := a.LShr(New(8, 2)); got.Lo != 0b00100101 {
		t.Errorf("lshr = %08b", got.Lo)
	}
	if got := a.AShr(New(8, 2)); got.Lo != 0b11100101 {
		t.Errorf("ashr = %08b", got.Lo)
	}
	// Out-of-range shifts.
	if got := a.Shl(New(8, 8)); !got.IsZero() {
		t.Errorf("shl 8 = %v, want 0", got)
	}
	if got := a.AShr(New(8, 200)); !got.IsOnes() {
		t.Errorf("ashr 200 of negative = %v, want ones", got)
	}
	if got := New(8, 1).AShr(New(8, 200)); !got.IsZero() {
		t.Errorf("ashr 200 of positive = %v, want 0", got)
	}
}

func TestShift128CrossWord(t *testing.T) {
	a := New(128, 1)
	if got := a.ShlN(100); got.Hi != 1<<36 || got.Lo != 0 {
		t.Errorf("1<<100 = %v", got)
	}
	if got := a.ShlN(100).LShrN(100); got != a {
		t.Errorf("shift roundtrip = %v", got)
	}
	b := New128(128, ^uint64(0), 0)
	if got := b.LShrN(64); got.Lo != ^uint64(0) || got.Hi != 0 {
		t.Errorf("hi>>64 = %v", got)
	}
	if got := b.AShrN(t, 68); got.Hi != ^uint64(0) || got.Lo>>60 != 0xf {
		t.Errorf("ashr 68 = %v", got)
	}
}

// AShrN is a test helper: arithmetic shift by a plain distance.
func (a BV) AShrN(t *testing.T, n uint) BV {
	t.Helper()
	return a.AShr(New(a.W(), uint64(n)))
}

func TestRotates(t *testing.T) {
	a := New(8, 0b10000001)
	if got := a.RotL(New(8, 1)); got.Lo != 0b00000011 {
		t.Errorf("rotl = %08b", got.Lo)
	}
	if got := a.RotR(New(8, 1)); got.Lo != 0b11000000 {
		t.Errorf("rotr = %08b", got.Lo)
	}
	if got := a.RotL(New(8, 8)); got != a {
		t.Errorf("rotl by width = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	a, b := NewInt(8, -1), New(8, 1)
	if a.Ult(b) {
		t.Error("0xff ult 1")
	}
	if !a.Slt(b) {
		t.Error("-1 not slt 1")
	}
	if !a.Sle(a) || !a.Ule(a) {
		t.Error("reflexive le failed")
	}
	c := New128(128, 1, 0)
	d := New128(128, 0, ^uint64(0))
	if !d.Ult(c) {
		t.Error("2^64-1 not ult 2^64")
	}
}

func TestExtensions(t *testing.T) {
	a := New(8, 0x80)
	if got := a.ZExt(16); got.Lo != 0x80 {
		t.Errorf("zext = %v", got)
	}
	if got := a.SExt(16); got.Lo != 0xff80 {
		t.Errorf("sext = %v", got)
	}
	if got := a.SExt(128); got.Hi != ^uint64(0) || got.Lo != 0xffffffffffffff80 {
		t.Errorf("sext128 = %v", got)
	}
	if got := New(16, 0x1234).Trunc(8); got.Lo != 0x34 {
		t.Errorf("trunc = %v", got)
	}
}

func TestExtractConcat(t *testing.T) {
	a := New(16, 0xabcd)
	if got := a.Extract(15, 8); got.Lo != 0xab || got.W() != 8 {
		t.Errorf("extract hi = %v", got)
	}
	if got := a.Extract(7, 0); got.Lo != 0xcd {
		t.Errorf("extract lo = %v", got)
	}
	if got := a.Extract(11, 4); got.Lo != 0xbc {
		t.Errorf("extract mid = %v", got)
	}
	hi, lo := New(8, 0xab), New(8, 0xcd)
	if got := hi.Concat(lo); got.Lo != 0xabcd || got.W() != 16 {
		t.Errorf("concat = %v", got)
	}
	big := New(64, 0xdead).Concat(New(64, 0xbeef))
	if big.Hi != 0xdead || big.Lo != 0xbeef {
		t.Errorf("concat128 = %v", big)
	}
}

func TestBitCounts(t *testing.T) {
	a := New(16, 0x00f0)
	if got := a.Popcount(); got.Lo != 4 {
		t.Errorf("popcount = %d", got.Lo)
	}
	if got := a.Clz(); got.Lo != 8 {
		t.Errorf("clz = %d", got.Lo)
	}
	if got := a.Ctz(); got.Lo != 4 {
		t.Errorf("ctz = %d", got.Lo)
	}
	if got := Zero(16).Clz(); got.Lo != 16 {
		t.Errorf("clz 0 = %d", got.Lo)
	}
	if got := Zero(16).Ctz(); got.Lo != 16 {
		t.Errorf("ctz 0 = %d", got.Lo)
	}
	w := New128(128, 1, 1)
	if got := w.Popcount(); got.Lo != 2 {
		t.Errorf("popcount128 = %d", got.Lo)
	}
	if got := w.Clz(); got.Lo != 63 {
		t.Errorf("clz128 = %d", got.Lo)
	}
}

func TestRev(t *testing.T) {
	if got := New(32, 0x12345678).Rev(); got.Lo != 0x78563412 {
		t.Errorf("rev32 = %#x", got.Lo)
	}
	if got := New(16, 0xabcd).Rev(); got.Lo != 0xcdab {
		t.Errorf("rev16 = %#x", got.Lo)
	}
}

func TestIsPow2(t *testing.T) {
	if n, ok := New(32, 64).IsPow2(); !ok || n != 6 {
		t.Errorf("IsPow2(64) = %d, %v", n, ok)
	}
	if _, ok := New(32, 65).IsPow2(); ok {
		t.Error("IsPow2(65) true")
	}
	if _, ok := Zero(32).IsPow2(); ok {
		t.Error("IsPow2(0) true")
	}
	if n, ok := New128(128, 1, 0).IsPow2(); !ok || n != 64 {
		t.Errorf("IsPow2(2^64) = %d, %v", n, ok)
	}
	if _, ok := New128(128, 1, 1).IsPow2(); ok {
		t.Error("IsPow2(2^64+1) true")
	}
}

func TestString(t *testing.T) {
	if got := New(8, 0xaf).String(); got != "#xaf" {
		t.Errorf("String = %q", got)
	}
	if got := New(3, 5).String(); got != "#b101" {
		t.Errorf("String = %q", got)
	}
}

// Property: 64-bit ops agree with Go's native uint64 arithmetic.
func TestQuickAgainstUint64(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	check := func(name string, f any) {
		t.Helper()
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	check("add", func(x, y uint64) bool { return New(64, x).Add(New(64, y)).Lo == x+y })
	check("sub", func(x, y uint64) bool { return New(64, x).Sub(New(64, y)).Lo == x-y })
	check("mul", func(x, y uint64) bool { return New(64, x).Mul(New(64, y)).Lo == x*y })
	check("and", func(x, y uint64) bool { return New(64, x).And(New(64, y)).Lo == x&y })
	check("or", func(x, y uint64) bool { return New(64, x).Or(New(64, y)).Lo == x|y })
	check("xor", func(x, y uint64) bool { return New(64, x).Xor(New(64, y)).Lo == x^y })
	check("udiv", func(x, y uint64) bool {
		if y == 0 {
			return true
		}
		return New(64, x).UDiv(New(64, y)).Lo == x/y
	})
	check("urem", func(x, y uint64) bool {
		if y == 0 {
			return true
		}
		return New(64, x).URem(New(64, y)).Lo == x%y
	})
	check("sdiv", func(x, y int64) bool {
		if y == 0 || (x == math.MinInt64 && y == -1) {
			return true
		}
		return NewInt(64, x).SDiv(NewInt(64, y)).Int64() == x/y
	})
	check("srem", func(x, y int64) bool {
		if y == 0 || (x == math.MinInt64 && y == -1) {
			return true
		}
		return NewInt(64, x).SRem(NewInt(64, y)).Int64() == x%y
	})
	check("shl", func(x uint64, n uint8) bool {
		s := uint(n) % 64
		return New(64, x).Shl(New(64, uint64(s))).Lo == x<<s
	})
	check("lshr", func(x uint64, n uint8) bool {
		s := uint(n) % 64
		return New(64, x).LShr(New(64, uint64(s))).Lo == x>>s
	})
	check("ashr", func(x int64, n uint8) bool {
		s := uint(n) % 64
		return NewInt(64, x).AShr(New(64, uint64(s))).Int64() == x>>s
	})
	check("ult", func(x, y uint64) bool { return New(64, x).Ult(New(64, y)) == (x < y) })
	check("slt", func(x, y int64) bool { return NewInt(64, x).Slt(NewInt(64, y)) == (x < y) })
}

// Property: algebraic identities hold at odd widths (exercises masking).
func TestQuickIdentitiesWidth13(t *testing.T) {
	const w = 13
	cfg := &quick.Config{MaxCount: 2000}
	check := func(name string, f any) {
		t.Helper()
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	check("neg", func(x uint64) bool {
		a := New(w, x)
		return a.Add(a.Neg()).IsZero()
	})
	check("not-plus-one", func(x uint64) bool {
		a := New(w, x)
		return a.Not().Add(New(w, 1)) == a.Neg()
	})
	check("demorgan", func(x, y uint64) bool {
		a, b := New(w, x), New(w, y)
		return a.And(b).Not() == a.Not().Or(b.Not())
	})
	check("extract-concat", func(x uint64) bool {
		a := New(w, x)
		return a.Extract(12, 5).Concat(a.Extract(4, 0)) == a
	})
	check("divmod", func(x, y uint64) bool {
		a, b := New(w, x), New(w, y)
		if b.IsZero() {
			return true
		}
		return a.UDiv(b).Mul(b).Add(a.URem(b)) == a
	})
	check("rot-inverse", func(x uint64, n uint8) bool {
		a := New(w, x)
		d := New(w, uint64(n))
		return a.RotL(d).RotR(d) == a
	})
	check("popcount-split", func(x uint64) bool {
		a := New(w, x)
		hi, lo := a.Extract(12, 6), a.Extract(5, 0)
		return a.Popcount().Lo == hi.Popcount().Lo+lo.Popcount().Lo
	})
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGBVWidth(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 200; i++ {
		w := 1 + r.Intn(128)
		v := r.BV(w)
		if v.W() != w {
			t.Fatalf("width %d got %d", w, v.W())
		}
		if v != v.mask() {
			t.Fatalf("unmasked random value %v", v)
		}
	}
}
