package fuzz

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Repro is a self-contained failure reproducer in the corpus format.
// Select-diff, selector-diff, and encode entries carry the shrunk
// program text; spec entries carry the mutated specification verbatim;
// smt entries are regenerated deterministically from (seed, iter),
// since random terms have no stable text form worth inventing.
type Repro struct {
	Oracle string // "select-diff", "spec", or "smt"
	Target string // pipeline name (select-diff only)
	Seed   uint64 // driver seed that produced the failure
	Iter   int    // iteration within the seed (smt only)
	Note   string // first line of the failure message
	Prog   string // corpus program text (select-diff)
	Spec   string // specification source (spec)
}

// Format renders the reproducer. Header lines are `key: value`; the
// `prog:` / `spec:` marker line starts the verbatim body.
func (r *Repro) Format() string {
	var sb strings.Builder
	sb.WriteString("# iselfuzz reproducer\n")
	fmt.Fprintf(&sb, "oracle: %s\n", r.Oracle)
	if r.Target != "" {
		fmt.Fprintf(&sb, "target: %s\n", r.Target)
	}
	fmt.Fprintf(&sb, "seed: %d\n", r.Seed)
	if r.Oracle == "smt" {
		fmt.Fprintf(&sb, "iter: %d\n", r.Iter)
	}
	if r.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", strings.SplitN(r.Note, "\n", 2)[0])
	}
	switch r.Oracle {
	case "spec":
		sb.WriteString("spec:\n")
		sb.WriteString(strings.TrimRight(r.Spec, "\n"))
		sb.WriteByte('\n')
	case "smt":
		// body-less: (seed, iter) regenerate the term pair
	default:
		sb.WriteString("prog:\n")
		sb.WriteString(strings.TrimRight(r.Prog, "\n"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ParseRepro parses the corpus format. Like ParseProg it returns errors,
// never panics, so corpus directories can hold hand-edited files.
func ParseRepro(src string) (*Repro, error) {
	r := &Repro{}
	lines := strings.Split(src, "\n")
	i := 0
	for ; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "prog:" || line == "spec:" {
			break
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("repro:%d: expected `key: value`, got %q", i+1, line)
		}
		v = strings.TrimSpace(v)
		switch k {
		case "oracle":
			r.Oracle = v
		case "target":
			r.Target = v
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("repro:%d: bad seed %q", i+1, v)
			}
			r.Seed = n
		case "iter":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("repro:%d: bad iter %q", i+1, v)
			}
			r.Iter = n
		case "note":
			r.Note = v
		default:
			return nil, fmt.Errorf("repro:%d: unknown header %q", i+1, k)
		}
	}
	if r.Oracle == "" {
		return nil, fmt.Errorf("repro: missing oracle header")
	}
	if i < len(lines) {
		marker := strings.TrimSpace(lines[i])
		body := strings.Join(lines[i+1:], "\n")
		if marker == "spec:" {
			r.Spec = body
		} else {
			r.Prog = body
		}
	}
	switch r.Oracle {
	case "select-diff", "selector-diff", "encode":
		if strings.TrimSpace(r.Prog) == "" {
			return nil, fmt.Errorf("repro: %s entry has no program body", r.Oracle)
		}
		if _, err := ParseProg(r.Prog); err != nil {
			return nil, err
		}
	case "spec":
		if strings.TrimSpace(r.Spec) == "" {
			return nil, fmt.Errorf("repro: spec entry has no specification body")
		}
	case "smt":
		// nothing further to validate
	default:
		return nil, fmt.Errorf("repro: unknown oracle %q", r.Oracle)
	}
	return r, nil
}

// SaveRepro writes the reproducer into dir under a content-addressed
// name, creating the directory if needed, and returns the path.
func SaveRepro(dir string, r *Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	text := r.Format()
	h := fnv.New64a()
	h.Write([]byte(text))
	path := filepath.Join(dir, fmt.Sprintf("%s-%016x.repro", r.Oracle, h.Sum64()))
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
