package fuzz

import (
	"bytes"
	"fmt"

	"iselgen/internal/bv"
	"iselgen/internal/enc"
	"iselgen/internal/gmir"
	"iselgen/internal/isel"
	"iselgen/internal/mir"
	"iselgen/internal/sim"
)

// The machine-encoding round-trip oracle: selected MIR is assembled to
// bytes, the bytes are disassembled back, and the decoded stream must
// re-encode byte-identically (encode/decode is a bijection); then the
// bytes run on the decoding emulator — which trusts nothing but the
// bytes — and every input vector must produce the same result and the
// same final memory as the MIR simulator. A divergence means the spec's
// encoding clauses, the decode trie, the displacement solver, or the
// emulator disagree about what the machine does.

// selectProg legalizes, prepares, and selects a program with fallback —
// the candidate side shared by CheckProg and CheckEncode. The returned
// error wraps ErrSkip when every backend declines.
func selectProg(pl *Pipeline, p *Prog) (*mir.Func, string, error) {
	minW := pl.MinWidth
	if minW == 0 {
		minW = 32
	}
	f, berr := p.Build()
	if berr != nil {
		return nil, "", fmt.Errorf("build: %w", berr)
	}
	if lerr := gmir.Legalize(f, minW); lerr != nil {
		return nil, "", fmt.Errorf("legalize: %w", lerr)
	}
	isel.Prepare(f, pl.Name)
	mf, rep := pl.Primary.Select(f)
	used := pl.Primary.Name
	if rep.Fallback {
		if pl.Fallback == nil || pl.Fallback == pl.Primary {
			return nil, used, fmt.Errorf("%w (%s)", ErrSkip, rep.FallbackReason)
		}
		f2, berr := p.Build()
		if berr != nil {
			return nil, used, fmt.Errorf("rebuild: %w", berr)
		}
		if lerr := gmir.Legalize(f2, minW); lerr != nil {
			return nil, used, fmt.Errorf("legalize: %w", lerr)
		}
		isel.Prepare(f2, pl.Name)
		mf, rep = pl.Fallback.Select(f2)
		used = pl.Fallback.Name
		if rep.Fallback {
			return nil, used, fmt.Errorf("%w (%s)", ErrSkip, rep.FallbackReason)
		}
	}
	if mf == nil {
		return nil, used, fmt.Errorf("%s: Select returned nil function without fallback", used)
	}
	return mf, used, nil
}

// encCodec lazily builds (and caches) the pipeline's codec/assembler.
func (pl *Pipeline) encCodec() (*enc.Codec, *enc.Assembler, error) {
	if pl.codec != nil {
		return pl.codec, pl.asm, nil
	}
	if pl.ISA == nil || !pl.ISA.HasEncodings() {
		return nil, nil, fmt.Errorf("%w (target %s declares no machine encodings)", ErrSkip, pl.Name)
	}
	c, err := enc.NewCodec(pl.ISA)
	if err != nil {
		return nil, nil, err
	}
	pl.codec, pl.asm = c, enc.NewAssembler(c)
	return pl.codec, pl.asm, nil
}

// CheckEncode runs the round-trip oracle on one program. A nil error
// means the program passed; ErrSkip-wrapped errors mean the program
// legitimately cannot be taken to machine code (no backend selected it,
// it needs more registers than the encoding admits, or its MIR uses
// shapes with no faithful encoding); anything else is a genuine bug.
func CheckEncode(pl *Pipeline, p *Prog, vectors [][]bv.BV) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()

	c, asm, err := pl.encCodec()
	if err != nil {
		return err
	}
	mf, used, err := selectProg(pl, p)
	if err != nil {
		return err
	}
	img, aerr := asm.Assemble(mf)
	if aerr != nil {
		// Structural unencodability (register pressure, PC-reading
		// semantics, unrepresentable write-backs) is a skip, not a bug:
		// the assembler refuses rather than mis-encodes.
		return fmt.Errorf("%w (assemble: %v)", ErrSkip, aerr)
	}

	// Round trip: decode the image and demand byte identity, unit by unit.
	listing := c.Disassemble(img.Code, img.Base)
	if len(listing) != len(img.Units) {
		return fmt.Errorf("%s: round-trip: %d units assembled, %d decoded", used, len(img.Units), len(listing))
	}
	for i, ln := range listing {
		u := img.Units[i]
		if ln.Inst == nil {
			return fmt.Errorf("%s: round-trip: unit %d (%s at %#x) decodes as %s",
				used, i, u.IC.Inst.Name, u.Addr, ln.Text)
		}
		if ln.Inst != u.IC || ln.Addr != u.Addr {
			return fmt.Errorf("%s: round-trip: unit %d: assembled %s at %#x, decoded %s at %#x",
				used, i, u.IC.Inst.Name, u.Addr, ln.Inst.Inst.Name, ln.Addr)
		}
		re, rerr := ln.Inst.Encode(ln.Ops)
		if rerr != nil {
			return fmt.Errorf("%s: round-trip: unit %d (%s): re-encode: %v", used, i, u.IC.Inst.Name, rerr)
		}
		if !bytes.Equal(re, u.Bytes) {
			return fmt.Errorf("%s: round-trip: unit %d (%s): assembled % x, re-encoded % x",
				used, i, u.IC.Inst.Name, u.Bytes, re)
		}
	}

	// Execution: machine code vs the MIR simulator on every vector.
	for i, args := range vectors {
		simMem := gmir.NewMemory()
		m := &sim.Machine{Mem: simMem}
		sres, serr := m.Run(mf, args)
		if serr != nil {
			return fmt.Errorf("%s: sim: %w", used, serr)
		}
		emuMem := gmir.NewMemory()
		e := &enc.Emulator{Codec: c, Mem: emuMem}
		eres, eerr := e.Run(img, args)
		if eerr != nil {
			return fmt.Errorf("%s: emu on vector %d %s: %w", used, i, fmtArgs(args), eerr)
		}
		if sres.HasRet != eres.HasRet {
			return fmt.Errorf("%s: vector %d %s: sim HasRet=%v, emu HasRet=%v",
				used, i, fmtArgs(args), sres.HasRet, eres.HasRet)
		}
		if sres.HasRet && sim.Adjust(sres.Ret, 64) != sim.Adjust(eres.Ret, 64) {
			return fmt.Errorf("%s: result mismatch on vector %d %s: sim=%s emu=%s",
				used, i, fmtArgs(args), sres.Ret, eres.Ret)
		}
		if !memEqual(simMem.Snapshot(), emuMem.Snapshot()) {
			return fmt.Errorf("%s: final memory mismatch on vector %d %s", used, i, fmtArgs(args))
		}
	}
	return nil
}

// runEncode drives the encode oracle with the shared generate/check/
// shrink loop.
func runEncode(opts *Options, sum *Summary, over func() bool) error {
	pl, err := NewPipeline(opts.Target, opts.Synth)
	if err != nil {
		return err
	}
	cfg := DefaultGenConfig()
	nVec := opts.numVectors()
	encoded := 0
	for iter := 0; iter < opts.N && !over(); iter++ {
		rng := bv.NewRNG(SubSeed(opts.Seed, uint64(iter)))
		p := Gen(rng, cfg)
		cerr := CheckEncode(pl, p, VectorsFor(opts.Seed, p, nVec))
		sum.PerOracle["encode"]++
		switch {
		case cerr == nil:
			sum.Ran++
			encoded++
		case !IsFailure(cerr):
			sum.Ran++
			sum.Skipped++
		default:
			sum.Failed++
			opts.logf("encode failure (iter %d): %v", iter, cerr)
			failing := func(q *Prog) bool {
				return IsFailure(CheckEncode(pl, q, VectorsFor(opts.Seed, q, nVec)))
			}
			shrunk := Shrink(p, failing, opts.maxShrinkChecks())
			opts.logf("  shrunk %d -> %d operations", p.NumOps(), shrunk.NumOps())
			opts.save(sum, &Repro{
				Oracle: "encode",
				Target: pl.Name,
				Seed:   opts.Seed,
				Note:   firstLine(cerr.Error()),
				Prog:   shrunk.Format(),
			})
		}
	}
	opts.logf("encode: %d of %d programs reached machine code", encoded, sum.PerOracle["encode"])
	return nil
}
