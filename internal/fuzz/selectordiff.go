package fuzz

import (
	"fmt"

	"iselgen/internal/bv"
	"iselgen/internal/cost"
	"iselgen/internal/gmir"
	"iselgen/internal/isel"
	"iselgen/internal/mir"
	"iselgen/internal/sim"
)

// selectordiff.go — the cross-selector differential oracle. The greedy
// and optimal engines run over the SAME backend (library, hooks), so
// any semantic divergence is a selection bug, not a rule bug; and the
// optimal engine carries a static guarantee the oracle enforces: its
// output is never more expensive than greedy's under the cost model.

// optimalTwin lazily caches the optimal-selector variant of the
// pipeline's primary backend.
func (pl *Pipeline) optimalTwin() *isel.Backend {
	if pl.opt == nil {
		pl.opt = isel.OptimalVariant(pl.Primary, nil)
	}
	return pl.opt
}

// CheckSelectorDiff runs one program through both selection engines.
// ErrSkip when the greedy engine cannot select it (nothing to compare);
// a genuine failure when the optimal engine falls back where greedy
// succeeded, when either engine's code disagrees with the interpreter
// (result or final memory) on any vector, or when the optimal output
// is statically more expensive than the greedy output under the model.
func CheckSelectorDiff(pl *Pipeline, p *Prog, vectors [][]bv.BV) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()

	f1, berr := p.Build()
	if berr != nil {
		return fmt.Errorf("build: %w", berr)
	}
	type refRun struct {
		ret bv.BV
		mem map[uint64]byte
	}
	refs := make([]refRun, len(vectors))
	for i, args := range vectors {
		mem := gmir.NewMemory()
		ip := &gmir.Interp{Mem: mem}
		ret, rerr := ip.Run(f1, args...)
		if rerr != nil {
			return fmt.Errorf("interp: %w", rerr)
		}
		refs[i] = refRun{ret: ret, mem: mem.Snapshot()}
	}

	minW := pl.MinWidth
	if minW == 0 {
		minW = 32
	}
	selectAs := func(bk *isel.Backend) (*mir.Func, *isel.Report, error) {
		f, berr := p.Build()
		if berr != nil {
			return nil, nil, fmt.Errorf("rebuild: %w", berr)
		}
		if lerr := gmir.Legalize(f, minW); lerr != nil {
			return nil, nil, fmt.Errorf("legalize: %w", lerr)
		}
		isel.Prepare(f, pl.Name)
		mf, rep := bk.Select(f)
		return mf, rep, nil
	}

	mg, rg, serr := selectAs(pl.Primary)
	if serr != nil {
		return serr
	}
	if rg.Fallback {
		return fmt.Errorf("%w (%s)", ErrSkip, rg.FallbackReason)
	}
	opt := pl.optimalTwin()
	mo, ro, serr := selectAs(opt)
	if serr != nil {
		return serr
	}
	if ro.Fallback {
		// The optimal engine tries every rule greedy tries (the plan only
		// reorders preference), so this must never happen.
		return fmt.Errorf("optimal fell back where greedy selected: %s", ro.FallbackReason)
	}

	for _, side := range []struct {
		name string
		mf   *mir.Func
	}{{"greedy", mg}, {"optimal", mo}} {
		name, mf := side.name, side.mf
		for i, args := range vectors {
			mem := gmir.NewMemory()
			m := &sim.Machine{Mem: mem}
			res, serr := m.Run(mf, args)
			if serr != nil {
				return fmt.Errorf("%s: sim: %w", name, serr)
			}
			if got := sim.Adjust(res.Ret, 64); got != refs[i].ret {
				return fmt.Errorf("%s: result mismatch on vector %d %s: interp=%s sim=%s",
					name, i, fmtArgs(args), refs[i].ret, got)
			}
			if !memEqual(refs[i].mem, mem.Snapshot()) {
				return fmt.Errorf("%s: final memory mismatch on vector %d %s", name, i, fmtArgs(args))
			}
		}
	}

	if cg, co := cost.StaticOf(mg, opt.Model), cost.StaticOf(mo, opt.Model); cg.Less(co) {
		return fmt.Errorf("optimal statically worse than greedy: %v vs %v\n-- optimal --\n%s\n-- greedy --\n%s",
			co, cg, mo, mg)
	}
	return nil
}
