package fuzz

import (
	"fmt"

	"iselgen/internal/bv"
	"iselgen/internal/smt"
	"iselgen/internal/solver"
	"iselgen/internal/term"
)

// The SMT oracle is metamorphic: the bit-blasted equivalence checker and
// 64-trial random evaluation must never contradict each other, and
// equivalence-preserving term rewrites must never be judged NotEqual.
// Terms are regenerated deterministically from (seed, iter), so an smt
// corpus entry needs no body.

// smtWidths are the term widths the generator draws from.
var smtWidths = []int{8, 16, 32, 64}

const (
	smtDepth  = 4
	smtTrials = 16
)

// CheckSMT runs one deterministic metamorphic iteration. maxConflicts
// bounds the solver (0 = a fuzzing-sized default).
func CheckSMT(seed uint64, iter int, maxConflicts int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if maxConflicts == 0 {
		maxConflicts = 20000
	}
	rng := bv.NewRNG(SubSeed(seed, uint64(iter)))
	b := term.NewBuilder()
	g := &termGen{b: b, rng: rng, vars: map[int][]*term.Term{}}
	for _, w := range smtWidths {
		for _, n := range []string{"a", "b", "c"} {
			g.vars[w] = append(g.vars[w], b.Reg(fmt.Sprintf("%s%d", n, w), w))
		}
	}

	w := smtWidths[rng.Intn(len(smtWidths))]
	t1 := g.gen(w, smtDepth)

	metamorphic := rng.Intn(2) == 0
	var t2 *term.Term
	if metamorphic {
		t2 = g.transform(t1)
	} else {
		t2 = g.gen(w, smtDepth)
	}

	// The oracle consults the shared verdict memo like every other
	// checker user (memo → screen → bit-blast): a memo-induced verdict
	// change would surface here as an eval disagreement, so fuzz runs
	// double as a continuous check that memoization is verdict-
	// preserving. The fingerprint is a constant — fuzz queries are pure
	// term-pair truths with no spec behind them.
	c := &smt.Checker{MaxConflicts: maxConflicts, Memo: solver.Shared, SpecFP: "fuzz-v1"}
	verdict := c.Equiv(b, t1, t2)

	agreeAll := true
	for trial := 0; trial < smtTrials; trial++ {
		env := term.NewEnv()
		for _, vs := range g.vars {
			for _, v := range vs {
				env.Bind(v.Name, rng.BV(v.W()))
			}
		}
		r1, r2 := t1.Eval(env), t2.Eval(env)
		if r1 != r2 {
			agreeAll = false
			if verdict == smt.Equal {
				return fmt.Errorf("smt: checker says Equal but eval disagrees (trial %d: %s vs %s)\nlhs: %s\nrhs: %s",
					trial, r1, r2, t1, t2)
			}
			if metamorphic {
				return fmt.Errorf("smt: metamorphic transform changed semantics (trial %d: %s vs %s)\nlhs: %s\nrhs: %s",
					trial, r1, r2, t1, t2)
			}
			break
		}
	}
	if metamorphic && verdict == smt.NotEqual {
		return fmt.Errorf("smt: checker refutes an equivalence-preserving rewrite\nlhs: %s\nrhs: %s", t1, t2)
	}
	_ = agreeAll
	return nil
}

// termGen builds random terms over the bitblaster's supported operations
// (loads and stores excluded: the checker's load-pairing discipline is a
// deliberate under-approximation, not a soundness contract).
type termGen struct {
	b    *term.Builder
	rng  *bv.RNG
	vars map[int][]*term.Term
}

func (g *termGen) leaf(w int) *term.Term {
	if g.rng.Intn(3) == 0 {
		return g.b.ConstBV(g.rng.BV(w))
	}
	vs := g.vars[w]
	if len(vs) == 0 {
		return g.b.ConstBV(g.rng.BV(w))
	}
	return vs[g.rng.Intn(len(vs))]
}

func (g *termGen) cond(depth int) *term.Term {
	w := smtWidths[g.rng.Intn(len(smtWidths))]
	x, y := g.gen(w, depth-1), g.gen(w, depth-1)
	switch g.rng.Intn(3) {
	case 0:
		return g.b.Eq(x, y)
	case 1:
		return g.b.Ult(x, y)
	default:
		return g.b.Slt(x, y)
	}
}

func (g *termGen) gen(w, depth int) *term.Term {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		return g.leaf(w)
	}
	b := g.b
	switch g.rng.Intn(12) {
	case 0: // arithmetic binary
		x, y := g.gen(w, depth-1), g.gen(w, depth-1)
		switch g.rng.Intn(7) {
		case 0:
			return b.Add(x, y)
		case 1:
			return b.Sub(x, y)
		case 2:
			return b.Mul(x, y)
		case 3:
			return b.UDiv(x, y)
		case 4:
			return b.SDiv(x, y)
		case 5:
			return b.URem(x, y)
		default:
			return b.SRem(x, y)
		}
	case 1: // bitwise binary
		x, y := g.gen(w, depth-1), g.gen(w, depth-1)
		switch g.rng.Intn(3) {
		case 0:
			return b.And(x, y)
		case 1:
			return b.Or(x, y)
		default:
			return b.Xor(x, y)
		}
	case 2: // shifts and rotates
		x, y := g.gen(w, depth-1), g.gen(w, depth-1)
		switch g.rng.Intn(5) {
		case 0:
			return b.Shl(x, y)
		case 1:
			return b.LShr(x, y)
		case 2:
			return b.AShr(x, y)
		case 3:
			return b.RotL(x, y)
		default:
			return b.RotR(x, y)
		}
	case 3: // unary
		x := g.gen(w, depth-1)
		switch g.rng.Intn(2) {
		case 0:
			return b.Neg(x)
		default:
			return b.Not(x)
		}
	case 4: // bit counting / reversal
		x := g.gen(w, depth-1)
		switch g.rng.Intn(4) {
		case 0:
			return b.Popcount(x)
		case 1:
			return b.Clz(x)
		case 2:
			return b.Ctz(x)
		default:
			return b.Rev(x)
		}
	case 5: // if-then-else
		return b.Ite(g.cond(depth), g.gen(w, depth-1), g.gen(w, depth-1))
	case 6: // zero/sign extension from a narrower width
		nw := g.narrower(w)
		if nw == 0 {
			return g.leaf(w)
		}
		x := g.gen(nw, depth-1)
		if g.rng.Intn(2) == 0 {
			return b.ZExt(w, x)
		}
		return b.SExt(w, x)
	case 7: // truncation from a wider width
		ww := g.wider(w)
		if ww == 0 {
			return g.leaf(w)
		}
		return b.Trunc(w, g.gen(ww, depth-1))
	case 8: // extract a w-bit field from a wider value
		ww := g.wider(w)
		if ww == 0 {
			return g.leaf(w)
		}
		lo := g.rng.Intn(ww - w + 1)
		return b.Extract(lo+w-1, lo, g.gen(ww, depth-1))
	case 9: // concat two halves
		if w%2 != 0 || !widthOK(w/2) {
			return g.leaf(w)
		}
		return b.Concat(g.gen(w/2, depth-1), g.gen(w/2, depth-1))
	case 10: // comparison widened back up
		c := g.cond(depth)
		if w == 1 {
			return c
		}
		return b.ZExt(w, c)
	default:
		return g.leaf(w)
	}
}

func (g *termGen) narrower(w int) int {
	var cands []int
	for _, c := range smtWidths {
		if c < w {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return 0
	}
	return cands[g.rng.Intn(len(cands))]
}

func (g *termGen) wider(w int) int {
	var cands []int
	for _, c := range smtWidths {
		if c > w {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return 0
	}
	return cands[g.rng.Intn(len(cands))]
}

func widthOK(w int) bool {
	for _, c := range smtWidths {
		if c == w {
			return true
		}
	}
	return false
}

// transform applies one equivalence-preserving rewrite to t.
func (g *termGen) transform(t *term.Term) *term.Term {
	b := g.b
	w := t.W()
	switch g.rng.Intn(5) {
	case 0: // double complement
		return b.Not(b.Not(t))
	case 1: // double negation
		return b.Neg(b.Neg(t))
	case 2: // x -> x ^ 0
		return b.Xor(t, b.Const(w, 0))
	case 3: // x -> x + 0
		return b.Add(t, b.Const(w, 0))
	default: // x - y -> x + (-y), else identity-or
		if t.Op == term.Sub {
			return b.Add(t.Args[0], b.Neg(t.Args[1]))
		}
		return b.Or(t, b.Const(w, 0))
	}
}
