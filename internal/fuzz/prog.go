// Package fuzz is the deterministic differential fuzzing subsystem: it
// generates random well-typed gMIR programs, perturbed ISA
// specifications, and random term pairs, and cross-checks the whole
// pipeline — legalize → greedy selection → machine simulation against
// the gMIR interpreter, synthesis against its own soundness contract,
// and the SMT equivalence checker against concrete evaluation. Every
// failure is delta-debugged to a minimal reproducer and written in a
// self-contained corpus format that doubles as a regression suite.
package fuzz

import (
	"fmt"
	"strconv"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
)

// PInst is one instruction of the flat, serializable program form. A
// program is a straight-line SSA block: instruction i defines value i
// (stores and the final ret define nothing, but still occupy an index so
// that text lines and value ids stay in lockstep).
type PInst struct {
	Op      string // param, const, add, ..., icmp, select, zext, sext, trunc, load, sload, store, ret
	Bits    int    // result width; for icmp the operand width; for store the value width
	Pred    string // icmp predicate name
	Imm     bv.BV  // const payload
	MemBits int    // load/sload/store access size
	Args    []int  // operand value ids
}

// Prog is a straight-line gMIR program in the corpus format.
type Prog struct {
	Insts []PInst
}

// binOps maps text names to gMIR binary opcodes.
var binOps = map[string]gmir.Opcode{
	"add": gmir.GAdd, "sub": gmir.GSub, "mul": gmir.GMul,
	"udiv": gmir.GUDiv, "sdiv": gmir.GSDiv, "urem": gmir.GURem, "srem": gmir.GSRem,
	"and": gmir.GAnd, "or": gmir.GOr, "xor": gmir.GXor,
	"shl": gmir.GShl, "lshr": gmir.GLShr, "ashr": gmir.GAShr,
	"smin": gmir.GSMin, "smax": gmir.GSMax, "umin": gmir.GUMin, "umax": gmir.GUMax,
}

// unOps maps text names to gMIR unary opcodes.
var unOps = map[string]gmir.Opcode{
	"ctpop": gmir.GCtpop, "ctlz": gmir.GCtlz, "cttz": gmir.GCttz,
	"bswap": gmir.GBSwap, "abs": gmir.GAbs,
}

// predOf maps predicate names to gmir predicates.
var predOf = map[string]gmir.Pred{
	"eq": gmir.PredEQ, "ne": gmir.PredNE,
	"ult": gmir.PredULT, "ule": gmir.PredULE, "ugt": gmir.PredUGT, "uge": gmir.PredUGE,
	"slt": gmir.PredSLT, "sle": gmir.PredSLE, "sgt": gmir.PredSGT, "sge": gmir.PredSGE,
}

// NumOps counts the operation instructions: everything except params and
// the final ret — the size metric shrinking minimizes.
func (p *Prog) NumOps() int {
	n := 0
	for _, in := range p.Insts {
		if in.Op != "param" && in.Op != "ret" {
			n++
		}
	}
	return n
}

// ParamWidths returns the widths of the program's parameters.
func (p *Prog) ParamWidths() []int {
	var out []int
	for _, in := range p.Insts {
		if in.Op == "param" {
			out = append(out, in.Bits)
		}
	}
	return out
}

// Format renders the program in its corpus text form.
func (p *Prog) Format() string {
	var sb strings.Builder
	for i, in := range p.Insts {
		switch in.Op {
		case "store":
			fmt.Fprintf(&sb, "store %d v%d v%d\n", in.MemBits, in.Args[0], in.Args[1])
		case "ret":
			fmt.Fprintf(&sb, "ret v%d\n", in.Args[0])
		case "param":
			fmt.Fprintf(&sb, "v%d = param %d\n", i, in.Bits)
		case "const":
			fmt.Fprintf(&sb, "v%d = const %d 0x%x:%x\n", i, in.Bits, in.Imm.Hi, in.Imm.Lo)
		case "icmp":
			fmt.Fprintf(&sb, "v%d = icmp %s %d v%d v%d\n", i, in.Pred, in.Bits, in.Args[0], in.Args[1])
		case "select":
			fmt.Fprintf(&sb, "v%d = select %d v%d v%d v%d\n", i, in.Bits, in.Args[0], in.Args[1], in.Args[2])
		case "zext", "sext", "trunc":
			fmt.Fprintf(&sb, "v%d = %s %d v%d\n", i, in.Op, in.Bits, in.Args[0])
		case "load", "sload":
			fmt.Fprintf(&sb, "v%d = %s %d %d v%d\n", i, in.Op, in.Bits, in.MemBits, in.Args[0])
		default:
			fmt.Fprintf(&sb, "v%d = %s %d", i, in.Op, in.Bits)
			for _, a := range in.Args {
				fmt.Fprintf(&sb, " v%d", a)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// ParseProg parses the corpus text form. It returns an error — never
// panics — on malformed input, so it can sit behind a native fuzz target.
func ParseProg(src string) (*Prog, error) {
	p := &Prog{}
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fs := strings.Fields(line)
		if len(fs) == 0 {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("prog:%d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		id := len(p.Insts)
		// Value-defining lines start "v<id> =".
		if strings.HasPrefix(fs[0], "v") && len(fs) >= 2 && fs[1] == "=" {
			n, err := strconv.Atoi(fs[0][1:])
			if err != nil || n != id {
				return nil, errf("expected v%d on the left-hand side", id)
			}
			fs = fs[2:]
			if len(fs) == 0 {
				return nil, errf("missing operation")
			}
		}
		in := PInst{Op: fs[0]}
		rest := fs[1:]
		num := func(i int) (int, error) {
			if i >= len(rest) {
				return 0, errf("%s: missing field %d", in.Op, i)
			}
			return strconv.Atoi(rest[i])
		}
		val := func(i int) (int, error) {
			if i >= len(rest) || !strings.HasPrefix(rest[i], "v") {
				return 0, errf("%s: expected value reference at field %d", in.Op, i)
			}
			return strconv.Atoi(rest[i][1:])
		}
		var err error
		switch in.Op {
		case "param":
			if in.Bits, err = num(0); err != nil {
				return nil, errf("param: bad width")
			}
		case "const":
			if in.Bits, err = num(0); err != nil {
				return nil, errf("const: bad width")
			}
			if in.Bits < 1 || in.Bits > 64 {
				return nil, errf("const: width %d out of range", in.Bits)
			}
			if len(rest) < 2 {
				return nil, errf("const: missing value")
			}
			parts := strings.SplitN(strings.TrimPrefix(rest[1], "0x"), ":", 2)
			if len(parts) != 2 {
				return nil, errf("const: value must be 0xHI:LO")
			}
			hi, err1 := strconv.ParseUint(parts[0], 16, 64)
			lo, err2 := strconv.ParseUint(parts[1], 16, 64)
			if err1 != nil || err2 != nil {
				return nil, errf("const: bad hex value")
			}
			in.Imm = bv.New128(in.Bits, hi, lo)
		case "icmp":
			if len(rest) < 4 {
				return nil, errf("icmp: want pred width a b")
			}
			in.Pred = rest[0]
			rest = rest[1:]
			if in.Bits, err = num(0); err != nil {
				return nil, errf("icmp: bad width")
			}
			a, err1 := val(1)
			b, err2 := val(2)
			if err1 != nil || err2 != nil {
				return nil, errf("icmp: bad operands")
			}
			in.Args = []int{a, b}
		case "select":
			if in.Bits, err = num(0); err != nil {
				return nil, errf("select: bad width")
			}
			c, err1 := val(1)
			x, err2 := val(2)
			y, err3 := val(3)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, errf("select: bad operands")
			}
			in.Args = []int{c, x, y}
		case "zext", "sext", "trunc":
			if in.Bits, err = num(0); err != nil {
				return nil, errf("%s: bad width", in.Op)
			}
			x, err1 := val(1)
			if err1 != nil {
				return nil, errf("%s: bad operand", in.Op)
			}
			in.Args = []int{x}
		case "load", "sload":
			if in.Bits, err = num(0); err != nil {
				return nil, errf("%s: bad width", in.Op)
			}
			if in.MemBits, err = num(1); err != nil {
				return nil, errf("%s: bad access size", in.Op)
			}
			a, err1 := val(2)
			if err1 != nil {
				return nil, errf("%s: bad address", in.Op)
			}
			in.Args = []int{a}
		case "store":
			if in.MemBits, err = num(0); err != nil {
				return nil, errf("store: bad access size")
			}
			v, err1 := val(1)
			a, err2 := val(2)
			if err1 != nil || err2 != nil {
				return nil, errf("store: bad operands")
			}
			in.Args = []int{v, a}
		case "ret":
			v, err1 := val(0)
			if err1 != nil {
				return nil, errf("ret: bad operand")
			}
			in.Args = []int{v}
		default:
			if _, ok := binOps[in.Op]; ok {
				if in.Bits, err = num(0); err != nil {
					return nil, errf("%s: bad width", in.Op)
				}
				a, err1 := val(1)
				b, err2 := val(2)
				if err1 != nil || err2 != nil {
					return nil, errf("%s: bad operands", in.Op)
				}
				in.Args = []int{a, b}
			} else if _, ok := unOps[in.Op]; ok {
				if in.Bits, err = num(0); err != nil {
					return nil, errf("%s: bad width", in.Op)
				}
				x, err1 := val(1)
				if err1 != nil {
					return nil, errf("%s: bad operand", in.Op)
				}
				in.Args = []int{x}
			} else {
				return nil, errf("unknown operation %q", in.Op)
			}
		}
		p.Insts = append(p.Insts, in)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// widthOf returns the result width of value id (0 for non-value insts).
func (p *Prog) widthOf(id int) int {
	in := p.Insts[id]
	switch in.Op {
	case "store", "ret":
		return 0
	case "icmp":
		return 1
	default:
		return in.Bits
	}
}

// Validate checks the structural and type rules the gMIR builder would
// otherwise enforce by panicking: SSA order, matching operand widths,
// legal extension directions, and memory access sizing. A valid program
// is guaranteed to Build without panicking.
func (p *Prog) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("prog: empty program")
	}
	okWidth := func(w int) bool {
		switch w {
		case 1, 8, 16, 32, 64:
			return true
		}
		return false
	}
	paramsDone := false
	for i, in := range p.Insts {
		errf := func(format string, args ...any) error {
			return fmt.Errorf("prog: v%d (%s): %s", i, in.Op, fmt.Sprintf(format, args...))
		}
		for _, a := range in.Args {
			if a < 0 || a >= i {
				return errf("operand v%d out of SSA order", a)
			}
			if p.widthOf(a) == 0 {
				return errf("operand v%d is not a value", a)
			}
		}
		if in.Op == "param" {
			if paramsDone {
				return errf("params must precede all operations")
			}
			if !okWidth(in.Bits) || in.Bits == 1 {
				return errf("bad param width %d", in.Bits)
			}
			continue
		}
		paramsDone = true
		if in.Op == "ret" {
			if i != len(p.Insts)-1 {
				return errf("ret must be the last instruction")
			}
			continue
		}
		switch in.Op {
		case "const":
			if !okWidth(in.Bits) || in.Imm.W() != in.Bits {
				return errf("const width %d / payload width %d", in.Bits, in.Imm.W())
			}
		case "icmp":
			if _, ok := predOf[in.Pred]; !ok {
				return errf("unknown predicate %q", in.Pred)
			}
			if !okWidth(in.Bits) || p.widthOf(in.Args[0]) != in.Bits || p.widthOf(in.Args[1]) != in.Bits {
				return errf("operand widths %d/%d, want %d",
					p.widthOf(in.Args[0]), p.widthOf(in.Args[1]), in.Bits)
			}
		case "select":
			if p.widthOf(in.Args[0]) != 1 {
				return errf("condition must be 1 bit")
			}
			if !okWidth(in.Bits) || in.Bits == 1 ||
				p.widthOf(in.Args[1]) != in.Bits || p.widthOf(in.Args[2]) != in.Bits {
				return errf("arm widths %d/%d, want %d",
					p.widthOf(in.Args[1]), p.widthOf(in.Args[2]), in.Bits)
			}
		case "zext", "sext":
			if !okWidth(in.Bits) || in.Bits <= p.widthOf(in.Args[0]) {
				return errf("extension %d -> %d does not widen", p.widthOf(in.Args[0]), in.Bits)
			}
		case "trunc":
			if !okWidth(in.Bits) || in.Bits >= p.widthOf(in.Args[0]) {
				return errf("truncation %d -> %d does not narrow", p.widthOf(in.Args[0]), in.Bits)
			}
		case "load", "sload":
			if !okWidth(in.Bits) || in.Bits == 1 {
				return errf("bad load type width %d", in.Bits)
			}
			if in.MemBits%8 != 0 || in.MemBits < 8 || in.MemBits > in.Bits {
				return errf("bad access size %d for %d-bit load", in.MemBits, in.Bits)
			}
			if in.Op == "sload" && in.MemBits == in.Bits {
				return errf("sload access size must be narrower than the type")
			}
			if p.widthOf(in.Args[0]) != 64 {
				return errf("address must be 64 bits")
			}
		case "store":
			if in.MemBits%8 != 0 || in.MemBits < 8 || in.MemBits > p.widthOf(in.Args[0]) {
				return errf("bad access size %d for %d-bit value", in.MemBits, p.widthOf(in.Args[0]))
			}
			if p.widthOf(in.Args[1]) != 64 {
				return errf("address must be 64 bits")
			}
		default:
			if _, ok := binOps[in.Op]; ok {
				if !okWidth(in.Bits) || in.Bits == 1 ||
					p.widthOf(in.Args[0]) != in.Bits || p.widthOf(in.Args[1]) != in.Bits {
					return errf("operand widths %d/%d, want %d",
						p.widthOf(in.Args[0]), p.widthOf(in.Args[1]), in.Bits)
				}
			} else if _, ok := unOps[in.Op]; ok {
				if !okWidth(in.Bits) || in.Bits == 1 || p.widthOf(in.Args[0]) != in.Bits {
					return errf("operand width %d, want %d", p.widthOf(in.Args[0]), in.Bits)
				}
			} else {
				return errf("unknown operation")
			}
		}
	}
	last := p.Insts[len(p.Insts)-1]
	if last.Op != "ret" {
		return fmt.Errorf("prog: missing final ret")
	}
	if p.widthOf(last.Args[0]) != 64 {
		return fmt.Errorf("prog: ret value must be 64 bits")
	}
	return nil
}

// Build constructs the gMIR function. The program must be Valid; Build
// then cannot panic (the builder's invariants are a subset of Validate's).
func (p *Prog) Build() (*gmir.Function, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	fb := gmir.NewFunc("fuzz")
	vals := make([]gmir.Value, len(p.Insts))
	for i, in := range p.Insts {
		ty := gmir.Type{Bits: in.Bits}
		switch in.Op {
		case "param":
			vals[i] = fb.Param(ty)
		case "const":
			vals[i] = fb.ConstBV(in.Imm)
		case "icmp":
			vals[i] = fb.ICmp(predOf[in.Pred], vals[in.Args[0]], vals[in.Args[1]])
		case "select":
			vals[i] = fb.Select(vals[in.Args[0]], vals[in.Args[1]], vals[in.Args[2]])
		case "zext":
			vals[i] = fb.ZExt(ty, vals[in.Args[0]])
		case "sext":
			vals[i] = fb.SExt(ty, vals[in.Args[0]])
		case "trunc":
			vals[i] = fb.Trunc(ty, vals[in.Args[0]])
		case "load":
			vals[i] = fb.Load(ty, vals[in.Args[0]], in.MemBits)
		case "sload":
			vals[i] = fb.SLoad(ty, vals[in.Args[0]], in.MemBits)
		case "store":
			fb.Store(vals[in.Args[0]], vals[in.Args[1]], in.MemBits)
		case "ret":
			fb.Ret(vals[in.Args[0]])
		default:
			if op, ok := binOps[in.Op]; ok {
				vals[i] = emitBinary(fb, op, vals[in.Args[0]], vals[in.Args[1]])
			} else {
				vals[i] = emitUnary(fb, unOps[in.Op], vals[in.Args[0]])
			}
		}
	}
	return fb.Finish()
}

func emitBinary(fb *gmir.FuncBuilder, op gmir.Opcode, x, y gmir.Value) gmir.Value {
	switch op {
	case gmir.GAdd:
		return fb.Add(x, y)
	case gmir.GSub:
		return fb.Sub(x, y)
	case gmir.GMul:
		return fb.Mul(x, y)
	case gmir.GUDiv:
		return fb.UDiv(x, y)
	case gmir.GSDiv:
		return fb.SDiv(x, y)
	case gmir.GURem:
		return fb.URem(x, y)
	case gmir.GSRem:
		return fb.SRem(x, y)
	case gmir.GAnd:
		return fb.And(x, y)
	case gmir.GOr:
		return fb.Or(x, y)
	case gmir.GXor:
		return fb.Xor(x, y)
	case gmir.GShl:
		return fb.Shl(x, y)
	case gmir.GLShr:
		return fb.LShr(x, y)
	case gmir.GAShr:
		return fb.AShr(x, y)
	case gmir.GSMin:
		return fb.SMin(x, y)
	case gmir.GSMax:
		return fb.SMax(x, y)
	case gmir.GUMin:
		return fb.UMin(x, y)
	default:
		return fb.UMax(x, y)
	}
}

func emitUnary(fb *gmir.FuncBuilder, op gmir.Opcode, x gmir.Value) gmir.Value {
	switch op {
	case gmir.GCtpop:
		return fb.Ctpop(x)
	case gmir.GCtlz:
		return fb.Ctlz(x)
	case gmir.GCttz:
		return fb.Cttz(x)
	case gmir.GBSwap:
		return fb.BSwap(x)
	default:
		return fb.Abs(x)
	}
}
