package fuzz

import (
	"testing"
)

// FuzzSelectDiff is the native-fuzzing entry to the differential oracle:
// arbitrary bytes are parsed as the corpus program form (invalid inputs
// are skipped), and anything that parses runs through both targets'
// legalize → select → simulate pipelines against the interpreter.
//
//	go test ./internal/fuzz -fuzz FuzzSelectDiff
func FuzzSelectDiff(f *testing.F) {
	f.Add("v0 = param 64\nret v0\n")
	f.Add("v0 = param 64\nv1 = param 64\nv2 = sub 64 v0 v1\nret v2\n")
	f.Add("v0 = param 32\nv1 = bswap 32 v0\nv2 = cttz 32 v1\nv3 = zext 64 v2\nret v3\n")
	f.Add("v0 = param 64\nv1 = param 16\nstore 16 v1 v0\nv3 = load 64 8 v0\nv4 = ctpop 64 v3\nret v4\n")
	f.Add("v0 = param 8\nv1 = const 8 0x0:7f\nv2 = add 8 v0 v1\nv3 = sext 64 v2\nret v3\n")
	f.Add("v0 = param 16\nv1 = icmp slt 16 v0 v0\nv2 = select 16 v1 v0 v0\nv3 = zext 64 v2\nret v3\n")
	pls := testPipelines(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		p, err := ParseProg(src)
		if err != nil {
			t.Skip("not a valid program")
		}
		for tgt, pl := range pls {
			if cerr := CheckProg(pl, p, VectorsFor(1, p, 3)); IsFailure(cerr) {
				t.Errorf("%s: %v\nprogram:\n%s", tgt, cerr, p.Format())
			}
		}
	})
}
