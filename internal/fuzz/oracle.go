package fuzz

import (
	"errors"
	"fmt"

	"iselgen/internal/bv"
	"iselgen/internal/enc"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/isel"
	"iselgen/internal/sim"
)

// ErrSkip marks a program the pipeline legitimately cannot compile
// (both the primary and fallback backend declined) — not a bug.
var ErrSkip = errors.New("fuzz: selection fell back on every backend")

// Pipeline is one end-to-end selection pipeline under test.
type Pipeline struct {
	// Name is the target name passed to isel.Prepare ("aarch64", "riscv",
	// or an inline-spec target name).
	Name string
	// Primary is the backend under test (synthesized or handwritten).
	Primary *isel.Backend
	// Fallback substitutes when Primary cannot select the function — the
	// way LLVM falls back to SelectionDAG. Nil means fallback = skip.
	Fallback *isel.Backend
	// MinWidth is the legalization floor (0 = 32).
	MinWidth int
	// ISA enables the encode oracle (machine round-trip); nil or a
	// target without encoding clauses skips it.
	ISA *isa.Target

	opt   *isel.Backend  // cached optimal-selector twin (selector-diff oracle)
	codec *enc.Codec     // cached encoder/decoder tables (encode oracle)
	asm   *enc.Assembler // cached MIR assembler (encode oracle)
}

// Vectors derives n deterministic argument vectors for a program.
func Vectors(rng *bv.RNG, p *Prog, n int) [][]bv.BV {
	widths := p.ParamWidths()
	out := make([][]bv.BV, n)
	for i := range out {
		args := make([]bv.BV, len(widths))
		for j, w := range widths {
			args[j] = rng.BV(w)
		}
		out[i] = args
	}
	return out
}

// CheckProg runs the full differential oracle on one program: the gMIR
// interpreter is the reference; the candidate side legalizes, selects
// (with fallback), and simulates; results and final memory must be
// bit-identical on every input vector, and the simulation must be
// deterministic including its final flag state. A nil error means the
// program passed; ErrSkip means no backend could compile it; any other
// error is a genuine pipeline failure (mismatches and panics alike).
func CheckProg(pl *Pipeline, p *Prog, vectors [][]bv.BV) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()

	f1, berr := p.Build()
	if berr != nil {
		return fmt.Errorf("build: %w", berr)
	}

	// Reference runs.
	type refRun struct {
		ret bv.BV
		mem map[uint64]byte
	}
	refs := make([]refRun, len(vectors))
	for i, args := range vectors {
		mem := gmir.NewMemory()
		ip := &gmir.Interp{Mem: mem}
		ret, rerr := ip.Run(f1, args...)
		if rerr != nil {
			return fmt.Errorf("interp: %w", rerr)
		}
		refs[i] = refRun{ret: ret, mem: mem.Snapshot()}
	}

	// Candidate side: legalize, prepare, select (shared with the encode
	// oracle).
	mf, usedBackend, serr := selectProg(pl, p)
	if serr != nil {
		return serr
	}

	for i, args := range vectors {
		mem := gmir.NewMemory()
		m := &sim.Machine{Mem: mem}
		res, serr := m.Run(mf, args)
		if serr != nil {
			return fmt.Errorf("%s: sim: %w", usedBackend, serr)
		}
		got := sim.Adjust(res.Ret, 64)
		if got != refs[i].ret {
			return fmt.Errorf("%s: result mismatch on vector %d %s: interp=%s sim=%s",
				usedBackend, i, fmtArgs(args), refs[i].ret, got)
		}
		if !memEqual(refs[i].mem, mem.Snapshot()) {
			return fmt.Errorf("%s: final memory mismatch on vector %d %s", usedBackend, i, fmtArgs(args))
		}
		if i == 0 {
			// Determinism: the same machine code on the same inputs must
			// reproduce the result, cycle count, and final flag state.
			m2 := &sim.Machine{Mem: gmir.NewMemory()}
			res2, serr2 := m2.Run(mf, args)
			if serr2 != nil {
				return fmt.Errorf("%s: sim rerun: %w", usedBackend, serr2)
			}
			if res2.Ret != res.Ret || res2.Cycles != res.Cycles || !flagsEqual(res.Flags, res2.Flags) {
				return fmt.Errorf("%s: nondeterministic simulation (ret %s vs %s, cycles %d vs %d, flags %v vs %v)",
					usedBackend, res.Ret, res2.Ret, res.Cycles, res2.Cycles, res.Flags, res2.Flags)
			}
		}
	}
	return nil
}

func fmtArgs(args []bv.BV) string {
	s := "["
	for i, a := range args {
		if i > 0 {
			s += " "
		}
		s += a.String()
	}
	return s + "]"
}

func memEqual(a, b map[uint64]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func flagsEqual(a, b map[string]bv.BV) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// IsFailure reports whether a CheckProg error is a genuine failure
// (mismatch or panic) rather than a legitimate skip.
func IsFailure(err error) bool {
	return err != nil && !errors.Is(err, ErrSkip)
}
