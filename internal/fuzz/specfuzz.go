package fuzz

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/core"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/isel"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

// The spec oracle perturbs an ISA specification and asserts the
// pipeline's contract: spec.Check either accepts the mutant, in which
// case synthesis must produce a library whose selections still agree
// with the gMIR interpreter (the mutated semantics are used on BOTH
// sides — by the verifier during synthesis and by the simulator during
// execution, so any disagreement is a synthesis soundness bug), or it
// rejects the mutant with a positioned diagnostic — never a panic.

// baseSpec is a compact accumulator-style ISA: enough reg-reg coverage
// to select the restricted program set, plus immediate-bearing and
// memory instructions purely as mutation fodder.
const baseSpec = `inst zadd(a: reg64, b: reg64) { rd = a + b; }
inst zsub(a: reg64, b: reg64) { rd = a - b; }
inst zmul(a: reg64, b: reg64) { rd = a * b; }
inst zand(a: reg64, b: reg64) { rd = a & b; }
inst zor(a: reg64, b: reg64) { rd = a | b; }
inst zxor(a: reg64, b: reg64) { rd = a ^ b; }
inst zaddk(a: reg64, k: imm16) { rd = a + zext(k, 64); }
inst zshl(a: reg64, s: imm6) { rd = a << zext(s, 64); }
inst zsetlt(a: reg64, b: reg64) { rd = zext(slt(a, b), 64); }
inst zld(a: reg64, k: imm12) { rd = load(a + zext(k, 64), 64); }
inst zst(v: reg64, a: reg64, k: imm12) { mem[a + zext(k, 64), 64] = v; }
`

// specDiag matches the positioned diagnostics the spec package is
// contractually required to produce for any rejected input.
var specDiag = regexp.MustCompile(`^spec(:\d+)?: `)

// SpecOptions configures the spec oracle.
type SpecOptions struct {
	// Synth differential-checks accepted mutants (synthesize a library,
	// select and simulate random programs). Off, the oracle only checks
	// the accept-or-diagnose contract, which is cheap enough for CI.
	Synth bool
	// Progs is the number of programs per accepted mutant (default 4).
	Progs int
}

// CheckSpec runs one deterministic spec-mutation iteration. It returns
// the mutated source (already shrunk when failing) and a nil error, a
// genuine failure, or ErrSkip when the mutant was rejected with a proper
// diagnostic (the common, healthy case).
func CheckSpec(seed uint64, iter int, opts SpecOptions) (string, error) {
	rng := bv.NewRNG(SubSeed(seed, uint64(iter)))
	mutated := MutateSpec(rng, baseSpec)
	err := checkSpecSrc(mutated, seed, opts)
	if IsFailure(err) {
		mutated = ShrinkSpec(mutated, func(s string) bool {
			return IsFailure(checkSpecSrc(s, seed, opts))
		})
		err = checkSpecSrc(mutated, seed, opts)
	}
	return mutated, err
}

// checkSpecSrc checks one spec source against the oracle contract.
func checkSpecSrc(src string, seed uint64, opts SpecOptions) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if _, cerr := spec.Check(src); cerr != nil {
		if !specDiag.MatchString(cerr.Error()) {
			return fmt.Errorf("spec: diagnostic without position: %q", cerr.Error())
		}
		return fmt.Errorf("%w (rejected: %s)", ErrSkip, cerr)
	}
	if !opts.Synth {
		return nil
	}

	b := term.NewBuilder()
	target, lerr := isa.LoadTarget(b, "zeta-fuzz", src, nil, 4)
	if lerr != nil {
		// Check accepted but LoadTarget refused: the two front doors must
		// agree on what is a valid specification.
		return fmt.Errorf("spec: Check accepted but LoadTarget rejected: %v", lerr)
	}

	synth := core.New(b, target, core.Config{
		TestInputs: 64, MaxSeqLen: 1, SMTMaxConflicts: 8000, Workers: 2,
	})
	synth.BuildPool()
	lib := rules.NewLibrary("zeta-fuzz")
	synth.Synthesize(specPatterns(), lib)

	backend := &isel.Backend{Name: "zeta-fuzz", ISA: target, Lib: lib, Hooks: isel.Hooks{}}
	pl := &Pipeline{Name: "zeta-fuzz", Primary: backend}
	cfg := GenConfig{
		MinOps: 1, MaxOps: 6,
		Widths: []int{64},
		Ops:    []string{"add", "sub", "mul", "and", "or", "xor"},
		// No constants and no memory: the backend has empty hooks, so the
		// only legal lowering paths are the synthesized reg-reg rules.
	}
	progs := opts.Progs
	if progs == 0 {
		progs = 4
	}
	for i := 0; i < progs; i++ {
		p := Gen(rng2(seed, i), cfg)
		vecs := Vectors(rng2(seed, 1000+i), p, 4)
		if perr := CheckProg(pl, p, vecs); IsFailure(perr) {
			return fmt.Errorf("spec: accepted mutant produced unsound library: %w\nprogram:\n%s", perr, p.Format())
		}
	}
	return nil
}

// rng2 derives a fixed per-purpose RNG so spec-oracle programs do not
// depend on how much entropy mutation consumed.
func rng2(seed uint64, salt int) *bv.RNG {
	return bv.NewRNG(SubSeed(seed, 0x5bec0000+uint64(salt)))
}

// specPatterns is the reg-reg pattern set matching the restricted
// generator vocabulary.
func specPatterns() []*pattern.Pattern {
	ops := []gmir.Opcode{gmir.GAdd, gmir.GSub, gmir.GMul, gmir.GAnd, gmir.GOr, gmir.GXor}
	var out []*pattern.Pattern
	for _, op := range ops {
		out = append(out, pattern.New(
			pattern.Op(op, gmir.S64, pattern.Leaf(gmir.S64), pattern.Leaf(gmir.S64))))
	}
	return out
}

// MutateSpec applies 1–3 random textual mutations: swapping operand
// identifiers inside a body, tweaking a numeric literal (widths
// included), or dropping an instruction line.
func MutateSpec(rng *bv.RNG, src string) string {
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	n := 1 + rng.Intn(3)
	for i := 0; i < n && len(lines) > 1; i++ {
		li := rng.Intn(len(lines))
		switch rng.Intn(3) {
		case 0:
			lines[li] = swapOperands(rng, lines[li])
		case 1:
			lines[li] = tweakNumber(rng, lines[li])
		default:
			lines = append(lines[:li], lines[li+1:]...)
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

// swapOperands exchanges two operand names throughout a line's body.
func swapOperands(rng *bv.RNG, line string) string {
	open := strings.IndexByte(line, '(')
	close := strings.IndexByte(line, ')')
	brace := strings.IndexByte(line, '{')
	if open < 0 || close < open || brace < close {
		return line
	}
	var names []string
	for _, f := range strings.Split(line[open+1:close], ",") {
		name, _, ok := strings.Cut(f, ":")
		if ok {
			names = append(names, strings.TrimSpace(name))
		}
	}
	if len(names) < 2 {
		return line
	}
	a := names[rng.Intn(len(names))]
	b := names[rng.Intn(len(names))]
	if a == b {
		b = names[(indexOf(names, a)+1)%len(names)]
	}
	head, body := line[:brace], line[brace:]
	toks := splitTokens(body)
	for i, t := range toks {
		switch t {
		case a:
			toks[i] = b
		case b:
			toks[i] = a
		}
	}
	return head + strings.Join(toks, "")
}

// tweakNumber perturbs one numeric token anywhere in the line — body
// constants, extension widths, and operand type widths alike.
func tweakNumber(rng *bv.RNG, line string) string {
	toks := splitTokens(line)
	var nums []int
	for i, t := range toks {
		if _, err := strconv.Atoi(t); err == nil {
			nums = append(nums, i)
		}
	}
	if len(nums) == 0 {
		return line
	}
	i := nums[rng.Intn(len(nums))]
	orig, _ := strconv.Atoi(toks[i])
	repl := []int{0, 1, 2, 7, 8, 63, 64, 65, 127, 128, 129, 255, 4096, 99999, orig + 1, orig - 1}
	toks[i] = strconv.Itoa(repl[rng.Intn(len(repl))])
	return strings.Join(toks, "")
}

// splitTokens splits a string into identifier/number runs and single
// separator characters, preserving everything (join with "" round-trips).
func splitTokens(s string) []string {
	var toks []string
	i := 0
	isWord := func(c byte) bool {
		return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
	}
	for i < len(s) {
		if isWord(s[i]) {
			j := i
			for j < len(s) && isWord(s[j]) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		} else {
			toks = append(toks, s[i:i+1])
			i++
		}
	}
	return toks
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// ShrinkSpec drops instruction lines while the failure persists.
func ShrinkSpec(src string, failing func(string) bool) string {
	if !failing(src) {
		return src
	}
	for {
		lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
		progress := false
		for i := 0; i < len(lines) && len(lines) > 1; i++ {
			cand := strings.Join(append(append([]string{}, lines[:i]...), lines[i+1:]...), "\n") + "\n"
			if failing(cand) {
				src = cand
				lines = strings.Split(strings.TrimRight(src, "\n"), "\n")
				progress = true
				i--
			}
		}
		if !progress {
			return src
		}
	}
}
