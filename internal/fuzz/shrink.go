package fuzz

import (
	"iselgen/internal/bv"
)

// Shrink delta-debugs a failing program to a (locally) minimal
// reproducer: it repeatedly removes instructions (rewiring their uses to
// an equal-width earlier value), drops unused parameters, and simplifies
// constants, keeping each candidate only if `failing` still holds. The
// invariant: the returned program is valid and failing(result) is true
// whenever failing(p) was true on entry.
func Shrink(p *Prog, failing func(*Prog) bool, maxChecks int) *Prog {
	if !failing(p) {
		return p
	}
	checks := 0
	try := func(cand *Prog) bool {
		if checks >= maxChecks {
			return false
		}
		if cand.Validate() != nil {
			return false
		}
		checks++
		return failing(cand)
	}
	cur := p
	for {
		next := shrinkPass(cur, try)
		if next == nil {
			return cur
		}
		cur = next
	}
}

// shrinkPass tries one round of reductions; nil means no progress.
func shrinkPass(p *Prog, try func(*Prog) bool) *Prog {
	// 1. Remove one instruction, rewiring its uses.
	for i := len(p.Insts) - 1; i >= 0; i-- {
		in := p.Insts[i]
		if in.Op == "ret" {
			continue
		}
		if in.Op == "param" {
			// Only removable when unused.
			if used(p, i) {
				continue
			}
			if cand := remove(p, i, -1); try(cand) {
				return cand
			}
			continue
		}
		w := p.widthOf(i)
		if w == 0 || !used(p, i) {
			// Stores and dead values need no rewiring.
			if cand := remove(p, i, -1); try(cand) {
				return cand
			}
			continue
		}
		// Candidate replacements: same-width operands of the removed
		// instruction first (often preserves the failure shape), then any
		// earlier same-width value.
		var repls []int
		for _, a := range in.Args {
			if p.widthOf(a) == w {
				repls = append(repls, a)
			}
		}
		for j := 0; j < i; j++ {
			if p.widthOf(j) == w {
				repls = append(repls, j)
			}
		}
		seen := map[int]bool{}
		for _, r := range repls {
			if seen[r] {
				continue
			}
			seen[r] = true
			if cand := remove(p, i, r); try(cand) {
				return cand
			}
		}
	}
	// 2. Replace a non-trivial instruction's result with a constant.
	for i := len(p.Insts) - 1; i >= 0; i-- {
		in := p.Insts[i]
		w := p.widthOf(i)
		if w == 0 || w == 1 || in.Op == "param" || in.Op == "const" {
			continue
		}
		for _, v := range []uint64{0, 1} {
			cand := clone(p)
			cand.Insts[i] = PInst{Op: "const", Bits: w, Imm: bv.New(w, v)}
			if try(cand) {
				return cand
			}
		}
	}
	// 3. Simplify constants toward small values.
	for i, in := range p.Insts {
		if in.Op != "const" {
			continue
		}
		for _, v := range []bv.BV{bv.Zero(in.Bits), bv.New(in.Bits, 1)} {
			if in.Imm == v {
				continue
			}
			cand := clone(p)
			cand.Insts[i].Imm = v
			if try(cand) {
				return cand
			}
		}
	}
	return nil
}

func used(p *Prog, id int) bool {
	for _, in := range p.Insts {
		for _, a := range in.Args {
			if a == id {
				return true
			}
		}
	}
	return false
}

func clone(p *Prog) *Prog {
	np := &Prog{Insts: make([]PInst, len(p.Insts))}
	copy(np.Insts, p.Insts)
	for i := range np.Insts {
		np.Insts[i].Args = append([]int(nil), np.Insts[i].Args...)
	}
	return np
}

// remove deletes instruction id, substituting repl for its uses (repl < 0
// when the instruction has no uses), and renumbers all references.
func remove(p *Prog, id, repl int) *Prog {
	np := &Prog{}
	for i, in := range p.Insts {
		if i == id {
			continue
		}
		ni := PInst{Op: in.Op, Bits: in.Bits, Pred: in.Pred, Imm: in.Imm, MemBits: in.MemBits}
		for _, a := range in.Args {
			if a == id {
				a = repl
			}
			if a > id {
				a--
			}
			ni.Args = append(ni.Args, a)
		}
		np.Insts = append(np.Insts, ni)
	}
	return np
}
