package fuzz

import (
	"fmt"
	"strings"
	"time"

	"iselgen/internal/bv"
	"iselgen/internal/core"
	"iselgen/internal/gmir"
	"iselgen/internal/harness"
	"iselgen/internal/isel"
	"iselgen/internal/sim"
)

// SubSeed derives the deterministic per-iteration seed: a splitmix64
// finalizer over (seed, iter), so every iteration replays independently.
func SubSeed(seed, iter uint64) uint64 {
	x := seed + 0x9e3779b97f4a7c15*(iter+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// vectorSalt keeps input vectors independent of how much entropy the
// program generator consumed, so shrinking and replay see the same
// inputs the original failure did.
const vectorSalt = 0x7ec5

// VectorsFor derives the canonical input vectors for a program under a
// driver seed. Used by the run loop, the shrinker, and corpus replay.
func VectorsFor(seed uint64, p *Prog, n int) [][]bv.BV {
	return Vectors(bv.NewRNG(SubSeed(seed, vectorSalt)), p, n)
}

// Options configures a fuzzing run.
type Options struct {
	Seed   uint64
	N      int           // iterations per oracle
	Target string        // "aarch64" or "riscv" (select-diff / selector-diff)
	Oracle string        // "select-diff", "selector-diff", "spec", "smt", or "all"
	Budget time.Duration // wall-clock cap (0 = unlimited)
	// CorpusDir receives shrunk reproducers for every failure.
	CorpusDir string
	// Synth selects against a freshly synthesized library (the pipeline
	// the paper ships); off, the handwritten library is the primary.
	Synth bool
	// SpecSynth differential-checks accepted spec mutants (slower).
	SpecSynth bool
	// NumVectors is the input vectors per program (default 5).
	NumVectors int
	// MaxShrinkChecks bounds the shrinker (default 2000).
	MaxShrinkChecks int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Summary reports a run.
type Summary struct {
	Ran       int // iterations that completed an oracle check
	Skipped   int // legitimate skips (fallback on every backend, rejected mutants)
	Failed    int // genuine failures
	Repros    []string
	Elapsed   time.Duration
	PerOracle map[string]int
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// NewPipeline constructs the select-diff pipeline for a named target.
// With synth, the primary is a freshly synthesized backend with the
// handwritten library as fallback; otherwise the handwritten backend is
// primary with no fallback.
func NewPipeline(target string, synth bool) (*Pipeline, error) {
	var set *harness.Setup
	var err error
	switch target {
	case "aarch64":
		set, err = harness.NewAArch64()
	case "riscv":
		set, err = harness.NewRISCV()
	default:
		return nil, fmt.Errorf("fuzz: unknown target %q", target)
	}
	if err != nil {
		return nil, err
	}
	if synth {
		set.Synthesize(core.DefaultConfig(), 0)
	}
	return SetupPipeline(set, synth), nil
}

// SetupPipeline wraps an already-built harness.Setup as a select-diff
// pipeline (with the synthesized backend as primary when synth is set —
// the caller must have run Synthesize).
func SetupPipeline(set *harness.Setup, synth bool) *Pipeline {
	pl := &Pipeline{Name: set.Name, Primary: set.Handwritten, ISA: set.ISA}
	if set.Name == "riscv" {
		// RV64 backends are 64-bit only (32-bit ops are the W forms the
		// synthesizer discovers, not a legal scalar type of their own).
		pl.MinWidth = 64
	}
	if synth {
		pl.Primary = set.Synth
		pl.Fallback = set.Handwritten
	}
	return pl
}

// Run executes the configured oracles for N iterations each.
func Run(opts Options) (*Summary, error) {
	start := time.Now()
	sum := &Summary{PerOracle: map[string]int{}}
	deadline := time.Time{}
	if opts.Budget > 0 {
		deadline = start.Add(opts.Budget)
	}
	over := func() bool {
		return !deadline.IsZero() && time.Now().After(deadline)
	}
	oracles := []string{opts.Oracle}
	if opts.Oracle == "" || opts.Oracle == "all" {
		oracles = []string{"select-diff", "selector-diff", "encode", "spec", "smt"}
	}
	for _, oracle := range oracles {
		var err error
		switch oracle {
		case "select-diff":
			err = runSelectDiff(&opts, sum, over)
		case "selector-diff":
			err = runSelectorDiff(&opts, sum, over)
		case "encode":
			err = runEncode(&opts, sum, over)
		case "spec":
			err = runSpec(&opts, sum, over)
		case "smt":
			err = runSMT(&opts, sum, over)
		default:
			err = fmt.Errorf("fuzz: unknown oracle %q", oracle)
		}
		if err != nil {
			return sum, err
		}
	}
	sum.Elapsed = time.Since(start)
	return sum, nil
}

func (o *Options) numVectors() int {
	if o.NumVectors > 0 {
		return o.NumVectors
	}
	return 5
}

func (o *Options) maxShrinkChecks() int {
	if o.MaxShrinkChecks > 0 {
		return o.MaxShrinkChecks
	}
	return 2000
}

func (o *Options) save(sum *Summary, r *Repro) {
	if o.CorpusDir == "" {
		return
	}
	path, err := SaveRepro(o.CorpusDir, r)
	if err != nil {
		o.logf("fuzz: cannot save reproducer: %v", err)
		return
	}
	sum.Repros = append(sum.Repros, path)
	o.logf("  reproducer written to %s", path)
}

func runSelectDiff(opts *Options, sum *Summary, over func() bool) error {
	pl, err := NewPipeline(opts.Target, opts.Synth)
	if err != nil {
		return err
	}
	cfg := DefaultGenConfig()
	nVec := opts.numVectors()
	for iter := 0; iter < opts.N && !over(); iter++ {
		rng := bv.NewRNG(SubSeed(opts.Seed, uint64(iter)))
		p := Gen(rng, cfg)
		cerr := CheckProg(pl, p, VectorsFor(opts.Seed, p, nVec))
		sum.PerOracle["select-diff"]++
		switch {
		case cerr == nil:
			sum.Ran++
		case !IsFailure(cerr):
			sum.Ran++
			sum.Skipped++
		default:
			sum.Failed++
			opts.logf("select-diff failure (iter %d): %v", iter, cerr)
			failing := func(q *Prog) bool {
				return IsFailure(CheckProg(pl, q, VectorsFor(opts.Seed, q, nVec)))
			}
			shrunk := Shrink(p, failing, opts.maxShrinkChecks())
			opts.logf("  shrunk %d -> %d operations", p.NumOps(), shrunk.NumOps())
			opts.save(sum, &Repro{
				Oracle: "select-diff",
				Target: pl.Name,
				Seed:   opts.Seed,
				Note:   firstLine(cerr.Error()),
				Prog:   shrunk.Format(),
			})
		}
	}
	return nil
}

// runSelectorDiff drives the cross-selector oracle: same generator and
// shrinking loop as select-diff, but the check is greedy-vs-optimal
// over one backend (semantic agreement plus the static ≤ guarantee).
func runSelectorDiff(opts *Options, sum *Summary, over func() bool) error {
	pl, err := NewPipeline(opts.Target, opts.Synth)
	if err != nil {
		return err
	}
	cfg := DefaultGenConfig()
	nVec := opts.numVectors()
	for iter := 0; iter < opts.N && !over(); iter++ {
		rng := bv.NewRNG(SubSeed(opts.Seed, uint64(iter)))
		p := Gen(rng, cfg)
		cerr := CheckSelectorDiff(pl, p, VectorsFor(opts.Seed, p, nVec))
		sum.PerOracle["selector-diff"]++
		switch {
		case cerr == nil:
			sum.Ran++
		case !IsFailure(cerr):
			sum.Ran++
			sum.Skipped++
		default:
			sum.Failed++
			opts.logf("selector-diff failure (iter %d): %v", iter, cerr)
			failing := func(q *Prog) bool {
				return IsFailure(CheckSelectorDiff(pl, q, VectorsFor(opts.Seed, q, nVec)))
			}
			shrunk := Shrink(p, failing, opts.maxShrinkChecks())
			opts.logf("  shrunk %d -> %d operations", p.NumOps(), shrunk.NumOps())
			opts.save(sum, &Repro{
				Oracle: "selector-diff",
				Target: pl.Name,
				Seed:   opts.Seed,
				Note:   firstLine(cerr.Error()),
				Prog:   shrunk.Format(),
			})
		}
	}
	return nil
}

func runSpec(opts *Options, sum *Summary, over func() bool) error {
	sopts := SpecOptions{Synth: opts.SpecSynth}
	for iter := 0; iter < opts.N && !over(); iter++ {
		src, cerr := CheckSpec(opts.Seed, iter, sopts)
		sum.PerOracle["spec"]++
		switch {
		case cerr == nil:
			sum.Ran++
		case !IsFailure(cerr):
			sum.Ran++
			sum.Skipped++
		default:
			sum.Failed++
			opts.logf("spec failure (iter %d): %v", iter, cerr)
			opts.save(sum, &Repro{
				Oracle: "spec",
				Seed:   opts.Seed,
				Iter:   iter,
				Note:   firstLine(cerr.Error()),
				Spec:   src,
			})
		}
	}
	return nil
}

func runSMT(opts *Options, sum *Summary, over func() bool) error {
	for iter := 0; iter < opts.N && !over(); iter++ {
		cerr := CheckSMT(opts.Seed, iter, 0)
		sum.PerOracle["smt"]++
		if cerr == nil {
			sum.Ran++
			continue
		}
		sum.Failed++
		opts.logf("smt failure (iter %d): %v", iter, cerr)
		opts.save(sum, &Repro{
			Oracle: "smt",
			Seed:   opts.Seed,
			Iter:   iter,
			Note:   firstLine(cerr.Error()),
		})
	}
	return nil
}

func firstLine(s string) string {
	return strings.SplitN(s, "\n", 2)[0]
}

// ReplayRepro re-runs one corpus entry against its oracle. The pipelines
// map provides a select-diff pipeline per target name; missing targets
// are an error. ErrSkip outcomes count as passing (a skip is a healthy
// verdict, and a rejected spec mutant is the contract working).
func ReplayRepro(r *Repro, pipelines map[string]*Pipeline) error {
	switch r.Oracle {
	case "select-diff", "selector-diff", "encode":
		p, err := ParseProg(r.Prog)
		if err != nil {
			return err
		}
		pl := pipelines[r.Target]
		if pl == nil {
			return fmt.Errorf("fuzz: no pipeline for target %q", r.Target)
		}
		check := CheckProg
		switch r.Oracle {
		case "selector-diff":
			check = CheckSelectorDiff
		case "encode":
			check = CheckEncode
		}
		if cerr := check(pl, p, VectorsFor(r.Seed, p, 5)); IsFailure(cerr) {
			return cerr
		}
		return nil
	case "spec":
		if cerr := checkSpecSrc(r.Spec, r.Seed, SpecOptions{Synth: true}); IsFailure(cerr) {
			return cerr
		}
		return nil
	case "smt":
		return CheckSMT(r.Seed, r.Iter, 0)
	default:
		return fmt.Errorf("fuzz: unknown oracle %q", r.Oracle)
	}
}

// Throughput measures end-to-end programs/second through generation,
// selection, and simulation (no interpreter reference) — the figure
// iselbench reports as fuzz_throughput.
func Throughput(pl *Pipeline, seed uint64, n int) float64 {
	cfg := DefaultGenConfig()
	start := time.Now()
	done := 0
	for iter := 0; iter < n; iter++ {
		rng := bv.NewRNG(SubSeed(seed, uint64(iter)))
		p := Gen(rng, cfg)
		f, err := p.Build()
		if err != nil {
			continue
		}
		minW := pl.MinWidth
		if minW == 0 {
			minW = 32
		}
		if gmir.Legalize(f, minW) != nil {
			continue
		}
		isel.Prepare(f, pl.Name)
		mf, rep := pl.Primary.Select(f)
		if rep.Fallback {
			if pl.Fallback == nil {
				continue
			}
			f2, _ := p.Build()
			if gmir.Legalize(f2, minW) != nil {
				continue
			}
			isel.Prepare(f2, pl.Name)
			mf, rep = pl.Fallback.Select(f2)
			if rep.Fallback {
				continue
			}
		}
		args := VectorsFor(seed, p, 1)[0]
		m := &sim.Machine{Mem: gmir.NewMemory()}
		if _, err := m.Run(mf, args); err != nil {
			continue
		}
		done++
	}
	el := time.Since(start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(done) / el
}
