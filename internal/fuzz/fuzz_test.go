package fuzz

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
	"iselgen/internal/harness"
	"iselgen/internal/rules"
)

func bvRNG(seed, iter uint64) *bv.RNG { return bv.NewRNG(SubSeed(seed, iter)) }

// Handwritten pipelines are shared across tests (and the native fuzz
// targets): building a target's ISA model is cheap, but doing it per
// subtest adds up.
var (
	pipeOnce sync.Once
	pipes    map[string]*Pipeline
	pipeErr  error
)

func testPipelines(t testing.TB) map[string]*Pipeline {
	pipeOnce.Do(func() {
		pipes = map[string]*Pipeline{}
		for _, tgt := range []string{"aarch64", "riscv"} {
			pl, err := NewPipeline(tgt, false)
			if err != nil {
				pipeErr = err
				return
			}
			pipes[tgt] = pl
		}
	})
	if pipeErr != nil {
		t.Fatalf("building pipelines: %v", pipeErr)
	}
	return pipes
}

// TestCorpusReplay re-runs every checked-in reproducer: each entry is a
// bug the fuzzer once found (or a seed pinning a lowering path), so a
// failure here is a regression.
func TestCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus entries found")
	}
	pls := testPipelines(t)
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			r, err := ParseRepro(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := ReplayRepro(r, pls); err != nil {
				t.Errorf("replay failed: %v", err)
			}
		})
	}
}

// TestInjectedSelectorBug is the harness's own acceptance test: commute
// the operands of the handwritten SUBXrr rule and check that the fuzzer
// notices within a few hundred programs and shrinks the failure to a
// minimal reproducer that survives a corpus round-trip.
func TestInjectedSelectorBug(t *testing.T) {
	set, err := harness.NewAArch64()
	if err != nil {
		t.Fatal(err)
	}
	injected := false
	for _, r := range set.Handwritten.Lib.Rules {
		if len(r.Seq.Insts) == 1 && r.Seq.Insts[0].Name == "SUBXrr" &&
			len(r.Operands) == 2 &&
			r.Operands[0].Kind == rules.SrcLeaf && r.Operands[1].Kind == rules.SrcLeaf {
			r.Operands[0].Leaf, r.Operands[1].Leaf = r.Operands[1].Leaf, r.Operands[0].Leaf
			injected = true
			break
		}
	}
	if !injected {
		t.Fatal("no SUBXrr reg-reg rule found to corrupt")
	}
	pl := &Pipeline{Name: set.Name, Primary: set.Handwritten}

	const seed, maxIter = 1, 2000
	cfg := DefaultGenConfig()
	for iter := 0; iter < maxIter; iter++ {
		p := Gen(bvRNG(seed, uint64(iter)), cfg)
		cerr := CheckProg(pl, p, VectorsFor(seed, p, 5))
		if !IsFailure(cerr) {
			continue
		}
		failing := func(q *Prog) bool {
			return IsFailure(CheckProg(pl, q, VectorsFor(seed, q, 5)))
		}
		shrunk := Shrink(p, failing, 2000)
		if !failing(shrunk) {
			t.Fatalf("shrunk program no longer fails:\n%s", shrunk.Format())
		}
		if shrunk.NumOps() > 3 {
			t.Errorf("shrunk reproducer has %d ops, want <= 3:\n%s",
				shrunk.NumOps(), shrunk.Format())
		}
		// The reproducer must survive the corpus round-trip and still fail.
		dir := t.TempDir()
		path, err := SaveRepro(dir, &Repro{
			Oracle: "select-diff", Target: pl.Name, Seed: seed,
			Note: firstLine(cerr.Error()), Prog: shrunk.Format(),
		})
		if err != nil {
			t.Fatal(err)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		r, err := ParseRepro(string(src))
		if err != nil {
			t.Fatalf("round-trip parse: %v", err)
		}
		q, err := ParseProg(r.Prog)
		if err != nil {
			t.Fatalf("round-trip program parse: %v", err)
		}
		if !failing(q) {
			t.Error("round-tripped reproducer no longer fails")
		}
		return
	}
	t.Fatalf("commuted SUBXrr rule not caught in %d programs", maxIter)
}

// TestGenProgramsRoundTrip: generated programs validate, and the corpus
// text form round-trips exactly.
func TestGenProgramsRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig()
	for iter := uint64(0); iter < 300; iter++ {
		p := Gen(bvRNG(11, iter), cfg)
		if err := p.Validate(); err != nil {
			t.Fatalf("iter %d: generated invalid program: %v\n%s", iter, err, p.Format())
		}
		text := p.Format()
		q, err := ParseProg(text)
		if err != nil {
			t.Fatalf("iter %d: reparse: %v\n%s", iter, err, text)
		}
		if q.Format() != text {
			t.Fatalf("iter %d: round-trip mismatch:\n%s\nvs\n%s", iter, text, q.Format())
		}
		if _, err := p.Build(); err != nil {
			t.Fatalf("iter %d: build: %v\n%s", iter, err, text)
		}
	}
}

// TestGenLegalizes: every generated program survives legalization at
// both targets' minimum widths.
func TestGenLegalizes(t *testing.T) {
	cfg := DefaultGenConfig()
	for _, minW := range []int{32, 64} {
		for iter := uint64(0); iter < 200; iter++ {
			p := Gen(bvRNG(13, iter), cfg)
			f, err := p.Build()
			if err != nil {
				t.Fatal(err)
			}
			if err := gmir.Legalize(f, minW); err != nil {
				t.Fatalf("minW %d iter %d: %v\n%s", minW, iter, err, p.Format())
			}
		}
	}
}

// TestShrinkMinimizes: shrinking against a simple structural predicate
// converges to a near-minimal program and never emits an invalid one.
func TestShrinkMinimizes(t *testing.T) {
	hasMul := func(p *Prog) bool {
		if p.Validate() != nil {
			return false
		}
		for _, in := range p.Insts {
			if in.Op == "mul" {
				return true
			}
		}
		return false
	}
	cfg := DefaultGenConfig()
	found := 0
	for iter := uint64(0); iter < 500 && found < 20; iter++ {
		p := Gen(bvRNG(17, iter), cfg)
		if !hasMul(p) {
			continue
		}
		found++
		s := Shrink(p, hasMul, 3000)
		if !hasMul(s) {
			t.Fatalf("shrunk program lost the property:\n%s", s.Format())
		}
		if s.NumOps() > 2 {
			t.Errorf("iter %d: shrunk to %d ops, want <= 2 (a mul and at most one feeder):\n%s",
				iter, s.NumOps(), s.Format())
		}
	}
	if found == 0 {
		t.Fatal("generator never produced a mul")
	}
}

// TestVectorsStable: the input vectors depend only on (seed, program
// shape), not on generator entropy, so replay sees the original inputs.
func TestVectorsStable(t *testing.T) {
	p := Gen(bvRNG(23, 0), DefaultGenConfig())
	a := VectorsFor(99, p, 4)
	b := VectorsFor(99, p, 4)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("want 4 vectors, got %d and %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("vector %d arg %d differs across calls", i, j)
			}
		}
	}
}

// TestReproRoundTrip covers the corpus format for all three oracles.
func TestReproRoundTrip(t *testing.T) {
	for _, r := range []*Repro{
		{Oracle: "select-diff", Target: "aarch64", Seed: 3, Note: "ret mismatch",
			Prog: "v0 = param 64\nret v0\n"},
		{Oracle: "spec", Seed: 9, Note: "panic: boom",
			Spec: "inst z(a: reg64, b: reg64) { rd = a + b; }\n"},
		{Oracle: "smt", Seed: 4, Iter: 77, Note: "evals disagree"},
	} {
		got, err := ParseRepro(r.Format())
		if err != nil {
			t.Fatalf("%s: %v", r.Oracle, err)
		}
		if got.Format() != r.Format() {
			t.Errorf("%s: round-trip mismatch:\n%q\nvs\n%q", r.Oracle, r.Format(), got.Format())
		}
	}
}

// TestSmokeOracles runs a short burst of each oracle end-to-end; any
// failure means a real pipeline bug.
func TestSmokeOracles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, tgt := range []string{"aarch64", "riscv"} {
		sum, err := Run(Options{Seed: 5, N: 150, Target: tgt, Oracle: "select-diff"})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Failed != 0 {
			t.Errorf("%s: %d select-diff failures", tgt, sum.Failed)
		}
	}
	sum, err := Run(Options{Seed: 5, N: 150, Oracle: "smt"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Errorf("%d smt failures", sum.Failed)
	}
	sum, err = Run(Options{Seed: 5, N: 300, Oracle: "spec"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Errorf("%d spec failures", sum.Failed)
	}
}

// TestEncodeSmoke runs the machine-encoding round-trip oracle on a
// burst of generated programs per target: every program must select,
// assemble, decode back byte-identically, and execute on the decoding
// emulator exactly as on the MIR simulator. The renaming register
// allocator means none of them should be skipped for pressure.
func TestEncodeSmoke(t *testing.T) {
	for _, tgt := range []string{"aarch64", "riscv"} {
		sum, err := Run(Options{Seed: 5, N: 150, Target: tgt, Oracle: "encode"})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Failed != 0 {
			t.Errorf("%s: %d encode failures", tgt, sum.Failed)
		}
		if sum.PerOracle["encode"] != 150 {
			t.Errorf("%s: ran %d iterations", tgt, sum.PerOracle["encode"])
		}
		if sum.Skipped != 0 {
			t.Errorf("%s: %d programs skipped the machine round-trip", tgt, sum.Skipped)
		}
	}
}

// TestSpecMutantSynthesis exercises the expensive accepted-mutant path
// (synthesize + differential-check) on a handful of iterations.
func TestSpecMutantSynthesis(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for iter := 0; iter < 12; iter++ {
		src, err := CheckSpec(21, iter, SpecOptions{Synth: true, Progs: 2})
		if IsFailure(err) {
			t.Fatalf("iter %d: %v\nspec:\n%s", iter, err, src)
		}
	}
}

// The cross-selector oracle must find no divergence between the greedy
// and optimal engines on either target: semantic agreement plus the
// "optimal never statically worse" floor, over a generated burst.
func TestSelectorDiffSmoke(t *testing.T) {
	for _, tgt := range []string{"aarch64", "riscv"} {
		sum, err := Run(Options{Seed: 5, N: 150, Target: tgt, Oracle: "selector-diff"})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Failed != 0 {
			t.Errorf("%s: %d selector-diff failures", tgt, sum.Failed)
		}
		if sum.PerOracle["selector-diff"] != 150 {
			t.Errorf("%s: ran %d iterations", tgt, sum.PerOracle["selector-diff"])
		}
	}
}
