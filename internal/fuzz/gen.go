package fuzz

import (
	"iselgen/internal/bv"
)

// GenConfig controls the shape of generated programs.
type GenConfig struct {
	// MinOps/MaxOps bound the number of operation instructions.
	MinOps, MaxOps int
	// Widths are the scalar widths parameters and operations draw from.
	Widths []int
	// Ops restricts the operation vocabulary (names from the corpus
	// format). Empty means the full selectable integer set.
	Ops []string
	// Consts allows G_CONSTANT materialization.
	Consts bool
	// Mem allows loads and stores (requires Consts for address masking).
	Mem bool
}

// DefaultGenConfig is the full-pipeline configuration: every selectable
// operation, all legal scalar widths, memory traffic enabled.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MinOps: 1, MaxOps: 14,
		Widths: []int{8, 16, 32, 64},
		Consts: true,
		Mem:    true,
	}
}

// defaultOps is the generator's full vocabulary. Narrow-width bit
// unaries (ctlz/cttz/bswap) are excluded from 8/16-bit draws at
// generation time since the legalizer deliberately refuses to widen them.
var defaultOps = []string{
	"add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
	"and", "or", "xor", "shl", "lshr", "ashr",
	"smin", "smax", "umin", "umax",
	"ctpop", "ctlz", "cttz", "bswap", "abs",
	"icmp", "select", "zext", "sext", "trunc",
	"load", "store",
}

// Gen produces a random well-typed straight-line program. The same RNG
// state always yields the same program.
func Gen(rng *bv.RNG, cfg GenConfig) *Prog {
	if len(cfg.Widths) == 0 {
		cfg.Widths = []int{8, 16, 32, 64}
	}
	ops := cfg.Ops
	if len(ops) == 0 {
		ops = defaultOps
	}
	if cfg.MaxOps < 1 {
		cfg.MaxOps = 12
	}
	if cfg.MinOps < 1 {
		cfg.MinOps = 1
	}
	g := &genState{rng: rng, cfg: cfg, p: &Prog{}}

	nParams := 2 + rng.Intn(3)
	has64 := false
	for i := 0; i < nParams; i++ {
		w := cfg.Widths[rng.Intn(len(cfg.Widths))]
		if i == 0 && !contains(cfg.Widths, 64) {
			// No 64-bit width configured: still legal, ret will extend.
		} else if i == nParams-1 && !has64 && contains(cfg.Widths, 64) {
			w = 64 // guarantee a 64-bit value exists for addresses/ret
		}
		if w == 64 {
			has64 = true
		}
		g.emit(PInst{Op: "param", Bits: w})
	}

	n := cfg.MinOps + rng.Intn(cfg.MaxOps-cfg.MinOps+1)
	for i := 0; i < n; i++ {
		g.genOp(ops[rng.Intn(len(ops))])
	}
	g.ret()
	return g.p
}

type genState struct {
	rng *bv.RNG
	cfg GenConfig
	p   *Prog
}

func (g *genState) emit(in PInst) int {
	g.p.Insts = append(g.p.Insts, in)
	return len(g.p.Insts) - 1
}

// pick returns a random existing value of width w, or -1.
func (g *genState) pick(w int) int {
	var cands []int
	for i := range g.p.Insts {
		if g.p.widthOf(i) == w {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[g.rng.Intn(len(cands))]
}

// operand returns a value of width w, materializing a constant when none
// exists (or occasionally anyway, to exercise immediate rules).
func (g *genState) operand(w int) int {
	v := g.pick(w)
	if v < 0 || (g.cfg.Consts && g.rng.Intn(5) == 0) {
		if !g.cfg.Consts && v >= 0 {
			return v
		}
		if !g.cfg.Consts {
			return -1
		}
		return g.emit(PInst{Op: "const", Bits: w, Imm: g.rng.BV(w)})
	}
	return v
}

// width draws a random configured width.
func (g *genState) width() int {
	return g.cfg.Widths[g.rng.Intn(len(g.cfg.Widths))]
}

// address builds a 64-bit address masked into the low 256 bytes, so that
// loads observe stored data instead of wandering an empty sparse memory.
func (g *genState) address() int {
	base := g.operand(64)
	if base < 0 {
		return -1
	}
	mask := g.emit(PInst{Op: "const", Bits: 64, Imm: bv.New(64, 0xf8)})
	return g.emit(PInst{Op: "and", Bits: 64, Args: []int{base, mask}})
}

func (g *genState) genOp(op string) {
	w := g.width()
	switch op {
	case "icmp":
		a, b := g.operand(w), g.operand(w)
		if a < 0 || b < 0 {
			return
		}
		preds := []string{"eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge"}
		g.emit(PInst{Op: "icmp", Pred: preds[g.rng.Intn(len(preds))], Bits: w, Args: []int{a, b}})
	case "select":
		c := g.pick(1)
		if c < 0 {
			a, b := g.operand(w), g.operand(w)
			if a < 0 || b < 0 {
				return
			}
			c = g.emit(PInst{Op: "icmp", Pred: "ult", Bits: w, Args: []int{a, b}})
		}
		x, y := g.operand(w), g.operand(w)
		if x < 0 || y < 0 {
			return
		}
		g.emit(PInst{Op: "select", Bits: w, Args: []int{c, x, y}})
	case "zext", "sext":
		// Extend a narrower value (possibly an s1 comparison, zext only).
		var from int
		if op == "zext" && g.rng.Intn(3) == 0 {
			from = g.pick(1)
		} else {
			from = -1
		}
		if from < 0 {
			fw := g.width()
			if fw >= w {
				fw, w = w, fw
			}
			if fw == w {
				return
			}
			from = g.operand(fw)
		}
		if from < 0 {
			return
		}
		g.emit(PInst{Op: op, Bits: w, Args: []int{from}})
	case "trunc":
		fw := g.width()
		if fw <= w {
			fw, w = w, fw
		}
		if fw == w || w == 1 {
			return
		}
		from := g.operand(fw)
		if from < 0 {
			return
		}
		g.emit(PInst{Op: "trunc", Bits: w, Args: []int{from}})
	case "load":
		if !g.cfg.Mem || !g.cfg.Consts {
			return
		}
		addr := g.address()
		if addr < 0 {
			return
		}
		if w == 1 {
			w = 64
		}
		mems := []int{8, 16, 32, 64}
		var mem int
		for {
			mem = mems[g.rng.Intn(len(mems))]
			if mem <= w {
				break
			}
		}
		op := "load"
		if mem < w && g.rng.Intn(2) == 0 {
			op = "sload"
		}
		g.emit(PInst{Op: op, Bits: w, MemBits: mem, Args: []int{addr}})
	case "store":
		if !g.cfg.Mem || !g.cfg.Consts {
			return
		}
		v := g.operand(w)
		addr := g.address()
		if v < 0 || addr < 0 {
			return
		}
		mems := []int{8, 16, 32, 64}
		var mem int
		for {
			mem = mems[g.rng.Intn(len(mems))]
			if mem <= w {
				break
			}
		}
		g.emit(PInst{Op: "store", MemBits: mem, Args: []int{v, addr}})
	case "ctlz", "cttz", "bswap":
		// The legalizer refuses to widen these; keep them at legal widths.
		if w < 32 {
			w = 32 + 32*g.rng.Intn(2)
		}
		x := g.operand(w)
		if x < 0 {
			return
		}
		g.emit(PInst{Op: op, Bits: w, Args: []int{x}})
	case "ctpop", "abs":
		x := g.operand(w)
		if x < 0 {
			return
		}
		g.emit(PInst{Op: op, Bits: w, Args: []int{x}})
	default: // binary
		a, b := g.operand(w), g.operand(w)
		if a < 0 || b < 0 {
			return
		}
		g.emit(PInst{Op: op, Bits: w, Args: []int{a, b}})
	}
}

// ret closes the program, extending the most recently defined value to
// 64 bits if needed.
func (g *genState) ret() {
	// Latest value-producing instruction.
	v := -1
	for i := len(g.p.Insts) - 1; i >= 0; i-- {
		if g.p.widthOf(i) > 0 {
			v = i
			break
		}
	}
	w := g.p.widthOf(v)
	if w < 64 {
		v = g.emit(PInst{Op: "zext", Bits: 64, Args: []int{v}})
	}
	g.emit(PInst{Op: "ret", Args: []int{v}})
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
