package spec

// Machine-encoding clauses: the spec DSL extension that makes one
// specification yield the assembler, disassembler, and machine-code
// emulator alongside the compiler back-end (the LinxISA flow). Each
// instruction may declare
//
//	inst ADDI(rs1: reg64, imm: imm12) { rd = rs1 + sext(imm, 64); }
//	  enc(32) {
//	    [6:0]   = 0x13;   // fixed opcode bits
//	    [11:7]  = rd;     // destination register number
//	    [14:12] = 0;      // funct3
//	    [19:15] = rs1;    // source register number
//	    [31:20] = imm;    // immediate value
//	  }
//
// Field destinations are bit ranges of the instruction word (bit 0 is
// the least-significant bit of the first byte; words are little-endian
// on the wire). A field value is either a constant (fixed bits), a
// register operand or `rd`/`rd2` (the register *number*, so the field
// may be narrower than the register), or an immediate operand. Split
// immediate fields — RISC-V's scrambled store and branch offsets — use
// source slices: `[31:25] = imm[11:5]; [11:7] = imm[4:0];`. Immediate
// coverage must be exact: every bit of the operand appears in exactly
// one field, which makes encode/decode a bijection on operand values.
//
// Top-level `reserved(32) { [6:0] = 0x73; }` declarations mark opcode
// space that must stay undecodable; the decoder reports such words as
// reserved rather than unknown, and spec checking rejects instruction
// encodings that stray into them.

import (
	"fmt"
	"sort"

	"iselgen/internal/term"
)

// EncField is one field of an encoding clause.
type EncField struct {
	Hi, Lo int // destination bit range in the instruction word, inclusive
	// Fixed fields carry constant bits.
	Fixed bool
	Val   uint64
	// Operand fields name an operand, "rd", or "rd2"; for immediates an
	// optional source slice [SrcHi:SrcLo] of the operand value (both -1
	// when the whole operand is meant).
	Name         string
	SrcHi, SrcLo int
	Line         int
}

// SrcWidth returns the number of operand bits this field carries.
func (f *EncField) SrcWidth() int { return f.Hi - f.Lo + 1 }

// Encoding is one instruction's (or one reserved pattern's) encoding.
type Encoding struct {
	Width  int // instruction word width in bits (multiple of 8)
	Fields []EncField
	Line   int
}

// SizeBytes returns the encoded size in bytes.
func (e *Encoding) SizeBytes() int { return e.Width / 8 }

// FixedMaskVal renders the fixed bits as mask/value words (two uint64s
// cover the 128-bit maximum width; word 0 holds bits 0..63).
func (e *Encoding) FixedMaskVal() (mask, val [2]uint64) {
	for _, f := range e.Fields {
		if !f.Fixed {
			continue
		}
		for b := f.Lo; b <= f.Hi; b++ {
			w, s := b/64, uint(b%64)
			mask[w] |= 1 << s
			if f.Val>>(uint(b-f.Lo))&1 == 1 {
				val[w] |= 1 << s
			}
		}
	}
	return mask, val
}

// validateEncoding performs the structural checks that need no
// symbolic semantics: range bounds, overlap, fixed-value fit, operand
// existence, slice discipline, and (for instruction encodings) exact
// immediate coverage plus full word coverage. Reserved patterns pass
// inst == nil and may leave bits unassigned (they are match patterns).
func validateEncoding(inst *InstDef, e *Encoding) error {
	ctx := "reserved"
	if inst != nil {
		ctx = inst.Name
	}
	errf := func(line int, format string, args ...any) error {
		return fmt.Errorf("spec:%d: %s: %s", line, ctx, fmt.Sprintf(format, args...))
	}
	if e.Width < 8 || e.Width > 128 || e.Width%8 != 0 {
		return errf(e.Line, "encoding width %d out of range (8..128, multiple of 8)", e.Width)
	}
	if len(e.Fields) == 0 {
		return errf(e.Line, "empty encoding")
	}
	used := make([]int, e.Width) // 1-based field index occupying each bit
	// Per-operand source-bit coverage.
	type cov struct {
		op   *Operand
		bits []int
	}
	covs := map[string]*cov{}
	findOp := func(name string) *Operand {
		if inst == nil {
			return nil
		}
		for i := range inst.Operands {
			if inst.Operands[i].Name == name {
				return &inst.Operands[i]
			}
		}
		return nil
	}
	for fi := range e.Fields {
		f := &e.Fields[fi]
		if f.Lo < 0 || f.Hi < f.Lo || f.Hi >= e.Width {
			return errf(f.Line, "field range [%d:%d] outside %d-bit word", f.Hi, f.Lo, e.Width)
		}
		if f.SrcWidth() > 64 {
			return errf(f.Line, "field [%d:%d] wider than 64 bits; split it", f.Hi, f.Lo)
		}
		for b := f.Lo; b <= f.Hi; b++ {
			if used[b] != 0 {
				return errf(f.Line, "bit %d assigned twice (fields %d and %d)", b, used[b], fi+1)
			}
			used[b] = fi + 1
		}
		if f.Fixed {
			if w := f.SrcWidth(); w < 64 && f.Val >= 1<<uint(w) {
				return errf(f.Line, "fixed value %#x does not fit %d bits", f.Val, w)
			}
			continue
		}
		if inst == nil {
			return errf(f.Line, "reserved patterns may only fix bits")
		}
		switch f.Name {
		case "rd", "rd2":
			if f.SrcHi >= 0 {
				return errf(f.Line, "%s takes no source slice", f.Name)
			}
			if f.SrcWidth() > 8 {
				return errf(f.Line, "register-number field [%d:%d] wider than 8 bits", f.Hi, f.Lo)
			}
			if c, ok := covs[f.Name]; ok && c != nil {
				return errf(f.Line, "duplicate %s field", f.Name)
			}
			covs[f.Name] = &cov{}
			continue
		}
		op := findOp(f.Name)
		if op == nil {
			return errf(f.Line, "unknown field %q (operands, rd, rd2, or a constant)", f.Name)
		}
		if op.Kind == OpImm {
			srcHi, srcLo := f.SrcHi, f.SrcLo
			if srcHi < 0 {
				srcHi, srcLo = op.Width-1, 0
			}
			if srcLo < 0 || srcHi < srcLo || srcHi >= op.Width {
				return errf(f.Line, "slice %s[%d:%d] outside %d-bit operand", f.Name, srcHi, srcLo, op.Width)
			}
			if srcHi-srcLo != f.Hi-f.Lo {
				return errf(f.Line, "slice %s[%d:%d] is %d bits, field [%d:%d] is %d",
					f.Name, srcHi, srcLo, srcHi-srcLo+1, f.Hi, f.Lo, f.SrcWidth())
			}
			c := covs[f.Name]
			if c == nil {
				c = &cov{op: op, bits: make([]int, op.Width)}
				covs[f.Name] = c
			}
			for b := srcLo; b <= srcHi; b++ {
				if c.bits[b] != 0 {
					return errf(f.Line, "operand bit %s[%d] encoded twice", f.Name, b)
				}
				c.bits[b] = fi + 1
			}
		} else {
			// Register operands encode their register number.
			if f.SrcHi >= 0 {
				return errf(f.Line, "register operand %s takes no source slice", f.Name)
			}
			if f.SrcWidth() > 8 {
				return errf(f.Line, "register-number field [%d:%d] wider than 8 bits", f.Hi, f.Lo)
			}
			if _, ok := covs[f.Name]; ok {
				return errf(f.Line, "duplicate field for operand %s", f.Name)
			}
			covs[f.Name] = &cov{op: op}
		}
	}
	if inst == nil {
		return nil
	}
	// Full word coverage: machine words have no unspecified bits.
	for b, fi := range used {
		if fi == 0 {
			return errf(e.Line, "bit %d of the %d-bit word is unassigned (fix it or encode an operand)", b, e.Width)
		}
	}
	// Every operand encoded; immediates exactly once per bit.
	for i := range inst.Operands {
		op := &inst.Operands[i]
		c, ok := covs[op.Name]
		if !ok {
			return errf(e.Line, "operand %s is not encoded", op.Name)
		}
		if op.Kind == OpImm {
			for b := 0; b < op.Width; b++ {
				if c.bits[b] == 0 {
					return errf(e.Line, "operand bit %s[%d] is not encoded (immediate coverage must be exact)", op.Name, b)
				}
			}
		}
	}
	return nil
}

// hasEffect reports whether the semantics write the given register
// destination ("rd"/"rd2").
func hasEffect(sem *Sem, dest string) bool {
	for _, e := range sem.Effects {
		if e.Kind == EffReg && e.Dest == dest {
			return true
		}
	}
	return false
}

// checkEncodingSemantics cross-checks one encoding against the
// instruction's symbolized effects: an `rd` field must exist exactly
// when the semantics write rd (and likewise rd2).
func checkEncodingSemantics(inst *InstDef, sem *Sem) error {
	e := inst.Enc
	fieldFor := func(name string) bool {
		for _, f := range e.Fields {
			if !f.Fixed && f.Name == name {
				return true
			}
		}
		return false
	}
	for _, dest := range []string{"rd", "rd2"} {
		writes := hasEffect(sem, dest)
		has := fieldFor(dest)
		if writes && !has {
			return fmt.Errorf("spec:%d: %s: semantics write %s but the encoding has no %s field",
				e.Line, inst.Name, dest, dest)
		}
		if has && !writes {
			return fmt.Errorf("spec:%d: %s: encoding has an %s field but the semantics never write %s",
				e.Line, inst.Name, dest, dest)
		}
	}
	return nil
}

// conflict reports whether two fixed-bit patterns disagree somewhere in
// the first `bits` bits — the condition for no word matching both.
func conflict(maskA, valA, maskB, valB [2]uint64, bits int) bool {
	var region [2]uint64
	switch {
	case bits >= 128:
		region = [2]uint64{^uint64(0), ^uint64(0)}
	case bits > 64:
		region = [2]uint64{^uint64(0), 1<<uint(bits-64) - 1}
	default:
		region = [2]uint64{1<<uint(bits) - 1, 0}
	}
	for w := 0; w < 2; w++ {
		if maskA[w]&maskB[w]&region[w]&(valA[w]^valB[w]) != 0 {
			return true
		}
	}
	return false
}

// CheckEncodings validates every encoding clause in the file: per
// instruction structurally and against its semantics, then the
// file-wide opcode space — every pair of encoded instructions must
// disagree in at least one commonly fixed bit of their common prefix
// (so no byte sequence decodes two ways, across lengths too), all
// register-number fields must agree on width (one register file), and
// no instruction may stray into reserved opcode space. sems parallels
// f.Insts (as returned by SymbolizeFile).
func CheckEncodings(f *File, sems []*Sem) error {
	type encoded struct {
		inst      *InstDef
		mask, val [2]uint64
	}
	var encs []encoded
	regBits := 0
	for i, inst := range f.Insts {
		if inst.Enc == nil {
			continue
		}
		if err := validateEncoding(inst, inst.Enc); err != nil {
			return err
		}
		if sems != nil {
			if err := checkEncodingSemantics(inst, sems[i]); err != nil {
				return err
			}
		}
		for _, fld := range inst.Enc.Fields {
			if fld.Fixed {
				continue
			}
			isReg := fld.Name == "rd" || fld.Name == "rd2"
			for _, op := range inst.Operands {
				if op.Name == fld.Name && op.Kind != OpImm {
					isReg = true
				}
			}
			if !isReg {
				continue
			}
			if regBits == 0 {
				regBits = fld.SrcWidth()
			} else if fld.SrcWidth() != regBits {
				return fmt.Errorf("spec:%d: %s: register field [%d:%d] is %d bits but the file uses %d-bit register numbers",
					fld.Line, inst.Name, fld.Hi, fld.Lo, fld.SrcWidth(), regBits)
			}
		}
		mask, val := inst.Enc.FixedMaskVal()
		encs = append(encs, encoded{inst: inst, mask: mask, val: val})
	}
	for _, r := range f.Reserved {
		if err := validateEncoding(nil, r); err != nil {
			return err
		}
	}
	// Pairwise decode-ambiguity check over the common prefix.
	for i := 0; i < len(encs); i++ {
		for j := i + 1; j < len(encs); j++ {
			a, b := encs[i], encs[j]
			bits := a.inst.Enc.Width
			if b.inst.Enc.Width < bits {
				bits = b.inst.Enc.Width
			}
			if !conflict(a.mask, a.val, b.mask, b.val, bits) {
				return fmt.Errorf("spec:%d: ambiguous encodings: %s and %s share no conflicting fixed bit in their first %d bits",
					b.inst.Enc.Line, a.inst.Name, b.inst.Name, bits)
			}
		}
		for _, r := range f.Reserved {
			rm, rv := r.FixedMaskVal()
			bits := encs[i].inst.Enc.Width
			if r.Width < bits {
				bits = r.Width
			}
			if !conflict(encs[i].mask, encs[i].val, rm, rv, bits) {
				return fmt.Errorf("spec:%d: %s overlaps reserved encoding declared at line %d",
					encs[i].inst.Enc.Line, encs[i].inst.Name, r.Line)
			}
		}
	}
	return nil
}

// RegNumBits returns the register-number field width used by the file's
// encodings (0 when no encoding carries a register field). Call after
// CheckEncodings, which enforces uniformity.
func RegNumBits(f *File) int {
	for _, inst := range f.Insts {
		if inst.Enc == nil {
			continue
		}
		for _, fld := range inst.Enc.Fields {
			if fld.Fixed {
				continue
			}
			if fld.Name == "rd" || fld.Name == "rd2" {
				return fld.SrcWidth()
			}
			for _, op := range inst.Operands {
				if op.Name == fld.Name && op.Kind != OpImm {
					return fld.SrcWidth()
				}
			}
		}
	}
	return 0
}

// SignedImms infers display signedness for immediate operands from the
// semantics: an immediate consumed under sign-extension (directly or
// through the low-zero concat of scaled branch offsets) disassembles as
// a signed value. Purely presentational — round-tripping never depends
// on it.
func SignedImms(sem *Sem) map[string]bool {
	signed := map[string]bool{}
	immVar := map[string]string{} // term var name -> operand name
	for _, op := range sem.Operands {
		if op.Kind == OpImm {
			immVar[sem.Prefix+op.Name] = op.Name
		}
	}
	var walk func(t *term.Term, underSext bool)
	seen := map[*term.Term]bool{}
	walk = func(t *term.Term, underSext bool) {
		if t == nil {
			return
		}
		// Memoize only the non-signed traversal; the signed one is rare
		// and must be able to re-visit shared subterms.
		if !underSext {
			if seen[t] {
				return
			}
			seen[t] = true
		}
		if t.Op == term.Var && underSext {
			if op, ok := immVar[t.Name]; ok {
				signed[op] = true
			}
		}
		for _, a := range t.Args {
			walk(a, underSext || t.Op == term.SExt)
		}
	}
	for _, e := range sem.Effects {
		walk(e.T, false)
	}
	// Deterministic iteration for callers that render.
	keys := make([]string, 0, len(signed))
	for k := range signed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(map[string]bool, len(keys))
	for _, k := range keys {
		out[k] = true
	}
	return out
}
