package spec

import (
	"fmt"

	"iselgen/internal/term"
)

// eval evaluates an expression to a term. expect is a width hint used to
// size bare integer literals (0 when no context is available; literals
// then require an explicit :width annotation unless the sibling operand
// fixes the width).
func (ex *executor) eval(st *state, e Expr, expect int) (*term.Term, error) {
	switch e := e.(type) {
	case *Num:
		w := e.Width
		if w == 0 {
			w = expect
		}
		if w == 0 {
			return nil, ex.errf(e.Line, "cannot infer width of literal %d; annotate as %d:w", e.Val, e.Val)
		}
		return ex.b.Const(w, e.Val), nil

	case *Ident:
		if e.Name == "pc" {
			return ex.pcVar(), nil
		}
		if t, ok := st.vals[e.Name]; ok {
			return t, nil
		}
		return nil, ex.errf(e.Line, "unknown identifier %q", e.Name)

	case *FlagRef:
		return ex.flagVar(e.Flag), nil

	case *Unary:
		x, err := ex.eval(st, e.X, expect)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			return ex.b.Neg(x), nil
		case "~":
			return ex.b.Not(x), nil
		case "!":
			return ex.b.Not(ex.b.Bool(x)), nil
		}
		return nil, ex.errf(e.Line, "unknown unary %q", e.Op)

	case *Binary:
		return ex.evalBinary(st, e, expect)

	case *Call:
		return ex.evalCall(st, e, expect)
	}
	return nil, fmt.Errorf("spec: unknown expression %T", e)
}

// evalBinary evaluates both operands with mutual width inference: a bare
// literal on one side takes the width of the other side.
func (ex *executor) evalBinary(st *state, e *Binary, expect int) (*term.Term, error) {
	_, xLit := e.X.(*Num)
	_, yLit := e.Y.(*Num)
	var x, y *term.Term
	var err error
	switch {
	case xLit && !yLit:
		if y, err = ex.eval(st, e.Y, expect); err != nil {
			return nil, err
		}
		if x, err = ex.eval(st, e.X, y.W()); err != nil {
			return nil, err
		}
	default:
		if x, err = ex.eval(st, e.X, expect); err != nil {
			return nil, err
		}
		if y, err = ex.eval(st, e.Y, x.W()); err != nil {
			return nil, err
		}
	}
	if x.W() != y.W() {
		return nil, ex.errf(e.Line, "operator %q width mismatch: %d vs %d", e.Op, x.W(), y.W())
	}
	b := ex.b
	switch e.Op {
	case "+":
		return b.Add(x, y), nil
	case "-":
		return b.Sub(x, y), nil
	case "*":
		return b.Mul(x, y), nil
	case "/":
		return b.UDiv(x, y), nil
	case "%":
		return b.URem(x, y), nil
	case "&", "&&":
		return b.And(x, y), nil
	case "|", "||":
		return b.Or(x, y), nil
	case "^":
		return b.Xor(x, y), nil
	case "<<":
		return b.Shl(x, y), nil
	case ">>":
		return b.LShr(x, y), nil
	case "==":
		return b.Eq(x, y), nil
	case "!=":
		return b.Ne(x, y), nil
	}
	return nil, ex.errf(e.Line, "unknown operator %q", e.Op)
}

// widthArg extracts a literal width/bound argument.
func (ex *executor) widthArg(e Expr, what string) (int, error) {
	n, ok := e.(*Num)
	if !ok {
		return 0, fmt.Errorf("spec: %s: %s must be an integer literal", ex.inst.Name, what)
	}
	if n.Val > 128 {
		return 0, ex.errf(n.Line, "%s %d out of range (max 128)", what, n.Val)
	}
	return int(n.Val), nil
}

func (ex *executor) evalCall(st *state, e *Call, expect int) (*term.Term, error) {
	b := ex.b
	argc := func(n int) error {
		if len(e.Args) != n {
			return ex.errf(e.Line, "%s expects %d arguments, got %d", e.Fn, n, len(e.Args))
		}
		return nil
	}
	// Width-conversion builtins: fn(x, width).
	switch e.Fn {
	case "zext", "sext", "trunc", "load":
		if err := argc(2); err != nil {
			return nil, err
		}
		w, err := ex.widthArg(e.Args[1], e.Fn+" width")
		if err != nil {
			return nil, err
		}
		if w < 1 {
			return nil, ex.errf(e.Line, "%s width must be at least 1", e.Fn)
		}
		hint := 0
		if e.Fn == "load" {
			hint = 64
		}
		x, err := ex.eval(st, e.Args[0], hint)
		if err != nil {
			return nil, err
		}
		switch e.Fn {
		case "zext", "sext":
			// Diagnose a shrinking extension here: the builder would
			// panic, and a spec author deserves a positioned error.
			if w < x.W() {
				return nil, ex.errf(e.Line, "%s to width %d shrinks %d-bit value (use trunc)", e.Fn, w, x.W())
			}
			if e.Fn == "zext" {
				return b.ZExt(w, x), nil
			}
			return b.SExt(w, x), nil
		case "trunc":
			if w > x.W() {
				return nil, ex.errf(e.Line, "trunc to width %d widens %d-bit value (use zext or sext)", w, x.W())
			}
			return b.Trunc(w, x), nil
		default:
			if x.W() != 64 {
				return nil, ex.errf(e.Line, "load address must be 64 bits, got %d", x.W())
			}
			return b.Load(w, x), nil
		}
	case "extract":
		if err := argc(3); err != nil {
			return nil, err
		}
		hi, err := ex.widthArg(e.Args[1], "extract hi")
		if err != nil {
			return nil, err
		}
		lo, err := ex.widthArg(e.Args[2], "extract lo")
		if err != nil {
			return nil, err
		}
		x, err := ex.eval(st, e.Args[0], 0)
		if err != nil {
			return nil, err
		}
		if lo > hi || hi >= x.W() {
			return nil, ex.errf(e.Line, "extract bounds [%d:%d] invalid for %d-bit value", hi, lo, x.W())
		}
		return b.Extract(hi, lo, x), nil
	case "concat":
		if err := argc(2); err != nil {
			return nil, err
		}
		x, err := ex.eval(st, e.Args[0], 0)
		if err != nil {
			return nil, err
		}
		y, err := ex.eval(st, e.Args[1], 0)
		if err != nil {
			return nil, err
		}
		if x.W()+y.W() > 128 {
			return nil, ex.errf(e.Line, "concat result width %d exceeds 128", x.W()+y.W())
		}
		return b.Concat(x, y), nil
	case "select":
		if err := argc(3); err != nil {
			return nil, err
		}
		c, err := ex.eval(st, e.Args[0], 1)
		if err != nil {
			return nil, err
		}
		x, err := ex.eval(st, e.Args[1], expect)
		if err != nil {
			return nil, err
		}
		y, err := ex.eval(st, e.Args[2], x.W())
		if err != nil {
			return nil, err
		}
		return b.Ite(b.Bool(c), x, y), nil
	}

	// Unary builtins.
	if fn1, ok := map[string]func(*term.Term) *term.Term{
		"popcount": b.Popcount, "clz": b.Clz, "ctz": b.Ctz, "rev": b.Rev,
		"bool": b.Bool,
	}[e.Fn]; ok {
		if err := argc(1); err != nil {
			return nil, err
		}
		x, err := ex.eval(st, e.Args[0], expect)
		if err != nil {
			return nil, err
		}
		return fn1(x), nil
	}

	// Binary builtins with mutual inference.
	fn2, ok := map[string]func(x, y *term.Term) *term.Term{
		"ashr": b.AShr, "lshr": b.LShr, "shl": b.Shl,
		"rotl": b.RotL, "rotr": b.RotR,
		"udiv": b.UDiv, "sdiv": b.SDiv, "urem": b.URem, "srem": b.SRem,
		"eq": b.Eq, "ne": b.Ne,
		"ult": b.Ult, "ule": b.Ule, "ugt": b.Ugt, "uge": func(x, y *term.Term) *term.Term { return b.Ule(y, x) },
		"slt": b.Slt, "sle": b.Sle, "sgt": b.Sgt, "sge": func(x, y *term.Term) *term.Term { return b.Sle(y, x) },
	}[e.Fn]
	if !ok {
		return nil, ex.errf(e.Line, "unknown function %q", e.Fn)
	}
	if err := argc(2); err != nil {
		return nil, err
	}
	be := &Binary{Op: "", X: e.Args[0], Y: e.Args[1], Line: e.Line}
	// Reuse binary mutual-inference by evaluating operands the same way.
	_, xLit := be.X.(*Num)
	_, yLit := be.Y.(*Num)
	var x, y *term.Term
	var err error
	if xLit && !yLit {
		if y, err = ex.eval(st, be.Y, expect); err != nil {
			return nil, err
		}
		if x, err = ex.eval(st, be.X, y.W()); err != nil {
			return nil, err
		}
	} else {
		if x, err = ex.eval(st, be.X, expect); err != nil {
			return nil, err
		}
		if y, err = ex.eval(st, be.Y, x.W()); err != nil {
			return nil, err
		}
	}
	if x.W() != y.W() {
		return nil, ex.errf(e.Line, "%s width mismatch: %d vs %d", e.Fn, x.W(), y.W())
	}
	return fn2(x, y), nil
}
