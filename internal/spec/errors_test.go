package spec

import (
	"strings"
	"testing"
)

// TestCheckErrors drives the parser/checker error paths through Check —
// the same entry point cmd/iselgen -spec and the daemon's inline-target
// path use — and asserts both the diagnostic and its reported position,
// since a spec author fixing a 300-instruction file navigates by the
// "spec:<line>:" prefix.
func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		pos  string // expected "spec:<line>:" prefix
		want string // expected diagnostic substring
	}{
		{
			name: "operator width mismatch",
			src: `inst A(a: reg64, b: reg64) { rd = a + b; }
inst B(a: reg64, b: reg32) { rd = a & b; }`,
			pos:  "spec:2:",
			want: "width mismatch: 64 vs 32",
		},
		{
			name: "unannotated literal width",
			src: `inst A(a: reg64) { rd = a; }
inst B(a: imm12) {
  let k = 7;
  rd = zext(a, 64) + k;
}`,
			pos:  "spec:3:",
			want: "cannot infer width",
		},
		{
			name: "write-back width mismatch",
			src: `inst A(a: reg64, b: reg64) {
  a = trunc(b, 16);
}`,
			pos:  "spec:2:",
			want: "write-back width 16 to 64-bit operand a",
		},
		{
			name: "shrinking zext",
			src: `inst A(a: reg64) { rd = a; }
inst B(a: reg64) {
  rd = zext(a, 32);
}`,
			pos:  "spec:3:",
			want: "zext to width 32 shrinks 64-bit value",
		},
		{
			name: "widening trunc",
			src: `inst A(a: imm12) {
  rd = trunc(a, 64);
}`,
			pos:  "spec:2:",
			want: "trunc to width 64 widens 12-bit value",
		},
		{
			name: "undefined variable",
			src: `inst A(a: reg64) { rd = a; }
inst B(a: reg64) {
  let x = a + a;
  rd = x ^ nonesuch;
}`,
			pos:  "spec:4:",
			want: `unknown identifier "nonesuch"`,
		},
		{
			name: "duplicate instruction name",
			src: `inst A(a: reg64) { rd = a; }
inst B(a: reg64) { rd = ~a; }
inst A(a: reg64, b: reg64) { rd = a - b; }`,
			pos:  "spec:3:",
			want: `duplicate instruction "A"`,
		},
		{
			name: "missing width annotation suffix",
			src: `inst A(a: reg64) {
  rd = a + 3:;
}`,
			pos:  "spec:2:",
			want: `expected ";", found ":"`,
		},
		{
			name: "unexpected character",
			src: `inst A(a: reg64) { rd = a; }
inst B(a: reg64) { rd = a # a; }`,
			pos:  "spec:2:",
			want: "unexpected character",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Check(c.src)
			if err == nil {
				t.Fatalf("Check accepted invalid spec:\n%s", c.src)
			}
			msg := err.Error()
			if !strings.Contains(msg, c.pos) {
				t.Errorf("error %q does not report position %q", msg, c.pos)
			}
			if !strings.Contains(msg, c.want) {
				t.Errorf("error %q does not contain %q", msg, c.want)
			}
		})
	}
}

// TestCheckErrorNamesInstruction: semantic errors name the offending
// instruction, not just the line — the executor's errf contract.
func TestCheckErrorNamesInstruction(t *testing.T) {
	_, err := Check(`inst BROKEN(a: reg64, b: reg32) { rd = a | b; }`)
	if err == nil {
		t.Fatal("Check accepted width-mismatched spec")
	}
	if !strings.Contains(err.Error(), "BROKEN") {
		t.Errorf("error %q does not name the instruction", err)
	}
}
