// Package spec implements the reproduction's stand-in for SAIL + ISLA
// (paper §IV-A): a small imperative instruction-specification language
// and a symbolic executor that turns each instruction into a set of
// per-effect bitvector terms (register writes, flag writes, memory
// stores, PC updates).
//
// A specification looks like:
//
//	// add (shifted register), 64-bit
//	inst ADDXrs(rn: reg64, rm: reg64, shift: imm6) {
//	    rd = rn + (rm << zext(shift, 64));
//	}
//
//	inst LDRXpost(rn: reg64, simm: imm9) {
//	    rd = load(rn, 64);
//	    rn = rn + sext(simm, 64);   // write-back: second register effect
//	}
//
// Assignments to `rd` (and `rd2`) produce destination-register effects;
// assignments to a declared register operand produce write-back effects;
// `mem[addr, width] = v` produces a store effect; `pc = v` a PC effect;
// and `flags.N = v` (Z, C, V) flag effects. `if` statements are executed
// symbolically: both branches run on copies of the state and differing
// writes join into ite terms, exactly how ISLA's symbolic execution
// handles branching control flow in SAIL definitions.
package spec

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct // operators and punctuation, in text
)

type token struct {
	kind tokKind
	text string
	num  uint64
	// width of a number literal written as N:w (0 if unspecified).
	// hasWidth distinguishes an explicit N:0 — which only encoding bit
	// ranges like [6:0] may produce — from no suffix at all.
	numWidth int
	hasWidth bool
	line     int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex splits src into tokens. It returns an error with a line number on
// any malformed input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isAlpha(c):
			start := l.pos
			for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || isDigit(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tIdent, text: l.src[start:l.pos], line: l.line})
		case isDigit(c):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tEOF, line: l.line})
	return l.toks, nil
}

func (l *lexer) lexNumber() error {
	start := l.pos
	base := uint64(10)
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		base = 16
		l.pos += 2
	} else if strings.HasPrefix(l.src[l.pos:], "0b") {
		base = 2
		l.pos += 2
	}
	var v uint64
	digits := 0
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		var d uint64
		switch {
		case isDigit(c):
			d = uint64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		case c == '_':
			l.pos++
			continue
		default:
			goto done
		}
		if d >= base {
			return fmt.Errorf("spec:%d: digit %q out of range for base %d", l.line, c, base)
		}
		v = v*base + d
		digits++
		l.pos++
	}
done:
	if digits == 0 {
		return fmt.Errorf("spec:%d: malformed number %q", l.line, l.src[start:l.pos])
	}
	tok := token{kind: tNumber, num: v, line: l.line, text: l.src[start:l.pos]}
	// Optional :width suffix. A ':' not followed by a digit is left for
	// the punctuation lexer. An explicit 0 suffix is tolerated here
	// (hasWidth distinguishes it) because encoding bit ranges like
	// [6:0] lex the hi:lo pair as one suffixed number; the expression
	// parser still rejects width-0 literals.
	if l.pos+1 < len(l.src) && l.src[l.pos] == ':' && isDigit(l.src[l.pos+1]) {
		l.pos++
		w, digits := 0, 0
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			if w <= 128 { // saturate instead of overflowing on absurd suffixes
				w = w*10 + int(l.src[l.pos]-'0')
			}
			digits++
			l.pos++
		}
		if digits == 0 {
			return fmt.Errorf("spec:%d: missing width after ':'", l.line)
		}
		if w > 128 {
			return fmt.Errorf("spec:%d: width %d out of range (1..128)", l.line, w)
		}
		tok.numWidth = w
		tok.hasWidth = true
	}
	l.toks = append(l.toks, tok)
	return nil
}

// punctuation, longest first.
var puncts = []string{
	"<<", ">>", "==", "!=", "&&", "||",
	"(", ")", "{", "}", "[", "]", ",", ";", ":", "=", "+", "-", "*",
	"&", "|", "^", "~", "!", ".", "<", ">", "%", "/",
}

func (l *lexer) lexPunct() error {
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.toks = append(l.toks, token{kind: tPunct, text: p, line: l.line})
			l.pos += len(p)
			return nil
		}
	}
	return fmt.Errorf("spec:%d: unexpected character %q", l.line, l.src[l.pos])
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
