package spec

import (
	"fmt"

	"iselgen/internal/term"
)

// Check is the inline-spec entry point shared by cmd/iselgen -spec and
// the daemon's inline-target path: it parses a spec source and
// symbolically executes every instruction into a throwaway builder,
// surfacing syntax, width, and semantics errors before any expensive
// pool construction starts. It returns the declared instruction names in
// definition order.
func Check(src string) ([]string, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(f.Insts) == 0 {
		return nil, fmt.Errorf("spec: no instructions defined")
	}
	b := term.NewBuilder()
	names := make([]string, 0, len(f.Insts))
	sems := make([]*Sem, 0, len(f.Insts))
	seen := map[string]bool{}
	for _, inst := range f.Insts {
		if seen[inst.Name] {
			return nil, fmt.Errorf("spec:%d: duplicate instruction %q", inst.Line, inst.Name)
		}
		seen[inst.Name] = true
		sem, err := Symbolize(inst, b, inst.Name+".")
		if err != nil {
			return nil, err
		}
		sems = append(sems, sem)
		names = append(names, inst.Name)
	}
	if err := CheckEncodings(f, sems); err != nil {
		return nil, err
	}
	return names, nil
}
