package spec

import (
	"fmt"
	"sort"

	"iselgen/internal/obs"
	"iselgen/internal/term"
)

// EffectKind classifies instruction effects (paper §IV-A: each effect of
// an instruction is modeled as a separate bitvector term).
type EffectKind int

// Effect kinds.
const (
	EffReg  EffectKind = iota // destination register write ("rd", "rd2")
	EffWB                     // write-back to a register operand
	EffFlag                   // condition flag write (N/Z/C/V)
	EffPC                     // program-counter update
	EffMem                    // memory store (term root is Store)
)

func (k EffectKind) String() string {
	switch k {
	case EffReg:
		return "reg"
	case EffWB:
		return "writeback"
	case EffFlag:
		return "flag"
	case EffPC:
		return "pc"
	default:
		return "mem"
	}
}

// Effect is one effect of an instruction.
type Effect struct {
	Kind EffectKind
	Dest string // "rd"/"rd2", operand name, flag letter; "" for PC/mem
	T    *term.Term
}

// Sem is the symbolic semantics of one instruction: its operand list and
// effect terms. Operand variables are named prefix+operandName; the
// implicit PC input is prefix+"pc" and flag inputs prefix+"N" etc., so
// that sequence composition can wire effects by rebuilding variables.
type Sem struct {
	Name     string
	Operands []Operand
	Effects  []Effect
	// Prefix is the variable-name prefix the semantics were built with.
	Prefix string
}

// FlagNames lists the condition flags in canonical order.
var FlagNames = []string{"N", "Z", "C", "V"}

// Symbolize symbolically executes one instruction definition, producing
// its effect terms in builder b with the given variable-name prefix.
func Symbolize(inst *InstDef, b *term.Builder, prefix string) (*Sem, error) {
	ex := &executor{
		b:      b,
		inst:   inst,
		prefix: prefix,
		st: &state{
			vals: map[string]*term.Term{},
			eff:  map[string]*term.Term{},
		},
	}
	for _, op := range inst.Operands {
		var kind term.VarKind
		switch op.Kind {
		case OpReg:
			kind = term.KindReg
		case OpVec:
			kind = term.KindVecReg
		case OpImm:
			kind = term.KindImm
		}
		ex.st.vals[op.Name] = b.VarT(prefix+op.Name, kind, op.Width)
	}
	if err := ex.execBlock(ex.st, inst.Body); err != nil {
		return nil, err
	}
	sem := &Sem{Name: inst.Name, Operands: inst.Operands, Prefix: prefix}
	// Deterministic effect order: rd, rd2, write-backs (operand order),
	// flags (NZCV), pc, stores.
	if t, ok := ex.st.eff["rd"]; ok {
		sem.Effects = append(sem.Effects, Effect{Kind: EffReg, Dest: "rd", T: t})
	}
	if t, ok := ex.st.eff["rd2"]; ok {
		sem.Effects = append(sem.Effects, Effect{Kind: EffReg, Dest: "rd2", T: t})
	}
	for _, op := range inst.Operands {
		if t, ok := ex.st.eff["wb:"+op.Name]; ok {
			sem.Effects = append(sem.Effects, Effect{Kind: EffWB, Dest: op.Name, T: t})
		}
	}
	for _, f := range FlagNames {
		if t, ok := ex.st.eff["flag:"+f]; ok {
			sem.Effects = append(sem.Effects, Effect{Kind: EffFlag, Dest: f, T: t})
		}
	}
	if t, ok := ex.st.eff["pc"]; ok {
		sem.Effects = append(sem.Effects, Effect{Kind: EffPC, T: t})
	}
	sem.Effects = append(sem.Effects, ex.st.mems...)
	if len(sem.Effects) == 0 {
		return nil, fmt.Errorf("spec: instruction %s has no effects", inst.Name)
	}
	return sem, nil
}

// SymbolizeFile symbolizes every instruction in a file. Like Parse it
// is traced through the process-wide default tracer.
func SymbolizeFile(f *File, b *term.Builder, prefixOf func(name string) string) ([]*Sem, error) {
	sp := obs.DefaultTracer().Start("spec/symexec").SetInt("instructions", int64(len(f.Insts)))
	defer sp.End()
	var out []*Sem
	for _, inst := range f.Insts {
		prefix := ""
		if prefixOf != nil {
			prefix = prefixOf(inst.Name)
		}
		sem, err := Symbolize(inst, b, prefix)
		if err != nil {
			sp.SetStr("error", inst.Name)
			return nil, fmt.Errorf("%s: %w", inst.Name, err)
		}
		out = append(out, sem)
	}
	return out, nil
}

type state struct {
	vals map[string]*term.Term // operands and let-bindings
	eff  map[string]*term.Term // keyed effects
	mems []Effect              // store effects in program order
}

func (s *state) clone() *state {
	ns := &state{
		vals: make(map[string]*term.Term, len(s.vals)),
		eff:  make(map[string]*term.Term, len(s.eff)),
		mems: append([]Effect(nil), s.mems...),
	}
	for k, v := range s.vals {
		ns.vals[k] = v
	}
	for k, v := range s.eff {
		ns.eff[k] = v
	}
	return ns
}

type executor struct {
	b      *term.Builder
	inst   *InstDef
	prefix string
	st     *state
}

func (ex *executor) errf(line int, format string, args ...any) error {
	return fmt.Errorf("spec:%d: %s: %s", line, ex.inst.Name, fmt.Sprintf(format, args...))
}

func (ex *executor) pcVar() *term.Term {
	return ex.b.VarT(ex.prefix+"pc", term.KindPC, 64)
}

func (ex *executor) flagVar(f string) *term.Term {
	return ex.b.VarT(ex.prefix+f, term.KindFlag, 1)
}

func (ex *executor) execBlock(st *state, stmts []Stmt) error {
	for _, s := range stmts {
		if err := ex.execStmt(st, s); err != nil {
			return err
		}
	}
	return nil
}

func (ex *executor) execStmt(st *state, s Stmt) error {
	switch s := s.(type) {
	case *LetStmt:
		t, err := ex.eval(st, s.X, 0)
		if err != nil {
			return err
		}
		st.vals[s.Name] = t
		return nil

	case *AssignStmt:
		return ex.execAssign(st, s)

	case *FlagStmt:
		t, err := ex.eval(st, s.X, 1)
		if err != nil {
			return err
		}
		if t.W() != 1 {
			return ex.errf(s.Line, "flag value must be 1 bit, got %d", t.W())
		}
		st.eff["flag:"+s.Flag] = t
		return nil

	case *MemStmt:
		addr, err := ex.eval(st, s.Addr, 64)
		if err != nil {
			return err
		}
		if addr.W() != 64 {
			return ex.errf(s.Line, "store address must be 64 bits, got %d", addr.W())
		}
		val, err := ex.eval(st, s.X, s.Width)
		if err != nil {
			return err
		}
		if val.W() != s.Width {
			return ex.errf(s.Line, "store value width %d, declared %d", val.W(), s.Width)
		}
		st.mems = append(st.mems, Effect{Kind: EffMem, T: ex.b.Store(addr, val)})
		return nil

	case *IfStmt:
		return ex.execIf(st, s)
	}
	return fmt.Errorf("spec: unknown statement %T", s)
}

func (ex *executor) execAssign(st *state, s *AssignStmt) error {
	switch s.Target {
	case "pc":
		t, err := ex.eval(st, s.X, 64)
		if err != nil {
			return err
		}
		if t.W() != 64 {
			return ex.errf(s.Line, "pc value must be 64 bits, got %d", t.W())
		}
		st.eff["pc"] = t
		return nil
	case "rd", "rd2":
		t, err := ex.eval(st, s.X, 0)
		if err != nil {
			return err
		}
		st.eff[s.Target] = t
		return nil
	}
	// Re-assignment of a let-binding (mutable locals inside branches).
	isOperand := false
	for _, op := range ex.inst.Operands {
		if op.Name == s.Target {
			isOperand = true
		}
	}
	if old, ok := st.vals[s.Target]; ok && !isOperand {
		t, err := ex.eval(st, s.X, old.W())
		if err != nil {
			return err
		}
		st.vals[s.Target] = t
		return nil
	}
	// Write-back to a declared register operand.
	for _, op := range ex.inst.Operands {
		if op.Name == s.Target {
			if op.Kind == OpImm {
				return ex.errf(s.Line, "cannot assign to immediate operand %s", s.Target)
			}
			t, err := ex.eval(st, s.X, op.Width)
			if err != nil {
				return err
			}
			if t.W() != op.Width {
				return ex.errf(s.Line, "write-back width %d to %d-bit operand %s",
					t.W(), op.Width, s.Target)
			}
			st.eff["wb:"+s.Target] = t
			return nil
		}
	}
	return ex.errf(s.Line, "unknown assignment target %q", s.Target)
}

// execIf runs both branches on state copies and joins the writes with
// ite terms — the symbolic-execution treatment of control flow.
func (ex *executor) execIf(st *state, s *IfStmt) error {
	cond, err := ex.eval(st, s.Cond, 1)
	if err != nil {
		return err
	}
	cond = ex.b.Bool(cond)
	thenSt := st.clone()
	elseSt := st.clone()
	if err := ex.execBlock(thenSt, s.Then); err != nil {
		return err
	}
	if err := ex.execBlock(elseSt, s.Else); err != nil {
		return err
	}
	// Join let-bindings.
	names := map[string]bool{}
	for n := range thenSt.vals {
		names[n] = true
	}
	for n := range elseSt.vals {
		names[n] = true
	}
	var sorted []string
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		tv, tok := thenSt.vals[n]
		ev, eok := elseSt.vals[n]
		switch {
		case tok && eok:
			if tv != ev {
				if tv.W() != ev.W() {
					return ex.errf(s.Line, "branches bind %q at widths %d and %d", n, tv.W(), ev.W())
				}
				st.vals[n] = ex.b.Ite(cond, tv, ev)
			} else {
				st.vals[n] = tv
			}
		case tok:
			// Declared only in the then-branch: not visible after join.
			if _, outer := st.vals[n]; outer {
				st.vals[n] = tv
			}
		case eok:
			if _, outer := st.vals[n]; outer {
				st.vals[n] = ev
			}
		}
	}
	// Join effects.
	keys := map[string]bool{}
	for k := range thenSt.eff {
		keys[k] = true
	}
	for k := range elseSt.eff {
		keys[k] = true
	}
	var ekeys []string
	for k := range keys {
		ekeys = append(ekeys, k)
	}
	sort.Strings(ekeys)
	for _, k := range ekeys {
		tv, tok := thenSt.eff[k]
		ev, eok := elseSt.eff[k]
		switch {
		case tok && eok:
			if tv == ev {
				st.eff[k] = tv
			} else {
				st.eff[k] = ex.b.Ite(cond, tv, ev)
			}
		case tok || eok:
			v := tv
			if !tok {
				v = ev
			}
			if prev, ok := st.eff[k]; ok {
				// Previously assigned unconditionally; keep old value on
				// the untaken path.
				if tok {
					st.eff[k] = ex.b.Ite(cond, v, prev)
				} else {
					st.eff[k] = ex.b.Ite(cond, prev, v)
				}
			} else if k == "pc" {
				// A conditional branch falls through to the next
				// instruction: pc plus this instruction's encoded size
				// (4 when the spec declares no encoding).
				size := uint64(4)
				if ex.inst.Enc != nil {
					size = uint64(ex.inst.Enc.SizeBytes())
				}
				fall := ex.b.Add(ex.pcVar(), ex.b.Const(64, size))
				if tok {
					st.eff[k] = ex.b.Ite(cond, v, fall)
				} else {
					st.eff[k] = ex.b.Ite(cond, fall, v)
				}
			} else {
				return ex.errf(s.Line, "effect %q written in only one branch", k)
			}
		}
	}
	// Memory effects: both branches must store the same number of times;
	// matching stores join addr- and value-wise.
	if len(thenSt.mems) != len(elseSt.mems) {
		return ex.errf(s.Line, "conditional store in only one branch is unsupported")
	}
	for i := len(st.mems); i < len(thenSt.mems); i++ {
		tm, em := thenSt.mems[i].T, elseSt.mems[i].T
		if tm == em {
			st.mems = append(st.mems, thenSt.mems[i])
			continue
		}
		if tm.Aux0 != em.Aux0 {
			return ex.errf(s.Line, "conditional stores of different widths")
		}
		addr := ex.b.Ite(cond, tm.Args[0], em.Args[0])
		val := ex.b.Ite(cond, tm.Args[1], em.Args[1])
		st.mems = append(st.mems, Effect{Kind: EffMem, T: ex.b.Store(addr, val)})
	}
	return nil
}
