package spec

// AST for the specification language.

// File is a parsed specification file: a list of instruction
// definitions plus any top-level reserved encoding patterns.
type File struct {
	Insts    []*InstDef
	Reserved []*Encoding
}

// OperandKind classifies instruction operands.
type OperandKind int

// Operand kinds.
const (
	OpReg OperandKind = iota
	OpVec
	OpImm
)

func (k OperandKind) String() string {
	switch k {
	case OpReg:
		return "reg"
	case OpVec:
		return "vec"
	default:
		return "imm"
	}
}

// Operand is a declared instruction operand.
type Operand struct {
	Name  string
	Kind  OperandKind
	Width int
}

// InstDef is one instruction definition. Enc is the optional machine
// encoding clause following the semantics block.
type InstDef struct {
	Name     string
	Operands []Operand
	Body     []Stmt
	Enc      *Encoding
	Line     int
}

// Stmt is a specification statement.
type Stmt interface{ stmt() }

// LetStmt binds a local name.
type LetStmt struct {
	Name string
	X    Expr
	Line int
}

// AssignStmt writes an effect target: "rd", "rd2", a declared register
// operand (write-back), or "pc".
type AssignStmt struct {
	Target string
	X      Expr
	Line   int
}

// FlagStmt writes one condition flag (N, Z, C, or V).
type FlagStmt struct {
	Flag string
	X    Expr
	Line int
}

// MemStmt is a store: mem[addr, width] = value.
type MemStmt struct {
	Addr  Expr
	Width int
	X     Expr
	Line  int
}

// IfStmt executes branches symbolically and joins their writes.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

func (*LetStmt) stmt()    {}
func (*AssignStmt) stmt() {}
func (*FlagStmt) stmt()   {}
func (*MemStmt) stmt()    {}
func (*IfStmt) stmt()     {}

// Expr is a specification expression.
type Expr interface{ expr() }

// Ident references an operand, a let-binding, "pc", or a flag via
// flags.N etc. (the latter parses as a FlagRef).
type Ident struct {
	Name string
	Line int
}

// Num is an integer literal, optionally width-annotated (N:w).
type Num struct {
	Val   uint64
	Width int // 0 when inferred from context
	Line  int
}

// Unary is -x, ~x, or !x.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary is a binary operator application.
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

// Call is a builtin function application.
type Call struct {
	Fn   string
	Args []Expr
	// Width arguments (zext/sext/trunc/load widths, extract bounds) are
	// parsed into Nums inside Args.
	Line int
}

// FlagRef reads a condition flag: flags.N etc.
type FlagRef struct {
	Flag string
	Line int
}

func (*Ident) expr()   {}
func (*Num) expr()     {}
func (*Unary) expr()   {}
func (*Binary) expr()  {}
func (*Call) expr()    {}
func (*FlagRef) expr() {}
