package spec

import (
	"regexp"
	"strings"
	"testing"
)

var diagRE = regexp.MustCompile(`^spec(:\d+)?: `)

// FuzzSpecParse asserts the front-end contract the fuzzing harness
// relies on: Check never panics, and every rejection carries a
// positioned "spec:N:" (or at least "spec:") diagnostic.
//
//	go test ./internal/spec -fuzz FuzzSpecParse
func FuzzSpecParse(f *testing.F) {
	f.Add("inst add(a: reg64, b: reg64) { rd = a + b; }\n")
	f.Add("inst addk(a: reg64, k: imm12) { rd = a + zext(k, 64); }\n")
	f.Add("inst st(v: reg64, a: reg64) { mem[a, 64] = v; }\n")
	f.Add("inst cz(a: reg32) { rd = clz(a); }\n")
	f.Add("inst w(a: reg64) { rd = zext(slt(a, a), 255); }\n") // once a bv panic
	f.Add("inst x(a: reg64) { rd = extract(a, 70, 3); }\n")
	f.Add("inst c(a: reg64, b: reg64) { rd = trunc(concat(a, b), 64); }\n")
	f.Add("inst n(a: reg64) { rd = a + 1:999999999999999999999; }\n")
	f.Add("inst d(a: reg64, a: reg64) { rd = a; }\n")
	f.Add("inst m(v: reg64, a: reg64) { mem[a, 0] = v; }\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			t.Skip("oversized input")
		}
		_, err := Check(src)
		if err != nil && !diagRE.MatchString(err.Error()) {
			t.Errorf("diagnostic without position: %q", err.Error())
		}
	})
}

// TestRejectedWithDiagnostics pins the malformed inputs the differential
// fuzzer found panicking (or silently accepted) in earlier revisions:
// each must now produce a positioned diagnostic.
func TestRejectedWithDiagnostics(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"zext width over 128",
			"inst z(a: reg64, b: reg64) { rd = zext(slt(a, b), 255); }\n",
			"out of range"},
		{"zext width zero",
			"inst z(a: reg64) { rd = zext(a, 0); }\n",
			"at least 1"},
		{"literal width suffix over 128",
			"inst z(a: reg64) { rd = a + 1:300; }\n",
			"out of range"},
		{"literal width suffix overflowing int",
			"inst z(a: reg64) { rd = a + 1:99999999999999999999; }\n",
			"out of range"},
		{"store width zero",
			"inst z(v: reg64, a: reg64) { mem[a, 0] = v; }\n",
			"out of range"},
		{"store width over 128",
			"inst z(v: reg64, a: reg64) { mem[a, 256] = v; }\n",
			"out of range"},
		{"extract beyond operand width",
			"inst z(a: reg64) { rd = extract(a, 70, 3); }\n",
			"invalid"},
		{"extract reversed bounds",
			"inst z(a: reg64) { rd = extract(a, 3, 7); }\n",
			"invalid"},
		{"concat beyond 128 bits",
			"inst z(a: reg128, b: reg64) { rd = trunc(concat(a, b), 64); }\n",
			"exceeds 128"},
		{"duplicate operand name",
			"inst z(a: reg64, a: reg64) { rd = a; }\n",
			"duplicate operand"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Check(tc.src)
			if err == nil {
				t.Fatal("accepted")
			}
			if !diagRE.MatchString(err.Error()) {
				t.Errorf("diagnostic without position: %q", err.Error())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("diagnostic %q does not mention %q", err.Error(), tc.want)
			}
		})
	}
}
