package spec

import (
	"strings"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/term"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func symbolize1(t *testing.T, src string) (*term.Builder, *Sem) {
	t.Helper()
	f := mustParse(t, src)
	if len(f.Insts) != 1 {
		t.Fatalf("want 1 inst, got %d", len(f.Insts))
	}
	b := term.NewBuilder()
	sem, err := Symbolize(f.Insts[0], b, "")
	if err != nil {
		t.Fatalf("symbolize: %v", err)
	}
	return b, sem
}

func TestParseBasics(t *testing.T) {
	f := mustParse(t, `
// two instructions
inst ADDXrr(rn: reg64, rm: reg64) { rd = rn + rm; }
inst ADDXri(rn: reg64, imm: imm12) { rd = rn + zext(imm, 64); }
`)
	if len(f.Insts) != 2 {
		t.Fatalf("insts = %d", len(f.Insts))
	}
	if f.Insts[0].Name != "ADDXrr" || len(f.Insts[0].Operands) != 2 {
		t.Errorf("first inst parsed wrong: %+v", f.Insts[0])
	}
	op := f.Insts[1].Operands[1]
	if op.Kind != OpImm || op.Width != 12 {
		t.Errorf("imm operand = %+v", op)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`inst X(a: reg64) { rd = a + ; }`,
		`inst X(a: blah64) { rd = a; }`,
		`inst X(a: reg64) { rd = a `,
		`inst X(a: reg64) { flags.Q = a; }`,
		`notinst X() {}`,
		`inst X(a: reg64) { rd = 0xZZ; }`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestSymbolizeAddShifted(t *testing.T) {
	// The paper's ADDWrs example (Fig. 3a): 32-bit add with the second
	// operand shifted left by an immediate.
	b, sem := symbolize1(t, `
inst ADDWrs(rn: reg32, rm: reg32, shift: imm5) {
  rd = rn + (rm << zext(shift, 32));
}`)
	if len(sem.Effects) != 1 || sem.Effects[0].Kind != EffReg {
		t.Fatalf("effects = %+v", sem.Effects)
	}
	got := sem.Effects[0].T
	rn := b.Reg("rn", 32)
	rm := b.Reg("rm", 32)
	sh := b.Imm("shift", 5)
	want := b.Add(rn, b.Shl(rm, b.ZExt(32, sh)))
	if got != want {
		t.Errorf("effect = %s, want %s", got, want)
	}
}

func TestSymbolizeLoadPostIndex(t *testing.T) {
	// Fig. 3c analog: post-index load has two effects.
	_, sem := symbolize1(t, `
inst LDRXpost(rn: reg64, simm: imm9) {
  rd = load(rn, 64);
  rn = rn + sext(simm, 64);
}`)
	if len(sem.Effects) != 2 {
		t.Fatalf("effects = %d, want 2", len(sem.Effects))
	}
	if sem.Effects[0].Kind != EffReg || sem.Effects[1].Kind != EffWB {
		t.Errorf("effect kinds = %v, %v", sem.Effects[0].Kind, sem.Effects[1].Kind)
	}
	if sem.Effects[1].Dest != "rn" {
		t.Errorf("write-back dest = %q", sem.Effects[1].Dest)
	}
	if sem.Effects[0].T.Op != term.Load {
		t.Errorf("first effect is %v, want load", sem.Effects[0].T.Op)
	}
}

func TestSymbolizeStore(t *testing.T) {
	_, sem := symbolize1(t, `
inst STRWui(rt: reg32, rn: reg64, imm: imm12) {
  mem[rn + zext(imm, 64) * 4:64, 32] = rt;
}`)
	if len(sem.Effects) != 1 || sem.Effects[0].Kind != EffMem {
		t.Fatalf("effects = %+v", sem.Effects)
	}
	if sem.Effects[0].T.Op != term.Store {
		t.Errorf("store effect root = %v", sem.Effects[0].T.Op)
	}
}

func TestSymbolizeFlags(t *testing.T) {
	// SUBS-style: result plus NZCV.
	_, sem := symbolize1(t, `
inst SUBSXrr(rn: reg64, rm: reg64) {
  let res = rn - rm;
  rd = res;
  flags.N = extract(res, 63, 63);
  flags.Z = res == 0;
  flags.C = uge(rn, rm);
  flags.V = extract((rn ^ rm) & (rn ^ res), 63, 63);
}`)
	if len(sem.Effects) != 5 {
		t.Fatalf("effects = %d, want 5", len(sem.Effects))
	}
	kinds := map[EffectKind]int{}
	for _, e := range sem.Effects {
		kinds[e.Kind]++
		if e.Kind == EffFlag && e.T.W() != 1 {
			t.Errorf("flag %s width = %d", e.Dest, e.T.W())
		}
	}
	if kinds[EffReg] != 1 || kinds[EffFlag] != 4 {
		t.Errorf("kind histogram = %v", kinds)
	}
	// Flags come in NZCV order.
	var order []string
	for _, e := range sem.Effects {
		if e.Kind == EffFlag {
			order = append(order, e.Dest)
		}
	}
	if strings.Join(order, "") != "NZCV" {
		t.Errorf("flag order = %v", order)
	}
}

func TestSymbolizeConditionalBranch(t *testing.T) {
	// CBZ-style: pc written only on the taken path; the join must supply
	// the pc+4 fall-through.
	b, sem := symbolize1(t, `
inst CBZX(rt: reg64, imm: imm19) {
  if (rt == 0) {
    pc = pc + sext(concat(imm, 0:2), 64);
  }
}`)
	if len(sem.Effects) != 1 || sem.Effects[0].Kind != EffPC {
		t.Fatalf("effects = %+v", sem.Effects)
	}
	eff := sem.Effects[0].T
	if eff.Op != term.Ite {
		t.Fatalf("pc effect = %s, want ite", eff)
	}
	// Evaluate: rt == 0 takes the branch.
	env := term.NewEnv()
	env.Bind("rt", bv.Zero(64))
	env.Bind("imm", bv.New(19, 3))
	env.Bind("pc", bv.New(64, 0x1000))
	if got := eff.Eval(env); got.Lo != 0x1000+12 {
		t.Errorf("taken pc = %#x, want %#x", got.Lo, 0x1000+12)
	}
	env.Bind("rt", bv.New(64, 7))
	if got := eff.Eval(env); got.Lo != 0x1004 {
		t.Errorf("fall-through pc = %#x, want 0x1004", got.Lo)
	}
	_ = b
}

func TestSymbolizeCSel(t *testing.T) {
	// Conditional select reading the flag inputs.
	b, sem := symbolize1(t, `
inst CSELXeq(rn: reg64, rm: reg64) {
  rd = select(flags.Z, rn, rm);
}`)
	eff := sem.Effects[0].T
	env := term.NewEnv()
	env.Bind("rn", bv.New(64, 11))
	env.Bind("rm", bv.New(64, 22))
	env.Bind("Z", bv.New(1, 1))
	if got := eff.Eval(env); got.Lo != 11 {
		t.Errorf("Z=1 selects %d, want 11", got.Lo)
	}
	env.Bind("Z", bv.Zero(1))
	if got := eff.Eval(env); got.Lo != 22 {
		t.Errorf("Z=0 selects %d, want 22", got.Lo)
	}
	// The flag read must be a KindFlag variable.
	found := false
	for _, v := range eff.Vars() {
		if v.Kind == term.KindFlag && v.Name == "Z" {
			found = true
		}
	}
	if !found {
		t.Error("no flag variable in effect term")
	}
	_ = b
}

func TestSymbolizeIfJoinLocals(t *testing.T) {
	b, sem := symbolize1(t, `
inst ABSX(rn: reg64) {
  let v = rn;
  if (slt(rn, 0:64)) {
    v = -rn;
  }
  rd = v;
}`)
	eff := sem.Effects[0].T
	env := term.NewEnv()
	env.Bind("rn", bv.NewInt(64, -5))
	if got := eff.Eval(env); got.Lo != 5 {
		t.Errorf("abs(-5) = %d", got.Int64())
	}
	env.Bind("rn", bv.New(64, 9))
	if got := eff.Eval(env); got.Lo != 9 {
		t.Errorf("abs(9) = %d", got.Lo)
	}
	_ = b
}

func TestSymbolizeIfElseChain(t *testing.T) {
	_, sem := symbolize1(t, `
inst CLAMP(rn: reg32, lo: imm8, hi: imm8) {
  let l = zext(lo, 32);
  let h = zext(hi, 32);
  if (ult(rn, l)) {
    rd = l;
  } else if (ugt(rn, h)) {
    rd = h;
  } else {
    rd = rn;
  }
}`)
	eff := sem.Effects[0].T
	env := term.NewEnv()
	env.Bind("lo", bv.New(8, 10))
	env.Bind("hi", bv.New(8, 20))
	for in, want := range map[uint64]uint64{5: 10, 15: 15, 30: 20} {
		env.Bind("rn", bv.New(32, in))
		if got := eff.Eval(env); got.Lo != want {
			t.Errorf("clamp(%d) = %d, want %d", in, got.Lo, want)
		}
	}
}

func TestSymbolizeWritebackPrefix(t *testing.T) {
	f := mustParse(t, `inst X(rn: reg64) { rd = rn + 1; }`)
	b := term.NewBuilder()
	sem, err := Symbolize(f.Insts[0], b, "i3.")
	if err != nil {
		t.Fatal(err)
	}
	vars := sem.Effects[0].T.Vars()
	if len(vars) != 1 || vars[0].Name != "i3.rn" {
		t.Errorf("prefixed var = %v", vars)
	}
}

func TestSymbolizeErrors(t *testing.T) {
	for _, src := range []string{
		// unknown ident
		`inst X(a: reg64) { rd = b; }`,
		// assign to immediate
		`inst X(a: imm8) { a = a; }`,
		// width mismatch in writeback
		`inst X(a: reg64) { a = trunc(a, 32); }`,
		// flag width
		`inst X(a: reg64) { flags.Z = a; }`,
		// literal width unknown
		`inst X(a: reg64) { rd = zext(5, 64) + a; }`,
		// conditional non-pc single-branch effect
		`inst X(a: reg64) { if (a == 0) { rd = a; } }`,
		// conditional store one branch
		`inst X(a: reg64) { if (a == 0) { mem[a, 64] = a; } }`,
		// no effects at all
		`inst X(a: reg64) { let v = a; }`,
		// binary width mismatch
		`inst X(a: reg64, b: reg32) { rd = a + b; }`,
	} {
		f, err := Parse(src)
		if err != nil {
			continue // parse-time rejection also fine for some cases
		}
		if _, err := Symbolize(f.Insts[0], term.NewBuilder(), ""); err == nil {
			t.Errorf("no symbolize error for %q", src)
		}
	}
}

func TestSymbolizeFileHelper(t *testing.T) {
	f := mustParse(t, `
inst A(a: reg64) { rd = a; }
inst B(a: reg64) { rd = -a; }
`)
	sems, err := SymbolizeFile(f, term.NewBuilder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sems) != 2 || sems[0].Name != "A" || sems[1].Name != "B" {
		t.Errorf("sems = %+v", sems)
	}
}

func TestNumberFormats(t *testing.T) {
	_, sem := symbolize1(t, `
inst X(a: reg64) {
  rd = a + 0x10 + 0b101 + 1_000;
}`)
	eff := sem.Effects[0].T
	env := term.NewEnv()
	env.Bind("a", bv.Zero(64))
	if got := eff.Eval(env); got.Lo != 16+5+1000 {
		t.Errorf("literals sum = %d", got.Lo)
	}
}

func TestBooleanOperatorAliases(t *testing.T) {
	_, sem := symbolize1(t, `
inst X(a: reg64, b: reg64) {
  rd = zext((a == b) && (ult(a, b) || a != 0:64), 64);
}`)
	eff := sem.Effects[0].T
	env := term.NewEnv()
	env.Bind("a", bv.New(64, 5))
	env.Bind("b", bv.New(64, 5))
	if got := eff.Eval(env); got.Lo != 1 {
		t.Errorf("5,5 = %d, want 1", got.Lo)
	}
	env.Bind("b", bv.New(64, 6))
	if got := eff.Eval(env); got.Lo != 0 {
		t.Errorf("5,6 = %d, want 0", got.Lo)
	}
}
