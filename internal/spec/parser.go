package spec

import (
	"fmt"
	"strconv"
	"strings"

	"iselgen/internal/obs"
)

// Parse parses a specification source file. Parsing is traced through
// the process-wide default tracer (obs.SetDefault) because Parse's API
// carries no configuration.
func Parse(src string) (*File, error) {
	sp := obs.DefaultTracer().Start("spec/parse").SetInt("bytes", int64(len(src)))
	defer sp.End()
	toks, err := lex(src)
	if err != nil {
		sp.SetStr("error", "lex")
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(tEOF) {
		if p.atIdent("reserved") {
			enc, err := p.parseEncoding("reserved")
			if err != nil {
				sp.SetStr("error", "parse")
				return nil, err
			}
			f.Reserved = append(f.Reserved, enc)
			continue
		}
		inst, err := p.parseInst()
		if err != nil {
			sp.SetStr("error", "parse")
			return nil, err
		}
		f.Insts = append(f.Insts, inst)
	}
	sp.SetInt("instructions", int64(len(f.Insts)))
	return f, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) atPunct(s string) bool {
	return p.cur().kind == tPunct && p.cur().text == s
}

func (p *parser) atIdent(s string) bool {
	return p.cur().kind == tIdent && p.cur().text == s
}

func (p *parser) eatPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *parser) eatIdent() (string, error) {
	if !p.at(tIdent) {
		return "", p.errf("expected identifier, found %q", p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("spec:%d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) parseInst() (*InstDef, error) {
	line := p.cur().line
	if !p.atIdent("inst") {
		return nil, p.errf("expected 'inst', found %q", p.cur().text)
	}
	p.pos++
	name, err := p.eatIdent()
	if err != nil {
		return nil, err
	}
	if err := p.eatPunct("("); err != nil {
		return nil, err
	}
	inst := &InstDef{Name: name, Line: line}
	for !p.atPunct(")") {
		if len(inst.Operands) > 0 {
			if err := p.eatPunct(","); err != nil {
				return nil, err
			}
		}
		opName, err := p.eatIdent()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct(":"); err != nil {
			return nil, err
		}
		tyName, err := p.eatIdent()
		if err != nil {
			return nil, err
		}
		op, err := parseOperandType(opName, tyName)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		for _, prev := range inst.Operands {
			if prev.Name == op.Name {
				return nil, p.errf("duplicate operand %q in %s", op.Name, name)
			}
		}
		inst.Operands = append(inst.Operands, op)
	}
	p.pos++ // ')'
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	inst.Body = body
	if p.atIdent("enc") {
		enc, err := p.parseEncoding("enc")
		if err != nil {
			return nil, err
		}
		inst.Enc = enc
	}
	return inst, nil
}

// parseEncoding parses `enc(width) { fields }` after an instruction
// body, or a top-level `reserved(width) { fields }` pattern. A field is
//
//	[hi:lo] = value ;
//
// where value is a number (fixed bits), an operand/rd/rd2 name, or an
// immediate-operand slice `name[hi:lo]`. `[n]` abbreviates `[n:n]`.
func (p *parser) parseEncoding(kw string) (*Encoding, error) {
	line := p.cur().line
	p.pos++ // 'enc' / 'reserved'
	if err := p.eatPunct("("); err != nil {
		return nil, err
	}
	if !p.at(tNumber) {
		return nil, p.errf("expected %s width", kw)
	}
	enc := &Encoding{Width: int(p.next().num), Line: line}
	if err := p.eatPunct(")"); err != nil {
		return nil, err
	}
	if err := p.eatPunct("{"); err != nil {
		return nil, err
	}
	for !p.atPunct("}") {
		f, err := p.parseEncField()
		if err != nil {
			return nil, err
		}
		enc.Fields = append(enc.Fields, f)
	}
	p.pos++ // '}'
	return enc, nil
}

// parseRange parses `[hi:lo]` or `[n]`, positioned at '['. The lexer
// folds `hi:lo` into one width-suffixed number token, so both shapes
// are a single tNumber here.
func (p *parser) parseRange() (hi, lo int, err error) {
	if err := p.eatPunct("["); err != nil {
		return 0, 0, err
	}
	if !p.at(tNumber) {
		return 0, 0, p.errf("expected bit range")
	}
	t := p.next()
	hi = int(t.num)
	lo = hi
	if t.hasWidth {
		lo = t.numWidth
	}
	if err := p.eatPunct("]"); err != nil {
		return 0, 0, err
	}
	return hi, lo, nil
}

func (p *parser) parseEncField() (EncField, error) {
	f := EncField{SrcHi: -1, SrcLo: -1, Line: p.cur().line}
	var err error
	if f.Hi, f.Lo, err = p.parseRange(); err != nil {
		return f, err
	}
	if err := p.eatPunct("="); err != nil {
		return f, err
	}
	switch {
	case p.at(tNumber):
		f.Fixed = true
		f.Val = p.next().num
	case p.at(tIdent):
		f.Name = p.next().text
		if p.atPunct("[") {
			if f.SrcHi, f.SrcLo, err = p.parseRange(); err != nil {
				return f, err
			}
		}
	default:
		return f, p.errf("expected field value, found %q", p.cur().text)
	}
	return f, p.eatPunct(";")
}

func parseOperandType(name, ty string) (Operand, error) {
	for prefix, kind := range map[string]OperandKind{"reg": OpReg, "vec": OpVec, "imm": OpImm} {
		if strings.HasPrefix(ty, prefix) {
			w, err := strconv.Atoi(ty[len(prefix):])
			if err != nil || w < 1 || w > 128 {
				return Operand{}, fmt.Errorf("bad operand type %q for %s", ty, name)
			}
			return Operand{Name: name, Kind: kind, Width: w}, nil
		}
	}
	return Operand{}, fmt.Errorf("unknown operand type %q for %s", ty, name)
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.eatPunct("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.atPunct("}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.pos++ // '}'
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	line := p.cur().line
	switch {
	case p.atIdent("let"):
		p.pos++
		name, err := p.eatIdent()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct("="); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct(";"); err != nil {
			return nil, err
		}
		return &LetStmt{Name: name, X: x, Line: line}, nil

	case p.atIdent("if"):
		p.pos++
		if err := p.eatPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.atIdent("else") {
			p.pos++
			if p.atIdent("if") {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: line}, nil

	case p.atIdent("mem"):
		p.pos++
		if err := p.eatPunct("["); err != nil {
			return nil, err
		}
		addr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct(","); err != nil {
			return nil, err
		}
		if !p.at(tNumber) {
			return nil, p.errf("expected store width")
		}
		w := int(p.next().num)
		if w < 1 || w > 128 {
			return nil, p.errf("store width %d out of range (1..128)", w)
		}
		if err := p.eatPunct("]"); err != nil {
			return nil, err
		}
		if err := p.eatPunct("="); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct(";"); err != nil {
			return nil, err
		}
		return &MemStmt{Addr: addr, Width: w, X: x, Line: line}, nil

	case p.atIdent("flags"):
		p.pos++
		if err := p.eatPunct("."); err != nil {
			return nil, err
		}
		flag, err := p.eatIdent()
		if err != nil {
			return nil, err
		}
		if !isFlagName(flag) {
			return nil, p.errf("unknown flag %q", flag)
		}
		if err := p.eatPunct("="); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct(";"); err != nil {
			return nil, err
		}
		return &FlagStmt{Flag: flag, X: x, Line: line}, nil

	case p.at(tIdent):
		target := p.next().text
		if err := p.eatPunct("="); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Target: target, X: x, Line: line}, nil
	}
	return nil, p.errf("expected statement, found %q", p.cur().text)
}

func isFlagName(s string) bool {
	return s == "N" || s == "Z" || s == "C" || s == "V"
}

// Operator precedence, loosest first.
var precedence = map[string]int{
	"||": 1, "|": 1, "^": 2, "&&": 3, "&": 3,
	"==": 4, "!=": 4,
	"<<": 5, ">>": 5,
	"+": 6, "-": 6,
	"*": 7, "/": 7, "%": 7,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.cur().kind != tPunct {
			return lhs, nil
		}
		op := p.cur().text
		prec, ok := precedence[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		line := p.cur().line
		p.pos++
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs, Line: line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	line := p.cur().line
	for _, op := range []string{"-", "~", "!"} {
		if p.atPunct(op) {
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: op, X: x, Line: line}, nil
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case p.atPunct("("):
		p.pos++
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct(")"); err != nil {
			return nil, err
		}
		return x, nil

	case t.kind == tNumber:
		p.pos++
		if t.hasWidth && t.numWidth == 0 {
			return nil, p.errf("width 0 out of range (1..128)")
		}
		return &Num{Val: t.num, Width: t.numWidth, Line: t.line}, nil

	case t.kind == tIdent && t.text == "flags":
		p.pos++
		if err := p.eatPunct("."); err != nil {
			return nil, err
		}
		flag, err := p.eatIdent()
		if err != nil {
			return nil, err
		}
		if !isFlagName(flag) {
			return nil, p.errf("unknown flag %q", flag)
		}
		return &FlagRef{Flag: flag, Line: t.line}, nil

	case t.kind == tIdent:
		p.pos++
		if p.atPunct("(") {
			p.pos++
			call := &Call{Fn: t.text, Line: t.line}
			for !p.atPunct(")") {
				if len(call.Args) > 0 {
					if err := p.eatPunct(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.pos++
			return call, nil
		}
		return &Ident{Name: t.text, Line: t.line}, nil
	}
	return nil, p.errf("expected expression, found %q", t.text)
}
