package core_test

import (
	"runtime"
	"slices"
	"sort"
	"strings"
	"testing"

	"iselgen/internal/core"
	"iselgen/internal/harness"
	"iselgen/internal/isel"
	"iselgen/internal/smt"
)

// ruleLines extracts the sorted rule-line fingerprint set from a saved
// artifact (header lines carry provenance, rule lines are content-only).
func ruleLines(artifact string) []string {
	var out []string
	for _, ln := range strings.Split(artifact, "\n") {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		out = append(out, ln)
	}
	sort.Strings(out)
	return out
}

// TestWorkerCountDeterminism is the schedule-independence stress test:
// full synthesis of each builtin target at several worker-pool widths
// must produce the same library — same rule fingerprint set and a
// byte-identical saved artifact. The counterexample cache is reset
// before every run, but within a run its fill order varies with
// scheduling, so this also exercises the screen's verdict preservation.
func TestWorkerCountDeterminism(t *testing.T) {
	targets := []struct {
		name string
		load func() (*harness.Setup, error)
	}{
		{"riscv", harness.NewRISCV},
		{"aarch64", harness.NewAArch64},
	}
	workerSet := []int{1, 2, 8, runtime.NumCPU()}
	maxPatterns := 0
	if testing.Short() || raceEnabled {
		// The race detector multiplies synthesis cost; keep the
		// cross-worker comparison but trim the matrix and the corpus.
		targets = targets[:1]
		workerSet = []int{1, runtime.NumCPU()}
		maxPatterns = 24
	}
	for _, tc := range targets {
		t.Run(tc.name, func(t *testing.T) {
			var refWorkers int
			var refArt string
			var refFPs []string
			for i, w := range workerSet {
				s, err := tc.load()
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.DefaultConfig()
				cfg.Workers = w
				smt.Cex.Reset()
				lib := s.Synthesize(cfg, maxPatterns)
				art := isel.SaveLibraryFor(lib, s.ISA)
				if i == 0 {
					refWorkers, refArt, refFPs = w, art, ruleLines(art)
					continue
				}
				if !slices.Equal(ruleLines(art), refFPs) {
					t.Errorf("Workers=%d: rule fingerprint set differs from Workers=%d (%d vs %d rules)",
						w, refWorkers, len(ruleLines(art)), len(refFPs))
				}
				if art != refArt {
					t.Errorf("Workers=%d: saved artifact is not byte-identical to Workers=%d",
						w, refWorkers)
				}
			}
		})
	}
}
