package core

import "testing"

// TestCacheKeyExcludesCexCap pins that the counterexample cache
// capacity is — like Workers — a pure performance knob: screening is
// verdict-preserving at any capacity, so two configurations differing
// only in CexCap must share an artifact cache key.
func TestCacheKeyExcludesCexCap(t *testing.T) {
	a := DefaultConfig()
	a.CexCap = 1
	b := DefaultConfig()
	b.CexCap = 4096
	if a.CacheKey() != b.CacheKey() {
		t.Errorf("CacheKey depends on CexCap:\n  %s\n  %s", a.CacheKey(), b.CacheKey())
	}
	c := DefaultConfig()
	c.SMTMaxConflicts = a.SMTMaxConflicts * 2
	if a.CacheKey() == c.CacheKey() {
		t.Error("CacheKey ignores SMTMaxConflicts, which does change the library")
	}
}
