package core

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"iselgen/internal/bv"
	"iselgen/internal/canon"
	"iselgen/internal/cost"
	"iselgen/internal/isa"
	"iselgen/internal/obs"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/smt"
	"iselgen/internal/solver"
	"iselgen/internal/spec"
	"iselgen/internal/term"
	"iselgen/internal/trie"
)

// seqVec is the ranking cost of a sequence under the configured model:
// the model vector when Config.CostModel is set, else the paper's
// operand count replicated into both components. All synthesis-time
// orderings (index match order, SMT candidate order, the beneficial-rule
// filter) go through this one helper so they agree on the metric.
func (s *Synthesizer) seqVec(seq *isa.Sequence) cost.Vector {
	if m := s.Cfg.CostModel; m != nil {
		return m.SeqVector(seq)
	}
	c := int64(seq.Cost())
	return cost.Vector{Latency: c, Size: c}
}

// worker holds the per-goroutine state for parallel matching: a private
// term builder, canonicalization context, and SMT checker. The shared
// synthesizer state (pool, index, canon context) is read-only during
// matching.
type worker struct {
	s       *Synthesizer
	wb      *term.Builder
	wcx     *canon.Ctx
	checker *smt.Checker
	ic      *inputCache

	lookupT time.Duration
	probeT  time.Duration
	evalT   time.Duration
	smtT    time.Duration

	// curtailed is set when a cancellation made this worker skip the SMT
	// fallback for at least one pattern, i.e. rules may have been missed.
	curtailed bool

	// probeRun scratch, reused across calls to keep the matcher's hot
	// loop allocation-free, and the sampling counter for its timer.
	probeBinds []probeBinding
	probeVals  []bv.BV
	probeTick  uint64
}

// probeBinding pairs one pattern leaf with the cached test vectors of
// the sequence input it is assigned to.
type probeBinding struct {
	raw   []bv.BV // cached 128-bit test vectors for the sequence input
	leafW int
	opW   int
	slot  int // program value slot, -1 when unused by the term
}

func (s *Synthesizer) newWorker() *worker {
	return &worker{
		s:   s,
		wb:  term.NewBuilder(),
		wcx: canon.NewCtx(),
		ic:  newInputCache(s.Cfg.TestInputs),
		checker: &smt.Checker{
			MaxConflicts: s.Cfg.SMTMaxConflicts,
			Obs:          s.Cfg.Obs,
			Context:      "synthesis",
			// All workers share the process-wide counterexample cache: a
			// refutation discovered for one pattern screens candidates for
			// every other, across goroutines and across runs.
			Cex: smt.Cex,
			// And the process-wide verdict memo: a query settled by any
			// worker — this run, an earlier run, or a replayed journal —
			// answers instantly, guarded by the spec fingerprint.
			Memo:   solver.Shared,
			SpecFP: s.SpecFP,
		},
	}
}

// Synthesize runs stage 2 over the given patterns (most-frequent-first
// ordering is the caller's choice, per §VII-B) and adds discovered rules
// to lib. Patterns are processed in waves of increasing size so that the
// beneficial-rule filter (§VI) can consult the smaller rules.
func (s *Synthesizer) Synthesize(patterns []*pattern.Pattern, lib *rules.Library) {
	s.Stats.Patterns += len(patterns)
	bySize := map[int][]*pattern.Pattern{}
	maxSize := 0
	for _, p := range patterns {
		n := p.Size()
		bySize[n] = append(bySize[n], p)
		if n > maxSize {
			maxSize = n
		}
	}
	tm := obs.Timed(s.Cfg.Obs.TracerOrNil(), "synth/match")
	for size := 1; size <= maxSize; size++ {
		wave := bySize[size]
		if len(wave) == 0 {
			continue
		}
		s.wave(wave, lib)
	}
	tm.Span().SetInt("patterns", int64(len(patterns))).SetInt("max_size", int64(maxSize))
	s.Stats.LookupTime += tm.Done()
}

// SynthesizeCtx runs Synthesize under a context. Cancellation is
// cooperative and degrades gracefully rather than aborting: once the
// context is done, workers skip the expensive SMT fallback (and bail out
// of in-progress candidate enumeration) but keep answering patterns from
// the term index, which is cheap — so a deadline yields a *partial*
// library containing only index-proven rules instead of a hung request.
// Reports whether the run was curtailed (i.e. SMT-provable rules may be
// missing from lib).
func (s *Synthesizer) SynthesizeCtx(ctx context.Context, patterns []*pattern.Pattern, lib *rules.Library) bool {
	s.cancelFn = func() bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
	defer func() { s.cancelFn = nil }()
	s.Stats.Curtailed = false
	s.Synthesize(patterns, lib)
	return s.Stats.Curtailed
}

// cancelled reports whether a SynthesizeCtx deadline has fired.
func (s *Synthesizer) cancelled() bool {
	return s.cancelFn != nil && s.cancelFn()
}

// wave matches one batch of same-size patterns in parallel.
func (s *Synthesizer) wave(wave []*pattern.Pattern, lib *rules.Library) {
	type result struct {
		idx  int
		rule *rules.Rule
	}
	nw := s.Cfg.Workers
	if nw > len(wave) {
		nw = len(wave)
	}
	if nw < 1 {
		nw = 1
	}
	results := make([]result, len(wave))
	var wg sync.WaitGroup
	next := make(chan int, len(wave))
	for i := range wave {
		next <- i
	}
	close(next)
	var mu sync.Mutex
	for k := 0; k < nw; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := s.s_newWorkerLocked(&mu)
			for i := range next {
				r := w.synthesizeOne(wave[i])
				results[i] = result{idx: i, rule: r}
			}
			mu.Lock()
			s.Stats.IndexLookupT += w.lookupT
			s.Stats.ProbeTime += w.probeT
			s.Stats.EvalTime += w.evalT
			s.Stats.SMTTime += w.smtT
			s.Stats.SMTQueries += w.checker.Stats.Queries
			s.Stats.SMTTimeouts += w.checker.Stats.TimedOut
			s.Stats.CexScreens += w.checker.Stats.CexScreens
			s.Stats.CexHits += w.checker.Stats.CexHits
			s.Stats.SMTSkipped += w.checker.Stats.SMTSkipped
			s.Stats.MemoHits += w.checker.Stats.MemoHits
			s.Stats.BitBlasts += w.checker.Stats.BitBlasts
			s.Stats.SATDecisions += w.checker.Stats.Decisions
			s.Stats.SATPropagations += w.checker.Stats.Propagations
			s.Stats.SATConflicts += w.checker.Stats.Conflicts
			s.Stats.SATRestarts += w.checker.Stats.Restarts
			if w.curtailed {
				s.Stats.Curtailed = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, r := range results {
		if r.rule == nil {
			continue
		}
		// Beneficial-rule filter (§VI): a multi-op rule must beat the
		// best cover by smaller rules (under the configured cost metric).
		if r.rule.Pattern.Size() > 1 {
			if cover, ok := s.coverCost(r.rule.Pattern.Root, lib); ok && !s.seqVec(r.rule.Seq).Less(cover) {
				continue
			}
		}
		if r.rule.Source == "index" {
			s.Stats.IndexRules++
		} else {
			s.Stats.SMTRules++
		}
		lib.Add(r.rule)
	}
}

func (s *Synthesizer) s_newWorkerLocked(mu *sync.Mutex) *worker {
	mu.Lock()
	defer mu.Unlock()
	return s.newWorker()
}

// SynthesizeOne synthesizes the best rule for a single pattern (used by
// tests and the tuning experiments); nil when nothing matches.
func (s *Synthesizer) SynthesizeOne(p *pattern.Pattern) *rules.Rule {
	return s.newWorker().synthesizeOne(p)
}

// synthesizeOne wraps the per-pattern flow with observability: a span
// (pattern key, outcome source) and a latency histogram keyed by how the
// rule was found. When no Obs is attached this is a single nil check.
func (w *worker) synthesizeOne(p *pattern.Pattern) *rules.Rule {
	o := w.s.Cfg.Obs
	if o == nil || (o.Trace == nil && o.Metrics == nil) {
		return w.synthesizeOneInner(p)
	}
	sp := o.Trace.Start("synth/pattern")
	t0 := time.Now()
	r := w.synthesizeOneInner(p)
	d := time.Since(t0)
	src := "none"
	if r != nil {
		src = r.Source
	}
	sp.SetStr("pattern", p.Key()).SetStr("source", src).EndWith(d)
	if m := o.Metrics; m != nil {
		m.Histogram("synth_pattern_ns",
			"per-pattern synthesis latency by outcome", "source", src).Observe(d.Nanoseconds())
	}
	return r
}

// synthesizeOneInner implements the per-pattern flow of Fig. 1: index
// lookup (3a/3b), then the evaluation-probed SMT fallback (3c/3d).
func (w *worker) synthesizeOneInner(p *pattern.Pattern) *rules.Rule {
	tp, err := p.Compile(w.wb)
	if err != nil {
		return nil
	}
	// Label this pattern's solver queries: the context rides provenance
	// events and memo entries, joining "why is this rule in the library"
	// to the exact queries that proved (and disproved) its candidates.
	w.checker.Context = "synthesis:" + p.Key()
	leaves := p.Leaves()

	t0 := time.Now()
	var matches []trie.Match
	if !w.s.Cfg.DisableIndex {
		query := w.wcx.Canon(tp)
		matches = w.s.Index.Lookup(query)
	}
	// Cheapest sequences first (model cost when configured). Keys are
	// precomputed: seqCostOf scans every payload, which is far too
	// expensive to re-derive inside the comparator.
	if len(matches) > 1 {
		keys := make([]cost.Vector, len(matches))
		for i := range matches {
			keys[i] = w.seqCostOf(matches[i])
		}
		sort.Sort(&matchesByCost{matches, keys})
	}
	var best *rules.Rule
	for _, m := range matches {
		for _, payload := range m.Payloads {
			entry := payload.(*PoolEntry)
			if r := w.ruleFromBinding(p, tp, leaves, entry, m.Binding); r != nil {
				if best == nil || w.s.seqVec(r.Seq).Less(w.s.seqVec(best.Seq)) {
					best = r
				}
			}
		}
		if best != nil {
			break // matches are cost-sorted; first verified hit is cheapest
		}
	}
	w.lookupT += time.Since(t0)
	if best != nil {
		best.Source = "index"
		return best
	}
	// Deadline hit: keep serving index-proven rules, skip the solver.
	if w.s.cancelled() {
		w.curtailed = true
		return nil
	}
	return w.smtFallback(p, tp, leaves)
}

// matchesByCost sorts matches by precomputed cost keys, keeping the two
// slices aligned.
type matchesByCost struct {
	m    []trie.Match
	keys []cost.Vector
}

func (s *matchesByCost) Len() int           { return len(s.m) }
func (s *matchesByCost) Less(i, j int) bool { return s.keys[i].Less(s.keys[j]) }
func (s *matchesByCost) Swap(i, j int) {
	s.m[i], s.m[j] = s.m[j], s.m[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

func (w *worker) seqCostOf(m trie.Match) cost.Vector {
	min := cost.Vector{Latency: 1 << 40, Size: 1 << 40}
	for _, p := range m.Payloads {
		if c := p.(*PoolEntry).vec; c.Less(min) {
			min = c
		}
	}
	return min
}

// ruleFromBinding converts a unification binding into a verified rule.
func (w *worker) ruleFromBinding(p *pattern.Pattern, tp *term.Term,
	leaves []*pattern.Node, entry *PoolEntry, bind *trie.Binding) *rules.Rule {

	// Resolve bindings into per-sequence-input sources.
	leafByName := map[string]int{}
	for i, l := range leaves {
		leafByName[pattern.LeafName(i, l)] = i
	}
	regTo := map[string]int{} // seq var name -> pattern leaf
	type immInfo struct {
		leaf  int
		embed rules.Embed
		cval  bv.BV
		conly bool
	}
	immTo := map[string]immInfo{}
	for _, rb := range bind.Regs {
		li, ok := leafByName[rb.Query.Var.Name]
		if !ok {
			return nil
		}
		regTo[rb.ISA.Var.Name] = li
	}
	for _, ib := range bind.Imms {
		if ib.PCRel {
			return nil // relocation-dependent; handled by manual rules
		}
		if ib.ISALo != 0 {
			return nil
		}
		embedW := ib.ISAHi - ib.ISALo + 1
		shift, ok := coefShift(ib.CoefQ, ib.CoefI)
		if !ok {
			return nil
		}
		if ib.Query == nil {
			// Constant-bound immediate: must roundtrip through the
			// operand width.
			v := ib.Const
			if v.W() > embedW {
				tr := v.Trunc(embedW)
				if tr.ZExt(v.W()) != v {
					return nil
				}
				v = tr
			} else if v.W() < embedW {
				v = v.ZExt(embedW)
			}
			immTo[ib.ISA.Var.Name] = immInfo{cval: v, conly: true}
			continue
		}
		li, ok := leafByName[ib.Query.Var.Name]
		if !ok {
			return nil
		}
		immTo[ib.ISA.Var.Name] = immInfo{
			leaf:  li,
			embed: rules.Embed{Width: embedW, Shift: shift},
		}
	}

	// Assemble operand sources in sequence-input order; every input must
	// be covered.
	var ops []rules.OperandSource
	for _, in := range entry.Seq.Inputs {
		if in.Op.Kind == spec.OpImm {
			info, ok := immTo[in.Var.Name]
			if !ok {
				return nil
			}
			if info.conly {
				ops = append(ops, rules.OperandSource{Kind: rules.SrcConst, Const: info.cval.ZExt(in.Op.Width)})
			} else {
				em := info.embed
				ops = append(ops, rules.OperandSource{Kind: rules.SrcLeaf, Leaf: info.leaf, Embed: &em})
			}
		} else {
			li, ok := regTo[in.Var.Name]
			if !ok {
				return nil
			}
			ops = append(ops, rules.OperandSource{Kind: rules.SrcLeaf, Leaf: li})
		}
	}

	r := &rules.Rule{Pattern: p, Seq: entry.Seq, Operands: ops, Source: "index"}
	if !w.verify(tp, leaves, entry, r, false) {
		// Retry immediates as sign-extended embeddings.
		if !retrySigned(r) || !w.verify(tp, leaves, entry, r, false) {
			return nil
		}
	}
	return r
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// coefShift interprets the coefficient pair as a power-of-two scaling.
// The coefficients may come from linear combinations of different widths
// (nested unification); compare at the wider width.
func coefShift(coefQ, coefI bv.BV) (int, bool) {
	w := coefQ.W()
	if coefI.W() > w {
		w = coefI.W()
	}
	coefQ, coefI = coefQ.ZExt(w), coefI.ZExt(w)
	if coefQ == coefI {
		return 0, true
	}
	// coefI = coefQ << k  =>  IR constant = ISA imm << k.
	q, r := coefI, coefQ
	if r.IsZero() {
		return 0, false
	}
	div := q.UDiv(r)
	if div.Mul(r) != q {
		return 0, false
	}
	if k, ok := div.IsPow2(); ok {
		return k, true
	}
	return 0, false
}

// retrySigned flips all leaf-immediate embeds to signed; reports whether
// any embed existed.
func retrySigned(r *rules.Rule) bool {
	any := false
	for i := range r.Operands {
		if r.Operands[i].Kind == rules.SrcLeaf && r.Operands[i].Embed != nil {
			em := *r.Operands[i].Embed
			em.Signed = true
			r.Operands[i].Embed = &em
			any = true
		}
	}
	return any
}

// verify checks a candidate rule: the pattern term with immediates
// substituted by their embeddings must equal the sequence effect with
// registers renamed to pattern leaves. Canonical-form comparison proves
// most cases instantly; useSMT additionally consults the solver.
func (w *worker) verify(tp *term.Term, leaves []*pattern.Node, entry *PoolEntry,
	r *rules.Rule, useSMT bool) bool {

	// Substitution for the sequence side.
	seqSubst := map[*term.Term]*term.Term{}
	// Substitution for the pattern side (immediate embeds).
	patSubst := map[*term.Term]*term.Term{}
	for k, in := range entry.Seq.Inputs {
		src := r.Operands[k]
		switch src.Kind {
		case rules.SrcConst:
			seqSubst[in.Var] = w.wb.ConstBV(src.Const)
		case rules.SrcLeaf:
			leaf := leaves[src.Leaf]
			pv := pattern.LeafVar(w.wb, src.Leaf, leaf)
			if src.Embed == nil {
				if in.Op.Width != leaf.Ty.Bits {
					return false
				}
				seqSubst[in.Var] = pv
			} else {
				// Fresh ISA immediate variable e_k.
				e := w.wb.VarT("e"+itoa(k)+"w"+itoa(in.Op.Width), term.KindImm, in.Op.Width)
				seqSubst[in.Var] = e
				useW := src.Embed.Width
				var ev *term.Term = e
				if useW < in.Op.Width {
					ev = w.wb.Trunc(useW, e)
				} else if useW > in.Op.Width {
					return false
				}
				if leaf.Ty.Bits < useW {
					return false
				}
				patSubst[pv] = src.Embed.Term(w.wb, ev, leaf.Ty.Bits)
			}
		}
	}
	teW := w.wb.Rebuild(entry.Effect.T, seqSubst)
	tpW := w.wb.Rebuild(tp, patSubst)
	// Canonical comparison settles most verifications structurally; the
	// no-index ablation disables it so that every proof goes through the
	// solver, as in the paper's "without the index" measurement.
	if !w.s.Cfg.DisableIndex {
		if tpW == teW {
			return true
		}
		if w.wcx.Canon(tpW) == w.wcx.Canon(teW) {
			return true
		}
	}
	if !useSMT {
		return false
	}
	t0 := time.Now()
	res := w.checker.Equiv(w.wb, tpW, teW)
	w.smtT += time.Since(t0)
	return res == smt.Equal
}

// smtFallback implements Fig. 1 steps 3c/3d: filter candidates by
// operand/memory signature, probe the cached test evaluations per
// operand assignment, and verify survivors with the SMT solver, stopping
// at the first match (cheapest-first).
func (w *worker) smtFallback(p *pattern.Pattern, tp *term.Term, leaves []*pattern.Node) *rules.Rule {
	class := ClassValue
	if p.IsStore() {
		class = ClassStore
	}
	var regLeaves, immLeaves []int
	for i, l := range leaves {
		if l.LeafReg {
			regLeaves = append(regLeaves, i)
		} else {
			immLeaves = append(immLeaves, i)
		}
	}
	width := tp.W()
	key := filterKeyOf(class, width, len(regLeaves), len(immLeaves), loadSignature(tp))
	// Buckets are pre-sorted cheapest-first by BuildPool; iteration stops
	// at the first verified match.
	sorted := w.s.byFilter[key]
	if len(sorted) == 0 {
		return nil
	}

	// One incremental SAT session per pattern: successive candidate
	// queries for the same pattern share blasted circuits and learned
	// clauses. Scoping the session to the pattern (not the worker's whole
	// lifetime) keeps the query sequence each session sees deterministic —
	// it depends only on this pattern's candidate order, never on how
	// patterns were distributed across workers.
	w.checker.BeginIncremental()
	defer w.checker.EndIncremental()

	// Compile the pattern term once; the probe then evaluates it on each
	// test vector with no per-evaluation allocation.
	prog := term.Compile(tp)
	leafSlot := resolveLeafSlots(prog, leaves)
	asg := make([]int, len(leaves))

	for _, entry := range sorted {
		// Candidate enumeration can run many solver queries; honor the
		// deadline between entries.
		if w.s.cancelled() {
			w.curtailed = true
			return nil
		}
		var regIns, immIns []int
		for k, in := range entry.Seq.Inputs {
			if in.Op.Kind == spec.OpImm {
				immIns = append(immIns, k)
			} else {
				regIns = append(regIns, k)
			}
		}
		for _, regPerm := range permutations(len(regIns)) {
			for _, immPerm := range permutations(len(immIns)) {
				// asg maps pattern leaf -> seq input index (-1 unassigned);
				// the slice is reused across permutation combinations.
				for i := range asg {
					asg[i] = -1
				}
				ok := true
				for a, b := range regPerm {
					li, ki := regLeaves[a], regIns[b]
					if leaves[li].Ty.Bits != entry.Seq.Inputs[ki].Op.Width {
						ok = false
						break
					}
					asg[li] = ki
				}
				if !ok {
					continue
				}
				for a, b := range immPerm {
					li, ki := immLeaves[a], immIns[b]
					if leaves[li].Ty.Bits < entry.Seq.Inputs[ki].Op.Width {
						ok = false
						break
					}
					asg[li] = ki
				}
				if !ok {
					continue
				}
				if !w.probe(prog, leafSlot, leaves, entry, asg) {
					continue
				}
				if r := w.tryAssignment(p, tp, leaves, entry, asg); r != nil {
					r.Source = "smt"
					return r
				}
			}
		}
	}
	return nil
}

func filterKeyOf(class EffectClass, width, nRegs, nImms int, loadSig string) string {
	var sb strings.Builder
	sb.WriteString(itoa(int(class)))
	sb.WriteByte('|')
	sb.WriteString(itoa(width))
	sb.WriteByte('|')
	sb.WriteString(itoa(nRegs))
	sb.WriteByte('|')
	sb.WriteString(itoa(nImms))
	sb.WriteByte('|')
	sb.WriteString(loadSig)
	return sb.String()
}

// resolveLeafSlots maps each pattern leaf to its variable slot in the
// compiled pattern program (-1 when the leaf's variable does not occur
// in the term). Program variable names are exactly the pattern leaf
// names tp was compiled from.
func resolveLeafSlots(prog *term.Program, leaves []*pattern.Node) []int {
	slotOf := make(map[string]int, len(prog.Vars()))
	for i, v := range prog.Vars() {
		slotOf[v.Name] = i
	}
	out := make([]int, len(leaves))
	for i, l := range leaves {
		if s, ok := slotOf[pattern.LeafName(i, l)]; ok {
			out[i] = s
		} else {
			out[i] = -1
		}
	}
	return out
}

// probeCap bounds how many usable vectors a probe compares before
// accepting a candidate. The probe is purely a performance filter: the
// SMT check remains the decider for every accepted candidate, so the
// cap can only forward more candidates to verification — it can never
// reject one the full scan would have kept, and the synthesized library
// is identical for any cap value.
const probeCap = 32

// probe compares the pattern's evaluations under the assignment against
// the entry's cached evaluations (§V-C). Vectors whose input value is
// not representable in the bound immediate are skipped. The pattern side
// runs as a compiled program; the entry side comes from the lazily
// computed block-wise digest cache, so a probe that rejects on the
// first vector never pays for the remaining ones.
func (w *worker) probe(prog *term.Program, leafSlot []int, leaves []*pattern.Node, entry *PoolEntry, asg []int) bool {
	if w.s.Cfg.DisableProbe {
		return true
	}
	// The probe/eval stage timers are coarse diagnostics, but probe is
	// called often enough that two clock reads per call show up in the
	// profile — so sample one call in eight and scale. Digest extension
	// (the expensive part) still times itself exactly inside digestsUpTo.
	w.probeTick++
	if w.probeTick&7 != 0 {
		return w.probeRun(prog, leafSlot, leaves, entry, asg, &w.evalT)
	}
	t0 := time.Now()
	var evalDur time.Duration
	ok := w.probeRun(prog, leafSlot, leaves, entry, asg, &evalDur)
	w.evalT += evalDur
	w.probeT += (time.Since(t0) - evalDur) * 8
	return ok
}

func (w *worker) probeRun(prog *term.Program, leafSlot []int, leaves []*pattern.Node, entry *PoolEntry, asg []int, evalDur *time.Duration) bool {
	// binds and vals live in worker scratch: probeRun is the innermost
	// hot call of the matcher and a fresh pair of slices per call is
	// measurable GC traffic. vals must still start zeroed — slots no
	// binding writes (constant-bound leaves) read as zero vectors.
	binds := w.probeBinds[:0]
	for li, ki := range asg {
		if ki < 0 {
			continue
		}
		in := entry.Seq.Inputs[ki]
		binds = append(binds, probeBinding{
			raw:   w.ic.vecs(nameHash(in.Var.Name)),
			leafW: leaves[li].Ty.Bits,
			opW:   in.Op.Width,
			slot:  leafSlot[li],
		})
	}
	w.probeBinds = binds
	nv := len(prog.Vars())
	if cap(w.probeVals) < nv {
		w.probeVals = make([]bv.BV, nv)
	}
	vals := w.probeVals[:nv]
	clear(vals)
	evals := entry.digestsUpTo(1, w.ic, evalDur)
	checked := 0
	for j := 0; j < entry.evalN; j++ {
		if j >= len(evals) {
			evals = entry.digestsUpTo(j+1, w.ic, evalDur)
		}
		usable := true
		for _, b := range binds {
			r := b.raw[j]
			v := bv.New128(b.leafW, r.Hi, r.Lo)
			if b.leafW > b.opW {
				// The sequence only saw the low Op.Width bits. To keep
				// the probe sound for both zero- and sign-extended
				// embeddings, only use vectors where the two coincide
				// (narrow value non-negative and round-tripping) —
				// "in cases where an input value cannot be represented
				// in an immediate binding, we ignore the test input".
				narrow := v.Trunc(b.opW)
				if narrow.SignBit() != 0 || narrow.ZExt(b.leafW) != v {
					usable = false
					break
				}
			}
			if b.slot >= 0 {
				vals[b.slot] = v
			}
		}
		if !usable {
			continue
		}
		checked++
		if digest(prog.Run(vals)) != evals[j] {
			return false
		}
		if checked >= probeCap {
			return true
		}
	}
	return checked > 0
}

// tryAssignment builds embed candidates for an assignment and verifies
// them with the SMT solver.
func (w *worker) tryAssignment(p *pattern.Pattern, tp *term.Term,
	leaves []*pattern.Node, entry *PoolEntry, asg []int) *rules.Rule {

	inv := make([]int, len(entry.Seq.Inputs)) // seq input index -> pattern leaf
	for i := range inv {
		inv[i] = -1
	}
	for li, ki := range asg {
		if ki >= 0 {
			inv[ki] = li
		}
	}
	var ops []rules.OperandSource
	hasImm := false
	for k, in := range entry.Seq.Inputs {
		li := inv[k]
		if li < 0 {
			return nil
		}
		src := rules.OperandSource{Kind: rules.SrcLeaf, Leaf: li}
		if in.Op.Kind == spec.OpImm {
			hasImm = true
			// Sign-extension heuristic (§V-C): prefer sext when the
			// sequence term sign-extends its immediate.
			signed := immLooksSigned(entry.Effect.T, in.Var)
			src.Embed = &rules.Embed{Width: in.Op.Width, Signed: signed}
		}
		ops = append(ops, src)
	}
	r := &rules.Rule{Pattern: p, Seq: entry.Seq, Operands: ops}
	if w.verify(tp, leaves, entry, r, true) {
		return r
	}
	if hasImm {
		// Flip the extension guess and retry once.
		for i := range r.Operands {
			if r.Operands[i].Embed != nil {
				em := *r.Operands[i].Embed
				em.Signed = !em.Signed
				r.Operands[i].Embed = &em
			}
		}
		if w.verify(tp, leaves, entry, r, true) {
			return r
		}
	}
	return nil
}

// immLooksSigned applies the paper's sign heuristic: the immediate is
// treated as sign-extended when the instruction's formula sign-extends
// it (the DSL analog of "the sign bit is accessed more than five times").
func immLooksSigned(t *term.Term, immVar *term.Term) bool {
	found := false
	seen := map[*term.Term]bool{}
	var walk func(*term.Term)
	walk = func(u *term.Term) {
		if found || seen[u] {
			return
		}
		seen[u] = true
		if u.Op == term.SExt && u.Args[0] == immVar {
			found = true
			return
		}
		if u.Op == term.Extract && u.Args[0] == immVar && u.Aux0 == int32(immVar.W()-1) {
			found = true
			return
		}
		for _, a := range u.Args {
			walk(a)
		}
	}
	walk(t)
	return found
}

// permTable holds the permutations of [0,n) for every n the fallback
// can ask for; the fallback requests them once per candidate entry, so
// they are enumerated a single time at init. Callers must not mutate
// the returned slices.
var permTable = func() [6][][]int {
	var t [6][][]int
	for n := 0; n < 6; n++ {
		t[n] = enumPerms(n)
	}
	return t
}()

// permutations returns the permutations of [0,n); n is small (operand
// counts are below five in practice, as the paper notes).
func permutations(n int) [][]int {
	if n > 5 {
		n = 5 // defensive cap; no real instruction has more inputs
	}
	return permTable[n]
}

func enumPerms(n int) [][]int {
	if n == 0 {
		return [][]int{nil}
	}
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

// coverCost computes the cheapest cover of a pattern by existing
// single-operation rules (§VI's beneficial-rule check), under the
// synthesizer's cost metric — recomputed from each rule's sequence so
// the comparison never mixes stamped and unstamped scales.
func (s *Synthesizer) coverCost(n *pattern.Node, lib *rules.Library) (cost.Vector, bool) {
	if n.IsLeaf() {
		return cost.Vector{}, true
	}
	args := make([]*pattern.Node, len(n.Args))
	for i, a := range n.Args {
		if a.IsLeaf() {
			args[i] = a
		} else {
			args[i] = pattern.Leaf(a.Ty)
		}
	}
	single := pattern.New(&pattern.Node{Op: n.Op, Ty: n.Ty, Pred: n.Pred,
		MemBits: n.MemBits, Args: args})
	r := lib.Lookup(single.Key())
	if r == nil {
		return cost.Vector{}, false
	}
	total := s.seqVec(r.Seq)
	for _, a := range n.Args {
		if a.IsLeaf() {
			continue
		}
		c, ok := s.coverCost(a, lib)
		if !ok {
			return cost.Vector{}, false
		}
		total = total.Add(c)
	}
	return total, true
}
