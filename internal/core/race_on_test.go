//go:build race

package core_test

// raceEnabled mirrors the race detector's build tag so heavyweight
// stress tests can trim their matrices under -race.
const raceEnabled = true
