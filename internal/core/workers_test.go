package core

import (
	"runtime"
	"testing"
)

// TestDefaultWorkersDerivation pins the Workers default contract: the
// machine's CPU count, overridable by ISEL_WORKERS, overridable in turn
// by a positive flag value through ResolveWorkers.
func TestDefaultWorkersDerivation(t *testing.T) {
	t.Setenv("ISEL_WORKERS", "")
	if got := DefaultWorkers(); got != runtime.NumCPU() {
		t.Errorf("DefaultWorkers() = %d, want NumCPU = %d", got, runtime.NumCPU())
	}
	if got := DefaultConfig().Workers; got != runtime.NumCPU() {
		t.Errorf("DefaultConfig().Workers = %d, want NumCPU = %d", got, runtime.NumCPU())
	}

	t.Setenv("ISEL_WORKERS", "5")
	if got := DefaultWorkers(); got != 5 {
		t.Errorf("with ISEL_WORKERS=5, DefaultWorkers() = %d", got)
	}
	if got := ResolveWorkers(0); got != 5 {
		t.Errorf("with ISEL_WORKERS=5, ResolveWorkers(0) = %d", got)
	}
	if got := ResolveWorkers(3); got != 3 {
		t.Errorf("flag must beat env: ResolveWorkers(3) = %d", got)
	}

	t.Setenv("ISEL_WORKERS", "not-a-number")
	if got := DefaultWorkers(); got != runtime.NumCPU() {
		t.Errorf("malformed ISEL_WORKERS must fall back to NumCPU, got %d", got)
	}
	t.Setenv("ISEL_WORKERS", "-2")
	if got := DefaultWorkers(); got != runtime.NumCPU() {
		t.Errorf("non-positive ISEL_WORKERS must fall back to NumCPU, got %d", got)
	}
}

// TestCacheKeyExcludesWorkers pins that the worker count is purely a
// scheduling knob: two configurations differing only in Workers must
// share an artifact cache key, because they produce identical libraries.
func TestCacheKeyExcludesWorkers(t *testing.T) {
	a := DefaultConfig()
	a.Workers = 1
	b := DefaultConfig()
	b.Workers = 64
	if a.CacheKey() != b.CacheKey() {
		t.Errorf("CacheKey depends on Workers:\n  %s\n  %s", a.CacheKey(), b.CacheKey())
	}
	c := DefaultConfig()
	c.TestInputs = a.TestInputs * 2
	if a.CacheKey() == c.CacheKey() {
		t.Error("CacheKey ignores TestInputs, which does change the library")
	}
}
