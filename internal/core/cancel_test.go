package core

import (
	"context"
	"testing"

	"iselgen/internal/gmir"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
)

// cancelPats is a batch containing both index-provable shapes and
// shapes that need the SMT fallback (or-not has no direct mini
// instruction; it requires the ORNrr candidate search).
func cancelPats() []*pattern.Pattern {
	return []*pattern.Pattern{
		pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(), r64())),
		pattern.New(pattern.Op(gmir.GSub, gmir.S64, r64(), r64())),
		pattern.New(pattern.Op(gmir.GMul, gmir.S64, r64(), r64())),
		pattern.New(pattern.Op(gmir.GShl, gmir.S64, r64(), i64())),
		pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(),
			pattern.Op(gmir.GShl, gmir.S64, r64(), i64()))),
		pattern.New(pattern.Op(gmir.GOr, gmir.S64, r64(),
			pattern.Op(gmir.GXor, gmir.S64, r64(), i64()))),
	}
}

// TestSynthesizeCtxExpiredDeadline checks the graceful-degradation
// contract: an already-expired context yields a partial library whose
// rules are all index-proven — the solver is never consulted.
func TestSynthesizeCtxExpiredDeadline(t *testing.T) {
	s, _ := miniSynth(t, Config{TestInputs: 32, Workers: 2})
	lib := rules.NewLibrary("mini")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	curtailed := s.SynthesizeCtx(ctx, cancelPats(), lib)
	if !curtailed {
		t.Fatal("expired context did not report a curtailed run")
	}
	if !s.Stats.Curtailed {
		t.Error("Stats.Curtailed not set")
	}
	if s.Stats.SMTQueries != 0 {
		t.Errorf("SMT consulted %d times under an expired deadline", s.Stats.SMTQueries)
	}
	for _, r := range lib.Rules {
		if r.Source != "index" {
			t.Errorf("partial library contains non-index rule %s (source %s)", r.Seq, r.Source)
		}
	}
	// The cheap index path still works: simple arithmetic must be found.
	if lib.Lookup(cancelPats()[0].Key()) == nil {
		t.Error("index-proven add rule missing from partial library")
	}
}

// TestSynthesizeCtxNoDeadline checks that an unexpired context changes
// nothing relative to the plain entry point.
func TestSynthesizeCtxNoDeadline(t *testing.T) {
	s1, _ := miniSynth(t, Config{TestInputs: 32, Workers: 2})
	lib1 := rules.NewLibrary("mini")
	if curtailed := s1.SynthesizeCtx(context.Background(), cancelPats(), lib1); curtailed {
		t.Fatal("background context reported curtailed")
	}

	s2, _ := miniSynth(t, Config{TestInputs: 32, Workers: 2})
	lib2 := rules.NewLibrary("mini")
	s2.Synthesize(cancelPats(), lib2)

	if lib1.Len() != lib2.Len() {
		t.Errorf("ctx run found %d rules, plain run %d", lib1.Len(), lib2.Len())
	}
	if lib1.Len() <= 2 {
		t.Errorf("suspiciously small library: %d rules", lib1.Len())
	}
}
