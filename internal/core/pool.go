// Package core implements the paper's contribution: synthesis of an
// instruction selection rule library by memoizing the most relevant IR
// patterns and their cheapest matching instruction sequences (Fig. 1).
//
// Stage 1 (this file) preprocesses the ISA into a pool: instruction
// sequences are enumerated under the composition rules of §IV-A, their
// primary effects canonicalized (§V-B1) and inserted into the term index
// (§V-B2), and their test-input evaluations cached (§V-C).
//
// Stage 2 (synth.go) queries the pool for each IR pattern: index lookup
// with unification first, then the evaluation-probed SMT fallback.
package core

import (
	"fmt"
	"time"

	"iselgen/internal/bv"
	"iselgen/internal/canon"
	"iselgen/internal/cost"
	"iselgen/internal/isa"
	"iselgen/internal/obs"
	"iselgen/internal/spec"
	"iselgen/internal/term"
	"iselgen/internal/trie"
)

// Config controls the synthesis.
type Config struct {
	// TestInputs is the number of cached sample evaluations per sequence
	// (paper Fig. 8 picks ~400 at full scale; the default here is tuned
	// to this reproduction's pool sizes).
	TestInputs int
	// MaxSeqLen bounds enumerated sequence length (paper §VII-A: 2, with
	// hand-added longer special forms).
	MaxSeqLen int
	// SMTMaxConflicts is the per-query solver budget (the 500 ms timeout
	// analog).
	SMTMaxConflicts int64
	// Workers parallelizes pattern matching (paper: 60 threads).
	Workers int
	// ExtraSequences contributes target-specific longer sequences (the
	// §VII-A length-3 zero-extension chains and length-4 immediate
	// materializations).
	ExtraSequences func(b *term.Builder, t *isa.Target) []*isa.Sequence
	// MaxPairBases optionally caps how many base sequences are extended
	// to pairs (0 = no cap) — used by tuning experiments.
	MaxPairBases int
	// DisableIndex skips the term-index lookup so every pattern takes the
	// SMT fallback path — the paper's "without the index" ablation.
	DisableIndex bool
	// DisableProbe disables the test-evaluation candidate filter so every
	// filtered candidate goes straight to the solver — the paper's
	// "without sample evaluation" ablation (which did not terminate at
	// their scale).
	DisableProbe bool
	// PoolFilter, when set, restricts stage 1 to the sequences it accepts:
	// enumeration still runs (it is cheap), but rejected sequences skip
	// canonicalization, test evaluation, and index insertion. The
	// incremental planner uses it to build a reduced pool containing only
	// sequences that touch changed instructions.
	PoolFilter func(*isa.Sequence) bool
	// CostModel, when set, ranks candidate sequences (index matches, SMT
	// fallback order) and the beneficial-rule filter by model cost
	// (latency cycles, then encoding bytes) instead of the paper's
	// operand-count metric. Callers that pass a model here should set the
	// same table as the target library's Model so stamped rule costs and
	// synthesis-time ranking agree. Its Version is part of CacheKey.
	CostModel *cost.Table
	// Selector names the selection engine artifacts produced under this
	// configuration are served to ("greedy" when empty, or "optimal").
	// Selection happens after synthesis, but the knob is part of CacheKey
	// so cached responses and artifacts are never shared across selector
	// configurations (the service keys its caches on it).
	Selector string
	// Obs, when set, receives stage/pattern spans, latency histograms,
	// and SMT decision-provenance events from the synthesis run. Purely
	// observational — never part of CacheKey (it cannot change which
	// rules are produced), and nil costs only a pointer check on the hot
	// path.
	Obs *obs.Obs
}

// EffSelector normalizes the Selector knob ("greedy" when unset).
func (c Config) EffSelector() string {
	if c.Selector == "" {
		return "greedy"
	}
	return c.Selector
}

// CacheKey renders the configuration knobs that influence *which rules*
// a synthesis run produces, for content-addressed caching of rule
// libraries. Every knob that changes the output must appear here —
// TestInputs steers the probe filter (and thus which candidates reach
// the solver), MaxSeqLen/MaxPairBases change the pool, SMTMaxConflicts
// changes which equivalences the solver proves before timing out, and
// the ablation switches change whole code paths. CostModel changes rule
// ranking (its content hash stands in for the table), and Selector —
// while post-synthesis — is included so artifacts and responses cached
// under one selection engine are never served to the other. Workers is
// deliberately excluded: it parallelizes matching without affecting the
// result.
func (c Config) CacheKey() string {
	norm := c
	if norm.TestInputs == 0 {
		norm.TestInputs = DefaultConfig().TestInputs
	}
	if norm.MaxSeqLen == 0 {
		norm.MaxSeqLen = 2
	}
	if norm.SMTMaxConflicts == 0 {
		norm.SMTMaxConflicts = DefaultConfig().SMTMaxConflicts
	}
	extra := "-"
	if norm.ExtraSequences != nil {
		extra = "+" // presence only; callers pass target-determined extras
	}
	filter := "-"
	if norm.PoolFilter != nil {
		filter = "+" // a filtered pool produces a different (partial) library
	}
	return fmt.Sprintf("inputs=%d|seqlen=%d|conflicts=%d|pairbases=%d|noindex=%t|noprobe=%t|extra=%s|filter=%s|cost=%s|sel=%s",
		norm.TestInputs, norm.MaxSeqLen, norm.SMTMaxConflicts, norm.MaxPairBases,
		norm.DisableIndex, norm.DisableProbe, extra, filter,
		norm.CostModel.Version(), norm.EffSelector())
}

// DefaultConfig returns the settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		TestInputs:      128,
		MaxSeqLen:       2,
		SMTMaxConflicts: 60000,
		Workers:         8,
	}
}

// EffectClass distinguishes what a pool entry (or pattern) computes.
type EffectClass int

// Effect classes.
const (
	ClassValue EffectClass = iota // a register result
	ClassStore                    // a memory store
)

// PoolEntry is one indexed instruction sequence with its primary effect.
type PoolEntry struct {
	Seq    *isa.Sequence
	Effect spec.Effect
	Class  EffectClass
	CT     *canon.CTerm
	// filter signature (§V-C candidate elimination).
	NRegs, NImms int
	LoadSig      string
	Width        int
	evals        []uint64 // per-test-vector digests
	evalSkip     []bool   // vector unusable (e.g. division timeout-ish cases never occur; reserved)
}

// Stats aggregates stage timings and counters for Table II.
type Stats struct {
	Sequences    int
	IndexEntries int
	InstrGenTime time.Duration
	CanonTime    time.Duration
	EvalTime     time.Duration
	InsertTime   time.Duration

	Patterns     int
	LookupTime   time.Duration
	IndexLookupT time.Duration
	ProbeTime    time.Duration
	SMTTime      time.Duration
	IndexRules   int
	SMTRules     int
	SMTQueries   int64
	SMTTimeouts  int64
	// SAT-core work summed over every solver query of the run — the
	// per-query distribution is in the provenance log; these totals ride
	// the Table II snapshot (and /v1/metrics) so solver effort is visible
	// without tracing enabled.
	SATDecisions    int64
	SATPropagations int64
	SATConflicts    int64
	SATRestarts     int64
	// Curtailed records that a SynthesizeCtx deadline fired mid-run, so
	// the produced library is partial: SMT-provable rules may be missing.
	Curtailed bool
}

// StageStats is the JSON-friendly snapshot of Stats, the per-stage
// synthesis breakdown of Table II lifted from the worker timers. All
// durations are nanoseconds so that even sub-millisecond stages survive
// serialization; counters sum across runs when aggregated.
type StageStats struct {
	Sequences    int   `json:"sequences"`
	IndexEntries int   `json:"index_entries"`
	Patterns     int   `json:"patterns"`
	IndexRules   int   `json:"index_rules"`
	SMTRules     int   `json:"smt_rules"`
	SMTQueries   int64 `json:"smt_queries"`
	SMTTimeouts  int64 `json:"smt_timeouts"`

	SATDecisions    int64 `json:"sat_decisions"`
	SATPropagations int64 `json:"sat_propagations"`
	SATConflicts    int64 `json:"sat_conflicts"`
	SATRestarts     int64 `json:"sat_restarts"`

	InstrGenNS    int64 `json:"instr_gen_ns"`
	CanonNS       int64 `json:"canonicalize_ns"`
	EvalNS        int64 `json:"test_eval_ns"`
	InsertNS      int64 `json:"index_insert_ns"`
	LookupWallNS  int64 `json:"lookup_wall_ns"`
	IndexLookupNS int64 `json:"index_lookup_cpu_ns"`
	ProbeNS       int64 `json:"probe_cpu_ns"`
	SMTNS         int64 `json:"smt_cpu_ns"`
}

// Snapshot converts the internal stage timers into the exported form.
func (st *Stats) Snapshot() StageStats {
	return StageStats{
		Sequences:       st.Sequences,
		IndexEntries:    st.IndexEntries,
		Patterns:        st.Patterns,
		IndexRules:      st.IndexRules,
		SMTRules:        st.SMTRules,
		SMTQueries:      st.SMTQueries,
		SMTTimeouts:     st.SMTTimeouts,
		SATDecisions:    st.SATDecisions,
		SATPropagations: st.SATPropagations,
		SATConflicts:    st.SATConflicts,
		SATRestarts:     st.SATRestarts,
		InstrGenNS:      st.InstrGenTime.Nanoseconds(),
		CanonNS:         st.CanonTime.Nanoseconds(),
		EvalNS:          st.EvalTime.Nanoseconds(),
		InsertNS:        st.InsertTime.Nanoseconds(),
		LookupWallNS:    st.LookupTime.Nanoseconds(),
		IndexLookupNS:   st.IndexLookupT.Nanoseconds(),
		ProbeNS:         st.ProbeTime.Nanoseconds(),
		SMTNS:           st.SMTTime.Nanoseconds(),
	}
}

// Accumulate sums another snapshot into this one (service-level metric
// aggregation across synthesis runs).
func (ss *StageStats) Accumulate(o StageStats) {
	ss.Sequences += o.Sequences
	ss.IndexEntries += o.IndexEntries
	ss.Patterns += o.Patterns
	ss.IndexRules += o.IndexRules
	ss.SMTRules += o.SMTRules
	ss.SMTQueries += o.SMTQueries
	ss.SMTTimeouts += o.SMTTimeouts
	ss.SATDecisions += o.SATDecisions
	ss.SATPropagations += o.SATPropagations
	ss.SATConflicts += o.SATConflicts
	ss.SATRestarts += o.SATRestarts
	ss.InstrGenNS += o.InstrGenNS
	ss.CanonNS += o.CanonNS
	ss.EvalNS += o.EvalNS
	ss.InsertNS += o.InsertNS
	ss.LookupWallNS += o.LookupWallNS
	ss.IndexLookupNS += o.IndexLookupNS
	ss.ProbeNS += o.ProbeNS
	ss.SMTNS += o.SMTNS
}

// Synthesizer holds the shared, read-only-after-build synthesis state.
type Synthesizer struct {
	B      *term.Builder
	CX     *canon.Ctx
	Target *isa.Target
	Index  *trie.Index
	Pool   []*PoolEntry
	// byFilter groups entries for the SMT-fallback candidate filter.
	byFilter map[string][]*PoolEntry
	Cfg      Config
	Stats    Stats
	// cancelFn, when set by SynthesizeCtx, lets workers observe a
	// deadline cooperatively (set before workers spawn, cleared after
	// they join).
	cancelFn func() bool
}

// New creates a synthesizer for a target. The target must have been
// loaded into b.
func New(b *term.Builder, target *isa.Target, cfg Config) *Synthesizer {
	if cfg.TestInputs == 0 {
		cfg.TestInputs = DefaultConfig().TestInputs
	}
	if cfg.MaxSeqLen == 0 {
		cfg.MaxSeqLen = 2
	}
	if cfg.Workers == 0 {
		cfg.Workers = DefaultConfig().Workers
	}
	if cfg.SMTMaxConflicts == 0 {
		cfg.SMTMaxConflicts = DefaultConfig().SMTMaxConflicts
	}
	return &Synthesizer{
		B:        b,
		CX:       canon.NewCtx(),
		Target:   target,
		Index:    trie.New(),
		byFilter: map[string][]*PoolEntry{},
		Cfg:      cfg,
	}
}

// BuildPool runs stage 1: sequence enumeration, canonicalization, test
// evaluation, and index insertion. Stage durations are read once each
// (obs.Timed): the same measurement feeds both Stats and the trace, so
// the Table II numbers and the exported spans can never drift.
func (s *Synthesizer) BuildPool() {
	tr := s.Cfg.Obs.TracerOrNil()
	sp := tr.Start("synth/pool")
	tm := obs.Timed(tr, "pool/enumerate")
	seqs := s.enumerate()
	s.Stats.InstrGenTime = tm.Done()
	s.Stats.Sequences = len(seqs)

	esp := tr.Start("pool/entries")
	for _, seq := range seqs {
		s.addEntry(seq)
	}
	esp.SetInt("canonicalize_ns", s.Stats.CanonTime.Nanoseconds()).
		SetInt("test_eval_ns", s.Stats.EvalTime.Nanoseconds()).
		SetInt("index_insert_ns", s.Stats.InsertTime.Nanoseconds()).
		End()
	sp.SetInt("sequences", int64(s.Stats.Sequences)).
		SetInt("index_entries", int64(s.Stats.IndexEntries)).
		End()
}

// enumerate lists candidate sequences: singles, wired/flag-consuming
// pairs, and target extras.
func (s *Synthesizer) enumerate() []*isa.Sequence {
	var out []*isa.Sequence
	var bases []*isa.Sequence
	for _, inst := range s.Target.Insts {
		seq := isa.Single(s.B, inst)
		out = append(out, seq)
		bases = append(bases, seq)
		// Flag-setting instructions with an immediate also enter the
		// pool with the immediate bound to zero: compare-against-zero is
		// its own idiom (cmp x, #0) whose flag terms simplify in ways
		// structural unification cannot see with a free immediate.
		if writesFlags(seq) {
			zeroed := seq
			ok := true
			for k, op := range inst.Operands {
				if op.Kind != spec.OpImm {
					continue
				}
				z, err := isa.BindImm(s.B, zeroed, 0, op.Name, bvZero(op.Width))
				if err != nil {
					ok = false
					break
				}
				zeroed = z
				_ = k
			}
			if ok && zeroed != seq {
				bases = append(bases, zeroed)
			}
		}
	}
	if s.Cfg.MaxSeqLen >= 2 {
		nb := len(bases)
		if s.Cfg.MaxPairBases > 0 && s.Cfg.MaxPairBases < nb {
			nb = s.Cfg.MaxPairBases
		}
		for _, base := range bases[:nb] {
			for _, inst := range s.Target.Insts {
				if !base.CanAppend(inst) {
					continue
				}
				// Wire each width-compatible register operand.
				prevW := resultWidth(base)
				for _, op := range inst.Operands {
					if op.Kind == spec.OpImm || op.Width != prevW {
						continue
					}
					if seq, err := isa.Append(s.B, base, inst, []string{op.Name}, false); err == nil {
						out = append(out, seq)
					}
				}
				// Flag-consuming composition (cmp+csel chains, §VI-A).
				if readsFlags(inst) && writesFlags(base) {
					if seq, err := isa.Append(s.B, base, inst, nil, true); err == nil {
						out = append(out, seq)
					}
				}
			}
		}
	}
	if s.Cfg.ExtraSequences != nil {
		out = append(out, s.Cfg.ExtraSequences(s.B, s.Target)...)
	}
	return out
}

// bvZero builds a zero immediate of the given width.
func bvZero(w int) bv.BV { return bv.Zero(w) }

func resultWidth(seq *isa.Sequence) int {
	for _, e := range seq.Effects {
		if e.Kind == spec.EffReg && e.Dest == "rd" {
			return e.T.W()
		}
	}
	return 0
}

func readsFlags(inst *isa.Instruction) bool {
	for _, e := range inst.Effects {
		for _, v := range e.T.Vars() {
			if v.Kind == term.KindFlag {
				return true
			}
		}
	}
	return false
}

func writesFlags(seq *isa.Sequence) bool {
	for _, e := range seq.Effects {
		if e.Kind == spec.EffFlag {
			return true
		}
	}
	return false
}

// addEntry canonicalizes, evaluates, and indexes one sequence's primary
// effect.
func (s *Synthesizer) addEntry(seq *isa.Sequence) {
	if s.Cfg.PoolFilter != nil && !s.Cfg.PoolFilter(seq) {
		return
	}
	eff, class, ok := primaryEffect(seq)
	if !ok {
		return
	}
	// Sequences with unconsumed flag or PC inputs cannot match IR
	// patterns (IR has neither); they only exist as composition bases.
	for _, in := range seq.Inputs {
		if in.Flags || in.Var.Kind == term.KindPC {
			return
		}
	}
	for _, v := range eff.T.Vars() {
		if v.Kind == term.KindFlag || v.Kind == term.KindPC {
			return
		}
	}

	e := &PoolEntry{Seq: seq, Effect: eff, Class: class, Width: eff.T.W()}
	for _, in := range seq.Inputs {
		if in.Op.Kind == spec.OpImm {
			e.NImms++
		} else {
			e.NRegs++
		}
	}
	e.LoadSig = loadSignature(eff.T)

	t0 := time.Now()
	e.CT = s.CX.Canon(eff.T)
	s.Stats.CanonTime += time.Since(t0)

	t0 = time.Now()
	e.evals = evalDigests(eff.T, s.Cfg.TestInputs)
	s.Stats.EvalTime += time.Since(t0)

	t0 = time.Now()
	s.Index.Insert(e.CT, e)
	s.Stats.InsertTime += time.Since(t0)
	s.Stats.IndexEntries++

	s.Pool = append(s.Pool, e)
	s.byFilter[e.filterKey()] = append(s.byFilter[e.filterKey()], e)
}

// primaryEffect picks the effect a rule would match: the register result
// for value sequences, the store for store sequences. Sequences with
// extra visible effects (write-backs, PC updates, live flag outputs are
// fine — flags are simply clobbered, like LLVM's implicit-def NZCV) are
// still indexed by their primary effect; write-backs and PC effects are
// not matchable and are skipped.
func primaryEffect(seq *isa.Sequence) (spec.Effect, EffectClass, bool) {
	var reg, mem *spec.Effect
	for i := range seq.Effects {
		e := &seq.Effects[i]
		switch e.Kind {
		case spec.EffPC, spec.EffWB:
			return spec.Effect{}, 0, false
		case spec.EffReg:
			if e.Dest == "rd" && reg == nil {
				reg = e
			} else {
				return spec.Effect{}, 0, false // rd2: multi-output
			}
		case spec.EffMem:
			if mem != nil {
				return spec.Effect{}, 0, false
			}
			mem = e
		}
	}
	switch {
	case reg != nil && mem == nil:
		return *reg, ClassValue, true
	case mem != nil && reg == nil:
		return *mem, ClassStore, true
	}
	return spec.Effect{}, 0, false
}

// loadSignature summarizes load widths for the candidate filter.
func loadSignature(t *term.Term) string {
	loads := t.Loads()
	sig := ""
	for _, l := range loads {
		sig += fmt.Sprintf("l%d;", l.W())
	}
	return sig
}

func (e *PoolEntry) filterKey() string {
	return fmt.Sprintf("%d|%d|%d|%d|%s", e.Class, e.Width, e.NRegs, e.NImms, e.LoadSig)
}

// --- deterministic test inputs (§V-C) ---

// rawInput produces the fixed 128-bit random input for test vector j and
// variable name. Values are keyed by name (not position) so pattern-side
// probing can reproduce exactly the value a sequence variable received.
func rawInput(j int, name string) (hi, lo uint64) {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	rng := bv.NewRNG(h ^ uint64(j)*0x9e3779b97f4a7c15)
	v := rng.BV(128)
	return v.Hi, v.Lo
}

// InputFor returns the test value for vector j, variable name, width w.
func InputFor(j int, name string, w int) bv.BV {
	hi, lo := rawInput(j, name)
	return bv.New128(w, hi, lo)
}

// digest reduces an evaluation result to 64 bits for compact caching.
func digest(v bv.BV) uint64 {
	x := v.Lo ^ (v.Hi * 0x9e3779b97f4a7c15) ^ uint64(v.Width)<<56
	x ^= x >> 29
	return x
}

// evalDigests evaluates a term on the fixed test vectors.
func evalDigests(t *term.Term, n int) []uint64 {
	vars := t.Vars()
	out := make([]uint64, n)
	env := term.NewEnv()
	for j := 0; j < n; j++ {
		for _, v := range vars {
			env.Bind(v.Name, InputFor(j, v.Name, v.W()))
		}
		out[j] = digest(t.Eval(env))
	}
	return out
}
