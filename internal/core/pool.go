// Package core implements the paper's contribution: synthesis of an
// instruction selection rule library by memoizing the most relevant IR
// patterns and their cheapest matching instruction sequences (Fig. 1).
//
// Stage 1 (this file) preprocesses the ISA into a pool: instruction
// sequences are enumerated under the composition rules of §IV-A, their
// primary effects canonicalized (§V-B1) and inserted into the term index
// (§V-B2), and their test-input evaluations cached (§V-C).
//
// Stage 2 (synth.go) queries the pool for each IR pattern: index lookup
// with unification first, then the evaluation-probed SMT fallback.
package core

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"iselgen/internal/bv"
	"iselgen/internal/canon"
	"iselgen/internal/cost"
	"iselgen/internal/isa"
	"iselgen/internal/obs"
	"iselgen/internal/rules"
	"iselgen/internal/smt"
	"iselgen/internal/spec"
	"iselgen/internal/term"
	"iselgen/internal/trie"
)

// Config controls the synthesis.
type Config struct {
	// TestInputs is the number of cached sample evaluations per sequence
	// (paper Fig. 8 picks ~400 at full scale; the default here is tuned
	// to this reproduction's pool sizes).
	TestInputs int
	// MaxSeqLen bounds enumerated sequence length (paper §VII-A: 2, with
	// hand-added longer special forms).
	MaxSeqLen int
	// SMTMaxConflicts is the per-query solver budget (the 500 ms timeout
	// analog).
	SMTMaxConflicts int64
	// Workers parallelizes pattern matching (paper: 60 threads).
	Workers int
	// ExtraSequences contributes target-specific longer sequences (the
	// §VII-A length-3 zero-extension chains and length-4 immediate
	// materializations).
	ExtraSequences func(b *term.Builder, t *isa.Target) []*isa.Sequence
	// MaxPairBases optionally caps how many base sequences are extended
	// to pairs (0 = no cap) — used by tuning experiments.
	MaxPairBases int
	// DisableIndex skips the term-index lookup so every pattern takes the
	// SMT fallback path — the paper's "without the index" ablation.
	DisableIndex bool
	// DisableProbe disables the test-evaluation candidate filter so every
	// filtered candidate goes straight to the solver — the paper's
	// "without sample evaluation" ablation (which did not terminate at
	// their scale).
	DisableProbe bool
	// PoolFilter, when set, restricts stage 1 to the sequences it accepts:
	// enumeration still runs (it is cheap), but rejected sequences skip
	// canonicalization, test evaluation, and index insertion. The
	// incremental planner uses it to build a reduced pool containing only
	// sequences that touch changed instructions.
	PoolFilter func(*isa.Sequence) bool
	// CostModel, when set, ranks candidate sequences (index matches, SMT
	// fallback order) and the beneficial-rule filter by model cost
	// (latency cycles, then encoding bytes) instead of the paper's
	// operand-count metric. Callers that pass a model here should set the
	// same table as the target library's Model so stamped rule costs and
	// synthesis-time ranking agree. Its Version is part of CacheKey.
	CostModel *cost.Table
	// Selector names the selection engine artifacts produced under this
	// configuration are served to ("greedy" when empty, or "optimal").
	// Selection happens after synthesis, but the knob is part of CacheKey
	// so cached responses and artifacts are never shared across selector
	// configurations (the service keys its caches on it).
	Selector string
	// CexCap, when positive, rebounds the process-wide counterexample
	// cache (smt.Cex) when the synthesizer is constructed. Like Workers
	// it is a pure performance knob — screening is verdict-preserving at
	// any capacity — so it is excluded from CacheKey. CLIs thread their
	// -cex-cache flag through smt.ResolveCexCap (flag > ISEL_CEX_CACHE
	// env > default).
	CexCap int
	// Obs, when set, receives stage/pattern spans, latency histograms,
	// and SMT decision-provenance events from the synthesis run. Purely
	// observational — never part of CacheKey (it cannot change which
	// rules are produced), and nil costs only a pointer check on the hot
	// path.
	Obs *obs.Obs
}

// EffSelector normalizes the Selector knob ("greedy" when unset).
func (c Config) EffSelector() string {
	if c.Selector == "" {
		return "greedy"
	}
	return c.Selector
}

// CacheKey renders the configuration knobs that influence *which rules*
// a synthesis run produces, for content-addressed caching of rule
// libraries. Every knob that changes the output must appear here —
// TestInputs steers the probe filter (and thus which candidates reach
// the solver), MaxSeqLen/MaxPairBases change the pool, SMTMaxConflicts
// changes which equivalences the solver proves before timing out, and
// the ablation switches change whole code paths. CostModel changes rule
// ranking (its content hash stands in for the table), and Selector —
// while post-synthesis — is included so artifacts and responses cached
// under one selection engine are never served to the other. Workers and
// CexCap are deliberately excluded: the former parallelizes matching
// and the latter resizes the (verdict-preserving) counterexample
// screen, neither affecting the result.
func (c Config) CacheKey() string {
	norm := c
	if norm.TestInputs == 0 {
		norm.TestInputs = DefaultConfig().TestInputs
	}
	if norm.MaxSeqLen == 0 {
		norm.MaxSeqLen = 2
	}
	if norm.SMTMaxConflicts == 0 {
		norm.SMTMaxConflicts = DefaultConfig().SMTMaxConflicts
	}
	extra := "-"
	if norm.ExtraSequences != nil {
		extra = "+" // presence only; callers pass target-determined extras
	}
	filter := "-"
	if norm.PoolFilter != nil {
		filter = "+" // a filtered pool produces a different (partial) library
	}
	return fmt.Sprintf("inputs=%d|seqlen=%d|conflicts=%d|pairbases=%d|noindex=%t|noprobe=%t|extra=%s|filter=%s|cost=%s|sel=%s",
		norm.TestInputs, norm.MaxSeqLen, norm.SMTMaxConflicts, norm.MaxPairBases,
		norm.DisableIndex, norm.DisableProbe, extra, filter,
		norm.CostModel.Version(), norm.EffSelector())
}

// DefaultConfig returns the settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		TestInputs:      128,
		MaxSeqLen:       2,
		SMTMaxConflicts: 60000,
		Workers:         DefaultWorkers(),
	}
}

// DefaultWorkers derives the matching-pool width from the machine
// (the paper used 60 threads on their host; a hardcoded 8 ignored
// machine size in both directions). The ISEL_WORKERS environment
// variable overrides it; CLI -workers flags override both via
// ResolveWorkers. Worker count never changes which rules are produced
// (it is excluded from CacheKey), only how fast.
func DefaultWorkers() int {
	if v := os.Getenv("ISEL_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.NumCPU()
}

// ResolveWorkers applies the precedence flag > ISEL_WORKERS env >
// NumCPU: a positive flag value wins, otherwise the environment-aware
// default. The CLIs all thread their -workers flag through here.
func ResolveWorkers(flagVal int) int {
	if flagVal > 0 {
		return flagVal
	}
	return DefaultWorkers()
}

// EffectClass distinguishes what a pool entry (or pattern) computes.
type EffectClass int

// Effect classes.
const (
	ClassValue EffectClass = iota // a register result
	ClassStore                    // a memory store
)

// PoolEntry is one indexed instruction sequence with its primary effect.
type PoolEntry struct {
	Seq    *isa.Sequence
	Effect spec.Effect
	Class  EffectClass
	CT     *canon.CTerm
	// filter signature (§V-C candidate elimination).
	NRegs, NImms int
	LoadSig      string
	Width        int
	vec          cost.Vector // sequence cost under the synthesizer's model
	evalN        int         // vector count (Config.TestInputs at build time)
	evalMu       sync.Mutex  // guards prog/evals extension
	prog         *term.Program
	evals        []uint64 // per-test-vector digests, extended block-wise
}

// digestBlock is the granularity of lazy digest evaluation. Most probe
// calls reject a candidate within the first few vectors (or accept
// after probeCap), so evaluating an entry on all configured vectors up
// front wastes the bulk of the work.
const digestBlock = 32

// digestsUpTo returns the entry's evaluation digests for at least the
// first min(k, evalN) test vectors, extending the cache block-wise on
// demand. Stage 1 used to evaluate every pool entry eagerly on every
// vector, which dominated full synthesis — most entries are never
// probed, and most probes touch only a handful of vectors. The digests
// depend only on the effect term and the vector index, never on timing
// or which goroutine asks first, so laziness cannot change any probe
// verdict. Time spent extending is added to *dur.
//
// Concurrent readers are safe: elements below a returned slice's length
// are never rewritten, and extension happens under the entry's mutex.
func (e *PoolEntry) digestsUpTo(k int, ic *inputCache, dur *time.Duration) []uint64 {
	if k > e.evalN {
		k = e.evalN
	}
	e.evalMu.Lock()
	defer e.evalMu.Unlock()
	if len(e.evals) >= k {
		return e.evals
	}
	t0 := time.Now()
	if e.prog == nil {
		e.prog = term.Compile(e.Effect.T)
	}
	target := (k + digestBlock - 1) / digestBlock * digestBlock
	if target > e.evalN {
		target = e.evalN
	}
	p := e.prog
	pv := p.Vars()
	raws := make([][]bv.BV, len(pv))
	for i, v := range pv {
		raws[i] = ic.vecs(nameHash(v.Name))
	}
	vals := make([]bv.BV, len(pv))
	for j := len(e.evals); j < target; j++ {
		for i := range pv {
			r := raws[i][j]
			vals[i] = bv.New128(pv[i].Width, r.Hi, r.Lo)
		}
		e.evals = append(e.evals, digest(p.Run(vals)))
	}
	*dur += time.Since(t0)
	return e.evals
}

// inputCache memoizes the raw 128-bit test vectors per variable-name
// hash. rawInputH seeds a fresh RNG for every (vector, name) pair;
// probing asks for the same few dozen sequence-operand names tens of
// thousands of times, so each worker expands a name's full vector
// column once. The cached values are a pure function of the hash, so
// caching cannot change any probe verdict.
type inputCache struct {
	n int
	m map[uint64][]bv.BV
}

func newInputCache(n int) *inputCache {
	return &inputCache{n: n, m: make(map[uint64][]bv.BV)}
}

// vecs returns the n raw 128-bit test values for name hash h.
func (c *inputCache) vecs(h uint64) []bv.BV {
	if vs, ok := c.m[h]; ok {
		return vs
	}
	vs := make([]bv.BV, c.n)
	for j := 0; j < c.n; j++ {
		hi, lo := rawInputH(j, h)
		vs[j] = bv.BV{Hi: hi, Lo: lo, Width: 128}
	}
	c.m[h] = vs
	return vs
}

// Stats aggregates stage timings and counters for Table II.
type Stats struct {
	Sequences    int
	IndexEntries int
	InstrGenTime time.Duration
	CanonTime    time.Duration
	EvalTime     time.Duration
	InsertTime   time.Duration

	Patterns     int
	LookupTime   time.Duration
	IndexLookupT time.Duration
	ProbeTime    time.Duration
	SMTTime      time.Duration
	IndexRules   int
	SMTRules     int
	SMTQueries   int64
	SMTTimeouts  int64
	// Counterexample-screen effectiveness: how many solver-bound queries
	// were screened against the cached counterexamples, how many a cached
	// assignment refuted outright, and how many bit-blasting runs that
	// avoided (hits == skips today; kept separate so a partial screen —
	// e.g. screening only store goals — stays representable).
	CexScreens int64
	CexHits    int64
	SMTSkipped int64
	// Verdict-memo effectiveness: MemoHits counts queries answered by a
	// stored (trust-checked) verdict, BitBlasts the queries that still
	// reached circuit construction — the pair the warm-resynthesis gate
	// watches (memo_hits > 0, bit_blasts == 0 on an unchanged spec).
	MemoHits  int64
	BitBlasts int64
	// SAT-core work summed over every solver query of the run — the
	// per-query distribution is in the provenance log; these totals ride
	// the Table II snapshot (and /v1/metrics) so solver effort is visible
	// without tracing enabled.
	SATDecisions    int64
	SATPropagations int64
	SATConflicts    int64
	SATRestarts     int64
	// Curtailed records that a SynthesizeCtx deadline fired mid-run, so
	// the produced library is partial: SMT-provable rules may be missing.
	Curtailed bool
}

// StageStats is the JSON-friendly snapshot of Stats, the per-stage
// synthesis breakdown of Table II lifted from the worker timers. All
// durations are nanoseconds so that even sub-millisecond stages survive
// serialization; counters sum across runs when aggregated.
type StageStats struct {
	Sequences    int   `json:"sequences"`
	IndexEntries int   `json:"index_entries"`
	Patterns     int   `json:"patterns"`
	IndexRules   int   `json:"index_rules"`
	SMTRules     int   `json:"smt_rules"`
	SMTQueries   int64 `json:"smt_queries"`
	SMTTimeouts  int64 `json:"smt_timeouts"`

	CexScreens int64 `json:"cex_screens"`
	CexHits    int64 `json:"cex_cache_hits"`
	SMTSkipped int64 `json:"smt_skipped"`
	MemoHits   int64 `json:"memo_hits"`
	BitBlasts  int64 `json:"bit_blasts"`

	SATDecisions    int64 `json:"sat_decisions"`
	SATPropagations int64 `json:"sat_propagations"`
	SATConflicts    int64 `json:"sat_conflicts"`
	SATRestarts     int64 `json:"sat_restarts"`

	InstrGenNS    int64 `json:"instr_gen_ns"`
	CanonNS       int64 `json:"canonicalize_ns"`
	EvalNS        int64 `json:"test_eval_ns"`
	InsertNS      int64 `json:"index_insert_ns"`
	LookupWallNS  int64 `json:"lookup_wall_ns"`
	IndexLookupNS int64 `json:"index_lookup_cpu_ns"`
	ProbeNS       int64 `json:"probe_cpu_ns"`
	SMTNS         int64 `json:"smt_cpu_ns"`
}

// Snapshot converts the internal stage timers into the exported form.
func (st *Stats) Snapshot() StageStats {
	return StageStats{
		Sequences:       st.Sequences,
		IndexEntries:    st.IndexEntries,
		Patterns:        st.Patterns,
		IndexRules:      st.IndexRules,
		SMTRules:        st.SMTRules,
		SMTQueries:      st.SMTQueries,
		SMTTimeouts:     st.SMTTimeouts,
		CexScreens:      st.CexScreens,
		CexHits:         st.CexHits,
		SMTSkipped:      st.SMTSkipped,
		MemoHits:        st.MemoHits,
		BitBlasts:       st.BitBlasts,
		SATDecisions:    st.SATDecisions,
		SATPropagations: st.SATPropagations,
		SATConflicts:    st.SATConflicts,
		SATRestarts:     st.SATRestarts,
		InstrGenNS:      st.InstrGenTime.Nanoseconds(),
		CanonNS:         st.CanonTime.Nanoseconds(),
		EvalNS:          st.EvalTime.Nanoseconds(),
		InsertNS:        st.InsertTime.Nanoseconds(),
		LookupWallNS:    st.LookupTime.Nanoseconds(),
		IndexLookupNS:   st.IndexLookupT.Nanoseconds(),
		ProbeNS:         st.ProbeTime.Nanoseconds(),
		SMTNS:           st.SMTTime.Nanoseconds(),
	}
}

// Accumulate sums another snapshot into this one (service-level metric
// aggregation across synthesis runs).
func (ss *StageStats) Accumulate(o StageStats) {
	ss.Sequences += o.Sequences
	ss.IndexEntries += o.IndexEntries
	ss.Patterns += o.Patterns
	ss.IndexRules += o.IndexRules
	ss.SMTRules += o.SMTRules
	ss.SMTQueries += o.SMTQueries
	ss.SMTTimeouts += o.SMTTimeouts
	ss.CexScreens += o.CexScreens
	ss.CexHits += o.CexHits
	ss.SMTSkipped += o.SMTSkipped
	ss.MemoHits += o.MemoHits
	ss.BitBlasts += o.BitBlasts
	ss.SATDecisions += o.SATDecisions
	ss.SATPropagations += o.SATPropagations
	ss.SATConflicts += o.SATConflicts
	ss.SATRestarts += o.SATRestarts
	ss.InstrGenNS += o.InstrGenNS
	ss.CanonNS += o.CanonNS
	ss.EvalNS += o.EvalNS
	ss.InsertNS += o.InsertNS
	ss.LookupWallNS += o.LookupWallNS
	ss.IndexLookupNS += o.IndexLookupNS
	ss.ProbeNS += o.ProbeNS
	ss.SMTNS += o.SMTNS
}

// Synthesizer holds the shared, read-only-after-build synthesis state.
type Synthesizer struct {
	B      *term.Builder
	CX     *canon.Ctx
	Target *isa.Target
	Index  *trie.Index
	Pool   []*PoolEntry
	// byFilter groups entries for the SMT-fallback candidate filter.
	byFilter map[string][]*PoolEntry
	Cfg      Config
	Stats    Stats
	// SpecFP fingerprints the loaded specification (every instruction's
	// effect fingerprint, name-sorted): the proof fingerprint stamped on
	// memoized SMT verdicts, so an Equal proved under one spec is never
	// trusted under another.
	SpecFP string
	// cancelFn, when set by SynthesizeCtx, lets workers observe a
	// deadline cooperatively (set before workers spawn, cleared after
	// they join).
	cancelFn func() bool
}

// New creates a synthesizer for a target. The target must have been
// loaded into b.
func New(b *term.Builder, target *isa.Target, cfg Config) *Synthesizer {
	if cfg.TestInputs == 0 {
		cfg.TestInputs = DefaultConfig().TestInputs
	}
	if cfg.MaxSeqLen == 0 {
		cfg.MaxSeqLen = 2
	}
	if cfg.Workers == 0 {
		cfg.Workers = DefaultConfig().Workers
	}
	if cfg.SMTMaxConflicts == 0 {
		cfg.SMTMaxConflicts = DefaultConfig().SMTMaxConflicts
	}
	if cfg.CexCap > 0 {
		smt.Cex.SetCapacity(cfg.CexCap)
	}
	return &Synthesizer{
		B:        b,
		CX:       canon.NewCtx(),
		Target:   target,
		Index:    trie.New(),
		byFilter: map[string][]*PoolEntry{},
		Cfg:      cfg,
		SpecFP:   SpecFingerprint(target),
	}
}

// SpecFingerprint derives the content identity of a loaded target spec:
// the name-sorted instruction effect fingerprints, hashed together. Two
// loads of semantically identical specs agree (InstFingerprint hashes
// symbolically executed effects, not text), and any semantic edit to
// any instruction changes it — which is exactly the granularity the
// memo's Equal-trust guard needs, since a sequence's effects can depend
// on any instruction it composes.
func SpecFingerprint(target *isa.Target) string {
	parts := make([]string, 0, len(target.Insts)+1)
	parts = append(parts, "spec-v1")
	for _, inst := range target.Insts {
		parts = append(parts, inst.Name+"="+rules.InstFingerprint(inst))
	}
	sort.Strings(parts[1:])
	return rules.Fingerprint(parts...)
}

// BuildPool runs stage 1: sequence enumeration, canonicalization, test
// evaluation, and index insertion. Stage durations are read once each
// (obs.Timed): the same measurement feeds both Stats and the trace, so
// the Table II numbers and the exported spans can never drift.
func (s *Synthesizer) BuildPool() {
	tr := s.Cfg.Obs.TracerOrNil()
	sp := tr.Start("synth/pool")
	tm := obs.Timed(tr, "pool/enumerate")
	seqs := s.enumerate()
	s.Stats.InstrGenTime = tm.Done()
	s.Stats.Sequences = len(seqs)

	esp := tr.Start("pool/entries")
	for _, seq := range seqs {
		s.addEntry(seq)
	}
	// Pre-sort every fallback filter bucket cheapest-first, once. The
	// SMT fallback consumes candidates in cost order; sorting per
	// pattern — with cost vectors recomputed inside the comparator —
	// was pure overhead, since bucket contents and costs are fixed for
	// the synthesizer's lifetime.
	for _, bucket := range s.byFilter {
		sort.Slice(bucket, func(i, j int) bool {
			return bucket[i].vec.Less(bucket[j].vec)
		})
	}
	esp.SetInt("canonicalize_ns", s.Stats.CanonTime.Nanoseconds()).
		SetInt("test_eval_ns", s.Stats.EvalTime.Nanoseconds()).
		SetInt("index_insert_ns", s.Stats.InsertTime.Nanoseconds()).
		End()
	sp.SetInt("sequences", int64(s.Stats.Sequences)).
		SetInt("index_entries", int64(s.Stats.IndexEntries)).
		End()
}

// enumerate lists candidate sequences: singles, wired/flag-consuming
// pairs, and target extras.
func (s *Synthesizer) enumerate() []*isa.Sequence {
	var out []*isa.Sequence
	var bases []*isa.Sequence
	for _, inst := range s.Target.Insts {
		seq := isa.Single(s.B, inst)
		out = append(out, seq)
		bases = append(bases, seq)
		// Flag-setting instructions with an immediate also enter the
		// pool with the immediate bound to zero: compare-against-zero is
		// its own idiom (cmp x, #0) whose flag terms simplify in ways
		// structural unification cannot see with a free immediate.
		if writesFlags(seq) {
			zeroed := seq
			ok := true
			for k, op := range inst.Operands {
				if op.Kind != spec.OpImm {
					continue
				}
				z, err := isa.BindImm(s.B, zeroed, 0, op.Name, bvZero(op.Width))
				if err != nil {
					ok = false
					break
				}
				zeroed = z
				_ = k
			}
			if ok && zeroed != seq {
				bases = append(bases, zeroed)
			}
		}
	}
	if s.Cfg.MaxSeqLen >= 2 {
		nb := len(bases)
		if s.Cfg.MaxPairBases > 0 && s.Cfg.MaxPairBases < nb {
			nb = s.Cfg.MaxPairBases
		}
		// The template cache amortizes the rename/rebuild work of Append
		// across the O(bases × insts) pair loop (enumerate runs on one
		// goroutine, so the cache needs no locking).
		ac := isa.NewAppendCache()
		for _, base := range bases[:nb] {
			for _, inst := range s.Target.Insts {
				if !base.CanAppend(inst) {
					continue
				}
				// Wire each width-compatible register operand.
				prevW := resultWidth(base)
				for _, op := range inst.Operands {
					if op.Kind == spec.OpImm || op.Width != prevW {
						continue
					}
					if seq, err := ac.Append(s.B, base, inst, []string{op.Name}, false); err == nil {
						out = append(out, seq)
					}
				}
				// Flag-consuming composition (cmp+csel chains, §VI-A).
				if readsFlags(inst) && writesFlags(base) {
					if seq, err := ac.Append(s.B, base, inst, nil, true); err == nil {
						out = append(out, seq)
					}
				}
			}
		}
	}
	if s.Cfg.ExtraSequences != nil {
		out = append(out, s.Cfg.ExtraSequences(s.B, s.Target)...)
	}
	return out
}

// bvZero builds a zero immediate of the given width.
func bvZero(w int) bv.BV { return bv.Zero(w) }

func resultWidth(seq *isa.Sequence) int {
	for _, e := range seq.Effects {
		if e.Kind == spec.EffReg && e.Dest == "rd" {
			return e.T.W()
		}
	}
	return 0
}

func readsFlags(inst *isa.Instruction) bool {
	for _, e := range inst.Effects {
		for _, v := range e.T.Vars() {
			if v.Kind == term.KindFlag {
				return true
			}
		}
	}
	return false
}

func writesFlags(seq *isa.Sequence) bool {
	for _, e := range seq.Effects {
		if e.Kind == spec.EffFlag {
			return true
		}
	}
	return false
}

// addEntry canonicalizes, evaluates, and indexes one sequence's primary
// effect.
func (s *Synthesizer) addEntry(seq *isa.Sequence) {
	if s.Cfg.PoolFilter != nil && !s.Cfg.PoolFilter(seq) {
		return
	}
	eff, class, ok := primaryEffect(seq)
	if !ok {
		return
	}
	// Sequences with unconsumed flag or PC inputs cannot match IR
	// patterns (IR has neither); they only exist as composition bases.
	for _, in := range seq.Inputs {
		if in.Flags || in.Var.Kind == term.KindPC {
			return
		}
	}
	for _, v := range eff.T.Vars() {
		if v.Kind == term.KindFlag || v.Kind == term.KindPC {
			return
		}
	}

	e := &PoolEntry{Seq: seq, Effect: eff, Class: class, Width: eff.T.W()}
	e.vec = s.seqVec(seq)
	for _, in := range seq.Inputs {
		if in.Op.Kind == spec.OpImm {
			e.NImms++
		} else {
			e.NRegs++
		}
	}
	e.LoadSig = loadSignature(eff.T)

	t0 := time.Now()
	e.CT = s.CX.Canon(eff.T)
	s.Stats.CanonTime += time.Since(t0)

	// Test evaluations are lazy (PoolEntry.digests): stage 1 only records
	// the vector count, and Stats.EvalTime accrues in stage 2 as probed
	// entries are evaluated on demand.
	e.evalN = s.Cfg.TestInputs

	t0 = time.Now()
	s.Index.Insert(e.CT, e)
	s.Stats.InsertTime += time.Since(t0)
	s.Stats.IndexEntries++

	s.Pool = append(s.Pool, e)
	s.byFilter[e.filterKey()] = append(s.byFilter[e.filterKey()], e)
}

// primaryEffect picks the effect a rule would match: the register result
// for value sequences, the store for store sequences. Sequences with
// extra visible effects (write-backs, PC updates, live flag outputs are
// fine — flags are simply clobbered, like LLVM's implicit-def NZCV) are
// still indexed by their primary effect; write-backs and PC effects are
// not matchable and are skipped.
func primaryEffect(seq *isa.Sequence) (spec.Effect, EffectClass, bool) {
	var reg, mem *spec.Effect
	for i := range seq.Effects {
		e := &seq.Effects[i]
		switch e.Kind {
		case spec.EffPC, spec.EffWB:
			return spec.Effect{}, 0, false
		case spec.EffReg:
			if e.Dest == "rd" && reg == nil {
				reg = e
			} else {
				return spec.Effect{}, 0, false // rd2: multi-output
			}
		case spec.EffMem:
			if mem != nil {
				return spec.Effect{}, 0, false
			}
			mem = e
		}
	}
	switch {
	case reg != nil && mem == nil:
		return *reg, ClassValue, true
	case mem != nil && reg == nil:
		return *mem, ClassStore, true
	}
	return spec.Effect{}, 0, false
}

// loadSignature summarizes load widths for the candidate filter.
func loadSignature(t *term.Term) string {
	loads := t.Loads()
	sig := ""
	for _, l := range loads {
		sig += fmt.Sprintf("l%d;", l.W())
	}
	return sig
}

func (e *PoolEntry) filterKey() string {
	return fmt.Sprintf("%d|%d|%d|%d|%s", e.Class, e.Width, e.NRegs, e.NImms, e.LoadSig)
}

// --- deterministic test inputs (§V-C) ---

// nameHash is the FNV-1a hash of a variable name — the name-dependent
// half of the test-input derivation, hoisted so per-vector loops hash
// each name once instead of once per (vector, name) pair.
func nameHash(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}

// rawInput produces the fixed 128-bit random input for test vector j and
// variable name. Values are keyed by name (not position) so pattern-side
// probing can reproduce exactly the value a sequence variable received.
func rawInput(j int, name string) (hi, lo uint64) {
	return rawInputH(j, nameHash(name))
}

// rawInputH is rawInput with the name already hashed.
func rawInputH(j int, h uint64) (hi, lo uint64) {
	rng := bv.NewRNG(h ^ uint64(j)*0x9e3779b97f4a7c15)
	v := rng.BV(128)
	return v.Hi, v.Lo
}

// InputFor returns the test value for vector j, variable name, width w.
func InputFor(j int, name string, w int) bv.BV {
	hi, lo := rawInput(j, name)
	return bv.New128(w, hi, lo)
}

// digest reduces an evaluation result to 64 bits for compact caching.
func digest(v bv.BV) uint64 {
	x := v.Lo ^ (v.Hi * 0x9e3779b97f4a7c15) ^ uint64(v.Width)<<56
	x ^= x >> 29
	return x
}
