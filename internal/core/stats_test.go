package core

import (
	"reflect"
	"testing"
	"time"
)

// TestStatsSnapshotCoversEveryField fills every Stats field with a
// distinct nonzero value and checks that Snapshot carries each one into
// a nonzero StageStats field — so adding a Stats counter without wiring
// it through the snapshot fails here instead of silently dropping data
// (exactly how the SAT counters could have been lost).
func TestStatsSnapshotCoversEveryField(t *testing.T) {
	var st Stats
	rv := reflect.ValueOf(&st).Elem()
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int64:
			f.SetInt(int64(i + 1)) // covers time.Duration too
		case reflect.Bool:
			f.SetBool(true)
		default:
			t.Fatalf("Stats field %s has unhandled kind %s — extend this test",
				rv.Type().Field(i).Name, f.Kind())
		}
	}

	ss := st.Snapshot()
	sv := reflect.ValueOf(ss)
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		name := sv.Type().Field(i).Name
		if f.Kind() != reflect.Int && f.Kind() != reflect.Int64 {
			t.Fatalf("StageStats field %s has unhandled kind %s", name, f.Kind())
		}
		if f.Int() == 0 {
			t.Errorf("StageStats.%s is zero after snapshotting a fully nonzero Stats — Snapshot misses it", name)
		}
	}
	// Stats has exactly one field (Curtailed) that StageStats does not
	// mirror; everything else must map 1:1.
	if got, want := sv.NumField(), rv.NumField()-1; got != want {
		t.Errorf("StageStats has %d fields, Stats has %d non-Curtailed fields — keep them in sync", got, want)
	}
}

// TestStatsSnapshotValues pins the unit conversions: durations become
// nanoseconds, counters copy verbatim.
func TestStatsSnapshotValues(t *testing.T) {
	st := Stats{
		Sequences:       3,
		SMTQueries:      7,
		SATDecisions:    11,
		SATPropagations: 13,
		SATConflicts:    17,
		SATRestarts:     19,
		InstrGenTime:    2 * time.Millisecond,
		SMTTime:         1500 * time.Nanosecond,
	}
	ss := st.Snapshot()
	if ss.Sequences != 3 || ss.SMTQueries != 7 {
		t.Errorf("counters not copied: %+v", ss)
	}
	if ss.SATDecisions != 11 || ss.SATPropagations != 13 || ss.SATConflicts != 17 || ss.SATRestarts != 19 {
		t.Errorf("SAT counters not copied: %+v", ss)
	}
	if ss.InstrGenNS != 2_000_000 || ss.SMTNS != 1500 {
		t.Errorf("durations not converted to ns: %+v", ss)
	}
}

// TestStageStatsAccumulateCoversEveryField: accumulating a fully nonzero
// snapshot into a zero one must leave no field zero, and accumulating it
// twice must exactly double every field (i.e. Accumulate is addition,
// not overwrite).
func TestStageStatsAccumulateCoversEveryField(t *testing.T) {
	var src StageStats
	rv := reflect.ValueOf(&src).Elem()
	for i := 0; i < rv.NumField(); i++ {
		rv.Field(i).SetInt(int64(i + 1))
	}

	var acc StageStats
	acc.Accumulate(src)
	av := reflect.ValueOf(acc)
	for i := 0; i < av.NumField(); i++ {
		if av.Field(i).Int() != rv.Field(i).Int() {
			t.Errorf("StageStats.%s not accumulated: got %d, want %d — Accumulate misses it",
				av.Type().Field(i).Name, av.Field(i).Int(), rv.Field(i).Int())
		}
	}

	acc.Accumulate(src)
	av = reflect.ValueOf(acc)
	for i := 0; i < av.NumField(); i++ {
		if av.Field(i).Int() != 2*rv.Field(i).Int() {
			t.Errorf("StageStats.%s after two Accumulates = %d, want %d",
				av.Type().Field(i).Name, av.Field(i).Int(), 2*rv.Field(i).Int())
		}
	}
}
