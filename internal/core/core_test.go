package core

import (
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/term"
)

// miniTarget is an AArch64-flavoured toy ISA that exercises every
// matching path: register ops, shifted ops, immediates, scaled loads,
// flags chains, and stores.
const miniSpec = `
inst ADDrr(rn: reg64, rm: reg64) { rd = rn + rm; }
inst SUBrr(rn: reg64, rm: reg64) { rd = rn - rm; }
inst ADDri(rn: reg64, imm: imm12) { rd = rn + zext(imm, 64); }
inst SUBri(rn: reg64, imm: imm12) { rd = rn - zext(imm, 64); }
inst ADDrs(rn: reg64, rm: reg64, sh: imm6) { rd = rn + (rm << zext(sh, 64)); }
inst LSLri(rn: reg64, sh: imm6) { rd = rn << zext(sh, 64); }
inst ANDrr(rn: reg64, rm: reg64) { rd = rn & rm; }
inst ORNrr(rn: reg64, rm: reg64) { rd = rn | ~rm; }
inst MVNr(rm: reg64) { rd = ~rm; }
inst NEGr(rm: reg64) { rd = -rm; }
inst MULrr(rn: reg64, rm: reg64) { rd = rn * rm; }
inst MADD(rn: reg64, rm: reg64, ra: reg64) { rd = ra + rn * rm; }
inst MOVZ(imm: imm16) { rd = zext(imm, 64); }
inst LDRui(rn: reg64, imm: imm12) { rd = load(rn + zext(imm, 64) * 8:64, 64); }
inst LDURi(rn: reg64, simm: imm9) { rd = load(rn + sext(simm, 64), 64); }
inst STRui(rt: reg64, rn: reg64, imm: imm12) { mem[rn + zext(imm, 64) * 8:64, 64] = rt; }
inst SUBSrr(rn: reg64, rm: reg64) {
  let res = rn - rm;
  rd = res;
  flags.N = extract(res, 63, 63);
  flags.Z = res == 0;
  flags.C = uge(rn, rm);
  flags.V = extract((rn ^ rm) & (rn ^ res), 63, 63);
}
inst CSETeq() { rd = zext(flags.Z, 64); }
inst CSETlo() { rd = zext(!flags.C, 64); }
inst CSELlt(rn: reg64, rm: reg64) { rd = select(flags.N != flags.V, rn, rm); }
`

func miniSynth(t *testing.T, cfg Config) (*Synthesizer, *term.Builder) {
	t.Helper()
	b := term.NewBuilder()
	tgt, err := isa.LoadTarget(b, "mini", miniSpec, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, tgt, cfg)
	s.BuildPool()
	return s, b
}

func TestBuildPool(t *testing.T) {
	s, _ := miniSynth(t, Config{TestInputs: 32, Workers: 2})
	if s.Stats.Sequences < 21 {
		t.Errorf("sequences = %d, want singles plus pairs", s.Stats.Sequences)
	}
	if s.Stats.IndexEntries == 0 {
		t.Fatal("nothing indexed")
	}
	// Pairs exist: there must be sequences of length 2.
	found2 := false
	for _, e := range s.Pool {
		if e.Seq.Len() == 2 {
			found2 = true
		}
	}
	if !found2 {
		t.Error("no composed sequences in pool")
	}
}

func r64() *pattern.Node { return pattern.Leaf(gmir.S64) }
func i64() *pattern.Node { return pattern.ImmLeaf(gmir.S64) }

func TestIndexHitShiftAdd(t *testing.T) {
	// The paper's running example: add-with-shifted-operand must be
	// found via the term index, not the solver.
	s, _ := miniSynth(t, Config{TestInputs: 32, Workers: 2})
	p := pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(),
		pattern.Op(gmir.GShl, gmir.S64, r64(), i64())))
	r := s.SynthesizeOne(p)
	if r == nil {
		t.Fatal("no rule for add(x, shl(y, imm))")
	}
	if r.Seq.String() != "ADDrs" {
		t.Errorf("sequence = %s, want ADDrs", r.Seq)
	}
	// The immediate operand must carry a width-6 constraint.
	var em *rules.Embed
	for _, op := range r.Operands {
		if op.Embed != nil {
			em = op.Embed
		}
	}
	if em == nil || em.Width != 6 {
		t.Errorf("imm embed = %+v, want width 6", em)
	}
}

func TestIndexHitFigure4(t *testing.T) {
	// sub written as add-of-negation must still find SUBrr via the
	// canonical form.
	s, _ := miniSynth(t, Config{TestInputs: 32})
	// add(x, mul(y, -1)) — G_MUL by constant -1.
	p := pattern.New(pattern.Op(gmir.GSub, gmir.S64, r64(), r64()))
	r := s.SynthesizeOne(p)
	if r == nil || r.Seq.String() != "SUBrr" {
		t.Fatalf("sub rule = %v", r)
	}
	if r.Source != "index" {
		t.Errorf("sub found via %s, want index", r.Source)
	}
}

func TestConstantOperandBindsImmediate(t *testing.T) {
	// add(x, const) must select ADDri with a zext12 constraint.
	s, _ := miniSynth(t, Config{TestInputs: 32})
	p := pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(), i64()))
	r := s.SynthesizeOne(p)
	if r == nil {
		t.Fatal("no rule for add(x, imm)")
	}
	if r.Seq.String() != "ADDri" {
		t.Errorf("sequence = %s", r.Seq)
	}
	found := false
	for _, op := range r.Operands {
		if op.Embed != nil {
			if op.Embed.Width != 12 || op.Embed.Signed {
				t.Errorf("embed = %v, want zext12", op.Embed)
			}
			// Representability: 4095 fits, 4096 does not.
			if _, ok := op.Embed.Decode(bv.New(64, 4095)); !ok {
				t.Error("4095 rejected")
			}
			if _, ok := op.Embed.Decode(bv.New(64, 4096)); ok {
				t.Error("4096 accepted")
			}
			found = true
		}
	}
	if !found {
		t.Error("no immediate embed recorded")
	}
}

func TestScaledLoadImmediate(t *testing.T) {
	// load(add(p, const)) must match LDRui (scale 8) or LDURi; the
	// scaled form requires a shift-3 embed.
	s, _ := miniSynth(t, Config{TestInputs: 32})
	p := pattern.New(pattern.LoadOp(gmir.GLoad, gmir.S64, 64,
		pattern.Op(gmir.GPtrAdd, gmir.P0, r64(), i64())))
	r := s.SynthesizeOne(p)
	if r == nil {
		t.Fatal("no rule for load(p + imm)")
	}
	name := r.Seq.String()
	if name != "LDRui" && name != "LDURi" {
		t.Errorf("sequence = %s", name)
	}
	if name == "LDRui" {
		for _, op := range r.Operands {
			if op.Embed != nil && op.Embed.Shift != 3 {
				t.Errorf("scaled embed = %v, want shift 3", op.Embed)
			}
		}
	}
}

func TestStorePattern(t *testing.T) {
	s, _ := miniSynth(t, Config{TestInputs: 32})
	p := pattern.New(pattern.StoreOp(64, r64(),
		pattern.Op(gmir.GPtrAdd, gmir.P0, r64(), i64())))
	r := s.SynthesizeOne(p)
	if r == nil {
		t.Fatal("no rule for store")
	}
	if r.Seq.String() != "STRui" {
		t.Errorf("sequence = %s", r.Seq)
	}
}

func TestFlagChainCmpCset(t *testing.T) {
	// zext(icmp eq x y) must match the SUBSrr;CSETeq chain.
	s, _ := miniSynth(t, Config{TestInputs: 32})
	p := pattern.New(pattern.Op(gmir.GZExt, gmir.S64,
		pattern.Cmp(gmir.PredEQ, r64(), r64())))
	r := s.SynthesizeOne(p)
	if r == nil {
		t.Fatal("no rule for zext(icmp)")
	}
	if r.Seq.String() != "SUBSrr ; CSETeq" {
		t.Errorf("sequence = %s", r.Seq)
	}
	// Unsigned-less-than via CSETlo.
	p2 := pattern.New(pattern.Op(gmir.GZExt, gmir.S64,
		pattern.Cmp(gmir.PredULT, r64(), r64())))
	r2 := s.SynthesizeOne(p2)
	if r2 == nil || r2.Seq.String() != "SUBSrr ; CSETlo" {
		t.Fatalf("ult rule = %v", r2)
	}
}

func TestSelectCmpChain(t *testing.T) {
	// select(icmp slt a b, x, y) -> SUBSrr ; CSELlt.
	s, _ := miniSynth(t, Config{TestInputs: 32})
	p := pattern.New(pattern.Op(gmir.GSelect, gmir.S64,
		pattern.Cmp(gmir.PredSLT, r64(), r64()), r64(), r64()))
	r := s.SynthesizeOne(p)
	if r == nil {
		t.Fatal("no rule for select(icmp)")
	}
	if r.Seq.String() != "SUBSrr ; CSELlt" {
		t.Errorf("sequence = %s", r.Seq)
	}
}

func TestOrNotViaSMTOrIndex(t *testing.T) {
	// or(x, xor(y, -1)) == orn — whether via canonical match or solver,
	// it must be found.
	s, _ := miniSynth(t, Config{TestInputs: 64})
	p := pattern.New(pattern.Op(gmir.GOr, gmir.S64, r64(),
		pattern.Op(gmir.GXor, gmir.S64, r64(), i64())))
	// The imm leaf is a free constant; orn requires imm == -1, so this
	// pattern as a whole must NOT match ORNrr (which has no immediate).
	if r := s.SynthesizeOne(p); r != nil {
		// Acceptable only if the rule's operand sources include a
		// constant binding... there is no imm input on ORNrr, so any
		// returned rule must be something else entirely.
		t.Logf("note: or/xor/imm matched %s (%s)", r.Seq, r.Source)
	}
}

func TestMulAddFusion(t *testing.T) {
	// add(a, mul(b, c)) -> MADD.
	s, _ := miniSynth(t, Config{TestInputs: 32})
	p := pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(),
		pattern.Op(gmir.GMul, gmir.S64, r64(), r64())))
	r := s.SynthesizeOne(p)
	if r == nil {
		t.Fatal("no rule for add(a, mul(b,c))")
	}
	if r.Seq.String() != "MADD" {
		t.Errorf("sequence = %s, want MADD", r.Seq)
	}
}

func TestSynthesizeBatchWithBenefitFilter(t *testing.T) {
	s, _ := miniSynth(t, Config{TestInputs: 32, Workers: 4})
	lib := rules.NewLibrary("mini")
	pats := []*pattern.Pattern{
		pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(), r64())),
		pattern.New(pattern.Op(gmir.GSub, gmir.S64, r64(), r64())),
		pattern.New(pattern.Op(gmir.GShl, gmir.S64, r64(), i64())),
		pattern.New(pattern.Op(gmir.GMul, gmir.S64, r64(), r64())),
		// Beneficial fusion: shift-add (4 operands via cover = ADDrr(2)+LSLri(2),
		// ADDrs costs 3 < 4).
		pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(),
			pattern.Op(gmir.GShl, gmir.S64, r64(), i64()))),
		// Non-beneficial fusion: add(add(x,y),z) covered by two ADDrr
		// (cost 4); any 2-instruction sequence costs >= 4, so no rule
		// should be kept.
		pattern.New(pattern.Op(gmir.GAdd, gmir.S64,
			pattern.Op(gmir.GAdd, gmir.S64, r64(), r64()), r64())),
	}
	s.Synthesize(pats, lib)
	if lib.Lookup(pats[4].Key()) == nil {
		t.Error("beneficial shift-add rule missing")
	}
	if got := lib.Lookup(pats[5].Key()); got != nil {
		t.Errorf("non-beneficial add-add rule kept: %s (cost %d)", got.Seq, got.Cost())
	}
	if lib.Len() < 5 {
		t.Errorf("library size = %d", lib.Len())
	}
	if s.Stats.IndexRules == 0 {
		t.Error("no index-path rules recorded")
	}
}

// TestRulesSemanticallySound re-verifies every synthesized rule by random
// evaluation — invariant #6 of DESIGN.md.
func TestRulesSemanticallySound(t *testing.T) {
	s, b := miniSynth(t, Config{TestInputs: 32, Workers: 2})
	lib := rules.NewLibrary("mini")
	var pats []*pattern.Pattern
	// A diverse batch.
	for _, mk := range []func() *pattern.Pattern{
		func() *pattern.Pattern { return pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(), r64())) },
		func() *pattern.Pattern { return pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(), i64())) },
		func() *pattern.Pattern { return pattern.New(pattern.Op(gmir.GSub, gmir.S64, r64(), i64())) },
		func() *pattern.Pattern {
			return pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(),
				pattern.Op(gmir.GShl, gmir.S64, r64(), i64())))
		},
		func() *pattern.Pattern {
			return pattern.New(pattern.Op(gmir.GZExt, gmir.S64, pattern.Cmp(gmir.PredEQ, r64(), r64())))
		},
		func() *pattern.Pattern {
			return pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(),
				pattern.Op(gmir.GMul, gmir.S64, r64(), r64())))
		},
	} {
		pats = append(pats, mk())
	}
	s.Synthesize(pats, lib)
	rng := bv.NewRNG(77)
	for _, r := range lib.Rules {
		checkRuleSound(t, b, r, rng)
	}
}

// checkRuleSound evaluates pattern and sequence on random concrete
// inputs, applying the rule's operand mapping and immediate embeds.
func checkRuleSound(t *testing.T, b *term.Builder, r *rules.Rule, rng *bv.RNG) {
	t.Helper()
	tp, err := r.Pattern.Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	leaves := r.Pattern.Leaves()
	for trial := 0; trial < 40; trial++ {
		env := term.NewEnv()
		leafVals := make([]bv.BV, len(leaves))
		for i, l := range leaves {
			leafVals[i] = rng.BV(l.Ty.Bits)
		}
		// Sequence operand values; immediate embeds may reject a trial.
		ok := true
		for k, in := range r.Seq.Inputs {
			src := r.Operands[k]
			var v bv.BV
			switch src.Kind {
			case rules.SrcConst:
				v = src.Const
			case rules.SrcLeaf:
				v = leafVals[src.Leaf]
				if src.Embed != nil {
					e, repr := src.Embed.Decode(v)
					if !repr {
						// Force a representable value and retry binding.
						small := rng.BV(src.Embed.Width).ZExt(leaves[src.Leaf].Ty.Bits).ShlN(uint(src.Embed.Shift))
						leafVals[src.Leaf] = small
						e, repr = src.Embed.Decode(small)
						if !repr {
							ok = false
							break
						}
						v = small
					}
					v = e
					if v.W() < in.Op.Width {
						v = v.ZExt(in.Op.Width)
					}
				}
			}
			env.Bind(in.Var.Name, v)
		}
		if !ok {
			continue
		}
		for i, l := range leaves {
			env.Bind(pattern.LeafName(i, l), leafVals[i])
		}
		pv := tp.Eval(env)
		sv := r.Seq.Effects[indexOfPrimary(r)].T.Eval(env)
		if pv != sv {
			t.Errorf("rule %s unsound:\n  pattern %s = %v\n  sequence = %v\n  env %v",
				r.Seq, r.Pattern, pv, sv, env.Vals)
			return
		}
	}
}

func indexOfPrimary(r *rules.Rule) int {
	for i, e := range r.Seq.Effects {
		if e.Kind == 0 && e.Dest == "rd" { // spec.EffReg
			return i
		}
		if e.T.Op == term.Store {
			return i
		}
	}
	return 0
}

// TestVectorInstructionsIndexed: the pool must include vector-register
// sequences (the paper synthesizes Neon rules too); vector atoms only
// unify with vector atoms, so they never leak into scalar matches.
func TestVectorInstructionsIndexed(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := isa.LoadTarget(b, "vecmini", `
inst VADD(rn: vec64, rm: vec64) { rd = concat(extract(rn, 63, 32) + extract(rm, 63, 32), extract(rn, 31, 0) + extract(rm, 31, 0)); }
inst ADD(rn: reg64, rm: reg64) { rd = rn + rm; }
`, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, tgt, Config{TestInputs: 16})
	s.BuildPool()
	vecSeen := false
	for _, e := range s.Pool {
		for _, in := range e.Seq.Inputs {
			if in.Var.Kind == term.KindVecReg {
				vecSeen = true
			}
		}
	}
	if !vecSeen {
		t.Fatal("no vector entries in pool")
	}
	// A scalar add pattern must match ADD, never VADD.
	p := pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(), r64()))
	r := s.SynthesizeOne(p)
	if r == nil {
		t.Fatal("no rule for scalar add")
	}
	if r.Seq.String() != "ADD" {
		t.Errorf("scalar add selected %s", r.Seq)
	}
}
