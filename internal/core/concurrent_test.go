package core

import (
	"runtime"
	"sync"
	"testing"

	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/isel"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/smt"
	"iselgen/internal/term"
)

// fallbackPats are pattern shapes with no direct canonical-index match
// on the mini target: the flag-chain and or-not shapes go through the
// SMT fallback, so every goroutine issues Equiv queries that screen
// against (and can feed) the shared counterexample cache.
func fallbackPats() []*pattern.Pattern {
	return []*pattern.Pattern{
		pattern.New(pattern.Op(gmir.GZExt, gmir.S64, pattern.Cmp(gmir.PredEQ, r64(), r64()))),
		pattern.New(pattern.Op(gmir.GZExt, gmir.S64, pattern.Cmp(gmir.PredULT, r64(), r64()))),
		pattern.New(pattern.Op(gmir.GSelect, gmir.S64, pattern.Cmp(gmir.PredSLT, r64(), r64()), r64(), r64())),
		pattern.New(pattern.Op(gmir.GOr, gmir.S64, r64(),
			pattern.Op(gmir.GXor, gmir.S64, r64(), i64()))),
	}
}

// TestConcurrentSynthesesShareCexCache runs independent synthesizers
// from every CPU at once, all feeding and screening through the shared
// process-wide counterexample cache, and demands they produce identical
// libraries. Under -race this is the cache's integration race test; in
// any mode it checks that cross-run cache pollution cannot change
// verdicts (each run sees hits earned by the others).
func TestConcurrentSynthesesShareCexCache(t *testing.T) {
	smt.Cex.Reset()
	n := runtime.NumCPU() + 2
	arts := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := term.NewBuilder()
			tgt, err := isa.LoadTarget(b, "mini", miniSpec, nil, 4)
			if err != nil {
				errs[g] = err
				return
			}
			s := New(b, tgt, Config{TestInputs: 32, Workers: 2})
			s.BuildPool()
			lib := rules.NewLibrary("mini")
			s.Synthesize(fallbackPats(), lib)
			arts[g] = isel.SaveLibrary(lib)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < n; g++ {
		if arts[g] != arts[0] {
			t.Fatalf("goroutine %d produced a different library than goroutine 0", g)
		}
	}
	screens, _, _ := smt.Cex.Counters()
	if screens == 0 {
		t.Fatal("no query was ever screened — the synthesizers are not wired to the shared cache")
	}
}
