package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Exactly one of Str/Int is meaningful,
// selected by IsInt — a tagged pair avoids interface boxing on the
// recording path.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// SpanRecord is one completed span as stored in the tracer's ring.
type SpanRecord struct {
	Name   string
	ID     uint64
	Parent uint64 // 0 = root
	Lane   uint64 // thread-ID analog for trace viewers: the root span's ID
	Trace  TraceID
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// Tracer records hierarchical spans into a bounded ring buffer using a
// monotonic clock. The zero value is not usable; a nil *Tracer disables
// tracing (Start returns a nil *Span whose methods no-op).
type Tracer struct {
	base    time.Time // monotonic reference; span offsets are Since(base)
	wall    time.Time // wall-clock at base, for absolute-time export
	idBase  uint64    // random per-tracer base mixed into span IDs
	nextID  atomic.Uint64
	dropped atomic.Uint64
	started atomic.Uint64

	mu   sync.Mutex
	ring []SpanRecord
	head int // next write position
	n    int // occupied entries
}

// DefaultRingCap bounds the span ring when NewTracer is given 0.
const DefaultRingCap = 8192

// NewTracer returns an enabled tracer whose ring holds up to cap
// completed spans (0 = DefaultRingCap). Older spans are overwritten.
func NewTracer(cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultRingCap
	}
	now := time.Now()
	return &Tracer{base: now, wall: now, idBase: randUint64(), ring: make([]SpanRecord, 0, cap)}
}

// Span is one in-progress span. A nil *Span no-ops every method, so
// callers never branch on whether tracing is enabled.
type Span struct {
	tr     *Tracer
	name   string
	id     uint64
	parent uint64
	lane   uint64
	trace  TraceID
	start  time.Duration
	attrs  []Attr
}

// Start begins a root span outside any trace. Nil-safe: a nil tracer
// returns a nil span without reading the clock.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.startAt(name, 0, 0, TraceID{}, time.Since(t.base))
}

// StartTrace begins the root span of a new trace (the request-span root
// a sampled request without an incoming context gets).
func (t *Tracer) StartTrace(name string, tid TraceID) *Span {
	if t == nil {
		return nil
	}
	return t.startAt(name, 0, 0, tid, time.Since(t.base))
}

// StartRemote begins a span whose parent lives on another node (or in
// another goroutine's context): the span joins tc's trace as a child of
// tc's span. Nil-safe.
func (t *Tracer) StartRemote(name string, tc TraceContext) *Span {
	if t == nil {
		return nil
	}
	return t.startAt(name, tc.SpanID, 0, tc.TraceID, time.Since(t.base))
}

// startAt mints a span. Span IDs are the tracer's random base mixed
// with a sequence counter through splitmix64, so IDs are unique within
// a process AND collision-free across nodes when spans from the whole
// fleet merge into one trace (0 is reserved for "no parent").
func (t *Tracer) startAt(name string, parent, lane uint64, trace TraceID, off time.Duration) *Span {
	id := splitmix64(t.idBase ^ (t.nextID.Add(1) * 0x9e3779b97f4a7c15))
	if id == 0 {
		id = 1
	}
	t.started.Add(1)
	if lane == 0 {
		lane = id
	}
	return &Span{tr: t, name: name, id: id, parent: parent, lane: lane, trace: trace, start: off}
}

// Child begins a sub-span of s, inheriting its trace (nil-safe).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startAt(name, s.id, s.lane, s.trace, time.Since(s.tr.base))
}

// Context returns the trace context for propagating s across a node or
// goroutine boundary: children created from it (StartRemote) parent
// under s. The zero TraceContext (Valid()==false) is returned for nil
// spans and spans outside any trace.
func (s *Span) Context() TraceContext {
	if s == nil || s.trace.IsZero() {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.trace, SpanID: s.id, Sampled: true}
}

// SetStr attaches a string attribute (nil-safe).
func (s *Span) SetStr(key, val string) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Str: val})
	}
	return s
}

// SetInt attaches an integer attribute (nil-safe).
func (s *Span) SetInt(key string, val int64) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Int: val, IsInt: true})
	}
	return s
}

// End completes the span and commits it to the ring (nil-safe).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndWith(time.Since(s.tr.base) - s.start)
}

// EndWith completes the span with an externally measured duration —
// used by Timed so the span and the caller's stats share one clock
// reading (nil-safe).
func (s *Span) EndWith(d time.Duration) {
	if s == nil {
		return
	}
	s.tr.commit(SpanRecord{
		Name: s.name, ID: s.id, Parent: s.parent, Lane: s.lane, Trace: s.trace,
		Start: s.start, Dur: d, Attrs: s.attrs,
	})
}

func (t *Tracer) commit(rec SpanRecord) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
		t.head = len(t.ring) % cap(t.ring)
		t.n++
	} else {
		t.ring[t.head] = rec
		t.head = (t.head + 1) % cap(t.ring)
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// Snapshot returns the completed spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.n)
	if t.n < cap(t.ring) {
		out = append(out, t.ring[:t.n]...)
		return out
	}
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// Started returns the number of spans started (including dropped and
// in-progress ones) — the instrumentation-event count the overhead
// estimator scales by.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// Dropped returns how many completed spans the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Reset discards all recorded spans (capacity and clock base are kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.head, t.n = 0, 0
	t.mu.Unlock()
}

// Timing couples a span with a direct clock reading so span durations
// and caller-maintained stats derive from the same measurement.
type Timing struct {
	sp *Span
	t0 time.Time
}

// Timed reads the clock and, when tr is enabled, starts a span. The
// clock read happens regardless of tracing — Timed is for sites that
// feed timing stats whether or not a tracer is attached.
func Timed(tr *Tracer, name string) Timing {
	var sp *Span
	if tr != nil {
		sp = tr.Start(name)
	}
	return Timing{sp: sp, t0: time.Now()}
}

// Span returns the underlying span (nil when the tracer was disabled)
// so callers can attach attributes before Done.
func (tm Timing) Span() *Span { return tm.sp }

// Done ends the span (if any) and returns the elapsed duration; span
// and return value are the same number.
func (tm Timing) Done() time.Duration {
	d := time.Since(tm.t0)
	tm.sp.EndWith(d)
	return d
}
