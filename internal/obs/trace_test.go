package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanHierarchy(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("root").SetStr("k", "v")
	child := root.Child("child").SetInt("n", 7)
	child.End()
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d spans, want 2", len(recs))
	}
	// Snapshot is completion-ordered: child ends first.
	c, r := recs[0], recs[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("span order: got %q, %q", c.Name, r.Name)
	}
	if c.Parent != r.ID {
		t.Errorf("child parent = %d, want root ID %d", c.Parent, r.ID)
	}
	if c.Lane != r.Lane {
		t.Errorf("child lane = %d, want root lane %d (same track)", c.Lane, r.Lane)
	}
	if r.Parent != 0 {
		t.Errorf("root parent = %d, want 0", r.Parent)
	}
	if len(r.Attrs) != 1 || r.Attrs[0].Key != "k" || r.Attrs[0].Str != "v" {
		t.Errorf("root attrs = %+v", r.Attrs)
	}
	if len(c.Attrs) != 1 || !c.Attrs[0].IsInt || c.Attrs[0].Int != 7 {
		t.Errorf("child attrs = %+v", c.Attrs)
	}
	if tr.Started() != 2 {
		t.Errorf("Started() = %d, want 2", tr.Started())
	}
}

// TestTracerRingWrap fills a small ring past capacity and checks that
// Snapshot returns exactly the newest cap spans, oldest first, and that
// Dropped accounts for the overwritten ones.
func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start(string(rune('a' + i))).End()
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("got %d spans, want ring cap 4", len(recs))
	}
	for i, want := range []string{"g", "h", "i", "j"} {
		if recs[i].Name != want {
			t.Errorf("recs[%d].Name = %q, want %q (oldest-first, newest kept)", i, recs[i].Name, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", tr.Dropped())
	}
	if tr.Started() != 10 {
		t.Errorf("Started() = %d, want 10", tr.Started())
	}
	tr.Reset()
	if len(tr.Snapshot()) != 0 {
		t.Errorf("Reset must clear the ring")
	}
}

// TestNilTracerSafe proves the whole disabled chain — the contract every
// instrumented call site depends on.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatalf("nil tracer Start must return nil span")
	}
	sp.SetStr("a", "b").SetInt("c", 1)
	sp.Child("y").End()
	sp.End()
	sp.EndWith(time.Second)
	if tr.Snapshot() != nil || tr.Started() != 0 || tr.Dropped() != 0 {
		t.Errorf("nil tracer accessors must be empty")
	}
	tr.Reset()

	tm := Timed(nil, "z")
	if tm.Span() != nil {
		t.Errorf("Timed(nil) span must be nil")
	}
	if d := tm.Done(); d < 0 {
		t.Errorf("Timed(nil).Done() must still measure: %v", d)
	}
}

// TestTimedSharedClock checks the no-drift contract: the duration Done
// returns is byte-identical to the one stored in the span record.
func TestTimedSharedClock(t *testing.T) {
	tr := NewTracer(4)
	tm := Timed(tr, "stage")
	time.Sleep(time.Millisecond)
	d := tm.Done()
	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d spans, want 1", len(recs))
	}
	if recs[0].Dur != d {
		t.Errorf("span dur %v != Done() %v — stats and trace drifted", recs[0].Dur, d)
	}
}

// TestTraceEventSchema validates the export against the Chrome
// trace-event contract: "X" complete events with microsecond ts/dur,
// pid/tid set, sorted by start time, args carrying span identity and
// attributes.
func TestTraceEventSchema(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("root")
	child := root.Child("child").SetInt("count", 3).SetStr("mode", "fast")
	time.Sleep(100 * time.Microsecond)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTraceJSON(&buf); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if f.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.Unit)
	}
	if len(f.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(f.TraceEvents))
	}
	var lastTs float64 = -1
	for _, ev := range f.TraceEvents {
		if ev["ph"] != "X" {
			t.Errorf("ph = %v, want X (complete event)", ev["ph"])
		}
		for _, k := range []string{"name", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Errorf("event missing required field %q: %v", k, ev)
			}
		}
		ts := ev["ts"].(float64)
		if ts < lastTs {
			t.Errorf("events not sorted by ts: %v < %v", ts, lastTs)
		}
		lastTs = ts
		if ev["pid"].(float64) != 1 {
			t.Errorf("pid = %v, want 1", ev["pid"])
		}
	}
	// The child must carry its attrs and parent linkage in args.
	child2 := f.TraceEvents[1]
	args, ok := child2["args"].(map[string]any)
	if !ok {
		t.Fatalf("child event has no args: %v", child2)
	}
	if args["count"].(float64) != 3 || args["mode"] != "fast" {
		t.Errorf("child args = %v", args)
	}
	if _, ok := args["parent"]; !ok {
		t.Errorf("child args missing parent linkage: %v", args)
	}
	// child slept ~100µs: dur is in microseconds, so it must be >= 50
	// (not >= 50000, which would mean the export forgot the ns→µs scale).
	if d := child2["dur"].(float64); d < 50 || d > 1e6 {
		t.Errorf("child dur = %v µs, expected ~100µs — wrong time unit?", d)
	}
}

// TestWriteTraceJSONEmpty ensures an empty (or nil) tracer still writes
// a well-formed file with an empty array, not null.
func TestWriteTraceJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer(4).WriteTraceJSON(&buf); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents": []`)) {
		t.Errorf("empty trace must serialize traceEvents as []: %s", buf.String())
	}
}

// TestTracerConcurrent exercises span start/commit from many goroutines
// under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Start("work")
				sp.Child("inner").SetInt("i", int64(i)).End()
				sp.End()
				if i%100 == 0 {
					tr.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if tr.Started() != 8000 {
		t.Fatalf("Started() = %d, want 8000", tr.Started())
	}
	if len(tr.Snapshot()) != 64 {
		t.Fatalf("ring should be full at cap 64, got %d", len(tr.Snapshot()))
	}
}

// TestDefaultObs checks the process-wide default used by the deep layers.
func TestDefaultObs(t *testing.T) {
	if Default() != nil {
		t.Skip("another test left a default installed")
	}
	if DefaultTracer() != nil {
		t.Fatalf("unset default must yield a nil tracer")
	}
	o := New()
	SetDefault(o)
	defer SetDefault(nil)
	if Default() != o || DefaultTracer() != o.Trace {
		t.Fatalf("SetDefault must install the given Obs")
	}
	DefaultTracer().Start("via-default").End()
	if len(o.Trace.Snapshot()) != 1 {
		t.Fatalf("span via DefaultTracer must land in the installed tracer")
	}
}
