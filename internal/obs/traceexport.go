package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// TraceEvent is one Chrome/Perfetto trace-event object ("X" complete
// events only). Timestamps and durations are microseconds, as the
// trace-event format requires; fractional values keep nanosecond
// precision.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the JSON Object Format of the Chrome trace-event
// specification (the array format is its traceEvents field alone).
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	// OtherData carries merge metadata on assembled fleet traces (trace
	// ID, node and span counts); trace viewers ignore it.
	OtherData map[string]any `json:"otherData,omitempty"`
}

// TraceEvents converts the recorded spans to Chrome trace events,
// ordered by start time. Each span's lane (the root span it descends
// from) becomes the tid, so concurrent requests or workers render as
// separate tracks.
func (t *Tracer) TraceEvents() []TraceEvent {
	recs := t.Snapshot()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	out := make([]TraceEvent, 0, len(recs))
	for _, r := range recs {
		ev := TraceEvent{
			Name: r.Name,
			Ph:   "X",
			Ts:   float64(r.Start.Nanoseconds()) / 1e3,
			Dur:  float64(r.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  int64(r.Lane),
		}
		if len(r.Attrs) > 0 || r.Parent != 0 {
			ev.Args = map[string]any{}
			if r.Parent != 0 {
				ev.Args["parent"] = r.Parent
			}
			ev.Args["span_id"] = r.ID
			if !r.Trace.IsZero() {
				ev.Args["trace_id"] = r.Trace.String()
			}
			for _, a := range r.Attrs {
				if a.IsInt {
					ev.Args[a.Key] = a.Int
				} else {
					ev.Args[a.Key] = a.Str
				}
			}
		}
		out = append(out, ev)
	}
	return out
}

// WriteTraceJSON writes the recorded spans as a Chrome trace-event JSON
// object (load it in chrome://tracing or ui.perfetto.dev).
func (t *Tracer) WriteTraceJSON(w io.Writer) error {
	f := TraceFile{TraceEvents: t.TraceEvents(), DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}
