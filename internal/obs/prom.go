package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WriteProm writes every registered metric in Prometheus text
// exposition format (version 0.0.4). Histograms emit cumulative
// le-buckets at their power-of-two upper bounds (non-empty prefix only)
// plus +Inf, _sum, and _count, and additionally pre-computed
// p50/p90/p99 estimates as a companion gauge family <name>_quantile.
// The output is strictly 0.0.4: no exemplar annotations, so any classic
// text-format scraper can consume it. Exemplars are opt-in via
// WritePromExemplars.
func (r *Registry) WriteProm(w io.Writer) error {
	return r.writeProm(w, false)
}

// WritePromExemplars is WriteProm plus OpenMetrics-style exemplar
// annotations (` # {trace_id="..."} value ts`) on populated histogram
// bucket lines. Exemplars are NOT part of the 0.0.4 text format — a
// classic Prometheus text parser rejects lines carrying them — so this
// form must only be served to clients that asked for it (the /metrics
// handler gates it behind ?exemplars=1).
func (r *Registry) WritePromExemplars(w io.Writer) error {
	return r.writeProm(w, true)
}

func (r *Registry) writeProm(w io.Writer, exemplars bool) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		help := f.help
		if help == "" {
			help = f.name
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range f.order {
			labels := strings.Split(k, "\x00")
			if k == "" {
				labels = nil
			}
			switch m := f.vars[k].(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(labels), m.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(labels), m.Value())
			case *Histogram:
				writeHist(bw, f.name, labels, m, exemplars)
			}
		}
	}
	return bw.Flush()
}

func writeHist(w io.Writer, name string, labels []string, h *Histogram, exemplars bool) {
	buckets, count, sum := h.Snapshot()
	last := -1
	for i, n := range buckets {
		if n > 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last; i++ {
		cum += buckets[i]
		le := strconv.FormatInt(BucketUpper(i), 10)
		fmt.Fprintf(w, "%s_bucket%s %d", name,
			renderLabels(append(append([]string(nil), labels...), "le", le)), cum)
		// OpenMetrics-style exemplar: the bucket's most recent sampled
		// trace, appended as `# {trace_id="..."} value ts`.
		if ex := h.Exemplar(i); exemplars && ex != nil {
			fmt.Fprintf(w, " # {trace_id=\"%s\"} %d %.3f",
				escapeLabel(ex.TraceID), ex.Value, float64(ex.UnixNS)/1e9)
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		renderLabels(append(append([]string(nil), labels...), "le", "+Inf")), count)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, renderLabels(labels), sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), count)
}

// WritePromQuantiles appends gauge families <name>_p50/_p90/_p99 for
// every histogram — precomputed latency quantiles for scrapers that do
// not aggregate buckets server-side.
func (r *Registry) WritePromQuantiles(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		if f.kind != "histogram" {
			continue
		}
		for _, q := range []struct {
			suffix string
			q      float64
		}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
			fmt.Fprintf(bw, "# HELP %s_%s %s (%s estimate)\n", f.name, q.suffix, escapeHelp(f.help), q.suffix)
			fmt.Fprintf(bw, "# TYPE %s_%s gauge\n", f.name, q.suffix)
			for _, k := range f.order {
				labels := strings.Split(k, "\x00")
				if k == "" {
					labels = nil
				}
				h := f.vars[k].(*Histogram)
				fmt.Fprintf(bw, "%s_%s%s %d\n", f.name, q.suffix, renderLabels(labels), h.Quantile(q.q))
			}
		}
	}
	return bw.Flush()
}

func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(pairs[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(pairs[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// --- exposition-format validation ---
//
// ParseProm is a strict parser for the subset of the Prometheus text
// format this package emits, used by the unit tests and the CI guard to
// prove /metrics output is well-formed. It checks line syntax, metric
// and label name grammar, TYPE declarations preceding samples,
// histogram bucket monotonicity, and that +Inf equals _count.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// PromExemplar is a parsed OpenMetrics-style exemplar annotation on a
// bucket sample: `# {labels} value [ts]`.
type PromExemplar struct {
	Labels map[string]string
	Value  float64
	Ts     float64 // seconds; 0 when absent
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name     string
	Labels   map[string]string
	Value    float64
	Exemplar *PromExemplar
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// ParseProm parses (and validates) Prometheus text exposition. It
// returns families keyed by declared name and an error describing the
// first violation found.
func ParseProm(text string) (map[string]*PromFamily, error) {
	fams := map[string]*PromFamily{}
	declared := map[string]string{} // base name -> type
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// OpenMetrics terminator (emitted by the exemplar-bearing
			// form): ends the exposition.
			if strings.TrimSpace(line) == "# EOF" {
				break
			}
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !promNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				ty := fields[3]
				switch ty {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: bad type %q", lineNo, ty)
				}
				if _, dup := declared[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				declared[name] = ty
				if fams[name] == nil {
					fams[name] = &PromFamily{Name: name}
				}
				fams[name].Type = ty
			} else if fams[name] == nil {
				fams[name] = &PromFamily{Name: name, Help: fields[3]}
			} else {
				fams[name].Help = fields[3]
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(s.Name, suf)
			if trimmed != s.Name && declared[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		fam := fams[base]
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("line %d: sample %q precedes its TYPE declaration", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range fams {
		if fam.Type == "histogram" {
			if err := validateHistFamily(fam); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", fam.Name, err)
			}
		}
	}
	return fams, nil
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		s.Name = rest[:brace]
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		body := rest[brace+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
		for _, pair := range splitLabels(body) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			k := pair[:eq]
			v := pair[eq+1:]
			if !promLabelRe.MatchString(k) {
				return s, fmt.Errorf("bad label name %q", k)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return s, fmt.Errorf("unquoted label value %q", v)
			}
			s.Labels[k] = strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n").Replace(v[1 : len(v)-1])
		}
	} else {
		if sp < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.Name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !promNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	if idx := strings.Index(rest, " # "); idx >= 0 {
		ex, err := parsePromExemplar(strings.TrimSpace(rest[idx+3:]))
		if err != nil {
			return s, err
		}
		s.Exemplar = ex
		rest = strings.TrimSpace(rest[:idx])
	}
	valStr := strings.Fields(rest)
	if len(valStr) < 1 || len(valStr) > 2 {
		return s, fmt.Errorf("bad sample value %q", rest)
	}
	v, err := parsePromValue(valStr[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// parsePromExemplar parses the OpenMetrics-style exemplar body
// `{labels} value [ts]` appended to a bucket sample after ` # `.
func parsePromExemplar(body string) (*PromExemplar, error) {
	if len(body) == 0 || body[0] != '{' {
		return nil, fmt.Errorf("exemplar must start with a label set, got %q", body)
	}
	end := strings.IndexByte(body, '}')
	if end < 0 {
		return nil, fmt.Errorf("unterminated exemplar label set in %q", body)
	}
	ex := &PromExemplar{Labels: map[string]string{}}
	for _, pair := range splitLabels(body[1:end]) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed exemplar label %q", pair)
		}
		k, v := pair[:eq], pair[eq+1:]
		if !promLabelRe.MatchString(k) {
			return nil, fmt.Errorf("bad exemplar label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return nil, fmt.Errorf("unquoted exemplar label value %q", v)
		}
		ex.Labels[k] = strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n").Replace(v[1 : len(v)-1])
	}
	fields := strings.Fields(strings.TrimSpace(body[end+1:]))
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("bad exemplar value in %q", body)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return nil, err
	}
	ex.Value = v
	if len(fields) == 2 {
		ts, err := parsePromValue(fields[1])
		if err != nil {
			return nil, err
		}
		ex.Ts = ts
	}
	return ex, nil
}

// ExemplarCoverage reports, for a parsed histogram family, how many
// populated finite buckets exist and how many of those carry an
// exemplar — the exemplar_coverage ratio the benches gate on. Bucket
// population is recovered by de-accumulating the cumulative counts per
// label series.
func ExemplarCoverage(fam *PromFamily) (withExemplar, populated int) {
	if fam == nil {
		return 0, 0
	}
	type bucketRow struct {
		le    float64
		count float64
		ex    bool
	}
	bySeries := map[string][]bucketRow{}
	for _, s := range fam.Samples {
		if !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		le, err := parsePromValue(s.Labels["le"])
		if err != nil || math.IsInf(le, 1) {
			continue
		}
		var ks []string
		for k, v := range s.Labels {
			if k != "le" {
				ks = append(ks, k+"="+v)
			}
		}
		sort.Strings(ks)
		key := strings.Join(ks, ",")
		bySeries[key] = append(bySeries[key], bucketRow{le: le, count: s.Value, ex: s.Exemplar != nil})
	}
	for _, rows := range bySeries {
		sort.Slice(rows, func(i, j int) bool { return rows[i].le < rows[j].le })
		prev := 0.0
		for _, r := range rows {
			if r.count > prev {
				populated++
				if r.ex {
					withExemplar++
				}
			}
			prev = r.count
		}
	}
	return withExemplar, populated
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

// validateHistFamily checks the histogram invariants: per label set,
// buckets are cumulative (monotone non-decreasing with le), a +Inf
// bucket exists, and it equals _count.
func validateHistFamily(fam *PromFamily) error {
	type series struct {
		les     []float64
		counts  []float64
		inf     float64
		hasInf  bool
		count   float64
		hasCnt  bool
		hasSum  bool
		samples int
	}
	bySet := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		var ks []string
		for k, v := range labels {
			if k == "le" {
				continue
			}
			ks = append(ks, k+"="+v)
		}
		sort.Strings(ks)
		return strings.Join(ks, ",")
	}
	for _, s := range fam.Samples {
		sr := bySet[keyOf(s.Labels)]
		if sr == nil {
			sr = &series{}
			bySet[keyOf(s.Labels)] = sr
		}
		sr.samples++
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			v, err := parsePromValue(le)
			if err != nil {
				return fmt.Errorf("bad le %q", le)
			}
			if math.IsInf(v, 1) {
				sr.inf, sr.hasInf = s.Value, true
			} else {
				sr.les = append(sr.les, v)
				sr.counts = append(sr.counts, s.Value)
			}
		case strings.HasSuffix(s.Name, "_sum"):
			sr.hasSum = true
		case strings.HasSuffix(s.Name, "_count"):
			sr.count, sr.hasCnt = s.Value, true
		}
	}
	for set, sr := range bySet {
		if !sr.hasInf || !sr.hasCnt || !sr.hasSum {
			return fmt.Errorf("series {%s}: missing +Inf bucket, _count, or _sum", set)
		}
		if sr.inf != sr.count {
			return fmt.Errorf("series {%s}: +Inf bucket %v != count %v", set, sr.inf, sr.count)
		}
		for i := 1; i < len(sr.les); i++ {
			if sr.les[i] <= sr.les[i-1] {
				return fmt.Errorf("series {%s}: le not increasing", set)
			}
			if sr.counts[i] < sr.counts[i-1] {
				return fmt.Errorf("series {%s}: bucket counts not cumulative", set)
			}
		}
		if n := len(sr.counts); n > 0 && sr.counts[n-1] > sr.inf {
			return fmt.Errorf("series {%s}: finite bucket exceeds +Inf", set)
		}
	}
	return nil
}
