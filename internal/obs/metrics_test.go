package obs

import (
	"math"
	"sync"
	"testing"
)

// TestBucketOf pins the log-2 bucket boundaries: bucket i covers
// (2^(i-1), 2^i], with everything <= 1 in bucket 0.
func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{17, 5},
		{1024, 10}, {1025, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestBucketUpperCoversBucketOf checks the pairing invariant the
// Prometheus exposition relies on: every v lands in a bucket whose
// upper bound is >= v, and (for v > 1) whose predecessor's bound is < v.
func TestBucketUpperCoversBucketOf(t *testing.T) {
	for _, v := range []int64{1, 2, 3, 4, 5, 7, 8, 9, 1000, 1 << 20, 1<<40 + 3, math.MaxInt64} {
		i := bucketOf(v)
		if up := BucketUpper(i); up < v {
			t.Errorf("v=%d: BucketUpper(%d)=%d < v", v, i, up)
		}
		if i > 0 {
			if lo := BucketUpper(i - 1); lo >= v {
				t.Errorf("v=%d: BucketUpper(%d)=%d >= v (wrong bucket)", v, i-1, lo)
			}
		}
	}
	if BucketUpper(63) != math.MaxInt64 || BucketUpper(100) != math.MaxInt64 {
		t.Errorf("BucketUpper must saturate at MaxInt64 for i >= 63")
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{1, 2, 3, 4, 100, -7} {
		h.Observe(v)
	}
	buckets, count, sum := h.Snapshot()
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
	if sum != 110 { // -7 clamps to 0
		t.Fatalf("sum = %d, want 110", sum)
	}
	// -7→0 and 1 in bucket 0; 2 in bucket 1; 3 and 4 in bucket 2; 100 in bucket 7.
	wantBuckets := map[int]int64{0: 2, 1: 1, 2: 2, 7: 1}
	for i, n := range buckets {
		if n != wantBuckets[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, wantBuckets[i])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile should be 0")
	}
	// 100 observations of exactly 8: every quantile interpolates inside
	// bucket 3, i.e. lands in (4, 8].
	for i := 0; i < 100; i++ {
		h.Observe(8)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		got := h.Quantile(q)
		if got <= 4 || got > 8 {
			t.Errorf("Quantile(%v) = %d, want in (4, 8]", q, got)
		}
	}
	// Skewed: 99 small values and 1 huge one. p50 must stay small, p100
	// must land in the huge value's bucket.
	h2 := &Histogram{}
	for i := 0; i < 99; i++ {
		h2.Observe(1)
	}
	h2.Observe(1 << 30)
	if got := h2.Quantile(0.5); got > 1 {
		t.Errorf("p50 = %d, want <= 1", got)
	}
	if got := h2.Quantile(1.0); got <= 1<<29 {
		t.Errorf("p100 = %d, want in the 2^30 bucket", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help", "k", "v")
	c2 := r.Counter("x_total", "help", "k", "v")
	if c1 != c2 {
		t.Fatalf("same (name, labels) must return the same counter")
	}
	c3 := r.Counter("x_total", "help", "k", "w")
	if c1 == c3 {
		t.Fatalf("different labels must return a different counter")
	}
	c1.Add(2)
	c2.Add(3)
	if c1.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c1.Value())
	}

	g := r.Gauge("depth", "help")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}

	n := int64(41)
	r.GaugeFunc("cb", "help", func() int64 { return n })
	n++
	if got := r.Gauge("cb", "help").Value(); got != 42 {
		t.Fatalf("GaugeFunc read = %d, want 42 (must evaluate at read time)", got)
	}
}

// TestNilMetricsSafe proves the disabled path: every operation on nil
// receivers is a no-op rather than a panic.
func TestNilMetricsSafe(t *testing.T) {
	var r *Registry
	r.Counter("a", "h").Add(1)
	r.Gauge("b", "h").Set(1)
	r.GaugeFunc("c", "h", func() int64 { return 1 })
	r.Histogram("d", "h").Observe(1)
	if r.families() != nil {
		t.Errorf("nil registry families() must be nil")
	}
	var h *Histogram
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("nil histogram accessors must return 0")
	}
	if _, c, s := h.Snapshot(); c != 0 || s != 0 {
		t.Errorf("nil histogram snapshot must be empty")
	}
	var o *Obs
	if o.TracerOrNil() != nil || o.MetricsOrNil() != nil || o.ProvOrNil() != nil {
		t.Errorf("nil Obs accessors must return nil")
	}
}

// TestMetricsConcurrent exercises the lock-free observation path and the
// registry's idempotent lookups under -race.
func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits_total", "h").Add(1)
				r.Histogram("lat_ns", "h", "w", "x").Observe(int64(i))
				if g%2 == 0 {
					r.WriteProm(discard{})
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("hits_total", "h").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("lat_ns", "h", "w", "x").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
