package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// twoNodeTrace builds the canonical cross-node shape: a client-minted
// root context, a caller node with a request span and a fill span, and
// an owner node whose spans parent under the fill span — with the owner
// clock skewed into the past to exercise normalization.
func twoNodeTrace(t *testing.T) (TraceID, []TraceSpan) {
	t.Helper()
	tid := NewTraceID()
	client := TraceContext{TraceID: tid, SpanID: randUint64() | 1, Sampled: true}

	caller := NewTracer(64)
	root := caller.StartRemote("http POST /v1/select", client)
	fill := root.Child("cluster fill")
	time.Sleep(time.Millisecond)

	owner := NewTracer(64)
	remote := owner.StartRemote("http POST /v1/artifact", fill.Context())
	synth := remote.Child("synth")
	synth.End()
	remote.End()
	fill.End()
	root.End()

	spans := caller.ExportTraceSpans(tid, "http://caller")
	ownerSpans := owner.ExportTraceSpans(tid, "http://owner")
	// Skew the owner's clock 2s into the past: its spans would start
	// before their caller-side parent without normalization.
	for i := range ownerSpans {
		ownerSpans[i].StartUnixNS -= 2 * int64(time.Second)
	}
	return tid, append(spans, ownerSpans...)
}

func TestValidateTraceSpans(t *testing.T) {
	_, spans := twoNodeTrace(t)
	if err := ValidateTraceSpans(spans); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if err := ValidateTraceSpans(nil); err == nil {
		t.Error("empty trace accepted")
	}

	// Orphan: a span whose parent chain never reaches the root.
	orphaned := append([]TraceSpan(nil), spans...)
	orphaned = append(orphaned, TraceSpan{
		TraceID: spans[0].TraceID, SpanID: 0xdead, Parent: 0xbeef, Name: "lost", Node: "x"},
		TraceSpan{TraceID: spans[0].TraceID, SpanID: 0xbeef, Parent: 0xdead, Name: "cycle", Node: "x"})
	if err := ValidateTraceSpans(orphaned); err == nil {
		t.Error("orphan cycle accepted")
	}

	// Duplicate span IDs.
	dup := append(append([]TraceSpan(nil), spans...), spans[0])
	if err := ValidateTraceSpans(dup); err == nil {
		t.Error("duplicate span ID accepted")
	}

	// Mixed traces.
	mixed := append([]TraceSpan(nil), spans...)
	mixed[len(mixed)-1].TraceID = NewTraceID().String()
	if err := ValidateTraceSpans(mixed); err == nil {
		t.Error("mixed trace IDs accepted")
	}
}

func TestAssembleTraceNormalizesClocks(t *testing.T) {
	tid, spans := twoNodeTrace(t)
	f, rep := AssembleTrace(spans)
	if rep.Spans != len(spans) || rep.Nodes != 2 || rep.Roots != 1 || rep.Orphans != 0 {
		t.Fatalf("report %+v, want %d spans over 2 nodes, 1 root, 0 orphans", rep, len(spans))
	}
	if rep.TraceID != tid.String() {
		t.Errorf("report trace ID %s, want %s", rep.TraceID, tid)
	}

	// Rebuild the parent relation from the emitted args and check no
	// child starts before its parent (the point of normalization).
	type evInfo struct{ ts float64 }
	byID := map[uint64]evInfo{}
	parent := map[uint64]uint64{}
	names := map[string]bool{}
	procs := map[int64]string{}
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" {
			procs[ev.Pid], _ = ev.Args["name"].(string)
			continue
		}
		id := uint64(toF(t, ev.Args["span_id"]))
		byID[id] = evInfo{ts: ev.Ts}
		if p, ok := ev.Args["parent"]; ok {
			parent[id] = uint64(toF(t, p))
		}
		names[ev.Name] = true
		if got, _ := ev.Args["trace_id"].(string); got != tid.String() {
			t.Errorf("event %s trace_id %v", ev.Name, ev.Args["trace_id"])
		}
	}
	for id, p := range parent {
		pe, ok := byID[p]
		if !ok {
			continue // client-minted root parent lives outside the file
		}
		if byID[id].ts < pe.ts {
			t.Errorf("child %016x (ts=%v) starts before parent %016x (ts=%v)", id, byID[id].ts, p, pe.ts)
		}
	}
	for _, want := range []string{"http POST /v1/select", "cluster fill", "http POST /v1/artifact", "synth"} {
		if !names[want] {
			t.Errorf("assembled trace missing %q; have %v", want, names)
		}
	}
	if procs[1] != "http://caller" {
		t.Errorf("pid 1 is %q, want the root's node", procs[1])
	}

	// The assembled file must satisfy its own strict parser.
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ParseTraceFile(data)
	if err != nil {
		t.Fatalf("assembled trace fails strict parse: %v", err)
	}
	if pt.Spans != len(spans) || pt.Nodes != 2 || pt.Roots != 1 {
		t.Errorf("parsed %+v, want %d spans, 2 nodes, 1 root", pt, len(spans))
	}
}

// TestAssembleTraceParentCycle: a peer can hand back spans whose parents
// form a cycle, leaving no root at all. Assembly must stay best-effort —
// anchor on the earliest span, report Roots=0 — not panic.
func TestAssembleTraceParentCycle(t *testing.T) {
	tid := NewTraceID().String()
	spans := []TraceSpan{
		{TraceID: tid, SpanID: 1, Parent: 2, Name: "a", Node: "n1", StartUnixNS: 200},
		{TraceID: tid, SpanID: 2, Parent: 1, Name: "b", Node: "n1", StartUnixNS: 100},
	}
	if err := ValidateTraceSpans(spans); err == nil {
		t.Error("validator accepted a parent cycle")
	}
	f, rep := AssembleTrace(spans)
	if rep.Spans != 2 || rep.Roots != 0 || rep.Orphans != 0 {
		t.Errorf("report %+v, want 2 spans, 0 roots, 0 orphans", rep)
	}
	var names []string
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" {
			names = append(names, ev.Name)
		}
	}
	if len(names) != 2 {
		t.Errorf("assembled %v, want both cycle spans emitted", names)
	}
}

// TestParseTraceFileHugeSpanIDs: span IDs are uint64; 2^53 and 2^53+1
// collide when decoded as float64, so the strict parser must keep full
// integer precision or it reports a spurious duplicate span ID.
func TestParseTraceFileHugeSpanIDs(t *testing.T) {
	const a, b = uint64(1) << 53, uint64(1)<<53 + 1
	f := &TraceFile{DisplayTimeUnit: "ms", TraceEvents: []TraceEvent{
		{Name: "root", Ph: "X", Pid: 1, Args: map[string]any{"span_id": a}},
		{Name: "child", Ph: "X", Pid: 1, Args: map[string]any{"span_id": b, "parent": a}},
		{Name: "leaf", Ph: "X", Pid: 1, Args: map[string]any{"span_id": ^uint64(0), "parent": b}},
	}}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ParseTraceFile(data)
	if err != nil {
		t.Fatalf("huge span IDs rejected: %v", err)
	}
	if pt.Spans != 3 || pt.Roots != 1 {
		t.Errorf("parsed %+v, want 3 spans with 1 root", pt)
	}
}

func toF(t *testing.T, v any) float64 {
	t.Helper()
	f, ok := v.(float64)
	if !ok {
		if u, ok := v.(uint64); ok {
			return float64(u)
		}
		t.Fatalf("arg %v (%T) is not numeric", v, v)
	}
	return f
}

func TestParseTraceFileRejects(t *testing.T) {
	_, spans := twoNodeTrace(t)
	f, _ := AssembleTrace(spans)
	good, _ := json.Marshal(f)

	cases := []struct {
		name   string
		mutate func() []byte
	}{
		{"not json", func() []byte { return []byte("{") }},
		{"unknown field", func() []byte {
			return []byte(strings.Replace(string(good), `"traceEvents"`, `"evil":1,"traceEvents"`, 1))
		}},
		{"bad phase", func() []byte { return []byte(strings.ReplaceAll(string(good), `"ph":"X"`, `"ph":"B"`)) }},
		{"no spans", func() []byte { return []byte(`{"traceEvents":[],"displayTimeUnit":"ms"}`) }},
		{"bad unit", func() []byte { return []byte(strings.Replace(string(good), `"ms"`, `"ns"`, 1)) }},
		{"missing span_id", func() []byte { return []byte(strings.ReplaceAll(string(good), `"span_id"`, `"span_idx"`)) }},
	}
	for _, c := range cases {
		if _, err := ParseTraceFile(c.mutate()); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Two roots: break one parent link.
	var tf TraceFile
	if err := json.Unmarshal(good, &tf); err != nil {
		t.Fatal(err)
	}
	broke := false
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.Args["parent"] != nil && !broke && ev.Name == "synth" {
			ev.Args["parent"] = float64(0x1234)
			broke = true
		}
	}
	if !broke {
		t.Fatal("no parent to break")
	}
	data, _ := json.Marshal(tf)
	if _, err := ParseTraceFile(data); err == nil {
		t.Error("broken span link accepted")
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_ns", "latency", "path", "/x")
	h.Observe(100) // unsampled: no exemplar
	tidA, tidB := NewTraceID().String(), NewTraceID().String()
	h.ObserveExemplar(100, tidA)
	h.ObserveExemplar(1<<20, tidB)
	h.ObserveExemplar(5000, "") // sampled-off path: counts, no exemplar

	if ex := h.Exemplar(bucketOf(100)); ex == nil || ex.TraceID != tidA {
		t.Fatalf("bucket exemplar = %+v, want trace %s", ex, tidA)
	}
	if ex := h.Exemplar(bucketOf(5000)); ex != nil {
		t.Errorf("empty-trace observation stored exemplar %+v", ex)
	}
	if h.Count() != 4 {
		t.Errorf("count %d, want 4", h.Count())
	}

	exs := r.TraceExemplars()
	if len(exs) != 2 {
		t.Fatalf("TraceExemplars: %d rows, want 2: %+v", len(exs), exs)
	}
	if exs[0].Metric != "req_ns" || exs[0].Labels["path"] != "/x" || exs[0].TraceID != tidA {
		t.Errorf("row 0 = %+v", exs[0])
	}
	if exs[1].TraceID != tidB || exs[1].BucketLE < exs[0].BucketLE {
		t.Errorf("row 1 = %+v", exs[1])
	}

	// The default exposition must stay strictly 0.0.4: a classic
	// Prometheus text parser rejects exemplar annotations, so WriteProm
	// must never emit them.
	var plain strings.Builder
	if err := r.WriteProm(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), " # {") {
		t.Errorf("WriteProm leaked exemplar annotations into 0.0.4 output:\n%s", plain.String())
	}

	// The opt-in exposition carries the annotation and still parses
	// strictly.
	var sb strings.Builder
	if err := r.WritePromExemplars(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `# {trace_id="`+tidA+`"} 100`) {
		t.Errorf("exposition missing exemplar annotation:\n%s", text)
	}
	fams, err := ParseProm(text)
	if err != nil {
		t.Fatalf("exposition with exemplars fails strict parse: %v\n%s", err, text)
	}
	var found int
	for _, s := range fams["req_ns"].Samples {
		if s.Exemplar != nil {
			found++
			if s.Exemplar.Labels["trace_id"] == "" {
				t.Errorf("exemplar without trace_id: %+v", s.Exemplar)
			}
		}
	}
	if found != 2 {
		t.Errorf("parsed %d exemplars, want 2", found)
	}
	withEx, populated := ExemplarCoverage(fams["req_ns"])
	if populated < 3 || withEx != 2 {
		t.Errorf("ExemplarCoverage = %d/%d, want 2 of >=3", withEx, populated)
	}

	// Nil-safety.
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x")
	if nilH.Exemplar(0) != nil {
		t.Error("nil histogram returned exemplar")
	}
	var nilR *Registry
	if nilR.TraceExemplars() != nil {
		t.Error("nil registry returned exemplars")
	}
}
