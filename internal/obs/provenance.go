package obs

import (
	"sync"
	"time"
)

// SMTQuery is the decision-provenance record of one solver query: what
// was asked, what came back, how long it took, and how hard the SAT
// core worked (the per-query cost distribution Daly et al. identify as
// the tuning signal synthesis needs).
type SMTQuery struct {
	// Context names the caller's purpose (e.g. "verify" or "fallback")
	// plus any pattern identification the caller attaches.
	Context string `json:"context,omitempty"`
	// Result is the verdict: "equal", "not-equal", or "unknown".
	Result string `json:"result"`
	DurNS  int64  `json:"dur_ns"`
	// SAT-core work counters for this query alone.
	Decisions    int64 `json:"decisions"`
	Conflicts    int64 `json:"conflicts"`
	Propagations int64 `json:"propagations"`
	Restarts     int64 `json:"restarts"`
}

// RejectedCand is one selection candidate that matched dispatch but was
// not chosen, with the reason.
type RejectedCand struct {
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
}

// SelDecision is the decision-provenance record of one selection root:
// which rule won, which candidates were rejected and why, or why the
// selector fell back.
type SelDecision struct {
	// Fn and Root identify the instruction ("fn" and the gMIR text).
	Fn   string `json:"fn"`
	Root string `json:"root"`
	// Engine is "greedy" or "optimal".
	Engine string `json:"engine"`
	// Chosen is the winning rule's sequence (empty on hook lowering or
	// fallback); Via distinguishes "rule", "hook", "none" (a root no
	// rule or hook could lower), and "fallback" (the function-level
	// consequence of a "none" root).
	Chosen   string         `json:"chosen,omitempty"`
	Via      string         `json:"via"`
	Rejected []RejectedCand `json:"rejected,omitempty"`
	// Fallback is the function-level fallback reason when Via=="fallback".
	Fallback string `json:"fallback,omitempty"`
}

// ProvLog is a pair of bounded rings of provenance events. A nil
// *ProvLog disables recording; Enabled lets instrumented code skip
// event assembly entirely when off.
type ProvLog struct {
	mu      sync.Mutex
	smt     []SMTQuery
	smtHead int
	smtN    int
	sel     []SelDecision
	selHead int
	selN    int

	smtTotal int64
	selTotal int64
}

// DefaultProvCap bounds each provenance ring when NewProvLog is given 0.
const DefaultProvCap = 4096

// NewProvLog returns an enabled provenance log holding up to smtCap SMT
// query records and selCap selection decisions (0 = DefaultProvCap).
func NewProvLog(smtCap, selCap int) *ProvLog {
	if smtCap <= 0 {
		smtCap = DefaultProvCap
	}
	if selCap <= 0 {
		selCap = DefaultProvCap
	}
	return &ProvLog{
		smt: make([]SMTQuery, 0, smtCap),
		sel: make([]SelDecision, 0, selCap),
	}
}

// Enabled reports whether events should be assembled at all.
func (p *ProvLog) Enabled() bool { return p != nil }

// AddSMT records one solver query (nil-safe).
func (p *ProvLog) AddSMT(q SMTQuery) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if len(p.smt) < cap(p.smt) {
		p.smt = append(p.smt, q)
		p.smtN++
	} else {
		p.smt[p.smtHead] = q
		p.smtHead = (p.smtHead + 1) % cap(p.smt)
	}
	p.smtTotal++
	p.mu.Unlock()
}

// AddSel records one selection decision (nil-safe).
func (p *ProvLog) AddSel(d SelDecision) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if len(p.sel) < cap(p.sel) {
		p.sel = append(p.sel, d)
		p.selN++
	} else {
		p.sel[p.selHead] = d
		p.selHead = (p.selHead + 1) % cap(p.sel)
	}
	p.selTotal++
	p.mu.Unlock()
}

// SMTQueries returns the recorded SMT query events, oldest first.
func (p *ProvLog) SMTQueries() []SMTQuery {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SMTQuery, 0, p.smtN)
	out = append(out, p.smt[p.smtHead:]...)
	if p.smtHead > 0 {
		out = append(out, p.smt[:p.smtHead]...)
	}
	return out
}

// Selections returns the recorded selection decisions, oldest first.
func (p *ProvLog) Selections() []SelDecision {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SelDecision, 0, p.selN)
	out = append(out, p.sel[p.selHead:]...)
	if p.selHead > 0 {
		out = append(out, p.sel[:p.selHead]...)
	}
	return out
}

// Totals returns lifetime event counts (including overwritten ones).
func (p *ProvLog) Totals() (smt, sel int64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.smtTotal, p.selTotal
}

// ObserveDur is a convenience for recording a duration into a histogram
// (nil-safe on both sides).
func ObserveDur(h *Histogram, d time.Duration) {
	h.Observe(d.Nanoseconds())
}
