package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestWritePromRoundTrip is the exposition-format contract test: write a
// registry with all three metric kinds, then run the output through the
// strict parser (the same one the service tests and the CI guard use).
func TestWritePromRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("iseld_requests_total", "requests served", "path", "/v1/select", "status", "200").Add(17)
	r.Counter("iseld_requests_total", "requests served", "path", "/v1/metrics", "status", "200").Add(3)
	r.Gauge("iseld_queue_depth", "jobs waiting").Set(2)
	h := r.Histogram("smt_query_duration_ns", "per-query solver latency", "result", "equal")
	for _, v := range []int64{3, 5, 900, 70_000, 70_000, 2_000_000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if err := r.WritePromQuantiles(&buf); err != nil {
		t.Fatalf("WritePromQuantiles: %v", err)
	}
	text := buf.String()

	fams, err := ParseProm(text)
	if err != nil {
		t.Fatalf("exposition failed strict parse: %v\n%s", err, text)
	}

	cf := fams["iseld_requests_total"]
	if cf == nil || cf.Type != "counter" {
		t.Fatalf("counter family missing or mistyped: %+v", cf)
	}
	if len(cf.Samples) != 2 {
		t.Fatalf("counter samples = %d, want 2 label sets", len(cf.Samples))
	}
	var got17 bool
	for _, s := range cf.Samples {
		if s.Labels["path"] == "/v1/select" && s.Value == 17 {
			got17 = true
		}
	}
	if !got17 {
		t.Errorf("counter value for /v1/select not 17: %+v", cf.Samples)
	}

	gf := fams["iseld_queue_depth"]
	if gf == nil || gf.Type != "gauge" || len(gf.Samples) != 1 || gf.Samples[0].Value != 2 {
		t.Fatalf("gauge family wrong: %+v", gf)
	}

	hf := fams["smt_query_duration_ns"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", hf)
	}
	// ParseProm already validated cumulativity and +Inf == _count; spot
	// check count and sum values survive the text round trip.
	var cnt, sum float64
	for _, s := range hf.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_count"):
			cnt = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		}
	}
	if cnt != 6 || sum != 2140908 {
		t.Errorf("histogram count/sum = %v/%v, want 6/2140908", cnt, sum)
	}

	// Quantile companion families must parse as gauges and be ordered
	// p50 <= p90 <= p99.
	var p50, p99 float64
	for _, suf := range []string{"_p50", "_p90", "_p99"} {
		qf := fams["smt_query_duration_ns"+suf]
		if qf == nil || qf.Type != "gauge" || len(qf.Samples) != 1 {
			t.Fatalf("quantile family %s missing: %+v", suf, qf)
		}
		switch suf {
		case "_p50":
			p50 = qf.Samples[0].Value
		case "_p99":
			p99 = qf.Samples[0].Value
		}
	}
	if p50 > p99 {
		t.Errorf("p50 %v > p99 %v", p50, p99)
	}
}

// TestWritePromEscaping checks label-value and help escaping survives a
// round trip through the parser.
func TestWritePromEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", `help with \ backslash`, "spec", "a\"b\\c\nd").Add(1)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	fams, err := ParseProm(buf.String())
	if err != nil {
		t.Fatalf("escaped exposition failed parse: %v\n%s", err, buf.String())
	}
	f := fams["weird_total"]
	if len(f.Samples) != 1 {
		t.Fatalf("samples = %+v", f.Samples)
	}
	if got := f.Samples[0].Labels["spec"]; got != "a\"b\\c\nd" {
		t.Errorf("label value round-trip: got %q", got)
	}
}

// TestParsePromRejectsMalformed ensures the validator actually rejects
// the failure modes it exists to catch — otherwise the CI guard is
// theater.
func TestParsePromRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"sample before TYPE", "foo 1\n"},
		{"bad metric name", "# HELP 9bad x\n# TYPE 9bad counter\n9bad 1\n"},
		{"bad type", "# HELP a x\n# TYPE a banana\na 1\n"},
		{"duplicate TYPE", "# TYPE a counter\n# TYPE a counter\na 1\n"},
		{"no value", "# HELP a x\n# TYPE a counter\na\n"},
		{"unquoted label", `# TYPE a counter` + "\n" + `a{k=v} 1` + "\n"},
		{"non-cumulative buckets", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n"},
		{"inf != count", "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n"},
		{"missing sum", "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_count 5\n"},
		{"le not increasing", "# TYPE h histogram\n" +
			"h_bucket{le=\"4\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"},
	}
	for _, c := range cases {
		if _, err := ParseProm(c.text); err == nil {
			t.Errorf("%s: ParseProm accepted malformed input:\n%s", c.name, c.text)
		}
	}
}

// TestParsePromValues checks the special float values the text format
// allows.
func TestParsePromValues(t *testing.T) {
	text := "# HELP v x\n# TYPE v gauge\nv{k=\"inf\"} +Inf\nv{k=\"nan\"} NaN\nv{k=\"neg\"} -3.5\n"
	fams, err := ParseProm(text)
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	for _, s := range fams["v"].Samples {
		switch s.Labels["k"] {
		case "inf":
			if !math.IsInf(s.Value, 1) {
				t.Errorf("+Inf parsed as %v", s.Value)
			}
		case "nan":
			if !math.IsNaN(s.Value) {
				t.Errorf("NaN parsed as %v", s.Value)
			}
		case "neg":
			if s.Value != -3.5 {
				t.Errorf("-3.5 parsed as %v", s.Value)
			}
		}
	}
}

// TestWritePromEmptyHistogram: a histogram with zero observations must
// still satisfy the validator (it emits only +Inf, _sum, _count).
func TestWritePromEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("quiet_ns", "never observed")
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if _, err := ParseProm(buf.String()); err != nil {
		t.Fatalf("empty histogram exposition invalid: %v\n%s", err, buf.String())
	}
}
