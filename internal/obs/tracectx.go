package obs

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier, shared by every span one user
// request produces anywhere in the fleet. The zero value means "no
// trace" — plain spans (deep synthesis internals) carry it and are
// excluded from per-trace export.
type TraceID [16]byte

// IsZero reports whether the ID is the no-trace sentinel.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// ParseTraceID parses exactly 32 lowercase hex digits into a non-zero
// TraceID. Anything else — wrong length, uppercase, non-hex, all-zero —
// is an error, so a hostile path segment can never round-trip.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace ID must be 32 hex digits, got %d", len(s))
	}
	if !isLowerHex(s) {
		return id, fmt.Errorf("obs: trace ID %q is not lowercase hex", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, err
	}
	if id.IsZero() {
		return id, fmt.Errorf("obs: trace ID is all-zero")
	}
	return id, nil
}

// traceSeq seeds the fallback ID path when crypto/rand is unavailable.
var traceSeq atomic.Uint64

// NewTraceID mints a random trace ID (non-zero by construction).
func NewTraceID() TraceID {
	var id TraceID
	if _, err := cryptorand.Read(id[:]); err == nil && !id.IsZero() {
		return id
	}
	binary.BigEndian.PutUint64(id[:8], uint64(time.Now().UnixNano()))
	binary.BigEndian.PutUint64(id[8:], splitmix64(traceSeq.Add(1)))
	if id.IsZero() {
		id[15] = 1
	}
	return id
}

// randUint64 draws a random 64-bit value (used for per-tracer span-ID
// bases and client-side root span IDs).
func randUint64() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		return binary.BigEndian.Uint64(b[:])
	}
	return splitmix64(uint64(time.Now().UnixNano()) + traceSeq.Add(1))
}

// TraceHeader is the cross-node trace-context header, W3C
// traceparent-shaped: 00-<32 hex trace ID>-<16 hex span ID>-<2 hex flags>.
const TraceHeader = "X-Iseld-Trace"

// traceHeaderLen is the exact length of a well-formed header value.
const traceHeaderLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// TraceContext is the portable identity of a position in a trace: which
// trace, which span is the parent of whatever happens next, and whether
// the trace is sampled. It crosses node boundaries via TraceHeader.
type TraceContext struct {
	TraceID TraceID
	SpanID  uint64
	Sampled bool
}

// Valid reports whether the context identifies a real trace position.
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() && tc.SpanID != 0 }

// Header renders the context in the X-Iseld-Trace wire form.
func (tc TraceContext) Header() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%016x-%s", tc.TraceID.String(), tc.SpanID, flags)
}

// ParseTraceHeader strictly parses an X-Iseld-Trace value. The format
// is fixed-width; any deviation — wrong length (oversized values are
// rejected before any allocation), unknown version, uppercase or
// non-hex digits, zero trace or span ID, unknown flags — is an error.
// Callers treat an error as "no context" and mint a fresh one, so
// malformed or hostile headers can never propagate.
func ParseTraceHeader(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) != traceHeaderLen {
		return tc, fmt.Errorf("obs: trace header length %d, want %d", len(s), traceHeaderLen)
	}
	if s[0:2] != "00" {
		return tc, fmt.Errorf("obs: unknown trace header version %q", s[0:2])
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("obs: malformed trace header %q", s)
	}
	tid, err := ParseTraceID(s[3:35])
	if err != nil {
		return tc, err
	}
	sid := s[36:52]
	if !isLowerHex(sid) {
		return tc, fmt.Errorf("obs: span ID %q is not lowercase hex", sid)
	}
	var span uint64
	for i := 0; i < len(sid); i++ {
		span = span<<4 | uint64(hexVal(sid[i]))
	}
	if span == 0 {
		return tc, fmt.Errorf("obs: span ID is zero")
	}
	switch s[53:55] {
	case "01":
		tc.Sampled = true
	case "00":
	default:
		return tc, fmt.Errorf("obs: unknown trace flags %q", s[53:55])
	}
	tc.TraceID = tid
	tc.SpanID = span
	return tc, nil
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

func hexVal(c byte) int {
	if c <= '9' {
		return int(c - '0')
	}
	return int(c-'a') + 10
}

// splitmix64 is the SplitMix64 output function — one multiply-xor
// avalanche pass, enough to spread a sequential counter over the full
// 64-bit space so span IDs minted on different nodes cannot collide by
// counting in lockstep.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
