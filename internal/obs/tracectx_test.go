package obs

import (
	"strings"
	"testing"
)

func TestTraceContextHeaderRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: randUint64() | 1, Sampled: true}
	h := tc.Header()
	if len(h) != traceHeaderLen {
		t.Fatalf("header %q length %d, want %d", h, len(h), traceHeaderLen)
	}
	got, err := ParseTraceHeader(h)
	if err != nil {
		t.Fatalf("ParseTraceHeader(%q): %v", h, err)
	}
	if got != tc {
		t.Errorf("round trip: got %+v, want %+v", got, tc)
	}
	// Unsampled flag round-trips too.
	tc.Sampled = false
	got, err = ParseTraceHeader(tc.Header())
	if err != nil || got.Sampled {
		t.Errorf("unsampled round trip: %+v err=%v", got, err)
	}
}

// TestParseTraceHeaderHostile is the regression test for the
// cleanRequestID-style validation contract: every malformed, oversized,
// or hostile header must be rejected (the middleware then mints fresh),
// never accepted or propagated.
func TestParseTraceHeaderHostile(t *testing.T) {
	valid := TraceContext{TraceID: NewTraceID(), SpanID: 7, Sampled: true}.Header()
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "00-abc"},
		{"oversized", valid + strings.Repeat("a", 4096)},
		{"bad version", "99" + valid[2:]},
		{"uppercase trace", strings.ToUpper(valid[:35]) + valid[35:]},
		{"non-hex trace", "00-" + strings.Repeat("zz", 16) + valid[35:]},
		{"zero trace", "00-" + strings.Repeat("0", 32) + valid[35:]},
		{"zero span", valid[:36] + strings.Repeat("0", 16) + valid[52:]},
		{"bad flags", valid[:53] + "7f"},
		{"wrong separators", strings.ReplaceAll(valid, "-", "_")},
		{"injection newline", valid[:53] + "\n1"},
		{"injection header", "00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("a", 7) + "\r\nX-Evil:1"},
		{"garbage right length", strings.Repeat("!", traceHeaderLen)},
	}
	for _, c := range cases {
		if _, err := ParseTraceHeader(c.in); err == nil {
			t.Errorf("%s: ParseTraceHeader(%q) accepted hostile input", c.name, c.in)
		}
	}
}

func TestParseTraceIDStrict(t *testing.T) {
	id := NewTraceID()
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("round trip: %v err=%v", got, err)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("0", 32),
		strings.Repeat("G", 32), strings.ToUpper(id.String()), id.String() + "00"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestNewTraceIDDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("zero trace ID minted")
		}
		if seen[id.String()] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id.String()] = true
	}
}

// TestSpanIDsUniqueAcrossTracers: two tracers (two "nodes") minting
// spans concurrently must not collide — merged fleet traces depend on
// span-ID uniqueness across processes.
func TestSpanIDsUniqueAcrossTracers(t *testing.T) {
	a, b := NewTracer(4096), NewTracer(4096)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		for _, tr := range []*Tracer{a, b} {
			sp := tr.Start("s")
			if sp.id == 0 {
				t.Fatal("zero span ID")
			}
			if seen[sp.id] {
				t.Fatalf("span ID collision at %d: %016x", i, sp.id)
			}
			seen[sp.id] = true
			sp.End()
		}
	}
}

func TestSpanContextPropagation(t *testing.T) {
	tr := NewTracer(64)
	tid := NewTraceID()
	root := tr.StartTrace("root", tid)
	child := root.Child("child")
	if child.Context().TraceID != tid {
		t.Errorf("child did not inherit trace: %+v", child.Context())
	}
	// Cross-node hop: remote span parents under the propagated context.
	remoteTr := NewTracer(64)
	remote := remoteTr.StartRemote("remote", child.Context())
	if remote.parent != child.id || remote.trace != tid {
		t.Errorf("remote span: parent %016x trace %s, want %016x %s",
			remote.parent, remote.trace, child.id, tid)
	}
	remote.End()
	child.End()
	root.End()

	// Plain spans stay out of traces and report an invalid context.
	plain := tr.Start("plain")
	if plain.Context().Valid() {
		t.Errorf("plain span has a valid trace context")
	}
	plain.End()
	var nilSpan *Span
	if nilSpan.Context().Valid() {
		t.Errorf("nil span has a valid trace context")
	}

	spans := tr.ExportTraceSpans(tid, "node-a")
	if len(spans) != 2 {
		t.Fatalf("ExportTraceSpans: %d spans, want 2 (plain span excluded)", len(spans))
	}
}
