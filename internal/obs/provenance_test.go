package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestProvLogRecordsAndOrders(t *testing.T) {
	p := NewProvLog(8, 8)
	if !p.Enabled() {
		t.Fatalf("non-nil ProvLog must report Enabled")
	}
	p.AddSMT(SMTQuery{Context: "synthesis", Result: "equal", DurNS: 100, Decisions: 5})
	p.AddSMT(SMTQuery{Context: "synthesis", Result: "not-equal", DurNS: 200, Conflicts: 2})
	p.AddSel(SelDecision{Fn: "f", Engine: "greedy", Via: "rule", Chosen: "add x,y",
		Rejected: []RejectedCand{{Rule: "addi", Reason: "imm-decode"}}})

	qs := p.SMTQueries()
	if len(qs) != 2 || qs[0].Result != "equal" || qs[1].Result != "not-equal" {
		t.Fatalf("SMT queries wrong: %+v", qs)
	}
	if qs[0].Decisions != 5 || qs[1].Conflicts != 2 {
		t.Errorf("SAT counters lost: %+v", qs)
	}
	sels := p.Selections()
	if len(sels) != 1 || sels[0].Via != "rule" || len(sels[0].Rejected) != 1 {
		t.Fatalf("selection decision wrong: %+v", sels)
	}
	if smt, sel := p.Totals(); smt != 2 || sel != 1 {
		t.Errorf("Totals = %d,%d, want 2,1", smt, sel)
	}
}

// TestProvLogRingWrap: both rings overwrite oldest-first and Totals
// keeps counting past the cap.
func TestProvLogRingWrap(t *testing.T) {
	p := NewProvLog(4, 4)
	for i := 0; i < 10; i++ {
		p.AddSMT(SMTQuery{DurNS: int64(i)})
		p.AddSel(SelDecision{Fn: fmt.Sprintf("f%d", i)})
	}
	qs := p.SMTQueries()
	if len(qs) != 4 {
		t.Fatalf("got %d SMT records, want ring cap 4", len(qs))
	}
	for i, want := range []int64{6, 7, 8, 9} {
		if qs[i].DurNS != want {
			t.Errorf("qs[%d].DurNS = %d, want %d (oldest-first, newest kept)", i, qs[i].DurNS, want)
		}
	}
	sels := p.Selections()
	if len(sels) != 4 || sels[0].Fn != "f6" || sels[3].Fn != "f9" {
		t.Errorf("selection ring wrong: %+v", sels)
	}
	if smt, sel := p.Totals(); smt != 10 || sel != 10 {
		t.Errorf("Totals = %d,%d, want 10,10", smt, sel)
	}
}

func TestNilProvLogSafe(t *testing.T) {
	var p *ProvLog
	if p.Enabled() {
		t.Fatalf("nil ProvLog must report disabled")
	}
	p.AddSMT(SMTQuery{})
	p.AddSel(SelDecision{})
	if p.SMTQueries() != nil || p.Selections() != nil {
		t.Errorf("nil ProvLog queries must be nil")
	}
	if smt, sel := p.Totals(); smt != 0 || sel != 0 {
		t.Errorf("nil ProvLog totals must be 0")
	}
	ObserveDur(nil, time.Second) // must not panic
}

func TestObserveDur(t *testing.T) {
	h := &Histogram{}
	ObserveDur(h, 1500*time.Nanosecond)
	if h.Count() != 1 || h.Sum() != 1500 {
		t.Fatalf("ObserveDur recorded count=%d sum=%d", h.Count(), h.Sum())
	}
}

// TestProvLogConcurrent exercises both rings from many goroutines under
// -race (synthesis workers record SMT provenance concurrently).
func TestProvLogConcurrent(t *testing.T) {
	p := NewProvLog(32, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.AddSMT(SMTQuery{DurNS: int64(i)})
				p.AddSel(SelDecision{Fn: "f"})
				if i%100 == 0 {
					p.SMTQueries()
					p.Selections()
				}
			}
		}()
	}
	wg.Wait()
	if smt, sel := p.Totals(); smt != 4000 || sel != 4000 {
		t.Fatalf("Totals = %d,%d, want 4000,4000", smt, sel)
	}
	if len(p.SMTQueries()) != 32 || len(p.Selections()) != 32 {
		t.Fatalf("rings should be full at cap 32")
	}
}
