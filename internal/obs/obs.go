// Package obs is the zero-dependency observability layer for the whole
// synthesis/selection pipeline: a hierarchical span tracer with
// Chrome/Perfetto trace-event export (trace.go), a metrics registry with
// counters, gauges, and log-bucketed latency histograms exposed in
// Prometheus text format (metrics.go, prom.go), and decision-provenance
// event logs recording *why* the pipeline did what it did — per-SMT-query
// solver statistics and per-instruction selection decisions
// (provenance.go).
//
// Everything is nil-safe: a nil *Obs, *Tracer, *Registry, *ProvLog, or
// *Span turns every call into a no-op, so instrumented code pays only a
// nil check on the hot path when observability is disabled. Sites that
// must measure a duration regardless of tracing (the core stage timers
// that feed core.Stats) use Timed, which reads the clock once and feeds
// both the span and the caller — the trace and the stats can never
// drift apart.
package obs

import "sync/atomic"

// Obs bundles the three observability facilities. Any field may be nil
// to disable that facility; a nil *Obs disables all three.
type Obs struct {
	Trace   *Tracer
	Metrics *Registry
	Prov    *ProvLog
}

// New returns an Obs with all three facilities enabled at default
// capacities.
func New() *Obs {
	return &Obs{
		Trace:   NewTracer(0),
		Metrics: NewRegistry(),
		Prov:    NewProvLog(0, 0),
	}
}

// Tracer returns the tracer (nil-safe).
func (o *Obs) TracerOrNil() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// MetricsOrNil returns the registry (nil-safe).
func (o *Obs) MetricsOrNil() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// ProvOrNil returns the provenance log (nil-safe).
func (o *Obs) ProvOrNil() *ProvLog {
	if o == nil {
		return nil
	}
	return o.Prov
}

// defaultObs is the process-wide default, used by layers too deep to
// carry configuration (the spec front-end's parse/symexec spans). It is
// nil until SetDefault — observability is strictly opt-in.
var defaultObs atomic.Pointer[Obs]

// SetDefault installs the process-wide default Obs. Passing nil
// disables the default instrumentation again.
func SetDefault(o *Obs) {
	defaultObs.Store(o)
}

// Default returns the process-wide default Obs (nil when unset).
func Default() *Obs {
	return defaultObs.Load()
}

// DefaultTracer returns the default Obs's tracer (nil when unset).
func DefaultTracer() *Tracer {
	return Default().TracerOrNil()
}
