package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// SpanAttr is one span attribute in the cross-node wire form (the JSON
// twin of Attr).
type SpanAttr struct {
	Key   string `json:"key"`
	Str   string `json:"str,omitempty"`
	Int   int64  `json:"int,omitempty"`
	IsInt bool   `json:"is_int,omitempty"`
}

// TraceSpan is one completed span in the form nodes exchange when
// assembling a fleet trace: identified by globally-unique span IDs,
// stamped with the node that recorded it, and timed in that node's
// absolute wall clock (normalized at merge time — see AssembleTrace).
type TraceSpan struct {
	TraceID     string     `json:"trace_id"`
	SpanID      uint64     `json:"span_id"`
	Parent      uint64     `json:"parent_id,omitempty"`
	Lane        uint64     `json:"lane,omitempty"`
	Name        string     `json:"name"`
	Node        string     `json:"node"`
	StartUnixNS int64      `json:"start_unix_ns"`
	DurNS       int64      `json:"dur_ns"`
	Attrs       []SpanAttr `json:"attrs,omitempty"`
}

// ExportTraceSpans returns every completed span in tid's trace, stamped
// with node and converted to absolute wall-clock nanoseconds. Nil-safe;
// returns nil when the trace left no spans in the ring.
func (t *Tracer) ExportTraceSpans(tid TraceID, node string) []TraceSpan {
	if t == nil || tid.IsZero() {
		return nil
	}
	var out []TraceSpan
	for _, r := range t.Snapshot() {
		if r.Trace != tid {
			continue
		}
		ts := TraceSpan{
			TraceID:     tid.String(),
			SpanID:      r.ID,
			Parent:      r.Parent,
			Lane:        r.Lane,
			Name:        r.Name,
			Node:        node,
			StartUnixNS: t.wall.Add(r.Start).UnixNano(),
			DurNS:       r.Dur.Nanoseconds(),
		}
		for _, a := range r.Attrs {
			ts.Attrs = append(ts.Attrs, SpanAttr(a))
		}
		out = append(out, ts)
	}
	return out
}

// ValidateTraceSpans checks the structural invariants a merged fleet
// trace must satisfy: non-empty, one trace ID throughout, unique span
// IDs, exactly one root (a span whose parent is 0 or absent from the
// set — absent covers a client-minted root context), and every other
// span reachable from the root (no orphans, no cycles).
func ValidateTraceSpans(spans []TraceSpan) error {
	if len(spans) == 0 {
		return fmt.Errorf("obs: empty trace")
	}
	tid := spans[0].TraceID
	byID := map[uint64]*TraceSpan{}
	for i := range spans {
		s := &spans[i]
		if s.TraceID != tid {
			return fmt.Errorf("obs: mixed trace IDs %s and %s", tid, s.TraceID)
		}
		if s.SpanID == 0 {
			return fmt.Errorf("obs: span %q has zero ID", s.Name)
		}
		if byID[s.SpanID] != nil {
			return fmt.Errorf("obs: duplicate span ID %016x (%q and %q)", s.SpanID, byID[s.SpanID].Name, s.Name)
		}
		byID[s.SpanID] = s
	}
	var root *TraceSpan
	for i := range spans {
		s := &spans[i]
		if s.Parent == 0 || byID[s.Parent] == nil {
			if root != nil {
				return fmt.Errorf("obs: multiple roots: %q on %s and %q on %s",
					root.Name, root.Node, s.Name, s.Node)
			}
			root = s
		}
	}
	if root == nil {
		return fmt.Errorf("obs: no root span (parent cycle)")
	}
	children := map[uint64][]uint64{}
	for i := range spans {
		if s := &spans[i]; s != root {
			children[s.Parent] = append(children[s.Parent], s.SpanID)
		}
	}
	reached := map[uint64]bool{root.SpanID: true}
	queue := []uint64{root.SpanID}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, c := range children[id] {
			if !reached[c] {
				reached[c] = true
				queue = append(queue, c)
			}
		}
	}
	if len(reached) != len(spans) {
		for i := range spans {
			if !reached[spans[i].SpanID] {
				return fmt.Errorf("obs: orphan span %q on %s (parent %016x unreachable from root)",
					spans[i].Name, spans[i].Node, spans[i].Parent)
			}
		}
	}
	return nil
}

// AssembleReport summarizes what AssembleTrace merged.
type AssembleReport struct {
	TraceID string `json:"trace_id"`
	Spans   int    `json:"spans"`
	Nodes   int    `json:"nodes"`
	Roots   int    `json:"roots"`
	Orphans int    `json:"orphans"`
}

// AssembleTrace merges spans collected from the whole fleet into one
// Chrome/Perfetto trace file. Each node reports absolute wall-clock
// times from its own clock; the merge normalizes cross-node skew by
// shifting every node's spans so no child starts before the parent it
// hangs under (BFS outward from the root's node — the only causal
// ordering the spans themselves certify). Spans are deduplicated by ID;
// each node becomes one pid with a process_name metadata record.
func AssembleTrace(spans []TraceSpan) (*TraceFile, *AssembleReport) {
	rep := &AssembleReport{}
	byID := map[uint64]int{}
	var uniq []TraceSpan
	for _, s := range spans {
		if _, dup := byID[s.SpanID]; dup || s.SpanID == 0 {
			continue
		}
		byID[s.SpanID] = len(uniq)
		uniq = append(uniq, s)
	}
	rep.Spans = len(uniq)
	if len(uniq) == 0 {
		return &TraceFile{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms"}, rep
	}
	rep.TraceID = uniq[0].TraceID

	// Root detection mirrors ValidateTraceSpans but tolerates malformed
	// input (multiple roots, orphans): assembly is best-effort, with the
	// defects counted in the report.
	rootIdx := -1
	for i := range uniq {
		if uniq[i].Parent == 0 || func() bool { _, ok := byID[uniq[i].Parent]; return !ok }() {
			rep.Roots++
			if rootIdx < 0 || uniq[i].StartUnixNS < uniq[rootIdx].StartUnixNS {
				rootIdx = i
			}
		}
	}
	if rootIdx < 0 {
		// Every span's parent resolves in-set: a parent cycle, which a
		// buggy or hostile peer can hand us. Anchor on the earliest-
		// starting span instead; Roots stays 0 in the report to flag the
		// defect.
		for i := range uniq {
			if rootIdx < 0 || uniq[i].StartUnixNS < uniq[rootIdx].StartUnixNS {
				rootIdx = i
			}
		}
	}

	// Per-node clock offsets: the root's node anchors at zero; every
	// other node is shifted so its first cross-node child never starts
	// before its parent.
	offset := map[string]int64{uniq[rootIdx].Node: 0}
	children := map[uint64][]int{}
	for i := range uniq {
		children[uniq[i].Parent] = append(children[uniq[i].Parent], i)
	}
	queue := []int{rootIdx}
	visited := map[int]bool{rootIdx: true}
	for len(queue) > 0 {
		pi := queue[0]
		queue = queue[1:]
		p := &uniq[pi]
		pStart := p.StartUnixNS + offset[p.Node]
		for _, ci := range children[p.SpanID] {
			if visited[ci] {
				continue
			}
			visited[ci] = true
			c := &uniq[ci]
			if _, seen := offset[c.Node]; !seen {
				off := int64(0)
				if c.StartUnixNS < pStart {
					off = pStart - c.StartUnixNS
				}
				offset[c.Node] = off
			}
			queue = append(queue, ci)
		}
	}
	rep.Orphans = len(uniq) - len(visited)

	// Stable pid assignment: the root's node is pid 1, the rest follow
	// in name order.
	var nodes []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	add(uniq[rootIdx].Node)
	rest := make([]string, 0, len(uniq))
	for i := range uniq {
		rest = append(rest, uniq[i].Node)
	}
	sort.Strings(rest)
	for _, n := range rest {
		add(n)
	}
	rep.Nodes = len(nodes)
	pid := map[string]int64{}
	for i, n := range nodes {
		pid[n] = int64(i + 1)
	}

	base := int64(0)
	first := true
	for i := range uniq {
		t := uniq[i].StartUnixNS + offset[uniq[i].Node]
		if first || t < base {
			base, first = t, false
		}
	}

	f := &TraceFile{DisplayTimeUnit: "ms", OtherData: map[string]any{
		"trace_id": rep.TraceID, "nodes": len(nodes), "spans": rep.Spans,
	}}
	for _, n := range nodes {
		f.TraceEvents = append(f.TraceEvents, TraceEvent{
			Name: "process_name", Ph: "M", Pid: pid[n],
			Args: map[string]any{"name": n},
		})
	}
	evs := make([]TraceEvent, 0, len(uniq))
	for i := range uniq {
		s := &uniq[i]
		ev := TraceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.StartUnixNS+offset[s.Node]-base) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			Pid:  pid[s.Node],
			Tid:  int64(s.Lane),
			Args: map[string]any{
				"span_id":  s.SpanID,
				"trace_id": s.TraceID,
				"node":     s.Node,
			},
		}
		if s.Parent != 0 {
			ev.Args["parent"] = s.Parent
		}
		for _, a := range s.Attrs {
			if a.IsInt {
				ev.Args[a.Key] = a.Int
			} else {
				ev.Args[a.Key] = a.Str
			}
		}
		evs = append(evs, ev)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	f.TraceEvents = append(f.TraceEvents, evs...)
	return f, rep
}

// ParsedTrace summarizes a strictly parsed assembled trace file.
type ParsedTrace struct {
	Spans int // "X" span events
	Nodes int // distinct pids among span events
	Roots int // spans with no in-file parent
}

// ParseTraceFile is the strict validator for assembled fleet traces
// (the CI smoke gate and the load harness run fetched traces through
// it): well-formed Chrome JSON object format, known event phases, every
// span event carrying a span_id, no duplicate span IDs, span-link
// integrity (every parent resolves in-file, except the single root's),
// and non-negative timestamps/durations.
func ParseTraceFile(data []byte) (*ParsedTrace, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	// UseNumber keeps span/parent IDs in Args as decimal strings:
	// decoding them to float64 would round IDs above 2^53, letting
	// distinct IDs collide into spurious duplicate-span failures.
	dec.UseNumber()
	var f TraceFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: trace file: %w", err)
	}
	if f.DisplayTimeUnit != "ms" {
		return nil, fmt.Errorf("obs: displayTimeUnit %q, want \"ms\"", f.DisplayTimeUnit)
	}
	argID := func(args map[string]any, key string) (uint64, bool) {
		v, ok := args[key]
		if !ok {
			return 0, false
		}
		switch n := v.(type) {
		case float64:
			return uint64(n), true
		case json.Number:
			u, err := strconv.ParseUint(n.String(), 10, 64)
			if err != nil {
				return 0, false
			}
			return u, true
		}
		return 0, false
	}
	pt := &ParsedTrace{}
	ids := map[uint64]bool{}
	parents := map[uint64]uint64{}
	pids := map[int64]bool{}
	for i, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
		default:
			return nil, fmt.Errorf("obs: event %d: phase %q (want X or M)", i, ev.Ph)
		}
		if ev.Name == "" {
			return nil, fmt.Errorf("obs: event %d: empty name", i)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			return nil, fmt.Errorf("obs: event %d (%s): negative ts/dur", i, ev.Name)
		}
		if ev.Pid < 1 {
			return nil, fmt.Errorf("obs: event %d (%s): pid %d", i, ev.Name, ev.Pid)
		}
		id, ok := argID(ev.Args, "span_id")
		if !ok || id == 0 {
			return nil, fmt.Errorf("obs: event %d (%s): missing span_id arg", i, ev.Name)
		}
		if ids[id] {
			return nil, fmt.Errorf("obs: duplicate span ID %016x", id)
		}
		ids[id] = true
		if p, ok := argID(ev.Args, "parent"); ok && p != 0 {
			parents[id] = p
		}
		pids[ev.Pid] = true
		pt.Spans++
	}
	if pt.Spans == 0 {
		return nil, fmt.Errorf("obs: trace file has no span events")
	}
	for id := range ids {
		if p, ok := parents[id]; !ok || !ids[p] {
			pt.Roots++
		}
	}
	if pt.Roots != 1 {
		return nil, fmt.Errorf("obs: %d root spans, want exactly 1", pt.Roots)
	}
	pt.Nodes = len(pids)
	return pt, nil
}
