package obs

import (
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. All accessors are idempotent: asking
// for the same (name, labels) twice returns the same metric, so
// call sites need no registration phase. A nil *Registry disables
// every operation.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*family
}

// family groups all label variants of one metric name, with its type
// and help string (Prometheus requires one TYPE/HELP per name).
type family struct {
	name, help, kind string // kind: counter | gauge | histogram
	vars             map[string]any
	order            []string
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*family{}}
}

// labelKey serializes a label pair list ("k1,v1,k2,v2,...") into a map
// key; pairs must come in a fixed order at each call site.
func labelKey(labels []string) string {
	return strings.Join(labels, "\x00")
}

func (r *Registry) get(name, help, kind string, labels []string, mk func() any) any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.metrics[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, vars: map[string]any{}}
		r.metrics[name] = f
	}
	k := labelKey(labels)
	v := f.vars[k]
	if v == nil {
		v = mk()
		f.vars[k] = v
		f.order = append(f.order, k)
	}
	return v
}

// Counter is a monotonically increasing counter. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns (creating if needed) the counter with the given name
// and label pairs (key, value, key, value, ...).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	v := r.get(name, help, "counter", labels, func() any { return &Counter{} })
	if v == nil {
		return nil
	}
	return v.(*Counter)
}

// Gauge is a value that can go up and down. Nil-safe.
type Gauge struct {
	v  atomic.Int64
	fn func() int64 // callback gauge; nil for settable gauges
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge value.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (invoking the callback for GaugeFunc
// gauges).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

// Gauge returns (creating if needed) the settable gauge with the given
// name and label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	v := r.get(name, help, "gauge", labels, func() any { return &Gauge{} })
	if v == nil {
		return nil
	}
	return v.(*Gauge)
}

// GaugeFunc registers a callback-backed gauge: its value is read at
// exposition time. Useful for mirroring counters that live elsewhere
// (the service's atomic counters) without double bookkeeping.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...string) {
	r.get(name, help, "gauge", labels, func() any { return &Gauge{fn: fn} })
}

// histBuckets is the number of log-2 histogram buckets: bucket i counts
// observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v <= 1),
// which covers the full int64 range.
const histBuckets = 64

// Exemplar pairs one observation with the trace that produced it — the
// OpenMetrics exemplar: a bucket's most recent sampled trace ID, the
// jump from "the p99 bucket is hot" to "show me a p99 request".
type Exemplar struct {
	TraceID string `json:"trace_id"`
	Value   int64  `json:"value"`
	UnixNS  int64  `json:"ts_unix_ns"`
}

// Histogram is a log-2-bucketed histogram of non-negative int64
// observations (typically nanoseconds). Observation is lock-free; the
// exposition side reads the atomics with at-least-once consistency,
// which is the usual Prometheus contract. Nil-safe.
type Histogram struct {
	buckets   [histBuckets]atomic.Int64
	count     atomic.Int64
	sum       atomic.Int64
	exemplars [histBuckets]atomic.Pointer[Exemplar]
}

// bucketOf returns the bucket index for v: the bit length of v, so
// bucket boundaries are powers of two.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// BucketUpper returns the inclusive upper bound of bucket i (2^i).
func BucketUpper(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Observe records one value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// stamps the landing bucket's exemplar with it (last writer wins — the
// bucket retains its most recent sampled trace). The timestamp read
// happens only on the sampled path, so unsampled traffic pays exactly
// Observe's cost.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID != "" {
		h.exemplars[b].Store(&Exemplar{TraceID: traceID, Value: v, UnixNS: time.Now().UnixNano()})
	}
}

// Exemplar returns bucket i's exemplar (nil when the bucket never saw a
// sampled observation). Nil-safe.
func (h *Histogram) Exemplar(i int) *Exemplar {
	if h == nil || i < 0 || i >= histBuckets {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) by locating the
// bucket containing the target rank and interpolating linearly inside
// it. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = BucketUpper(i - 1)
			}
			hi := BucketUpper(i)
			frac := (rank - float64(cum)) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return BucketUpper(histBuckets - 1)
}

// Snapshot returns (bucket counts, count, sum) as a consistent-enough
// copy for exposition.
func (h *Histogram) Snapshot() ([histBuckets]int64, int64, int64) {
	var b [histBuckets]int64
	if h == nil {
		return b, 0, 0
	}
	for i := range b {
		b[i] = h.buckets[i].Load()
	}
	return b, h.count.Load(), h.sum.Load()
}

// Histogram returns (creating if needed) the histogram with the given
// name and label pairs.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	v := r.get(name, help, "histogram", labels, func() any { return &Histogram{} })
	if v == nil {
		return nil
	}
	return v.(*Histogram)
}

// HistExemplar is one histogram bucket's exemplar joined with its
// metric identity — the /v1/metrics JSON form of the OpenMetrics
// `# {trace_id=...}` annotations.
type HistExemplar struct {
	Metric   string            `json:"metric"`
	Labels   map[string]string `json:"labels,omitempty"`
	BucketLE int64             `json:"bucket_le"`
	TraceID  string            `json:"trace_id"`
	Value    int64             `json:"value"`
	UnixNS   int64             `json:"ts_unix_ns"`
}

// TraceExemplars collects every histogram bucket exemplar in the
// registry, ordered by metric name, label set, then bucket bound —
// each row resolves through GET /v1/trace/{trace_id}. Nil-safe.
func (r *Registry) TraceExemplars() []HistExemplar {
	var out []HistExemplar
	for _, f := range r.families() {
		if f.kind != "histogram" {
			continue
		}
		for _, k := range f.order {
			h, ok := f.vars[k].(*Histogram)
			if !ok {
				continue
			}
			var labels map[string]string
			if k != "" {
				pairs := strings.Split(k, "\x00")
				labels = map[string]string{}
				for i := 0; i+1 < len(pairs); i += 2 {
					labels[pairs[i]] = pairs[i+1]
				}
			}
			for i := 0; i < histBuckets; i++ {
				ex := h.Exemplar(i)
				if ex == nil {
					continue
				}
				out = append(out, HistExemplar{
					Metric:   f.name,
					Labels:   labels,
					BucketLE: BucketUpper(i),
					TraceID:  ex.TraceID,
					Value:    ex.Value,
					UnixNS:   ex.UnixNS,
				})
			}
		}
	}
	return out
}

// families returns the metric families sorted by name, for
// deterministic exposition.
func (r *Registry) families() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.metrics))
	for _, f := range r.metrics {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
