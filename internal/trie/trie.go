// Package trie implements the paper's term index (§V-B2): canonicalized
// instruction-sequence terms are stored in a trie whose paths are the
// sorted addend lists of modulo-2ⁿ linear combinations. Each edge is one
// (coefficient, operand) pair keyed by the operand's canonical ID, so
// insertion is O(len) with hash-map steps, and terms that share a prefix
// of addends share trie nodes.
//
// Non-linear terms (atoms, operation nodes) are stored as single-addend
// paths of depth one, exactly as the paper stores them "as a leaf on
// depth one: seen as a linear combination with a single operand".
//
// Lookup performs unification with backtracking (§V-B3): a query pattern
// with free IR variables is matched against indexed terms with free ISA
// operand variables. Register atoms unify with register atoms of equal
// kind, width, and coefficient; immediates unify with immediates even
// across different coefficients, widths, and extract windows (recorded as
// constraints for rule generation); excess query constants bind to ISA
// immediates; excess ISA immediates bind to zero; and PC+imm linear
// combinations unify with a lone immediate (PC-relative addressing).
package trie

import (
	"fmt"
	"sort"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/canon"
	"iselgen/internal/term"
)

// Index is the term index. It is not safe for concurrent mutation;
// concurrent Lookup is safe once building has finished.
type Index struct {
	roots    map[int]*node // by linear-combination width
	payloads map[*canon.CTerm][]any
	inserted int
}

type edgeKey struct {
	coefLo, coefHi uint64
	id             int32
}

type bvKey struct{ lo, hi uint64 }

type edge struct {
	sub  *canon.CTerm // the operand labelling this edge
	next *node
}

// edgeEnt is the walk-side view of an edge: a slice element in insertion
// order (deterministic, unlike map iteration) with the immWrapper
// decomposition of the label precomputed at insert time — the search
// re-derives it on every node visit otherwise.
type edgeEnt struct {
	sub          *canon.CTerm
	next         *node
	coef         bv.BV // materialized edge coefficient (root width = query width)
	imm          *canon.CTerm
	immHi, immLo int
	isImm        bool
	// pcPlusImm decomposition of the label, precomputed like imm above.
	pcImm      *canon.CTerm
	pcHi, pcLo int
	pcCoef     bv.BV
	isPCImm    bool
}

type node struct {
	edges map[edgeKey]edge // dedup map for Insert
	elist []edgeEnt        // same edges, insertion-ordered, for the walk
	// terminal canonical terms ending at this node, by constant part.
	terms map[bvKey]*canon.CTerm
}

func newNode() *node { return &node{} }

// New returns an empty index.
func New() *Index {
	return &Index{roots: make(map[int]*node), payloads: make(map[*canon.CTerm][]any)}
}

// Len returns the number of Insert calls that stored a payload.
func (ix *Index) Len() int { return ix.inserted }

// linView presents any canonical term as (K, addends): linear combinations
// verbatim, everything else as a single unit-coefficient addend.
func linView(ct *canon.CTerm) (bv.BV, []canon.Addend) {
	if ct.Kind == canon.Lin {
		return ct.K, ct.Addends
	}
	return bv.Zero(ct.Width), []canon.Addend{{Coef: bv.New(ct.Width, 1), T: ct}}
}

// Insert stores the canonical term with an associated payload (typically
// the instruction sequence whose effect the term denotes).
func (ix *Index) Insert(ct *canon.CTerm, payload any) {
	k, addends := linView(ct)
	root := ix.roots[ct.Width]
	if root == nil {
		root = newNode()
		ix.roots[ct.Width] = root
	}
	n := root
	for _, a := range addends {
		ek := edgeKey{coefLo: a.Coef.Lo, coefHi: a.Coef.Hi, id: int32(a.T.ID)}
		if n.edges == nil {
			n.edges = make(map[edgeKey]edge)
		}
		e, ok := n.edges[ek]
		if !ok {
			e = edge{sub: a.T, next: newNode()}
			n.edges[ek] = e
			imm, hi, lo, isImm := immWrapper(a.T)
			pcImm, pcHi, pcLo, pcCoef, isPCImm := pcPlusImm(a.T)
			n.elist = append(n.elist, edgeEnt{
				sub: a.T, next: e.next, coef: a.Coef,
				imm: imm, immHi: hi, immLo: lo, isImm: isImm,
				pcImm: pcImm, pcHi: pcHi, pcLo: pcLo, pcCoef: pcCoef, isPCImm: isPCImm,
			})
		}
		n = e.next
	}
	if n.terms == nil {
		n.terms = make(map[bvKey]*canon.CTerm)
	}
	n.terms[bvKey{k.Lo, k.Hi}] = ct
	ix.payloads[ct] = append(ix.payloads[ct], payload)
	ix.inserted++
}

// Payloads returns the payloads stored for a canonical term.
func (ix *Index) Payloads(ct *canon.CTerm) []any { return ix.payloads[ct] }

// ImmBind records how an ISA immediate operand was bound during
// unification, including the extract windows and coefficients on both
// sides; rule generation turns these into immediate constraints
// (alignment, scaling, sub-width encodings — §V-B3).
type ImmBind struct {
	ISA          *canon.CTerm // the ISA immediate atom
	ISAHi, ISALo int          // extract window applied on the ISA side
	Query        *canon.CTerm // query immediate atom; nil when bound to a constant
	QHi, QLo     int          // extract window applied on the query side
	Const        bv.BV        // value when Query == nil (includes zero-bindings)
	CoefQ, CoefI bv.BV        // coefficients of the respective addends
	PCRel        bool         // bound through a PC+imm combination
}

func (ib ImmBind) same(other ImmBind) bool {
	return ib.ISA == other.ISA && ib.ISAHi == other.ISAHi && ib.ISALo == other.ISALo &&
		ib.Query == other.Query && ib.QHi == other.QHi && ib.QLo == other.QLo &&
		ib.Const == other.Const && ib.CoefQ == other.CoefQ && ib.CoefI == other.CoefI &&
		ib.PCRel == other.PCRel
}

// RegBind pairs an ISA register/vector/flag/PC atom with the query atom
// it was unified with.
type RegBind struct {
	ISA, Query *canon.CTerm
}

// Binding is the variable correspondence produced by unification.
type Binding struct {
	// Regs lists ISA→query atom pairs in discovery order. A slice, not a
	// map: real instructions bind at most a handful of registers, so the
	// linear conflict scan is cheaper than hashing and snapshots are flat
	// copies.
	Regs []RegBind
	// Imms lists immediate bindings in discovery order.
	Imms []ImmBind
	// trail records in-place overwrites of Imms elements (bindImm's
	// promotion cases) so rollback can restore them; appends roll back by
	// truncation alone.
	trail []immUndo
}

type immUndo struct {
	idx int
	old ImmBind
}

// bindMark is a snapshot of a binding's extent, taken before a
// speculative unification step and restored with rollback. The
// backtracking search used to clone the whole binding at every branch
// point, which dominated lookup time; mark/rollback makes a failed
// branch cost two slice truncations instead of an allocation.
type bindMark struct{ nr, ni, nt int }

func (b *Binding) mark() bindMark {
	return bindMark{nr: len(b.Regs), ni: len(b.Imms), nt: len(b.trail)}
}

func (b *Binding) rollback(m bindMark) {
	for i := len(b.trail) - 1; i >= m.nt; i-- {
		u := b.trail[i]
		if u.idx < m.ni { // overwrites of entries that survive the rollback
			b.Imms[u.idx] = u.old
		}
	}
	b.trail = b.trail[:m.nt]
	b.Regs = b.Regs[:m.nr]
	b.Imms = b.Imms[:m.ni]
}

// clone snapshots the binding for a match result (emitted matches must
// not alias the search's mutable state).
func (b *Binding) clone() *Binding {
	nb := &Binding{}
	if len(b.Regs) > 0 {
		nb.Regs = append(make([]RegBind, 0, len(b.Regs)), b.Regs...)
	}
	if len(b.Imms) > 0 {
		nb.Imms = append(make([]ImmBind, 0, len(b.Imms)), b.Imms...)
	}
	return nb
}

// bindReg records isa→query; fails on conflicting rebinding.
func (b *Binding) bindReg(isa, query *canon.CTerm) bool {
	for _, rb := range b.Regs {
		if rb.ISA == isa {
			return rb.Query == query
		}
	}
	b.Regs = append(b.Regs, RegBind{ISA: isa, Query: query})
	return true
}

// bindImm records an immediate binding; fails on conflict. Bindings of
// the same ISA immediate merge in two benign cases that arise from the
// linearized sign-extension of immediates (sext(imm) decomposes into the
// immediate plus a sign-bit extract term):
//
//  1. both bind constants zero (different windows of a zero immediate);
//  2. a value binding plus a zero constant on the sign-bit window — the
//     extension choice is settled by rule verification.
func (b *Binding) bindImm(ib ImmBind) bool {
	for i, old := range b.Imms {
		if old.ISA != ib.ISA {
			continue
		}
		if old.same(ib) {
			return true
		}
		zeroConst := func(x ImmBind) bool { return x.Query == nil && x.Const.IsZero() }
		signWindow := func(x ImmBind) bool { return x.ISAHi == x.ISALo }
		switch {
		case zeroConst(old) && zeroConst(ib):
			// Keep the wider window.
			if ib.ISAHi-ib.ISALo > old.ISAHi-old.ISALo {
				b.trail = append(b.trail, immUndo{idx: i, old: old})
				b.Imms[i] = ib
			}
			return true
		case zeroConst(ib) && signWindow(ib):
			// Sign-bit window of an already-bound immediate. If the
			// earlier binding fixed a constant whose sign bit is set,
			// the zero claim contradicts it.
			if old.Query == nil && old.Const.ZExt(64).Bit(ib.ISAHi) != 0 {
				return false
			}
			return true
		case zeroConst(old) && signWindow(old):
			if ib.Query == nil && ib.Const.ZExt(64).Bit(old.ISAHi) != 0 {
				return false
			}
			b.trail = append(b.trail, immUndo{idx: i, old: old})
			b.Imms[i] = ib // promote to the value binding
			return true
		case old.Query != nil && old.Query == ib.Query &&
			old.ISAHi == ib.ISAHi && old.ISALo == ib.ISALo &&
			old.QHi == ib.QHi && old.QLo == ib.QLo &&
			old.PCRel == ib.PCRel:
			// The immediate occurs several times with different
			// coefficients (e.g. i and 8·i as separate addends); the
			// bindings are compatible when both imply the same embedding
			// relation between the query and ISA values.
			s1, ok1 := embedShift(old.CoefQ, old.CoefI)
			s2, ok2 := embedShift(ib.CoefQ, ib.CoefI)
			if ok1 && ok2 && s1 == s2 {
				return true
			}
			return false
		}
		return false
	}
	b.Imms = append(b.Imms, ib)
	return true
}

// embedShift reduces a coefficient pair to the power-of-two scaling it
// implies (coefI = coefQ << k), mirroring the rule layer's coefShift.
func embedShift(coefQ, coefI bv.BV) (int, bool) {
	w := coefQ.W()
	if coefI.W() > w {
		w = coefI.W()
	}
	cq, ci := coefQ.ZExt(w), coefI.ZExt(w)
	if cq == ci {
		return 0, true
	}
	if cq.IsZero() {
		return 0, false
	}
	div := ci.UDiv(cq)
	if div.Mul(cq) != ci {
		return 0, false
	}
	if k, ok := div.IsPow2(); ok {
		return k, true
	}
	return 0, false
}

// signature serializes a binding for match deduplication.
func (b *Binding) signature() string {
	rs := append([]RegBind(nil), b.Regs...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].ISA.ID < rs[j].ISA.ID })
	var sb strings.Builder
	for _, rb := range rs {
		fmt.Fprintf(&sb, "r%d=%d;", rb.ISA.ID, rb.Query.ID)
	}
	im := append([]ImmBind(nil), b.Imms...)
	sort.Slice(im, func(i, j int) bool { return im[i].ISA.ID < im[j].ISA.ID })
	for _, ib := range im {
		q := -1
		if ib.Query != nil {
			q = ib.Query.ID
		}
		fmt.Fprintf(&sb, "i%d[%d:%d]=%d[%d:%d]c%v/%v/%v%v;",
			ib.ISA.ID, ib.ISAHi, ib.ISALo, q, ib.QHi, ib.QLo, ib.Const, ib.CoefQ, ib.CoefI, ib.PCRel)
	}
	return sb.String()
}

// Match is one unification result.
type Match struct {
	Term     *canon.CTerm // the indexed canonical term
	Payloads []any
	Binding  *Binding
}

// Limits bounding the backtracking search.
const (
	maxSearchSteps = 200000
	maxMatches     = 128
)

type searcher struct {
	ix      *Index
	steps   int
	matches []Match
	seen    map[string]bool
}

// Lookup unifies the query pattern against the index and returns all
// matches (bounded). The query's free variables are IR operands; matches
// carry the ISA-operand binding.
func (ix *Index) Lookup(query *canon.CTerm) []Match {
	root := ix.roots[query.Width]
	if root == nil {
		return nil
	}
	s := &searcher{ix: ix, seen: map[string]bool{}}
	qK, qAddends := linView(query)
	used := make([]bool, len(qAddends))
	s.walk(root, qK, qAddends, used, &Binding{}, false)
	return s.matches
}

// walk explores the trie from n, with remaining query constant qK and
// unused query addends. pcDebt is set after crossing an unmatched PC
// edge; the next immediate edge that pairs with a query immediate absorbs
// it as a PC-relative binding (§V-B3), and matches with outstanding debt
// are rejected.
func (s *searcher) walk(n *node, qK bv.BV, qAddends []canon.Addend, used []bool, bind *Binding, pcDebt bool) {
	if s.steps++; s.steps > maxSearchSteps || len(s.matches) >= maxMatches {
		return
	}
	// Terminal check: all query addends consumed and constants agree.
	if n.terms != nil && allUsed(used) && !pcDebt {
		if ct, ok := n.terms[bvKey{qK.Lo, qK.Hi}]; ok {
			s.emit(ct, bind)
		}
	}
	for ei := range n.elist {
		e := &n.elist[ei]
		coefI := e.coef
		sub, next := e.sub, e.next
		imm, hi, lo, isImm := e.imm, e.immHi, e.immLo, e.isImm
		// Option A: pair with an unused query addend. Each speculative
		// step mutates bind in place and rolls back after exploring the
		// branch (a recursive walk always restores bind before returning,
		// so sharing one binding across the whole search is sound).
		for qi := range qAddends {
			if used[qi] {
				continue
			}
			if pcDebt && isImm {
				// Option A': absorb the PC debt into a PC-relative
				// immediate binding.
				if qimm, qhi, qlo, qok := immWrapper(qAddends[qi].T); qok {
					m := bind.mark()
					if bind.bindImm(ImmBind{ISA: imm, ISAHi: hi, ISALo: lo,
						Query: qimm, QHi: qhi, QLo: qlo,
						CoefQ: qAddends[qi].Coef, CoefI: coefI, PCRel: true}) {
						used[qi] = true
						s.walk(next, qK, qAddends, used, bind, false)
						used[qi] = false
					}
					bind.rollback(m)
				}
			}
			m := bind.mark()
			// Dispatch on the label decomposition precomputed at insert
			// time instead of letting unify re-derive it per visit.
			var uok bool
			switch {
			case e.isImm:
				uok = unifyImm(bind, qAddends[qi].Coef, qAddends[qi].T, imm, hi, lo, coefI)
			case e.isPCImm:
				uok = unifyPCImm(bind, qAddends[qi].Coef, qAddends[qi].T, e.pcImm, e.pcHi, e.pcLo, e.pcCoef, coefI)
			default:
				uok = unifyShape(bind, qAddends[qi].Coef, qAddends[qi].T, coefI, sub)
			}
			if uok {
				used[qi] = true
				s.walk(next, qK, qAddends, used, bind, pcDebt)
				used[qi] = false
			}
			bind.rollback(m)
		}
		// Options B and C need an ISA immediate operand on the edge.
		if isImm {
			// Option B: bind the excess query constant to the immediate.
			if !qK.IsZero() {
				if v, ok := solveScaled(qK, coefI); ok {
					m := bind.mark()
					if bind.bindImm(ImmBind{ISA: imm, ISAHi: hi, ISALo: lo,
						Const: v, CoefQ: bv.New(qK.W(), 1), CoefI: coefI, PCRel: pcDebt}) {
						s.walk(next, bv.Zero(qK.W()), qAddends, used, bind, false)
					}
					bind.rollback(m)
				}
			}
			// Option C: excess ISA immediate binds to zero.
			m := bind.mark()
			if bind.bindImm(ImmBind{ISA: imm, ISAHi: hi, ISALo: lo,
				Const: bv.Zero(imm.Width), CoefQ: bv.New(qK.W(), 1), CoefI: coefI}) {
				s.walk(next, qK, qAddends, used, bind, pcDebt)
			}
			bind.rollback(m)
		}
		// Option D: an unmatched PC edge incurs a debt to be absorbed by
		// a following immediate edge (PC-relative addressing).
		if !pcDebt && sub.IsAtom() && sub.AtomKind() == term.KindPC &&
			coefI.Lo == 1 && coefI.Hi == 0 {
			s.walk(next, qK, qAddends, used, bind, true)
		}
	}
}

func allUsed(used []bool) bool {
	for _, u := range used {
		if !u {
			return false
		}
	}
	return true
}

func (s *searcher) emit(ct *canon.CTerm, bind *Binding) {
	sig := fmt.Sprintf("%d|%s", ct.ID, bind.signature())
	if s.seen[sig] {
		return
	}
	s.seen[sig] = true
	s.matches = append(s.matches, Match{Term: ct, Payloads: s.ix.payloads[ct], Binding: bind.clone()})
}

// solveScaled finds v with coef·v == k (unsigned exact), if any.
func solveScaled(k, coef bv.BV) (bv.BV, bool) {
	if coef.IsZero() {
		return bv.BV{}, false
	}
	v := k.UDiv(coef)
	if v.Mul(coef) != k {
		return bv.BV{}, false
	}
	return v, true
}

// immWrapper recognizes an ISA immediate operand possibly wrapped in an
// extract window: either a bare immediate atom or extract[hi:lo](imm).
func immWrapper(t *canon.CTerm) (imm *canon.CTerm, hi, lo int, ok bool) {
	if t.IsAtom() && t.AtomKind() == term.KindImm {
		return t, t.Width - 1, 0, true
	}
	if t.Kind == canon.OpNode && t.Op == term.Extract {
		inner := t.Args[0]
		if inner.IsAtom() && inner.AtomKind() == term.KindImm {
			return inner, int(t.Aux0), int(t.Aux1), true
		}
	}
	return nil, 0, 0, false
}

// pcPlusImm recognizes the ISA-side linear combination pc + c·imm used for
// PC-relative addressing.
func pcPlusImm(t *canon.CTerm) (imm *canon.CTerm, hi, lo int, coef bv.BV, ok bool) {
	if t.Kind != canon.Lin || !t.K.IsZero() || len(t.Addends) != 2 {
		return nil, 0, 0, bv.BV{}, false
	}
	var pcSeen bool
	for _, a := range t.Addends {
		if a.T.IsAtom() && a.T.AtomKind() == term.KindPC {
			if a.Coef.Lo != 1 || a.Coef.Hi != 0 {
				return nil, 0, 0, bv.BV{}, false
			}
			pcSeen = true
			continue
		}
		if im, h, l, k := immWrapper(a.T); k {
			imm, hi, lo, coef = im, h, l, a.Coef
		}
	}
	if pcSeen && imm != nil {
		return imm, hi, lo, coef, true
	}
	return nil, 0, 0, bv.BV{}, false
}

// unify attempts to unify one query addend (coefQ·tQ) with one index
// addend (coefI·tI), extending bind. tI comes from the ISA side.
func unify(bind *Binding, coefQ bv.BV, tQ *canon.CTerm, coefI bv.BV, tI *canon.CTerm) bool {
	// ISA immediates unify with query immediates even across differing
	// coefficients, widths, and extract windows (§V-B3).
	if imm, ihi, ilo, ok := immWrapper(tI); ok {
		return unifyImm(bind, coefQ, tQ, imm, ihi, ilo, coefI)
	}

	// PC-relative: ISA-side pc+imm against a lone query immediate.
	if imm, ihi, ilo, coef, ok := pcPlusImm(tI); ok {
		return unifyPCImm(bind, coefQ, tQ, imm, ihi, ilo, coef, coefI)
	}

	return unifyShape(bind, coefQ, tQ, coefI, tI)
}

// unifyImm is the ISA-immediate branch of unify, taking the immWrapper
// decomposition of the ISA term as arguments so the trie walk can pass
// the copy precomputed on the edge.
func unifyImm(bind *Binding, coefQ bv.BV, tQ *canon.CTerm, imm *canon.CTerm, ihi, ilo int, coefI bv.BV) bool {
	if qimm, qhi, qlo, qok := immWrapper(tQ); qok && qimm.AtomKind() == term.KindImm {
		return bind.bindImm(ImmBind{ISA: imm, ISAHi: ihi, ISALo: ilo,
			Query: qimm, QHi: qhi, QLo: qlo, CoefQ: coefQ, CoefI: coefI})
	}
	return false
}

// unifyPCImm is the pc+imm branch of unify, likewise taking the
// precomputed pcPlusImm decomposition.
func unifyPCImm(bind *Binding, coefQ bv.BV, tQ *canon.CTerm, imm *canon.CTerm, ihi, ilo int, coef, coefI bv.BV) bool {
	if qimm, qhi, qlo, qok := immWrapper(tQ); qok {
		return bind.bindImm(ImmBind{ISA: imm, ISAHi: ihi, ISALo: ilo,
			Query: qimm, QHi: qhi, QLo: qlo,
			CoefQ: coefQ, CoefI: coef.ZExt(coefI.W()).Mul(coefI), PCRel: true})
	}
	return false
}

// unifyShape handles the structural cases of unify — the ISA term is
// neither an immediate wrapper nor pc+imm.
func unifyShape(bind *Binding, coefQ bv.BV, tQ *canon.CTerm, coefI bv.BV, tI *canon.CTerm) bool {
	switch tI.Kind {
	case canon.Atom:
		if coefQ != coefI {
			return false
		}
		if !tQ.IsAtom() || tQ.Width != tI.Width {
			return false
		}
		ki, kq := tI.AtomKind(), tQ.AtomKind()
		switch ki {
		case term.KindReg, term.KindVecReg:
			// Registers unify with registers and vector registers with
			// vector registers.
			if kq != ki {
				return false
			}
		case term.KindPC, term.KindFlag:
			if kq != ki {
				return false
			}
		default:
			return false
		}
		return bind.bindReg(tI, tQ)

	case canon.OpNode:
		if coefQ != coefI {
			return false
		}
		if tQ.Kind != canon.OpNode || tQ.Op != tI.Op || tQ.Width != tI.Width ||
			tQ.Aux0 != tI.Aux0 || tQ.Aux1 != tI.Aux1 || len(tQ.Args) != len(tI.Args) {
			return false
		}
		one := func(w int) bv.BV { return bv.New(w, 1) }
		tryArgs := func(b *Binding, qa, ia []*canon.CTerm) bool {
			for i := range qa {
				if !unify(b, one(qa[i].Width), qa[i], one(ia[i].Width), ia[i]) {
					return false
				}
			}
			return true
		}
		m := bind.mark()
		if tryArgs(bind, tQ.Args, tI.Args) {
			return true
		}
		bind.rollback(m)
		// Commutative operands may be ordered differently across contexts.
		if tI.Op.IsCommutative() && len(tI.Args) == 2 {
			if tryArgs(bind, tQ.Args, []*canon.CTerm{tI.Args[1], tI.Args[0]}) {
				return true
			}
			bind.rollback(m)
		}
		return false

	case canon.Lin:
		if coefQ != coefI {
			return false
		}
		if tQ.Width != tI.Width {
			return false
		}
		// tQ need not itself be a linear combination: a bare register can
		// unify with a+imm through a zero immediate binding.
		return unifyLin(bind, tQ, tI)
	}
	return false
}

// unifyLin unifies two nested linear combinations by backtracking over
// addend pairings, applying the same immediate rules as the trie walk.
// On success the accumulated bindings remain in bind; on failure every
// speculative step has been rolled back.
func unifyLin(bind *Binding, q, i *canon.CTerm) bool {
	qK, qAdd := linView(q)
	iK, iAdd := linView(i)
	used := make([]bool, len(qAdd))
	var rec func(ii int, k bv.BV) bool
	rec = func(ii int, k bv.BV) bool {
		if ii == len(iAdd) {
			return allUsed(used) && k == iK
		}
		a := iAdd[ii]
		for qi := range qAdd {
			if used[qi] {
				continue
			}
			m := bind.mark()
			if unify(bind, qAdd[qi].Coef, qAdd[qi].T, a.Coef, a.T) {
				used[qi] = true
				if rec(ii+1, k) {
					return true
				}
				used[qi] = false
			}
			bind.rollback(m)
		}
		if imm, hi, lo, ok := immWrapper(a.T); ok {
			if !k.IsZero() {
				if v, vok := solveScaled(k, a.Coef); vok {
					m := bind.mark()
					if bind.bindImm(ImmBind{ISA: imm, ISAHi: hi, ISALo: lo, Const: v,
						CoefQ: bv.New(k.W(), 1), CoefI: a.Coef}) && rec(ii+1, bv.Zero(k.W())) {
						return true
					}
					bind.rollback(m)
				}
			}
			m := bind.mark()
			if bind.bindImm(ImmBind{ISA: imm, ISAHi: hi, ISALo: lo, Const: bv.Zero(imm.Width),
				CoefQ: bv.New(k.W(), 1), CoefI: a.Coef}) && rec(ii+1, k) {
				return true
			}
			bind.rollback(m)
		}
		return false
	}
	return rec(0, qK)
}
