package trie

import (
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/canon"
	"iselgen/internal/term"
)

// fixture builds a shared term builder and canon context. ISA-side
// variables use a/b/imm-style names; IR-side query variables use x/y/c.
func fixture() (*term.Builder, *canon.Ctx, *Index) {
	return term.NewBuilder(), canon.NewCtx(), New()
}

func TestInsertLookupExact(t *testing.T) {
	b, cx, ix := fixture()
	a := b.Reg("a", 64)
	b2 := b.Reg("b", 64)
	add := cx.Canon(b.Add(a, b2))
	ix.Insert(add, "ADDXrr")

	x := b.Reg("x", 64)
	y := b.Reg("y", 64)
	ms := ix.Lookup(cx.Canon(b.Add(x, y)))
	if len(ms) == 0 {
		t.Fatal("no match for x+y against a+b")
	}
	found := false
	for _, m := range ms {
		if len(m.Payloads) == 1 && m.Payloads[0] == "ADDXrr" {
			found = true
			// Binding must map {a,b} onto {x,y} bijectively here.
			if len(m.Binding.Regs) != 2 {
				t.Errorf("reg bindings = %d, want 2", len(m.Binding.Regs))
			}
		}
	}
	if !found {
		t.Error("ADDXrr payload not returned")
	}
}

func TestFigure5AddShifted(t *testing.T) {
	// The paper's Fig. 5 / §V-B3 example: index "a + (bvshl a imm)"-style
	// terms; the query "x + (bvshl y (extract[5:0] imm))" must unify with
	// the shifted-add term by binding the differently-shaped immediates.
	b, cx, ix := fixture()
	a := b.Reg("a", 64)
	a2 := b.Reg("b", 64)
	shiftImm := b.Imm("sh", 6)
	// ISA: a + (b << zext(sh)) — ADDXrs.
	isa := b.Add(a, b.Shl(a2, b.ZExt(64, shiftImm)))
	ix.Insert(cx.Canon(isa), "ADDXrs")
	// ISA: a + imm12 — ADDXri.
	imm12 := b.Imm("i12", 12)
	ix.Insert(cx.Canon(b.Add(a, b.ZExt(64, imm12))), "ADDXri")

	// IR query: x + (y << (imm & 63)) with a 64-bit immediate, as gMIR's
	// G_SHL by a 64-bit constant operand would produce.
	x := b.Reg("x", 64)
	y := b.Reg("y", 64)
	qImm := b.Imm("qi", 64)
	q := b.Add(x, b.Shl(y, b.ZExt(64, b.Extract(5, 0, qImm))))
	ms := ix.Lookup(cx.Canon(q))
	var got []string
	for _, m := range ms {
		got = append(got, m.Payloads[0].(string))
	}
	if !contains(got, "ADDXrs") {
		t.Fatalf("ADDXrs not matched; matches = %v", got)
	}
	// Verify the immediate binding carries the extract window.
	for _, m := range ms {
		if m.Payloads[0] != "ADDXrs" {
			continue
		}
		if len(m.Binding.Imms) != 1 {
			t.Fatalf("imm bindings = %d, want 1", len(m.Binding.Imms))
		}
		ib := m.Binding.Imms[0]
		if ib.Query == nil || ib.Query.Var.Name != "qi" {
			t.Errorf("imm bound to %v, want qi", ib.Query)
		}
		if ib.QHi != 5 || ib.QLo != 0 {
			t.Errorf("query window [%d:%d], want [5:0]", ib.QHi, ib.QLo)
		}
	}
}

func TestExcessImmBindsToZero(t *testing.T) {
	// Paper: "the term x could be unified ... with x+imm as we can bind
	// the excess imm to zero".
	b, cx, ix := fixture()
	a := b.Reg("a", 64)
	imm := b.Imm("i12", 12)
	ix.Insert(cx.Canon(b.Add(a, b.ZExt(64, imm))), "ADDXri")

	x := b.Reg("x", 64)
	ms := ix.Lookup(cx.Canon(x))
	if len(ms) == 0 {
		t.Fatal("bare register did not match a+imm")
	}
	ib := ms[0].Binding.Imms[0]
	if ib.Query != nil || !ib.Const.IsZero() {
		t.Errorf("excess imm binding = %+v, want zero const", ib)
	}
}

func TestQueryConstBindsToImm(t *testing.T) {
	// "bind excess constants in queries to immediates": query x+42
	// matches a+imm with imm := 42.
	b, cx, ix := fixture()
	a := b.Reg("a", 64)
	imm := b.Imm("i12", 12)
	ix.Insert(cx.Canon(b.Add(a, b.ZExt(64, imm))), "ADDXri")

	x := b.Reg("x", 64)
	ms := ix.Lookup(cx.Canon(b.Add(x, b.Const(64, 42))))
	if len(ms) == 0 {
		t.Fatal("x+42 did not match a+imm")
	}
	ib := ms[0].Binding.Imms[0]
	if ib.Query != nil || ib.Const.Lo != 42 {
		t.Errorf("const binding = %+v, want 42", ib)
	}
}

func TestScaledImmediate(t *testing.T) {
	// Scaled addressing: ISA computes base + 4·imm (a scaled offset);
	// query base + 4·qimm must bind with matching coefficients, and query
	// base + const 44 must bind imm := 11.
	b, cx, ix := fixture()
	base := b.Reg("a", 64)
	imm := b.Imm("i12", 12)
	isa := b.Add(base, b.Mul(b.Const(64, 4), b.ZExt(64, imm)))
	ix.Insert(cx.Canon(isa), "LDRoff")

	x := b.Reg("x", 64)
	ms := ix.Lookup(cx.Canon(b.Add(x, b.Const(64, 44))))
	if len(ms) == 0 {
		t.Fatal("x+44 did not match a+4*imm")
	}
	ib := ms[0].Binding.Imms[0]
	if ib.Const.Lo != 11 {
		t.Errorf("scaled const = %d, want 11", ib.Const.Lo)
	}
	// Non-divisible constant must not match.
	if ms := ix.Lookup(cx.Canon(b.Add(x, b.Const(64, 43)))); len(ms) != 0 {
		t.Errorf("x+43 matched a+4*imm: %v", ms)
	}
	// Immediate-to-immediate with different coefficients is allowed and
	// records both coefficients for the constraint.
	qi := b.Imm("qi", 64)
	ms = ix.Lookup(cx.Canon(b.Add(x, b.Mul(b.Const(64, 4), qi))))
	if len(ms) == 0 {
		t.Fatal("x+4*qi did not match")
	}
	ib = ms[0].Binding.Imms[0]
	if ib.CoefQ.Lo != 4 || ib.CoefI.Lo != 4 {
		t.Errorf("coefs = %v/%v, want 4/4", ib.CoefQ, ib.CoefI)
	}
}

func TestPCRelative(t *testing.T) {
	b, cx, ix := fixture()
	pc := b.VarT("pc", term.KindPC, 64)
	imm := b.Imm("i21", 21)
	// ADR: pc + sext(imm) — linearized sext keeps pc+imm structure plus a
	// sign-bit term; use zext here for the plain pattern.
	isa := b.Add(pc, b.ZExt(64, imm))
	ix.Insert(cx.Canon(isa), "ADR")

	qi := b.Imm("sym", 64)
	ms := ix.Lookup(cx.Canon(qi))
	if len(ms) == 0 {
		t.Fatal("lone immediate did not match pc+imm")
	}
	ib := ms[0].Binding.Imms[0]
	if !ib.PCRel {
		t.Error("binding not marked PC-relative")
	}
}

func TestNoFalseMatches(t *testing.T) {
	b, cx, ix := fixture()
	a := b.Reg("a", 64)
	c := b.Reg("b", 64)
	ix.Insert(cx.Canon(b.Add(a, c)), "ADD")
	ix.Insert(cx.Canon(b.And(a, c)), "AND")
	ix.Insert(cx.Canon(b.Sub(a, c)), "SUB")

	x := b.Reg("x", 64)
	y := b.Reg("y", 64)
	for _, tc := range []struct {
		q    *term.Term
		want string
	}{
		{b.Xor(x, y), ""},
		{b.And(x, y), "AND"},
		{b.Sub(x, y), "SUB"},
		{b.Mul(x, y), ""},
	} {
		ms := ix.Lookup(cx.Canon(tc.q))
		var got []string
		for _, m := range ms {
			got = append(got, m.Payloads[0].(string))
		}
		if tc.want == "" && len(got) != 0 {
			t.Errorf("%s matched %v, want none", tc.q, got)
		}
		if tc.want != "" && !contains(got, tc.want) {
			t.Errorf("%s matched %v, want %s", tc.q, got, tc.want)
		}
	}
}

func TestRegisterKindsDoNotMix(t *testing.T) {
	b, cx, ix := fixture()
	v := b.VarT("v", term.KindVecReg, 64)
	w := b.VarT("w", term.KindVecReg, 64)
	ix.Insert(cx.Canon(b.Add(v, w)), "VADD")

	x := b.Reg("x", 64)
	y := b.Reg("y", 64)
	if ms := ix.Lookup(cx.Canon(b.Add(x, y))); len(ms) != 0 {
		t.Errorf("scalar add matched vector add: %v", ms)
	}
}

func TestSharedOperandBinding(t *testing.T) {
	// Query x+x (which canonicalizes to 2x) must match an indexed 2a
	// (e.g. from a+a or a<<1) with a→x, but must NOT match a+b with two
	// distinct operands unless both bind to x — which is allowed.
	b, cx, ix := fixture()
	a := b.Reg("a", 64)
	c := b.Reg("b", 64)
	ix.Insert(cx.Canon(b.Add(a, a)), "DOUBLE")
	ix.Insert(cx.Canon(b.Add(a, c)), "ADD")

	x := b.Reg("x", 64)
	ms := ix.Lookup(cx.Canon(b.Add(x, x)))
	var got []string
	for _, m := range ms {
		got = append(got, m.Payloads[0].(string))
	}
	if !contains(got, "DOUBLE") {
		t.Errorf("x+x matches = %v, want DOUBLE", got)
	}
	// a+b has coefficient-1 addends; 2x cannot unify addend-wise.
	if contains(got, "ADD") {
		t.Log("note: x+x also matched ADD (both operands bound to x) — acceptable")
	}
	// Distinct query operands must not bind one ISA operand to two vars.
	y := b.Reg("y", 64)
	ms2 := ix.Lookup(cx.Canon(b.Add(b.Add(x, y), x)))
	for _, m := range ms2 {
		if m.Payloads[0] == "DOUBLE" {
			t.Error("x+y+x matched 2a")
		}
	}
}

func TestCommutativeCrossContextOrder(t *testing.T) {
	// Opaque products are ordered by canonical ID, which differs between
	// the ISA and query sides; unification must try both orders.
	b, cx, ix := fixture()
	a := b.Reg("a", 64)
	c := b.Reg("b", 64)
	ix.Insert(cx.Canon(b.Mul(a, c)), "MUL")

	// Declare query vars in reverse so their IDs order differently.
	y := b.Reg("y", 64)
	x := b.Reg("x", 64)
	ms := ix.Lookup(cx.Canon(b.Mul(x, y)))
	if len(ms) == 0 {
		t.Fatal("mul did not match across operand orders")
	}
}

func TestNestedLinUnification(t *testing.T) {
	// 32-bit sums nested inside 64-bit extensions: zext(a32+b32) as an
	// indexed ISA term (ADDW-style) must match zext(x32+y32).
	b, cx, ix := fixture()
	a := b.Reg("a", 32)
	c := b.Reg("b", 32)
	ix.Insert(cx.Canon(b.ZExt(64, b.Add(a, c))), "ADDWzext")

	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	ms := ix.Lookup(cx.Canon(b.ZExt(64, b.Add(x, y))))
	if len(ms) == 0 {
		t.Fatal("nested 32-bit sum did not unify")
	}
	if len(ms[0].Binding.Regs) != 2 {
		t.Errorf("bindings = %d, want 2", len(ms[0].Binding.Regs))
	}
}

func TestLoadPatternMatch(t *testing.T) {
	b, cx, ix := fixture()
	base := b.Reg("a", 64)
	imm := b.Imm("i12", 12)
	isa := b.Load(64, b.Add(base, b.ZExt(64, imm)))
	ix.Insert(cx.Canon(isa), "LDRXui")

	x := b.Reg("x", 64)
	ms := ix.Lookup(cx.Canon(b.Load(64, b.Add(x, b.Const(64, 16)))))
	if len(ms) == 0 {
		t.Fatal("load with constant offset did not match")
	}
	ib := ms[0].Binding.Imms[0]
	if ib.Const.Lo != 16 {
		t.Errorf("offset = %d, want 16", ib.Const.Lo)
	}
	// Plain load must also match via zero-binding.
	ms2 := ix.Lookup(cx.Canon(b.Load(64, x)))
	if len(ms2) == 0 {
		t.Fatal("plain load did not match via zero offset")
	}
}

func TestMultiplePayloadsSameTerm(t *testing.T) {
	b, cx, ix := fixture()
	a := b.Reg("a", 64)
	c := b.Reg("b", 64)
	ct := cx.Canon(b.Add(a, c))
	ix.Insert(ct, "ADD1")
	ix.Insert(ct, "ADD2")
	x := b.Reg("x", 64)
	y := b.Reg("y", 64)
	ms := ix.Lookup(cx.Canon(b.Add(x, y)))
	if len(ms) == 0 || len(ms[0].Payloads) != 2 {
		t.Fatalf("payloads not accumulated: %v", ms)
	}
	if ix.Len() != 2 {
		t.Errorf("Len = %d, want 2", ix.Len())
	}
}

// TestBindingVerification re-checks every match by substituting the
// binding into the ISA term and comparing canonical forms — invariant #3
// of DESIGN.md (index matches are sound).
func TestBindingVerification(t *testing.T) {
	b, cx, ix := fixture()
	a := b.Reg("a", 64)
	c := b.Reg("b", 64)
	sh := b.Imm("sh", 6)
	i12 := b.Imm("i12", 12)
	isaTerms := map[string]*term.Term{
		"ADDXrr": b.Add(a, c),
		"ADDXrs": b.Add(a, b.Shl(c, b.ZExt(64, sh))),
		"ADDXri": b.Add(a, b.ZExt(64, i12)),
		"SUBXrr": b.Sub(a, c),
		"LSLXri": b.Shl(a, b.ZExt(64, sh)),
	}
	for name, tt := range isaTerms {
		ix.Insert(cx.Canon(tt), name)
	}

	x := b.Reg("x", 64)
	y := b.Reg("y", 64)
	queries := []*term.Term{
		b.Add(x, y),
		b.Add(x, b.Shl(y, b.Const(64, 3))),
		b.Add(x, b.Const(64, 100)),
		b.Sub(x, y),
		b.Shl(x, b.Const(64, 7)),
		b.Add(b.Shl(y, b.Const(64, 2)), x),
	}
	rng := bv.NewRNG(31)
	for _, q := range queries {
		for _, m := range ix.Lookup(cx.Canon(q)) {
			name := m.Payloads[0].(string)
			isa := isaTerms[name]
			subst := map[*term.Term]*term.Term{}
			okBind := true
			for _, rb := range m.Binding.Regs {
				subst[rb.ISA.Var] = rb.Query.Var
			}
			for _, ib := range m.Binding.Imms {
				w := ib.ISA.Width
				if ib.Query == nil {
					subst[ib.ISA.Var] = b.ConstBV(ib.Const.Trunc(w))
				} else if ib.Query.Width >= w {
					subst[ib.ISA.Var] = b.Extract(w-1, 0, ib.Query.Var)
				} else {
					okBind = false
				}
			}
			if !okBind {
				continue
			}
			inst := b.Rebuild(isa, subst)
			// Evaluate both on random inputs: a sound match must agree.
			for k := 0; k < 16; k++ {
				env := term.NewEnv()
				for _, v := range q.Vars() {
					env.Bind(v.Name, rng.BV(v.W()))
				}
				for _, v := range inst.Vars() {
					if _, ok := env.Vals[v.Name]; !ok {
						env.Bind(v.Name, rng.BV(v.W()))
					}
				}
				if q.Eval(env) != inst.Eval(env) {
					t.Errorf("unsound match %s for %s:\n  inst=%s\n  env=%v",
						name, q, inst, env.Vals)
					break
				}
			}
		}
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestSignWindowConstContradictionRejected(t *testing.T) {
	// An immediate bound to a constant with its sign bit set cannot also
	// satisfy a zero claim on that sign bit (the decomposed sext term):
	// query p + 0x800 against a sign-extending 12-bit offset must NOT
	// produce a constant binding of 0x800 with a zero-extension shape.
	b, cx, ix := fixture()
	base := b.Reg("a", 64)
	imm := b.Imm("i12", 12)
	ix.Insert(cx.Canon(b.Add(base, b.SExt(64, imm))), "ADDIsext")

	x := b.Reg("x", 64)
	// 0x800 sign-extends to 0xFFFFF...800, not 0x800: no valid binding.
	for _, m := range ix.Lookup(cx.Canon(b.Add(x, b.Const(64, 0x800)))) {
		for _, ib := range m.Binding.Imms {
			if ib.Query == nil && ib.Const.ZExt(64).Lo == 0x800 {
				t.Errorf("contradictory constant binding emitted: %+v", ib)
			}
		}
	}
	// A negative offset representable under sign extension must bind via
	// the value path (query const 0xFFFFF...FF8 = sext(-8)).
	ms := ix.Lookup(cx.Canon(b.Add(x, b.ConstInt(64, -8))))
	found := false
	for _, m := range ms {
		for _, ib := range m.Binding.Imms {
			if ib.Query == nil && !ib.Const.IsZero() {
				found = true
			}
		}
	}
	if !found {
		t.Log("note: negative-offset binding not found via index (SMT fallback would cover)")
	}
}
