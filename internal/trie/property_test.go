package trie

import (
	"fmt"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/canon"
	"iselgen/internal/term"
)

// randomISATerm builds a random instruction-effect-shaped term over the
// given register and immediate variables.
func randomISATerm(b *term.Builder, rng *bv.RNG, regs, imms []*term.Term, depth int) *term.Term {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			if len(imms) > 0 {
				imm := imms[rng.Intn(len(imms))]
				return b.ZExt(64, imm)
			}
			fallthrough
		case 1:
			return regs[rng.Intn(len(regs))]
		default:
			return b.ConstBV(rng.BV(64))
		}
	}
	sub := func() *term.Term { return randomISATerm(b, rng, regs, imms, depth-1) }
	switch rng.Intn(8) {
	case 0:
		return b.Add(sub(), sub())
	case 1:
		return b.Sub(sub(), sub())
	case 2:
		return b.And(sub(), sub())
	case 3:
		return b.Xor(sub(), sub())
	case 4:
		return b.Shl(sub(), b.Const(64, uint64(rng.Intn(63))))
	case 5:
		return b.Not(sub())
	case 6:
		return b.Or(sub(), sub())
	default:
		return b.Mul(sub(), b.ConstBV(rng.BV(8).ZExt(64)))
	}
}

// TestPropertyAlphaRenamedLookup is invariant #3: a term inserted into
// the index must be found when queried through an alpha-renamed copy
// (ISA operand names vs IR pattern names), and the returned binding must
// evaluate consistently.
func TestPropertyAlphaRenamedLookup(t *testing.T) {
	rng := bv.NewRNG(20240705)
	misses := 0
	for trial := 0; trial < 200; trial++ {
		b := term.NewBuilder()
		cx := canon.NewCtx()
		ix := New()

		regs := []*term.Term{b.Reg("s0.a", 64), b.Reg("s0.b", 64)}
		imms := []*term.Term{b.Imm("s0.i", 12)}
		isaT := randomISATerm(b, rng, regs, imms, 3)
		if isaT.IsConst() {
			continue
		}
		ix.Insert(cx.Canon(isaT), trial)

		// Alpha-rename: IR-side variables (same widths/kinds).
		qRegs := []*term.Term{b.Reg("p0", 64), b.Reg("p1", 64)}
		qImms := []*term.Term{b.Imm("pi", 12)}
		subst := map[*term.Term]*term.Term{
			regs[0]: qRegs[0], regs[1]: qRegs[1], imms[0]: qImms[0],
		}
		queryT := b.Rebuild(isaT, subst)
		matches := ix.Lookup(cx.Canon(queryT))
		found := false
		for _, m := range matches {
			if len(m.Payloads) > 0 && m.Payloads[0] == trial {
				found = true
				// The binding must be evaluation-consistent: assigning
				// each ISA var the value of its bound query var makes the
				// terms agree.
				if !bindingConsistent(t, isaT, queryT, m.Binding, rng) {
					t.Fatalf("trial %d: inconsistent binding for %s", trial, isaT)
				}
			}
		}
		if !found {
			// The index is allowed to have false negatives (§V-C), but an
			// identical-up-to-renaming term should essentially always hit;
			// tolerate only a tiny number of unifier search-limit misses.
			misses++
			t.Logf("trial %d: self-lookup missed for %s", trial, isaT)
		}
	}
	if misses > 4 {
		t.Errorf("too many self-lookup misses: %d/200", misses)
	}
}

// bindingConsistent evaluates both terms under a random assignment
// connected through the binding.
func bindingConsistent(t *testing.T, isaT, queryT *term.Term, bind *Binding, rng *bv.RNG) bool {
	t.Helper()
	for k := 0; k < 8; k++ {
		env := term.NewEnv()
		// Assign query vars.
		for _, v := range queryT.Vars() {
			env.Bind(v.Name, rng.BV(v.W()))
		}
		// Assign ISA vars through the binding.
		ok := true
		for _, rb := range bind.Regs {
			env.Bind(rb.ISA.Var.Name, env.Vals[rb.Query.Var.Name])
		}
		for _, ib := range bind.Imms {
			if ib.PCRel || ib.ISALo != 0 {
				ok = false
				break
			}
			// Scaled bindings (CoefQ != CoefI) encode a multiplicative
			// constraint that the rule layer resolves (coefShift +
			// verification); the plain value-equality check below only
			// applies to unit-coefficient bindings.
			if ib.CoefQ.ZExt(64) != ib.CoefI.ZExt(64) {
				ok = false
				break
			}
			var v bv.BV
			if ib.Query == nil {
				v = ib.Const
			} else {
				v = env.Vals[ib.Query.Var.Name]
			}
			// Respect the window: only usable when the query value fits.
			w := ib.ISA.Var.W()
			narrow := v.ZExt(64).Trunc(w)
			if narrow.ZExt(v.ZExt(64).W()) != v.ZExt(64) {
				ok = false // not representable; skip this sample
				break
			}
			env.Bind(ib.ISA.Var.Name, narrow)
		}
		if !ok {
			continue
		}
		// ISA vars the binding left free must not influence the result
		// (they cancel out of the canonical form — e.g. x+i-i): bind them
		// to fresh random values and demand agreement anyway.
		for _, v := range isaT.Vars() {
			if _, bound := env.Vals[v.Name]; !bound {
				env.Bind(v.Name, rng.BV(v.W()))
			}
		}
		if isaT.Eval(env) != queryT.Eval(env) {
			t.Logf("disagree on %v", env.Vals)
			return false
		}
	}
	return true
}

// TestPropertyNoFalsePayloads: looking up a random query must never
// return a match whose binding is evaluation-inconsistent (soundness of
// unification up to the recorded constraints).
func TestPropertyNoFalsePayloads(t *testing.T) {
	rng := bv.NewRNG(424242)
	for trial := 0; trial < 120; trial++ {
		b := term.NewBuilder()
		cx := canon.NewCtx()
		ix := New()
		regs := []*term.Term{b.Reg("s0.a", 64), b.Reg("s0.b", 64)}
		imms := []*term.Term{b.Imm("s0.i", 12)}
		// Index several random terms.
		var indexed []*term.Term
		for i := 0; i < 5; i++ {
			tt := randomISATerm(b, rng, regs, imms, 2)
			indexed = append(indexed, tt)
			ix.Insert(cx.Canon(tt), i)
		}
		// Random query over IR-style vars.
		qRegs := []*term.Term{b.Reg("p0", 64), b.Reg("p1", 64)}
		qImms := []*term.Term{b.Imm("pi", 64)}
		q := randomISATerm(b, rng, qRegs, qImms, 2)
		for _, m := range ix.Lookup(cx.Canon(q)) {
			idx := m.Payloads[0].(int)
			if !bindingConsistent(t, indexed[idx], q, m.Binding, rng) {
				t.Fatalf("trial %d: unsound match\n  indexed %s\n  query   %s",
					trial, indexed[idx], q)
			}
		}
	}
}

var _ = fmt.Sprintf
