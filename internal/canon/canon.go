// Package canon implements the paper's canonical representation for
// bitvector terms (§V-B1): every term is rewritten into a hierarchy of
// modulo-2ⁿ linear combinations with explicit coefficients, over atoms
// (symbolic variables carrying domain information) and opaque operation
// nodes. The canonicalization rules are exactly Table I of the paper:
//
//	(I)    bvadd            → merged linear combination
//	(II)   bvnot a          → -1 + (-1)·a
//	(III)  concat a b       → 2^m·a + b - 2^m·extract(b)  (overflow fixup)
//	(IV)   bvmul over +     → distributed products
//	(V)    bvmul by const   → coefficient
//	(VI)   bvshl by const   → coefficient 2^d
//	(VII)  bvurem by 2^k    → low-bit extract
//	(VIII) ite c 0 b        → ite (c+1) b 0
//	(IX)   ite hoisting     → common addends pulled out of both arms
//
// plus constant folding, implicit zero-extension of narrower subterms
// inside wider linear combinations, linearized sign-extension
// (sext(x) = x + (2^w − 2^n)·signbit(x)), and low-bit extracts pushed
// through linear combinations.
//
// The guaranteed property is one-sided (paper §V-B1): if two terms have
// the same canonical form they are semantically equal; inequivalent
// canonical forms prove nothing. Canonical terms are interned in a Ctx,
// so equality is pointer (or ID) comparison — the basis of the term
// index in package trie.
package canon

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/term"
)

// CKind discriminates canonical term shapes.
type CKind uint8

// Canonical term shapes.
const (
	Atom   CKind = iota // a symbolic variable
	OpNode              // an uninterpreted operation over canonical operands
	Lin                 // constant + Σ coefficient·subterm (mod 2^Width)
)

// CTerm is an interned canonical term. Width is the bit width of the
// value; subterms of a Lin may be narrower than the Lin itself, in which
// case they are implicitly zero-extended.
type CTerm struct {
	ID    int
	Kind  CKind
	Width int

	// Hash is a structural (Merkle) hash of the term's content. Unlike
	// ID — which is assigned in Ctx insertion order and therefore depends
	// on canonicalization history — the hash is identical for the same
	// term in every Ctx. All canonical orderings (commutative operand
	// order, Lin addend order) go through content comparison so that two
	// contexts always agree on the shape of a canonical term; this is
	// what makes index lookups worker-history-independent.
	Hash uint64

	// Atom fields.
	Var *term.Term

	// OpNode fields. For Mul produced by distribution the operands may be
	// narrower than Width and are implicitly zero-extended.
	Op         term.Op
	Aux0, Aux1 int32
	Args       []*CTerm

	// Lin fields.
	K       bv.BV    // constant part, width Width
	Addends []Addend // sorted by (kind rank, content), no zero coefficients
}

// Addend is one coefficient·subterm component of a linear combination.
type Addend struct {
	Coef bv.BV // width = enclosing Lin's width
	T    *CTerm
}

// IsConst reports whether the canonical term is a pure constant.
func (c *CTerm) IsConst() bool { return c.Kind == Lin && len(c.Addends) == 0 }

// IsAtom reports whether the canonical term is a variable.
func (c *CTerm) IsAtom() bool { return c.Kind == Atom }

// AtomKind returns the variable kind of an atom.
func (c *CTerm) AtomKind() term.VarKind { return c.Var.Kind }

// rank orders addend classes inside a linear combination. PC atoms sort
// before every other class: the trie's PC-relative matching (option D)
// absorbs an unmatched PC edge into a *later* immediate edge, so the pc
// addend must precede immediates on every trie path. The rank is pure
// content (kind and atom kind), never Ctx state, so all contexts agree.
func rank(c *CTerm) int {
	switch c.Kind {
	case Atom:
		if c.Var.Kind == term.KindPC {
			return 0
		}
		return 1
	case OpNode:
		return 2
	default:
		return 3
	}
}

// Ctx interns canonical terms and assigns dense IDs in insertion order
// (the paper's increasing term numbering: two canonicalized terms are
// equal iff their IDs are equal).
type Ctx struct {
	byKey map[string]*CTerm
	terms []*CTerm
	memo  map[*term.Term]*CTerm
}

// NewCtx returns an empty canonicalization context.
func NewCtx() *Ctx {
	return &Ctx{byKey: make(map[string]*CTerm), memo: make(map[*term.Term]*CTerm)}
}

// NumTerms returns the number of distinct canonical terms interned.
func (cx *Ctx) NumTerms() int { return len(cx.terms) }

// ByID returns the canonical term with the given ID.
func (cx *Ctx) ByID(id int) *CTerm { return cx.terms[id] }

func (cx *Ctx) intern(c *CTerm) *CTerm {
	key := c.key()
	if old, ok := cx.byKey[key]; ok {
		return old
	}
	c.ID = len(cx.terms)
	c.Hash = contentHash(c)
	cx.terms = append(cx.terms, c)
	cx.byKey[key] = c
	return c
}

// contentHash computes the structural hash of a term whose children are
// already interned (and therefore already hashed): FNV-1a over the
// term's own content mixed with the children's hashes.
func contentHash(c *CTerm) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) { h = (h ^ v) * 1099511628211 }
	mix(uint64(c.Kind))
	mix(uint64(c.Width))
	switch c.Kind {
	case Atom:
		for i := 0; i < len(c.Var.Name); i++ {
			mix(uint64(c.Var.Name[i]))
		}
		mix(uint64(c.Var.Kind))
	case OpNode:
		mix(uint64(c.Op))
		mix(uint64(uint32(c.Aux0)))
		mix(uint64(uint32(c.Aux1)))
		for _, a := range c.Args {
			mix(a.Hash)
		}
	case Lin:
		mix(c.K.Lo)
		mix(c.K.Hi)
		for _, a := range c.Addends {
			mix(a.Coef.Lo)
			mix(a.Coef.Hi)
			mix(a.T.Hash)
		}
	}
	return h
}

// contentCmp totally orders canonical terms by structure alone. The hash
// settles almost every comparison; on a collision the full structures are
// compared, so distinct terms never compare equal. Interned terms in one
// Ctx compare equal iff they are the same pointer.
func contentCmp(a, b *CTerm) int {
	if a == b {
		return 0
	}
	if a.Hash != b.Hash {
		if a.Hash < b.Hash {
			return -1
		}
		return 1
	}
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	if a.Width != b.Width {
		return a.Width - b.Width
	}
	switch a.Kind {
	case Atom:
		if c := strings.Compare(a.Var.Name, b.Var.Name); c != 0 {
			return c
		}
		return int(a.Var.Kind) - int(b.Var.Kind)
	case OpNode:
		if a.Op != b.Op {
			return int(a.Op) - int(b.Op)
		}
		if a.Aux0 != b.Aux0 {
			return int(a.Aux0) - int(b.Aux0)
		}
		if a.Aux1 != b.Aux1 {
			return int(a.Aux1) - int(b.Aux1)
		}
		if len(a.Args) != len(b.Args) {
			return len(a.Args) - len(b.Args)
		}
		for i := range a.Args {
			if c := contentCmp(a.Args[i], b.Args[i]); c != 0 {
				return c
			}
		}
	case Lin:
		if c := cmpBV(a.K, b.K); c != 0 {
			return c
		}
		if len(a.Addends) != len(b.Addends) {
			return len(a.Addends) - len(b.Addends)
		}
		for i := range a.Addends {
			if c := cmpBV(a.Addends[i].Coef, b.Addends[i].Coef); c != 0 {
				return c
			}
			if c := contentCmp(a.Addends[i].T, b.Addends[i].T); c != 0 {
				return c
			}
		}
	}
	return 0
}

func cmpBV(a, b bv.BV) int {
	if a.Hi != b.Hi {
		if a.Hi < b.Hi {
			return -1
		}
		return 1
	}
	if a.Lo != b.Lo {
		if a.Lo < b.Lo {
			return -1
		}
		return 1
	}
	return int(a.Width) - int(b.Width)
}

func contentLess(a, b *CTerm) bool { return contentCmp(a, b) < 0 }

func (c *CTerm) key() string {
	var sb strings.Builder
	var buf [8]byte
	wInt := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		sb.Write(buf[:])
	}
	sb.WriteByte(byte(c.Kind))
	sb.WriteByte(byte(c.Width))
	switch c.Kind {
	case Atom:
		sb.WriteString(c.Var.Name)
	case OpNode:
		sb.WriteByte(byte(c.Op))
		wInt(uint64(c.Aux0))
		wInt(uint64(c.Aux1))
		for _, a := range c.Args {
			wInt(uint64(a.ID))
		}
	case Lin:
		wInt(c.K.Lo)
		wInt(c.K.Hi)
		for _, a := range c.Addends {
			wInt(a.Coef.Lo)
			wInt(a.Coef.Hi)
			wInt(uint64(a.T.ID))
		}
	}
	return sb.String()
}

// atom interns an atom for the given variable.
func (cx *Ctx) atom(v *term.Term) *CTerm {
	return cx.intern(&CTerm{Kind: Atom, Width: v.W(), Var: v})
}

// opNode interns an operation node, ordering commutative operands by
// content (never by Ctx-local ID, which would make the canonical shape
// depend on what the context happened to intern earlier).
func (cx *Ctx) opNode(op term.Op, width int, aux0, aux1 int32, args ...*CTerm) *CTerm {
	if op.IsCommutative() && len(args) == 2 && contentLess(args[1], args[0]) {
		args[0], args[1] = args[1], args[0]
	}
	return cx.intern(&CTerm{Kind: OpNode, Width: width, Op: op, Aux0: aux0, Aux1: aux1, Args: args})
}

// constLin interns a pure-constant linear combination.
func (cx *Ctx) constLin(v bv.BV) *CTerm {
	return cx.intern(&CTerm{Kind: Lin, Width: v.W(), K: v})
}

// linBuilder accumulates addends during construction, keyed by subterm,
// implementing the ordered-map-over-term-ids step of §V-B2.
type linBuilder struct {
	width int
	k     bv.BV
	coefs map[*CTerm]bv.BV
}

func newLinBuilder(width int) *linBuilder {
	return &linBuilder{width: width, k: bv.Zero(width), coefs: make(map[*CTerm]bv.BV)}
}

func (lb *linBuilder) addConst(v bv.BV) { lb.k = lb.k.Add(v.ZExt(lb.width)) }

func (lb *linBuilder) add(coef bv.BV, t *CTerm) {
	if t.IsConst() {
		lb.addConst(coef.Mul(t.K.ZExt(lb.width)))
		return
	}
	if old, ok := lb.coefs[t]; ok {
		lb.coefs[t] = old.Add(coef)
	} else {
		lb.coefs[t] = coef
	}
}

// addTerm folds an arbitrary canonical term into the accumulator with the
// given coefficient, splicing same-width linear combinations (rule I) and
// treating everything else as an opaque subterm.
func (lb *linBuilder) addTerm(coef bv.BV, t *CTerm) {
	if t.Kind == Lin && t.Width == lb.width {
		lb.addConst(coef.Mul(t.K))
		for _, a := range t.Addends {
			lb.add(coef.Mul(a.Coef), a.T)
		}
		return
	}
	lb.add(coef, t)
}

// build finalizes the accumulator into an interned canonical term.
func (lb *linBuilder) build(cx *Ctx) *CTerm {
	addends := make([]Addend, 0, len(lb.coefs))
	for t, c := range lb.coefs {
		if c.IsZero() {
			continue
		}
		addends = append(addends, Addend{Coef: c, T: t})
	}
	sort.Slice(addends, func(i, j int) bool {
		ri, rj := rank(addends[i].T), rank(addends[j].T)
		if ri != rj {
			return ri < rj
		}
		return contentLess(addends[i].T, addends[j].T)
	})
	// Collapse the trivial wrapper 0 + 1·t (same width) to t itself.
	if lb.k.IsZero() && len(addends) == 1 &&
		addends[0].Coef.Lo == 1 && addends[0].Coef.Hi == 0 &&
		addends[0].T.Width == lb.width {
		return addends[0].T
	}
	return cx.intern(&CTerm{Kind: Lin, Width: lb.width, K: lb.k, Addends: addends})
}

// scale returns c·t as a canonical term at t's width (rules V/VI).
func (cx *Ctx) scale(c bv.BV, t *CTerm) *CTerm {
	lb := newLinBuilder(t.Width)
	lb.addTerm(c, t)
	return lb.build(cx)
}

// maxDistribute caps rule-IV multiplication distribution; beyond this the
// canonical form would blow up quadratically (§V-B2), so the product is
// kept opaque instead (still sound, only less likely to unify).
const maxDistribute = 16

// Canon returns the canonical form of t. Results are memoized per Ctx;
// the same *term.Term always maps to the same *CTerm.
func (cx *Ctx) Canon(t *term.Term) *CTerm {
	if c, ok := cx.memo[t]; ok {
		return c
	}
	c := cx.canon(t)
	if c.Width != t.W() {
		panic(fmt.Sprintf("canon: width changed %d -> %d for %s", t.W(), c.Width, t))
	}
	cx.memo[t] = c
	return c
}

func (cx *Ctx) canon(t *term.Term) *CTerm {
	w := t.W()
	switch t.Op {
	case term.Const:
		return cx.constLin(t.CVal)

	case term.Var:
		return cx.atom(t)

	case term.Add: // rule I
		lb := newLinBuilder(w)
		lb.addTerm(bv.New(w, 1), cx.Canon(t.Args[0]))
		lb.addTerm(bv.New(w, 1), cx.Canon(t.Args[1]))
		return lb.build(cx)

	case term.Sub:
		lb := newLinBuilder(w)
		lb.addTerm(bv.New(w, 1), cx.Canon(t.Args[0]))
		lb.addTerm(bv.Ones(w), cx.Canon(t.Args[1]))
		return lb.build(cx)

	case term.Neg:
		return cx.scale(bv.Ones(w), cx.Canon(t.Args[0]))

	case term.Not: // rule II: ¬a = -1 - a
		lb := newLinBuilder(w)
		lb.addConst(bv.Ones(w))
		lb.addTerm(bv.Ones(w), cx.Canon(t.Args[0]))
		return lb.build(cx)

	case term.Mul:
		return cx.canonMul(w, cx.Canon(t.Args[0]), cx.Canon(t.Args[1]))

	case term.Shl: // rule VI
		x := cx.Canon(t.Args[0])
		d := cx.Canon(t.Args[1])
		if d.IsConst() {
			if d.K.Hi == 0 && d.K.Lo < uint64(w) {
				return cx.scale(bv.New(w, 1).ShlN(uint(d.K.Lo)), x)
			}
			return cx.constLin(bv.Zero(w)) // out-of-range shift
		}
		return cx.opNode(term.Shl, w, 0, 0, x, d)

	case term.URem: // rule VII
		x := cx.Canon(t.Args[0])
		d := cx.Canon(t.Args[1])
		if d.IsConst() {
			if k, ok := d.K.IsPow2(); ok && k > 0 && k < w {
				ex := cx.extractLow(k, x)
				lb := newLinBuilder(w)
				lb.addTerm(bv.New(w, 1), ex)
				return lb.build(cx)
			}
		}
		return cx.opNode(term.URem, w, 0, 0, x, d)

	case term.Concat: // rule III
		return cx.canonConcat(w, t.Args[0], t.Args[1])

	case term.ZExt:
		lb := newLinBuilder(w)
		lb.addTerm(bv.New(w, 1), cx.Canon(t.Args[0]))
		return lb.build(cx)

	case term.SExt:
		// sext(x) = x + (2^w − 2^n)·signbit(x), linearizing the extension.
		x := cx.Canon(t.Args[0])
		n := x.Width
		sign := cx.extractBits(n-1, n-1, x)
		lb := newLinBuilder(w)
		lb.addTerm(bv.New(w, 1), x)
		fill := bv.Ones(w).ShlN(uint(n)) // 2^w − 2^n
		lb.addTerm(fill, sign)
		return lb.build(cx)

	case term.Extract:
		x := cx.Canon(t.Args[0])
		return cx.extractBits(int(t.Aux0), int(t.Aux1), x)

	case term.Ite:
		return cx.canonIte(w, cx.Canon(t.Args[0]), cx.Canon(t.Args[1]), cx.Canon(t.Args[2]))

	case term.Eq:
		a, b := cx.Canon(t.Args[0]), cx.Canon(t.Args[1])
		if a == b {
			return cx.constLin(bv.New(1, 1))
		}
		// 1-bit equality is linear: a == b  ⟺  1 + a + b (mod 2). This is
		// the §V-B1 "booleans as bitvectors of length 1" normalization; it
		// lets condition-flag expressions like N == V unify linearly.
		if a.Width == 1 && b.Width == 1 {
			lb := newLinBuilder(1)
			lb.addConst(bv.New(1, 1))
			lb.addTerm(bv.New(1, 1), a)
			lb.addTerm(bv.New(1, 1), b)
			return lb.build(cx)
		}
		return cx.opNode(term.Eq, 1, 0, 0, a, b)

	case term.Ult, term.Slt:
		a, b := cx.Canon(t.Args[0]), cx.Canon(t.Args[1])
		if a == b {
			return cx.constLin(bv.Zero(1))
		}
		// x <s 0 is the sign bit.
		if t.Op == term.Slt && b.IsConst() && b.K.IsZero() {
			return cx.extractBits(a.Width-1, a.Width-1, a)
		}
		return cx.opNode(t.Op, 1, 0, 0, a, b)

	case term.Load:
		return cx.opNode(term.Load, w, t.Aux0, 0, cx.Canon(t.Args[0]))

	case term.Store:
		return cx.opNode(term.Store, w, t.Aux0, 0, cx.Canon(t.Args[0]), cx.Canon(t.Args[1]))

	default:
		args := make([]*CTerm, len(t.Args))
		for i, a := range t.Args {
			args[i] = cx.Canon(a)
		}
		return cx.opNode(t.Op, w, t.Aux0, t.Aux1, args...)
	}
}

// canonMul applies rules IV and V.
func (cx *Ctx) canonMul(w int, x, y *CTerm) *CTerm {
	// Rule V: constant factor becomes a coefficient.
	if x.IsConst() {
		return cx.scale(x.K, y)
	}
	if y.IsConst() {
		return cx.scale(y.K, x)
	}
	// Rule IV: distribute over linear combinations, bounded.
	xs := cx.factors(x)
	ys := cx.factors(y)
	if len(xs)*len(ys) <= maxDistribute {
		lb := newLinBuilder(w)
		for _, fx := range xs {
			for _, fy := range ys {
				coef := fx.Coef.ZExt(w).Mul(fy.Coef.ZExt(w))
				switch {
				case fx.T == nil && fy.T == nil:
					lb.addConst(coef)
				case fx.T == nil:
					lb.add(coef, fy.T)
				case fy.T == nil:
					lb.add(coef, fx.T)
				default:
					a, b := fx.T, fy.T
					if contentLess(b, a) {
						a, b = b, a
					}
					prod := cx.intern(&CTerm{Kind: OpNode, Width: w, Op: term.Mul, Args: []*CTerm{a, b}})
					lb.add(coef, prod)
				}
			}
		}
		return lb.build(cx)
	}
	return cx.opNode(term.Mul, w, 0, 0, x, y)
}

// factors decomposes a canonical term into (coef, subterm) pairs, with a
// nil subterm denoting the constant part.
func (cx *Ctx) factors(c *CTerm) []Addend {
	if c.Kind == Lin {
		out := make([]Addend, 0, len(c.Addends)+1)
		if !c.K.IsZero() {
			out = append(out, Addend{Coef: c.K, T: nil})
		}
		out = append(out, c.Addends...)
		return out
	}
	return []Addend{{Coef: bv.New(c.Width, 1), T: c}}
}

// canonConcat implements rule III: concat(a_n, b_m) at width k = n+m is
// 2^m·a + B − 2^m·extract_{k-1:m}(B), where B is b's linear combination
// lifted to width k. When b is not a linear combination the correction
// term vanishes (b < 2^m).
func (cx *Ctx) canonConcat(k int, at, bt *term.Term) *CTerm {
	m := bt.W()
	a := cx.Canon(at)
	b := cx.Canon(bt)
	lb := newLinBuilder(k)
	shift := bv.New(k, 1).ShlN(uint(m)) // 2^m
	lb.addTerm(shift, a)
	if b.Kind != Lin || len(b.Addends) == 0 {
		lb.addTerm(bv.New(k, 1), b)
		return lb.build(cx)
	}
	// Lift b's combination to width k.
	blb := newLinBuilder(k)
	blb.addConst(b.K)
	for _, ad := range b.Addends {
		blb.add(ad.Coef.ZExt(k), ad.T)
	}
	blift := blb.build(cx)
	lb.addTerm(bv.New(k, 1), blift)
	// Correction: −2^m · extract_{k-1:m}(blift).
	high := cx.extractBits(k-1, m, blift)
	lb.addTerm(shift.Neg(), high)
	return lb.build(cx)
}

// extractLow returns the canonical form of the low `width` bits of x,
// pushing the extract through linear combinations (low bits of a sum
// depend only on low bits).
func (cx *Ctx) extractLow(width int, x *CTerm) *CTerm {
	if width == x.Width {
		return x
	}
	switch x.Kind {
	case Lin:
		lb := newLinBuilder(width)
		lb.addConst(x.K.Trunc(width))
		for _, a := range x.Addends {
			t := a.T
			if t.Width > width {
				t = cx.extractLow(width, t)
			}
			lb.addTerm(a.Coef.Trunc(width), t)
		}
		return lb.build(cx)
	default:
		return cx.intern(&CTerm{Kind: OpNode, Width: width, Op: term.Extract,
			Aux0: int32(width - 1), Aux1: 0, Args: []*CTerm{x}})
	}
}

// extractBits returns the canonical extract of bits hi..lo of x.
func (cx *Ctx) extractBits(hi, lo int, x *CTerm) *CTerm {
	if lo == 0 {
		return cx.extractLow(hi+1, x)
	}
	// Constant folding.
	if x.IsConst() {
		return cx.constLin(x.K.Extract(hi, lo))
	}
	// Nested extracts compose.
	if x.Kind == OpNode && x.Op == term.Extract {
		return cx.extractBits(int(x.Aux1)+hi, int(x.Aux1)+lo, x.Args[0])
	}
	return cx.intern(&CTerm{Kind: OpNode, Width: hi - lo + 1, Op: term.Extract,
		Aux0: int32(hi), Aux1: int32(lo), Args: []*CTerm{x}})
}

// canonIte applies rules VIII and IX.
func (cx *Ctx) canonIte(w int, cond, thn, els *CTerm) *CTerm {
	if cond.IsConst() {
		if cond.K.Bool() {
			return thn
		}
		return els
	}
	if thn == els {
		return thn
	}
	// Rule IX: hoist common (coefficient, subterm) addends and, when the
	// constants agree, the constant part.
	tf, ef := cx.factors(thn), cx.factors(els)
	common := newLinBuilder(w)
	hoisted := false
	tKeep := map[int]bool{}
	eKeep := map[int]bool{}
	for i := range tf {
		tKeep[i] = true
	}
	for j := range ef {
		eKeep[j] = true
	}
	for i, fa := range tf {
		for j, fb := range ef {
			if !eKeep[j] || !tKeep[i] {
				continue
			}
			if fa.T == fb.T && fa.Coef.ZExt(w) == fb.Coef.ZExt(w) {
				if fa.T == nil {
					common.addConst(fa.Coef.ZExt(w))
				} else {
					common.add(fa.Coef.ZExt(w), fa.T)
				}
				tKeep[i], eKeep[j] = false, false
				hoisted = true
			}
		}
	}
	if hoisted {
		rebuild := func(fs []Addend, keep map[int]bool) *CTerm {
			lb := newLinBuilder(w)
			for i, f := range fs {
				if !keep[i] {
					continue
				}
				if f.T == nil {
					lb.addConst(f.Coef.ZExt(w))
				} else {
					lb.add(f.Coef.ZExt(w), f.T)
				}
			}
			return lb.build(cx)
		}
		inner := cx.canonIte(w, cond, rebuild(tf, tKeep), rebuild(ef, eKeep))
		common.addTerm(bv.New(w, 1), inner)
		return common.build(cx)
	}

	isZero := func(c *CTerm) bool { return c.IsConst() && c.K.IsZero() }
	// Rule VIII: zero belongs in the else branch.
	if isZero(thn) && !isZero(els) {
		return cx.opNode(term.Ite, w, 0, 0, cx.notCond(cond), els, thn)
	}
	if !isZero(els) {
		// Neither arm zero: strip a negated condition for a unique form.
		if stripped, ok := cx.stripNot(cond); ok {
			return cx.opNode(term.Ite, w, 0, 0, stripped, els, thn)
		}
	}
	return cx.opNode(term.Ite, w, 0, 0, cond, thn, els)
}

// notCond returns the canonical 1-bit negation c+1 (rule VIII).
func (cx *Ctx) notCond(c *CTerm) *CTerm {
	lb := newLinBuilder(1)
	lb.addConst(bv.New(1, 1))
	lb.addTerm(bv.New(1, 1), c)
	return lb.build(cx)
}

// stripNot undoes notCond: if c has the form 1 + x it returns x.
func (cx *Ctx) stripNot(c *CTerm) (*CTerm, bool) {
	if c.Kind == Lin && c.Width == 1 && c.K.Bool() && len(c.Addends) == 1 {
		return c.Addends[0].T, true
	}
	return nil, false
}
