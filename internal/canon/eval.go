package canon

import (
	"fmt"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/term"
)

// Eval evaluates the canonical term under env (the same environment type
// used for the original terms). This is primarily used by the test-input
// evaluation cache (paper §V-C) and by the property tests asserting that
// canonicalization preserves semantics.
func (c *CTerm) Eval(env *term.Env) bv.BV {
	memo := make(map[*CTerm]bv.BV, 8)
	return c.eval(env, memo)
}

func (c *CTerm) eval(env *term.Env, memo map[*CTerm]bv.BV) bv.BV {
	if v, ok := memo[c]; ok {
		return v
	}
	var r bv.BV
	switch c.Kind {
	case Atom:
		v, ok := env.Vals[c.Var.Name]
		if !ok {
			panic(fmt.Sprintf("canon: unbound variable %q", c.Var.Name))
		}
		r = v

	case Lin:
		r = c.K
		for _, a := range c.Addends {
			v := a.T.eval(env, memo).ZExt(c.Width)
			r = r.Add(a.Coef.Mul(v))
		}

	case OpNode:
		arg := func(i int) bv.BV { return c.Args[i].eval(env, memo) }
		switch c.Op {
		case term.Mul:
			// Distributed products may have narrower operands, which are
			// implicitly zero-extended.
			r = arg(0).ZExt(c.Width).Mul(arg(1).ZExt(c.Width))
		case term.UDiv:
			r = arg(0).UDiv(arg(1))
		case term.SDiv:
			r = arg(0).SDiv(arg(1))
		case term.URem:
			r = arg(0).URem(arg(1))
		case term.SRem:
			r = arg(0).SRem(arg(1))
		case term.And:
			r = arg(0).And(arg(1))
		case term.Or:
			r = arg(0).Or(arg(1))
		case term.Xor:
			r = arg(0).Xor(arg(1))
		case term.Shl:
			r = arg(0).Shl(arg(1))
		case term.LShr:
			r = arg(0).LShr(arg(1))
		case term.AShr:
			r = arg(0).AShr(arg(1))
		case term.RotL:
			r = arg(0).RotL(arg(1))
		case term.RotR:
			r = arg(0).RotR(arg(1))
		case term.Eq:
			r = bv.NewBool(arg(0).Eq(arg(1)))
		case term.Ult:
			r = bv.NewBool(arg(0).Ult(arg(1)))
		case term.Slt:
			r = bv.NewBool(arg(0).Slt(arg(1)))
		case term.Extract:
			r = arg(0).Extract(int(c.Aux0), int(c.Aux1))
		case term.Ite:
			if arg(0).Bool() {
				r = arg(1)
			} else {
				r = arg(2)
			}
		case term.Load:
			r = term.MemValue(arg(0).Uint64(), c.Width)
		case term.Store:
			addr := arg(0)
			val := arg(1)
			r = term.StoreDigest(addr.Uint64(), val, c.Width)
		case term.Popcount:
			r = arg(0).Popcount()
		case term.Clz:
			r = arg(0).Clz()
		case term.Ctz:
			r = arg(0).Ctz()
		case term.Rev:
			r = arg(0).Rev()
		default:
			panic(fmt.Sprintf("canon: eval of op %v", c.Op))
		}
	}
	if r.W() != c.Width {
		panic(fmt.Sprintf("canon: eval width %d for term of width %d", r.W(), c.Width))
	}
	memo[c] = r
	return r
}

// String renders the canonical term in the paper's notation: linear
// combinations as "k +w c1·t1 +w c2·t2", atoms by name, op nodes as
// s-expressions.
func (c *CTerm) String() string {
	var sb strings.Builder
	c.write(&sb)
	return sb.String()
}

func (c *CTerm) write(sb *strings.Builder) {
	switch c.Kind {
	case Atom:
		sb.WriteString(c.Var.Name)
	case Lin:
		sb.WriteByte('(')
		fmt.Fprintf(sb, "%s", c.K)
		for _, a := range c.Addends {
			fmt.Fprintf(sb, " +%d %s·", c.Width, a.Coef)
			a.T.write(sb)
		}
		sb.WriteByte(')')
	case OpNode:
		sb.WriteByte('(')
		if c.Op == term.Extract {
			fmt.Fprintf(sb, "extract[%d:%d] ", c.Aux0, c.Aux1)
		} else {
			sb.WriteString(c.Op.String())
			sb.WriteByte(' ')
		}
		for i, a := range c.Args {
			if i > 0 {
				sb.WriteByte(' ')
			}
			a.write(sb)
		}
		sb.WriteByte(')')
	}
}

// Vars returns the distinct atoms in c in deterministic order.
func (c *CTerm) Vars() []*CTerm {
	var out []*CTerm
	seen := map[*CTerm]bool{}
	var walk func(*CTerm)
	walk = func(u *CTerm) {
		if seen[u] {
			return
		}
		seen[u] = true
		switch u.Kind {
		case Atom:
			out = append(out, u)
		case OpNode:
			for _, a := range u.Args {
				walk(a)
			}
		case Lin:
			for _, a := range u.Addends {
				walk(a.T)
			}
		}
	}
	walk(c)
	return out
}

// Size returns the number of distinct canonical nodes reachable from c.
func (c *CTerm) Size() int {
	seen := map[*CTerm]bool{}
	var walk func(*CTerm)
	walk = func(u *CTerm) {
		if seen[u] {
			return
		}
		seen[u] = true
		switch u.Kind {
		case OpNode:
			for _, a := range u.Args {
				walk(a)
			}
		case Lin:
			for _, a := range u.Addends {
				walk(a.T)
			}
		}
	}
	walk(c)
	return len(seen)
}
