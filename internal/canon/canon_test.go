package canon

import (
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/term"
)

func setup() (*term.Builder, *Ctx) {
	return term.NewBuilder(), NewCtx()
}

// TestFigure4 reproduces the paper's running example: the two
// syntactically different subtraction terms
//
//	(bvadd a (bvnot b) 1)   and   (bvadd a (bvmul #xffff b))
//
// must canonicalize to the same representation a + (-1)·b.
func TestFigure4(t *testing.T) {
	b, cx := setup()
	a := b.Reg("a", 16)
	bb := b.Reg("b", 16)
	t1 := b.Add(b.Add(a, b.Not(bb)), b.Const(16, 1))
	t2 := b.Add(a, b.Mul(b.ConstInt(16, -1), bb))
	c1 := cx.Canon(t1)
	c2 := cx.Canon(t2)
	if c1 != c2 {
		t.Fatalf("Figure 4 forms differ:\n  %s\n  %s", c1, c2)
	}
	if c1 != cx.Canon(b.Sub(a, bb)) {
		t.Errorf("bvsub canonical form differs: %s", c1)
	}
	if c1.Kind != Lin || len(c1.Addends) != 2 {
		t.Errorf("expected 2-addend linear combination, got %s", c1)
	}
}

func TestRuleI_AddMerging(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	// (x+y)+x == y+2x
	lhs := b.Add(b.Add(x, y), x)
	rhs := b.Add(y, b.Mul(b.Const(32, 2), x))
	if cx.Canon(lhs) != cx.Canon(rhs) {
		t.Errorf("x+y+x != y+2x: %s vs %s", cx.Canon(lhs), cx.Canon(rhs))
	}
	// Cancellation: (x+y)-y == x collapses to the atom itself.
	if got := cx.Canon(b.Sub(b.Add(x, y), y)); got != cx.Canon(x) {
		t.Errorf("x+y-y = %s, want atom x", got)
	}
}

func TestRuleII_Not(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 8)
	// ¬x == -1 - x == 255 + 255·x mod 256
	got := cx.Canon(b.Not(x))
	want := cx.Canon(b.Sub(b.ConstInt(8, -1), x))
	if got != want {
		t.Errorf("¬x = %s, want %s", got, want)
	}
}

func TestRuleIII_Concat(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 8)
	y := b.Reg("y", 8)
	// concat(x, y) == 256·x + y when y is atomic.
	got := cx.Canon(b.Concat(x, y))
	want := cx.Canon(b.Add(b.Mul(b.Const(16, 256), b.ZExt(16, x)), b.ZExt(16, y)))
	if got != want {
		t.Errorf("concat = %s, want %s", got, want)
	}
}

func TestRuleIV_V_MulDistribution(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	z := b.Reg("z", 32)
	// x*(y+z) == x*y + x*z — the identity that is hard for plain SAT.
	lhs := b.Mul(x, b.Add(y, z))
	rhs := b.Add(b.Mul(x, y), b.Mul(x, z))
	if cx.Canon(lhs) != cx.Canon(rhs) {
		t.Errorf("distributivity: %s vs %s", cx.Canon(lhs), cx.Canon(rhs))
	}
	// 3*(x+2) == 3x+6 (constants fold into K).
	l2 := b.Mul(b.Const(32, 3), b.Add(x, b.Const(32, 2)))
	r2 := b.Add(b.Mul(b.Const(32, 3), x), b.Const(32, 6))
	if cx.Canon(l2) != cx.Canon(r2) {
		t.Errorf("const distribution: %s vs %s", cx.Canon(l2), cx.Canon(r2))
	}
	// Commutativity of the opaque product.
	if cx.Canon(b.Mul(x, y)) != cx.Canon(b.Mul(y, x)) {
		t.Error("mul not commutative in canonical form")
	}
}

func TestRuleVI_ShlAsCoefficient(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 32)
	// x<<3 == 8x == x*8
	forms := []*term.Term{
		b.Shl(x, b.Const(32, 3)),
		b.Mul(x, b.Const(32, 8)),
		b.Add(b.Mul(x, b.Const(32, 4)), b.Mul(x, b.Const(32, 4))),
	}
	c0 := cx.Canon(forms[0])
	for i, f := range forms[1:] {
		if cx.Canon(f) != c0 {
			t.Errorf("form %d: %s != %s", i+1, cx.Canon(f), c0)
		}
	}
	// Out-of-range constant shift folds to zero.
	if got := cx.Canon(b.Shl(x, b.Const(32, 40))); !got.IsConst() || !got.K.IsZero() {
		t.Errorf("x<<40 = %s, want 0", got)
	}
}

func TestRuleVII_URemPow2(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 32)
	// x mod 8 == zext(extract[2:0](x))
	got := cx.Canon(b.URem(x, b.Const(32, 8)))
	want := cx.Canon(b.ZExt(32, b.Extract(2, 0, x)))
	if got != want {
		t.Errorf("urem pow2 = %s, want %s", got, want)
	}
}

func TestRuleVIII_IteZeroPlacement(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	cond := b.Ult(x, y)
	// ite(c, 0, x) must equal ite(¬c, x, 0).
	l := cx.Canon(b.Ite(cond, b.Const(32, 0), x))
	r := cx.Canon(b.Ite(b.Not(cond), x, b.Const(32, 0)))
	if l != r {
		t.Errorf("rule VIII: %s vs %s", l, r)
	}
	// Double negation of the condition normalizes away.
	l2 := cx.Canon(b.Ite(b.Not(b.Not(cond)), x, y))
	r2 := cx.Canon(b.Ite(cond, x, y))
	if l2 != r2 {
		t.Errorf("double-negated cond: %s vs %s", l2, r2)
	}
	// ite(¬c, y, x) == ite(c, x, y).
	l3 := cx.Canon(b.Ite(b.Not(cond), y, x))
	if l3 != r2 {
		t.Errorf("negated-cond swap: %s vs %s", l3, r2)
	}
}

func TestRuleIX_IteHoisting(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	z := b.Reg("z", 32)
	cond := b.Eq(x, b.Const(32, 0))
	// ite(c, z+x, z+y) == z + ite(c, x, y)
	lhs := b.Ite(cond, b.Add(z, x), b.Add(z, y))
	rhs := b.Add(z, b.Ite(cond, x, y))
	if cx.Canon(lhs) != cx.Canon(rhs) {
		t.Errorf("hoisting: %s vs %s", cx.Canon(lhs), cx.Canon(rhs))
	}
	// Common constants hoist as well: ite(c, x+5, 5) == 5 + ite(c, x, 0).
	l2 := b.Ite(cond, b.Add(x, b.Const(32, 5)), b.Const(32, 5))
	r2 := b.Add(b.Const(32, 5), b.Ite(cond, x, b.Const(32, 0)))
	if cx.Canon(l2) != cx.Canon(r2) {
		t.Errorf("const hoisting: %s vs %s", cx.Canon(l2), cx.Canon(r2))
	}
}

func TestSExtLinearized(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 32)
	// sext(x) == zext(x) + (2^64-2^32)·signbit(x)
	got := cx.Canon(b.SExt(64, x))
	sign := b.Extract(31, 31, x)
	fill := bv.Ones(64).ShlN(32)
	want := cx.Canon(b.Add(b.ZExt(64, x), b.Mul(b.ConstBV(fill), b.ZExt(64, sign))))
	if got != want {
		t.Errorf("sext = %s, want %s", got, want)
	}
}

func TestZExtImplicit(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	// zext(x) + zext(y) at 64 is a lincomb over the 32-bit atoms.
	got := cx.Canon(b.Add(b.ZExt(64, x), b.ZExt(64, y)))
	if got.Kind != Lin || len(got.Addends) != 2 {
		t.Fatalf("got %s", got)
	}
	for _, a := range got.Addends {
		if a.T.Width != 32 {
			t.Errorf("addend width %d, want 32 (implicit zext)", a.T.Width)
		}
	}
	// But zext of a 32-bit SUM must NOT splice (wraparound differs).
	sum64 := cx.Canon(b.ZExt(64, b.Add(x, y)))
	flat64 := cx.Canon(b.Add(b.ZExt(64, x), b.ZExt(64, y)))
	if sum64 == flat64 {
		t.Error("zext(x+y) wrongly spliced into 64-bit x+y")
	}
}

func TestExtractLowPushthrough(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 64)
	y := b.Reg("y", 64)
	// trunc32(x+y) == trunc32(x) + trunc32(y) — the W-form identity that
	// matters for RISC-V 32-bit arithmetic.
	lhs := b.Trunc(32, b.Add(x, y))
	rhs := b.Add(b.Trunc(32, x), b.Trunc(32, y))
	if cx.Canon(lhs) != cx.Canon(rhs) {
		t.Errorf("trunc pushthrough: %s vs %s", cx.Canon(lhs), cx.Canon(rhs))
	}
}

func TestInterningIDsStable(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	c1 := cx.Canon(b.Add(x, y))
	c2 := cx.Canon(b.Add(y, x))
	if c1.ID != c2.ID {
		t.Errorf("IDs differ: %d vs %d", c1.ID, c2.ID)
	}
	if cx.ByID(c1.ID) != c1 {
		t.Error("ByID roundtrip failed")
	}
	// Distinct terms get distinct IDs.
	c3 := cx.Canon(b.Sub(x, y))
	if c3.ID == c1.ID {
		t.Error("distinct terms share an ID")
	}
}

// randomTerm builds a random term over the given variables.
func randomTerm(b *term.Builder, rng *bv.RNG, vars []*term.Term, depth int) *term.Term {
	w := vars[0].W()
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(4) == 0 {
			return b.ConstBV(rng.BV(w))
		}
		return vars[rng.Intn(len(vars))]
	}
	sub := func() *term.Term { return randomTerm(b, rng, vars, depth-1) }
	switch rng.Intn(14) {
	case 0:
		return b.Add(sub(), sub())
	case 1:
		return b.Sub(sub(), sub())
	case 2:
		return b.Mul(sub(), sub())
	case 3:
		return b.Not(sub())
	case 4:
		return b.Neg(sub())
	case 5:
		return b.And(sub(), sub())
	case 6:
		return b.Or(sub(), sub())
	case 7:
		return b.Xor(sub(), sub())
	case 8:
		return b.Shl(sub(), b.Const(w, uint64(rng.Intn(w))))
	case 9:
		return b.Ite(b.Ult(sub(), sub()), sub(), sub())
	case 10:
		return b.URem(sub(), b.Const(w, 1<<uint(1+rng.Intn(4))))
	case 11:
		hi := rng.Intn(w)
		lo := rng.Intn(hi + 1)
		inner := b.Extract(hi, lo, sub())
		return b.ZExt(w, inner)
	case 12:
		k := 1 + rng.Intn(w-1)
		return b.SExt(w, b.Trunc(k, sub()))
	default:
		lhs := b.Trunc(w/2, sub())
		rhs := b.Trunc(w-w/2, sub())
		return b.Concat(lhs, rhs)
	}
}

// TestPropertyCanonPreservesEval is invariant #1 of DESIGN.md: for random
// terms and random environments, the canonical form evaluates identically
// to the original term.
func TestPropertyCanonPreservesEval(t *testing.T) {
	rng := bv.NewRNG(555)
	for trial := 0; trial < 400; trial++ {
		b := term.NewBuilder()
		cx := NewCtx()
		w := []int{8, 16, 32, 64}[rng.Intn(4)]
		vars := []*term.Term{b.Reg("x", w), b.Reg("y", w), b.Imm("i", w)}
		tt := randomTerm(b, rng, vars, 4)
		ct := cx.Canon(tt)
		for k := 0; k < 5; k++ {
			env := term.NewEnv()
			for _, v := range vars {
				env.Bind(v.Name, rng.BV(w))
			}
			want := tt.Eval(env)
			got := ct.Eval(env)
			if got != want {
				t.Fatalf("trial %d: canon eval mismatch\nterm:  %s\ncanon: %s\nenv: %v\ngot %v want %v",
					trial, tt, ct, env.Vals, got, want)
			}
		}
	}
}

// TestPropertyCanonEqualImpliesEval checks invariant #2 on pairs: when two
// random terms canonicalize identically, they must agree on random inputs.
func TestPropertyCanonEqualImpliesEval(t *testing.T) {
	rng := bv.NewRNG(777)
	matches := 0
	for trial := 0; trial < 1500; trial++ {
		b := term.NewBuilder()
		cx := NewCtx()
		const w = 16
		vars := []*term.Term{b.Reg("x", w), b.Reg("y", w)}
		t1 := randomTerm(b, rng, vars, 3)
		t2 := randomTerm(b, rng, vars, 3)
		if t1 == t2 || cx.Canon(t1) != cx.Canon(t2) {
			continue
		}
		matches++
		for k := 0; k < 20; k++ {
			env := term.NewEnv()
			for _, v := range vars {
				env.Bind(v.Name, rng.BV(w))
			}
			if t1.Eval(env) != t2.Eval(env) {
				t.Fatalf("canonical-equal terms disagree:\n  %s\n  %s\nenv %v",
					t1, t2, env.Vals)
			}
		}
	}
	if matches == 0 {
		t.Log("note: no non-trivial canonical matches in this run")
	}
}

func TestEvalOfOpaqueOps(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	env := term.NewEnv()
	env.Bind("x", bv.New(32, 0xdeadbeef))
	env.Bind("y", bv.New(32, 13))
	for _, tt := range []*term.Term{
		b.UDiv(x, y), b.SDiv(x, y), b.SRem(x, y), b.AShr(x, y),
		b.LShr(x, y), b.Popcount(x), b.Clz(x), b.Ctz(x), b.Rev(x),
		b.Slt(x, y), b.Load(32, b.ZExt(64, x)),
		b.Store(b.ZExt(64, x), y),
	} {
		if got, want := cx.Canon(tt).Eval(env), tt.Eval(env); got != want {
			t.Errorf("%s: canon eval %v, term eval %v", tt, got, want)
		}
	}
}

func TestAtomDomainInfoPreserved(t *testing.T) {
	b, cx := setup()
	imm := b.Imm("imm", 12)
	reg := b.Reg("r", 12)
	ci := cx.Canon(imm)
	cr := cx.Canon(reg)
	if ci.AtomKind() != term.KindImm || cr.AtomKind() != term.KindReg {
		t.Error("atom kinds lost in canonicalization")
	}
	if ci == cr {
		t.Error("different-kind atoms merged")
	}
}

func TestMemoization(t *testing.T) {
	b, cx := setup()
	x := b.Reg("x", 32)
	tt := b.Add(x, b.Const(32, 1))
	c1 := cx.Canon(tt)
	before := cx.NumTerms()
	c2 := cx.Canon(tt)
	if c1 != c2 || cx.NumTerms() != before {
		t.Error("memoization failed")
	}
}
