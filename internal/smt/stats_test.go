package smt

import (
	"testing"

	"iselgen/internal/obs"
	"iselgen/internal/term"
)

// TestStatsSATCounters: a query that reaches the CDCL core must leave
// nonzero SAT work counters behind — the totals core.Stats and
// /v1/metrics surface.
func TestStatsSATCounters(t *testing.T) {
	b := term.NewBuilder()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	c := &Checker{}

	// De Morgan needs real solving (propagation at minimum).
	if got := c.Equiv(b, b.Not(b.And(x, y)), b.Or(b.Not(x), b.Not(y))); got != Equal {
		t.Fatalf("demorgan = %v, want Equal", got)
	}
	if c.Stats.Queries != 1 || c.Stats.Proved != 1 {
		t.Errorf("queries/proved = %d/%d, want 1/1", c.Stats.Queries, c.Stats.Proved)
	}
	if c.Stats.Propagations == 0 {
		t.Errorf("propagations = 0 after a solver query — counter not wired")
	}
	if c.Stats.SolveTime <= 0 {
		t.Errorf("solve time not accumulated")
	}

	// A refutable query accumulates on top (counters are lifetime sums).
	prevProp := c.Stats.Propagations
	if got := c.Equiv(b, b.Add(x, y), b.Sub(x, y)); got != NotEqual {
		t.Fatalf("add-vs-sub = %v, want NotEqual", got)
	}
	if c.Stats.Propagations <= prevProp {
		t.Errorf("propagations did not accumulate across queries")
	}
}

// TestEquivProvenance: with an Obs attached, every solver-bound query
// leaves one SMTQuery record (labeled with the checker's context) and
// one histogram observation keyed by result.
func TestEquivProvenance(t *testing.T) {
	b := term.NewBuilder()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	o := obs.New()
	c := &Checker{Obs: o, Context: "test-ctx"}

	c.Equiv(b, b.Not(b.And(x, y)), b.Or(b.Not(x), b.Not(y))) // equal
	c.Equiv(b, b.Add(x, y), b.Sub(x, y))                     // not-equal

	qs := o.Prov.SMTQueries()
	if len(qs) != 2 {
		t.Fatalf("got %d provenance records, want 2", len(qs))
	}
	if qs[0].Result != "equal" || qs[1].Result != "not-equal" {
		t.Errorf("results = %q, %q", qs[0].Result, qs[1].Result)
	}
	for i, q := range qs {
		if q.Context != "test-ctx" {
			t.Errorf("record %d context = %q, want test-ctx", i, q.Context)
		}
		if q.DurNS <= 0 {
			t.Errorf("record %d has no duration", i)
		}
		if q.Propagations == 0 {
			t.Errorf("record %d has no SAT work counters", i)
		}
	}
	for _, res := range []string{"equal", "not-equal"} {
		h := o.Metrics.Histogram("smt_query_duration_ns", "", "result", res)
		if h.Count() != 1 {
			t.Errorf("histogram[result=%s] count = %d, want 1", res, h.Count())
		}
	}
}

// TestEquivFastPathsSkipProvenance: verdicts that never reach the
// solver (pointer equality, width mismatch) record no provenance —
// the log is per-*solver-query*, not per-call.
func TestEquivFastPathsSkipProvenance(t *testing.T) {
	b := term.NewBuilder()
	x := b.Reg("x", 32)
	o := obs.New()
	c := &Checker{Obs: o, Context: "fast"}

	if got := c.Equiv(b, x, x); got != Equal {
		t.Fatalf("x == x: %v", got)
	}
	if got := c.Equiv(b, x, b.ZExt(64, x)); got != NotEqual {
		t.Fatalf("width mismatch: %v", got)
	}
	if n := len(o.Prov.SMTQueries()); n != 0 {
		t.Errorf("fast paths recorded %d provenance events, want 0", n)
	}
}
