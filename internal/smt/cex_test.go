package smt

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/term"
)

// genTerm builds a random 32-bit term over the shared variable
// vocabulary — the shape of synthesis candidates (same leaves, different
// operator structure), which is what makes counterexamples transfer.
func genTerm(b *term.Builder, rng *rand.Rand, vars []*term.Term, depth int) *term.Term {
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(4) == 0 {
			return b.Const(32, uint64(rng.Intn(64)))
		}
		return vars[rng.Intn(len(vars))]
	}
	x := genTerm(b, rng, vars, depth-1)
	y := genTerm(b, rng, vars, depth-1)
	switch rng.Intn(8) {
	case 0:
		return b.Add(x, y)
	case 1:
		return b.Sub(x, y)
	case 2:
		return b.And(x, y)
	case 3:
		return b.Or(x, y)
	case 4:
		return b.Xor(x, y)
	case 5:
		return b.Not(x)
	case 6:
		return b.Neg(x)
	default:
		return b.Shl(x, b.Const(32, uint64(rng.Intn(8))))
	}
}

func fuzzPairs(t *testing.T) (*term.Builder, [][2]*term.Term) {
	t.Helper()
	b := term.NewBuilder()
	vars := []*term.Term{b.Reg("x", 32), b.Reg("y", 32), b.Reg("z", 32)}
	rng := rand.New(rand.NewSource(20260808))
	n := 1000
	if testing.Short() {
		n = 200
	}
	pairs := make([][2]*term.Term, n)
	for i := range pairs {
		pairs[i] = [2]*term.Term{
			genTerm(b, rng, vars, 3),
			genTerm(b, rng, vars, 3),
		}
	}
	return b, pairs
}

// TestCexWitnessSeparatesProducingPair checks the cache's core
// invariant: every assignment stored on a NotEqual verdict concretely
// separates the pair that produced it, so replaying it through Refutes
// rejects that same pair without a solver.
func TestCexWitnessSeparatesProducingPair(t *testing.T) {
	b, pairs := fuzzPairs(t)
	notEqual := 0
	for i, p := range pairs {
		if len(p[0].Vars()) == 0 && len(p[1].Vars()) == 0 {
			// Two constants: a refutation carries the empty assignment,
			// which there is nothing to cache.
			continue
		}
		cache := NewCexCache(8) // fresh per pair: no screening on the first query
		c := &Checker{Cex: cache}
		res := c.Equiv(b, p[0], p[1])
		if res != NotEqual {
			continue
		}
		notEqual++
		if cache.Len() == 0 {
			t.Fatalf("pair %d: NotEqual verdict stored no counterexample", i)
		}
		if !cache.Refutes([][2]*term.Term{p}) {
			t.Fatalf("pair %d: stored assignment does not separate its producing pair\nlhs=%s\nrhs=%s",
				i, p[0], p[1])
		}
	}
	if notEqual == 0 {
		t.Fatal("fuzz generated no refutable pairs — the property was never exercised")
	}
}

// TestCexScreenPreservesVerdicts checks verdict preservation: a checker
// screening through a shared, increasingly hot cache must return exactly
// the verdict a cache-free checker computes via the solver, for every
// pair. This is the determinism argument for the synthesis pipeline —
// the screen can only short-circuit NotEqual, never displace Equal.
func TestCexScreenPreservesVerdicts(t *testing.T) {
	b, pairs := fuzzPairs(t)
	shared := NewCexCache(DefaultCexCap)
	screened := &Checker{Cex: shared}
	fresh := &Checker{}
	for i, p := range pairs {
		got := screened.Equiv(b, p[0], p[1])
		want := fresh.Equiv(b, p[0], p[1])
		if got != want {
			t.Fatalf("pair %d: screened verdict %v, solver verdict %v\nlhs=%s\nrhs=%s",
				i, got, want, p[0], p[1])
		}
	}
	if screened.Stats.CexScreens == 0 {
		t.Fatal("no queries were screened")
	}
	if screened.Stats.CexHits == 0 {
		t.Fatal("no screen hits across the fuzz corpus — the cache never engaged")
	}
	if screened.Stats.CexHits != screened.Stats.SMTSkipped {
		t.Fatalf("hits (%d) and skipped solver rounds (%d) disagree",
			screened.Stats.CexHits, screened.Stats.SMTSkipped)
	}
}

// TestCexCacheConcurrent hammers one cache from every CPU with the full
// API surface — Add, Refutes, Snapshot, Counters, and a periodic Reset —
// primarily as a race-detector target for the copy-on-write snapshot
// and the ring bookkeeping.
func TestCexCacheConcurrent(t *testing.T) {
	b := term.NewBuilder()
	x, y := b.Reg("x", 32), b.Reg("y", 32)
	goals := [][2]*term.Term{
		{b.Add(x, y), b.Sub(x, y)},
		{b.And(x, y), b.Or(x, y)},
		{b.Add(x, y), b.Add(y, x)},
	}
	cache := NewCexCache(16)
	workers := runtime.NumCPU() + 2
	const iters = 300
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					cache.Add(map[string]bv.BV{
						"x": bv.New(32, uint64(rng.Uint32())),
						"y": bv.New(32, uint64(rng.Uint32())),
					})
				case 1:
					cache.Refutes(goals)
				case 2:
					_ = cache.Snapshot()
					_ = cache.Len()
				default:
					cache.Counters()
					if g == 0 && i%100 == 0 {
						cache.Reset()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := cache.Len(); n > 16 {
		t.Fatalf("cache grew past its capacity: %d", n)
	}
}
