package smt

import (
	"fmt"
	"testing"

	"iselgen/internal/bv"
)

// TestResolveCexCap pins the capacity precedence: a positive flag beats
// ISEL_CEX_CACHE, which beats DefaultCexCap; malformed or non-positive
// values fall through.
func TestResolveCexCap(t *testing.T) {
	t.Setenv("ISEL_CEX_CACHE", "")
	if got := ResolveCexCap(0); got != DefaultCexCap {
		t.Errorf("ResolveCexCap(0) = %d, want default %d", got, DefaultCexCap)
	}
	t.Setenv("ISEL_CEX_CACHE", "512")
	if got := ResolveCexCap(0); got != 512 {
		t.Errorf("with ISEL_CEX_CACHE=512, ResolveCexCap(0) = %d", got)
	}
	if got := ResolveCexCap(64); got != 64 {
		t.Errorf("flag must beat env: ResolveCexCap(64) = %d", got)
	}
	t.Setenv("ISEL_CEX_CACHE", "not-a-number")
	if got := ResolveCexCap(0); got != DefaultCexCap {
		t.Errorf("malformed env must fall back to default, got %d", got)
	}
	t.Setenv("ISEL_CEX_CACHE", "-3")
	if got := ResolveCexCap(0); got != DefaultCexCap {
		t.Errorf("non-positive env must fall back to default, got %d", got)
	}
}

// TestCexCacheSetCapacity pins resize semantics: shrinking trims the
// oldest assignments (their fingerprints freed for re-adding), growing
// admits more, and values < 1 restore the default.
func TestCexCacheSetCapacity(t *testing.T) {
	c := NewCexCache(8)
	val := func(i int) map[string]bv.BV {
		return map[string]bv.BV{fmt.Sprintf("v%d", i): bv.New(32, uint64(i))}
	}
	for i := 0; i < 8; i++ {
		c.Add(val(i))
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d, want 8", c.Len())
	}

	c.SetCapacity(3)
	if c.Len() != 3 {
		t.Fatalf("after shrink len = %d, want 3", c.Len())
	}
	snap := c.Snapshot()
	for i, a := range snap {
		// Oldest-first trim: the survivors are the newest three (5, 6, 7).
		want := fmt.Sprintf("v%d", 5+i)
		if _, ok := a.Vals[want]; !ok {
			t.Fatalf("survivor %d = %v, want %s", i, a.Vals, want)
		}
	}

	// A trimmed assignment's fingerprint is released: re-adding it must
	// succeed (and evict the now-oldest survivor).
	c.Add(val(0))
	found := false
	for _, a := range c.Snapshot() {
		if _, ok := a.Vals["v0"]; ok {
			found = true
		}
	}
	if !found {
		t.Fatal("re-adding a trimmed assignment was treated as a duplicate")
	}

	c.SetCapacity(0)
	for i := 10; i < 10+DefaultCexCap; i++ {
		c.Add(val(i))
	}
	if c.Len() != DefaultCexCap {
		t.Fatalf("after restore-default len = %d, want %d", c.Len(), DefaultCexCap)
	}
}
