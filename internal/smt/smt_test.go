package smt

import (
	"testing"

	"iselgen/internal/term"
)

func TestEquivBasicIdentities(t *testing.T) {
	b := term.NewBuilder()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	c := &Checker{}

	cases := []struct {
		name     string
		lhs, rhs *term.Term
		want     Result
	}{
		{"sub-as-addnot", b.Sub(x, y), b.Add(b.Add(x, b.Not(y)), b.Const(32, 1)), Equal},
		{"sub-as-mulneg", b.Sub(x, y), b.Add(x, b.Mul(y, b.ConstInt(32, -1))), Equal},
		{"shl-as-mul", b.Shl(x, b.Const(32, 4)), b.Mul(x, b.Const(32, 16)), Equal},
		{"demorgan", b.Not(b.And(x, y)), b.Or(b.Not(x), b.Not(y)), Equal},
		{"xor-as-andor", b.Xor(x, y), b.And(b.Or(x, y), b.Not(b.And(x, y))), Equal},
		{"add-vs-sub", b.Add(x, y), b.Sub(x, y), NotEqual},
		{"add-vs-or", b.Add(x, y), b.Or(x, y), NotEqual},
		{"neg-not-same", b.Neg(x), b.Not(x), NotEqual},
		{"urem-pow2", b.URem(x, b.Const(32, 8)), b.And(x, b.Const(32, 7)), Equal},
		{"cmp-flip", b.Ult(x, y), b.Not(b.Not(b.Ult(x, y))), Equal},
		{"slt-via-sign", b.Slt(x, b.Const(32, 0)), b.Extract(31, 31, x), Equal},
	}
	for _, tc := range cases {
		if got := c.Equiv(b, tc.lhs, tc.rhs); got != tc.want {
			t.Errorf("%s: %v, want %v", tc.name, got, tc.want)
		}
	}
	if c.Stats.Queries != int64(len(cases)) {
		t.Errorf("queries = %d, want %d", c.Stats.Queries, len(cases))
	}
}

func TestEquivWidthMismatch(t *testing.T) {
	b := term.NewBuilder()
	x := b.Reg("x", 32)
	c := &Checker{}
	if got := c.Equiv(b, x, b.ZExt(64, x)); got != NotEqual {
		t.Errorf("width mismatch = %v", got)
	}
}

func TestEquivPointerEqualFastPath(t *testing.T) {
	b := term.NewBuilder()
	x := b.Reg("x", 32)
	y := b.Reg("y", 32)
	s := b.Add(x, y)
	c := &Checker{}
	if got := c.Equiv(b, s, b.Add(y, x)); got != Equal {
		t.Errorf("commuted add = %v", got)
	}
	if c.Stats.Conflicts != 0 {
		t.Error("fast path went to the solver")
	}
}

func TestEquivLoadsPaired(t *testing.T) {
	b := term.NewBuilder()
	base := b.Reg("base", 64)
	off := b.Imm("off", 64)
	c := &Checker{}

	// load(base + off) == load(off + base): addresses provably equal.
	l1 := b.Load(32, b.Add(base, off))
	l2 := b.Load(32, b.Add(off, base))
	if got := c.Equiv(b, l1, l2); got != Equal {
		t.Errorf("commuted address loads = %v", got)
	}

	// load(base) vs load(base+8): addresses differ.
	l3 := b.Load(32, base)
	l4 := b.Load(32, b.Add(base, b.Const(64, 8)))
	if got := c.Equiv(b, l3, l4); got != NotEqual {
		t.Errorf("different address loads = %v", got)
	}

	// Load count mismatch: cannot be proven.
	if got := c.Equiv(b, b.Add(l3, l3), base); got == Equal {
		t.Errorf("load vs no-load proved equal")
	}
}

func TestEquivLoadValueFlows(t *testing.T) {
	// zext(load16(a)) + 1 on both sides, one written via arithmetic detour.
	b := term.NewBuilder()
	a := b.Reg("a", 64)
	l := b.Load(16, a)
	lhs := b.Add(b.ZExt(32, l), b.Const(32, 1))
	rhs := b.Sub(b.ZExt(32, b.Load(16, a)), b.ConstInt(32, -1))
	c := &Checker{}
	if got := c.Equiv(b, lhs, rhs); got != Equal {
		t.Errorf("load-value arithmetic = %v", got)
	}
	// Different uses of the load value must not be equal.
	rhs2 := b.Add(b.ZExt(32, l), b.Const(32, 2))
	if got := c.Equiv(b, lhs, rhs2); got != NotEqual {
		t.Errorf("off-by-one load arithmetic = %v", got)
	}
}

func TestEquivStores(t *testing.T) {
	b := term.NewBuilder()
	addr := b.Reg("p", 64)
	v := b.Reg("v", 32)
	c := &Checker{}
	s1 := b.Store(addr, b.Add(v, v))
	s2 := b.Store(b.Add(addr, b.Const(64, 0)), b.Shl(v, b.Const(32, 1)))
	if got := c.Equiv(b, s1, s2); got != Equal {
		t.Errorf("equivalent stores = %v", got)
	}
	s3 := b.Store(b.Add(addr, b.Const(64, 4)), b.Add(v, v))
	if got := c.Equiv(b, s1, s3); got != NotEqual {
		t.Errorf("different-address stores = %v", got)
	}
	s4 := b.Store(addr, v)
	if got := c.Equiv(b, s1, s4); got != NotEqual {
		t.Errorf("different-value stores = %v", got)
	}
	// Store vs non-store.
	if got := c.Equiv(b, s1, b.Add(v, v)); got != NotEqual {
		t.Errorf("store vs value = %v", got)
	}
	// Store width mismatch.
	v16 := b.Reg("w", 16)
	if got := c.Equiv(b, b.Store(addr, v16), s4); got != NotEqual {
		t.Errorf("store width mismatch = %v", got)
	}
}

func TestCounterexample(t *testing.T) {
	b := term.NewBuilder()
	x := b.Reg("x", 16)
	y := b.Reg("y", 16)
	lhs := b.Add(x, y)
	rhs := b.Or(x, y)
	c := &Checker{}
	env, ok := c.Counterexample(b, lhs, rhs)
	if !ok {
		t.Fatal("no counterexample for add vs or")
	}
	if lhs.Eval(env) == rhs.Eval(env) {
		t.Errorf("bogus counterexample: %v", env.Vals)
	}
	// No counterexample for a true identity.
	if _, ok := c.Counterexample(b, b.Add(x, y), b.Add(y, x)); ok {
		t.Error("counterexample for commutativity")
	}
}

func TestBudgetUnknown(t *testing.T) {
	// Multiplier equivalence (distributivity) is the textbook-hard case
	// for CDCL bit-blasting: with a tiny budget the checker must return
	// Unknown, never a wrong verdict; at a width the solver can settle,
	// it must prove the identity. (At production widths the synthesis
	// pipeline proves this structurally via canonicalization, mirroring
	// Z3's word-level rewriting — see package canon.)
	b := term.NewBuilder()
	x := b.Reg("x", 6)
	y := b.Reg("y", 6)
	z := b.Reg("z", 6)
	l2 := b.Mul(x, b.Add(y, z))
	r2 := b.Add(b.Mul(x, y), b.Mul(x, z))
	c := &Checker{MaxConflicts: 1}
	if got := c.Equiv(b, l2, r2); got == NotEqual {
		t.Errorf("budget run returned NotEqual for a true identity")
	}
	c2 := &Checker{}
	if got := c2.Equiv(b, l2, r2); got != Equal {
		t.Errorf("distributivity = %v, want equal", got)
	}
	if c2.Stats.TimedOut != 0 {
		t.Errorf("6-bit distributivity timed out")
	}
}
