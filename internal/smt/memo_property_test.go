package smt

import (
	"sync"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/term"
)

// mapMemo is the simplest possible Memo: a locked map. The property
// tests use it instead of internal/solver to keep the dependency
// direction clean (solver imports smt, not the other way around).
type mapMemo struct {
	mu sync.Mutex
	m  map[string]MemoEntry
}

func newMapMemo() *mapMemo { return &mapMemo{m: map[string]MemoEntry{}} }

func (m *mapMemo) Lookup(key string) (MemoEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.m[key]
	return e, ok
}

func (m *mapMemo) Store(key string, e MemoEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.m[key] = e
}

// pairGen builds small random 8-bit term pairs. Width 8 keeps each
// bit-blast microseconds so the property test can afford ~1k fresh
// solves; the memo key and trust policy are width-independent.
type pairGen struct {
	b    *term.Builder
	rng  *bv.RNG
	vars []*term.Term
}

func (g *pairGen) gen(depth int) *term.Term {
	if depth == 0 || g.rng.Intn(4) == 0 {
		if g.rng.Intn(3) == 0 {
			return g.b.ConstInt(8, int64(g.rng.Intn(256)))
		}
		return g.vars[g.rng.Intn(len(g.vars))]
	}
	x := g.gen(depth - 1)
	switch g.rng.Intn(7) {
	case 0:
		return g.b.Add(x, g.gen(depth-1))
	case 1:
		return g.b.Sub(x, g.gen(depth-1))
	case 2:
		return g.b.And(x, g.gen(depth-1))
	case 3:
		return g.b.Or(x, g.gen(depth-1))
	case 4:
		return g.b.Xor(x, g.gen(depth-1))
	case 5:
		return g.b.Not(x)
	default:
		return g.b.Neg(x)
	}
}

// TestMemoVerdictsMatchFreshSolves is the memoization soundness
// property: for ~1k random term pairs, the verdict a memoized checker
// returns equals the verdict a fresh bit-blast returns — on first
// contact (store path), on repeat queries (trust path), and after the
// spec fingerprint changes (downgrade path). Equal may never survive a
// fingerprint change untested.
func TestMemoVerdictsMatchFreshSolves(t *testing.T) {
	const pairs = 1000
	b := term.NewBuilder()
	rng := bv.NewRNG(0x5eed)
	g := &pairGen{b: b, rng: rng, vars: []*term.Term{
		b.Reg("x", 8), b.Reg("y", 8), b.Reg("z", 8),
	}}

	memo := newMapMemo()
	memoed := &Checker{Memo: memo, SpecFP: "spec-v1"}
	fresh := &Checker{}

	type pair struct{ l, r *term.Term }
	var ps []pair
	for i := 0; i < pairs; i++ {
		l := g.gen(3)
		var r *term.Term
		if rng.Intn(2) == 0 {
			// Equivalence-preserving rewrite: x ^ x ^ l == l, so Equal
			// verdicts are well represented, not just random NotEquals.
			v := g.vars[rng.Intn(len(g.vars))]
			r = b.Xor(b.Xor(v, v), l)
		} else {
			r = g.gen(3)
		}
		ps = append(ps, pair{l, r})
		if got, want := memoed.Equiv(b, l, r), fresh.Equiv(b, l, r); got != want {
			t.Fatalf("pair %d: memoized=%v fresh=%v\nlhs: %s\nrhs: %s", i, got, want, l, r)
		}
	}

	// Second pass, same checker: every settled verdict must now come
	// from the memo, and still match a fresh solve.
	before := memoed.Stats
	for i, p := range ps {
		if got, want := memoed.Equiv(b, p.l, p.r), fresh.Equiv(b, p.l, p.r); got != want {
			t.Fatalf("repeat pair %d: memoized=%v fresh=%v", i, got, want)
		}
	}
	if hits := memoed.Stats.MemoHits - before.MemoHits; hits == 0 {
		t.Fatal("repeat pass produced no memo hits")
	}
	if blasts := memoed.Stats.BitBlasts - before.BitBlasts; blasts != 0 {
		t.Fatalf("repeat pass bit-blasted %d times; all verdicts were already settled", blasts)
	}

	// Simulated spec change: same memo, different fingerprint. Equal
	// entries must not be trusted (the downgrade path re-solves), and
	// verdicts must still match fresh solves throughout.
	changed := &Checker{Memo: memo, SpecFP: "spec-v2"}
	reBlasted := false
	for i, p := range ps {
		b0, f0 := changed.Stats.BitBlasts, fresh.Stats.BitBlasts
		got, want := changed.Equiv(b, p.l, p.r), fresh.Equiv(b, p.l, p.r)
		if got != want {
			t.Fatalf("post-fingerprint-change pair %d: memoized=%v fresh=%v", i, got, want)
		}
		// A builder-simplified pair is Equal with zero solver work even
		// fresh; only pairs the fresh checker had to blast must be
		// re-blasted instead of trusted from the stale memo.
		if want == Equal && fresh.Stats.BitBlasts > f0 && changed.Stats.BitBlasts == b0 {
			t.Fatalf("pair %d: stale Equal verdict trusted across a fingerprint change", i)
		}
	}
	if changed.Stats.BitBlasts > 0 {
		reBlasted = true
	}
	if !reBlasted {
		t.Fatal("fingerprint change triggered no re-solves at all")
	}
}

// TestMemoStaleNotEqualNeedsWitness pins the degraded trust path: a
// NotEqual entry under a stale fingerprint is reusable only because its
// stored counterexample still concretely separates the pair — an entry
// with no witness is ignored.
func TestMemoStaleNotEqualNeedsWitness(t *testing.T) {
	b := term.NewBuilder()
	x := b.Reg("x", 8)
	l, r := x, b.Add(x, b.ConstInt(8, 1)) // x != x+1

	memo := newMapMemo()
	c1 := &Checker{Memo: memo, SpecFP: "spec-v1"}
	if got := c1.Equiv(b, l, r); got != NotEqual {
		t.Fatalf("verdict = %v, want NotEqual", got)
	}
	if len(memo.m) != 1 {
		t.Fatalf("memo holds %d entries, want 1", len(memo.m))
	}
	var key string
	var e MemoEntry
	for k, v := range memo.m {
		key, e = k, v
	}
	if len(e.Cex) == 0 {
		t.Fatal("NotEqual stored without a counterexample witness")
	}

	// With the witness and a stale fingerprint the refutation replays
	// concretely — no new bit-blast.
	c2 := &Checker{Memo: memo, SpecFP: "spec-v2"}
	if got := c2.Equiv(b, l, r); got != NotEqual {
		t.Fatalf("stale-witness verdict = %v, want NotEqual", got)
	}
	if c2.Stats.BitBlasts != 0 {
		t.Fatalf("witness replay bit-blasted %d times, want 0", c2.Stats.BitBlasts)
	}

	// Strip the witness: the stale entry must now be worthless and the
	// checker must solve from scratch.
	e.Cex = nil
	memo.m[key] = e
	c3 := &Checker{Memo: memo, SpecFP: "spec-v3"}
	if got := c3.Equiv(b, l, r); got != NotEqual {
		t.Fatalf("witnessless verdict = %v, want NotEqual", got)
	}
	if c3.Stats.BitBlasts == 0 {
		t.Fatal("witnessless stale entry was trusted without re-solving")
	}
}

// TestMemoUnknownBudgetPolicy pins Unknown reuse: a timeout under
// budget B answers any query with budget <= B, but a larger budget must
// re-search; structural Unknowns (UnsupportedBudget) hold at any budget.
func TestMemoUnknownBudgetPolicy(t *testing.T) {
	c := &Checker{SpecFP: "fp"}
	goals := [][2]*term.Term{}

	small := MemoEntry{Verdict: Unknown, SpecFP: "fp", Budget: 100}
	if _, ok := c.memoTrusted(small, 1000, goals); ok {
		t.Fatal("Unknown under a smaller budget trusted for a larger search")
	}
	if v, ok := c.memoTrusted(small, 100, goals); !ok || v != Unknown {
		t.Fatalf("Unknown at equal budget: %v, %v", v, ok)
	}
	structural := MemoEntry{Verdict: Unknown, SpecFP: "fp", Budget: UnsupportedBudget}
	if v, ok := c.memoTrusted(structural, 1<<40, goals); !ok || v != Unknown {
		t.Fatalf("structural Unknown not trusted: %v, %v", v, ok)
	}
}
