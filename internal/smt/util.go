package smt

import "iselgen/internal/bv"

func bvNew(width int, hi, lo uint64) bv.BV { return bv.New128(width, hi, lo) }
