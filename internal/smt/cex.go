// Counterexample cache: the CEGIS-style screening layer in front of the
// solver (Reynolds et al., counterexample-guided quantifier instantiation).
// Every refuted equivalence query yields a satisfying assignment of the
// inequality — a concrete witness separating the two terms. Those
// witnesses transfer: candidate pairs produced by later patterns reuse
// the same small vocabulary of variable names (pattern leaves, embedded
// immediates, paired loads), so an assignment that separated one wrong
// candidate very often separates the next. Replaying cached assignments
// through the compiled concrete evaluator costs microseconds; a hit
// refutes the pair without building a single clause.
//
// Screening is sound and verdict-preserving: a cached assignment refutes
// a pair only if the two sides concretely evaluate to different values,
// which is exactly a satisfying assignment of the inequality the solver
// would otherwise search for. A screen hit can therefore never displace
// an Equal verdict — it only short-circuits NotEqual (or spends a
// solver-timeout Unknown, which the synthesis pipeline treats the same
// way: candidate rejected). The synthesized rule library is byte-for-byte
// identical with the cache hot, cold, shared, or disabled.
package smt

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"iselgen/internal/bv"
	"iselgen/internal/term"
)

// Assignment is one cached counterexample: concrete values for the
// variable names that appeared in the refuted query.
type Assignment struct {
	Vals map[string]bv.BV
}

// value resolves a variable for screening. Cached widths are adapted
// (truncate/zero-extend) rather than rejected: any concrete value is a
// legal assignment, and width-flexible reuse is what lets a 32-bit
// counterexample kill a 64-bit candidate. Unknown names get a
// deterministic name-hashed fill so screening stays reproducible.
func (a Assignment) value(name string, w int) bv.BV {
	if v, ok := a.Vals[name]; ok {
		switch {
		case v.W() > w:
			return v.Trunc(w)
		case v.W() < w:
			return v.ZExt(w)
		}
		return v
	}
	return fillValue(name, w)
}

// fillValue is the deterministic default for variables a cached
// assignment does not mention: a hash of the name, so distinct variables
// get distinct (but reproducible) values instead of an all-zero vector
// that aliases too many terms.
func fillValue(name string, w int) bv.BV {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	rng := bv.NewRNG(h ^ 0xc2b2ae3d27d4eb4f)
	return rng.BV(w)
}

// CexCache is a process-wide, concurrency-safe counterexample store.
// Screening reads a copy-on-write snapshot (no lock on the hot path);
// Add dedupes by content and evicts FIFO beyond the capacity. The zero
// value is not usable; use NewCexCache, or the process-wide Cex.
type CexCache struct {
	cap  int
	snap atomic.Pointer[[]Assignment]

	mu   sync.Mutex
	ring []Assignment
	next int
	seen map[uint64]struct{}

	screens atomic.Int64
	hits    atomic.Int64
	stored  atomic.Int64
}

// DefaultCexCap bounds the process-wide cache. Screening cost is linear
// in the cache size, so the cap trades screen power against screen cost;
// at 256 assignments a screen is still microseconds.
const DefaultCexCap = 256

// Cex is the process-wide cache every synthesis worker shares: a
// counterexample discovered while matching one pattern screens
// candidates for every other pattern, across goroutines and across
// synthesis runs in the same process.
var Cex = NewCexCache(ResolveCexCap(0))

// ResolveCexCap applies the capacity precedence flag > ISEL_CEX_CACHE
// env > DefaultCexCap, mirroring core.ResolveWorkers: a positive flag
// value wins, then a positive environment value, then the default. The
// capacity trades screen power against per-screen cost and — like the
// worker count — can never change which rules synthesis produces
// (screening is verdict-preserving at any capacity), so it is excluded
// from core.Config.CacheKey.
func ResolveCexCap(flagVal int) int {
	if flagVal > 0 {
		return flagVal
	}
	if v := os.Getenv("ISEL_CEX_CACHE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return DefaultCexCap
}

// NewCexCache returns an empty cache bounded to capacity assignments.
func NewCexCache(capacity int) *CexCache {
	if capacity < 1 {
		capacity = DefaultCexCap
	}
	c := &CexCache{cap: capacity, seen: make(map[uint64]struct{})}
	empty := []Assignment{}
	c.snap.Store(&empty)
	return c
}

// fingerprint hashes an assignment for dedupe, independent of map order.
func fingerprint(vals map[string]bv.BV) uint64 {
	var sum uint64
	for name, v := range vals {
		h := uint64(1469598103934665603)
		for i := 0; i < len(name); i++ {
			h = (h ^ uint64(name[i])) * 1099511628211
		}
		h ^= v.Lo * 0x9e3779b97f4a7c15
		h ^= v.Hi * 0xc2b2ae3d27d4eb4f
		h ^= uint64(v.Width) << 48
		sum += h * 0xff51afd7ed558ccd // commutative: map iteration order free
	}
	return sum
}

// Add stores a counterexample assignment. Duplicates (by content) are
// dropped; beyond capacity the oldest assignment is evicted.
func (c *CexCache) Add(vals map[string]bv.BV) {
	if c == nil || len(vals) == 0 {
		return
	}
	fp := fingerprint(vals)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.seen[fp]; dup {
		return
	}
	c.seen[fp] = struct{}{}
	a := Assignment{Vals: vals}
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, a)
	} else {
		evicted := c.ring[c.next]
		delete(c.seen, fingerprint(evicted.Vals))
		c.ring[c.next] = a
		c.next = (c.next + 1) % c.cap
	}
	c.stored.Add(1)
	snap := make([]Assignment, len(c.ring))
	copy(snap, c.ring)
	c.snap.Store(&snap)
}

// Snapshot returns the current assignments (newest content included;
// order is insertion order modulo ring eviction). The returned slice is
// immutable.
func (c *CexCache) Snapshot() []Assignment {
	if c == nil {
		return nil
	}
	return *c.snap.Load()
}

// Len reports how many assignments are cached.
func (c *CexCache) Len() int { return len(c.Snapshot()) }

// Counters reports lifetime screens, hits, and stores.
func (c *CexCache) Counters() (screens, hits, stored int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.screens.Load(), c.hits.Load(), c.stored.Load()
}

// Reset empties the cache and zeroes its counters (used by benchmarks
// that need a cold cache per measured run).
func (c *CexCache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ring = nil
	c.next = 0
	c.seen = make(map[uint64]struct{})
	empty := []Assignment{}
	c.snap.Store(&empty)
	c.screens.Store(0)
	c.hits.Store(0)
	c.stored.Store(0)
}

// SetCapacity rebounds the cache to n assignments (values < 1 restore
// the default), trimming the oldest entries when shrinking. The capacity
// only trades screen power against per-screen cost; at any value the
// screen stays verdict-preserving, so resizing is always safe.
func (c *CexCache) SetCapacity(n int) {
	if c == nil {
		return
	}
	if n < 1 {
		n = DefaultCexCap
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n == c.cap {
		return
	}
	if len(c.ring) > n {
		// Drop the oldest entries: ring order is oldest-first starting
		// at next once the ring has wrapped, insertion order before.
		ordered := make([]Assignment, 0, len(c.ring))
		ordered = append(ordered, c.ring[c.next:]...)
		ordered = append(ordered, c.ring[:c.next]...)
		dropped := ordered[:len(ordered)-n]
		for _, a := range dropped {
			delete(c.seen, fingerprint(a.Vals))
		}
		c.ring = ordered[len(ordered)-n:]
		c.next = 0
		snap := make([]Assignment, len(c.ring))
		copy(snap, c.ring)
		c.snap.Store(&snap)
	} else if c.next != 0 {
		// Unwrap so future evictions stay oldest-first under the new cap.
		ordered := make([]Assignment, 0, len(c.ring))
		ordered = append(ordered, c.ring[c.next:]...)
		ordered = append(ordered, c.ring[:c.next]...)
		c.ring = ordered
		c.next = 0
	}
	c.cap = n
}

// Refutes screens a set of equivalence goals against the cached
// counterexamples: it reports true when some cached assignment makes
// some goal pair evaluate to different values — a concrete witness that
// the conjunction of goals cannot be valid, making the solver query
// unnecessary. The goal terms must be load-free (Equiv substitutes
// paired loads with fresh variables before screening).
func (c *CexCache) Refutes(goals [][2]*term.Term) bool {
	_, ok := c.Refuting(goals)
	return ok
}

// Refuting is Refutes returning the witness: the cached assignment that
// separated some goal pair, so callers (the SMT memo) can persist the
// refutation alongside the verdict.
func (c *CexCache) Refuting(goals [][2]*term.Term) (map[string]bv.BV, bool) {
	if c == nil {
		return nil, false
	}
	cexes := c.Snapshot()
	c.screens.Add(1)
	if len(cexes) == 0 {
		return nil, false
	}
	for _, g := range goals {
		if g[0] == g[1] {
			continue
		}
		lp, rp := term.Compile(g[0]), term.Compile(g[1])
		lv, rv := lp.Vars(), rp.Vars()
		lvals := make([]bv.BV, len(lv))
		rvals := make([]bv.BV, len(rv))
		for _, a := range cexes {
			for i, v := range lv {
				lvals[i] = a.value(v.Name, v.Width)
			}
			for i, v := range rv {
				rvals[i] = a.value(v.Name, v.Width)
			}
			if lp.Run(lvals) != rp.Run(rvals) {
				c.hits.Add(1)
				return a.Vals, true
			}
		}
	}
	return nil, false
}

// assignmentRefutes replays one concrete assignment against the goals,
// reporting whether it separates some pair — the degraded trust path
// for memoized NotEqual verdicts whose spec fingerprint no longer
// matches. Unknown variable names get the same deterministic fill as
// cache screening, so replay verdicts are reproducible.
func assignmentRefutes(vals map[string]bv.BV, goals [][2]*term.Term) bool {
	a := Assignment{Vals: vals}
	for _, g := range goals {
		if g[0] == g[1] {
			continue
		}
		lp, rp := term.Compile(g[0]), term.Compile(g[1])
		lv, rv := lp.Vars(), rp.Vars()
		lvals := make([]bv.BV, len(lv))
		rvals := make([]bv.BV, len(rv))
		for i, v := range lv {
			lvals[i] = a.value(v.Name, v.Width)
		}
		for i, v := range rv {
			rvals[i] = a.value(v.Name, v.Width)
		}
		if lp.Run(lvals) != rp.Run(rvals) {
			return true
		}
	}
	return false
}
