// SMT verdict memoization: the session-persistent layer in front of the
// counterexample screen. Every settled equivalence query — proved,
// refuted, or budget-exhausted — is content-addressed by a canonical
// digest of its goal pairs and can be replayed on the next identical
// query without building a single clause. The store itself lives in
// internal/solver (in-memory tiers plus a disk journal); this file owns
// the key derivation and the trust policy, because only the checker
// knows when a stored verdict may be believed:
//
//   - Equal is trusted only when the stored proof fingerprint matches
//     the checker's current spec fingerprint. The digest already
//     identifies the query content, so the fingerprint guard is
//     defense in depth against key collisions and serialization drift —
//     a stale Equal could silently admit an unsound rule, which no
//     later stage would catch.
//   - NotEqual under a matching fingerprint is trusted directly; under
//     a mismatch it degrades to a counterexample screen: the stored
//     separating assignment is replayed concretely against the current
//     goals, and the verdict is used only if it still refutes them —
//     sound for any spec, exactly like a CexCache hit.
//   - Unknown (budget exhaustion) is trusted only under a matching
//     fingerprint and a stored budget at least as large as the current
//     one: CDCL search is deterministic, so exhausting N conflicts
//     implies exhausting any M <= N.
//
// Anything a hit cannot preserve exactly falls through to the normal
// screen-then-solve path, so attaching a memo never changes which rules
// synthesis produces for a given spec — only how much solver work it
// costs.
package smt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"iselgen/internal/bv"
	"iselgen/internal/canon"
	"iselgen/internal/term"
)

// MemoEntry is one stored verdict with enough context to decide trust
// and to answer provenance queries ("why is this rule in the library").
type MemoEntry struct {
	// Verdict is the settled result (Equal, NotEqual, or Unknown for a
	// budget exhaustion; Unknown from an unsupported operator is stored
	// with Budget = UnsupportedBudget, since it holds for any budget).
	Verdict Result `json:"verdict"`
	// SpecFP is the spec fingerprint the verdict was proved under.
	SpecFP string `json:"spec_fp,omitempty"`
	// Budget is the conflict budget the verdict was settled under.
	Budget int64 `json:"budget,omitempty"`
	// Cex is the separating assignment for NotEqual verdicts (when one
	// was extracted); it both reseeds the counterexample cache on a hit
	// and lets a fingerprint-mismatched NotEqual degrade to a screen.
	Cex map[string]bv.BV `json:"cex,omitempty"`
	// Context labels the query's purpose (e.g. "synthesis:<pattern>"),
	// joining memo entries to rule provenance.
	Context string `json:"context,omitempty"`
	// Conflicts and SolveTimeNS record the original solver effort.
	Conflicts   int64 `json:"conflicts,omitempty"`
	SolveTimeNS int64 `json:"solve_time_ns,omitempty"`
}

// UnsupportedBudget marks verdicts that hold under any conflict budget
// (structural Unknowns from unsupported operators, not search timeouts).
const UnsupportedBudget = int64(1) << 62

// Memo is the verdict store the checker consults before the
// counterexample screen. Implementations must be safe for concurrent
// use; internal/solver provides the canonical two-tier one.
type Memo interface {
	// Lookup returns the stored entry for a query key, if any. It must
	// never trigger solving or other expensive work.
	Lookup(key string) (MemoEntry, bool)
	// Store records a settled verdict under the key, overwriting any
	// previous entry.
	Store(key string, e MemoEntry)
}

// memoDomain versions the key derivation: bump it when the digest
// serialization changes so old journals go cold instead of colliding.
const memoDomain = "iselgen-smt-memo-v1"

// memoKey content-addresses an equivalence query: the SHA-256 over the
// canonical (Merkle) digests of every goal pair, in order. The digest is
// builder- and run-independent — canonicalization orders commutative
// operands and linear addends by content, goal construction derives all
// fresh names ("!loadN", "eKwW") deterministically — so the same query
// hashes identically across workers, processes, and cluster peers.
func (c *Checker) memoKey(goals [][2]*term.Term) string {
	if c.memoCtx == nil {
		c.memoCtx = canon.NewCtx()
		c.memoDig = make(map[*canon.CTerm][32]byte)
	}
	h := sha256.New()
	h.Write([]byte(memoDomain))
	for _, g := range goals {
		for _, side := range g {
			d := c.ctermDigest(c.memoCtx.Canon(side))
			h.Write(d[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ctermDigest computes a collision-resistant structural digest of a
// canonical term, memoized per interned pointer (CTerms are immutable
// and interned per Ctx, so pointer identity implies content identity).
// Unlike canon's 64-bit FNV Hash — good enough for ordering, where a
// collision only costs a deeper comparison — the memo digest guards
// verdict reuse, so it is SHA-256 and includes every field the FNV hash
// mixes plus the bitvector widths of constants and coefficients.
func (c *Checker) ctermDigest(t *canon.CTerm) [32]byte {
	if d, ok := c.memoDig[t]; ok {
		return d
	}
	var buf []byte
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	bvv := func(v bv.BV) {
		u64(v.Lo)
		u64(v.Hi)
		buf = append(buf, byte(v.Width))
	}
	buf = append(buf, byte(t.Kind))
	u64(uint64(t.Width))
	switch t.Kind {
	case canon.Atom:
		u64(uint64(len(t.Var.Name)))
		buf = append(buf, t.Var.Name...)
		buf = append(buf, byte(t.Var.Kind))
	case canon.OpNode:
		u64(uint64(t.Op))
		u64(uint64(uint32(t.Aux0)))
		u64(uint64(uint32(t.Aux1)))
		u64(uint64(len(t.Args)))
		for _, a := range t.Args {
			d := c.ctermDigest(a)
			buf = append(buf, d[:]...)
		}
	case canon.Lin:
		bvv(t.K)
		u64(uint64(len(t.Addends)))
		for _, a := range t.Addends {
			bvv(a.Coef)
			d := c.ctermDigest(a.T)
			buf = append(buf, d[:]...)
		}
	}
	d := sha256.Sum256(buf)
	c.memoDig[t] = d
	return d
}

// memoTrusted applies the trust policy to a stored entry, returning the
// verdict to replay and whether the hit may be used at all.
func (c *Checker) memoTrusted(e MemoEntry, budget int64, goals [][2]*term.Term) (Result, bool) {
	if e.SpecFP != "" && e.SpecFP == c.SpecFP {
		if e.Verdict == Unknown {
			// Deterministic search: exhausting e.Budget conflicts
			// without an answer implies exhausting any smaller budget.
			if e.Budget >= budget {
				return Unknown, true
			}
			return Unknown, false
		}
		return e.Verdict, true
	}
	// Fingerprint mismatch: only a refutation with a stored witness can
	// be salvaged, by degrading to a concrete counterexample screen.
	if e.Verdict == NotEqual && len(e.Cex) > 0 && assignmentRefutes(e.Cex, goals) {
		return NotEqual, true
	}
	return Unknown, false
}

// memoStore records a settled verdict (never Unknown-from-timeout under
// a smaller budget than configured — the caller passes the effective
// budget the verdict was settled under).
func (c *Checker) memoStore(key string, e MemoEntry) {
	if c.Memo == nil || key == "" {
		return
	}
	e.SpecFP = c.SpecFP
	e.Context = c.Context
	c.Memo.Store(key, e)
}
