// Package smt provides the equivalence oracle used as the synthesis
// fallback (paper §V-C): it decides whether two bitvector terms agree on
// all inputs, by bit-blasting the inequality and checking unsatisfiability
// with the CDCL solver.
//
// Memory effects follow the paper's single-memory-operation discipline
// (§IV-A rule 3). Loads on the two sides are paired up: equivalence
// requires the paired addresses to be provably equal, after which both
// load results are replaced by one shared fresh variable (functional
// consistency for a single application of the load symbol). Store effects
// must pair structurally: value and address are proven equal component-wise.
//
// Queries carry a deterministic budget (conflict count) standing in for
// the paper's 500 ms Z3 timeout, so experiment results are reproducible
// across machines.
package smt

import (
	"errors"
	"fmt"
	"time"

	"iselgen/internal/bitblast"
	"iselgen/internal/obs"
	"iselgen/internal/sat"
	"iselgen/internal/term"
)

// Result is a three-valued equivalence verdict.
type Result int

// Equivalence verdicts. NotEqual carries no counterexample here; use
// Counterexample for one.
const (
	Unknown Result = iota
	Equal
	NotEqual
)

func (r Result) String() string {
	switch r {
	case Equal:
		return "equal"
	case NotEqual:
		return "not-equal"
	default:
		return "unknown"
	}
}

// Stats accumulates query statistics across a Checker's lifetime,
// including the SAT-core work counters (decisions, propagations,
// conflicts, restarts) summed over every query the checker ran.
type Stats struct {
	Queries   int64
	Proved    int64
	Refuted   int64
	TimedOut  int64
	Conflicts int64

	Decisions    int64
	Propagations int64
	Restarts     int64
	SolveTime    time.Duration
}

// Checker decides term equivalence. The zero value uses a default budget.
type Checker struct {
	// MaxConflicts bounds the CDCL search per query; 0 means the default
	// (200000 conflicts, roughly the work Z3 does in the paper's 500 ms).
	MaxConflicts int64
	Stats        Stats
	// Obs, when set, receives per-query provenance events (result,
	// duration, SAT work counters) and latency histogram observations.
	// Context labels the events with the caller's purpose.
	Obs     *obs.Obs
	Context string
}

// defaultMaxConflicts bounds one query at roughly the work a tuned SMT
// solver performs in the paper's 500 ms timeout. Queries the CDCL core
// cannot settle in this budget (notably wide-multiplier equivalences,
// which Z3 also resolves by rewriting rather than search) return Unknown
// and the synthesis pipeline simply skips the candidate — the same
// consequence a Z3 timeout has in the paper.
const defaultMaxConflicts = 60000

// Equiv reports whether lhs and rhs (terms from builder b) are equal for
// all variable assignments. Both must have the same width.
func (c *Checker) Equiv(b *term.Builder, lhs, rhs *term.Term) Result {
	c.Stats.Queries++
	if lhs.W() != rhs.W() {
		return NotEqual
	}
	if lhs == rhs {
		c.Stats.Proved++
		return Equal
	}

	// Stores must pair at the root.
	if (lhs.Op == term.Store) != (rhs.Op == term.Store) {
		c.Stats.Refuted++
		return NotEqual
	}

	var goals [][2]*term.Term
	if lhs.Op == term.Store {
		if lhs.Aux0 != rhs.Aux0 {
			c.Stats.Refuted++
			return NotEqual
		}
		goals = append(goals,
			[2]*term.Term{lhs.Args[0], rhs.Args[0]}, // addresses
			[2]*term.Term{lhs.Args[1], rhs.Args[1]}, // values
		)
	} else {
		goals = append(goals, [2]*term.Term{lhs, rhs})
	}

	// Pair loads across the two sides.
	lloads := collectLoads(goals, 0)
	rloads := collectLoads(goals, 1)
	if len(lloads) != len(rloads) {
		// The paper's candidate filter requires load counts to match;
		// a mismatch here cannot be proven equal by our encoding.
		return Unknown
	}
	subst := map[*term.Term]*term.Term{}
	for i := range lloads {
		if lloads[i].W() != rloads[i].W() {
			return Unknown
		}
		v := b.VarT(fmt.Sprintf("!load%d", i), term.KindReg, lloads[i].W())
		subst[lloads[i]] = v
		subst[rloads[i]] = v
		// Addresses must be provably equal too.
		goals = append(goals, [2]*term.Term{lloads[i].Args[0], rloads[i].Args[0]})
	}
	if len(subst) > 0 {
		for i := range goals {
			goals[i][0] = b.Rebuild(goals[i][0], subst)
			goals[i][1] = b.Rebuild(goals[i][1], subst)
		}
	}

	// UNSAT of "some goal differs" proves equivalence of all goals.
	s := sat.New()
	s.MaxConflicts = c.MaxConflicts
	if s.MaxConflicts == 0 {
		s.MaxConflicts = defaultMaxConflicts
	}
	bb := bitblast.New(s)
	var diffs []sat.Lit
	for _, g := range goals {
		if g[0] == g[1] {
			continue
		}
		lb, err := bb.Blast(g[0])
		if err != nil {
			return c.unsupported(err)
		}
		rb, err := bb.Blast(g[1])
		if err != nil {
			return c.unsupported(err)
		}
		diffs = append(diffs, bb.DistinctLit(lb, rb))
	}
	if len(diffs) == 0 {
		c.Stats.Proved++
		return Equal
	}
	s.AddClause(diffs...)
	before := s.Conflicts
	t0 := time.Now()
	st := s.Solve()
	dur := time.Since(t0)
	c.Stats.Conflicts += s.Conflicts - before
	c.Stats.Decisions += s.Decisions
	c.Stats.Propagations += s.Propagations
	c.Stats.Restarts += s.Restarts
	c.Stats.SolveTime += dur

	var res Result
	switch st {
	case sat.Unsat:
		c.Stats.Proved++
		res = Equal
	case sat.Sat:
		c.Stats.Refuted++
		res = NotEqual
	default:
		c.Stats.TimedOut++
		res = Unknown
	}
	if c.Obs != nil {
		c.Obs.Prov.AddSMT(obs.SMTQuery{
			Context:      c.Context,
			Result:       res.String(),
			DurNS:        dur.Nanoseconds(),
			Decisions:    s.Decisions,
			Conflicts:    s.Conflicts - before,
			Propagations: s.Propagations,
			Restarts:     s.Restarts,
		})
		if m := c.Obs.Metrics; m != nil {
			m.Histogram("smt_query_duration_ns",
				"per-SMT-query solve latency", "result", res.String()).Observe(dur.Nanoseconds())
		}
	}
	return res
}

func (c *Checker) unsupported(err error) Result {
	if errors.Is(err, bitblast.ErrUnsupported) {
		return Unknown
	}
	panic(err)
}

func collectLoads(goals [][2]*term.Term, side int) []*term.Term {
	var out []*term.Term
	seen := map[*term.Term]bool{}
	for _, g := range goals {
		for _, l := range g[side].Loads() {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// Counterexample searches for an assignment on which lhs and rhs differ.
// It returns (env, true) with a binding for every variable of both terms
// when one is found. Terms containing loads are not supported here.
func (c *Checker) Counterexample(b *term.Builder, lhs, rhs *term.Term) (*term.Env, bool) {
	if lhs.W() != rhs.W() {
		return nil, false
	}
	s := sat.New()
	s.MaxConflicts = c.MaxConflicts
	if s.MaxConflicts == 0 {
		s.MaxConflicts = defaultMaxConflicts
	}
	bb := bitblast.New(s)
	lb, err := bb.Blast(lhs)
	if err != nil {
		return nil, false
	}
	rb, err := bb.Blast(rhs)
	if err != nil {
		return nil, false
	}
	bb.AssertDistinct(lb, rb)
	st, model := s.SolveModel()
	if st != sat.Sat {
		return nil, false
	}
	env := term.NewEnv()
	bindVars := func(t *term.Term) {
		for _, v := range t.Vars() {
			if _, ok := env.Vals[v.Name]; ok {
				continue
			}
			bits := bb.VarBits(v.Name, v.W())
			lo := bitblast.ModelValue(model, bits)
			var hi uint64
			if v.W() > 64 {
				hi = bitblast.ModelValue(model, bits[64:])
			}
			env.Bind(v.Name, bvNew(v.W(), hi, lo))
		}
	}
	bindVars(lhs)
	bindVars(rhs)
	return env, true
}
