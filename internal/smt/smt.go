// Package smt provides the equivalence oracle used as the synthesis
// fallback (paper §V-C): it decides whether two bitvector terms agree on
// all inputs, by bit-blasting the inequality and checking unsatisfiability
// with the CDCL solver.
//
// Memory effects follow the paper's single-memory-operation discipline
// (§IV-A rule 3). Loads on the two sides are paired up: equivalence
// requires the paired addresses to be provably equal, after which both
// load results are replaced by one shared fresh variable (functional
// consistency for a single application of the load symbol). Store effects
// must pair structurally: value and address are proven equal component-wise.
//
// Queries carry a deterministic budget (conflict count) standing in for
// the paper's 500 ms Z3 timeout, so experiment results are reproducible
// across machines.
package smt

import (
	"errors"
	"fmt"
	"time"

	"iselgen/internal/bitblast"
	"iselgen/internal/bv"
	"iselgen/internal/canon"
	"iselgen/internal/obs"
	"iselgen/internal/sat"
	"iselgen/internal/term"
)

// Result is a three-valued equivalence verdict.
type Result int

// Equivalence verdicts. NotEqual carries no counterexample here; use
// Counterexample for one.
const (
	Unknown Result = iota
	Equal
	NotEqual
)

func (r Result) String() string {
	switch r {
	case Equal:
		return "equal"
	case NotEqual:
		return "not-equal"
	default:
		return "unknown"
	}
}

// Stats accumulates query statistics across a Checker's lifetime,
// including the SAT-core work counters (decisions, propagations,
// conflicts, restarts) summed over every query the checker ran.
type Stats struct {
	Queries   int64
	Proved    int64
	Refuted   int64
	TimedOut  int64
	Conflicts int64

	Decisions    int64
	Propagations int64
	Restarts     int64
	SolveTime    time.Duration

	// Counterexample-screen counters: CexScreens is how many queries were
	// evaluated against the cache, CexHits how many a cached assignment
	// refuted, and SMTSkipped how many solver builds memo hits and screen
	// hits avoided together (one per hit — kept separate so the bench
	// schema can evolve them independently).
	CexScreens int64
	CexHits    int64
	SMTSkipped int64

	// Memo counters: MemoHits is how many queries a stored verdict
	// answered (after passing the trust policy); BitBlasts is how many
	// queries actually reached circuit construction — the number the
	// warm-resynthesis acceptance gate drives to zero.
	MemoHits  int64
	BitBlasts int64
}

// Checker decides term equivalence. The zero value uses a default budget.
type Checker struct {
	// MaxConflicts bounds the CDCL search per query; 0 means the default
	// (200000 conflicts, roughly the work Z3 does in the paper's 500 ms).
	MaxConflicts int64
	Stats        Stats
	// Obs, when set, receives per-query provenance events (result,
	// duration, SAT work counters) and latency histogram observations.
	// Context labels the events with the caller's purpose.
	Obs     *obs.Obs
	Context string
	// Cex, when set, screens every query against cached counterexamples
	// before any bit-blasting, and stores the separating assignment of
	// every NotEqual verdict back into the cache. Screening is
	// verdict-preserving (see cex.go), so attaching a cache never changes
	// which rules synthesis produces — only how much solver work it costs.
	Cex *CexCache
	// Memo, when set, is consulted before the counterexample screen with
	// a content-addressed key of the query, and every settled verdict is
	// stored back. Trust is guarded by SpecFP (see memo.go): Equal and
	// budget Unknowns replay only under a matching fingerprint; NotEqual
	// degrades to a concrete witness replay otherwise.
	Memo Memo
	// SpecFP fingerprints the specification the checker's queries are
	// proved against (core derives it from every target instruction's
	// effect fingerprint). Stored with each memo entry and compared on
	// lookup; empty disables fingerprint-guarded trust entirely, leaving
	// only the witness-replay path.
	SpecFP string

	// Memo key derivation state: a lazily created canonicalization
	// context plus a per-CTerm digest cache (memo.go).
	memoCtx *canon.Ctx
	memoDig map[*canon.CTerm][32]byte

	// sess, when non-nil, is the persistent assumption-based incremental
	// solver (BeginIncremental); nil means one fresh solver per query.
	sess *session
	incr bool
}

// session is the incremental solving state: one solver and one blaster
// accumulate variable encodings, circuit clauses, and — the point —
// learned clauses across a worker's successive queries. Each query's
// inequality is guarded by a fresh activation literal passed as an
// assumption, then retired with a unit clause, so retired queries cost
// nothing beyond their (reusable) circuit.
type session struct {
	s  *sat.Solver
	bb *bitblast.Blaster
}

// sessionMaxVars resets a session that grew past this many SAT
// variables; a defensive bound — per-pattern sessions stay far below it.
const sessionMaxVars = 1 << 19

// BeginIncremental switches the checker to incremental solving: from now
// until EndIncremental, queries share one solver, reusing bit-blasted
// circuits (candidate pairs within a pattern share whole subterms, most
// notably the pattern side itself) and learned clauses. The caller
// should scope a session to one deterministic query sequence — the
// synthesis pool scopes it to one pattern's fallback, which a single
// worker always processes alone, so worker count and scheduling cannot
// alter what any query sees.
func (c *Checker) BeginIncremental() {
	c.incr = true
	c.sess = nil
}

// EndIncremental drops the persistent solver and returns the checker to
// one-shot queries.
func (c *Checker) EndIncremental() {
	c.incr = false
	c.sess = nil
}

// solverFor returns the solver/blaster pair for the next query: the
// persistent session in incremental mode (recycled if poisoned or
// oversized), or a fresh pair.
func (c *Checker) solverFor(budget int64) (*sat.Solver, *bitblast.Blaster) {
	if c.incr {
		if c.sess != nil && (c.sess.s.Unsatisfiable() || c.sess.s.NumVars() > sessionMaxVars) {
			c.sess = nil
		}
		if c.sess == nil {
			s := sat.New()
			c.sess = &session{s: s, bb: bitblast.New(s)}
		}
		c.sess.s.MaxConflicts = budget
		return c.sess.s, c.sess.bb
	}
	s := sat.New()
	s.MaxConflicts = budget
	return s, bitblast.New(s)
}

// defaultMaxConflicts bounds one query at roughly the work a tuned SMT
// solver performs in the paper's 500 ms timeout. Queries the CDCL core
// cannot settle in this budget (notably wide-multiplier equivalences,
// which Z3 also resolves by rewriting rather than search) return Unknown
// and the synthesis pipeline simply skips the candidate — the same
// consequence a Z3 timeout has in the paper.
const defaultMaxConflicts = 60000

// Equiv reports whether lhs and rhs (terms from builder b) are equal for
// all variable assignments. Both must have the same width.
func (c *Checker) Equiv(b *term.Builder, lhs, rhs *term.Term) Result {
	c.Stats.Queries++
	if lhs.W() != rhs.W() {
		return NotEqual
	}
	if lhs == rhs {
		c.Stats.Proved++
		return Equal
	}

	// Stores must pair at the root.
	if (lhs.Op == term.Store) != (rhs.Op == term.Store) {
		c.Stats.Refuted++
		return NotEqual
	}

	var goals [][2]*term.Term
	if lhs.Op == term.Store {
		if lhs.Aux0 != rhs.Aux0 {
			c.Stats.Refuted++
			return NotEqual
		}
		goals = append(goals,
			[2]*term.Term{lhs.Args[0], rhs.Args[0]}, // addresses
			[2]*term.Term{lhs.Args[1], rhs.Args[1]}, // values
		)
	} else {
		goals = append(goals, [2]*term.Term{lhs, rhs})
	}

	// Pair loads across the two sides.
	lloads := collectLoads(goals, 0)
	rloads := collectLoads(goals, 1)
	if len(lloads) != len(rloads) {
		// The paper's candidate filter requires load counts to match;
		// a mismatch here cannot be proven equal by our encoding.
		return Unknown
	}
	subst := map[*term.Term]*term.Term{}
	for i := range lloads {
		if lloads[i].W() != rloads[i].W() {
			return Unknown
		}
		v := b.VarT(fmt.Sprintf("!load%d", i), term.KindReg, lloads[i].W())
		subst[lloads[i]] = v
		subst[rloads[i]] = v
		// Addresses must be provably equal too.
		goals = append(goals, [2]*term.Term{lloads[i].Args[0], rloads[i].Args[0]})
	}
	if len(subst) > 0 {
		for i := range goals {
			goals[i][0] = b.Rebuild(goals[i][0], subst)
			goals[i][1] = b.Rebuild(goals[i][1], subst)
		}
	}

	budget := c.MaxConflicts
	if budget == 0 {
		budget = defaultMaxConflicts
	}

	// Memo consult: an identical query settled earlier — this process or
	// a previous one, any worker — replays its verdict without a screen
	// or a single clause, subject to the trust policy in memo.go.
	var mkey string
	if c.Memo != nil {
		mkey = c.memoKey(goals)
		if e, ok := c.Memo.Lookup(mkey); ok {
			if res, trusted := c.memoTrusted(e, budget, goals); trusted {
				c.Stats.MemoHits++
				c.Stats.SMTSkipped++
				switch res {
				case Equal:
					c.Stats.Proved++
				case NotEqual:
					c.Stats.Refuted++
					// Reseed the screen: the stored witness very likely
					// separates upcoming candidates for free.
					if c.Cex != nil && len(e.Cex) > 0 {
						c.Cex.Add(e.Cex)
					}
				default:
					c.Stats.TimedOut++
				}
				if c.Obs != nil {
					if m := c.Obs.Metrics; m != nil {
						m.Counter("memo_hits", "equivalence queries answered by the memoized verdict store").Add(1)
						m.Counter("smt_skipped", "bit-blasting rounds skipped thanks to the counterexample screen").Add(1)
					}
				}
				return res
			}
		}
	}

	// Counterexample screen (CEGIS instantiation reuse): a cached
	// assignment that concretely separates some goal pair is exactly a
	// satisfying assignment of the inequality below — return NotEqual
	// without building a single clause. Goals are load-free here (loads
	// were substituted above), so concrete evaluation is total.
	if c.Cex != nil {
		c.Stats.CexScreens++
		cexVals, hit := c.Cex.Refuting(goals)
		if c.Obs != nil {
			if m := c.Obs.Metrics; m != nil {
				m.Counter("cex_screens", "candidate pairs screened against cached counterexamples").Add(1)
				if hit {
					m.Counter("cex_cache_hits", "equivalence queries refuted by a cached counterexample").Add(1)
					m.Counter("smt_skipped", "bit-blasting rounds skipped thanks to the counterexample screen").Add(1)
				}
			}
		}
		if hit {
			c.Stats.CexHits++
			c.Stats.SMTSkipped++
			c.Stats.Refuted++
			// Persist the refutation: the screen's witness is a full
			// NotEqual verdict, and storing it is what lets a warm run
			// skip the screen (and survive ring eviction) entirely.
			c.memoStore(mkey, MemoEntry{Verdict: NotEqual, Budget: budget, Cex: cexVals})
			return NotEqual
		}
	}

	// UNSAT of "some goal differs" proves equivalence of all goals.
	// Baselines before blasting: AddClause propagates units eagerly, so
	// work counters move during clause construction, not just in Solve.
	// A fresh solver starts from zero (lifetime totals); a reused
	// incremental session reports per-query deltas.
	var prevS *sat.Solver
	var confB, decB, propB, restB int64
	if c.incr && c.sess != nil {
		prevS = c.sess.s
		confB, decB, propB, restB = prevS.Conflicts, prevS.Decisions, prevS.Propagations, prevS.Restarts
	}
	s, bb := c.solverFor(budget)
	if s != prevS {
		confB, decB, propB, restB = 0, 0, 0, 0
	}
	c.Stats.BitBlasts++
	var diffs []sat.Lit
	for _, g := range goals {
		if g[0] == g[1] {
			continue
		}
		lb, err := bb.Blast(g[0])
		if err != nil {
			return c.memoUnsupported(mkey, err)
		}
		rb, err := bb.Blast(g[1])
		if err != nil {
			return c.memoUnsupported(mkey, err)
		}
		diffs = append(diffs, bb.DistinctLit(lb, rb))
	}
	if len(diffs) == 0 {
		c.Stats.Proved++
		c.memoStore(mkey, MemoEntry{Verdict: Equal, Budget: budget})
		return Equal
	}
	var assumptions []sat.Lit
	if c.incr {
		// Guard this query's inequality behind a fresh activation
		// literal: assumed now, retired below, so the clause is inert for
		// every later query while its circuit and learned clauses remain.
		act := sat.LitOf(s.NewVar(), false)
		s.AddClause(append(diffs, act.Flip())...)
		assumptions = []sat.Lit{act}
	} else {
		s.AddClause(diffs...)
	}
	t0 := time.Now()
	var st sat.Status
	var model []bool
	if c.Cex != nil || c.Memo != nil {
		st, model = s.SolveModel(assumptions...)
	} else {
		st = s.Solve(assumptions...)
	}
	dur := time.Since(t0)
	if c.incr && len(assumptions) > 0 {
		s.AddClause(assumptions[0].Flip())
	}
	conf, dec, prop, rest := s.Conflicts-confB, s.Decisions-decB, s.Propagations-propB, s.Restarts-restB
	c.Stats.Conflicts += conf
	c.Stats.Decisions += dec
	c.Stats.Propagations += prop
	c.Stats.Restarts += rest
	c.Stats.SolveTime += dur

	var res Result
	switch st {
	case sat.Unsat:
		c.Stats.Proved++
		res = Equal
		c.memoStore(mkey, MemoEntry{Verdict: Equal, Budget: budget, Conflicts: conf, SolveTimeNS: dur.Nanoseconds()})
	case sat.Sat:
		c.Stats.Refuted++
		vals := modelAssignment(bb, model, goals)
		if c.Cex != nil {
			c.Cex.Add(vals)
		}
		res = NotEqual
		c.memoStore(mkey, MemoEntry{Verdict: NotEqual, Budget: budget, Cex: vals, Conflicts: conf, SolveTimeNS: dur.Nanoseconds()})
	default:
		c.Stats.TimedOut++
		res = Unknown
		// A budget exhaustion is itself deterministic, so it is worth
		// memoizing: a warm run under the same (or a smaller) budget
		// would only burn the same conflicts to learn the same nothing.
		c.memoStore(mkey, MemoEntry{Verdict: Unknown, Budget: budget, Conflicts: conf, SolveTimeNS: dur.Nanoseconds()})
	}
	if c.Obs != nil {
		c.Obs.Prov.AddSMT(obs.SMTQuery{
			Context:      c.Context,
			Result:       res.String(),
			DurNS:        dur.Nanoseconds(),
			Decisions:    dec,
			Conflicts:    conf,
			Propagations: prop,
			Restarts:     rest,
		})
		if m := c.Obs.Metrics; m != nil {
			m.Histogram("smt_query_duration_ns",
				"per-SMT-query solve latency", "result", res.String()).Observe(dur.Nanoseconds())
		}
	}
	return res
}

// modelAssignment extracts the satisfying assignment for every variable
// of the goal terms from a SAT model — the counterexample that refuted
// the query, in name→value form reusable by later screens.
func modelAssignment(bb *bitblast.Blaster, model []bool, goals [][2]*term.Term) map[string]bv.BV {
	if model == nil {
		return nil
	}
	vals := map[string]bv.BV{}
	for _, g := range goals {
		if g[0] == g[1] {
			// Not blasted (skipped above); its vars have no model bits.
			continue
		}
		for _, side := range g {
			for _, v := range side.Vars() {
				if _, ok := vals[v.Name]; ok {
					continue
				}
				bits := bb.VarBits(v.Name, v.W())
				lo := bitblast.ModelValue(model, bits)
				var hi uint64
				if v.W() > 64 {
					hi = bitblast.ModelValue(model, bits[64:])
				}
				vals[v.Name] = bvNew(v.W(), hi, lo)
			}
		}
	}
	return vals
}

func (c *Checker) unsupported(err error) Result {
	if errors.Is(err, bitblast.ErrUnsupported) {
		return Unknown
	}
	panic(err)
}

// memoUnsupported records a structural Unknown (an operator the blaster
// cannot encode) before returning it: unlike a budget exhaustion it
// holds under any budget, so it is stored with UnsupportedBudget and a
// warm run skips the doomed blast attempt entirely.
func (c *Checker) memoUnsupported(mkey string, err error) Result {
	res := c.unsupported(err)
	c.memoStore(mkey, MemoEntry{Verdict: Unknown, Budget: UnsupportedBudget})
	return res
}

func collectLoads(goals [][2]*term.Term, side int) []*term.Term {
	var out []*term.Term
	seen := map[*term.Term]bool{}
	for _, g := range goals {
		for _, l := range g[side].Loads() {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// Counterexample searches for an assignment on which lhs and rhs differ.
// It returns (env, true) with a binding for every variable of both terms
// when one is found. Terms containing loads are not supported here.
func (c *Checker) Counterexample(b *term.Builder, lhs, rhs *term.Term) (*term.Env, bool) {
	if lhs.W() != rhs.W() {
		return nil, false
	}
	s := sat.New()
	s.MaxConflicts = c.MaxConflicts
	if s.MaxConflicts == 0 {
		s.MaxConflicts = defaultMaxConflicts
	}
	bb := bitblast.New(s)
	lb, err := bb.Blast(lhs)
	if err != nil {
		return nil, false
	}
	rb, err := bb.Blast(rhs)
	if err != nil {
		return nil, false
	}
	bb.AssertDistinct(lb, rb)
	st, model := s.SolveModel()
	if st != sat.Sat {
		return nil, false
	}
	env := term.NewEnv()
	bindVars := func(t *term.Term) {
		for _, v := range t.Vars() {
			if _, ok := env.Vals[v.Name]; ok {
				continue
			}
			bits := bb.VarBits(v.Name, v.W())
			lo := bitblast.ModelValue(model, bits)
			var hi uint64
			if v.W() > 64 {
				hi = bitblast.ModelValue(model, bits[64:])
			}
			env.Bind(v.Name, bvNew(v.W(), hi, lo))
		}
	}
	bindVars(lhs)
	bindVars(rhs)
	return env, true
}
