package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"iselgen/internal/core"
	"iselgen/internal/isel"
	"iselgen/internal/obs"
	"iselgen/internal/term"
)

// ErrLocalFill is returned by a RemoteFiller when the local node is the
// rightful owner of the fingerprint (or no peer is reachable): the
// caller should produce the artifact itself. It is a routing signal,
// not a failure.
var ErrLocalFill = errors.New("service: fill locally")

// FillRequest describes one artifact a node wants a peer to produce (or
// serve from its cache): everything the peer needs to recompute the
// fingerprint and, on a miss of its own, run the synthesis.
type FillRequest struct {
	// Fingerprint is the full-cache key the requester computed; the peer
	// recomputes it from the other fields and refuses on mismatch, so a
	// config-skewed replica can never poison a cache.
	Fingerprint string `json:"fingerprint"`
	// Target names a builtin target — or, with Spec set, the inline
	// target the spec defines.
	Target string `json:"target"`
	// Spec carries inline DSL source (empty for builtin targets; builtin
	// spec text is resolved by name on the peer).
	Spec string `json:"spec,omitempty"`
	// Selector is the selection engine the artifact is keyed under.
	Selector string `json:"selector,omitempty"`
	// TimeoutMS bounds the synthesis the fill may trigger on the peer.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// CacheOnly asks the peer to answer only from its in-memory cache
	// (404 on a miss) — the hedged-probe form that can never trigger a
	// second fleet-wide synthesis.
	CacheOnly bool `json:"cache_only,omitempty"`
	// RequestID is the originating request's ID, propagated into the
	// peer call's X-Request-Id header so one user request is traceable
	// across replicas. Not part of the JSON body.
	RequestID string `json:"-"`
	// TraceParent, when non-empty, is the serialized X-Iseld-Trace
	// context the peer call should carry (the fill span's own context) —
	// the peer's request span then parents under this fill in the
	// assembled fleet trace. Not part of the JSON body: trace context
	// travels in the header, like the request ID.
	TraceParent string `json:"-"`
}

// RemoteFill is a peer's answer to a FillRequest: the serialized
// library artifact plus where it came from.
type RemoteFill struct {
	// Text is the artifact in the Emit/parse round-trip format —
	// re-verified locally before it is trusted (same contract as the
	// disk layer).
	Text string
	// Partial marks a deadline-curtailed artifact (returned to waiters,
	// never cached).
	Partial bool
	// Stats, Reused, and Resynthesized are the producing run's provenance,
	// echoed into the local entry so responses stay byte-identical across
	// replicas.
	Stats         core.StageStats
	Reused        int
	Resynthesized int
	// Peer is the base URL of the peer that answered.
	Peer string
}

// RemoteFiller fetches artifacts from elsewhere — the cluster layer's
// hook into the cache-miss path. FetchArtifact returns ErrLocalFill
// when the caller should synthesize locally (it owns the key, or no
// peer can help); any other error also degrades to a local fill, but is
// counted as one.
type RemoteFiller interface {
	FetchArtifact(ctx context.Context, req FillRequest) (*RemoteFill, error)
}

// SetFiller attaches the remote-fill hook. Call it after New and before
// the handler serves traffic (the cluster layer needs the Server first
// to answer its peers' fills).
func (sv *Server) SetFiller(f RemoteFiller) { sv.filler = f }

// FingerprintRequest computes the full-cache fingerprint a request for
// (target|inline spec, selector) resolves to — exported for the cluster
// layer, which routes ownership by it.
func (sv *Server) FingerprintRequest(target, spec, selector string) (string, error) {
	def, err := sv.resolveTarget(target, spec)
	if err != nil {
		return "", err
	}
	_, fp := sv.effectiveConfig(def, selector)
	return fp, nil
}

// fillFromPeer attempts to satisfy a cache miss from a peer replica:
// fetch the serialized artifact, then re-verify every rule against a
// freshly materialized target (a peer is trusted no further than the
// disk layer is). ok=false on any failure — the caller then falls back
// to the local incremental/synthesis path. tc, when valid, is the synth
// flight's trace context: the fill span parents under it and its own
// context rides the peer call's X-Iseld-Trace header, so the owner's
// spans land in the same fleet trace.
func (sv *Server) fillFromPeer(def targetDef, fp, selector, rid string, timeout time.Duration, tc obs.TraceContext) (*Entry, bool) {
	if sv.filler == nil {
		return nil, false
	}
	t0 := time.Now()
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		// The fill budget is the synthesis budget: the owner may be
		// synthesizing on our behalf, so give it the same deadline a
		// local run would get.
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()
	var sp *obs.Span
	if tr := sv.obsv.TracerOrNil(); tr != nil {
		if tc.Valid() {
			sp = tr.StartRemote("cluster fill", tc)
		} else {
			sp = tr.Start("cluster fill")
		}
	}
	sp.SetStr("fingerprint", fp).SetStr("request_id", rid)
	req := FillRequest{
		Fingerprint: fp,
		Target:      def.name,
		Selector:    selector,
		TimeoutMS:   int64(timeout / time.Millisecond),
		RequestID:   rid,
	}
	if def.inline {
		req.Spec = def.spec
	}
	if fc := sp.Context(); fc.Valid() {
		req.TraceParent = fc.Header()
	}
	rf, err := sv.filler.FetchArtifact(ctx, req)
	if err != nil {
		sp.SetStr("outcome", "local").End()
		return nil, false
	}
	b := term.NewBuilder()
	tgt, err := def.load(b)
	if err != nil {
		sp.SetStr("outcome", "load-error").End()
		return nil, false
	}
	lib, err := isel.LoadLibrary(b, tgt, rf.Text)
	if err != nil {
		// A peer artifact that does not verify is poison, exactly like a
		// stale disk artifact: ignore it and synthesize cleanly.
		sp.SetStr("outcome", "verify-error").End()
		return nil, false
	}
	lib.Freeze()
	sp.SetStr("outcome", "peer").SetStr("peer", rf.Peer).End()
	return &Entry{
		Fingerprint: fp,
		TargetName:  def.name,
		B:           b,
		Target:      tgt,
		Lib:         lib,
		Partial:     rf.Partial,
		Stats:       rf.Stats,
		Elapsed:     time.Since(t0),
		Origin:      "peer",
		Reused:      rf.Reused,
		Resynth:     rf.Resynthesized,
	}, true
}

// ArtifactResponse answers POST /v1/artifact: the serialized library
// for a fingerprint, produced (or served from cache) by this replica on
// a peer's behalf. Stats, Reused, and Resynthesized carry the producing
// run's provenance so a peer-filled entry answers clients with exactly
// the metadata the owner's entry does — byte-identical responses from
// any replica.
type ArtifactResponse struct {
	Fingerprint   string          `json:"fingerprint"`
	Target        string          `json:"target"`
	Cache         string          `json:"cache"`
	Partial       bool            `json:"partial"`
	Rules         int             `json:"rules"`
	Stats         core.StageStats `json:"stats"`
	Reused        int             `json:"reused_rules,omitempty"`
	Resynthesized int             `json:"resynthesized_rules,omitempty"`
	Library       string          `json:"library"`
}

// handleArtifact is the peer-fill endpoint. A cache_only request
// answers exclusively from the in-memory layer (404 on a miss) — the
// hedged-probe path. A full request runs the whole local cache protocol
// (memory, disk, incremental, synthesis) with peer-filling disabled, so
// two replicas can never fill from each other in a cycle; cross-node
// singleflight falls out of the local store's flight, because every
// replica sends its fill for a fingerprint to the same ring owner.
func (sv *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	var req FillRequest
	if !sv.decode(w, r, &req) {
		return
	}
	if req.CacheOnly {
		e := sv.store.Peek(req.Fingerprint)
		if e == nil {
			sv.fail(w, http.StatusNotFound, fmt.Errorf("artifact %s not cached here", req.Fingerprint))
			return
		}
		sv.metrics.ArtifactServed.Add(1)
		writeJSON(w, http.StatusOK, ArtifactResponse{
			Fingerprint:   e.Fingerprint,
			Target:        e.TargetName,
			Cache:         "hit",
			Partial:       e.Partial,
			Rules:         e.Lib.Len(),
			Stats:         e.Stats,
			Reused:        e.Reused,
			Resynthesized: e.Resynth,
			Library:       isel.SaveLibraryFor(e.Lib, e.Target),
		})
		return
	}
	def, err := sv.resolveTarget(req.Target, req.Spec)
	if err != nil {
		sv.fail(w, http.StatusBadRequest, err)
		return
	}
	cfg, fp := sv.effectiveConfig(def, req.Selector)
	if req.Fingerprint != "" && req.Fingerprint != fp {
		// Config skew between replicas: refusing keeps a mismatched
		// artifact out of the requester's cache; it will fill locally.
		sv.fail(w, http.StatusConflict,
			fmt.Errorf("fingerprint mismatch: requester %s, here %s (replica config skew?)", req.Fingerprint, fp))
		return
	}
	timeout := sv.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	e, cache, status, err := sv.entryFor(r.Context(), def, cfg, fp, timeout, false)
	if err != nil {
		sv.fail(w, status, err)
		return
	}
	sv.metrics.ArtifactServed.Add(1)
	writeJSON(w, http.StatusOK, ArtifactResponse{
		Fingerprint:   e.Fingerprint,
		Target:        e.TargetName,
		Cache:         cache,
		Partial:       e.Partial,
		Rules:         e.Lib.Len(),
		Stats:         e.Stats,
		Reused:        e.Reused,
		Resynthesized: e.Resynth,
		Library:       isel.SaveLibraryFor(e.Lib, e.Target),
	})
}
