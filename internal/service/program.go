package service

import (
	"fmt"

	"iselgen/internal/cost"
	"iselgen/internal/fuzz"
	"iselgen/internal/gmir"
	"iselgen/internal/isel"
	"iselgen/internal/sim"
)

// maxBatchPrograms caps one batch request; past it the request is a 400
// (the client splits — the point of batching is amortizing the library
// acquisition, which saturates well before this).
const maxBatchPrograms = 1024

// maxProgramVectors caps the simulation vectors per program.
const maxProgramVectors = 8

// progEnv is the per-request selection environment a batch shares: one
// cache entry (the amortized library acquisition), one backend, one
// cost model. Programs run through it sequentially — the same reuse
// discipline the fuzz driver applies.
type progEnv struct {
	target   string
	entry    *Entry
	backend  *isel.Backend
	model    *cost.Table
	minWidth int
	seed     uint64
	vectors  int
	emit     EmitMode
}

// ProgramResult is one program's outcome inside a batch (and the
// program-mode payload of /v1/select). It deliberately carries no
// timing: every field is a pure function of (library fingerprint,
// program text, vector seed), which is what makes responses
// byte-identical across replicas.
type ProgramResult struct {
	Index          int      `json:"index"`
	Error          string   `json:"error,omitempty"`
	Fallback       bool     `json:"fallback,omitempty"`
	FallbackReason string   `json:"fallback_reason,omitempty"`
	RuleInsts      int      `json:"rule_insts,omitempty"`
	HookInsts      int      `json:"hook_insts,omitempty"`
	StaticCost     string   `json:"static_cost,omitempty"`
	Cycles         int64    `json:"cycles,omitempty"`
	Insts          int64    `json:"insts,omitempty"`
	BinarySize     int      `json:"binary_size,omitempty"`
	Checksums      []string `json:"checksums,omitempty"`
	MIR            string   `json:"mir,omitempty"`
}

// newProgEnv builds the shared environment around an acquired cache
// entry. minWidth mirrors the fuzz pipeline's legalization floor: RV64
// backends are 64-bit only.
func (sv *Server) newProgEnv(def targetDef, e *Entry, model *cost.Table, selector string, seed uint64, vectors int, emit EmitMode) *progEnv {
	bk := def.backend(e.Target, e.Lib)
	bk.Obs = sv.obsv
	if selector == "optimal" {
		bk = isel.OptimalVariant(bk, model)
	}
	minW := 32
	if def.name == "riscv" {
		minW = 64
	}
	if seed == 0 {
		seed = 1
	}
	if vectors < 1 {
		vectors = 1
	}
	if vectors > maxProgramVectors {
		vectors = maxProgramVectors
	}
	return &progEnv{
		target:   def.name,
		entry:    e,
		backend:  bk,
		model:    model,
		minWidth: minW,
		seed:     seed,
		vectors:  vectors,
		emit:     emit,
	}
}

// selectProgram lowers one corpus-text program through the shared
// environment: parse, legalize, select, simulate on the deterministic
// vectors. Failures are per-program data, never HTTP errors — one
// malformed program must not void the rest of its batch.
func (env *progEnv) selectProgram(idx int, text string) (res ProgramResult) {
	res.Index = idx
	defer func() {
		if r := recover(); r != nil {
			res = ProgramResult{Index: idx, Error: fmt.Sprintf("panic: %v", r)}
		}
	}()
	p, err := fuzz.ParseProg(text)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	f, err := p.Build()
	if err != nil {
		res.Error = err.Error()
		return res
	}
	if err := gmir.Legalize(f, env.minWidth); err != nil {
		res.Error = fmt.Sprintf("legalize: %v", err)
		return res
	}
	isel.Prepare(f, env.target)
	mf, rep := env.backend.Select(f)
	res.Fallback = rep.Fallback
	res.FallbackReason = rep.FallbackReason
	if rep.Fallback {
		return res
	}
	res.RuleInsts = rep.RuleInsts
	res.HookInsts = rep.HookInsts
	res.StaticCost = cost.StaticOf(mf, env.model).String()
	res.BinarySize = mf.BinarySize()
	for _, args := range fuzz.VectorsFor(env.seed, p, env.vectors) {
		m := &sim.Machine{Mem: gmir.NewMemory(), Model: env.model}
		out, err := m.Run(mf, args)
		if err != nil {
			res.Error = fmt.Sprintf("sim: %v", err)
			return res
		}
		res.Cycles += out.Cycles
		res.Insts += out.Insts
		res.Checksums = append(res.Checksums, out.Ret.String())
	}
	if env.emit == "mir" {
		res.MIR = mf.String()
	}
	return res
}
