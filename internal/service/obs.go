package service

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"

	"iselgen/internal/obs"
)

// ridKey is the context key carrying the request ID into detached
// synthesis jobs and peer fills.
type ridKey struct{}

// WithRequestID returns ctx carrying a request ID.
func WithRequestID(ctx context.Context, rid string) context.Context {
	if rid == "" {
		return ctx
	}
	return context.WithValue(ctx, ridKey{}, rid)
}

// RequestIDFrom extracts the request ID a handler's context carries
// ("" outside a request).
func RequestIDFrom(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey{}).(string)
	return rid
}

// tcKey is the context key carrying the sampled trace context into
// detached jobs, peer fills, forwards, and memo probes.
type tcKey struct{}

// WithTraceContext returns ctx carrying a trace context. Invalid
// contexts are not stored — absence means "not sampled".
func WithTraceContext(ctx context.Context, tc obs.TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, tcKey{}, tc)
}

// TraceContextFrom extracts the sampled trace context a handler's
// context carries; ok=false outside a sampled request.
func TraceContextFrom(ctx context.Context) (obs.TraceContext, bool) {
	tc, ok := ctx.Value(tcKey{}).(obs.TraceContext)
	return tc, ok
}

// maxRequestIDLen bounds accepted client-supplied request IDs.
const maxRequestIDLen = 64

// cleanRequestID accepts a client- or peer-supplied X-Request-Id if it
// is short and printable-safe (no header/log injection); anything else
// is discarded and a fresh ID is minted.
func cleanRequestID(rid string) string {
	if rid == "" || len(rid) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(rid); i++ {
		c := rid[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return ""
		}
	}
	return rid
}

// BuildInfo identifies the serving binary: Go toolchain version and,
// when the binary was built inside a VCS checkout, the revision it was
// built from. Reported in /v1/metrics so a scrape can always tell which
// code produced the numbers.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// readBuildInfo extracts build identity from the binary's embedded
// build information (absent under `go test`, in which case only the
// runtime version is filled in).
func readBuildInfo() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.VCSRevision = s.Value
		case "vcs.time":
			bi.VCSTime = s.Value
		case "vcs.modified":
			bi.VCSModified = s.Value == "true"
		}
	}
	return bi
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// sampleRequest decides whether a request without an incoming trace
// context starts a new sampled trace (per Config.TraceSample).
func (sv *Server) sampleRequest() bool {
	switch {
	case sv.sample >= 1:
		return true
	case sv.sample <= 0:
		return false
	}
	return rand.Float64() < sv.sample
}

// withObs is the request middleware: it adopts the caller's
// X-Request-Id (so one user request keeps its identity across forwarded
// and peer-filled hops) or assigns one, echoes it back, threads it into
// the request context for detached jobs, opens a per-request span,
// feeds the request-latency histogram and request counter, and emits
// one structured access-log line. For distributed tracing it extracts a
// strictly validated X-Iseld-Trace context (hostile or malformed values
// are discarded and a fresh context minted — the cleanRequestID
// contract), parents the request span under the caller's span, echoes
// the trace header back, threads the context to every outbound hop, and
// stamps the latency bucket's exemplar with the trace ID. Every piece
// degrades to a no-op when its sink is absent; unsampled requests
// behave exactly as if tracing did not exist.
func (sv *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := cleanRequestID(r.Header.Get("X-Request-Id"))
		if rid == "" {
			rid = fmt.Sprintf("req-%06d", sv.reqID.Add(1))
		}
		w.Header().Set("X-Request-Id", rid)
		ctx := WithRequestID(r.Context(), rid)

		tr := sv.obsv.TracerOrNil()
		var sp *obs.Span
		var tc obs.TraceContext
		sampled := false
		if tr != nil {
			name := "http " + r.Method + " " + r.URL.Path
			if in, err := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader)); err == nil {
				if in.Sampled {
					sp = tr.StartRemote(name, in)
					sampled = true
				} else {
					// The caller made a sampling decision; respect it.
					sp = tr.Start(name)
				}
			} else if sv.sampleRequest() {
				sp = tr.StartTrace(name, obs.NewTraceID())
				sampled = true
			} else {
				sp = tr.Start(name)
			}
			sp.SetStr("request_id", rid)
		}
		if sampled {
			tc = sp.Context()
			w.Header().Set(obs.TraceHeader, tc.Header())
			ctx = WithTraceContext(ctx, tc)
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		d := time.Since(t0)
		sp.SetInt("status", int64(sw.status)).EndWith(d)
		if m := sv.obsv.MetricsOrNil(); m != nil {
			h := m.Histogram("http_request_duration_ns",
				"HTTP request latency", "path", r.URL.Path)
			if sampled {
				h.ObserveExemplar(d.Nanoseconds(), tc.TraceID.String())
			} else {
				h.Observe(d.Nanoseconds())
			}
			m.Counter("http_requests_total",
				"HTTP requests served", "path", r.URL.Path, "status", itoaStatus(sw.status)).Add(1)
		}
		if sv.logger != nil {
			args := []any{
				"id", rid,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"dur_ms", float64(d.Nanoseconds()) / 1e6,
				"remote", r.RemoteAddr,
			}
			if sampled {
				args = append(args, "trace", tc.TraceID.String())
			}
			sv.logger.Info("request", args...)
		}
	})
}

// itoaStatus formats the small set of HTTP statuses without fmt.
func itoaStatus(s int) string {
	b := [3]byte{byte('0' + s/100%10), byte('0' + s/10%10), byte('0' + s%10)}
	return string(b[:])
}

// registerObsRoutes mounts the observability surface: Prometheus text
// exposition, the Chrome trace-event dump of recent spans, and pprof.
func (sv *Server) registerObsRoutes() {
	sv.mux.HandleFunc("GET /metrics", sv.handleProm)
	sv.mux.HandleFunc("GET /v1/trace", sv.handleTrace)
	sv.mux.HandleFunc("GET /v1/trace/{traceId}", sv.handleTraceByID)
	sv.mux.HandleFunc("/debug/pprof/", pprof.Index)
	sv.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	sv.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	sv.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	sv.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// handleProm serves the metrics registry in Prometheus text format
// 0.0.4, histogram quantile gauges included. With no registry attached
// the body is empty but still well-formed.
//
// Exemplar annotations are not valid 0.0.4 — a classic Prometheus
// scraper rejects the whole scrape on the first annotated bucket line —
// so they are served only on explicit opt-in via ?exemplars=1, which
// switches the response to OpenMetrics-style exposition (OpenMetrics
// content type, `# EOF` terminator). The gate is a query parameter
// rather than Accept negotiation on purpose: the emitter is only
// OpenMetrics-*style* (bare counter names, no _total suffixes), so
// advertising it to a negotiating Prometheus server would trade one
// scrape failure for another.
func (sv *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	exemplars := r.URL.Query().Get("exemplars") == "1"
	if exemplars {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	}
	m := sv.obsv.MetricsOrNil()
	if m == nil {
		return
	}
	if exemplars {
		m.WritePromExemplars(w)
		m.WritePromQuantiles(w)
		io.WriteString(w, "# EOF\n")
		return
	}
	m.WriteProm(w)
	m.WritePromQuantiles(w)
}

// handleTrace serves the tracer's recent spans as Chrome trace-event
// JSON (load into chrome://tracing or Perfetto).
func (sv *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := sv.obsv.TracerOrNil()
	if tr == nil {
		sv.fail(w, http.StatusNotFound, errNoTracer)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tr.WriteTraceJSON(w)
}

// registerGauges mirrors the service's atomic counters into the
// registry as callback gauges, so the Prometheus surface and the JSON
// /v1/metrics snapshot read the same storage and cannot disagree.
func (sv *Server) registerGauges() {
	m := sv.obsv.MetricsOrNil()
	if m == nil {
		return
	}
	mirror := func(name, help string, fn func() int64) {
		m.GaugeFunc("iseld_"+name, help, fn)
	}
	mirror("cache_hits", "requests served from the in-memory cache",
		func() int64 { return int64(sv.metrics.CacheHits.Load()) })
	mirror("disk_hits", "requests served from the disk artifact layer",
		func() int64 { return int64(sv.metrics.DiskHits.Load()) })
	mirror("joins", "requests deduplicated onto an in-flight synthesis",
		func() int64 { return int64(sv.metrics.Joins.Load()) })
	mirror("synth_runs", "full synthesis executions",
		func() int64 { return int64(sv.metrics.SynthRuns.Load()) })
	mirror("incr_runs", "incremental resyntheses served from shards",
		func() int64 { return int64(sv.metrics.IncrRuns.Load()) })
	mirror("partial_results", "deadline-curtailed synthesis results",
		func() int64 { return int64(sv.metrics.PartialRes.Load()) })
	mirror("errors", "requests answered with an error status",
		func() int64 { return int64(sv.metrics.Errors.Load()) })
	mirror("selections", "programs lowered by /v1/select",
		func() int64 { return int64(sv.metrics.Selections.Load()) })
	mirror("peer_fills", "cache misses filled from a peer replica",
		func() int64 { return int64(sv.metrics.PeerFills.Load()) })
	mirror("artifacts_served", "artifact fills served to peer replicas",
		func() int64 { return int64(sv.metrics.ArtifactServed.Load()) })
	mirror("batch_programs", "programs received through /v1/select/batch",
		func() int64 { return int64(sv.metrics.BatchPrograms.Load()) })
	mirror("jobs_submitted", "async jobs admitted through /v1/jobs",
		func() int64 { return int64(sv.metrics.JobsSubmitted.Load()) })
	mirror("jobs_active", "async jobs queued or running now",
		func() int64 { return int64(sv.jobs.activeCount()) })
	mirror("cached_entries", "libraries resident in the memory cache",
		func() int64 { return int64(sv.store.MemLen()) })
	mirror("queue_depth", "synthesis jobs waiting in the queue",
		func() int64 { return int64(sv.sched.QueueDepth()) })
	mirror("in_flight", "synthesis jobs running now",
		func() int64 { return sv.sched.InFlight() })
	mirror("uptime_seconds", "seconds since the server started",
		func() int64 { return int64(time.Since(sv.start).Seconds()) })
}
