package service

import (
	"context"
	"fmt"
	"net/http"

	"iselgen/internal/obs"
)

// TraceCollector gathers one trace's spans from ring peers — the
// cluster layer's hook into fleet trace assembly. Implementations must
// be cache-only end to end (peers answer from their span rings, never
// create work) and loop-guarded: the peer request carries
// ForwardedHeader, so a queried peer answers strictly locally and two
// replicas can never chase a trace around the ring. Self names this
// replica in assembled traces.
type TraceCollector interface {
	CollectTraceSpans(ctx context.Context, traceID string) []obs.TraceSpan
	Self() string
}

// SetTraceCollector attaches the cluster's trace-collection hook. Call
// it after New and before the handler serves traffic, like SetFiller.
func (sv *Server) SetTraceCollector(c TraceCollector) { sv.collector = c }

// nodeName is how this replica labels its spans in fleet traces.
func (sv *Server) nodeName() string {
	if sv.collector != nil {
		return sv.collector.Self()
	}
	return "local"
}

// TraceSpansResponse answers GET /v1/trace/{traceId}?format=spans and
// the loop-guarded peer form: the raw merged (or, for peers, local)
// span set before Chrome assembly.
type TraceSpansResponse struct {
	TraceID string          `json:"trace_id"`
	Node    string          `json:"node"`
	Spans   []obs.TraceSpan `json:"spans"`
}

// handleTraceByID assembles one trace fleet-wide: this replica's span
// ring plus — unless the request already crossed the fleet — every ring
// peer's, merged with clock-offset normalization into a single
// Chrome/Perfetto trace. Peer queries are cache-only reads of bounded
// rings; a request carrying ForwardedHeader is answered strictly from
// the local ring (200 with possibly-empty spans, so the collecting
// replica can merge without treating "no spans here" as failure).
func (sv *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	tr := sv.obsv.TracerOrNil()
	if tr == nil {
		sv.fail(w, http.StatusNotFound, errNoTracer)
		return
	}
	tid, err := obs.ParseTraceID(r.PathValue("traceId"))
	if err != nil {
		sv.fail(w, http.StatusBadRequest, err)
		return
	}
	node := sv.nodeName()
	spans := tr.ExportTraceSpans(tid, node)
	if r.Header.Get(ForwardedHeader) != "" {
		writeJSON(w, http.StatusOK, TraceSpansResponse{TraceID: tid.String(), Node: node, Spans: spans})
		return
	}
	if sv.collector != nil {
		spans = append(spans, sv.collector.CollectTraceSpans(r.Context(), tid.String())...)
	}
	if len(spans) == 0 {
		sv.fail(w, http.StatusNotFound,
			fmt.Errorf("no spans recorded for trace %s (sampled? aged out of the rings?)", tid))
		return
	}
	if r.URL.Query().Get("format") == "spans" {
		writeJSON(w, http.StatusOK, TraceSpansResponse{TraceID: tid.String(), Node: node, Spans: spans})
		return
	}
	f, _ := obs.AssembleTrace(spans)
	writeJSON(w, http.StatusOK, f)
}
