// Package service turns the synthesis pipeline into a long-lived
// selection service: rule libraries become content-addressed artifacts
// (§VI-A makes them persistable; synthesis is the expensive step, so it
// should run once per (spec, config) fingerprint), synthesis jobs run on
// a bounded scheduler with per-request deadlines, and an HTTP/JSON API
// serves synthesize/select/metrics requests with backpressure and
// graceful degradation.
package service

import (
	"context"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"iselgen/internal/core"
	"iselgen/internal/isa"
	"iselgen/internal/isel"
	"iselgen/internal/rules"
	"iselgen/internal/term"
)

// Entry is one cached synthesis artifact: the rule library together with
// the builder/target it was verified against (rules hold pointers into
// both, so they travel as a unit). Entries are immutable once published;
// the library is frozen so concurrent selectors can share it.
type Entry struct {
	Fingerprint string
	TargetName  string
	B           *term.Builder
	Target      *isa.Target
	Lib         *rules.Library
	// Partial marks a deadline-curtailed synthesis: only index-proven
	// rules are present. Partial entries are returned to their waiters
	// but never cached — a later request re-synthesizes in full.
	Partial bool
	Stats   core.StageStats
	Elapsed time.Duration
	// Origin records how the entry came to exist: "synthesized",
	// "incremental" (resynthesized from a lineage's shards), or "disk".
	Origin string
	// Reused and Resynth count, for incremental entries, how many rules
	// were carried over re-verified versus produced by synthesis.
	Reused  int
	Resynth int
}

// Materializer reconstructs the (builder, target) pair a persisted
// library must be re-verified against; the caller owns the mapping from
// fingerprint to spec source, so the store stays target-agnostic.
type Materializer func() (*term.Builder, *isa.Target, error)

// Flight is one in-progress synthesis that deduplicated requests wait
// on: N concurrent requests for the same fingerprint trigger exactly one
// synthesis.
type Flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Wait blocks until the flight resolves or the waiter's own context
// expires (a waiter with a short deadline gives up without cancelling
// the shared job).
func (f *Flight) Wait(ctx context.Context) (*Entry, error) {
	select {
	case <-f.done:
		return f.entry, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Store is the content-addressed rule-library cache: an in-memory layer,
// an optional disk layer persisted via the Emit/parse round-trip
// (re-verified on load, DESIGN invariant 8), and singleflight
// deduplication of concurrent misses.
type Store struct {
	dir    string // "" = memory only
	maxMem int    // LRU cap on in-memory entries; 0 = unbounded
	logf   func(format string, args ...any)

	mu        sync.Mutex
	mem       map[string]*Entry
	used      map[string]uint64 // fingerprint -> last-touch tick
	clock     uint64
	evictions uint64
	flights   map[string]*Flight

	// Disk persists ride an asynchronous writer so Complete never holds
	// waiters behind filesystem latency; Flush drains the queue (the
	// shutdown "flush the disk cache" step). A full queue degrades to a
	// synchronous write in the caller — writes are never dropped.
	persistCh chan persistReq
	pending   atomic.Int64
	writerWG  sync.WaitGroup
	closeOnce sync.Once
}

// persistReq is one queued disk write.
type persistReq struct {
	fp string
	e  *Entry
}

// NewStore creates a store; dir, when non-empty, is created and used as
// the disk layer. maxMem, when positive, caps the in-memory layer: the
// least-recently-used entry is evicted on insertion past the cap (the
// disk layer, when present, still holds the artifact, so an evicted
// fingerprint re-verifies from disk rather than re-synthesizing).
func NewStore(dir string, maxMem int) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	s := &Store{dir: dir, maxMem: maxMem, logf: log.Printf,
		mem: map[string]*Entry{}, used: map[string]uint64{}, flights: map[string]*Flight{}}
	if dir != "" {
		s.persistCh = make(chan persistReq, 64)
		s.writerWG.Add(1)
		go func() {
			defer s.writerWG.Done()
			for req := range s.persistCh {
				s.persist(req.fp, req.e)
				s.pending.Add(-1)
			}
		}()
	}
	return s, nil
}

// SetLogger redirects the store's warnings — quarantined disk artifacts
// — away from the standard logger (nil silences them).
func (s *Store) SetLogger(logf func(format string, args ...any)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// Entries snapshots the in-memory layer. Entries are immutable once
// published, so sharing the pointers is safe; the slice itself is fresh.
// Provenance queries use this to walk every resident library.
func (s *Store) Entries() []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Entry, 0, len(s.mem))
	for _, e := range s.mem {
		out = append(out, e)
	}
	return out
}

// Peek returns the in-memory entry for a fingerprint without joining or
// creating a flight — the cache-only probe peers use for hedged reads
// (a probe must never trigger work).
func (s *Store) Peek(fp string) *Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.mem[fp]; e != nil {
		s.clock++
		s.used[fp] = s.clock
		return e
	}
	return nil
}

// Flush blocks until every queued disk persist has been written (or ctx
// expires). New writes enqueued while flushing extend the wait.
func (s *Store) Flush(ctx context.Context) error {
	for s.pending.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	return nil
}

// Close drains the persist queue and stops the writer. Safe to call
// more than once; the store must not be written to afterwards.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		if s.persistCh != nil {
			close(s.persistCh)
		}
	})
	s.writerWG.Wait()
}

// Acquire is the atomic admission step for a fingerprint: a memory hit
// returns the entry directly; otherwise the caller either joins an
// existing flight (owner=false) or is appointed owner of a new one
// (owner=true) and must eventually call Complete.
func (s *Store) Acquire(fp string) (e *Entry, fl *Flight, owner bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.mem[fp]; e != nil {
		s.clock++
		s.used[fp] = s.clock
		return e, nil, false
	}
	if fl := s.flights[fp]; fl != nil {
		return nil, fl, false
	}
	fl = &Flight{done: make(chan struct{})}
	s.flights[fp] = fl
	return nil, fl, true
}

// Complete resolves the owner's flight, publishing the entry to every
// waiter. Complete (not the synthesis job) decides cacheability: full
// results enter the memory layer and, when a disk layer exists, are
// persisted; partial results and errors are broadcast but not cached.
func (s *Store) Complete(fp string, e *Entry, err error) {
	s.mu.Lock()
	fl := s.flights[fp]
	delete(s.flights, fp)
	if e != nil && err == nil && !e.Partial {
		s.mem[fp] = e
		s.clock++
		s.used[fp] = s.clock
		s.evictLocked()
	}
	s.mu.Unlock()
	if fl != nil {
		fl.entry, fl.err = e, err
		close(fl.done)
	}
	if s.dir != "" && e != nil && err == nil && !e.Partial &&
		(e.Origin == "synthesized" || e.Origin == "incremental" || e.Origin == "peer") {
		// Best-effort and asynchronous; the memory layer already has it.
		// A full queue falls back to writing inline rather than dropping.
		s.pending.Add(1)
		select {
		case s.persistCh <- persistReq{fp, e}:
		default:
			s.persist(fp, e)
			s.pending.Add(-1)
		}
	}
}

// evictLocked drops least-recently-used entries until the memory layer
// is back under its cap. Caller holds s.mu.
func (s *Store) evictLocked() {
	if s.maxMem <= 0 {
		return
	}
	for len(s.mem) > s.maxMem {
		victim, oldest := "", uint64(0)
		for fp, tick := range s.used {
			if victim == "" || tick < oldest {
				victim, oldest = fp, tick
			}
		}
		delete(s.mem, victim)
		delete(s.used, victim)
		s.evictions++
	}
}

// MemLen returns the number of in-memory entries.
func (s *Store) MemLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Evictions returns how many entries the LRU cap has evicted.
func (s *Store) Evictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp+".rules")
}

// persist writes the library through the textual Emit/parse round-trip
// format atomically (tmp + rename), so a crashed daemon never leaves a
// half-written artifact for the next one to trust.
func (s *Store) persist(fp string, e *Entry) error {
	if s.dir == "" {
		return nil
	}
	// SaveLibraryFor records the fingerprint of every instruction of the
	// target — not just the ones rules use — so a future daemon can run
	// the incremental planner against the persisted artifact too.
	text := isel.SaveLibraryFor(e.Lib, e.Target)
	tmp, err := os.CreateTemp(s.dir, "."+fp+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(text); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.path(fp))
}

// LoadDisk attempts the disk layer for a fingerprint: the persisted text
// is parsed against a freshly materialized target and every rule is
// re-verified (corrupt or stale artifacts are treated as misses, never
// served). Called by the flight owner before falling back to synthesis.
func (s *Store) LoadDisk(fp string, mat Materializer) (*Entry, bool) {
	if s.dir == "" {
		return nil, false
	}
	text, err := os.ReadFile(s.path(fp))
	if err != nil {
		return nil, false
	}
	t0 := time.Now()
	b, tgt, err := mat()
	if err != nil {
		return nil, false
	}
	lib, err := isel.LoadLibrary(b, tgt, string(text))
	if err != nil {
		// A library that no longer verifies is poison for serving but
		// evidence for debugging: quarantine it aside (never fail the
		// load) so the slot re-synthesizes cleanly while the artifact
		// survives for post-mortems.
		q := s.path(fp) + ".quarantine"
		if rerr := os.Rename(s.path(fp), q); rerr != nil {
			os.Remove(s.path(fp)) // quarantine failed; fall back to dropping
			q = "(unlink)"
		}
		s.mu.Lock()
		logf := s.logf
		s.mu.Unlock()
		logf("service: disk artifact %s failed verification (%v); quarantined to %s", fp, err, q)
		return nil, false
	}
	lib.Freeze()
	return &Entry{
		Fingerprint: fp,
		TargetName:  tgt.Name,
		B:           b,
		Target:      tgt,
		Lib:         lib,
		Elapsed:     time.Since(t0),
		Origin:      "disk",
	}, true
}
