package service

import (
	"sync"
	"sync/atomic"

	"iselgen/internal/core"
	"iselgen/internal/obs"
	"iselgen/internal/solver"
)

// Metrics aggregates service-level counters plus the summed per-stage
// synthesis timings lifted from the Synthesizer worker timers. Counters
// are atomics; the StageStats sum is guarded by a mutex since it is a
// multi-field merge.
type Metrics struct {
	CacheHits  atomic.Uint64 // served from the in-memory layer
	DiskHits   atomic.Uint64 // served from the disk layer (re-verified)
	Joins      atomic.Uint64 // deduplicated onto an in-flight synthesis
	SynthRuns  atomic.Uint64 // full synthesis executions
	PartialRes atomic.Uint64 // deadline-curtailed (partial) results

	IncrRuns     atomic.Uint64 // incremental resyntheses served from shards
	RulesReused  atomic.Uint64 // rules carried over re-verified (zero solver queries)
	RulesResynth atomic.Uint64 // rules synthesized by incremental runs
	Errors       atomic.Uint64 // requests answered with an error status
	Selections   atomic.Uint64 // programs lowered by /v1/select and /v1/select/batch

	PeerFills      atomic.Uint64 // cache misses filled from a peer replica's artifact
	ArtifactServed atomic.Uint64 // /v1/artifact fills served to peers
	BatchPrograms  atomic.Uint64 // programs received through /v1/select/batch
	JobsSubmitted  atomic.Uint64 // async jobs admitted through /v1/jobs

	MemoServed   atomic.Uint64 // /v1/solver/query answers from the local verdict memo
	MemoPeerHits atomic.Uint64 // solver-query misses answered by a hedged peer probe

	mu     sync.Mutex
	stages core.StageStats
}

// AddStages merges one synthesis run's stage timings into the running sum.
func (m *Metrics) AddStages(ss core.StageStats) {
	m.mu.Lock()
	m.stages.Accumulate(ss)
	m.mu.Unlock()
}

// Stages returns a copy of the summed per-stage timings.
func (m *Metrics) Stages() core.StageStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stages
}

// MetricsSnapshot is the JSON shape of GET /v1/metrics.
type MetricsSnapshot struct {
	UptimeSec      float64         `json:"uptime_sec"`
	Build          BuildInfo       `json:"build"`
	CacheHits      uint64          `json:"cache_hits"`
	DiskHits       uint64          `json:"disk_hits"`
	Joins          uint64          `json:"joins"`
	SynthRuns      uint64          `json:"synth_runs"`
	IncrRuns       uint64          `json:"incr_runs"`
	RulesReused    uint64          `json:"rules_reused"`
	RulesResynth   uint64          `json:"rules_resynthesized"`
	PartialResults uint64          `json:"partial_results"`
	Errors         uint64          `json:"errors"`
	Selections     uint64          `json:"selections"`
	PeerFills      uint64          `json:"peer_fills"`
	ArtifactServed uint64          `json:"artifacts_served"`
	BatchPrograms  uint64          `json:"batch_programs"`
	JobsSubmitted  uint64          `json:"jobs_submitted"`
	JobsActive     int             `json:"jobs_active"`
	CachedEntries  int             `json:"cached_entries"`
	Evictions      uint64          `json:"evictions"`
	ShardLineages  int             `json:"shard_lineages"`
	Shards         int             `json:"shards"`
	QueueDepth     int             `json:"queue_depth"`
	QueueCapacity  int             `json:"queue_capacity"`
	InFlight       int64           `json:"in_flight"`
	JobsCompleted  uint64          `json:"jobs_completed"`
	JobsRejected   uint64          `json:"jobs_rejected"`
	Stages         core.StageStats `json:"stages"`

	// Solver verdict-memo surface (the process-wide solver.Shared store):
	// lookup traffic, resident entries, journal accounting, and the
	// query-endpoint counters.
	SolverMemoHits    int64               `json:"solver_memo_hits"`
	SolverMemoMisses  int64               `json:"solver_memo_misses"`
	SolverMemoStores  int64               `json:"solver_memo_stores"`
	SolverMemoEntries int                 `json:"solver_memo_entries"`
	SolverJournal     solver.JournalStats `json:"solver_journal"`
	MemoServed        uint64              `json:"memo_probes_served"`
	MemoPeerHits      uint64              `json:"memo_peer_hits"`

	// TraceExemplars mirrors the Prometheus exposition's exemplar
	// annotations into JSON: for each populated latency bucket, the most
	// recent sampled trace ID that landed there — each resolvable through
	// GET /v1/trace/{traceId}.
	TraceExemplars []obs.HistExemplar `json:"trace_exemplars,omitempty"`
}
