package service

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"iselgen/internal/bench"
	"iselgen/internal/core"
	"iselgen/internal/cost"
	"iselgen/internal/enc"
	"iselgen/internal/gmir"
	"iselgen/internal/harness"
	"iselgen/internal/incr"
	"iselgen/internal/isa"
	"iselgen/internal/isa/aarch64"
	"iselgen/internal/isa/riscv"
	"iselgen/internal/isa/x86"
	"iselgen/internal/isel"
	"iselgen/internal/obs"
	"iselgen/internal/rules"
	"iselgen/internal/sim"
	"iselgen/internal/solver"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

// fingerprintScheme versions the cache key derivation; bump it whenever
// the synthesis pipeline changes in a way that invalidates old artifacts.
const fingerprintScheme = "iselgen-cache-v1"

// maxBodyBytes bounds request bodies (inline specs included).
const maxBodyBytes = 1 << 20

// Config configures a Server.
type Config struct {
	// Workers is the synthesis worker pool size (jobs running at once).
	Workers int
	// QueueDepth bounds the waiting-job queue; a full queue answers 429.
	QueueDepth int
	// CacheDir, when non-empty, enables the disk artifact layer.
	CacheDir string
	// CacheEntries, when positive, caps the in-memory library cache;
	// past the cap the least-recently-used entry is evicted (0 = unbounded).
	CacheEntries int
	// Synth is the server-wide synthesis configuration; its semantic
	// knobs are part of every fingerprint.
	Synth core.Config
	// MaxPatterns caps the corpus pattern pool per synthesis (0 = all).
	MaxPatterns int
	// DefaultTimeout is the per-job synthesis deadline applied when a
	// request does not set timeout_ms (0 = no deadline).
	DefaultTimeout time.Duration
	// MaxJobs caps the async jobs (queued + running) admitted through
	// POST /v1/jobs; past the cap submissions answer 429 (0 = default 64).
	MaxJobs int
	// Obs, when set, enables the observability surface: per-request
	// spans (GET /v1/trace), the Prometheus registry (GET /metrics), and
	// decision provenance. It is threaded into every synthesis job and
	// selection backend. Purely observational — never fingerprinted.
	Obs *obs.Obs
	// TraceSample is the fraction of trace-context-less requests that
	// start a new sampled distributed trace (0 = default 1.0: sample
	// everything; negative = never start traces here, though a valid
	// incoming X-Iseld-Trace context is always honored). Sampled
	// requests get a 128-bit trace ID that crosses every fleet hop and
	// resolves through GET /v1/trace/{traceId}.
	TraceSample float64
	// Logger, when set, receives one structured access-log line per
	// request (with request IDs) plus server lifecycle events.
	Logger *slog.Logger
}

// Server is the selection service: HTTP handlers over the artifact
// store and the job scheduler.
type Server struct {
	cfg       Config
	store     *Store
	shards    *ShardStore
	sched     *Scheduler
	metrics   Metrics
	mux       *http.ServeMux
	jobs      *jobTable
	filler    RemoteFiller
	prober    MemoProber
	collector TraceCollector
	sample    float64

	obsv    *obs.Obs
	logger  *slog.Logger
	start   time.Time
	build   BuildInfo
	reqID   atomic.Uint64
	closing atomic.Bool

	// testJobGate, when set, is invoked at the start of every scheduled
	// job — the in-package tests use it to hold jobs in a deterministic
	// "running" state while they assert on singleflight and backpressure.
	testJobGate func()
}

// errNoTracer answers GET /v1/trace on a server started without one.
var errNoTracer = errors.New("no tracer attached (start the server with observability enabled)")

// New builds a Server (and its store and scheduler) from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 8
	}
	store, err := NewStore(cfg.CacheDir, cfg.CacheEntries)
	if err != nil {
		return nil, err
	}
	if cfg.Logger != nil {
		lg := cfg.Logger
		store.SetLogger(func(format string, args ...any) {
			lg.Warn(fmt.Sprintf(format, args...))
		})
	}
	// Thread the observability sink into every synthesis job the server
	// runs (safe: Obs is not part of any cache fingerprint).
	if cfg.Synth.Obs == nil {
		cfg.Synth.Obs = cfg.Obs
	}
	sample := cfg.TraceSample
	switch {
	case sample < 0:
		sample = 0
	case sample == 0:
		sample = 1
	case sample > 1:
		sample = 1
	}
	sv := &Server{
		cfg:    cfg,
		store:  store,
		shards: NewShardStore(),
		sched:  NewScheduler(cfg.Workers, cfg.QueueDepth),
		mux:    http.NewServeMux(),
		jobs:   newJobTable(cfg.MaxJobs),
		sample: sample,
		obsv:   cfg.Obs,
		logger: cfg.Logger,
		start:  time.Now(),
		build:  readBuildInfo(),
	}
	sv.mux.HandleFunc("POST /v1/synthesize", sv.handleSynthesize)
	sv.mux.HandleFunc("POST /v1/select", sv.handleSelect)
	sv.mux.HandleFunc("POST /v1/select/batch", sv.handleSelectBatch)
	sv.mux.HandleFunc("POST /v1/jobs", sv.handleJobSubmit)
	sv.mux.HandleFunc("GET /v1/jobs", sv.handleJobList)
	sv.mux.HandleFunc("GET /v1/jobs/{id}", sv.handleJobGet)
	sv.mux.HandleFunc("POST /v1/artifact", sv.handleArtifact)
	sv.mux.HandleFunc("GET /v1/solver/query", sv.handleSolverQueryGet)
	sv.mux.HandleFunc("POST /v1/solver/query", sv.handleSolverQueryPost)
	sv.mux.HandleFunc("GET /v1/rules", sv.handleRuleList)
	sv.mux.HandleFunc("GET /v1/rules/{fingerprint}/why", sv.handleRuleWhy)
	sv.mux.HandleFunc("GET /v1/metrics", sv.handleMetrics)
	sv.mux.HandleFunc("GET /healthz", sv.handleHealthz)
	sv.registerObsRoutes()
	sv.registerGauges()
	return sv, nil
}

// Handler returns the HTTP handler tree, wrapped in the request
// middleware (request IDs, per-request spans, access log).
func (sv *Server) Handler() http.Handler { return sv.withObs(sv.mux) }

// Routes returns the unwrapped route tree. The cluster layer mounts it
// inside its own mux (so forwarding can intercept /v1/select) and wraps
// the whole thing in Middleware exactly once — giving forwarded
// requests the same request span, trace context, access-log line, and
// latency exemplar as locally served ones.
func (sv *Server) Routes() http.Handler { return sv.mux }

// Middleware wraps h in the request middleware (request IDs, trace
// propagation, per-request spans, metrics, access log). Pair with
// Routes when composing a larger handler tree around the service.
func (sv *Server) Middleware(h http.Handler) http.Handler { return sv.withObs(h) }

// Close drains the scheduler: queued and in-flight synthesis jobs finish
// (completing their flights) before Close returns, then the store's
// persist queue is flushed and its writer stopped.
func (sv *Server) Close() {
	sv.closing.Store(true)
	sv.jobs.wait(context.Background())
	sv.sched.Close()
	sv.store.Close()
}

// Shutdown is the graceful half of Close: it stops admitting async
// jobs, drains queued and in-flight work (async jobs included) under
// the context's deadline, and flushes the disk-cache persist queue. On
// deadline expiry it returns the context error with whatever drained;
// the store writer keeps running so a follow-up Close stays safe.
func (sv *Server) Shutdown(ctx context.Context) error {
	sv.closing.Store(true)
	done := make(chan struct{})
	go func() {
		sv.jobs.wait(ctx)
		sv.sched.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return sv.store.Flush(ctx)
}

// targetDef is everything the service needs to know about one target:
// how to fingerprint it (spec source), how to materialize it, and —
// for the builtin selection targets — how to build a backend around a
// synthesized library.
type targetDef struct {
	name    string
	spec    string
	inline  bool // spec arrived in the request, not resolved from a builtin
	load    func(b *term.Builder) (*isa.Target, error)
	backend func(tgt *isa.Target, lib *rules.Library) *isel.Backend
}

// resolveTarget maps a request to a target definition: a builtin name,
// or an inline DSL spec (checked up front so malformed specs fail fast
// with a 400 instead of inside a scheduled job).
func (sv *Server) resolveTarget(name, inline string) (targetDef, error) {
	if inline != "" {
		if name == "" {
			name = "inline"
		}
		switch name {
		case "aarch64", "riscv", "x86":
			return targetDef{}, fmt.Errorf("inline spec may not shadow builtin target %q", name)
		}
		if _, err := spec.Check(inline); err != nil {
			return targetDef{}, err
		}
		return targetDef{
			name:   name,
			spec:   inline,
			inline: true,
			load: func(b *term.Builder) (*isa.Target, error) {
				return isa.LoadTarget(b, name, inline, nil, 4)
			},
		}, nil
	}
	switch name {
	case "aarch64":
		return targetDef{name: name, spec: aarch64.Spec(), load: aarch64.Load, backend: isel.NewA64Synth}, nil
	case "riscv":
		return targetDef{name: name, spec: riscv.Spec(), load: riscv.Load, backend: isel.NewRVSynth}, nil
	case "x86":
		return targetDef{name: name, spec: x86.Spec(), load: x86.Load}, nil
	case "":
		return targetDef{}, errors.New("request must set \"target\" or \"spec\"")
	default:
		return targetDef{}, fmt.Errorf("unknown target %q (builtins: aarch64, riscv, x86)", name)
	}
}

// effectiveConfig resolves the server-wide synthesis config for one
// target (wiring in the target's special sequences, §VII-A, and — for
// the builtin selection targets — the target-derived cost model) and
// the resulting content fingerprint. The requested selector and the
// cost-table version both flow into the fingerprint via the config's
// CacheKey, so a greedy-selected artifact can never be answered from a
// cache slot an optimal request populated (or vice versa), and editing
// a cost table invalidates everything stamped under the old one. The
// deadline is deliberately not part of the key: partial results are
// never cached, and a full result is identical whatever budget it ran
// under.
func (sv *Server) effectiveConfig(def targetDef, selector string) (core.Config, string) {
	cfg := sv.cfg.Synth
	if cfg.ExtraSequences == nil {
		cfg.ExtraSequences = harness.ExtraSequences(def.name)
	}
	if cfg.CostModel == nil && def.backend != nil {
		if m, err := harness.CostModel(def.name); err == nil {
			cfg.CostModel = m
		}
	}
	if selector != "" {
		cfg.Selector = selector
	}
	fp := rules.Fingerprint(fingerprintScheme, def.name, def.spec,
		cfg.CacheKey(), fmt.Sprintf("maxpat=%d", sv.cfg.MaxPatterns))
	return cfg, fp
}

// lineageKey identifies the incremental line of descent a request
// belongs to: the full-cache fingerprint *minus the spec text*. Two
// revisions of a spec share a lineage, which is exactly what lets the
// shard store answer the second revision from the first one's shards.
func (sv *Server) lineageKey(def targetDef, cfg core.Config) string {
	return rules.Fingerprint(fingerprintScheme, "lineage", def.name,
		cfg.CacheKey(), fmt.Sprintf("maxpat=%d", sv.cfg.MaxPatterns))
}

// entryFor implements the cache protocol shared by /v1/synthesize,
// /v1/select (single and batch), /v1/jobs, and /v1/artifact: memory
// hit, or join an in-flight job, or own a new job (disk layer, then —
// with allowPeer — a peer fill from the fingerprint's ring owner, then
// synthesis under the deadline). The returned cache string is the path
// taken: "hit", "disk", "peer", "miss", or "join". On error, the
// returned status is the HTTP code to answer with. allowPeer is false
// exactly when the request *is* a peer fill, so replicas can never fill
// from each other in a cycle.
func (sv *Server) entryFor(ctx context.Context, def targetDef, cfg core.Config, fp string, timeout time.Duration, allowPeer bool) (e *Entry, cache string, status int, err error) {
	e, fl, owner := sv.store.Acquire(fp)
	if e != nil {
		sv.metrics.CacheHits.Add(1)
		return e, "hit", http.StatusOK, nil
	}
	if owner {
		lk := sv.lineageKey(def, cfg)
		rid := RequestIDFrom(ctx)
		// The flight outlives the HTTP request (joiners may be served
		// after the opener disconnects), so the sampled trace context is
		// captured by value here and re-opened as a "synth flight" span
		// inside the detached job — the deep synthesis work then shows up
		// in the fleet trace parented under the request span that owned
		// the flight.
		tc, _ := TraceContextFrom(ctx)
		job := func() {
			if sv.testJobGate != nil {
				sv.testJobGate()
			}
			var fsp *obs.Span
			if tc.Valid() {
				fsp = sv.obsv.TracerOrNil().StartRemote("synth flight", tc).
					SetStr("fingerprint", fp)
			}
			if ent, ok := sv.store.LoadDisk(fp, func() (*term.Builder, *isa.Target, error) {
				b := term.NewBuilder()
				tgt, err := def.load(b)
				return b, tgt, err
			}); ok {
				sv.metrics.DiskHits.Add(1)
				sv.store.Complete(fp, ent, nil)
				sv.shards.Update(lk, ent.Target, ent.Lib)
				fsp.SetStr("origin", "disk").End()
				return
			}
			// Disk miss: ask the fingerprint's ring owner before doing any
			// work ourselves — across the fleet, only the owner ever
			// synthesizes a key, so N replicas missing at once still cost
			// one synthesis (the owner's local singleflight collapses the
			// concurrent fills).
			if allowPeer && sv.filler != nil {
				if ent, ok := sv.fillFromPeer(def, fp, cfg.Selector, rid, timeout, fsp.Context()); ok {
					sv.metrics.PeerFills.Add(1)
					sv.store.Complete(fp, ent, nil)
					if !ent.Partial {
						sv.shards.Update(lk, ent.Target, ent.Lib)
					}
					fsp.SetStr("origin", "peer").End()
					return
				}
			}
			// Local fill: if this lineage has completed before (same target
			// name and config, different spec text), resynthesize from its
			// shards instead of from scratch.
			ent, ok := sv.runIncremental(def, cfg, fp, lk, timeout)
			var err error
			origin := "incremental"
			if !ok {
				ent, err = sv.runSynthesis(def, cfg, fp, timeout)
				origin = "synthesized"
			}
			sv.store.Complete(fp, ent, err)
			if err == nil && ent != nil && !ent.Partial {
				sv.shards.Update(lk, ent.Target, ent.Lib)
			}
			if err != nil {
				origin = "error"
			}
			fsp.SetStr("origin", origin).End()
		}
		if err := sv.sched.Submit(job); err != nil {
			// The flight must still resolve or joiners would hang.
			sv.store.Complete(fp, nil, err)
			status := http.StatusServiceUnavailable
			if errors.Is(err, ErrQueueFull) {
				status = http.StatusTooManyRequests
			}
			return nil, "", status, err
		}
	} else {
		sv.metrics.Joins.Add(1)
	}
	ent, err := fl.Wait(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return nil, "", http.StatusGatewayTimeout, err
		}
		return nil, "", http.StatusInternalServerError, err
	}
	switch {
	case !owner:
		cache = "join"
	case ent.Origin == "disk":
		cache = "disk"
	case ent.Origin == "incremental":
		cache = "incr"
	case ent.Origin == "peer":
		cache = "peer"
	default:
		cache = "miss"
	}
	return ent, cache, http.StatusOK, nil
}

// runIncremental attempts to answer a full-cache miss from the
// lineage's shards: load the new spec, diff its instruction
// fingerprints against the shards' provenance, re-verify the rules
// whose support is unchanged (randomized evaluation, zero solver
// queries), and synthesize only the remainder. Returns ok=false when
// the lineage has no prior result or the resynthesis fails — the
// caller then falls back to a from-scratch run.
func (sv *Server) runIncremental(def targetDef, cfg core.Config, fp, lk string, timeout time.Duration) (*Entry, bool) {
	art := sv.shards.Artifact(lk)
	if art == nil {
		return nil, false
	}
	t0 := time.Now()
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()
	b := term.NewBuilder()
	tgt, err := def.load(b)
	if err != nil {
		return nil, false
	}
	// The corpus is derived the same way runSynthesis derives it, which
	// is the consistency the incremental planner requires.
	pats := harness.CorpusPatterns(def.name, sv.cfg.MaxPatterns)
	lib, rep, err := incr.Resynthesize(b, tgt, art, incr.Options{
		Config: cfg, Patterns: pats, Context: ctx,
	})
	if err != nil {
		return nil, false
	}
	lib.Freeze()
	sv.metrics.IncrRuns.Add(1)
	sv.metrics.RulesReused.Add(uint64(rep.Reused))
	sv.metrics.RulesResynth.Add(uint64(rep.Resynthesized))
	if rep.Curtailed {
		sv.metrics.PartialRes.Add(1)
	}
	sv.metrics.AddStages(rep.Stats)
	return &Entry{
		Fingerprint: fp,
		TargetName:  def.name,
		B:           b,
		Target:      tgt,
		Lib:         lib,
		Partial:     rep.Curtailed,
		Stats:       rep.Stats,
		Elapsed:     time.Since(t0),
		Origin:      "incremental",
		Reused:      rep.Reused,
		Resynth:     rep.Resynthesized,
	}, true
}

// runSynthesis executes one full pipeline run — load target, build the
// sequence pool, synthesize the corpus patterns — under the job's own
// deadline (detached from any HTTP request context, so a disconnecting
// client cannot degrade a shared flight to a partial result).
func (sv *Server) runSynthesis(def targetDef, cfg core.Config, fp string, timeout time.Duration) (*Entry, error) {
	t0 := time.Now()
	// The deadline clock starts before pool construction: the budget is
	// for the whole job, and an exhausted budget degrades the wave loop
	// to index-only lookups rather than aborting with nothing.
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()
	b := term.NewBuilder()
	tgt, err := def.load(b)
	if err != nil {
		return nil, err
	}
	syn := core.New(b, tgt, cfg)
	syn.BuildPool()
	lib := rules.NewLibrary(def.name)
	lib.Model = cfg.CostModel
	pats := harness.CorpusPatterns(def.name, sv.cfg.MaxPatterns)
	partial := syn.SynthesizeCtx(ctx, pats, lib)
	lib.Freeze()
	sv.metrics.SynthRuns.Add(1)
	if partial {
		sv.metrics.PartialRes.Add(1)
	}
	sv.metrics.AddStages(syn.Stats.Snapshot())
	return &Entry{
		Fingerprint: fp,
		TargetName:  def.name,
		B:           b,
		Target:      tgt,
		Lib:         lib,
		Partial:     partial,
		Stats:       syn.Stats.Snapshot(),
		Elapsed:     time.Since(t0),
		Origin:      "synthesized",
	}, nil
}

// SynthesizeRequest is the body of POST /v1/synthesize.
type SynthesizeRequest struct {
	// Target names a builtin target (aarch64, riscv, x86) — or, with
	// Spec set, names the inline target (default "inline").
	Target string `json:"target,omitempty"`
	// Spec is inline DSL source for a custom target.
	Spec string `json:"spec,omitempty"`
	// TimeoutMS is the synthesis deadline; on expiry the response is the
	// partial library of index-proven rules with partial=true.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Emit asks for the TableGen-flavoured library text in the response.
	Emit bool `json:"emit,omitempty"`
}

// SynthesizeResponse is the body answering POST /v1/synthesize.
type SynthesizeResponse struct {
	Target      string  `json:"target"`
	Fingerprint string  `json:"fingerprint"`
	Rules       int     `json:"rules"`
	Partial     bool    `json:"partial"`
	Cache       string  `json:"cache"` // hit | disk | miss | join | incr
	ElapsedMS   float64 `json:"elapsed_ms"`
	// Reused and Resynthesized report, for cache=incr responses, how many
	// rules were carried over from the lineage's shards (re-verified, no
	// solver) versus synthesized for the delta.
	Reused        int             `json:"reused_rules,omitempty"`
	Resynthesized int             `json:"resynthesized_rules,omitempty"`
	BySource      map[string]int  `json:"by_source"`
	Stats         core.StageStats `json:"stats"`
	Library       string          `json:"library,omitempty"`
}

func (sv *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	var req SynthesizeRequest
	if !sv.decode(w, r, &req) {
		return
	}
	def, err := sv.resolveTarget(req.Target, req.Spec)
	if err != nil {
		sv.fail(w, http.StatusBadRequest, err)
		return
	}
	cfg, fp := sv.effectiveConfig(def, "")
	timeout := sv.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	e, cache, status, err := sv.entryFor(r.Context(), def, cfg, fp, timeout, true)
	if err != nil {
		sv.fail(w, status, err)
		return
	}
	resp := SynthesizeResponse{
		Target:      e.TargetName,
		Fingerprint: e.Fingerprint,
		Rules:       e.Lib.Len(),
		Partial:     e.Partial,
		Cache:       cache,
		ElapsedMS:   float64(e.Elapsed.Nanoseconds()) / 1e6,
		BySource:    e.Lib.Summarize().BySource,
		Stats:       e.Stats,
	}
	resp.Reused, resp.Resynthesized = e.Reused, e.Resynth
	if req.Emit {
		resp.Library = e.Lib.Emit()
	}
	writeJSON(w, http.StatusOK, resp)
}

// SelectRequest is the body of POST /v1/select: lower one gMIR program
// from the benchmark corpus with the target's synthesized library.
type SelectRequest struct {
	Target string `json:"target"`
	// Workload names a gMIR program from the SPEC-analog suite.
	Workload string `json:"workload,omitempty"`
	// Program is an inline straight-line gMIR program in the fuzz corpus
	// text form — the alternative to Workload for arbitrary programs
	// (the load harness's path). Simulated on deterministic input
	// vectors derived from VectorSeed.
	Program string `json:"program,omitempty"`
	// VectorSeed seeds the deterministic input vectors a Program is
	// simulated on (default 1); identical across replicas by design.
	VectorSeed uint64 `json:"vector_seed,omitempty"`
	// Scale stretches the workload iteration counts (default 1).
	Scale int `json:"scale,omitempty"`
	// TimeoutMS bounds the synthesis this request may trigger on a cold
	// cache.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Selector picks the selection engine: "greedy" (default) or
	// "optimal" (bottom-up DP tiling, statically never worse under the
	// target's cost model). Part of the cache fingerprint.
	Selector string `json:"selector,omitempty"`
	// Emit asks for the selected code in the response: "mir" for the
	// selected MIR text (JSON true is accepted as a legacy alias) or
	// "bytes" for assembled machine code (hex plus a decoded listing)
	// through the spec-derived encoder.
	Emit EmitMode `json:"emit,omitempty"`
}

// EmitMode is the select endpoint's emit knob: "", "mir", or "bytes".
// It unmarshals from either a string or the legacy boolean form (true
// meaning "mir").
type EmitMode string

// UnmarshalJSON accepts `"mir"`, `"bytes"`, `""`, `true`, and `false`.
func (m *EmitMode) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case "true":
		*m = "mir"
		return nil
	case "false":
		*m = ""
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("emit must be \"mir\", \"bytes\", or a boolean")
	}
	switch s {
	case "", "mir", "bytes":
		*m = EmitMode(s)
		return nil
	}
	return fmt.Errorf("unknown emit mode %q (have: mir, bytes)", s)
}

// SelectResponse is the body answering POST /v1/select.
type SelectResponse struct {
	Target         string   `json:"target"`
	Workload       string   `json:"workload"`
	Fingerprint    string   `json:"fingerprint"`
	Cache          string   `json:"cache"`
	Partial        bool     `json:"partial"`
	Fallback       bool     `json:"fallback"`
	FallbackReason string   `json:"fallback_reason,omitempty"`
	RuleInsts      int      `json:"rule_insts"`
	HookInsts      int      `json:"hook_insts"`
	RulesUsed      []string `json:"rules_used"`
	// Selector is the engine that produced the code; CostVersion the
	// cost-table hash the request was keyed (and planned) under;
	// StaticCost the model cost "latency,size" of the selected code.
	Selector    string `json:"selector"`
	CostVersion string `json:"cost_version,omitempty"`
	StaticCost  string `json:"static_cost,omitempty"`
	Cycles      int64  `json:"cycles,omitempty"`
	Insts       int64  `json:"insts,omitempty"`
	BinarySize  int    `json:"binary_size,omitempty"`
	Checksum    string `json:"checksum,omitempty"`
	MIR         string `json:"mir,omitempty"`
	// Bytes is the assembled machine code (hex) and Listing its decoded
	// disassembly, present with emit="bytes".
	Bytes   string   `json:"bytes,omitempty"`
	Listing []string `json:"listing,omitempty"`
}

func (sv *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if !sv.decode(w, r, &req) {
		return
	}
	def, err := sv.resolveTarget(req.Target, "")
	if err != nil {
		sv.fail(w, http.StatusBadRequest, err)
		return
	}
	if def.backend == nil {
		sv.fail(w, http.StatusBadRequest,
			fmt.Errorf("target %q has no selection backend (selection targets: aarch64, riscv)", def.name))
		return
	}
	scale := req.Scale
	if scale < 1 {
		scale = 1
	}
	var work *bench.Workload
	switch {
	case req.Program != "" && req.Workload != "":
		sv.fail(w, http.StatusBadRequest, fmt.Errorf(`set "workload" or "program", not both`))
		return
	case req.Program == "":
		suite := bench.Suite(scale)
		for i := range suite {
			if suite[i].Name == req.Workload {
				work = &suite[i]
				break
			}
		}
		if work == nil {
			names := make([]string, len(suite))
			for i := range suite {
				names[i] = suite[i].Name
			}
			sv.fail(w, http.StatusBadRequest, fmt.Errorf("unknown workload %q (have %v)", req.Workload, names))
			return
		}
	}
	selector, err := normalizeSelector(req.Selector)
	if err != nil {
		sv.fail(w, http.StatusBadRequest, err)
		return
	}
	cfg, fp := sv.effectiveConfig(def, selector)
	timeout := sv.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	e, cache, status, err := sv.entryFor(r.Context(), def, cfg, fp, timeout, true)
	if err != nil {
		sv.fail(w, status, err)
		return
	}
	if req.Program != "" {
		env := sv.newProgEnv(def, e, cfg.CostModel, selector, req.VectorSeed, 1, req.Emit)
		res := env.selectProgram(0, req.Program)
		if res.Error != "" {
			sv.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("program: %s", res.Error))
			return
		}
		sv.metrics.Selections.Add(1)
		resp := SelectResponse{
			Target:         def.name,
			Workload:       "program",
			Fingerprint:    e.Fingerprint,
			Cache:          cache,
			Partial:        e.Partial,
			Fallback:       res.Fallback,
			FallbackReason: res.FallbackReason,
			RuleInsts:      res.RuleInsts,
			HookInsts:      res.HookInsts,
			Selector:       selector,
			CostVersion:    cfg.CostModel.Version(),
			StaticCost:     res.StaticCost,
			Cycles:         res.Cycles,
			Insts:          res.Insts,
			BinarySize:     res.BinarySize,
			MIR:            res.MIR,
		}
		if len(res.Checksums) > 0 {
			resp.Checksum = res.Checksums[0]
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	bk := def.backend(e.Target, e.Lib)
	bk.Obs = sv.obsv
	if selector == "optimal" {
		bk = isel.OptimalVariant(bk, cfg.CostModel)
	}
	f := work.Build()
	isel.Prepare(f, def.name)
	mf, rep := bk.Select(f)
	sv.metrics.Selections.Add(1)
	resp := SelectResponse{
		Target:         def.name,
		Workload:       work.Name,
		Fingerprint:    e.Fingerprint,
		Cache:          cache,
		Partial:        e.Partial,
		Fallback:       rep.Fallback,
		FallbackReason: rep.FallbackReason,
		RuleInsts:      rep.RuleInsts,
		HookInsts:      rep.HookInsts,
		RulesUsed:      rep.RulesUsed,
		Selector:       selector,
		CostVersion:    cfg.CostModel.Version(),
	}
	if !rep.Fallback {
		mem := gmir.NewMemory()
		if work.InitMem != nil {
			work.InitMem(mem)
		}
		m := &sim.Machine{Mem: mem, Model: cfg.CostModel}
		res, err := m.Run(mf, work.Args)
		if err != nil {
			sv.fail(w, http.StatusInternalServerError, fmt.Errorf("sim: %w", err))
			return
		}
		resp.StaticCost = cost.StaticOf(mf, cfg.CostModel).String()
		resp.Cycles = res.Cycles
		resp.Insts = res.Insts
		resp.BinarySize = mf.BinarySize()
		resp.Checksum = res.Ret.String()
		switch req.Emit {
		case "mir":
			resp.MIR = mf.String()
		case "bytes":
			c, cerr := enc.NewCodec(e.Target)
			if cerr != nil {
				sv.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("emit=bytes: %w", cerr))
				return
			}
			img, aerr := enc.NewAssembler(c).Assemble(mf)
			if aerr != nil {
				sv.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("emit=bytes: %w", aerr))
				return
			}
			resp.Bytes = hex.EncodeToString(img.Code)
			for _, ln := range c.Disassemble(img.Code, img.Base) {
				resp.Listing = append(resp.Listing, fmt.Sprintf("%#x: %s", ln.Addr, ln.Text))
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (sv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	lineages, shards := sv.shards.Counts()
	memoHits, memoMisses, memoStores := solver.Shared.Counters()
	var exemplars []obs.HistExemplar
	if m := sv.obsv.MetricsOrNil(); m != nil {
		exemplars = m.TraceExemplars()
	}
	writeJSON(w, http.StatusOK, MetricsSnapshot{
		UptimeSec:      time.Since(sv.start).Seconds(),
		Build:          sv.build,
		CacheHits:      sv.metrics.CacheHits.Load(),
		DiskHits:       sv.metrics.DiskHits.Load(),
		Joins:          sv.metrics.Joins.Load(),
		SynthRuns:      sv.metrics.SynthRuns.Load(),
		IncrRuns:       sv.metrics.IncrRuns.Load(),
		RulesReused:    sv.metrics.RulesReused.Load(),
		RulesResynth:   sv.metrics.RulesResynth.Load(),
		PartialResults: sv.metrics.PartialRes.Load(),
		Errors:         sv.metrics.Errors.Load(),
		Selections:     sv.metrics.Selections.Load(),
		PeerFills:      sv.metrics.PeerFills.Load(),
		ArtifactServed: sv.metrics.ArtifactServed.Load(),
		BatchPrograms:  sv.metrics.BatchPrograms.Load(),
		JobsSubmitted:  sv.metrics.JobsSubmitted.Load(),
		JobsActive:     sv.jobs.activeCount(),
		CachedEntries:  sv.store.MemLen(),
		Evictions:      sv.store.Evictions(),
		ShardLineages:  lineages,
		Shards:         shards,
		QueueDepth:     sv.sched.QueueDepth(),
		QueueCapacity:  sv.sched.QueueCapacity(),
		InFlight:       sv.sched.InFlight(),
		JobsCompleted:  sv.sched.Completed(),
		JobsRejected:   sv.sched.Rejected(),
		Stages:         sv.metrics.Stages(),

		SolverMemoHits:    memoHits,
		SolverMemoMisses:  memoMisses,
		SolverMemoStores:  memoStores,
		SolverMemoEntries: solver.Shared.Len(),
		SolverJournal:     solver.Shared.Journal(),
		MemoServed:        sv.metrics.MemoServed.Load(),
		MemoPeerHits:      sv.metrics.MemoPeerHits.Load(),
		TraceExemplars:    exemplars,
	})
}

func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (sv *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		sv.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (sv *Server) fail(w http.ResponseWriter, status int, err error) {
	sv.metrics.Errors.Add(1)
	// Backpressure rejections are retryable by construction — the queue
	// drains at synthesis speed — so tell well-behaved clients when to
	// come back instead of letting them hammer the queue.
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
