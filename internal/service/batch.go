package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// maxBatchBodyBytes bounds batch request bodies — batches carry up to
// maxBatchPrograms corpus-text programs, so they get a larger budget
// than the single-request cap.
const maxBatchBodyBytes = 8 << 20

// BatchSelectRequest is the body of POST /v1/select/batch: lower many
// inline programs under one library acquisition. The library is
// resolved (cache/peer/synthesis) exactly once for the whole batch —
// the amortization that makes high-throughput serving cheap.
type BatchSelectRequest struct {
	Target string `json:"target"`
	// Programs are straight-line gMIR programs in the fuzz corpus text
	// form; each gets its own ProgramResult (failures included), in
	// input order.
	Programs []string `json:"programs"`
	// Selector picks the selection engine (greedy | optimal).
	Selector string `json:"selector,omitempty"`
	// TimeoutMS bounds the synthesis a cold cache may trigger.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// VectorSeed seeds the deterministic simulation inputs (default 1).
	VectorSeed uint64 `json:"vector_seed,omitempty"`
	// Vectors is the number of input vectors simulated per program
	// (default 1, capped at 8).
	Vectors int `json:"vectors,omitempty"`
	// Emit, when "mir", includes the selected MIR text per program.
	Emit EmitMode `json:"emit,omitempty"`
}

// BatchSelectResponse answers POST /v1/select/batch. Apart from the
// cache field (which records this replica's acquisition path), the body
// is a pure function of (fingerprint, programs, vector seed) — replicas
// answer byte-identically once warm.
type BatchSelectResponse struct {
	Target      string          `json:"target"`
	Selector    string          `json:"selector"`
	Fingerprint string          `json:"fingerprint"`
	Cache       string          `json:"cache"`
	Partial     bool            `json:"partial"`
	CostVersion string          `json:"cost_version,omitempty"`
	Programs    int             `json:"programs"`
	Selected    int             `json:"selected"`
	Fallbacks   int             `json:"fallbacks"`
	Failed      int             `json:"failed"`
	Results     []ProgramResult `json:"results"`
}

func (sv *Server) handleSelectBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSelectRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		sv.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Programs) == 0 {
		sv.fail(w, http.StatusBadRequest, fmt.Errorf("batch: no programs"))
		return
	}
	if len(req.Programs) > maxBatchPrograms {
		sv.fail(w, http.StatusBadRequest,
			fmt.Errorf("batch: %d programs exceeds the cap of %d (split the batch)", len(req.Programs), maxBatchPrograms))
		return
	}
	if req.Emit == "bytes" {
		sv.fail(w, http.StatusBadRequest, fmt.Errorf("batch: emit=bytes is not supported (use /v1/select)"))
		return
	}
	def, err := sv.resolveTarget(req.Target, "")
	if err != nil {
		sv.fail(w, http.StatusBadRequest, err)
		return
	}
	if def.backend == nil {
		sv.fail(w, http.StatusBadRequest,
			fmt.Errorf("target %q has no selection backend (selection targets: aarch64, riscv)", def.name))
		return
	}
	selector, err := normalizeSelector(req.Selector)
	if err != nil {
		sv.fail(w, http.StatusBadRequest, err)
		return
	}
	cfg, fp := sv.effectiveConfig(def, selector)
	timeout := sv.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	e, cache, status, err := sv.entryFor(r.Context(), def, cfg, fp, timeout, true)
	if err != nil {
		sv.fail(w, status, err)
		return
	}
	env := sv.newProgEnv(def, e, cfg.CostModel, selector, req.VectorSeed, req.Vectors, req.Emit)
	resp := BatchSelectResponse{
		Target:      def.name,
		Selector:    selector,
		Fingerprint: e.Fingerprint,
		Cache:       cache,
		Partial:     e.Partial,
		CostVersion: cfg.CostModel.Version(),
		Programs:    len(req.Programs),
		Results:     make([]ProgramResult, 0, len(req.Programs)),
	}
	for i, text := range req.Programs {
		res := env.selectProgram(i, text)
		switch {
		case res.Error != "":
			resp.Failed++
		case res.Fallback:
			resp.Fallbacks++
		default:
			resp.Selected++
		}
		resp.Results = append(resp.Results, res)
	}
	sv.metrics.Selections.Add(uint64(resp.Selected))
	sv.metrics.BatchPrograms.Add(uint64(len(req.Programs)))
	writeJSON(w, http.StatusOK, resp)
}

// normalizeSelector validates the selector knob shared by the single
// and batch select endpoints.
func normalizeSelector(s string) (string, error) {
	switch s {
	case "":
		return "greedy", nil
	case "greedy", "optimal":
		return s, nil
	}
	return "", fmt.Errorf("unknown selector %q (have: greedy, optimal)", s)
}
