package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// svcSpecEdited is svcSpec with one semantic edit: ORNrr or-inverts no
// longer — it became a plain OR. Every rule whose support includes ORNrr
// goes stale; everything else reuses.
var svcSpecEdited = strings.Replace(svcSpec,
	"inst ORNrr(rn: reg64, rm: reg64) { rd = rn | ~rm; }",
	"inst ORNrr(rn: reg64, rm: reg64) { rd = rn | rm; }", 1)

// TestIncrementalSpecEdit is the service-level acceptance for the shard
// store: after one full synthesis, a whitespace-only edit resynthesizes
// from shards with every rule reused and zero solver queries, and a
// semantic edit still answers from shards, re-running synthesis only
// for the touched instruction.
func TestIncrementalSpecEdit(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	// 1. Cold lineage: full synthesis.
	status, body := postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{Target: "mini", Spec: svcSpec})
	if status != http.StatusOK {
		t.Fatalf("seed synthesis: status %d: %s", status, body)
	}
	first := decodeSynth(t, body)
	if first.Cache != "miss" {
		t.Fatalf("seed cache = %q, want miss", first.Cache)
	}

	// 2. Whitespace-only edit: new spec text, so the full cache misses —
	// but the instruction fingerprints are unchanged, so the shard store
	// answers with every rule reused and the solver never consulted.
	status, body = postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{Target: "mini", Spec: svcSpec + "\n"})
	if status != http.StatusOK {
		t.Fatalf("whitespace edit: status %d: %s", status, body)
	}
	ws := decodeSynth(t, body)
	if ws.Cache != "incr" {
		t.Fatalf("whitespace edit cache = %q, want incr", ws.Cache)
	}
	if ws.Fingerprint == first.Fingerprint {
		t.Error("edited spec reused the seed fingerprint")
	}
	if ws.Rules != first.Rules || ws.Reused != first.Rules || ws.Resynthesized != 0 {
		t.Errorf("whitespace edit: rules=%d reused=%d resynth=%d, want %d/%d/0",
			ws.Rules, ws.Reused, ws.Resynthesized, first.Rules, first.Rules)
	}
	if ws.Stats.SMTQueries != 0 {
		t.Errorf("whitespace edit consulted the solver %d times, want 0", ws.Stats.SMTQueries)
	}

	// 3. Semantic edit to one instruction: still served from shards,
	// with most rules reused.
	status, body = postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{Target: "mini", Spec: svcSpecEdited})
	if status != http.StatusOK {
		t.Fatalf("semantic edit: status %d: %s", status, body)
	}
	sem := decodeSynth(t, body)
	if sem.Cache != "incr" {
		t.Fatalf("semantic edit cache = %q, want incr", sem.Cache)
	}
	if sem.Rules == 0 || sem.Reused == 0 {
		t.Errorf("semantic edit: rules=%d reused=%d, want both > 0", sem.Rules, sem.Reused)
	}

	m := getMetrics(t, ts.URL)
	if m.SynthRuns != 1 {
		t.Errorf("synth_runs = %d, want 1 (edits must not trigger full synthesis)", m.SynthRuns)
	}
	if m.IncrRuns != 2 {
		t.Errorf("incr_runs = %d, want 2", m.IncrRuns)
	}
	if m.RulesReused == 0 {
		t.Error("rules_reused = 0 after two incremental runs")
	}
	if m.ShardLineages != 1 || m.Shards == 0 {
		t.Errorf("shard_lineages=%d shards=%d, want 1 lineage with shards", m.ShardLineages, m.Shards)
	}
}

// TestStoreLRU exercises the memory-layer cap directly: the
// least-recently-used entry is evicted, and a recent touch protects an
// old entry.
func TestStoreLRU(t *testing.T) {
	s, err := NewStore("", 2)
	if err != nil {
		t.Fatal(err)
	}
	add := func(fp string) {
		if _, _, owner := s.Acquire(fp); !owner {
			t.Fatalf("expected to own flight for %s", fp)
		}
		s.Complete(fp, &Entry{Fingerprint: fp}, nil)
	}
	add("a")
	add("b")
	if e, _, _ := s.Acquire("a"); e == nil { // touch "a": now "b" is LRU
		t.Fatal("entry a missing before eviction")
	}
	add("c")
	if n := s.MemLen(); n != 2 {
		t.Errorf("mem len = %d, want 2", n)
	}
	if s.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions())
	}
	if e, _, _ := s.Acquire("b"); e != nil {
		t.Error("LRU entry b survived eviction")
	}
	s.Complete("b", nil, fmt.Errorf("test: abandon flight"))
	if e, _, _ := s.Acquire("a"); e == nil {
		t.Error("recently used entry a was evicted")
	}
	if e, _, _ := s.Acquire("c"); e == nil {
		t.Error("newest entry c was evicted")
	}
}

// TestServerCacheCap proves the cap is wired through Config: with room
// for one entry, synthesizing two targets leaves one cached and counts
// the eviction in /v1/metrics.
func TestServerCacheCap(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEntries = 1
	_, ts := newTestServer(t, cfg)

	for i := 1; i <= 2; i++ {
		req := SynthesizeRequest{Target: fmt.Sprintf("t%d", i), Spec: svcSpec}
		if status, body := postJSON(t, ts.URL+"/v1/synthesize", req); status != http.StatusOK {
			t.Fatalf("target %d: status %d: %s", i, status, body)
		}
	}
	m := getMetrics(t, ts.URL)
	if m.CachedEntries != 1 {
		t.Errorf("cached_entries = %d, want 1 under CacheEntries=1", m.CachedEntries)
	}
	if m.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", m.Evictions)
	}
}

// TestRetryAfterOnBackpressure: a 429 from a full queue carries a
// Retry-After header so clients back off instead of spinning.
func TestRetryAfterOnBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	sv, ts := newTestServer(t, cfg)

	started := make(chan struct{}, 3)
	release := make(chan struct{})
	var once sync.Once
	releaseAll := func() { once.Do(func() { close(release) }) }
	sv.testJobGate = func() {
		started <- struct{}{}
		<-release
	}
	defer releaseAll()

	post := func(i int) (*http.Response, error) {
		buf, _ := json.Marshal(SynthesizeRequest{Target: fmt.Sprintf("r%d", i), Spec: svcSpec})
		return http.Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(buf))
	}
	go func() {
		if resp, err := post(1); err == nil {
			resp.Body.Close()
		}
	}()
	<-started // job 1 occupies the only worker
	go func() {
		if resp, err := post(2); err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for getMetrics(t, ts.URL).QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := post(3)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("429 response has no Retry-After header")
	}
	releaseAll()
}
